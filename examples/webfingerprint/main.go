// Website fingerprinting demo (§V): a spy process with no network access
// identifies which website a co-located victim is loading, by chasing the
// response packets through the rx ring and matching the size/timing trace
// against per-site representatives.
//
// Run with: go run ./examples/webfingerprint
package main

import (
	"fmt"
	"log"
	"sort"

	repro "repro"
	"repro/internal/fingerprint"
	"repro/internal/sim"
	"repro/internal/webtrace"
)

func main() {
	machine, err := repro.NewMachine(repro.DemoConfig(13))
	if err != nil {
		log.Fatal(err)
	}
	attack := &fingerprint.Attack{
		Spy:      machine.Spy,
		Groups:   machine.Groups,
		Ring:     machine.GroundTruthRing(),
		TraceLen: 100,
	}

	// A concrete scenario first: detecting a successful hotcrp login.
	for _, site := range []webtrace.Site{
		webtrace.HotCRPLoginSuccess(), webtrace.HotCRPLoginFailure(),
	} {
		tr := site.Generate(sim.NewRNG(3), webtrace.DefaultNoise())
		classes, _ := attack.Observe(tr)
		fours := 0
		for _, c := range classes {
			if c >= 4 {
				fours++
			}
		}
		fmt.Printf("%-22s %3d packets chased, %3d full-size (4+ blocks)\n",
			site.Name+":", len(classes), fours)
	}
	fmt.Println("a long 4+ run is the dashboard page: the login succeeded.")

	// The closed-world experiment: five sites, who is the victim visiting?
	res := fingerprint.EvaluateClosedWorld(attack, webtrace.ClosedWorld(),
		webtrace.DefaultNoise(), 25, sim.NewRNG(99))
	fmt.Printf("\nclosed-world identification: %d/%d correct (%.0f%%)\n",
		res.Correct, res.Trials, 100*res.Accuracy())
	sites := make([]string, 0, len(res.PerSite))
	for site := range res.PerSite {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		c := res.PerSite[site]
		fmt.Printf("  %-14s %d/%d\n", site, c[0], c[1])
	}
}
