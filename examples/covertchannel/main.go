// Covert channel demo (§IV): a remote trojan that can only send broadcast
// frames transmits a secret message to a local spy with no network access,
// by encoding symbols in packet sizes and letting the spy read them off
// the rx ring's cache sets.
//
// Run with: go run ./examples/covertchannel
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/covert"
	"repro/internal/stats"
)

func main() {
	machine, err := repro.NewMachine(repro.DemoConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	ring := machine.GroundTruthRing() // stands in for a completed recovery

	// Single-buffer channel: one isolated ring buffer carries one ternary
	// symbol per full ring revolution.
	gid, ok := covert.ChooseIsolatedBuffer(ring)
	if !ok {
		log.Fatal("no isolated buffer in this ring")
	}
	message := stats.NewLFSR15(42).Symbols(96, 3)
	res, err := covert.RunSingleBuffer(machine.Spy, machine.Groups[gid], message,
		covert.Ternary, len(ring), 28_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single buffer:  %7.0f bps, %.1f%% error (%d symbols)\n",
		res.Bandwidth, 100*res.ErrorRate, len(res.Received))

	// Multi-buffer channel: monitoring n spaced buffers multiplies the
	// bandwidth (paper Fig 12a).
	for _, n := range []int{2, 4, 8} {
		r, err := covert.RunMultiBuffer(machine.Spy, machine.Groups, ring, n,
			message, covert.Ternary, 56_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d buffers:     %7.0f bps, %.1f%% error\n",
			n, r.Bandwidth, 100*r.ErrorRate)
	}

	// Full chasing: one symbol per packet.
	ch := covert.NewChasingChannel(machine.Spy, machine.Groups, ring)
	r := ch.Run(message, covert.Ternary, 50_000, nil)
	fmt.Printf("full chasing:   %7.0f bps, %.1f%% error, %d sync losses\n",
		r.Bandwidth, 100*r.ErrorRate, r.OutOfSync)
}
