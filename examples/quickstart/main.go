// Quickstart: build a simulated DDIO machine, run the Packet Chasing
// offline phase (eviction-set discovery, footprint recovery, ring-sequence
// recovery), and chase a few packets online.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/chase"
	"repro/internal/netmodel"
)

func main() {
	// A scaled machine that keeps every structural property of the paper
	// machine (page-aligned buffer sets, 2 buffers per page, recycled
	// 1:1 ring) but runs in seconds.
	machine, err := repro.NewMachine(repro.DemoConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine:", machine.Testbed.Cache().String())
	fmt.Printf("spy mapped %d pages; calibrated hit=%d miss=%d cycles\n",
		machine.Spy.Pages(), machine.Spy.HitLatency(), machine.Spy.MissLatency())
	fmt.Printf("offline: discovered %d page-aligned conflict groups\n", len(machine.Groups))

	// Phase 1 — footprint: which cache sets host the NIC's rx buffers?
	wire := netmodel.NewWire(netmodel.GigabitRate)
	fp := machine.DiscoverFootprint(func() {
		machine.Testbed.SetTraffic(netmodel.NewConstantSource(
			wire, 128, 100_000, machine.Testbed.Clock().Now(), -1))
	})
	fmt.Printf("footprint: %d groups light up while the NIC receives\n", len(fp.ActiveGroups))

	// Phase 2 — sequence: in what order do the buffers fill? The
	// sequencer wants roughly one packet per few probe samples, so pace
	// the helper stream accordingly (§III-C's tuning discussion).
	machine.Testbed.SetTraffic(netmodel.NewConstantSource(
		wire, 64, 11_000, machine.Testbed.Clock().Now(), -1))
	ring, err := machine.RecoverRingSequence()
	if err != nil {
		log.Fatal(err)
	}
	truth := machine.GroundTruthRing()
	q := chase.EvaluateCyclic(machine.CanonicalSequence(ring), machine.CanonicalSequence(truth))
	fmt.Printf("sequence: %d entries recovered, %.1f%% error vs instrumented driver\n",
		len(ring), 100*q.ErrorRate)

	// Phase 3 — online: follow packets buffer to buffer and read their
	// sizes off the cache.
	sizes := []int{64, 256, 192, 64, 256, 1514, 64, 256}
	gaps := make([]uint64, len(sizes))
	for i := range gaps {
		gaps[i] = 400_000
	}
	chaser := machine.NewChaser(truth) // before the traffic: calibration takes time
	machine.Testbed.SetTraffic(netmodel.NewTraceSource(wire, sizes, gaps,
		machine.Testbed.Clock().Now()+100_000))
	obs := chaser.Chase(len(sizes))
	fmt.Print("chase:   sent blocks ")
	for _, s := range sizes {
		b := (s + 63) / 64
		if b > 4 {
			b = 4
		}
		fmt.Printf("%d ", b)
	}
	fmt.Print("\n         seen blocks ")
	for _, o := range obs {
		fmt.Printf("%d ", o.Blocks)
	}
	fmt.Println("\n(4 means \"4 or more\"; sizes are visible to a process with no network access)")
}
