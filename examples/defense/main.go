// Defense demo (§VI-§VII): walk the defense registry and compare the
// mitigations on both axes the paper uses — does the attack still work,
// and what does the defense cost? Every defense is a first-class value
// from internal/defense: Apply reshapes the machine the spy attacks, and
// PerfScheme prices the same mitigation in the perfsim cost model.
//
// Run with: go run ./examples/defense
package main

import (
	"fmt"
	"log"

	"repro/internal/defense"
	"repro/internal/netmodel"
	"repro/internal/perfsim"
	"repro/internal/probe"
	"repro/internal/scenario"
)

// demoDefenses is the subset walked by the demo: one representative per
// mitigation family keeps the example fast (each visibility measurement
// pays a full eviction-set build). The stack name is derived from values
// so retuning DefaultTimerJitter cannot orphan the lookup.
var demoDefenses = []string{
	"none", "no-ddio", "adaptive-partition",
	defense.NewStack(
		defense.AdaptivePartitioning{},
		defense.TimerCoarsening{Jitter: defense.DefaultTimerJitter},
	).Name(),
}

func main() {
	fmt.Println("== what the spy sees while packets flow (differential set activity) ==")
	for _, name := range demoDefenses {
		d, ok := defense.ByName(name)
		if !ok {
			log.Fatalf("defense %q not registered", name)
		}
		fmt.Printf("%-36s %5.1f%%\n", name+":", 100*visibility(d, 1))
	}
	fmt.Println("(DDIO off still leaks through driver reads; partitioning stops I/O evicting spy lines)")

	fmt.Println("\n== what the defenses cost (Nginx under load, p99 latency) ==")
	cfg := perfsim.DefaultNginxConfig()
	cfg.Requests = 10_000
	cfg.TargetRate = 140_000
	var baseP99 float64
	p99By := map[perfsim.Scheme]float64{} // several defenses share a cost scheme
	for _, d := range defense.All() {
		p99, ok := p99By[d.PerfScheme()]
		if !ok {
			m, err := perfsim.RunNginx(d.PerfScheme(), 20<<20, 5, cfg)
			if err != nil {
				log.Fatal(err)
			}
			p99 = m.LatencyPercentile(99)
			p99By[d.PerfScheme()] = p99
		}
		if d.Name() == "none" {
			baseP99 = p99
			fmt.Printf("%-36s p99 %8.0f cycles (baseline)\n", d.Name(), p99)
		} else {
			fmt.Printf("%-36s p99 %8.0f cycles (%+.1f%%)\n", d.Name(), p99, 100*(p99-baseP99)/baseP99)
		}
	}
}

// visibility builds the defended demo machine, maps a spy onto it, and
// measures differential activity (busy minus idle) across every
// page-aligned set. Under the partition defense the spy's oversized
// eviction sets self-thrash, so raw activity is meaningless; what matters
// is whether packets change anything the spy can see.
func visibility(d defense.Defense, seed int64) float64 {
	spec := scenario.Baseline(false).WithDefense(d)
	spec.NoiseRate = 0
	spec.TimerNoise = 0 // a timer-coarsening defense still overrides this in Apply
	tb, err := spec.NewTestbed(seed)
	if err != nil {
		log.Fatal(err)
	}
	ccfg := tb.Cache().Config()
	spy, err := probe.NewSpy(tb, ccfg.AlignedSetCount()*ccfg.Ways*3)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := spy.BuildAlignedEvictionSets(ccfg.Ways)
	if err != nil {
		log.Fatal(err)
	}
	mon := probe.NewMonitor(spy, groups)
	mean := func(samples []probe.Sample) float64 {
		var m float64
		for _, r := range probe.ActivityRate(samples) {
			m += r
		}
		return m / float64(len(groups))
	}
	idle := mean(mon.Collect(300, 100_000))
	wire := netmodel.NewWire(netmodel.GigabitRate)
	tb.SetTraffic(netmodel.NewConstantSource(wire, 256, 200_000, tb.Clock().Now(), -1))
	busy := mean(mon.Collect(300, 100_000))
	return busy - idle
}
