// Defense demo (§VI-§VII): compare the software mitigations and the
// adaptive I/O cache partitioning defense, on both axes the paper uses —
// does the attack still work, and what does the defense cost?
//
// Run with: go run ./examples/defense
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/netmodel"
	"repro/internal/nic"
	"repro/internal/perfsim"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// attackVisibility measures how much packet activity a spy sees on a
// machine with the given cache/NIC configuration: the fraction of probe
// samples with activity while a packet stream is flowing.
func attackVisibility(ccfg cache.Config, ncfg nic.Config, seed int64) float64 {
	opts := testbed.DefaultOptions(seed)
	opts.Cache = ccfg
	opts.NIC = ncfg
	opts.NoiseRate = 0
	opts.TimerNoise = 0
	tb, err := testbed.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	spy, err := probe.NewSpy(tb, ccfg.AlignedSetCount()*ccfg.Ways*3)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := spy.BuildAlignedEvictionSets(ccfg.Ways)
	if err != nil {
		log.Fatal(err)
	}
	mon := probe.NewMonitor(spy, groups)
	mean := func(samples []probe.Sample) float64 {
		var m float64
		for _, r := range probe.ActivityRate(samples) {
			m += r
		}
		return m / float64(len(groups))
	}
	// Differential visibility: activity while receiving minus idle
	// activity. (Under the partition defense the spy's oversized eviction
	// sets self-thrash, so raw activity is meaningless; what matters is
	// whether packets change anything the spy can see.)
	idle := mean(mon.Collect(300, 100_000))
	wire := netmodel.NewWire(netmodel.GigabitRate)
	tb.SetTraffic(netmodel.NewConstantSource(wire, 256, 200_000, tb.Clock().Now(), -1))
	busy := mean(mon.Collect(300, 100_000))
	return busy - idle
}

func main() {
	base := cache.ScaledConfig(2, 2048, 8)
	ncfg := nic.DefaultConfig()
	ncfg.RingSize = 64

	fmt.Println("== what the spy sees while packets flow (mean set activity) ==")
	fmt.Printf("vulnerable DDIO:        %5.1f%%\n", 100*attackVisibility(base, ncfg, 1))

	noDDIO := base
	noDDIO.DDIO = false
	fmt.Printf("DDIO disabled:          %5.1f%%  (driver reads still leak!)\n",
		100*attackVisibility(noDDIO, ncfg, 1))

	defended := base
	defended.Partition = cache.DefaultPartitionConfig()
	fmt.Printf("adaptive partitioning:  %5.1f%%  (I/O can no longer evict spy lines)\n",
		100*attackVisibility(defended, ncfg, 1))

	fmt.Println("\n== what the defenses cost (Nginx under load, p99 latency) ==")
	cfg := perfsim.DefaultNginxConfig()
	cfg.Requests = 10_000
	cfg.TargetRate = 140_000
	var baseP99 float64
	for _, s := range []perfsim.Scheme{
		perfsim.SchemeDDIO, perfsim.SchemeAdaptive,
		perfsim.SchemePartial10k, perfsim.SchemePartial1k, perfsim.SchemeFullRandom,
	} {
		env, err := perfsim.NewEnv(s, 20<<20, 5)
		if err != nil {
			log.Fatal(err)
		}
		m := perfsim.Nginx(env, cfg)
		lat := make([]float64, len(m.Latencies))
		for i, l := range m.Latencies {
			lat[i] = float64(l)
		}
		p99 := stats.Percentile(lat, 99)
		if s == perfsim.SchemeDDIO {
			baseP99 = p99
			fmt.Printf("%-28s p99 %8.0f cycles (baseline)\n", s, p99)
		} else {
			fmt.Printf("%-28s p99 %8.0f cycles (%+.1f%%)\n", s, p99, 100*(p99-baseP99)/baseP99)
		}
	}
}
