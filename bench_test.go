package repro

// Benchmarks regenerate scaled versions of every table and figure in the
// paper's evaluation (one benchmark per artifact, named after it) plus
// microbenchmarks of the hot substrate paths. Shapes — who wins, by what
// factor — are reported through b.ReportMetric; absolute wall-clock time
// of a benchmark iteration is simulation cost, not a paper metric.
//
// Run: go test -bench=. -benchmem
import (
	"testing"

	"repro/internal/cache"
	"repro/internal/chase"
	"repro/internal/covert"
	"repro/internal/experiments"
	"repro/internal/fingerprint"
	"repro/internal/netmodel"
	"repro/internal/perfsim"
	"repro/internal/probe"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/webtrace"
)

// --- substrate microbenchmarks ---

func BenchmarkCacheRead(b *testing.B) {
	clock := sim.NewClock()
	c := cache.New(cache.PaperConfig(), clock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint64(i*64) % (1 << 28))
	}
}

func BenchmarkCacheIOWriteDDIO(b *testing.B) {
	clock := sim.NewClock()
	c := cache.New(cache.PaperConfig(), clock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.IOWrite(uint64(i*64) % (1 << 22))
	}
}

func BenchmarkCacheIOWritePartitioned(b *testing.B) {
	cfg := cache.PaperConfig()
	cfg.Partition = cache.DefaultPartitionConfig()
	clock := sim.NewClock()
	c := cache.New(cfg, clock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(50)
		c.IOWrite(uint64(i*64) % (1 << 22))
	}
}

func BenchmarkNICReceive(b *testing.B) {
	opts := testbed.DefaultOptions(1)
	tb, err := testbed.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	f := netmodel.Frame{Size: 256, Known: false}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Arrival = tb.Clock().Now()
		tb.NIC().Receive(f)
		tb.NIC().ProcessDriver(tb.Clock().Now() + 10_000)
		tb.Clock().Advance(5_000)
	}
}

func BenchmarkLevenshtein256(b *testing.B) {
	rng := sim.NewRNG(1)
	x := make([]int, 256)
	y := make([]int, 256)
	for i := range x {
		x[i], y[i] = rng.Intn(64), rng.Intn(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Levenshtein(x, y)
	}
}

func BenchmarkEvictionSetConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := testbed.DefaultOptions(int64(i))
		opts.Cache = cache.ScaledConfig(2, 1024, 4)
		opts.NoiseRate = 0
		tb, err := testbed.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		spy, err := probe.NewSpy(tb, 32*4*4)
		if err != nil {
			b.Fatal(err)
		}
		groups, err := spy.BuildAlignedEvictionSets(4)
		if err != nil {
			b.Fatal(err)
		}
		if len(groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

// --- one benchmark per paper artifact ---

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Demo, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05BufferMapping(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig07ReceiveFootprint(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig08SizeDetection(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkMatrixDefense(b *testing.B)         { benchExperiment(b, "matrix_defense") }

func BenchmarkFig06MappingDistribution(b *testing.B) {
	// Fig 6 at bench scale: 100 driver instances per iteration.
	for i := 0; i < b.N; i++ {
		empty, total := 0, 0
		for inst := 0; inst < 100; inst++ {
			opts := testbed.DefaultOptions(int64(i*100 + inst))
			opts.Cache = cache.ScaledConfig(2, 2048, 8)
			opts.NIC.RingSize = 64
			tb, err := testbed.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			ccfg := tb.Cache().Config()
			seen := map[int]bool{}
			for _, s := range tb.NIC().RingAlignedSets(ccfg) {
				seen[s] = true
			}
			empty += ccfg.AlignedSetCount() - len(seen)
			total += ccfg.AlignedSetCount()
		}
		b.ReportMetric(100*float64(empty)/float64(total), "empty-sets-%")
	}
}

func BenchmarkTable1SequenceRecovery(b *testing.B) {
	// One windowed recovery per iteration (full recovery is the table1
	// experiment; a single window keeps the bench under a second).
	for i := 0; i < b.N; i++ {
		opts := testbed.DefaultOptions(int64(i) + 22)
		opts.Cache = cache.ScaledConfig(2, 1024, 4)
		opts.NIC.RingSize = 32
		opts.NoiseRate = 0
		opts.TimerNoise = 0
		tb, err := testbed.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		spy, err := probe.NewSpy(tb, 32*4*4)
		if err != nil {
			b.Fatal(err)
		}
		groups, err := spy.BuildAlignedEvictionSets(4)
		if err != nil {
			b.Fatal(err)
		}
		wire := netmodel.NewWire(netmodel.GigabitRate)
		tb.SetTraffic(netmodel.NewConstantSource(wire, 64, 11_000, tb.Clock().Now(), -1))
		seq := &chase.Sequencer{Spy: spy, Groups: groups, Params: chase.SequencerParams{
			Samples: 6_000, WindowSize: len(groups), ProbeRate: 33_000,
			ActivityCutoff: 0.2, WeightCutoff: 3,
		}}
		ids := make([]int, len(groups))
		for j := range ids {
			ids[j] = j
		}
		rec, err := seq.RecoverWindow(ids)
		if err != nil {
			b.Fatal(err)
		}
		ccfg := tb.Cache().Config()
		canon := make([]int, len(rec))
		byID := map[int]int{}
		for _, g := range groups {
			byID[g.ID] = ccfg.AlignedIndexOf(ccfg.GlobalSet(g.Lines[0]))
		}
		for j, gid := range rec {
			canon[j] = byID[gid]
		}
		truth := chase.CollapseRuns(tb.NIC().RingAlignedSets(ccfg))
		q := chase.EvaluateCyclic(canon, truth)
		b.ReportMetric(100*q.ErrorRate, "seq-error-%")
	}
}

// covertBenchRig builds the covert-channel prerequisites once per bench.
func covertBenchRig(b *testing.B, seed int64) (*probe.Spy, []probe.EvictionSet, []int) {
	b.Helper()
	opts := testbed.DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(2, 1024, 4)
	opts.NIC.RingSize = 32
	opts.NoiseRate = 0
	opts.TimerNoise = 0
	tb, err := testbed.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	spy, err := probe.NewSpy(tb, 32*4*4)
	if err != nil {
		b.Fatal(err)
	}
	groups, err := spy.BuildAlignedEvictionSets(4)
	if err != nil {
		b.Fatal(err)
	}
	ccfg := tb.Cache().Config()
	byCanon := map[int]int{}
	for _, g := range groups {
		byCanon[ccfg.AlignedIndexOf(ccfg.GlobalSet(g.Lines[0]))] = g.ID
	}
	var ring []int
	for _, s := range tb.NIC().RingAlignedSets(ccfg) {
		ring = append(ring, byCanon[s])
	}
	return spy, groups, ring
}

func BenchmarkFig11CovertChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spy, groups, ring := covertBenchRig(b, int64(i)+31)
		gid, ok := covert.ChooseIsolatedBuffer(ring)
		if !ok {
			continue
		}
		symbols := stats.NewLFSR15(uint16(i+7)).Symbols(60, 3)
		res, err := covert.RunSingleBuffer(spy, groups[gid], symbols, covert.Ternary, len(ring), 28_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Bandwidth, "bps")
		b.ReportMetric(100*res.ErrorRate, "error-%")
	}
}

func BenchmarkFig12MultiBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spy, groups, ring := covertBenchRig(b, int64(i)+33)
		symbols := stats.NewLFSR15(uint16(i+9)).Symbols(48, 3)
		res, err := covert.RunMultiBuffer(spy, groups, ring, 4, symbols, covert.Ternary, 56_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Bandwidth/1000, "kbps")
	}
}

func BenchmarkFig12Chasing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spy, groups, ring := covertBenchRig(b, int64(i)+34)
		symbols := stats.NewLFSR15(uint16(i+11)).Symbols(100, 3)
		ch := covert.NewChasingChannel(spy, groups, ring)
		res := ch.Run(symbols, covert.Ternary, 20_000, sim.NewRNG(int64(i)))
		b.ReportMetric(100*res.ErrorRate, "error-%")
		b.ReportMetric(100*covert.OutOfSyncRate(res), "oos-%")
	}
}

func BenchmarkSecVFingerprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spy, groups, ring := covertBenchRig(b, int64(i)+42)
		atk := &fingerprint.Attack{Spy: spy, Groups: groups, Ring: ring, TraceLen: 60}
		res := fingerprint.EvaluateClosedWorld(atk, webtrace.ClosedWorld(),
			webtrace.DefaultNoise(), 10, sim.NewRNG(int64(i)+7))
		b.ReportMetric(100*res.Accuracy(), "accuracy-%")
	}
}

func BenchmarkFig14NginxThroughput(b *testing.B) {
	cfg := perfsim.DefaultNginxConfig()
	cfg.Requests = 2_000
	for i := 0; i < b.N; i++ {
		ddio, err := perfsim.NewEnv(perfsim.SchemeDDIO, 20<<20, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		adaptive, err := perfsim.NewEnv(perfsim.SchemeAdaptive, 20<<20, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		d := perfsim.Nginx(ddio, cfg).Throughput()
		a := perfsim.Nginx(adaptive, cfg).Throughput()
		b.ReportMetric(100*(d-a)/d, "adaptive-loss-%")
	}
}

func BenchmarkFig15MemTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := perfsim.NewEnv(perfsim.SchemeNoDDIO, 20<<20, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		ddio, err := perfsim.NewEnv(perfsim.SchemeDDIO, 20<<20, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		mb := perfsim.FileCopy(base, 2<<20)
		md := perfsim.FileCopy(ddio, 2<<20)
		r, _, _ := md.NormalizedTraffic(mb)
		b.ReportMetric(r, "ddio-norm-reads")
	}
}

func BenchmarkFig16TailLatency(b *testing.B) {
	cfg := perfsim.DefaultNginxConfig()
	cfg.Requests = 6_000
	cfg.TargetRate = 140_000
	p99 := func(s perfsim.Scheme, seed int64) float64 {
		env, err := perfsim.NewEnv(s, 20<<20, seed)
		if err != nil {
			b.Fatal(err)
		}
		m := perfsim.Nginx(env, cfg)
		lat := make([]float64, len(m.Latencies))
		for i, l := range m.Latencies {
			lat[i] = float64(l)
		}
		return stats.Percentile(lat, 99)
	}
	for i := 0; i < b.N; i++ {
		base := p99(perfsim.SchemeDDIO, int64(i))
		full := p99(perfsim.SchemeFullRandom, int64(i))
		adaptive := p99(perfsim.SchemeAdaptive, int64(i))
		b.ReportMetric(100*(full-base)/base, "fullrand-p99-+%")
		b.ReportMetric(100*(adaptive-base)/base, "adaptive-p99-+%")
	}
}

// --- experiment runner ---

// benchRunnerSweep runs a cheap three-experiment, four-trial sweep at
// the given pool width; compare Serial vs Parallel with benchstat to see
// the fan-out win.
func benchRunnerSweep(b *testing.B, parallel int) {
	var sel []experiments.Experiment
	for _, id := range []string{"fig5", "fig7", "table2"} {
		e, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		sel = append(sel, e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := runner.Run(sel, runner.Options{
			Scale: experiments.Demo, Seed: int64(i) + 1, Trials: 4, Parallel: parallel,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed() > 0 {
			b.Fatalf("%d experiments failed", rep.Failed())
		}
	}
}

func BenchmarkRunnerSweepSerial(b *testing.B)   { benchRunnerSweep(b, 1) }
func BenchmarkRunnerSweepParallel(b *testing.B) { benchRunnerSweep(b, 0) }

// --- ablations (DESIGN.md section 5) ---

func BenchmarkAblationDDIOWays(b *testing.B) {
	// DDIO way-cap sweep: more I/O ways means more CPU evictions under a
	// randomized ring (leak magnitude).
	for i := 0; i < b.N; i++ {
		for _, ways := range []int{1, 2, 4} {
			ccfg := cache.ScaledConfig(2, 512, 8)
			ccfg.DDIOWays = ways
			clock := sim.NewClock()
			c := cache.New(ccfg, clock)
			// Fill with CPU lines, then stream I/O at fresh addresses so
			// every DMA write must allocate (and evict someone).
			for a := uint64(0); a < 1<<19; a += 64 {
				c.Read(a)
			}
			rng := sim.NewRNG(int64(i))
			for p := 0; p < 3000; p++ {
				c.IOWrite(uint64(1<<19) + uint64(rng.Intn(1<<19)))
			}
			if ways == 2 {
				b.ReportMetric(float64(c.Stats().IOEvictedCPU), "cpu-evictions-2way")
			}
		}
	}
}

func BenchmarkAblationRingSize(b *testing.B) {
	// §VI-c: a larger ring forces the attacker to probe more sets.
	for i := 0; i < b.N; i++ {
		for _, ring := range []int{32, 64} {
			opts := testbed.DefaultOptions(int64(i))
			opts.Cache = cache.ScaledConfig(2, 2048, 8)
			opts.NIC.RingSize = ring
			tb, err := testbed.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			ccfg := tb.Cache().Config()
			seen := map[int]bool{}
			for _, s := range tb.NIC().RingAlignedSets(ccfg) {
				seen[s] = true
			}
			if ring == 64 {
				b.ReportMetric(float64(len(seen)), "sets-to-probe-64ring")
			}
		}
	}
}

func BenchmarkAblationRandomizationInterval(b *testing.B) {
	// §VI-b: randomization interval vs driver overhead (amortized).
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(perfsim.RandomizationOverhead(perfsim.SchemeFullRandom)), "full-cyc/pkt")
		b.ReportMetric(float64(perfsim.RandomizationOverhead(perfsim.SchemePartial1k)), "p1k-cyc/pkt")
		b.ReportMetric(float64(perfsim.RandomizationOverhead(perfsim.SchemePartial10k)), "p10k-cyc/pkt")
	}
}
