// Package repro is a full reproduction of "Packet Chasing: Spying on
// Network Packets over a Cache Side-Channel" (Taram, Venkat, Tullsen,
// ISCA 2020) as a Go library.
//
// The hardware the paper attacks — a DDIO-enabled Xeon LLC fed by an Intel
// I350 NIC running the Linux IGB driver — is rebuilt as a deterministic
// cycle-level simulator (internal/cache, internal/nic, internal/netmodel,
// internal/mem, internal/sim), and the attack algorithms run unchanged on
// top of it: eviction-set construction and PRIME+PROBE (internal/probe),
// footprint and ring-sequence recovery plus online packet chasing
// (internal/chase), the remote covert channels (internal/covert), website
// fingerprinting (internal/fingerprint, internal/webtrace), and the §VII
// adaptive-partitioning defense with its performance evaluation
// (internal/perfsim).
//
// This root package is the façade: it wires a machine together and exposes
// the attack pipeline in a few calls. See examples/quickstart for the
// five-minute tour and internal/experiments for the code that regenerates
// every table and figure of the paper.
package repro

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/chase"
	"repro/internal/nic"
	"repro/internal/probe"
	"repro/internal/testbed"
)

// MachineConfig configures a simulated victim machine plus the spy tenant.
type MachineConfig struct {
	// Testbed is the machine configuration (LLC, NIC/driver, memory,
	// noise).
	Testbed testbed.Options
	// SpyPages is how much memory the spy maps for eviction sets; 0 means
	// 3x(aligned sets x ways) pages, comfortably enough for full group
	// discovery.
	SpyPages int
	// Sequencer parameterizes ring-sequence recovery.
	Sequencer chase.SequencerParams
}

// PaperMachineConfig is the full paper machine: 20 MB 20-way DDIO LLC,
// 256-descriptor IGB ring, Table I attack parameters.
func PaperMachineConfig(seed int64) MachineConfig {
	return MachineConfig{
		Testbed:   testbed.DefaultOptions(seed),
		Sequencer: chase.DefaultSequencerParams(),
	}
}

// DemoConfig is a structurally faithful scaled machine (2 MB 8-way LLC, 64
// aligned sets, 64-buffer ring) on which every phase runs in seconds.
func DemoConfig(seed int64) MachineConfig {
	opts := testbed.DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(2, 2048, 8)
	opts.NIC = nic.DefaultConfig()
	opts.NIC.RingSize = 64
	params := chase.DefaultSequencerParams()
	params.Samples = 8_000
	params.WindowSize = 32
	params.ProbeRate = 33_000
	params.ActivityCutoff = 0.2
	return MachineConfig{Testbed: opts, Sequencer: params}
}

// Machine is an assembled victim machine with a resident spy that has
// completed eviction-set discovery.
type Machine struct {
	Config  MachineConfig
	Testbed *testbed.Testbed
	Spy     *probe.Spy
	// Groups are the spy's page-aligned conflict groups (one eviction set
	// per page-aligned cache-set group).
	Groups []probe.EvictionSet
}

// NewMachine builds the machine and runs the spy's one-time eviction-set
// discovery.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	tb, err := testbed.New(cfg.Testbed)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	pages := cfg.SpyPages
	if pages == 0 {
		pages = cfg.Testbed.Cache.AlignedSetCount() * cfg.Testbed.Cache.Ways * 3
	}
	spy, err := probe.NewSpy(tb, pages)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	groups, err := spy.BuildAlignedEvictionSets(cfg.Testbed.Cache.Ways)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &Machine{Config: cfg, Testbed: tb, Spy: spy, Groups: groups}, nil
}

// DiscoverFootprint runs the §III-B footprint experiment: measure idle
// activity, call startTraffic, measure again, and report the groups that
// lit up.
func (m *Machine) DiscoverFootprint(startTraffic func()) chase.FootprintResult {
	return chase.RecoverFootprint(m.Spy, m.Groups, chase.DefaultFootprintParams(), startTraffic)
}

// RecoverRingSequence runs Algorithm 1 end to end (base window plus
// candidate insertion) and returns the recovered ring as group ids. The
// caller must have receive traffic flowing (the sequencer learns from
// packet-driven evictions).
func (m *Machine) RecoverRingSequence() ([]int, error) {
	seq := &chase.Sequencer{Spy: m.Spy, Groups: m.Groups, Params: m.Config.Sequencer}
	return seq.RecoverFull()
}

// NewChaser builds the online-phase chaser for the given ring (group
// ids). Build the chaser BEFORE installing the traffic you want to
// observe: monitor calibration consumes simulated time.
func (m *Machine) NewChaser(ring []int) *chase.Chaser {
	return chase.NewChaser(m.Spy, m.Groups, ring, chase.DefaultChaserConfig())
}

// ChasePackets runs the online phase over the given ring (group ids),
// returning up to n per-packet observations. Traffic already flowing may
// be partially missed while monitors calibrate; for tight control use
// NewChaser before starting the traffic.
func (m *Machine) ChasePackets(ring []int, n int) []chase.PacketObservation {
	return m.NewChaser(ring).Chase(n)
}

// --- Ground-truth oracles (driver instrumentation; never used by attack
// code, only for evaluation) ---

// GroundTruthRing returns the true ring order as group ids, rotated so
// that index 0 is the buffer the next packet will fill (a fresh chaser
// can start immediately instead of resynchronizing).
func (m *Machine) GroundTruthRing() []int {
	ccfg := m.Testbed.Cache().Config()
	byCanon := map[int]int{}
	for _, g := range m.Groups {
		byCanon[ccfg.AlignedIndexOf(ccfg.GlobalSet(g.Lines[0]))] = g.ID
	}
	truth := m.Testbed.NIC().RingAlignedSets(ccfg)
	ring := make([]int, len(truth))
	head := m.Testbed.NIC().NextDescriptor()
	for i, s := range truth {
		ring[i] = byCanon[s]
	}
	return append(ring[head:], ring[:head]...)
}

// CanonicalSequence maps a group-id sequence to canonical page-aligned set
// indices, the representation ground-truth comparisons use.
func (m *Machine) CanonicalSequence(ring []int) []int {
	ccfg := m.Testbed.Cache().Config()
	canon := map[int]int{}
	for _, g := range m.Groups {
		canon[g.ID] = ccfg.AlignedIndexOf(ccfg.GlobalSet(g.Lines[0]))
	}
	out := make([]int, len(ring))
	for i, g := range ring {
		out[i] = canon[g]
	}
	return out
}
