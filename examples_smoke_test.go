package repro_test

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// exampleDirs returns every program under examples/. Kept dynamic so a
// new example is smoke-tested the moment it lands.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no example programs found")
	}
	return dirs
}

// TestExamplesCompileAndRun builds and executes every examples/ program:
// each must exit 0 within its deadline and print something. The examples
// double as end-to-end coverage of the public packetchasing API, so a
// regression that only breaks the documented entry points surfaces here.
func TestExamplesCompileAndRun(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bindir := t.TempDir()
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(bindir, dir)
			build := exec.Command(goBin, "build", "-o", bin, "./examples/"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			var stdout, stderr bytes.Buffer
			run := exec.CommandContext(ctx, bin)
			run.Stdout, run.Stderr = &stdout, &stderr
			if err := run.Run(); err != nil {
				t.Fatalf("run failed: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
			}
			if stdout.Len() == 0 {
				t.Error("example printed nothing on stdout")
			}
		})
	}
}
