package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/runner
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunnerMultiTrialCold-8 	       2	 466024944 ns/op	78110124 B/op	   47952 allocs/op
BenchmarkRunnerMultiTrialWarm-8 	       2	 146810022 ns/op	36046888 B/op	   18499 allocs/op
BenchmarkRunnerSweepCold        	       2	2260825890 ns/op
PASS
ok  	repro/internal/runner	10.313s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != Schema {
		t.Errorf("schema %q", doc.Schema)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkRunnerMultiTrialCold" || b.Iterations != 2 ||
		b.NsPerOp != 466024944 || b.BytesPerOp != 78110124 || b.AllocsPerOp != 47952 {
		t.Errorf("first benchmark parsed wrong: %+v", b)
	}
	// The GOMAXPROCS suffix must be stripped even when absent.
	if doc.Benchmarks[2].Name != "BenchmarkRunnerSweepCold" || doc.Benchmarks[2].BytesPerOp != 0 {
		t.Errorf("third benchmark parsed wrong: %+v", doc.Benchmarks[2])
	}
	if len(doc.Speedups) != 1 {
		t.Fatalf("derived %d speedups want 1 (SweepCold has no Warm partner)", len(doc.Speedups))
	}
	s := doc.Speedups[0]
	if s.Pair != "RunnerMultiTrial" || s.Speedup < 3.1 || s.Speedup > 3.2 {
		t.Errorf("speedup derived wrong: %+v", s)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"", "PASS", "ok  repro 1.2s", "Benchmark", "BenchmarkX abc 12 ns/op",
		"pkg: repro/internal/runner",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
