package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// compareDoc checks a freshly measured document against a committed
// baseline and reports per-benchmark regressions.
//
// Raw ns/op is not comparable across machines, so times are normalized
// first: the median of the per-benchmark current/baseline ratios is
// taken as the machine-speed factor, and a benchmark regresses only when
// its own ratio exceeds the median by more than the tolerance. A uniform
// slowdown (slower CI runner) cancels out; a single hot path getting
// slower relative to its peers does not. Allocations are deterministic
// and compared directly (with one alloc of slack for runtime noise), and
// warm/cold speedup pairs — already self-normalized ratios — must not
// shrink by more than the tolerance. A benchmark present in the baseline
// but missing from the current run is a regression too: deleting a
// benchmark silently unpins the win it was guarding.
type comparison struct {
	lines  []string
	failed bool
}

func (c *comparison) report(format string, args ...any) {
	c.lines = append(c.lines, fmt.Sprintf(format, args...))
}

func (c *comparison) fail(format string, args ...any) {
	c.failed = true
	c.report("REGRESSION: "+format, args...)
}

func compareDocs(base, cur *Document, tol float64) *comparison {
	c := &comparison{}
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}

	// Machine-speed normalizer: median current/baseline time ratio.
	var ratios []float64
	for _, b := range base.Benchmarks {
		if n, ok := curBy[b.Name]; ok && b.NsPerOp > 0 {
			ratios = append(ratios, n.NsPerOp/b.NsPerOp)
		}
	}
	if len(ratios) == 0 {
		c.fail("no benchmarks shared with the baseline")
		return c
	}
	sort.Float64s(ratios)
	norm := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		norm = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	c.report("machine-speed normalizer: x%.3f (median of %d time ratios), tolerance %d%%",
		norm, len(ratios), int(tol*100))

	for _, b := range base.Benchmarks {
		n, ok := curBy[b.Name]
		if !ok {
			c.fail("%s present in baseline but not measured", b.Name)
			continue
		}
		rel := n.NsPerOp / b.NsPerOp / norm
		if rel > 1+tol {
			c.fail("%s time x%.2f vs baseline after normalization (%.0f -> %.0f ns/op)",
				b.Name, rel, b.NsPerOp, n.NsPerOp)
		} else {
			c.report("ok: %s time x%.2f (%.0f -> %.0f ns/op)", b.Name, rel, b.NsPerOp, n.NsPerOp)
		}
		switch {
		case b.AllocsPerOp == 0 && n.AllocsPerOp > 0 && b.HasAllocs && n.HasAllocs:
			// A zero-alloc baseline is a hard invariant, not a statistic:
			// the rig-lease path is designed to 0 allocs/op and a single
			// new allocation there multiplies by the trial count. No
			// tolerance, no one-alloc slack.
			c.fail("%s allocs/op 0 -> %.0f (zero-alloc baseline must stay zero)", b.Name, n.AllocsPerOp)
		case n.AllocsPerOp > b.AllocsPerOp*(1+tol) && n.AllocsPerOp > b.AllocsPerOp+1:
			c.fail("%s allocs/op %.0f -> %.0f", b.Name, b.AllocsPerOp, n.AllocsPerOp)
		}
	}

	curSpeed := make(map[string]Speedup, len(cur.Speedups))
	for _, s := range cur.Speedups {
		curSpeed[s.Pair] = s
	}
	for _, s := range base.Speedups {
		n, ok := curSpeed[s.Pair]
		if !ok {
			continue // a missing pair is already flagged by the name check
		}
		if n.Speedup < s.Speedup*(1-tol) {
			c.fail("%s warm-start speedup %.2fx -> %.2fx", s.Pair, s.Speedup, n.Speedup)
		} else {
			c.report("ok: %s warm-start speedup %.2fx -> %.2fx", s.Pair, s.Speedup, n.Speedup)
		}
	}
	return c
}

// runCompare parses fresh `go test -bench` text from r, loads the
// baseline document, and writes the comparison report to w. It returns
// false when any benchmark regressed.
func runCompare(r io.Reader, w io.Writer, baselinePath string, tol float64) (bool, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, fmt.Errorf("baseline: %w", err)
	}
	var base Document
	if err := json.Unmarshal(raw, &base); err != nil {
		return false, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if base.Schema != Schema {
		return false, fmt.Errorf("baseline %s: schema %q, want %q", baselinePath, base.Schema, Schema)
	}
	cur, err := parseReader(r)
	if err != nil {
		return false, err
	}
	c := compareDocs(&base, cur, tol)
	fmt.Fprintln(w, strings.Join(c.lines, "\n"))
	return !c.failed, nil
}
