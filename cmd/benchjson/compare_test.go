package main

import (
	"strings"
	"testing"
)

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 10, NsPerOp: ns, AllocsPerOp: allocs}
}

func docOf(bs ...Benchmark) *Document {
	return &Document{Schema: Schema, Benchmarks: bs, Speedups: deriveSpeedups(bs)}
}

// A uniformly 2x-slower machine is not a regression: the median
// normalizer absorbs the whole shift.
func TestCompareNormalizesMachineSpeed(t *testing.T) {
	base := docOf(bench("BenchmarkA", 100, 2), bench("BenchmarkB", 1000, 0), bench("BenchmarkC", 50, 1))
	cur := docOf(bench("BenchmarkA", 200, 2), bench("BenchmarkB", 2000, 0), bench("BenchmarkC", 100, 1))
	if c := compareDocs(base, cur, 0.15); c.failed {
		t.Fatalf("uniform slowdown flagged as regression:\n%s", strings.Join(c.lines, "\n"))
	}
}

// One benchmark slowing relative to its peers is flagged even when the
// machine is otherwise faster.
func TestCompareCatchesRelativeSlowdown(t *testing.T) {
	base := docOf(bench("BenchmarkA", 100, 0), bench("BenchmarkB", 1000, 0), bench("BenchmarkC", 50, 0))
	cur := docOf(bench("BenchmarkA", 90, 0), bench("BenchmarkB", 900, 0), bench("BenchmarkC", 80, 0))
	c := compareDocs(base, cur, 0.15)
	if !c.failed {
		t.Fatal("relative slowdown of BenchmarkC not flagged")
	}
	if joined := strings.Join(c.lines, "\n"); !strings.Contains(joined, "BenchmarkC") {
		t.Errorf("report does not name the regressed benchmark:\n%s", joined)
	}
}

func TestCompareCatchesAllocGrowth(t *testing.T) {
	base := docOf(bench("BenchmarkA", 100, 2), bench("BenchmarkB", 100, 0))
	cur := docOf(bench("BenchmarkA", 100, 8), bench("BenchmarkB", 100, 0))
	if c := compareDocs(base, cur, 0.15); !c.failed {
		t.Fatal("alloc growth not flagged")
	}
	// One alloc of slack is allowed (runtime noise around boundaries).
	cur = docOf(bench("BenchmarkA", 100, 3), bench("BenchmarkB", 100, 0))
	if c := compareDocs(base, cur, 0.15); c.failed {
		t.Fatalf("one-alloc slack not honored:\n%s", strings.Join(c.lines, "\n"))
	}
}

// benchAlloc is bench with allocation reporting marked as measured, the
// way parseLine records a -benchmem result line.
func benchAlloc(name string, ns, allocs float64) Benchmark {
	b := bench(name, ns, allocs)
	b.HasAllocs = true
	return b
}

// A measured-zero alloc baseline is a hard invariant: growing to even one
// alloc/op fails, with no tolerance or slack (the rig-lease path is
// designed to zero and a single new allocation multiplies by trial count).
func TestCompareZeroAllocBaselineIsStrict(t *testing.T) {
	base := docOf(benchAlloc("BenchmarkLease", 100, 0), benchAlloc("BenchmarkOther", 100, 5))
	cur := docOf(benchAlloc("BenchmarkLease", 100, 1), benchAlloc("BenchmarkOther", 100, 5))
	c := compareDocs(base, cur, 0.15)
	if !c.failed {
		t.Fatal("0 -> 1 allocs/op on a measured zero-alloc baseline not flagged")
	}
	if joined := strings.Join(c.lines, "\n"); !strings.Contains(joined, "BenchmarkLease") {
		t.Errorf("report does not name the regressed benchmark:\n%s", joined)
	}
	// Staying at zero is fine.
	cur = docOf(benchAlloc("BenchmarkLease", 100, 0), benchAlloc("BenchmarkOther", 100, 5))
	if c := compareDocs(base, cur, 0.15); c.failed {
		t.Fatalf("unchanged zero-alloc benchmark flagged:\n%s", strings.Join(c.lines, "\n"))
	}
	// A baseline without measured allocs (no -benchmem) keeps the lenient
	// rule: 0 -> 1 under the old slack must not fail.
	base = docOf(bench("BenchmarkLease", 100, 0), bench("BenchmarkOther", 100, 5))
	cur = docOf(benchAlloc("BenchmarkLease", 100, 1), benchAlloc("BenchmarkOther", 100, 5))
	if c := compareDocs(base, cur, 0.15); c.failed {
		t.Fatalf("unmeasured baseline treated as strict zero:\n%s", strings.Join(c.lines, "\n"))
	}
}

func TestCompareCatchesMissingBenchmark(t *testing.T) {
	base := docOf(bench("BenchmarkA", 100, 0), bench("BenchmarkB", 100, 0))
	cur := docOf(bench("BenchmarkA", 100, 0))
	if c := compareDocs(base, cur, 0.15); !c.failed {
		t.Fatal("missing benchmark not flagged")
	}
}

// Warm/cold speedup pairs are self-normalized and must not shrink.
func TestCompareCatchesSpeedupLoss(t *testing.T) {
	base := docOf(bench("BenchmarkXCold", 300, 0), bench("BenchmarkXWarm", 100, 0),
		bench("BenchmarkY", 100, 0))
	cur := docOf(bench("BenchmarkXCold", 300, 0), bench("BenchmarkXWarm", 250, 0),
		bench("BenchmarkY", 100, 0))
	if c := compareDocs(base, cur, 0.15); !c.failed {
		t.Fatal("speedup collapse (3.0x -> 1.2x) not flagged")
	}
}
