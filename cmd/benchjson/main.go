// Command benchjson converts `go test -bench` text output into a stable
// machine-readable JSON document, so CI can archive benchmark results as
// artifacts and downstream tooling can track the perf trajectory across
// commits without scraping test logs.
//
// Usage:
//
//	go test -run '^$' -bench Runner -benchtime 2x ./internal/runner | benchjson > BENCH_runner.json
//	go test -run '^$' -bench . ./internal/... | benchjson -compare BENCH_runner.json
//
// Lines that are not benchmark results (the pkg/cpu preamble, PASS/ok
// trailers) are ignored. For every Cold/Warm benchmark pair sharing a
// prefix (BenchmarkFooCold / BenchmarkFooWarm) a derived speedup entry is
// emitted, which is the headline number of the warm-start runner work.
//
// -compare switches to regression-gate mode: instead of emitting JSON,
// the freshly parsed results are checked against the committed baseline
// document and the program exits 1 when any benchmark slowed by more
// than -tolerance (default 0.15) after median normalization for machine
// speed, grew its allocations, lost its warm-start speedup, or vanished.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Schema identifies the document layout.
const Schema = "packetchasing-bench/v1"

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// HasAllocs distinguishes a measured 0 allocs/op from a run without
	// allocation reporting: omitempty drops the zero either way, and the
	// compare gate's zero-alloc invariant (a 0-alloc baseline must stay 0)
	// only makes sense between two measured values.
	HasAllocs bool `json:"has_allocs,omitempty"`
}

// Speedup is a derived Cold-vs-Warm ratio.
type Speedup struct {
	Pair    string  `json:"pair"`
	Cold    float64 `json:"cold_ns_per_op"`
	Warm    float64 `json:"warm_ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// Document is the emitted JSON root.
type Document struct {
	Schema     string      `json:"schema"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
}

func main() {
	compare := flag.String("compare", "", "baseline BENCH_*.json: gate stdin's results against it instead of emitting JSON")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional slowdown per benchmark in -compare mode")
	flag.Parse()
	if *compare != "" {
		ok, err := runCompare(os.Stdin, os.Stdout, *compare, *tolerance)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	doc, err := parseReader(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseReader parses bench text, insisting on at least one result line.
func parseReader(r io.Reader) (*Document, error) {
	doc, err := parse(bufio.NewScanner(r))
	if err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return doc, nil
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{Schema: Schema}
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	doc.Speedups = deriveSpeedups(doc.Benchmarks)
	return doc, nil
}

// parseLine decodes one `BenchmarkName-8  N  T ns/op [B B/op] [A allocs/op]`
// line; ok=false for anything else.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix so names are stable across runners.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
			b.HasAllocs = true
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// deriveSpeedups pairs XxxCold with XxxWarm by shared prefix.
func deriveSpeedups(bs []Benchmark) []Speedup {
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var out []Speedup
	for _, b := range bs {
		base, ok := strings.CutSuffix(b.Name, "Cold")
		if !ok {
			continue
		}
		warm, ok := byName[base+"Warm"]
		if !ok || warm.NsPerOp == 0 {
			continue
		}
		out = append(out, Speedup{
			Pair:    strings.TrimPrefix(base, "Benchmark"),
			Cold:    b.NsPerOp,
			Warm:    warm.NsPerOp,
			Speedup: b.NsPerOp / warm.NsPerOp,
		})
	}
	return out
}
