// Command chaser drives the attack end to end on a simulated machine,
// printing each phase's output: eviction-set discovery, footprint
// recovery, ring-sequence recovery, and a live packet chase.
//
// Usage:
//
//	chaser [-scale demo|paper] [-seed N] [-packets N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chase"
	"repro/internal/netmodel"
	"repro/internal/stats"

	repro "repro"
)

func main() {
	scaleFlag := flag.String("scale", "demo", "demo or paper machine")
	seed := flag.Int64("seed", 42, "root random seed")
	packets := flag.Int("packets", 64, "packets to chase in the online phase")
	flag.Parse()

	cfg := repro.DemoConfig(*seed)
	if *scaleFlag == "paper" {
		cfg = repro.PaperMachineConfig(*seed)
	}
	m, err := repro.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("machine: %s\n", m.Testbed.Cache().String())
	fmt.Printf("spy: %d pages mapped, hit=%d miss=%d cycles\n",
		m.Spy.Pages(), m.Spy.HitLatency(), m.Spy.MissLatency())
	fmt.Printf("offline phase: %d page-aligned conflict groups discovered\n", len(m.Groups))

	// Footprint: idle vs receiving.
	wire := netmodel.NewWire(netmodel.GigabitRate)
	fp := m.DiscoverFootprint(func() {
		m.Testbed.SetTraffic(netmodel.NewConstantSource(wire, 128, 100_000, m.Testbed.Clock().Now(), -1))
	})
	fmt.Printf("footprint: %d groups light up while receiving (idle mean %.1f%%, busy mean %.1f%%)\n",
		len(fp.ActiveGroups), 100*chase.MeanRate(fp.IdleRate), 100*chase.MeanRate(fp.BusyRate))

	// Sequence recovery.
	seq, err := m.RecoverRingSequence()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sequence recovery:", err)
		os.Exit(1)
	}
	truth := m.GroundTruthRing()
	q := chase.EvaluateCyclic(m.CanonicalSequence(seq), m.CanonicalSequence(truth))
	fmt.Printf("sequence: recovered %d ring entries; Levenshtein %d vs ground truth (error %.1f%%)\n",
		len(seq), q.Levenshtein, 100*q.ErrorRate)

	// Online chase of a mixed-size stream.
	sizes := make([]int, *packets)
	gaps := make([]uint64, *packets)
	for i := range sizes {
		sizes[i] = netmodel.SizeForBlocks(i%4 + 1)
		gaps[i] = 400_000
	}
	m.Testbed.SetTraffic(netmodel.NewTraceSource(wire, sizes, gaps, m.Testbed.Clock().Now()+100_000))
	obs := m.ChasePackets(truth, *packets)
	classes := chase.SizeTrace(obs)
	fmt.Printf("chase: observed %d packets, size classes: %v\n", len(classes), classes)

	sent := make([]int, len(sizes))
	for i, s := range sizes {
		c := (s + 63) / 64
		if c > 4 {
			c = 4
		}
		sent[i] = c
	}
	if len(classes) > 0 {
		fmt.Printf("chase fidelity: edit distance %d over %d observed packets\n",
			stats.Levenshtein(sent[:len(classes)], classes), len(classes))
	}
}
