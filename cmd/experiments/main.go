// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp id,id,...|all] [-scale demo|paper] [-seed N]
//
// Experiment ids follow the paper: fig5..fig16, table1, table2,
// fingerprint. Demo scale (default) runs a structurally faithful scaled
// machine in seconds; paper scale runs the full 20 MB machine and can take
// minutes per offline-phase experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	scaleFlag := flag.String("scale", "demo", "demo or paper")
	seed := flag.Int64("seed", 1, "root random seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Short)
		}
		return
	}
	scale := experiments.Demo
	switch *scaleFlag {
	case "demo":
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want demo or paper)\n", *scaleFlag)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Print(res.Format())
		fmt.Printf("(%s, %s scale, %.1fs wall)\n\n", e.ID, scale, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
