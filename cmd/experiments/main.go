// Command experiments regenerates the paper's tables and figures through
// the concurrent multi-trial runner, and runs the parameter-sweep
// sensitivity studies.
//
// Usage:
//
//	experiments [-exp id,id,...|all] [-scale demo|paper] [-seed N]
//	            [-trials T] [-parallel N] [-warm|-cold] [-artifact-dir dir]
//	            [-artifact-max-bytes N] [-checkpoint-dir dir] [-resume]
//	            [-trial-budget N] [-pprof addr] [-format text|json]
//	            [-o file] [-v|-q]
//	experiments -sweep id [-defense name,name,...] [same flags]
//	experiments -search [-search-budget N] [-search-eps E] [same flags]
//
// Experiment ids follow the paper: fig5..fig16, table1, table2,
// fingerprint (use -list for the full set, including sweep ids). Demo
// scale (default) runs a structurally faithful scaled machine in seconds;
// paper scale runs the full 20 MB machine and can take minutes per
// offline-phase experiment.
//
// Each experiment runs as T trials with decorrelated seeds derived from
// the root seed, fanned out over a worker pool. For phase-split
// experiments the trials share one prepared machine (trial 0's) and
// differ in re-derived ambient randomness — timer jitter, background
// noise, online streams — so the reported spread is measurement
// variance on a fixed machine, not machine-layout variance; single-shot
// experiments still rebuild everything per trial. Metrics are
// aggregated into mean / stddev / min-max; -format json emits a stable
// machine-readable document whose bytes depend only on (selection,
// scale, seed, trials) — never on -parallel or -warm/-cold — so CI can
// diff it.
//
// -sweep runs one sensitivity study instead: the sweep's cartesian grid
// of scenario axes is fanned out over the worker pool with decorrelated
// per-cell seeds, and the aggregated curve is emitted keyed by cell
// coordinates under the packetchasing-sweep/v2 schema (numeric coords
// plus name labels for categorical axes like the defense registry), with
// the same parallel-width byte-determinism contract. -defense restricts
// a sweep's defense axis to the named defenses without changing the
// surviving cells' keys or seeds: a restricted run is byte-identical to
// the matching slice of the full sweep.
//
// -search runs the defense Pareto-frontier search instead: a two-phase
// driver (coarse grid over partition way-counts, ring re-randomization
// periods, and timer-coarsening granularities; then hill-climb
// refinement around the current frontier) scores up to -search-budget
// candidate defenses on leakage (strongest calibrated attack) versus
// overhead (perfsim Nginx p99 delta) and emits the ε-non-dominated
// frontier under the packetchasing-frontier/v1 schema. -search-eps sets
// the overhead-axis dominance slack (0 = the default 0.005; negative =
// strict). The report is byte-deterministic across -parallel widths and
// resumable via -checkpoint-dir/-resume like any other run.
//
// Warm starts (the default) exploit the attack's phase structure: the
// expensive offline phase — eviction-set construction, latency
// calibration — is run once per distinct machine shape and snapshotted;
// every further trial (and every sweep cell whose swept axes don't touch
// offline state) measures on machines cloned from the snapshot. -cold
// disables the reuse. -artifact-dir additionally persists the artifacts
// to disk, content-addressed by the same key, so the next invocation (or
// a CI job with a restored cache directory) skips the offline phases
// entirely; -artifact-max-bytes caps that directory with least-recently-
// used eviction. The output bytes are identical in every mode; only the
// wall clock differs.
//
// -checkpoint-dir journals every completed trial to a content-addressed
// file keyed by the run's identity (kind, sweep id, scale, seed, trials).
// A later invocation with -resume replays the journaled trials and runs
// only what is missing; the emitted report is byte-identical to an
// uninterrupted run. -trial-budget N bounds how many trials one
// invocation executes (replayed trials are free), so a long sweep can be
// split across invocations — or a CI job can deliberately stop partway
// and prove resume correctness.
//
// Progress on stderr defaults to a throttled one-line summary
// (done/total, percentage, ETA); -v restores the per-trial log and -q
// silences both.
//
// Exit status: 0 when every selected experiment (or sweep cell)
// succeeded, 1 when any failed, 2 on usage errors, 3 when -trial-budget
// stopped the run before completion.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/search"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	sweep := flag.String("sweep", "", "run one parameter sweep by id instead of -exp (use -list)")
	scaleFlag := flag.String("scale", "demo", "demo or paper")
	seed := flag.Int64("seed", 1, "root random seed")
	trials := flag.Int("trials", 1, "trials per experiment (phase-split experiments measure one prepared machine under per-trial ambient randomness; others rebuild fully per trial)")
	parallel := flag.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS)")
	warm := flag.Bool("warm", true, "reuse offline artifacts (eviction sets, machine snapshots) across trials and sweep cells")
	cold := flag.Bool("cold", false, "rebuild the (shared, trial-0-seeded) offline artifacts for every trial instead of caching them (overrides -warm; results are byte-identical either way)")
	artifactDir := flag.String("artifact-dir", "", "persist offline artifacts to this directory, content-addressed, so repeated invocations skip offline phases (warm mode only; results are byte-identical either way)")
	artifactMax := flag.Int64("artifact-max-bytes", 0, "cap the -artifact-dir store at N bytes, evicting least-recently-used entries (0 = unlimited; eviction only costs rebuild time)")
	defenseFlag := flag.String("defense", "", "comma-separated defense names restricting a sweep's defense axis (requires -sweep; cell keys and seeds match the full sweep's)")
	searchFlag := flag.Bool("search", false, "run the defense Pareto-frontier search instead of -exp/-sweep")
	searchBudget := flag.Int("search-budget", 0, "total candidate evaluations for -search (0 = default 240)")
	searchEps := flag.Float64("search-eps", 0, "overhead-axis ε-dominance slack for -search (0 = default 0.005; negative = strict dominance)")
	checkpointDir := flag.String("checkpoint-dir", "", "journal each completed trial to this directory, keyed by the run identity (results are byte-identical either way)")
	resume := flag.Bool("resume", false, "replay completed trials from the -checkpoint-dir journal and execute only the rest")
	trialBudget := flag.Int("trial-budget", 0, "execute at most N trials this invocation (0 = unlimited; requires -checkpoint-dir; exit status 3 when work remains)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the run executes")
	format := flag.String("format", "text", "output format: text or json")
	out := flag.String("o", "", "write results to file instead of stdout")
	verbose := flag.Bool("v", false, "per-trial progress lines on stderr instead of the throttled summary")
	quiet := flag.Bool("q", false, "suppress all progress on stderr")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			if e.Kind == experiments.KindSweep {
				fmt.Printf("%-18s [sweep, %d cells] %s\n", e.ID, e.Grid.Size(), e.Short)
			} else {
				fmt.Printf("%-18s %s\n", e.ID, e.Short)
			}
		}
		return 0
	}
	scale := experiments.Demo
	switch *scaleFlag {
	case "demo":
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want demo or paper)\n", *scaleFlag)
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want text or json)\n", *format)
		return 2
	}
	if *trials < 1 {
		fmt.Fprintf(os.Stderr, "-trials must be >= 1\n")
		return 2
	}

	if !*searchFlag && (*searchBudget != 0 || *searchEps != 0) {
		fmt.Fprintf(os.Stderr, "-search-budget and -search-eps require -search\n")
		return 2
	}
	var selected []experiments.Experiment
	var sweepSel experiments.Sweep
	if *searchFlag {
		if *sweep != "" || *exp != "all" || *defenseFlag != "" {
			fmt.Fprintf(os.Stderr, "-search is mutually exclusive with -exp, -sweep, and -defense\n")
			return 2
		}
		if *trials != 1 {
			// A candidate's score is already a pure function of (params,
			// scale, seed); repeated trials would re-measure identical
			// numbers under the search's one-trial journal identity.
			fmt.Fprintf(os.Stderr, "-search runs one trial per candidate (drop -trials)\n")
			return 2
		}
	} else if *sweep != "" {
		if *exp != "all" {
			fmt.Fprintf(os.Stderr, "-sweep and -exp are mutually exclusive\n")
			return 2
		}
		ent, ok := experiments.Lookup(*sweep)
		if !ok || ent.Kind != experiments.KindSweep {
			fmt.Fprintf(os.Stderr, "unknown sweep %q (use -list)\n", *sweep)
			return 2
		}
		sweepSel = ent.Sweep
		if *defenseFlag != "" {
			grid, err := sweepSel.Grid.Restrict(scenario.AxisDefense, strings.Split(*defenseFlag, ","))
			if err != nil {
				fmt.Fprintf(os.Stderr, "-defense: %v\n", err)
				return 2
			}
			sweepSel.Grid = grid
		}
	} else if *defenseFlag != "" {
		fmt.Fprintf(os.Stderr, "-defense requires -sweep\n")
		return 2
	} else if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ent, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok || ent.Kind != experiments.KindExperiment {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, ent.Experiment)
		}
	}

	if *pprofAddr != "" {
		// Listen synchronously so a bad address fails fast, then serve in
		// the background; the blank pprof import registered its handlers
		// on the default mux. The listener dies with the process.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-pprof: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil)
	}

	// Open the output file before the sweep so a bad path fails fast
	// instead of discarding a potentially hours-long run.
	dst := io.Writer(os.Stdout)
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "open output: %v\n", err)
			return 2
		}
		outFile = f
		dst = f
	}

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	width := *parallel
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	if *artifactDir != "" && (*cold || !*warm) {
		fmt.Fprintf(os.Stderr, "-artifact-dir requires warm mode (drop -cold)\n")
		return 2
	}
	if *artifactMax > 0 && *artifactDir == "" {
		fmt.Fprintf(os.Stderr, "-artifact-max-bytes requires -artifact-dir\n")
		return 2
	}
	if (*resume || *trialBudget > 0) && *checkpointDir == "" {
		fmt.Fprintf(os.Stderr, "-resume and -trial-budget require -checkpoint-dir\n")
		return 2
	}
	cfg := runner.Config{
		Parallel:         width,
		Warm:             *warm && !*cold,
		ArtifactDir:      *artifactDir,
		ArtifactMaxBytes: *artifactMax,
		CheckpointDir:    *checkpointDir,
		Resume:           *resume,
		TrialBudget:      *trialBudget,
		Progress:         progress,
		Verbose:          *verbose,
	}
	rn := runner.New(cfg)
	job := runner.Job{Scale: scale, Seed: *seed, Trials: *trials}
	// Both report kinds share the output and exit-status contract.
	var rep interface {
		WriteJSON(io.Writer) error
		WriteText(io.Writer) error
		Failed() int
	}
	var total int
	unit := "experiment"
	start := time.Now()
	if *searchFlag {
		budget := *searchBudget
		if budget <= 0 {
			budget = search.DefaultBudget
		}
		if progress != nil {
			fmt.Fprintf(progress, "searching the defense frontier: budget %d candidate(s) on %d worker(s), %s scale, seed %d\n",
				budget, width, scale, *seed)
		}
		r, err := search.Run(search.Options{
			Scale:   scale,
			Seed:    *seed,
			Budget:  *searchBudget,
			Epsilon: *searchEps,
			Runner:  cfg,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "search: %v\n", err)
			if errors.Is(err, runner.ErrBudget) {
				return 3
			}
			return 2
		}
		rep, total, unit = r, r.Evaluated, "candidate"
	} else if *sweep != "" {
		if progress != nil {
			fmt.Fprintf(progress, "sweeping %s: %d cell(s) x %d trial(s) on %d worker(s), %s scale, seed %d\n",
				sweepSel.ID, sweepSel.Grid.Size(), *trials, width, scale, *seed)
		}
		r, err := rn.RunSweep(sweepSel, job)
		if err != nil {
			fmt.Fprintf(os.Stderr, "runner: %v\n", err)
			if errors.Is(err, runner.ErrBudget) {
				return 3
			}
			return 2
		}
		rep, total, unit = r, len(r.Cells), "cell"
	} else {
		if progress != nil {
			fmt.Fprintf(progress, "running %d experiment(s) x %d trial(s) on %d worker(s), %s scale, seed %d\n",
				len(selected), *trials, width, scale, *seed)
		}
		r, err := rn.Run(selected, job)
		if err != nil {
			fmt.Fprintf(os.Stderr, "runner: %v\n", err)
			if errors.Is(err, runner.ErrBudget) {
				return 3
			}
			return 2
		}
		rep, total = r, len(r.Experiments)
	}
	if progress != nil {
		fmt.Fprintf(progress, "finished in %.1fs wall\n", time.Since(start).Seconds())
	}

	var werr error
	if *format == "json" {
		werr = rep.WriteJSON(dst)
	} else {
		werr = rep.WriteText(dst)
	}
	if werr == nil && outFile != nil {
		// Close errors matter: a failed write-back flush would leave a
		// truncated results file behind a zero exit status.
		werr = outFile.Close()
	}
	if werr != nil {
		if outFile != nil {
			// Don't leave a truncated document for a later consumer.
			// Only regular files: -o may point at a device or pipe.
			outFile.Close()
			if fi, serr := os.Stat(outFile.Name()); serr == nil && fi.Mode().IsRegular() {
				os.Remove(outFile.Name())
			}
		}
		fmt.Fprintf(os.Stderr, "write results: %v\n", werr)
		return 2
	}

	if failed := rep.Failed(); failed > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d %s(s) failed\n", failed, total, unit)
		return 1
	}
	return 0
}
