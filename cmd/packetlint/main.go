// Command packetlint runs the repro determinism lint suite — detcore,
// snapcover, rngflow, mapemit (see internal/analyzers) — over Go
// packages. It is runnable two ways:
//
//	packetlint ./...                            # standalone
//	go vet -vettool=$(which packetlint) ./...   # as a vet tool
//
// Standalone mode loads packages itself (via go list + export data) and
// needs no toolchain integration; vet mode speaks cmd/go's vet config
// protocol (-V=full, -flags, one invocation per package with a vet.cfg),
// so the suite composes with `go vet`'s caching and package graph.
//
// Exit status: 0 clean, 1 usage/load error, 2 diagnostics found.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vet-tool protocol first: cmd/go probes with -V=full / -flags and
	// then invokes the tool once per package with a *.cfg path.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Println("packetlint version 1")
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(a, ".cfg"):
			return runVet(a)
		}
	}

	fs := flag.NewFlagSet("packetlint", flag.ContinueOnError)
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("dir", ".", "directory to resolve package patterns in")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analyzers.Suite() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "packetlint:", err)
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "packetlint:", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		findings, err := analyzers.RunAnalyzers(pkg, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "packetlint:", err)
			return 1
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
			exit = 2
		}
	}
	return exit
}

func selectAnalyzers(runList string) ([]*analyzers.Analyzer, error) {
	if runList == "" {
		return analyzers.Suite(), nil
	}
	var suite []*analyzers.Analyzer
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		a := analyzers.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		suite = append(suite, a)
	}
	return suite, nil
}
