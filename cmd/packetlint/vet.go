package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyzers"
)

// vetConfig is the JSON document cmd/go hands a -vettool for each
// package: sources to analyze plus the import map and export-data files
// needed to type-check them. Mirrors cmd/go/internal/work's vetConfig.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOutput  string
	VetxOnly    bool

	SucceedOnTypecheckFailure bool
}

// runVet analyzes one package described by a vet.cfg. Diagnostics go to
// stderr; exit 2 signals findings to cmd/go, matching the unitchecker
// convention.
func runVet(cfgPath string) int {
	b, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "packetlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(b, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "packetlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts protocol: we export none, but the output file must exist for
	// downstream packages' cfgs to reference.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "packetlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The suite binds shipped simulation code; test scaffolding is
		// exempt (see internal/analyzers), so test-variant packages only
		// re-check their non-test sources.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "packetlint:", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "packetlint:", err)
		return 1
	}

	pkg := &analyzers.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	findings, err := analyzers.RunAnalyzers(pkg, analyzers.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "packetlint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
