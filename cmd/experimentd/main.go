// Command experimentd is the long-running experiment service: an HTTP
// daemon over the streaming runner that accepts experiment and sweep
// jobs from many clients, executes them against one shared worker pool,
// artifact store, and checkpoint directory, and serves their reports
// and live event streams.
//
// The daemon's reports are byte-identical to solo cmd/experiments runs
// of the same specs — concurrency, shared caches, and restarts never
// change result bytes. Shutdown is deliberately abrupt-safe: in-flight
// jobs journal every completed trial, so killing the daemon loses at
// most partially-executed trials; the next start resumes the rest.
//
// Usage:
//
//	experimentd [-addr 127.0.0.1:7070] [-state-dir .experimentd]
//	            [-parallel N] [-artifact-max-bytes N] [-q]
//
// See the README's "Experiment service" section for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	stateDir := flag.String("state-dir", ".experimentd", "persistent state directory (jobs, checkpoints, artifacts)")
	parallel := flag.Int("parallel", 0, "max concurrent trial executions across all jobs (0 = GOMAXPROCS)")
	artifactMax := flag.Int64("artifact-max-bytes", 0, "LRU size cap for the shared artifact store (0 = unlimited)")
	quiet := flag.Bool("q", false, "suppress per-job log lines")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "experimentd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "experimentd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	svc, err := service.Open(service.Config{
		StateDir:         *stateDir,
		Parallel:         *parallel,
		ArtifactMaxBytes: *artifactMax,
		Logf:             logf,
	})
	if err != nil {
		logger.Print(err)
		os.Exit(1)
	}

	// The service handler owns the API namespace; profiling lives on an
	// outer mux so a long-running daemon can always be inspected with
	// `go tool pprof http://ADDR/debug/pprof/profile` without restarting.
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", svc.Handler())
	srv := &http.Server{Addr: *addr, Handler: mux}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		// Stop listening, then exit without draining jobs: every
		// completed trial is already journaled, so the next start
		// resumes in-flight jobs instead of re-running them.
		logger.Printf("%v: shutting down (in-flight jobs resume on restart)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	logger.Printf("state dir %s, pool width %d, listening on http://%s", *stateDir, svc.PoolWidth(), *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Print(err)
		os.Exit(1)
	}
}
