package mem

import (
	"testing"

	"repro/internal/sim"
)

// The allocator sits on two hot paths: page churn during eviction-set
// construction (alloc/free), and machine cloning during warm starts
// (snapshot/restore). Both benchmarks pin the frame-number bitmap that
// replaced the used map: constant-time mark/unmark without hashing, and
// memcpy snapshots.

func BenchmarkAllocFreeCycle(b *testing.B) {
	al := NewAllocator(1<<30, sim.Derive(1, "bench-mem"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := al.AllocPage()
		if err != nil {
			b.Fatal(err)
		}
		al.FreePage(a)
	}
}

func BenchmarkAllocatorSnapshotRestore(b *testing.B) {
	al := NewAllocator(1<<30, sim.Derive(1, "bench-mem"))
	for i := 0; i < 4096; i++ {
		if _, err := al.AllocPage(); err != nil {
			b.Fatal(err)
		}
	}
	s := al.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Restore(s)
		s = al.Snapshot()
	}
}
