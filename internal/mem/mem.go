// Package mem models the machine's physical address space and the two views
// the Packet Chasing attack cares about: the kernel page allocator that
// hands the NIC driver its rx-ring buffer pages, and the virtual mappings a
// user-space spy process obtains for building eviction sets.
//
// Only addresses are modeled, never data contents — the attack observes
// cache-set occupancy, not payload bytes. Physical frame numbers are handed
// out in a randomized order, which is what makes the buffer-to-cache-set
// mapping non-uniform (paper Figs 5 and 6): each 4 KB page lands on one of
// 256 page-aligned set groups essentially uniformly at random, so the
// number of ring buffers per group follows a birthday-style distribution.
package mem

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/sim"
)

// PageSize is the system page size. The IGB driver packs two 2 KB rx
// buffers into each 4 KB page (paper §III-A).
const PageSize = 4096

// LineSize is the cache line size; buffer sizes and packet sizes are
// expressed in 64-byte blocks throughout the paper.
const LineSize = 64

// Addr is a physical byte address.
type Addr uint64

// PageAligned reports whether a sits on a page boundary.
func (a Addr) PageAligned() bool { return a%PageSize == 0 }

// Line returns the address of the cache line containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// Page returns the address of the page containing a.
func (a Addr) Page() Addr { return a &^ (PageSize - 1) }

// Allocator is a physical page allocator. Frames are issued in a seeded
// pseudo-random order to model the state of a long-running kernel buddy
// allocator; sequential physical allocation would (unrealistically) give
// the driver a perfectly uniform buffer-to-set mapping.
type Allocator struct {
	free []uint64 // shuffled free frame numbers, consumed from the tail
	// used is a frame-number bitmap. It replaced a map[uint64]bool: the
	// bitmap allocs/frees without hashing, and — the reason it matters —
	// snapshots and restores with a memcpy instead of a map rebuild,
	// which sat on the warm-start clone path of every trial.
	used     []bool
	numPages uint64
}

// NewAllocator creates an allocator over totalBytes of physical memory,
// shuffled with the given RNG.
func NewAllocator(totalBytes uint64, rng *sim.RNG) *Allocator {
	n := totalBytes / PageSize
	if n == 0 {
		panic("mem: allocator needs at least one page")
	}
	free := make([]uint64, n)
	for i := range free {
		free[i] = uint64(i)
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	return &Allocator{free: free, used: make([]bool, n), numPages: n}
}

// TotalPages returns the number of physical pages.
func (al *Allocator) TotalPages() uint64 { return al.numPages }

// FreePages returns the number of currently free pages.
func (al *Allocator) FreePages() int { return len(al.free) }

// NewAllocatorShell creates an allocator over totalBytes with no free
// pages and no RNG work — a restore target. The expensive part of
// NewAllocator is shuffling the free-frame list; a shell skips it because
// Restore overwrites the list wholesale with the snapshot's exact order.
// A shell that is never restored cannot allocate (every AllocPage fails).
func NewAllocatorShell(totalBytes uint64) *Allocator {
	n := totalBytes / PageSize
	if n == 0 {
		panic("mem: allocator needs at least one page")
	}
	return &Allocator{used: make([]bool, n), numPages: n}
}

// AllocatorState is a deep copy of an allocator's free/used bookkeeping,
// taken by Snapshot and reapplied by Restore. The free list order is part
// of the state: it determines every future allocation.
type AllocatorState struct {
	free     []uint64
	used     []bool // frame-number bitmap, like Allocator.used
	numPages uint64
}

// Snapshot captures the allocator's state. The returned value is immutable
// and safe to restore into any allocator built over the same memory size.
func (al *Allocator) Snapshot() *AllocatorState {
	st := &AllocatorState{}
	al.SnapshotInto(st)
	return st
}

// SnapshotInto captures the allocator's state into a caller-owned scratch
// snapshot, reusing its backing slices. It exists for the offline/build
// path and benchmarks that snapshot repeatedly; a snapshot filed in an
// artifact must be a fresh Snapshot(), since artifacts rely on snapshot
// immutability.
func (al *Allocator) SnapshotInto(st *AllocatorState) {
	st.free = append(st.free[:0], al.free...)
	st.used = append(st.used[:0], al.used...)
	st.numPages = al.numPages
}

// allocatorStateGob mirrors AllocatorState with exported fields for the
// disk-backed artifact store. Free-list order is preserved exactly (it
// determines every future allocation); the used set is sorted for a
// canonical encoding.
type allocatorStateGob struct {
	Free     []uint64
	Used     []uint64
	NumPages uint64
}

// GobEncode serializes the allocator state (disk-backed warm starts).
func (st *AllocatorState) GobEncode() ([]byte, error) {
	w := allocatorStateGob{
		Free:     st.free,
		NumPages: st.numPages,
	}
	// Ascending bitmap order is already the sorted canonical encoding the
	// map-backed implementation produced.
	for pfn, u := range st.used {
		if u {
			w.Used = append(w.Used, uint64(pfn))
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode rebuilds allocator state from its serialized form.
func (st *AllocatorState) GobDecode(b []byte) error {
	var w allocatorStateGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	st.free = w.Free
	st.numPages = w.NumPages
	st.used = make([]bool, w.NumPages)
	for _, pfn := range w.Used {
		st.used[pfn] = true
	}
	return nil
}

// Restore overwrites the allocator's state from a snapshot. It panics on a
// memory-size mismatch (snapshots never move between machine shapes). The
// copies reuse the allocator's existing backing arrays: once they have
// grown to the free-list's size, repeated restores — the rig-pool lease
// path runs one per warm trial — are pure memcpys with zero allocations.
func (al *Allocator) Restore(st *AllocatorState) {
	if st.numPages != al.numPages {
		panic(fmt.Sprintf("mem: restoring %d-page snapshot into %d-page allocator", st.numPages, al.numPages))
	}
	al.free = append(al.free[:0], st.free...)
	al.used = append(al.used[:0], st.used...)
}

// AllocPage returns the base address of a newly allocated physical page.
func (al *Allocator) AllocPage() (Addr, error) {
	if len(al.free) == 0 {
		return 0, fmt.Errorf("mem: out of physical pages (%d total)", al.numPages)
	}
	pfn := al.free[len(al.free)-1]
	al.free = al.free[:len(al.free)-1]
	al.used[pfn] = true
	return Addr(pfn * PageSize), nil
}

// AllocPageRandom returns a page drawn uniformly from the free list. The
// plain AllocPage is effectively LIFO once pages cycle (like a real buddy
// allocator preferring cache-hot pages), which would quietly defeat the
// §VI-b ring-randomization defense: a "fresh" buffer would land on the
// page just vacated. Randomized placement is the point of that defense,
// so it allocates through this method.
func (al *Allocator) AllocPageRandom(rng *sim.RNG) (Addr, error) {
	if len(al.free) == 0 {
		return 0, fmt.Errorf("mem: out of physical pages (%d total)", al.numPages)
	}
	i := rng.Intn(len(al.free))
	pfn := al.free[i]
	al.free[i] = al.free[len(al.free)-1]
	al.free = al.free[:len(al.free)-1]
	al.used[pfn] = true
	return Addr(pfn * PageSize), nil
}

// AllocPages allocates n pages, returning their base addresses.
func (al *Allocator) AllocPages(n int) ([]Addr, error) {
	out := make([]Addr, 0, n)
	for i := 0; i < n; i++ {
		a, err := al.AllocPage()
		if err != nil {
			// Roll back partial allocation.
			for _, p := range out {
				al.FreePage(p)
			}
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// FreePage returns a page to the allocator. Freeing an unallocated or
// unaligned address panics: both indicate a driver-model bug.
func (al *Allocator) FreePage(a Addr) {
	if !a.PageAligned() {
		panic(fmt.Sprintf("mem: freeing unaligned address %#x", uint64(a)))
	}
	pfn := uint64(a) / PageSize
	if pfn >= al.numPages || !al.used[pfn] {
		panic(fmt.Sprintf("mem: double free of frame %d", pfn))
	}
	al.used[pfn] = false
	al.free = append(al.free, pfn)
}

// Region is a contiguous virtual mapping owned by the spy process. The spy
// addresses it by offset; the physical frames backing it are known to the
// simulator but are deliberately not exposed through the methods the attack
// code uses — the attack must discover conflicts through timing, exactly as
// on real hardware where user space cannot read /proc/self/pagemap without
// privileges.
type Region struct {
	pages []Addr
}

// NewRegion maps n pages of fresh physical memory.
func NewRegion(al *Allocator, n int) (*Region, error) {
	pages, err := al.AllocPages(n)
	if err != nil {
		return nil, err
	}
	return &Region{pages: pages}, nil
}

// RegionFromPages rebuilds a region over frames that are already allocated
// — the warm-start path, where a restored allocator snapshot records the
// spy's pages as used and the region must be re-attached rather than
// re-allocated. The page list is copied.
func RegionFromPages(pages []Addr) *Region {
	return &Region{pages: append([]Addr(nil), pages...)}
}

// SetPages re-points an existing region at a new page list (copied into
// the region's reused backing array) — RegionFromPages for the rig-pool
// reuse path, where the spy's region object survives across leases and a
// fresh allocation per lease would defeat the pool.
func (r *Region) SetPages(pages []Addr) {
	r.pages = append(r.pages[:0], pages...)
}

// PageAddrs returns the physical base addresses of the region's pages, in
// mapping order (snapshot support; attack code never reads this).
func (r *Region) PageAddrs() []Addr {
	return append([]Addr(nil), r.pages...)
}

// Size returns the region size in bytes.
func (r *Region) Size() uint64 { return uint64(len(r.pages)) * PageSize }

// Pages returns the number of mapped pages.
func (r *Region) Pages() int { return len(r.pages) }

// Translate converts a virtual offset within the region to the backing
// physical address. This is the MMU's job; the spy never calls it directly,
// it is used by the cache model when the spy touches memory.
func (r *Region) Translate(off uint64) Addr {
	pageIdx := off / PageSize
	if pageIdx >= uint64(len(r.pages)) {
		panic(fmt.Sprintf("mem: offset %#x beyond region of %d pages", off, len(r.pages)))
	}
	return r.pages[pageIdx] + Addr(off%PageSize)
}

// Release returns all backing frames to the allocator.
func (r *Region) Release(al *Allocator) {
	for _, p := range r.pages {
		al.FreePage(p)
	}
	r.pages = nil
}
