package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAllocatorBasics(t *testing.T) {
	al := NewAllocator(16*PageSize, sim.NewRNG(1))
	if al.TotalPages() != 16 {
		t.Fatalf("total pages %d want 16", al.TotalPages())
	}
	a, err := al.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if !a.PageAligned() {
		t.Errorf("allocated address %#x not page aligned", uint64(a))
	}
	if al.FreePages() != 15 {
		t.Errorf("free pages %d want 15", al.FreePages())
	}
	al.FreePage(a)
	if al.FreePages() != 16 {
		t.Errorf("free pages after free %d want 16", al.FreePages())
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	al := NewAllocator(4*PageSize, sim.NewRNG(1))
	if _, err := al.AllocPages(4); err != nil {
		t.Fatal(err)
	}
	if _, err := al.AllocPage(); err == nil {
		t.Error("expected exhaustion error")
	}
}

func TestAllocPagesRollsBackOnFailure(t *testing.T) {
	al := NewAllocator(4*PageSize, sim.NewRNG(1))
	if _, err := al.AllocPages(10); err == nil {
		t.Fatal("expected failure")
	}
	if al.FreePages() != 4 {
		t.Errorf("partial allocation leaked: %d free want 4", al.FreePages())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	al := NewAllocator(4*PageSize, sim.NewRNG(1))
	a, _ := al.AllocPage()
	al.FreePage(a)
	defer func() {
		if recover() == nil {
			t.Error("double free must panic")
		}
	}()
	al.FreePage(a)
}

func TestUnalignedFreePanics(t *testing.T) {
	al := NewAllocator(4*PageSize, sim.NewRNG(1))
	a, _ := al.AllocPage()
	defer func() {
		if recover() == nil {
			t.Error("unaligned free must panic")
		}
	}()
	al.FreePage(a + 64)
}

func TestAllocationIsRandomized(t *testing.T) {
	al := NewAllocator(1024*PageSize, sim.NewRNG(7))
	pages, _ := al.AllocPages(64)
	ascending := 0
	for i := 1; i < len(pages); i++ {
		if pages[i] > pages[i-1] {
			ascending++
		}
	}
	// A shuffled sequence should be near 50% ascending pairs; sequential
	// allocation would be 100%.
	if ascending > 55 {
		t.Errorf("allocation order looks sequential: %d/63 ascending", ascending)
	}
}

func TestAllocationUnique(t *testing.T) {
	f := func(seed int64) bool {
		al := NewAllocator(256*PageSize, sim.NewRNG(seed))
		pages, err := al.AllocPages(256)
		if err != nil {
			return false
		}
		seen := make(map[Addr]bool)
		for _, p := range pages {
			if seen[p] || !p.PageAligned() {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRegionTranslate(t *testing.T) {
	al := NewAllocator(16*PageSize, sim.NewRNG(3))
	r, err := NewRegion(al, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 4*PageSize {
		t.Errorf("size %d", r.Size())
	}
	// Offsets within one page stay within the backing page.
	base := r.Translate(PageSize)
	if r.Translate(PageSize+100) != base+100 {
		t.Error("intra-page offset must be preserved")
	}
	// Translation is page-granular, not contiguous across pages in general.
	for off := uint64(0); off < r.Size(); off += PageSize {
		if !r.Translate(off).PageAligned() {
			t.Error("page starts must translate to page-aligned physical")
		}
	}
	r.Release(al)
	if al.FreePages() != 16 {
		t.Errorf("release leaked: %d free", al.FreePages())
	}
}

func TestRegionOutOfBoundsPanics(t *testing.T) {
	al := NewAllocator(16*PageSize, sim.NewRNG(3))
	r, _ := NewRegion(al, 1)
	defer func() {
		if recover() == nil {
			t.Error("OOB translate must panic")
		}
	}()
	r.Translate(PageSize)
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(0x12345)
	if a.Line() != 0x12340 {
		t.Errorf("line %#x", uint64(a.Line()))
	}
	if a.Page() != 0x12000 {
		t.Errorf("page %#x", uint64(a.Page()))
	}
	if a.PageAligned() {
		t.Error("0x12345 is not page aligned")
	}
	if !Addr(0x12000).PageAligned() {
		t.Error("0x12000 is page aligned")
	}
}
