package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/search"
)

// Job kinds, aligned with the checkpoint journal's identity kinds so a
// job's journal is exactly the one a solo cmd/experiments run of the
// same spec would write and resume from.
const (
	// KindExperiments runs a selection of registry experiments.
	KindExperiments = "experiments"
	// KindSweep runs one parameter sweep.
	KindSweep = "sweep"
	// KindSearch runs the defense Pareto-frontier search.
	KindSearch = "search"
)

// JobSpec is the wire form of one job submission: what a client POSTs to
// /v1/jobs. It deliberately mirrors the cmd/experiments flag surface —
// every field maps onto a flag — because the service's headline
// correctness property is that a job's final report is byte-identical to
// a solo CLI run of the same spec. Anything that cannot be expressed as
// a solo run cannot be a job.
type JobSpec struct {
	// Kind is KindExperiments or KindSweep.
	Kind string `json:"kind"`
	// Experiments selects registry experiments for a KindExperiments job,
	// in report order (the CLI's -exp list). Empty or ["all"] runs the
	// full registry.
	Experiments []string `json:"experiments,omitempty"`
	// Sweep names the sweep of a KindSweep job (the CLI's -sweep).
	Sweep string `json:"sweep,omitempty"`
	// Scale is "demo" (default) or "paper".
	Scale string `json:"scale,omitempty"`
	// Seed is the root seed; omitted means 1, matching the CLI default.
	Seed *int64 `json:"seed,omitempty"`
	// Trials per experiment or cell; omitted means 1.
	Trials int `json:"trials,omitempty"`
	// Cold disables warm offline-artifact reuse (the CLI's -cold). Warm
	// jobs share the daemon's content-addressed store; bytes are
	// identical either way.
	Cold bool `json:"cold,omitempty"`
	// Defense, for sweep jobs whose grid has a defense axis, restricts
	// that axis to the named defenses (the CLI's -defense override).
	Defense []string `json:"defense,omitempty"`
	// Budget, for search jobs, caps total candidate evaluations (the
	// CLI's -search-budget); omitted means the search default.
	Budget int `json:"budget,omitempty"`
	// Epsilon, for search jobs, is the overhead-axis ε-dominance slack
	// (the CLI's -search-eps); omitted means the search default,
	// negative means strict dominance.
	Epsilon float64 `json:"epsilon,omitempty"`
}

// resolved is a validated, normalized spec bound to its runnable registry
// entries. The normalized spec (defaults applied) is what is persisted,
// hashed into the job ID, and echoed in status responses.
type resolved struct {
	id        string
	spec      JobSpec
	scale     experiments.Scale
	selection []experiments.Experiment // KindExperiments
	sweep     experiments.Sweep        // KindSweep, grid possibly restricted
	units     int                      // experiments or cells
}

// resolveSpec validates a submitted spec against the registry and
// normalizes it. Every error is a client error (HTTP 400): the registry
// is fixed at build time.
func resolveSpec(spec JobSpec) (resolved, error) {
	var r resolved
	switch spec.Scale {
	case "", "demo":
		r.scale = experiments.Demo
		spec.Scale = "demo"
	case "paper":
		r.scale = experiments.Paper
	default:
		return r, fmt.Errorf("unknown scale %q (want demo or paper)", spec.Scale)
	}
	if spec.Seed == nil {
		one := int64(1)
		spec.Seed = &one
	}
	if spec.Trials < 0 {
		return r, fmt.Errorf("trials must be >= 0 (0 means 1)")
	}
	if spec.Trials == 0 {
		spec.Trials = 1
	}

	if spec.Kind != KindSearch && (spec.Budget != 0 || spec.Epsilon != 0) {
		return r, fmt.Errorf("budget and epsilon require a search job")
	}

	switch spec.Kind {
	case KindExperiments:
		if spec.Sweep != "" {
			return r, fmt.Errorf("kind %q does not take a sweep", KindExperiments)
		}
		if len(spec.Defense) > 0 {
			return r, fmt.Errorf("defense override requires a sweep job")
		}
		ids := spec.Experiments
		if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
			spec.Experiments = []string{"all"}
			r.selection = experiments.All()
		} else {
			norm := make([]string, 0, len(ids))
			for _, id := range ids {
				id = strings.TrimSpace(id)
				ent, ok := experiments.Lookup(id)
				if !ok || ent.Kind != experiments.KindExperiment {
					return r, fmt.Errorf("unknown experiment %q", id)
				}
				norm = append(norm, id)
				r.selection = append(r.selection, ent.Experiment)
			}
			spec.Experiments = norm
		}
		r.units = len(r.selection)
	case KindSweep:
		if len(spec.Experiments) > 0 {
			return r, fmt.Errorf("kind %q does not take an experiment selection", KindSweep)
		}
		if spec.Sweep == "" {
			return r, fmt.Errorf("sweep job names no sweep")
		}
		ent, ok := experiments.Lookup(spec.Sweep)
		if !ok || ent.Kind != experiments.KindSweep {
			return r, fmt.Errorf("unknown sweep %q", spec.Sweep)
		}
		r.sweep = ent.Sweep
		if len(spec.Defense) > 0 {
			grid, err := r.sweep.Grid.Restrict(scenario.AxisDefense, spec.Defense)
			if err != nil {
				return r, fmt.Errorf("defense override: %w", err)
			}
			r.sweep.Grid = grid
		}
		r.units = r.sweep.Grid.Size()
	case KindSearch:
		if len(spec.Experiments) > 0 || spec.Sweep != "" || len(spec.Defense) > 0 {
			return r, fmt.Errorf("kind %q takes no experiment, sweep, or defense selection", KindSearch)
		}
		if spec.Trials != 1 {
			// A candidate's score is a pure function of (params, scale,
			// seed); the search journals one trial per candidate.
			return r, fmt.Errorf("search jobs run one trial per candidate")
		}
		if spec.Budget < 0 {
			return r, fmt.Errorf("budget must be >= 0 (0 means the default %d)", search.DefaultBudget)
		}
		if spec.Budget == 0 {
			spec.Budget = search.DefaultBudget
		}
		if spec.Epsilon == 0 {
			spec.Epsilon = search.DefaultEpsilon
		}
		r.units = spec.Budget
	default:
		return r, fmt.Errorf("unknown kind %q (want %q, %q, or %q)", spec.Kind, KindExperiments, KindSweep, KindSearch)
	}

	r.spec = spec
	r.id = specID(spec)
	return r, nil
}

// specID content-addresses a normalized spec: identical submissions are
// one job, so Submit is idempotent and a restarted daemon re-adopts its
// persisted jobs under the same IDs.
func specID(spec JobSpec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("service: spec not marshalable: %v", err)) // unreachable: spec is plain data
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// runnerJob maps the spec onto the runner's job description.
func (r resolved) runnerJob() runner.Job {
	return runner.Job{Scale: r.scale, Seed: *r.spec.Seed, Trials: r.spec.Trials}
}

// journalIdentity returns the (kind, id) half of the job's checkpoint
// journal identity; with runnerJob it names the journal file the run
// will lock. Experiment journals are selection-independent by design, so
// two jobs over different selections share one journal — the service
// serializes them on it rather than tripping the runner's flock.
func (r resolved) journalIdentity() (kind, id string) {
	switch r.spec.Kind {
	case KindSweep:
		return "sweep", r.sweep.ID
	case KindSearch:
		return "search", "frontier"
	}
	return "experiments", ""
}
