package service

import (
	"sort"

	"repro/internal/runner"
)

// Event types.
const (
	// EventState marks a lifecycle edge; every stream ends with a
	// terminal-state event.
	EventState = "state"
	// EventTrial reports one completed (unit, trial) outcome.
	EventTrial = "trial"
)

// Event is one entry of a job's event log: the wire form of the SSE
// stream (GET /v1/jobs/{id}/events). The log is retained for the job's
// lifetime, so a late or reconnecting subscriber replays it from Seq 0
// and misses nothing.
type Event struct {
	// Seq is the event's position in the job's log, from 0.
	Seq  int    `json:"seq"`
	Type string `json:"type"`

	// State fields (Type == EventState).
	State JobState `json:"state,omitempty"`

	// Trial fields (Type == EventTrial).
	Unit    string             `json:"unit,omitempty"`
	Trial   int                `json:"trial,omitempty"`
	Resumed bool               `json:"resumed,omitempty"`
	Failed  bool               `json:"failed,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// WallMS is the trial's wall-clock milliseconds — observability
	// only; wall time never reaches report bytes.
	WallMS float64 `json:"wall_ms,omitempty"`

	// Error carries a trial's failure or a failed job's harness error.
	Error string `json:"error,omitempty"`
	// Done/Total progress counters (both event types).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// jobSink adapts the runner's outcome stream to the job's event log —
// this CellSink is the extension point SSE subscribers hang off. Put is
// never called concurrently (runner contract), but subscribers read
// concurrently, so all state flows through Service.mu.
type jobSink struct {
	s *Service
	j *job
}

func (k jobSink) Put(o runner.TrialOutcome) error {
	ev := Event{
		Type:    EventTrial,
		Unit:    o.Unit,
		Trial:   o.Trial,
		Resumed: o.Resumed,
		WallMS:  float64(o.Wall.Milliseconds()),
	}
	if o.Err != nil {
		ev.Failed = true
		ev.Error = o.Err.Error()
	} else if len(o.Result.Metrics) > 0 {
		ev.Metrics = make(map[string]float64, len(o.Result.Metrics))
		for _, m := range o.Result.Metrics {
			ev.Metrics[m.Name] = m.Value
		}
	}

	s, j := k.s, k.j
	s.mu.Lock()
	j.doneTrials++
	if o.Resumed {
		j.resumedTrials++
	}
	if o.Err != nil {
		j.failedTrials++
	}
	ev.Done, ev.Total = j.doneTrials, j.totalTrials
	s.publishLocked(j, ev)
	s.mu.Unlock()
	return nil
}

// subscriberBuffer is each subscriber's channel capacity. A subscriber
// that falls this far behind the live stream is dropped (its channel
// closed); it can reconnect and replay the full log.
const subscriberBuffer = 256

// publishLocked appends an event to the job's log and fans it out to
// live subscribers. Callers hold s.mu. Delivery never blocks the
// runner: a full subscriber is disconnected instead.
func (s *Service) publishLocked(j *job, ev Event) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	var dropped []int
	for id, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			dropped = append(dropped, id)
		}
	}
	// Disconnect in subscriber order, not map order, so a multi-drop is
	// reproducible.
	sort.Ints(dropped)
	for _, id := range dropped {
		close(j.subs[id])
		delete(j.subs, id)
	}
}

// subscribe returns the job's event log so far plus a live channel for
// what follows. The channel is nil when the job is already terminal —
// the history then ends with the terminal state event and there is
// nothing more to wait for. cancel is idempotent and must be called
// when the subscriber goes away.
func (s *Service) subscribe(id string) (history []Event, live <-chan Event, cancel func(), err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, nil, errUnknownJob(id)
	}
	history = append([]Event(nil), j.events...)
	if j.state.terminal() {
		return history, nil, func() {}, nil
	}
	ch := make(chan Event, subscriberBuffer)
	sub := j.nextSub
	j.nextSub++
	j.subs[sub] = ch
	cancel = func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if c, ok := j.subs[sub]; ok {
			close(c)
			delete(j.subs, sub)
		}
	}
	return history, ch, cancel, nil
}

type errUnknownJob string

func (e errUnknownJob) Error() string { return "service: no job " + string(e) }
