package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/runner"
	"repro/internal/search"
)

func ptr(v int64) *int64 { return &v }

// soloBytes runs a spec exactly the way a solo cmd/experiments
// invocation would (fresh runner, private in-memory store, default
// warm) and returns its JSON report bytes — the reference the service
// must reproduce byte-for-byte.
func soloBytes(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	res, err := resolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := runner.Config{Warm: !res.spec.Cold}
	var buf bytes.Buffer
	if res.spec.Kind == KindSearch {
		rep, err := search.Run(search.Options{
			Scale:   res.scale,
			Seed:    *res.spec.Seed,
			Budget:  res.spec.Budget,
			Epsilon: res.spec.Epsilon,
			Runner:  cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if res.spec.Kind == KindSweep {
		rep, err := runner.New(cfg).RunSweep(res.sweep, res.runnerJob())
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	} else {
		rep, err := runner.New(cfg).Run(res.selection, res.runnerJob())
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestResolveSpec: normalization must make equivalent specs the same
// job, and every malformed spec must be rejected with a client error.
func TestResolveSpec(t *testing.T) {
	a, err := resolveSpec(JobSpec{Kind: KindExperiments})
	if err != nil {
		t.Fatal(err)
	}
	b, err := resolveSpec(JobSpec{Kind: KindExperiments, Experiments: []string{"all"}, Scale: "demo", Seed: ptr(1), Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.id != b.id {
		t.Errorf("equivalent specs got distinct ids %s / %s", a.id, b.id)
	}
	if a.units == 0 || a.spec.Scale != "demo" || *a.spec.Seed != 1 || a.spec.Trials != 1 {
		t.Errorf("defaults not applied: %+v", a.spec)
	}
	c, err := resolveSpec(JobSpec{Kind: KindExperiments, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.id == a.id {
		t.Error("different trials must be a different job")
	}

	// Search normalization: omitted budget/epsilon select the search
	// defaults, so an explicit-default submission is the same job.
	s1, err := resolveSpec(JobSpec{Kind: KindSearch})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := resolveSpec(JobSpec{Kind: KindSearch, Budget: search.DefaultBudget, Epsilon: search.DefaultEpsilon, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s1.id != s2.id {
		t.Errorf("equivalent search specs got distinct ids %s / %s", s1.id, s2.id)
	}
	if s1.units != search.DefaultBudget {
		t.Errorf("search units = %d, want the default budget", s1.units)
	}
	if k, id := s1.journalIdentity(); k != "search" || id != "frontier" {
		t.Errorf("search journal identity = (%s, %s)", k, id)
	}

	full, err := resolveSpec(JobSpec{Kind: KindSweep, Sweep: "sens_chase_defense"})
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := resolveSpec(JobSpec{Kind: KindSweep, Sweep: "sens_chase_defense", Defense: []string{"none"}})
	if err != nil {
		t.Fatal(err)
	}
	if restricted.units >= full.units {
		t.Errorf("defense restriction did not shrink the grid: %d vs %d cells", restricted.units, full.units)
	}

	bad := []JobSpec{
		{Kind: "nope"},
		{Kind: KindExperiments, Experiments: []string{"no_such_fig"}},
		{Kind: KindExperiments, Sweep: "sens_chase_noise"},
		{Kind: KindExperiments, Defense: []string{"none"}},
		{Kind: KindExperiments, Trials: -1},
		{Kind: KindExperiments, Scale: "huge"},
		{Kind: KindSweep},
		{Kind: KindSweep, Sweep: "fig5"},
		{Kind: KindSweep, Sweep: "sens_chase_noise", Experiments: []string{"fig5"}},
		{Kind: KindSweep, Sweep: "sens_chase_noise", Defense: []string{"no-such-defense"}},
		{Kind: KindSearch, Trials: 2},
		{Kind: KindSearch, Sweep: "sens_chase_noise"},
		{Kind: KindSearch, Experiments: []string{"fig5"}},
		{Kind: KindSearch, Defense: []string{"none"}},
		{Kind: KindSearch, Budget: -1},
		{Kind: KindExperiments, Budget: 10},
		{Kind: KindSweep, Sweep: "sens_chase_noise", Epsilon: 0.1},
	}
	for _, spec := range bad {
		if _, err := resolveSpec(spec); err == nil {
			t.Errorf("spec %+v accepted, want error", spec)
		}
	}
}

// TestServiceDeterminismUnderConcurrentLoad is the headline contract:
// several mixed jobs submitted concurrently — different kinds, seeds,
// trial counts, warm and cold, a defense-restricted sweep — all sharing
// one pool, artifact store, and checkpoint dir, must each produce a
// report byte-identical to a solo run of the same spec.
func TestServiceDeterminismUnderConcurrentLoad(t *testing.T) {
	svc, err := Open(Config{StateDir: t.TempDir(), Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	specs := []JobSpec{
		{Kind: KindExperiments, Experiments: []string{"fig5", "fig7"}, Trials: 2},
		{Kind: KindExperiments, Experiments: []string{"fig10"}, Seed: ptr(9), Trials: 2},
		{Kind: KindSweep, Sweep: "sens_chase_noise", Trials: 1},
		{Kind: KindSweep, Sweep: "sens_covert_timer", Seed: ptr(3), Cold: true},
		{Kind: KindSweep, Sweep: "sens_chase_defense", Defense: []string{"none", "adaptive-partition"}},
	}
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, created, err := svc.Submit(spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if !created {
				t.Errorf("submit %d: job existed already", i)
			}
			ids[i] = st.ID
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.Fatalf("submissions failed")
	}
	svc.WaitIdle()

	for i, spec := range specs {
		st, ok := svc.Status(ids[i])
		if !ok {
			t.Fatalf("job %d vanished", i)
		}
		if st.State != StateDone || st.Error != "" {
			t.Fatalf("job %d: state %s, error %q", i, st.State, st.Error)
		}
		if st.DoneTrials != st.TotalTrials || st.TotalTrials == 0 {
			t.Errorf("job %d: %d/%d trials", i, st.DoneTrials, st.TotalTrials)
		}
		got, err := svc.Report(ids[i])
		if err != nil {
			t.Fatalf("job %d report: %v", i, err)
		}
		if want := soloBytes(t, spec); !bytes.Equal(got, want) {
			t.Errorf("job %d (%+v): service report differs from solo run", i, spec)
		}
	}
}

// TestSameJournalIdentityJobsSerialized: two experiment jobs with equal
// (scale, seed, trials) but different selections share one checkpoint
// journal (the identity is deliberately selection-independent). The
// service must serialize them in-process — the journal flock would fail
// the second otherwise — and both must still match their solo bytes.
func TestSameJournalIdentityJobsSerialized(t *testing.T) {
	svc, err := Open(Config{StateDir: t.TempDir(), Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs := []JobSpec{
		{Kind: KindExperiments, Experiments: []string{"fig5"}, Trials: 2},
		{Kind: KindExperiments, Experiments: []string{"fig7"}, Trials: 2},
	}
	var ids []string
	for _, spec := range specs {
		st, _, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	svc.WaitIdle()
	for i, spec := range specs {
		st, _ := svc.Status(ids[i])
		if st.State != StateDone {
			t.Fatalf("job %d: state %s, error %q (journal contention not serialized?)", i, st.State, st.Error)
		}
		got, err := svc.Report(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if want := soloBytes(t, spec); !bytes.Equal(got, want) {
			t.Errorf("job %d: report differs from solo run", i)
		}
	}
}

// TestSearchJob: a search job runs the frontier search against the
// shared pool and store, serves the packetchasing-frontier/v1 report
// byte-identical to a solo search run, and streams one trial event per
// candidate (unit = candidate ID) to subscribers.
func TestSearchJob(t *testing.T) {
	svc, err := Open(Config{StateDir: t.TempDir(), Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Kind: KindSearch, Budget: 6}
	st, created, err := svc.Submit(spec)
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	if st.Units != 6 || st.TotalTrials != 6 {
		t.Fatalf("search job sized %d units / %d trials, want 6/6", st.Units, st.TotalTrials)
	}
	svc.WaitIdle()

	st, _ = svc.Status(st.ID)
	if st.State != StateDone || st.Error != "" {
		t.Fatalf("search job: state %s, error %q", st.State, st.Error)
	}
	got, err := svc.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := soloBytes(t, spec); !bytes.Equal(got, want) {
		t.Errorf("service search report differs from solo run:\n%s\n---\n%s", got, want)
	}
	var rep struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(got, &rep); err != nil || rep.Schema != search.SchemaVersion {
		t.Errorf("report schema %q (err %v), want %q", rep.Schema, err, search.SchemaVersion)
	}

	// The retained event log must carry one trial event per candidate,
	// keyed by candidate ID, ending in the terminal state event.
	history, live, cancel, err := svc.subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if live != nil {
		t.Error("terminal job must not offer a live channel")
	}
	units := map[string]bool{}
	for _, ev := range history {
		if ev.Type == EventTrial {
			units[ev.Unit] = true
		}
	}
	if len(units) != 6 {
		t.Errorf("event log has %d candidate units, want 6: %v", len(units), units)
	}
	if !units["p0-roff-t0"] || !units["p3-roff-t64"] {
		t.Errorf("anchor candidates missing from event units: %v", units)
	}
	if last := history[len(history)-1]; last.Type != EventState || last.State != StateDone {
		t.Errorf("last event = %+v, want terminal done state", last)
	}
}

// TestSubmitIdempotent: resubmitting a spec returns the existing job.
func TestSubmitIdempotent(t *testing.T) {
	svc, err := Open(Config{StateDir: t.TempDir(), Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Kind: KindExperiments, Experiments: []string{"fig5"}}
	st1, created, err := svc.Submit(spec)
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	st2, created, err := svc.Submit(spec)
	if err != nil || created {
		t.Fatalf("resubmit: created=%v err=%v", created, err)
	}
	if st1.ID != st2.ID {
		t.Errorf("resubmit got a different job: %s vs %s", st1.ID, st2.ID)
	}
	svc.WaitIdle()
	// Idempotency holds after completion too, and the spec file survived
	// exactly once.
	st3, created, err := svc.Submit(spec)
	if err != nil || created || st3.ID != st1.ID || st3.State != StateDone {
		t.Errorf("post-completion resubmit: %+v created=%v err=%v", st3, created, err)
	}
}

// TestServiceRestartResumesInterruptedJob: the crash story. A job is
// accepted (spec persisted) and partially executed (journal has some
// trials) when the daemon dies. A fresh Open over the same state dir
// must adopt the job, resume it from the journal — replaying, not
// re-running, the completed trials — and finish with bytes identical to
// an uninterrupted solo run. A second restart then serves the persisted
// report without running anything.
func TestServiceRestartResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Kind: KindExperiments, Experiments: []string{"fig5", "fig7"}, Trials: 2}
	res, err := resolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the pre-crash daemon: persisted spec, partial journal.
	// The journal is written by a budgeted solo run — the same bytes the
	// daemon's runner would have journaled before dying.
	ckpt := filepath.Join(dir, "checkpoints")
	jobs := filepath.Join(dir, "jobs")
	for _, d := range []string{ckpt, jobs} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	_, err = runner.New(runner.Config{Warm: true, CheckpointDir: ckpt, TrialBudget: 1}).
		Run(res.selection, res.runnerJob())
	if !errors.Is(err, runner.ErrBudget) {
		t.Fatalf("budget seeding run: %v", err)
	}
	b, err := json.Marshal(res.spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobs, res.id+".spec.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}

	svc, err := Open(Config{StateDir: dir, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	svc.WaitIdle()
	st, ok := svc.Status(res.id)
	if !ok {
		t.Fatal("restart did not adopt the persisted job")
	}
	if st.State != StateDone {
		t.Fatalf("recovered job: state %s, error %q", st.State, st.Error)
	}
	if st.ResumedTrials != 1 {
		t.Errorf("recovered job replayed %d trials, want 1 (the journaled one)", st.ResumedTrials)
	}
	if st.DoneTrials != st.TotalTrials || st.TotalTrials != 4 {
		t.Errorf("recovered job: %d/%d trials", st.DoneTrials, st.TotalTrials)
	}
	got, err := svc.Report(res.id)
	if err != nil {
		t.Fatal(err)
	}
	want := soloBytes(t, spec)
	if !bytes.Equal(got, want) {
		t.Error("resumed report differs from an uninterrupted solo run")
	}

	// Restart again: the finished job must be served from its persisted
	// report, with no execution (no new journal activity needed — the
	// status says done immediately).
	svc2, err := Open(Config{StateDir: dir, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	st2, ok := svc2.Status(res.id)
	if !ok || st2.State != StateDone {
		t.Fatalf("second restart: %+v ok=%v", st2, ok)
	}
	got2, err := svc2.Report(res.id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Error("persisted report differs after second restart")
	}
}

// TestJobEventLog: the event log every SSE subscriber sees — queued,
// running, one event per trial, terminal state last, gapless sequence
// numbers.
func TestJobEventLog(t *testing.T) {
	svc, err := Open(Config{StateDir: t.TempDir(), Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := svc.Submit(JobSpec{Kind: KindExperiments, Experiments: []string{"fig5"}, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	svc.WaitIdle()
	history, live, cancel, err := svc.subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if live != nil {
		t.Error("subscription to a finished job must not hold a live channel")
	}
	if len(history) == 0 {
		t.Fatal("empty event log")
	}
	trials := 0
	for i, ev := range history {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Type == EventTrial {
			trials++
			if ev.Unit == "" {
				t.Errorf("trial event %d missing unit", i)
			}
		}
	}
	if trials != 2 {
		t.Errorf("event log has %d trial events, want 2", trials)
	}
	if first := history[0]; first.Type != EventState || first.State != StateQueued {
		t.Errorf("first event %+v, want queued state", first)
	}
	if last := history[len(history)-1]; last.Type != EventState || last.State != StateDone {
		t.Errorf("last event %+v, want done state", last)
	}

	if _, _, _, err := svc.subscribe("no-such-job"); err == nil {
		t.Error("subscribe to unknown job must fail")
	}
}
