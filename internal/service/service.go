// Package service is the long-running, multi-client layer over the
// streaming runner: cmd/experimentd exposes it over HTTP. It owns the
// shared execution state one machine has exactly one of — a bounded
// worker pool, a content-addressed artifact store, a checkpoint
// directory — and runs every accepted job against them.
//
// The headline contract is determinism: a job's final report is
// byte-identical to a solo cmd/experiments run of the same spec, no
// matter how many jobs interleave, how wide the pool is, or how many
// times the daemon is killed and restarted mid-job. Everything here is
// arranged to preserve the runner's existing guarantees, not add new
// ones: jobs are persisted before they run, journals make interruption
// safe, and jobs that would contend for one checkpoint journal are
// serialized in-process instead of tripping the journal flock.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/search"
)

// JobState is a job's lifecycle position. queued -> running -> done or
// failed; done and failed are terminal.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

func (s JobState) terminal() bool { return s == StateDone || s == StateFailed }

// errShuttingDown rejects submissions to a closing service (HTTP 503,
// not 400: the spec may be fine).
var errShuttingDown = errors.New("service: shutting down")

// Config configures a Service.
type Config struct {
	// StateDir is the service's persistent root. It gains three
	// subdirectories: jobs/ (specs, reports, failures), checkpoints/
	// (runner journals), artifacts/ (the shared disk artifact store).
	StateDir string
	// Parallel bounds concurrent trial execution across ALL jobs
	// (the shared pool's width); <= 0 means GOMAXPROCS.
	Parallel int
	// ArtifactMaxBytes, when > 0, caps the shared disk artifact store
	// with LRU eviction.
	ArtifactMaxBytes int64
	// Logf, when non-nil, receives one line per job lifecycle edge.
	Logf func(format string, args ...any)
}

// Service accepts, persists, and executes jobs. Create with Open.
type Service struct {
	cfg     Config
	jobsDir string
	ckptDir string
	pool    *runner.Pool
	store   *experiments.ArtifactStore

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing
	journals map[string]*sync.Mutex
	closed   bool
	wg       sync.WaitGroup
}

// job is the in-memory record of one accepted job. All mutable fields
// are guarded by Service.mu.
type job struct {
	id  string
	res resolved

	state       JobState
	errMsg      string
	report      []byte
	failedUnits int

	totalTrials   int
	doneTrials    int
	resumedTrials int
	failedTrials  int

	createdAt  time.Time
	finishedAt time.Time

	events  []Event
	subs    map[int]chan Event
	nextSub int
}

// JobStatus is the wire form of a job's state (GET /v1/jobs/{id}).
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`
	// Error is the harness-level failure of a failed job. Individual
	// experiment/cell failures do NOT fail the job — they are recorded
	// inside the report (and counted in FailedUnits), exactly as a solo
	// run records them.
	Error string `json:"error,omitempty"`
	// Units is the number of experiments or grid cells the job spans.
	Units int `json:"units"`
	// TotalTrials = Units x Trials; DoneTrials counts delivered
	// outcomes, of which ResumedTrials were replayed from a checkpoint
	// journal rather than executed.
	TotalTrials   int `json:"total_trials"`
	DoneTrials    int `json:"done_trials"`
	ResumedTrials int `json:"resumed_trials"`
	FailedTrials  int `json:"failed_trials"`
	FailedUnits   int `json:"failed_units"`

	CreatedAt  time.Time  `json:"created_at"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// Open creates the state directory layout, adopts every persisted job —
// finished jobs keep their reports; unfinished jobs re-enqueue and
// resume from their checkpoint journals — and returns a Service ready
// to accept submissions.
func Open(cfg Config) (*Service, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("service: state dir required")
	}
	jobsDir := filepath.Join(cfg.StateDir, "jobs")
	ckptDir := filepath.Join(cfg.StateDir, "checkpoints")
	artDir := filepath.Join(cfg.StateDir, "artifacts")
	for _, d := range []string{jobsDir, ckptDir, artDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	store, err := experiments.NewDiskArtifactStoreCapped(artDir, cfg.ArtifactMaxBytes)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Service{
		cfg:      cfg,
		jobsDir:  jobsDir,
		ckptDir:  ckptDir,
		pool:     runner.NewPool(cfg.Parallel),
		store:    store,
		jobs:     make(map[string]*job),
		journals: make(map[string]*sync.Mutex),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover re-adopts persisted jobs after a restart. A spec file whose
// report exists is done; one with a persisted failure is failed; the
// rest were interrupted mid-run and re-enqueue with the checkpoint
// journal carrying whatever they had completed.
func (s *Service) recover() error {
	ents, err := os.ReadDir(s.jobsDir)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	// Adopt in spec-file modification order so the listing approximates
	// the original submission order.
	sort.Slice(ents, func(i, j int) bool {
		fi, errI := ents[i].Info()
		fj, errJ := ents[j].Info()
		if errI != nil || errJ != nil || fi.ModTime().Equal(fj.ModTime()) {
			return ents[i].Name() < ents[j].Name()
		}
		return fi.ModTime().Before(fj.ModTime())
	})
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".spec.json") {
			continue
		}
		id := strings.TrimSuffix(name, ".spec.json")
		raw, err := os.ReadFile(filepath.Join(s.jobsDir, name))
		if err != nil {
			return fmt.Errorf("service: job %s: %w", id, err)
		}
		var spec JobSpec
		if err := json.Unmarshal(raw, &spec); err != nil {
			return fmt.Errorf("service: job %s: corrupt spec: %w", id, err)
		}
		res, err := resolveSpec(spec)
		if err != nil {
			// The registry no longer accepts this spec (version drift).
			// Keep the record, visibly failed, rather than dropping it.
			res = resolved{spec: spec}
			j := s.adopt(id, res, ent)
			s.finish(j, StateFailed, fmt.Sprintf("spec no longer resolves: %v", err))
			continue
		}
		j := s.adopt(id, res, ent)
		if rep, err := os.ReadFile(s.reportPath(id)); err == nil {
			j.report = rep
			j.failedUnits = countFailedUnits(rep)
			s.finish(j, StateDone, "")
			continue
		}
		if msg, err := os.ReadFile(s.failPath(id)); err == nil {
			s.finish(j, StateFailed, strings.TrimSpace(string(msg)))
			continue
		}
		s.logf("job %s: recovered unfinished, resuming", id)
		s.enqueue(j)
	}
	return nil
}

// adopt registers a recovered job in the queued state.
func (s *Service) adopt(id string, res resolved, ent os.DirEntry) *job {
	created := time.Now()
	if fi, err := ent.Info(); err == nil {
		created = fi.ModTime()
	}
	j := &job{
		id:          id,
		res:         res,
		state:       StateQueued,
		totalTrials: res.units * res.spec.Trials,
		createdAt:   created,
		subs:        make(map[int]chan Event),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

// Submit accepts a job spec. Submission is idempotent: the job ID is a
// content address of the normalized spec, so resubmitting an identical
// spec returns the existing job (created = false) whatever state it is
// in. The spec is persisted before the job is enqueued — once Submit
// returns, a daemon restart will finish the job.
func (s *Service) Submit(spec JobSpec) (JobStatus, bool, error) {
	res, err := resolveSpec(spec)
	if err != nil {
		return JobStatus{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, false, errShuttingDown
	}
	if j, ok := s.jobs[res.id]; ok {
		return s.statusLocked(j), false, nil
	}
	j := &job{
		id:          res.id,
		res:         res,
		state:       StateQueued,
		totalTrials: res.units * res.spec.Trials,
		createdAt:   time.Now(),
		subs:        make(map[int]chan Event),
	}
	if err := s.persistSpec(j); err != nil {
		return JobStatus{}, false, err
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.publishLocked(j, Event{Type: EventState, State: StateQueued, Total: j.totalTrials})
	s.logf("job %s: accepted (%s, %d unit(s), %d trial(s))",
		j.id, j.res.spec.Kind, j.res.units, j.totalTrials)
	s.enqueue(j)
	return s.statusLocked(j), true, nil
}

// enqueue starts the job's goroutine. Callers hold s.mu or (during
// Open) have exclusive access.
func (s *Service) enqueue(j *job) {
	s.wg.Add(1)
	go s.runJob(j)
}

// runJob executes one job against the shared pool, store, and
// checkpoint directory. Jobs whose specs map onto the same checkpoint
// journal (e.g. two experiment selections with equal scale/seed/trials:
// the journal identity is deliberately selection-independent) are
// serialized on a per-journal mutex — the runner's flock would
// otherwise fail the second one, and serializing is strictly better:
// the second job replays the first one's shared outcomes for free.
func (s *Service) runJob(j *job) {
	defer s.wg.Done()
	kind, kid := j.res.journalIdentity()
	jmu := s.journalMutex(runner.JournalName(kind, kid, j.res.runnerJob()))
	jmu.Lock()
	defer jmu.Unlock()

	s.mu.Lock()
	j.state = StateRunning
	s.publishLocked(j, Event{Type: EventState, State: StateRunning, Total: j.totalTrials})
	s.mu.Unlock()
	s.logf("job %s: running", j.id)

	cfg := runner.Config{
		Parallel:      s.pool.Width(),
		Pool:          s.pool,
		CheckpointDir: s.ckptDir,
		Resume:        true,
		Sinks:         []runner.CellSink{jobSink{s: s, j: j}},
	}
	if !j.res.spec.Cold {
		cfg.Warm = true
		cfg.Store = s.store
	}
	run := runner.New(cfg)

	var buf bytes.Buffer
	var failedUnits int
	var err error
	switch j.res.spec.Kind {
	case KindSearch:
		// The search drives the runner itself (batched phases under one
		// journal identity), so it takes the config rather than the
		// Runner; the job sink still sees every candidate outcome, so
		// SSE subscribers get per-candidate events like any other job.
		var rep *search.Report
		if rep, err = search.Run(search.Options{
			Scale:   j.res.scale,
			Seed:    *j.res.spec.Seed,
			Budget:  j.res.spec.Budget,
			Epsilon: j.res.spec.Epsilon,
			Runner:  cfg,
		}); err == nil {
			failedUnits = rep.Failed()
			err = rep.WriteJSON(&buf)
		}
	case KindSweep:
		var rep *runner.SweepReport
		if rep, err = run.RunSweep(j.res.sweep, j.res.runnerJob()); err == nil {
			failedUnits = rep.Failed()
			err = rep.WriteJSON(&buf)
		}
	default:
		var rep *runner.Report
		if rep, err = run.Run(j.res.selection, j.res.runnerJob()); err == nil {
			failedUnits = rep.Failed()
			err = rep.WriteJSON(&buf)
		}
	}
	if err != nil {
		if werr := atomicWrite(s.failPath(j.id), []byte(err.Error()+"\n")); werr != nil {
			s.logf("job %s: persisting failure: %v", j.id, werr)
		}
		s.mu.Lock()
		s.finish(j, StateFailed, err.Error())
		s.mu.Unlock()
		s.logf("job %s: failed: %v", j.id, err)
		return
	}
	if werr := atomicWrite(s.reportPath(j.id), buf.Bytes()); werr != nil {
		// The run succeeded but its result cannot be persisted; the job
		// fails loudly rather than pretending the report is durable.
		s.mu.Lock()
		s.finish(j, StateFailed, werr.Error())
		s.mu.Unlock()
		s.logf("job %s: failed: %v", j.id, werr)
		return
	}
	s.mu.Lock()
	j.report = buf.Bytes()
	j.failedUnits = failedUnits
	s.finish(j, StateDone, "")
	s.mu.Unlock()
	s.logf("job %s: done (%d unit(s) failed)", j.id, failedUnits)
}

// finish moves a job to a terminal state and publishes the terminal
// event every event stream ends on. Callers hold s.mu (or, during
// Open's recovery, have exclusive access).
func (s *Service) finish(j *job, state JobState, errMsg string) {
	j.state = state
	j.errMsg = errMsg
	j.finishedAt = time.Now()
	s.publishLocked(j, Event{
		Type:  EventState,
		State: state,
		Error: errMsg,
		Done:  j.doneTrials,
		Total: j.totalTrials,
	})
}

// journalMutex returns the process-wide mutex for one journal identity.
func (s *Service) journalMutex(name string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.journals[name]
	if !ok {
		m = &sync.Mutex{}
		s.journals[name] = m
	}
	return m
}

// Status returns a job's current status.
func (s *Service) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(j), true
}

// Jobs lists every job in submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Report returns a done job's report bytes — exactly the bytes a solo
// cmd/experiments run of the same spec writes.
func (s *Service) Report(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("service: no job %s", id)
	}
	switch j.state {
	case StateDone:
		return j.report, nil
	case StateFailed:
		return nil, fmt.Errorf("service: job %s failed: %s", id, j.errMsg)
	default:
		return nil, fmt.Errorf("service: job %s is %s, not finished", id, j.state)
	}
}

// PoolWidth reports the shared pool's width (health endpoint).
func (s *Service) PoolWidth() int { return s.pool.Width() }

// WaitIdle blocks until every job accepted so far has reached a
// terminal state. Jobs submitted after WaitIdle is called may or may
// not be waited on.
func (s *Service) WaitIdle() { s.wg.Wait() }

// Close stops accepting submissions and waits for in-flight jobs. (The
// daemon itself does NOT call this on shutdown — abandoning running
// jobs is safe by design, their journals resume on restart — but
// embedders and tests want a clean drain.)
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Service) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:            j.id,
		State:         j.state,
		Spec:          j.res.spec,
		Error:         j.errMsg,
		Units:         j.res.units,
		TotalTrials:   j.totalTrials,
		DoneTrials:    j.doneTrials,
		ResumedTrials: j.resumedTrials,
		FailedTrials:  j.failedTrials,
		FailedUnits:   j.failedUnits,
		CreatedAt:     j.createdAt,
	}
	if j.state.terminal() {
		t := j.finishedAt
		st.FinishedAt = &t
	}
	return st
}

func (s *Service) specPath(id string) string {
	return filepath.Join(s.jobsDir, id+".spec.json")
}
func (s *Service) reportPath(id string) string {
	return filepath.Join(s.jobsDir, id+".report.json")
}
func (s *Service) failPath(id string) string {
	return filepath.Join(s.jobsDir, id+".error")
}

func (s *Service) persistSpec(j *job) error {
	b, err := json.MarshalIndent(j.res.spec, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(s.specPath(j.id), append(b, '\n'))
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// atomicWrite writes via a temp file + rename so a crash mid-write
// never leaves a torn spec or report (a torn report would make a done
// job unrecoverable — worse, silently wrong).
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// countFailedUnits recounts failed experiments/cells from persisted
// report bytes (recovery has the bytes, not the report struct).
func countFailedUnits(raw []byte) int {
	var rep struct {
		Experiments []struct {
			OK bool `json:"ok"`
		} `json:"experiments"`
		Cells []struct {
			OK bool `json:"ok"`
		} `json:"cells"`
		Candidates []struct {
			OK bool `json:"ok"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return 0
	}
	n := 0
	for _, e := range rep.Experiments {
		if !e.OK {
			n++
		}
	}
	for _, c := range rep.Cells {
		if !c.OK {
			n++
		}
	}
	for _, c := range rep.Candidates {
		if !c.OK {
			n++
		}
	}
	return n
}
