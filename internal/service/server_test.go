package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPEndToEnd drives the whole API surface the way a client (or
// the CI daemon-smoke job) does: submit, poll, fetch the report, stream
// events — plus every documented error status.
func TestHTTPEndToEnd(t *testing.T) {
	svc, err := Open(Config{StateDir: t.TempDir(), Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var health struct {
		OK        bool `json:"ok"`
		PoolWidth int  `json:"pool_width"`
	}
	if code := getJSON(t, ts.URL+"/v1/healthz", &health); code != 200 || !health.OK || health.PoolWidth != 2 {
		t.Fatalf("healthz: code %d, %+v", code, health)
	}

	var reg struct {
		Entries []struct {
			ID    string `json:"id"`
			Kind  string `json:"kind"`
			Cells int    `json:"cells"`
		} `json:"entries"`
	}
	if code := getJSON(t, ts.URL+"/v1/registry", &reg); code != 200 {
		t.Fatalf("registry: code %d", code)
	}
	found := map[string]bool{}
	for _, e := range reg.Entries {
		found[e.ID] = true
		if e.Kind == "sweep" && e.Cells == 0 {
			t.Errorf("sweep %s lists no cells", e.ID)
		}
	}
	if !found["fig5"] || !found["sens_chase_noise"] {
		t.Fatalf("registry missing known entries: %v", found)
	}

	// Submit: 201 on creation, 200 (same ID) on resubmission.
	spec := `{"kind":"experiments","experiments":["fig5"],"trials":2}`
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/jobs", spec, &sub); code != 201 || !sub.Created || sub.ID == "" {
		t.Fatalf("submit: code %d, %+v", code, sub)
	}
	var again submitResponse
	if code := postJSON(t, ts.URL+"/v1/jobs", spec, &again); code != 200 || again.Created || again.ID != sub.ID {
		t.Fatalf("resubmit: code %d, %+v", code, again)
	}

	// Poll to completion.
	var st JobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &st); code != 200 {
			t.Fatalf("status: code %d", code)
		}
		if st.State == StateDone || st.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != StateDone || st.DoneTrials != 2 {
		t.Fatalf("job finished %+v", st)
	}

	// The report is served verbatim and matches a solo run.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("report: code %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	want := soloBytes(t, JobSpec{Kind: KindExperiments, Experiments: []string{"fig5"}, Trials: 2})
	if !bytes.Equal(got, want) {
		t.Error("HTTP report differs from solo run bytes")
	}

	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != 200 || len(list.Jobs) != 1 {
		t.Fatalf("list: code %d, %d jobs", code, len(list.Jobs))
	}

	// The SSE stream of a finished job replays the full log and ends.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("events: code %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	trials := 0
	for _, ev := range events {
		if ev.Type == EventTrial {
			trials++
		}
	}
	if trials != 2 {
		t.Errorf("SSE stream carried %d trial events, want 2", trials)
	}
	if last := events[len(events)-1]; last.Type != EventState || last.State != StateDone {
		t.Errorf("SSE stream ended on %+v, want terminal state", last)
	}

	// Error statuses.
	for path, wantCode := range map[string]int{
		"/v1/jobs/nope":        404,
		"/v1/jobs/nope/report": 404,
		"/v1/jobs/nope/events": 404,
	} {
		if code := getJSON(t, ts.URL+path, nil); code != wantCode {
			t.Errorf("GET %s: code %d, want %d", path, code, wantCode)
		}
	}
	for _, body := range []string{
		`not json`,
		`{"kind":"experiments","experiments":["no_such_fig"]}`,
		`{"kind":"experiments","bogus_field":1}`,
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := postJSON(t, ts.URL+"/v1/jobs", body, &e); code != 400 || e.Error == "" {
			t.Errorf("POST %q: code %d, error %q (want 400 with message)", body, code, e.Error)
		}
	}
}

// TestHTTPReportNotFinished: asking for the report of a queued/running
// job is a 409, not a hang or an empty 200.
func TestHTTPReportNotFinished(t *testing.T) {
	svc, err := Open(Config{StateDir: t.TempDir(), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// A job big enough to still be in flight when we ask. Worst case it
	// finishes first and the test degrades to the done path — so poll
	// immediately and tolerate 200 only when state is already terminal.
	var sub submitResponse
	if code := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"sweep","sweep":"sens_chase_noise","trials":2}`, &sub); code != 201 {
		t.Fatalf("submit: code %d", code)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/report", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var st JobStatus
	getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &st)
	if resp.StatusCode != 409 && !(resp.StatusCode == 200 && st.State == StateDone) {
		t.Errorf("unfinished report: code %d (state %s)", resp.StatusCode, st.State)
	}
	svc.WaitIdle()
}
