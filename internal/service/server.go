package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/experiments"
)

// Handler returns the service's HTTP API:
//
//	GET  /v1/healthz          liveness + pool/job counters
//	GET  /v1/registry         runnable experiments and sweeps
//	POST /v1/jobs             submit a JobSpec; 201 created / 200 existing
//	GET  /v1/jobs             list jobs in submission order
//	GET  /v1/jobs/{id}        one job's status
//	GET  /v1/jobs/{id}/report the finished report, verbatim bytes
//	GET  /v1/jobs/{id}/events SSE stream of the job's event log
//
// Everything speaks JSON; errors are {"error": "..."} with a 4xx/5xx
// status.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	running := 0
	for _, j := range jobs {
		if j.State == StateRunning {
			running++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"jobs":       len(jobs),
		"running":    running,
		"pool_width": s.PoolWidth(),
	})
}

func (s *Service) handleRegistry(w http.ResponseWriter, r *http.Request) {
	type item struct {
		ID     string `json:"id"`
		Kind   string `json:"kind"`
		Short  string `json:"short"`
		Phased bool   `json:"phased"`
		Cells  int    `json:"cells,omitempty"`
	}
	var items []item
	for _, e := range experiments.Registry() {
		it := item{ID: e.ID, Kind: string(e.Kind), Short: e.Short, Phased: e.Phased}
		if e.Kind == experiments.KindSweep {
			it.Cells = e.Grid.Size()
		}
		items = append(items, it)
	}
	writeJSON(w, http.StatusOK, map[string]any{"entries": items})
}

// submitResponse wraps a status with whether this call created the job
// (false = the spec content-addressed to an existing job).
type submitResponse struct {
	JobStatus
	Created bool `json:"created"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	st, created, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errShuttingDown) {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, submitResponse{JobStatus: st, Created: created})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %s", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %s", id)
		return
	}
	rep, err := s.Report(id)
	if err != nil {
		// The job exists but has no report: not finished (yet), or
		// failed without producing one.
		code := http.StatusConflict
		if st.State == StateFailed {
			code = http.StatusUnprocessableEntity
		}
		writeErr(w, code, "%v", err)
		return
	}
	// Verbatim bytes — the determinism contract is byte-level, so the
	// handler must not re-encode.
	w.Header().Set("Content-Type", "application/json")
	w.Write(rep)
}

// handleEvents streams the job's event log as server-sent events: the
// full log so far, then live events as trials complete. The stream ends
// when the job reaches a terminal state (whose event is always the last
// one), so `curl` against a finished job returns immediately with the
// whole history.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	history, live, cancel, err := s.subscribe(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	send := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return ev.Type != EventState || !ev.State.terminal()
	}
	for _, ev := range history {
		if !send(ev) {
			return
		}
	}
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				// Dropped as a slow subscriber; the client reconnects
				// and replays.
				return
			}
			if !send(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
