package perfsim

import (
	"testing"

	"repro/internal/stats"
)

const testLLC = 20 << 20

func mustEnv(t *testing.T, s Scheme, llc int) *Env {
	t.Helper()
	env, err := NewEnv(s, llc, 7)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvRejectsTinyLLC(t *testing.T) {
	if _, err := NewEnv(SchemeDDIO, 1<<20, 1); err == nil {
		t.Error("1MB LLC should be rejected (below 4 ways)")
	}
}

func TestSchemeStrings(t *testing.T) {
	seen := map[string]bool{}
	for s := SchemeDDIO; s <= SchemePartial10k; s++ {
		str := s.String()
		if str == "" || seen[str] {
			t.Errorf("scheme %d: bad name %q", s, str)
		}
		seen[str] = true
	}
}

func TestRandomizationOverheadOrdering(t *testing.T) {
	full := RandomizationOverhead(SchemeFullRandom)
	p1k := RandomizationOverhead(SchemePartial1k)
	p10k := RandomizationOverhead(SchemePartial10k)
	if !(full > p1k && p1k > p10k && p10k >= 0) {
		t.Errorf("overhead ordering broken: full=%d 1k=%d 10k=%d", full, p1k, p10k)
	}
	if RandomizationOverhead(SchemeDDIO) != 0 || RandomizationOverhead(SchemeAdaptive) != 0 {
		t.Error("hardware schemes have no driver overhead")
	}
}

func TestFileCopyDDIOReducesMemReads(t *testing.T) {
	// Fig 15 file copy: with DDIO the copy loop reads DMA'd lines from
	// the LLC; without, every read goes to DRAM.
	base := FileCopy(mustEnv(t, SchemeNoDDIO, testLLC), 2<<20)
	ddio := FileCopy(mustEnv(t, SchemeDDIO, testLLC), 2<<20)
	adaptive := FileCopy(mustEnv(t, SchemeAdaptive, testLLC), 2<<20)

	r, _, miss := ddio.NormalizedTraffic(base)
	if r >= 0.9 {
		t.Errorf("DDIO norm read traffic %.2f; expected well below no-DDIO", r)
	}
	if miss >= 1.0 {
		t.Errorf("DDIO norm miss rate %.2f; expected below no-DDIO", miss)
	}
	ra, _, _ := adaptive.NormalizedTraffic(base)
	if ra >= 0.9 {
		t.Errorf("adaptive norm read traffic %.2f; should track DDIO", ra)
	}
	// Adaptive within a few percent of DDIO (paper: within 2%).
	if ra > r*1.15 {
		t.Errorf("adaptive read traffic %.3f too far above DDIO %.3f", ra, r)
	}
}

func TestTCPRecvTrafficShape(t *testing.T) {
	base := TCPRecv(mustEnv(t, SchemeNoDDIO, testLLC), 4000)
	ddio := TCPRecv(mustEnv(t, SchemeDDIO, testLLC), 4000)
	r, w, _ := ddio.NormalizedTraffic(base)
	if r >= 1.0 {
		t.Errorf("DDIO TCP recv norm reads %.2f; driver reads should hit LLC", r)
	}
	if w >= 1.0 {
		t.Errorf("DDIO TCP recv norm writes %.2f; DMA should stay in LLC", w)
	}
	if ddio.Requests != 4000 {
		t.Errorf("packets %d want 4000", ddio.Requests)
	}
}

func TestNginxThroughputAdaptiveClosesOnDDIO(t *testing.T) {
	// Fig 14: adaptive partitioning throughput within a few percent of
	// DDIO across LLC sizes.
	cfg := DefaultNginxConfig()
	cfg.Requests = 4000
	for _, llc := range []int{20 << 20, 11 << 20, 8 << 20} {
		ddio := Nginx(mustEnv(t, SchemeDDIO, llc), cfg)
		adaptive := Nginx(mustEnv(t, SchemeAdaptive, llc), cfg)
		dt, at := ddio.Throughput(), adaptive.Throughput()
		loss := (dt - at) / dt
		t.Logf("LLC %dMB: DDIO %.0f req/s, adaptive %.0f req/s, loss %.1f%%",
			llc>>20, dt, at, 100*loss)
		if loss > 0.08 {
			t.Errorf("LLC %dMB: adaptive loses %.1f%%; paper reports <2.7%%", llc>>20, 100*loss)
		}
		if loss < -0.05 {
			t.Errorf("LLC %dMB: adaptive should not beat DDIO by %.1f%%", llc>>20, -100*loss)
		}
	}
}

func TestNginxSmallerLLCLowersThroughput(t *testing.T) {
	cfg := DefaultNginxConfig()
	cfg.Requests = 4000
	big := Nginx(mustEnv(t, SchemeDDIO, 20<<20), cfg)
	small := Nginx(mustEnv(t, SchemeDDIO, 8<<20), cfg)
	if small.Throughput() >= big.Throughput() {
		t.Errorf("8MB LLC throughput %.0f should be below 20MB %.0f",
			small.Throughput(), big.Throughput())
	}
}

func TestNginxTailLatencyOrdering(t *testing.T) {
	// Fig 16: at the wrk2 target rate, full randomization has the worst
	// tail, adaptive partitioning stays close to the vulnerable baseline.
	cfg := DefaultNginxConfig()
	cfg.Requests = 12_000
	cfg.TargetRate = 140_000
	p99 := func(s Scheme) float64 {
		m := Nginx(mustEnv(t, s, testLLC), cfg)
		lat := make([]float64, len(m.Latencies))
		for i, l := range m.Latencies {
			lat[i] = float64(l)
		}
		return stats.Percentile(lat, 99)
	}
	base := p99(SchemeDDIO)
	adaptive := p99(SchemeAdaptive)
	full := p99(SchemeFullRandom)
	p10k := p99(SchemePartial10k)
	t.Logf("p99 cycles: base=%.0f adaptive=%.0f (+%.1f%%) full=%.0f (+%.1f%%) partial10k=%.0f (+%.1f%%)",
		base, adaptive, 100*(adaptive-base)/base, full, 100*(full-base)/base, p10k, 100*(p10k-base)/base)
	if full <= base {
		t.Error("full randomization must have worse p99 than baseline")
	}
	if adaptive > base*1.25 {
		t.Errorf("adaptive p99 %.0f too far above baseline %.0f; paper: +3.1%%", adaptive, base)
	}
	if full <= adaptive {
		t.Error("full randomization must be worse than adaptive partitioning")
	}
	if p10k >= full {
		t.Error("partial(10k) must be cheaper than full randomization")
	}
}

func TestAdaptiveStillBlocksAttackDuringWorkload(t *testing.T) {
	// Defense property end-to-end: even under a full Nginx run, the
	// adaptive scheme never lets I/O evict a CPU line.
	cfg := DefaultNginxConfig()
	cfg.Requests = 8000
	cfg.CorpusBytes = 24 << 20 // exceed the LLC so every set is full
	m := Nginx(mustEnv(t, SchemeAdaptive, testLLC), cfg)
	if m.Cache.IOEvictedCPU != 0 {
		t.Errorf("adaptive partitioning leaked %d CPU evictions by IO", m.Cache.IOEvictedCPU)
	}
	// With a recycled ring the driver keeps its buffer lines MRU, so the
	// vulnerable baseline displaces CPU lines mainly when something evicts
	// the IO lines between packets (that something is the spy in the
	// attack). A randomized ring forces fresh allocations every packet and
	// must show the displacement even without an adversary.
	v := Nginx(mustEnv(t, SchemeFullRandom, testLLC), cfg)
	if v.Cache.IOEvictedCPU == 0 {
		t.Error("DDIO with randomized buffers should show IO-evicts-CPU events")
	}
}

func TestThroughputMath(t *testing.T) {
	m := Metrics{Requests: 1000, Duration: 3_300_000_000}
	if got := m.Throughput(); got != 1000 {
		t.Errorf("1000 requests in 1s = %.0f want 1000", got)
	}
	if (Metrics{}).Throughput() != 0 {
		t.Error("zero duration")
	}
}
