package perfsim

import (
	"repro/internal/mem"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// FileCopy models `dd` copying a file of the given size from disk: the
// disk controller DMAs each line in (through DDIO when enabled), the
// kernel reads it and writes it to the destination page-cache page. Fig 15
// uses 100 MB; tests scale down.
func FileCopy(env *Env, bytes int) Metrics {
	srcPages := bytes / mem.PageSize
	src, _ := env.Alloc.AllocPages(srcPages)
	dst, _ := env.Alloc.AllocPages(srcPages)
	const diskBytesPerSec = 500 << 20
	linePeriod := sim.CyclesPerSecond(float64(diskBytesPerSec) / 64)
	env.Cache.ResetStats()
	start := env.Clock.Now()
	var chunks uint64
	for p := 0; p < srcPages; p++ {
		for b := 0; b < mem.PageSize/64; b++ {
			// Disk DMA write of one line, then the copy loop reads it and
			// stores to the destination.
			env.Cache.IOWrite(uint64(src[p]) + uint64(b*64))
			env.Clock.Advance(linePeriod)
			_, lat := env.Cache.Read(uint64(src[p]) + uint64(b*64))
			_, lat2 := env.Cache.Write(uint64(dst[p]) + uint64(b*64))
			env.Clock.Advance(lat + lat2)
		}
		chunks++
	}
	return Metrics{
		Workload: "File Copy",
		Scheme:   env.Scheme,
		Cache:    env.Cache.Stats(),
		Duration: env.Clock.Now() - start,
		Requests: chunks,
	}
}

// TCPRecv models the paper's constant receiver of TCP packets with 8-byte
// payloads: minimum-size frames arrive at a high rate, take the driver's
// copy path, and the application reads each payload from its socket.
func TCPRecv(env *Env, packets int) Metrics {
	wire := netmodel.NewWire(netmodel.GigabitRate)
	src := netmodel.NewConstantSource(wire, 64, 400_000, env.Clock.Now(), packets)
	appPages, _ := env.Alloc.AllocPages(8)
	env.Cache.ResetStats()
	start := env.Clock.Now()
	var count uint64
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		if f.Arrival > env.Clock.Now() {
			env.Clock.AdvanceTo(f.Arrival)
		}
		f.Known = true
		env.NIC.Receive(f)
		env.NIC.ProcessDriver(env.Clock.Now() + env.NIC.Config().DriverLatency)
		env.Clock.Advance(env.overhead)
		// Application recv(): copy the payload out of the skb.
		app := uint64(appPages[int(count)%len(appPages)]) + uint64(count%64)*64
		_, lat := env.Cache.Read(app)
		env.Clock.Advance(lat + 500) // syscall + copy overhead
		count++
	}
	return Metrics{
		Workload: "TCP Recv",
		Scheme:   env.Scheme,
		Cache:    env.Cache.Stats(),
		Duration: env.Clock.Now() - start,
		Requests: count,
	}
}

// NginxConfig shapes the web-server model.
type NginxConfig struct {
	// Requests is the number of HTTP requests to serve.
	Requests int
	// TargetRate is the wrk2 open-loop arrival rate (req/s); 0 means
	// closed-loop saturation (Fig 14 measures saturated throughput,
	// Fig 16 uses 140k req/s).
	TargetRate float64
	// Threads is the worker count (wrk2 experiment: 8).
	Threads int
	// CorpusBytes is the served content working set; ~16 MB makes the
	// Fig 14 LLC-size sweep bite.
	CorpusBytes int
	// LinesPerRequest is the content+metadata touched per request.
	LinesPerRequest int
	// ComputeCycles is the non-memory CPU work per request.
	ComputeCycles uint64
}

// DefaultNginxConfig returns the Fig 14/16 workload shape.
func DefaultNginxConfig() NginxConfig {
	return NginxConfig{
		Requests:        30_000,
		TargetRate:      0,
		Threads:         8,
		CorpusBytes:     16 << 20,
		LinesPerRequest: 220,
		// Sized so that 8 workers saturate just above the wrk2 target of
		// 140k req/s, the regime in which Fig 16's tail latencies live.
		ComputeCycles: 160_000,
	}
}

// Nginx models the web server: each request arrives as a small packet,
// traverses the driver, touches server content (a hot header set plus a
// corpus working set), and is answered. Request latency combines queueing
// (open-loop arrivals onto Threads workers) and the measured service time,
// which includes the memory stalls the cache model charges and the
// driver-path overhead of the active defense scheme.
func Nginx(env *Env, cfg NginxConfig) Metrics {
	corpusPages, _ := env.Alloc.AllocPages(cfg.CorpusBytes / mem.PageSize)
	hotPages, _ := env.Alloc.AllocPages(64) // nginx code + config + TLS state
	wire := netmodel.NewWire(netmodel.GigabitRate)

	var arrivalPeriod uint64
	if cfg.TargetRate > 0 {
		arrivalPeriod = sim.CyclesPerSecond(cfg.TargetRate)
	}
	// Worker availability, in absolute cycles.
	workers := make([]uint64, cfg.Threads)
	env.Cache.ResetStats()
	start := env.Clock.Now()
	latencies := make([]uint64, 0, cfg.Requests)
	var arrival uint64 = env.Clock.Now()

	for r := 0; r < cfg.Requests; r++ {
		if arrivalPeriod > 0 {
			arrival += uint64(env.RNG.Jitter(float64(arrivalPeriod), 0.5))
		} else {
			arrival = env.Clock.Now()
		}
		// Request packet through the NIC (RX path).
		f := wire.Send(128, arrival, true)
		if f.Arrival > env.Clock.Now() {
			env.Clock.AdvanceTo(f.Arrival)
		}
		env.NIC.Receive(f)
		env.NIC.ProcessDriver(env.Clock.Now() + env.NIC.Config().DriverLatency)

		// Service: headers from the hot set, content from the corpus.
		var stall uint64
		for i := 0; i < 24; i++ {
			p := hotPages[env.RNG.Intn(len(hotPages))]
			_, lat := env.Cache.Read(uint64(p) + uint64(env.RNG.Intn(64))*64)
			stall += lat
		}
		filePage := env.RNG.Intn(len(corpusPages))
		for i := 0; i < cfg.LinesPerRequest; i++ {
			p := corpusPages[(filePage+i/64)%len(corpusPages)]
			_, lat := env.Cache.Read(uint64(p) + uint64(i%64)*64)
			stall += lat
		}
		service := cfg.ComputeCycles + stall + env.overhead
		env.Clock.Advance(service / 4) // workers overlap; wall clock moves slower

		// Queueing: earliest-free worker takes the request.
		w := 0
		for i := 1; i < len(workers); i++ {
			if workers[i] < workers[w] {
				w = i
			}
		}
		startSvc := workers[w]
		if f.Arrival > startSvc {
			startSvc = f.Arrival
		}
		workers[w] = startSvc + service
		latencies = append(latencies, workers[w]-f.Arrival)
	}
	// Completion time: last worker to finish.
	end := env.Clock.Now()
	for _, w := range workers {
		if w > end {
			end = w
		}
	}
	if end > env.Clock.Now() {
		env.Clock.AdvanceTo(end)
	}
	return Metrics{
		Workload:  "Nginx",
		Scheme:    env.Scheme,
		Cache:     env.Cache.Stats(),
		Duration:  end - start,
		Requests:  uint64(cfg.Requests),
		Latencies: latencies,
	}
}
