// Package perfsim is the reproduction's stand-in for the paper's gem5
// full-system evaluation (§VII): a trace-driven performance model that runs
// the three I/O-heavy workloads — a 100 MB file copy, a TCP receiver with
// tiny payloads, and an Nginx-style web server under wrk2-style load —
// through the same cache model the attack uses, under each defense scheme.
//
// The paper's Table II machine is simulated at the level that matters for
// Figs 14-16: memory traffic, LLC miss rate, and request service/queueing
// time. Absolute numbers are not comparable to gem5's; the relative effects
// (DDIO removes DMA memory traffic, adaptive partitioning costs a few
// percent, buffer randomization costs allocation work per packet) are
// structural and survive the substitution.
package perfsim

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Scheme is a defense configuration under evaluation (the five lines of
// Fig 16, of which three also appear in Figs 14-15).
type Scheme int

const (
	// SchemeDDIO is the vulnerable baseline: stock DDIO, stock driver.
	SchemeDDIO Scheme = iota
	// SchemeNoDDIO disables direct cache access: DMA goes to memory.
	SchemeNoDDIO
	// SchemeAdaptive is the paper's §VII adaptive I/O cache partitioning.
	SchemeAdaptive
	// SchemeFullRandom re-allocates the rx buffer for every packet (§VI-b).
	SchemeFullRandom
	// SchemePartial1k re-allocates the whole ring every 1,000 packets.
	SchemePartial1k
	// SchemePartial10k re-allocates the whole ring every 10,000 packets.
	SchemePartial10k
)

func (s Scheme) String() string {
	switch s {
	case SchemeNoDDIO:
		return "No DDIO"
	case SchemeAdaptive:
		return "Adaptive Partitioning"
	case SchemeFullRandom:
		return "Fully Randomized Ring"
	case SchemePartial1k:
		return "Partial Randomization (1k)"
	case SchemePartial10k:
		return "Partial Randomization (10k)"
	default:
		return "Vulnerable Baseline (DDIO)"
	}
}

// Per-packet costs of the software mitigations, in cycles, charged to the
// driver path: a fresh page allocation plus the coherent-memory descriptor
// rewrite §III-A explains is expensive. Periodic randomization pays the
// whole-ring cost every interval, amortized here.
const (
	reallocCostPerPacket = 2_000
	ringSize             = 256
)

// RandomizationOverhead returns the amortized per-packet driver overhead
// of a scheme, in cycles.
//
// Deprecated: the scheme menu only models three fixed intervals. New code
// should build an Effects value, whose OverheadPerPacket is an exact
// function of the configured period; this function remains as the legacy
// mapping (and equals EffectsForScheme(s).OverheadPerPacket()).
func RandomizationOverhead(s Scheme) uint64 {
	switch s {
	case SchemeFullRandom:
		return reallocCostPerPacket
	case SchemePartial1k:
		return reallocCostPerPacket * ringSize / 1_000
	case SchemePartial10k:
		return reallocCostPerPacket * ringSize / 10_000
	default:
		return 0
	}
}

// Env is one simulated machine instance configured for a defense — a
// legacy scheme (NewEnv) or a composed Effects value (NewEnvEffects).
type Env struct {
	// Scheme is the legacy menu entry the env was built from; the zero
	// value (SchemeDDIO) for effects-built environments.
	Scheme Scheme
	// Effects is the compositional configuration the machine was built
	// with; NewEnv fills it via EffectsForScheme.
	Effects Effects
	Clock   *sim.Clock
	Cache   *cache.Cache
	Alloc   *mem.Allocator
	NIC     *nic.NIC
	RNG     *sim.RNG

	// overhead is the amortized per-packet driver cost the workloads
	// charge, resolved once at construction from Effects.
	overhead uint64
}

// NewEnv builds a machine with the given LLC size (bytes) under a scheme.
// LLC sizes map to way counts at fixed 8x2048 sets x 64 B geometry, the
// way Fig 14 shrinks the cache (20 MB -> 20 ways, 11 MB -> 11, 8 MB -> 8).
// It is the legacy five-point menu over NewEnvEffects: the two paths
// build identical machines for the schemes the menu covers.
func NewEnv(scheme Scheme, llcBytes int, seed int64) (*Env, error) {
	env, err := NewEnvEffects(EffectsForScheme(scheme), llcBytes, seed)
	if err != nil {
		return nil, err
	}
	env.Scheme = scheme
	return env, nil
}

// RunNginx builds an environment for the scheme and runs the Nginx
// workload — the shared cost-axis measurement of Fig 16, the defense
// examples, and the matrix_defense experiment.
func RunNginx(scheme Scheme, llcBytes int, seed int64, cfg NginxConfig) (Metrics, error) {
	env, err := NewEnv(scheme, llcBytes, seed)
	if err != nil {
		return Metrics{}, err
	}
	return Nginx(env, cfg), nil
}

// Metrics aggregates a workload run.
type Metrics struct {
	Workload string
	Scheme   Scheme
	Cache    cache.Stats
	// Duration is the simulated run time in cycles.
	Duration uint64
	// Requests counts completed work units (requests, packets, or chunks).
	Requests uint64
	// Latencies are per-request response times in cycles (Nginx only).
	Latencies []uint64
}

// LatencyPercentile returns the p-th percentile of the per-request
// response times in cycles (0 when the workload records none) — the
// shared cost-axis reading of Fig 16, the defense matrix, and the
// defense example.
func (m Metrics) LatencyPercentile(p float64) float64 {
	if len(m.Latencies) == 0 {
		return 0
	}
	lat := make([]float64, len(m.Latencies))
	for i, l := range m.Latencies {
		lat[i] = float64(l)
	}
	return stats.Percentile(lat, p)
}

// Throughput returns work units per second of simulated time.
func (m Metrics) Throughput() float64 {
	if m.Duration == 0 {
		return 0
	}
	return float64(m.Requests) / sim.Seconds(m.Duration)
}

// NormalizedTraffic returns this run's memory read and write traffic and
// miss rate, each normalized to the corresponding value of base — the
// Fig 15 presentation (No-DDIO = 1.0).
func (m Metrics) NormalizedTraffic(base Metrics) (reads, writes, missRate float64) {
	norm := func(v, b uint64) float64 {
		if b == 0 {
			return 0
		}
		return float64(v) / float64(b)
	}
	reads = norm(m.Cache.MemReads, base.Cache.MemReads)
	writes = norm(m.Cache.MemWrites, base.Cache.MemWrites)
	if br := base.Cache.MissRate(); br > 0 {
		missRate = m.Cache.MissRate() / br
	}
	return reads, writes, missRate
}
