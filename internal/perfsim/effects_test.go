package perfsim

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/nic"
)

func TestComposeSemantics(t *testing.T) {
	ddio := Effects{DDIOOff: true}
	part := Effects{Partition: cache.DefaultPartitionConfig()}
	rand1k := Effects{Randomize: nic.RandomizePeriodic, RandomizeInterval: 1_000}
	full := Effects{Randomize: nic.RandomizeFull}

	got := ddio.Compose(part).Compose(rand1k)
	if !got.DDIOOff || got.Partition == nil || got.Randomize != nic.RandomizePeriodic || got.RandomizeInterval != 1_000 {
		t.Fatalf("compose dropped a disjoint mechanism: %+v", got)
	}
	// DDIOOff is sticky; same-type randomization layers are last-wins,
	// mirroring Stack.Apply's field-overwrite semantics.
	if g := got.Compose(Effects{}); !g.DDIOOff {
		t.Fatalf("DDIOOff not sticky under composition: %+v", g)
	}
	if g := rand1k.Compose(full); g.Randomize != nic.RandomizeFull {
		t.Fatalf("same-type compose not last-wins: %+v", g)
	}
	// Compose copies partition configs instead of aliasing the argument.
	p := cache.DefaultPartitionConfig()
	g := Effects{}.Compose(Effects{Partition: p})
	p.MaxIOWays = 99
	if g.Partition.MaxIOWays == 99 {
		t.Fatal("compose aliased the caller's partition config")
	}
}

func TestOverheadPerPacketExact(t *testing.T) {
	cases := []struct {
		e    Effects
		want uint64
	}{
		{Effects{}, 0},
		{Effects{DDIOOff: true}, 0},
		{Effects{Partition: cache.DefaultPartitionConfig()}, 0},
		{Effects{Randomize: nic.RandomizeFull}, reallocCostPerPacket},
		{Effects{Randomize: nic.RandomizePeriodic, RandomizeInterval: 1_000}, 512},
		{Effects{Randomize: nic.RandomizePeriodic, RandomizeInterval: 10_000}, 51},
		// The exact amortized function, not the nearest-of-three bucket:
		// a 2k interval costs half the 1k interval, not the 1k bucket.
		{Effects{Randomize: nic.RandomizePeriodic, RandomizeInterval: 2_000}, 256},
		{Effects{Randomize: nic.RandomizePeriodic, RandomizeInterval: 4_000}, 128},
	}
	for _, c := range cases {
		if got := c.e.OverheadPerPacket(); got != c.want {
			t.Errorf("%s: overhead %d, want %d", c.e.Fingerprint(), got, c.want)
		}
	}
	// Legacy parity at every menu point.
	for _, s := range []Scheme{SchemeDDIO, SchemeNoDDIO, SchemeAdaptive, SchemeFullRandom, SchemePartial1k, SchemePartial10k} {
		if got, want := EffectsForScheme(s).OverheadPerPacket(), RandomizationOverhead(s); got != want {
			t.Errorf("%v: effects overhead %d != legacy %d", s, got, want)
		}
	}
}

// TestNewEnvEffectsParity pins that the legacy scheme path and the
// compositional path build byte-identical machines: same workload run,
// same metrics.
func TestNewEnvEffectsParity(t *testing.T) {
	cfg := DefaultNginxConfig()
	cfg.Requests = 1_500
	cfg.TargetRate = 140_000
	for _, s := range []Scheme{SchemeDDIO, SchemeNoDDIO, SchemeAdaptive, SchemeFullRandom, SchemePartial1k, SchemePartial10k} {
		a, err := RunNginx(s, 20<<20, 7, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunNginxEffects(EffectsForScheme(s), 20<<20, 7, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Duration != b.Duration || a.Requests != b.Requests ||
			a.Cache != b.Cache || a.LatencyPercentile(99) != b.LatencyPercentile(99) {
			t.Errorf("%v: scheme path and effects path diverge: %+v vs %+v", s, a, b)
		}
	}
}

// TestComposedStackCostsMore pins the compositional property the
// frontier's overhead axis depends on: a machine running partition AND
// randomization together costs strictly more than either mechanism
// alone — the dominant-layer approximation this model replaces would
// price the stack as its costliest member and drop the interaction.
func TestComposedStackCostsMore(t *testing.T) {
	cfg := DefaultNginxConfig()
	cfg.Requests = 3_000
	cfg.TargetRate = 140_000

	part := Effects{Partition: cache.DefaultPartitionConfig()}
	rand := Effects{Randomize: nic.RandomizeFull}
	both := part.Compose(rand)

	p99 := func(e Effects) float64 {
		m, err := RunNginxEffects(e, 20<<20, 7, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.LatencyPercentile(99)
	}
	base := p99(Effects{})
	pp, rp, bp := p99(part), p99(rand), p99(both)
	if !(pp > base) || !(rp > base) {
		t.Fatalf("each layer alone should cost something: base %.0f, partition %.0f, randomization %.0f", base, pp, rp)
	}
	if !(bp > pp && bp > rp) {
		t.Fatalf("composed stack must cost strictly more than either layer alone: partition %.0f, randomization %.0f, both %.0f", pp, rp, bp)
	}
}
