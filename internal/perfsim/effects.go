package perfsim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/sim"
)

// Effects is the compositional performance model of a defense: not a
// point on the fixed five-scheme menu, but the machine-configuration
// delta the defense imposes, expressed in the same vocabulary the
// simulator is configured in. A stack of defenses composes its layers'
// Effects and the composed value builds ONE environment with every
// mechanism installed, so interacting overheads — partition pressure on
// top of randomization's per-packet allocation work — flow through the
// simulation instead of being dropped by a dominant-layer
// approximation.
type Effects struct {
	// DDIOOff disables direct cache access: DMA traffic goes to memory.
	DDIOOff bool
	// Partition, when non-nil, enables adaptive I/O cache partitioning
	// with the given parameters.
	Partition *cache.PartitionConfig
	// Randomize selects a §VI-b ring-randomization mode; RandomizeNone
	// costs nothing.
	Randomize nic.RandomizeMode
	// RandomizeInterval is the packet count between periodic
	// re-randomizations (RandomizePeriodic only).
	RandomizeInterval int
}

// Compose overlays other onto e, mirroring Stack.Apply's semantics:
// layers of different defense types touch disjoint fields and both
// survive; same-type layers overwrite (last Apply wins). DDIOOff is
// sticky — no later layer re-enables DDIO.
func (e Effects) Compose(other Effects) Effects {
	out := e
	out.DDIOOff = e.DDIOOff || other.DDIOOff
	if other.Partition != nil {
		p := *other.Partition
		out.Partition = &p
	}
	if other.Randomize != nic.RandomizeNone {
		out.Randomize = other.Randomize
		out.RandomizeInterval = other.RandomizeInterval
	}
	return out
}

// OverheadPerPacket returns the amortized per-packet driver cost of the
// randomization component, in cycles — an exact function of the
// configured period (whole-ring reallocation cost spread over the
// interval), not a nearest-of-three bucket. At the intervals the legacy
// schemes model (full, 1k, 10k) the value is identical to
// RandomizationOverhead's.
func (e Effects) OverheadPerPacket() uint64 {
	switch e.Randomize {
	case nic.RandomizeFull:
		return reallocCostPerPacket
	case nic.RandomizePeriodic:
		if e.RandomizeInterval <= 0 {
			return reallocCostPerPacket
		}
		return uint64(reallocCostPerPacket * ringSize / e.RandomizeInterval)
	default:
		return 0
	}
}

// Fingerprint canonically identifies the machine configuration the
// effects build — the content-address component perf-measurement caches
// key on. Equal fingerprints mean interchangeable environments.
func (e Effects) Fingerprint() string {
	part := "none"
	if e.Partition != nil {
		part = fmt.Sprintf("%+v", *e.Partition)
	}
	return fmt.Sprintf("ddio_off=%t|partition=%s|randomize=%s/%d",
		e.DDIOOff, part, e.Randomize, e.RandomizeInterval)
}

// EffectsForScheme maps a legacy scheme onto its compositional form.
// NewEnv routes through it, so the two APIs build identical machines.
func EffectsForScheme(s Scheme) Effects {
	switch s {
	case SchemeNoDDIO:
		return Effects{DDIOOff: true}
	case SchemeAdaptive:
		return Effects{Partition: cache.DefaultPartitionConfig()}
	case SchemeFullRandom:
		return Effects{Randomize: nic.RandomizeFull}
	case SchemePartial1k:
		return Effects{Randomize: nic.RandomizePeriodic, RandomizeInterval: 1_000}
	case SchemePartial10k:
		return Effects{Randomize: nic.RandomizePeriodic, RandomizeInterval: 10_000}
	default:
		return Effects{}
	}
}

// NewEnvEffects builds a machine with every mechanism of the composed
// effects installed, at the given LLC size (see NewEnv for the
// size-to-geometry mapping).
func NewEnvEffects(e Effects, llcBytes int, seed int64) (*Env, error) {
	ways := llcBytes / (8 * 2048 * 64)
	if ways < 4 {
		return nil, fmt.Errorf("perfsim: LLC %d too small", llcBytes)
	}
	ccfg := cache.PaperConfig()
	ccfg.Ways = ways
	if e.DDIOOff {
		ccfg.DDIO = false
	}
	if e.Partition != nil {
		p := *e.Partition
		ccfg.Partition = &p
	}
	clock := sim.NewClock()
	c := cache.New(ccfg, clock)
	alloc := mem.NewAllocator(1<<30, sim.Derive(seed, "perf-alloc"))
	ncfg := nic.DefaultConfig()
	ncfg.RingSize = ringSize
	ncfg.Randomize = e.Randomize
	if e.Randomize == nic.RandomizePeriodic {
		ncfg.RandomizeInterval = e.RandomizeInterval
	}
	n, err := nic.New(ncfg, c, alloc, clock, sim.Derive(seed, "perf-nic"))
	if err != nil {
		return nil, err
	}
	return &Env{
		Effects:  e,
		Clock:    clock,
		Cache:    c,
		Alloc:    alloc,
		NIC:      n,
		RNG:      sim.Derive(seed, "perf-wl"),
		overhead: e.OverheadPerPacket(),
	}, nil
}

// RunNginxEffects builds an environment for the composed effects and
// runs the Nginx workload — the cost-axis measurement the defense
// matrix and the frontier search share.
func RunNginxEffects(e Effects, llcBytes int, seed int64, cfg NginxConfig) (Metrics, error) {
	env, err := NewEnvEffects(e, llcBytes, seed)
	if err != nil {
		return Metrics{}, err
	}
	return Nginx(env, cfg), nil
}
