package experiments

import (
	"fmt"
	"sync"

	"repro/internal/covert"
	"repro/internal/defense"
	"repro/internal/fingerprint"
	"repro/internal/perfsim"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/webtrace"
)

// This file is the shared defense evaluator: the attack-family leakage
// measurement the matrix_defense experiment always ran, factored out so
// the frontier search (internal/search) can score arbitrary candidate
// defenses with exactly the matrix's semantics — same attack batteries,
// same calibration gating, same strongest-attack merge — at a
// configurable per-candidate budget.

// attackLeakage is one rig's three-family attack outcome. Each family
// carries its calibration-health signal so a blind attacker's numbers
// can never read as a defense outcome.
type attackLeakage struct {
	chaseAcc  float64
	covertErr float64
	fpAcc     float64
	chaseCal  bool
	covertCal bool
	fpCal     bool
}

// scalar collapses the three families onto one leakage axis: the
// strongest attack's success probability (covert success is 1−error).
// This is the y-axis of the Pareto frontier.
func (l attackLeakage) scalar() float64 {
	s := l.chaseAcc
	if c := 1 - l.covertErr; c > s {
		s = c
	}
	if l.fpAcc > s {
		s = l.fpAcc
	}
	return s
}

// strongestAttack merges two attackers' measurements per family, taking
// the stronger attack AND carrying that attacker's health signal.
// "Stronger" is gated on calibration: a blind attacker's chance-level
// noise must never outrank a calibrated attacker's true measurement
// (under the partition+coarse stack the blind fine-timer chaser scores
// the two-class coin-flip ~0.5 while the calibrated amplified chaser
// truly measures ~0 — the cell must report the real leakage, not the
// noise). Raw numbers compare only between equally calibrated
// measurements.
func strongestAttack(fine, amp attackLeakage) attackLeakage {
	lk := fine
	if pickHigher(amp.chaseAcc, amp.chaseCal, lk.chaseAcc, lk.chaseCal) {
		lk.chaseAcc, lk.chaseCal = amp.chaseAcc, amp.chaseCal
	}
	if pickHigher(-amp.covertErr, amp.covertCal, -lk.covertErr, lk.covertCal) {
		lk.covertErr, lk.covertCal = amp.covertErr, amp.covertCal
	}
	if pickHigher(amp.fpAcc, amp.fpCal, lk.fpAcc, lk.fpCal) {
		lk.fpAcc, lk.fpCal = amp.fpAcc, amp.fpCal
	}
	return lk
}

// defenseLeakage runs the three attack families against one prepared
// rig (each family on its own fresh clone) at the given measurement
// budget.
func defenseLeakage(ctx MeasureCtx, art *Artifact, label string, covertSymbols, fpTrials int) (attackLeakage, error) {
	out := attackLeakage{covertErr: 1, covertCal: true}

	chaseRig, err := art.rig(label, ctx)
	if err != nil {
		return attackLeakage{}, err
	}
	// Three ring revolutions, not one: ring randomization only moves a
	// buffer after its first use, so a single pass is blind to §VI-b
	// (see chaseFrames).
	chase := chaseAccuracy(chaseRig, nil, chaseFrames(chaseRig))
	out.chaseAcc, out.chaseCal = chase.acc, chase.calOK

	// A ring with no isolated buffer means the channel cannot even be
	// established — that counts as fully erased (error 1, with the
	// health signal vacuously true: no receiver was ever built). An
	// error from the channel run itself is infrastructure failure,
	// not a defense outcome, and must fail the trial rather than
	// masquerade as a perfect defense.
	covertRig, err := art.rig(label, ctx)
	if err != nil {
		return attackLeakage{}, err
	}
	ring := covertRig.groundTruthRing()
	if gid, ok := covert.ChooseIsolatedBuffer(ring); ok {
		symbols := stats.NewLFSR15(uint16(ctx.Seed%0x7fff)|1).Symbols(covertSymbols, covert.Ternary.Base())
		r0, err := covert.RunSingleBuffer(covertRig.spy, covertRig.groups[gid],
			symbols, covert.Ternary, len(ring), 16_500)
		if err != nil {
			return attackLeakage{}, fmt.Errorf("covert channel under %s: %w", label, err)
		}
		out.covertErr = r0.ErrorRate
		if out.covertErr > 1 {
			out.covertErr = 1
		}
		out.covertCal = r0.CalibrationOK
	}

	fpRig, err := art.rig(label, ctx)
	if err != nil {
		return attackLeakage{}, err
	}
	atk := &fingerprint.Attack{
		Spy: fpRig.spy, Groups: fpRig.groups, Ring: fpRig.groundTruthRing(), TraceLen: 100,
	}
	ev := fingerprint.EvaluateClosedWorld(atk, webtrace.ClosedWorld(), webtrace.DefaultNoise(),
		fpTrials, sim.Derive(ctx.Seed, "matrix/"+label))
	out.fpAcc, out.fpCal = ev.Accuracy(), atk.CalibrationOK()
	return out, nil
}

// DefenseEvalBudget sizes one candidate's measurement: attack-family
// sample counts and the perf workload length. The frontier trades
// per-candidate fidelity for candidate count, so its default budget is
// deliberately below the matrix experiment's.
type DefenseEvalBudget struct {
	CovertSymbols int
	FPTrials      int
	NginxRequests int
}

// DefaultEvalBudget is the per-candidate budget the search driver uses
// at each scale.
func DefaultEvalBudget(scale Scale) DefenseEvalBudget {
	if scale == Paper {
		return DefenseEvalBudget{CovertSymbols: 100, FPTrials: 20, NginxRequests: 12_000}
	}
	return DefenseEvalBudget{CovertSymbols: 60, FPTrials: 5, NginxRequests: 3_000}
}

// candidatePerf memoizes perfsim Nginx runs across candidates: the
// machine configuration (Effects fingerprint), seed, and workload size
// fully determine the deterministic result, and a 200-candidate search
// visits only a few dozen distinct machines. Guarded globally because
// the runner measures candidates from parallel workers.
var (
	candidatePerfMu    sync.Mutex
	candidatePerfCache = map[string]matrixPerf{}
)

func candidatePerf(e perfsim.Effects, seed int64, cfg perfsim.NginxConfig) (matrixPerf, error) {
	key := fmt.Sprintf("%s|seed=%d|req=%d|rate=%g", e.Fingerprint(), seed, cfg.Requests, cfg.TargetRate)
	candidatePerfMu.Lock()
	defer candidatePerfMu.Unlock()
	if p, ok := candidatePerfCache[key]; ok {
		return p, nil
	}
	m, err := perfsim.RunNginxEffects(e, figLLC, seed, cfg)
	if err != nil {
		return matrixPerf{}, err
	}
	p := matrixPerf{p99: m.LatencyPercentile(99), throughput: m.Throughput()}
	candidatePerfCache[key] = p
	return p, nil
}

// DefenseCandidateExperiment wraps one candidate defense as a phased
// experiment the runner can execute: Prepare builds the defended
// machine (plus the amplified-attacker variant when the candidate
// coarsens the timer), Measure scores leakage with the strongest
// calibrated attack and prices overhead on the composed perfsim
// machine. perfSeed is shared across every candidate of one search so
// overhead deltas are comparable (and memoized) across the whole run.
func DefenseCandidateExperiment(id string, d defense.Defense, budget DefenseEvalBudget, perfSeed int64) Experiment {
	return Experiment{
		ID:    id,
		Short: "frontier candidate: " + d.Name(),
		Prepare: func(ctx PrepareCtx) (*Artifact, error) {
			if err := defense.Validate(d); err != nil {
				return nil, err
			}
			art := ctx.NewArtifact()
			spec := defenseSpec(ctx.Scale, d)
			if err := ctx.AddSpecRig(art, "candidate", spec, ctx.Seed); err != nil {
				return nil, err
			}
			if coarsensTimer(ctx.Scale, d) {
				if err := ctx.AddSpecRigStrategy(art, amplifiedLabel("candidate"), spec, ctx.Seed, probe.AmplifiedStrategy()); err != nil {
					return nil, err
				}
			}
			return art, nil
		},
		Measure: func(ctx MeasureCtx, art *Artifact) (Result, error) {
			lk, err := defenseLeakage(ctx, art, "candidate", budget.CovertSymbols, budget.FPTrials)
			if err != nil {
				return Result{}, err
			}
			if _, ok := art.Rigs[amplifiedLabel("candidate")]; ok {
				amp, err := defenseLeakage(ctx, art, amplifiedLabel("candidate"), budget.CovertSymbols, budget.FPTrials)
				if err != nil {
					return Result{}, err
				}
				lk = strongestAttack(lk, amp)
			}

			nginxCfg := perfsim.DefaultNginxConfig()
			nginxCfg.Requests = budget.NginxRequests
			nginxCfg.TargetRate = 140_000
			base, err := candidatePerf(perfsim.Effects{}, perfSeed, nginxCfg)
			if err != nil {
				return Result{}, err
			}
			perf, err := candidatePerf(d.PerfEffects(), perfSeed, nginxCfg)
			if err != nil {
				return Result{}, err
			}
			p99Delta := (perf.p99 - base.p99) / base.p99
			tputLoss := (base.throughput - perf.throughput) / base.throughput

			res := Result{
				ID:     id,
				Title:  "frontier candidate " + d.Name(),
				Header: []string{"defense", "leakage", "p99 delta"},
				Rows: [][]string{{
					d.Name(), pct(lk.scalar()), fmt.Sprintf("%+.2f%%", 100*p99Delta),
				}},
			}
			res.AddMetric("leakage", "fraction", lk.scalar())
			res.AddMetric("chase_accuracy", "fraction", lk.chaseAcc)
			res.AddMetric("chase_calibration_ok", "bool", boolMetric(lk.chaseCal))
			res.AddMetric("covert_error", "fraction", lk.covertErr)
			res.AddMetric("covert_calibration_ok", "bool", boolMetric(lk.covertCal))
			res.AddMetric("fingerprint_accuracy", "fraction", lk.fpAcc)
			res.AddMetric("fingerprint_calibration_ok", "bool", boolMetric(lk.fpCal))
			res.AddMetric("p99_delta", "fraction", p99Delta)
			res.AddMetric("throughput_loss", "fraction", tputLoss)
			return res, nil
		},
	}
}
