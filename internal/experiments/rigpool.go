package experiments

import (
	"sync"

	"repro/internal/probe"
	"repro/internal/testbed"
)

// RigPool recycles cloned machines across trials. Artifact.rig used to
// build every clone from scratch — fresh cache line array, allocator
// bitmap, NIC ring, deep-copied eviction sets, roughly 12 MB and dozens of
// allocations per trial — even though consecutive trials on a worker
// almost always measure machines of identical geometry. The pool keeps
// finished rigs, keyed by their options' OfflineFingerprint, and a later
// lease with a matching fingerprint adopts one in place: every buffer is
// reused and the restore is pure memcpy (see testbed.AdoptSnapshot).
//
// The fingerprint key is what makes cross-artifact reuse safe. It covers
// everything that shapes a machine's buffers — cache geometry and
// latencies, NIC/driver config, memory size — while everything it excludes
// (seed, noise rate, timer noise, and all machine *state*) is carried by
// the snapshot and overwritten wholesale on adoption. A rig that ran a
// timer-coarsened defended trial can therefore back an undefended trial
// next, or vice versa, with bit-identical results; geometry-changing
// defenses (partitioning, DDIO off) land under different keys and never
// mix. A leased rig poisoned by a partial, panicked Measure heals the same
// way: the next adoption overwrites every mutable field.
//
// The pool is mutex-guarded so one pool MAY be shared across goroutines,
// but the runner deliberately gives each worker its own (an uncontended
// mutex costs nanoseconds and per-worker pools keep rig reuse order — and
// thus memory footprint — independent of scheduling).
type RigPool struct {
	mu   sync.Mutex
	idle map[string][]*attackRig
}

// maxIdlePerKey caps how many idle rigs one key retains. A single
// matrix-style trial leases ~20 rigs of one geometry before releasing any
// of them; the cap keeps that worst case pooled while bounding the pool's
// footprint if an experiment ever leases an unbounded batch.
const maxIdlePerKey = 32

// NewRigPool returns an empty pool.
func NewRigPool() *RigPool {
	return &RigPool{idle: make(map[string][]*attackRig)}
}

// take removes and returns an idle rig for key, or nil when none is
// pooled (the caller falls back to a fresh clone).
func (p *RigPool) take(key string) *attackRig {
	p.mu.Lock()
	defer p.mu.Unlock()
	rigs := p.idle[key]
	if len(rigs) == 0 {
		return nil
	}
	r := rigs[len(rigs)-1]
	rigs[len(rigs)-1] = nil
	p.idle[key] = rigs[:len(rigs)-1]
	return r
}

// put returns a rig to the idle set. Rigs above the per-key cap are
// dropped for the garbage collector.
func (p *RigPool) put(r *attackRig) {
	if r == nil || r.poolKey == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rigs := p.idle[r.poolKey]
	if len(rigs) >= maxIdlePerKey {
		return
	}
	p.idle[r.poolKey] = append(rigs, r)
}

// Lease opens a lease on the pool. The runner holds one lease per worker
// per trial: rigs cloned during the trial are tracked on the lease, and
// Release after the trial returns them all to the pool — whether the
// trial's Measure finished, errored, or panicked, since adoption restores
// a rig from any state.
func (p *RigPool) Lease() *RigLease {
	return &RigLease{pool: p}
}

// RigLease tracks the rigs one trial has drawn from (or registered with) a
// pool. It is single-goroutine, like the Measure it serves; only the
// underlying pool is shared. A nil lease is valid and disables pooling —
// every clone is built fresh and dropped, the historical behavior.
type RigLease struct {
	pool   *RigPool
	leased []*attackRig
}

// take leases an idle rig for key, or nil when pooling is off or the pool
// has none.
func (l *RigLease) take(key string) *attackRig {
	if l == nil {
		return nil
	}
	return l.pool.take(key)
}

// track registers a rig (freshly built or adopted) for return at Release.
func (l *RigLease) track(r *attackRig) {
	if l == nil {
		return
	}
	l.leased = append(l.leased, r)
}

// Release returns every tracked rig to the pool, reusing the lease's
// tracking slice for the next trial. Safe on a nil lease.
func (l *RigLease) Release() {
	if l == nil {
		return
	}
	for i, r := range l.leased {
		l.pool.put(r)
		l.leased[i] = nil
	}
	l.leased = l.leased[:0]
}

// adopt rebinds a pooled rig to the artifact's machine: the testbed is
// restored in place to the snapshot (reseeding online streams when the
// trial decorrelates), the spy rebound, and the eviction sets copied into
// the rig's reused buffers. State-identical to freshRig, allocation-free
// in steady state.
func (r *attackRig) adopt(ra *RigArtifact, reseed bool, online int64) {
	if reseed {
		r.tb.AdoptSnapshotReseeded(ra.Opts, ra.Machine, online)
	} else {
		r.tb.AdoptSnapshot(ra.Opts, ra.Machine)
	}
	r.spy.Rebind(r.tb, ra.Spy)
	r.groups = probe.CopyEvictionSetsInto(r.groups, ra.Groups)
	r.ccfg = r.tb.Cache().Config()
}

// freshRig clones an independent machine from the artifact — the
// non-pooled path, and the fallback when the pool has no rig of matching
// geometry.
func freshRig(ra *RigArtifact, reseed bool, online int64) (*attackRig, error) {
	tb, err := testbed.NewShell(ra.Opts)
	if err != nil {
		return nil, err
	}
	if reseed {
		tb.RestoreReseeded(ra.Machine, online)
	} else {
		tb.Restore(ra.Machine)
	}
	spy := probe.RestoreSpy(tb, ra.Spy)
	groups := probe.CopyEvictionSetsInto(nil, ra.Groups)
	return &attackRig{tb: tb, spy: spy, groups: groups, ccfg: tb.Cache().Config()}, nil
}
