package experiments

import (
	"fmt"
	"strings"

	"repro/internal/covert"
	"repro/internal/sim"
	"repro/internal/stats"
)

// covertRig prepares the covert-channel prerequisites: machine, groups,
// and the ring sequence. The sequence comes from the ground-truth oracle
// here — Table1 measures sequence-recovery quality separately, and the
// channel experiments measure channel quality given a recovered sequence,
// the same separation the paper uses.
func covertRig(scale Scale, seed int64) (*attackRig, []int, error) {
	rig, err := newAttackRig(scale, seed)
	if err != nil {
		return nil, nil, err
	}
	return rig, rig.groundTruthRing(), nil
}

// Fig10 transmits the paper's example sequence "2012012..." and shows the
// decoded symbols.
func Fig10(scale Scale, seed int64) (Result, error) {
	rig, ring, err := covertRig(scale, seed)
	if err != nil {
		return Result{}, err
	}
	gid, ok := covert.ChooseIsolatedBuffer(ring)
	if !ok {
		return Result{}, fmt.Errorf("fig10: no isolated buffer in ring")
	}
	symbols := make([]int, 24)
	for i := range symbols {
		symbols[i] = []int{2, 0, 1}[i%3]
	}
	res0, err := covert.RunSingleBuffer(rig.spy, rig.groups[gid], symbols, covert.Ternary, len(ring), 16_500)
	if err != nil {
		return Result{}, err
	}
	fmtSyms := func(s []int) string {
		var b strings.Builder
		for _, v := range s {
			fmt.Fprintf(&b, "%d", v)
		}
		return b.String()
	}
	res := Result{
		ID:     "fig10",
		Title:  "decoded ternary stream (trojan sends 201 repeating)",
		Header: []string{"direction", "symbols"},
		Rows: [][]string{
			{"sent", fmtSyms(res0.Sent)},
			{"received", fmtSyms(res0.Received)},
		},
		Notes: []string{
			fmt.Sprintf("error rate %s; the paper's Fig 10 shows the same windowed decode on sets 1..3", pct(res0.ErrorRate)),
		},
	}
	res.AddMetric("error_rate", "fraction", res0.ErrorRate)
	res.AddMetric("symbols_sent", "symbols", float64(len(res0.Sent)))
	res.AddMetric("symbols_received", "symbols", float64(len(res0.Received)))
	return res, nil
}

// Fig11 measures single-buffer channel bandwidth and error for binary and
// ternary encodings across probe rates of 7, 14, and 28 kHz.
func Fig11(scale Scale, seed int64) (Result, error) {
	res := Result{
		ID:     "fig11",
		Title:  "remote covert channel: bandwidth and error vs probe rate",
		Header: []string{"encoding", "probe-rate", "bandwidth (bps)", "error"},
	}
	nSymbols := 150
	if scale == Paper {
		nSymbols = 400
	}
	for _, enc := range []covert.Encoding{covert.Binary, covert.Ternary} {
		for _, rate := range []float64{7_000, 14_000, 28_000} {
			rig, ring, err := covertRig(scale, seed+int64(rate))
			if err != nil {
				return Result{}, err
			}
			gid, ok := covert.ChooseIsolatedBuffer(ring)
			if !ok {
				return Result{}, fmt.Errorf("fig11: no isolated buffer")
			}
			lf := stats.NewLFSR15(uint16(seed + 1))
			symbols := lf.Symbols(nSymbols, enc.Base())
			r, err := covert.RunSingleBuffer(rig.spy, rig.groups[gid], symbols, enc, len(ring), rate)
			if err != nil {
				return Result{}, err
			}
			res.Rows = append(res.Rows, []string{
				enc.String(), fmt.Sprintf("%.0f kHz", rate/1000),
				fmt.Sprintf("%.0f", r.Bandwidth), pct(r.ErrorRate),
			})
			key := fmt.Sprintf("%s_%.0fkhz", slug(enc.String()), rate/1000)
			res.AddMetric(key+"_bandwidth", "bps", r.Bandwidth)
			res.AddMetric(key+"_error", "fraction", r.ErrorRate)
		}
	}
	res.Notes = append(res.Notes,
		"paper shape: bandwidth is line-rate bound (~constant across probe rates; ternary ~3095 bps at 256 pkts/symbol);",
		"error falls as probe rate rises, binary slightly below ternary")
	return res, nil
}

// Fig12ab sweeps the number of monitored buffers (1..16): bandwidth about
// doubles with each doubling, error jumps at 16.
func Fig12ab(scale Scale, seed int64) (Result, error) {
	res := Result{
		ID:     "fig12ab",
		Title:  "multi-buffer channel: bandwidth and error vs monitored buffers",
		Header: []string{"buffers", "bandwidth (kbps)", "error"},
	}
	nSymbols := 120
	for _, n := range []int{1, 2, 4, 8, 16} {
		rig, ring, err := covertRig(scale, seed+int64(n)*13)
		if err != nil {
			return Result{}, err
		}
		symbols := stats.NewLFSR15(uint16(7+n)).Symbols(nSymbols, 3)
		r, err := covert.RunMultiBuffer(rig.spy, rig.groups, ring, n, symbols, covert.Ternary, 56_000)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n), f1(r.Bandwidth / 1000), pct(r.ErrorRate),
		})
		res.AddMetric(fmt.Sprintf("buffers%d_bandwidth", n), "kbps", r.Bandwidth/1000)
		res.AddMetric(fmt.Sprintf("buffers%d_error", n), "fraction", r.ErrorRate)
	}
	res.Notes = append(res.Notes,
		"paper shape: bandwidth ~doubles per doubling of monitored buffers (to ~24.5 kbps at 16); error jumps at 16")
	return res, nil
}

// Fig12cd runs the full-chasing channel across sender bandwidths: out-of-
// sync rate stays roughly flat, error jumps once reordering sets in.
func Fig12cd(scale Scale, seed int64) (Result, error) {
	res := Result{
		ID:     "fig12cd",
		Title:  "full-chasing channel: out-of-sync and error vs channel bandwidth",
		Header: []string{"bandwidth (kbps)", "packet rate (pps)", "received", "out-of-sync", "error"},
	}
	nSymbols := 200
	for _, kbps := range []float64{80, 160, 320, 640} {
		rig, ring, err := covertRig(scale, seed+int64(kbps))
		if err != nil {
			return Result{}, err
		}
		packetRate := kbps * 1000 / covert.Ternary.BitsPerSymbol()
		symbols := stats.NewLFSR15(uint16(3+kbps)).Symbols(nSymbols, 3)
		ch := covert.NewChasingChannel(rig.spy, rig.groups, ring)
		r := ch.Run(symbols, covert.Ternary, packetRate, sim.Derive(seed, "reorder"))
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f", kbps), fmt.Sprintf("%.0f", packetRate),
			fmt.Sprintf("%d/%d", len(r.Received), len(r.Sent)),
			fmt.Sprint(r.OutOfSync), pct(r.ErrorRate),
		})
		key := fmt.Sprintf("rate%.0fkbps", kbps)
		res.AddMetric(key+"_out_of_sync", "events", float64(r.OutOfSync))
		res.AddMetric(key+"_error", "fraction", r.ErrorRate)
	}
	res.Notes = append(res.Notes,
		"paper shape: out-of-sync roughly flat with rate; error jumps at 640 kbps when packets begin arriving out of order",
		"each sync loss costs up to a full ring revolution of symbols, so error blows up once the rate outruns the probe loop")
	return res, nil
}
