package experiments

import (
	"fmt"
	"strings"

	"repro/internal/covert"
	"repro/internal/sim"
	"repro/internal/stats"
)

// covertClone cuts a fresh machine clone from the artifact and derives
// the covert-channel prerequisites: groups plus the ring sequence. The
// sequence comes from the ground-truth oracle here — Table1 measures
// sequence-recovery quality separately, and the channel experiments
// measure channel quality given a recovered sequence, the same separation
// the paper uses.
func covertClone(art *Artifact, label string, ctx MeasureCtx) (*attackRig, []int, error) {
	rig, err := art.rig(label, ctx)
	if err != nil {
		return nil, nil, err
	}
	return rig, rig.groundTruthRing(), nil
}

// PrepareFig10 builds the single-buffer channel's machine.
func PrepareFig10(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	if err := ctx.AddRig(art, "rig", machineOptions(ctx.Scale, ctx.Seed)); err != nil {
		return nil, err
	}
	return art, nil
}

// MeasureFig10 transmits the paper's example sequence "2012012..." and
// shows the decoded symbols.
func MeasureFig10(ctx MeasureCtx, art *Artifact) (Result, error) {
	rig, ring, err := covertClone(art, "rig", ctx)
	if err != nil {
		return Result{}, err
	}
	gid, ok := covert.ChooseIsolatedBuffer(ring)
	if !ok {
		return Result{}, fmt.Errorf("fig10: no isolated buffer in ring")
	}
	symbols := make([]int, 24)
	for i := range symbols {
		symbols[i] = []int{2, 0, 1}[i%3]
	}
	res0, err := covert.RunSingleBuffer(rig.spy, rig.groups[gid], symbols, covert.Ternary, len(ring), 16_500)
	if err != nil {
		return Result{}, err
	}
	fmtSyms := func(s []int) string {
		var b strings.Builder
		for _, v := range s {
			fmt.Fprintf(&b, "%d", v)
		}
		return b.String()
	}
	res := Result{
		ID:     "fig10",
		Title:  "decoded ternary stream (trojan sends 201 repeating)",
		Header: []string{"direction", "symbols"},
		Rows: [][]string{
			{"sent", fmtSyms(res0.Sent)},
			{"received", fmtSyms(res0.Received)},
		},
		Notes: []string{
			fmt.Sprintf("error rate %s; the paper's Fig 10 shows the same windowed decode on sets 1..3", pct(res0.ErrorRate)),
		},
	}
	res.AddMetric("error_rate", "fraction", res0.ErrorRate)
	res.AddMetric("symbols_sent", "symbols", float64(len(res0.Sent)))
	res.AddMetric("symbols_received", "symbols", float64(len(res0.Received)))
	return res, nil
}

// fig11Rates are the probe rates Fig 11 spans.
var fig11Rates = []float64{7_000, 14_000, 28_000}

// PrepareFig11 builds one machine per probe rate; both encodings measure
// on clones of the same per-rate machine (they always ran on machines
// with identical seeds).
func PrepareFig11(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	for _, rate := range fig11Rates {
		opts := machineOptions(ctx.Scale, ctx.Seed+int64(rate))
		if err := ctx.AddRig(art, fmt.Sprintf("rate%.0f", rate), opts); err != nil {
			return nil, err
		}
	}
	return art, nil
}

// MeasureFig11 measures single-buffer channel bandwidth and error for
// binary and ternary encodings across probe rates of 7, 14, and 28 kHz.
func MeasureFig11(ctx MeasureCtx, art *Artifact) (Result, error) {
	res := Result{
		ID:     "fig11",
		Title:  "remote covert channel: bandwidth and error vs probe rate",
		Header: []string{"encoding", "probe-rate", "bandwidth (bps)", "error"},
	}
	nSymbols := 150
	if ctx.Scale == Paper {
		nSymbols = 400
	}
	for _, enc := range []covert.Encoding{covert.Binary, covert.Ternary} {
		for _, rate := range fig11Rates {
			rig, ring, err := covertClone(art, fmt.Sprintf("rate%.0f", rate), ctx)
			if err != nil {
				return Result{}, err
			}
			gid, ok := covert.ChooseIsolatedBuffer(ring)
			if !ok {
				return Result{}, fmt.Errorf("fig11: no isolated buffer")
			}
			lf := stats.NewLFSR15(uint16(ctx.Seed + 1))
			symbols := lf.Symbols(nSymbols, enc.Base())
			r, err := covert.RunSingleBuffer(rig.spy, rig.groups[gid], symbols, enc, len(ring), rate)
			if err != nil {
				return Result{}, err
			}
			res.Rows = append(res.Rows, []string{
				enc.String(), fmt.Sprintf("%.0f kHz", rate/1000),
				fmt.Sprintf("%.0f", r.Bandwidth), pct(r.ErrorRate),
			})
			key := fmt.Sprintf("%s_%.0fkhz", slug(enc.String()), rate/1000)
			res.AddMetric(key+"_bandwidth", "bps", r.Bandwidth)
			res.AddMetric(key+"_error", "fraction", r.ErrorRate)
		}
	}
	res.Notes = append(res.Notes,
		"paper shape: bandwidth is line-rate bound (~constant across probe rates; ternary ~3095 bps at 256 pkts/symbol);",
		"error falls as probe rate rises, binary slightly below ternary")
	return res, nil
}

// fig12abBuffers are the monitored-buffer counts Fig 12a,b spans.
var fig12abBuffers = []int{1, 2, 4, 8, 16}

// PrepareFig12ab builds one machine per monitored-buffer count.
func PrepareFig12ab(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	for _, n := range fig12abBuffers {
		opts := machineOptions(ctx.Scale, ctx.Seed+int64(n)*13)
		if err := ctx.AddRig(art, fmt.Sprintf("buffers%d", n), opts); err != nil {
			return nil, err
		}
	}
	return art, nil
}

// MeasureFig12ab sweeps the number of monitored buffers (1..16):
// bandwidth about doubles with each doubling, error jumps at 16.
func MeasureFig12ab(ctx MeasureCtx, art *Artifact) (Result, error) {
	res := Result{
		ID:     "fig12ab",
		Title:  "multi-buffer channel: bandwidth and error vs monitored buffers",
		Header: []string{"buffers", "bandwidth (kbps)", "error"},
	}
	nSymbols := 120
	for _, n := range fig12abBuffers {
		rig, ring, err := covertClone(art, fmt.Sprintf("buffers%d", n), ctx)
		if err != nil {
			return Result{}, err
		}
		symbols := stats.NewLFSR15(uint16(7+n)).Symbols(nSymbols, 3)
		r, err := covert.RunMultiBuffer(rig.spy, rig.groups, ring, n, symbols, covert.Ternary, 56_000)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n), f1(r.Bandwidth / 1000), pct(r.ErrorRate),
		})
		res.AddMetric(fmt.Sprintf("buffers%d_bandwidth", n), "kbps", r.Bandwidth/1000)
		res.AddMetric(fmt.Sprintf("buffers%d_error", n), "fraction", r.ErrorRate)
	}
	res.Notes = append(res.Notes,
		"paper shape: bandwidth ~doubles per doubling of monitored buffers (to ~24.5 kbps at 16); error jumps at 16")
	return res, nil
}

// fig12cdRates are the sender bandwidths (kbps) Fig 12c,d spans.
var fig12cdRates = []float64{80, 160, 320, 640}

// PrepareFig12cd builds one machine per sender bandwidth.
func PrepareFig12cd(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	for _, kbps := range fig12cdRates {
		opts := machineOptions(ctx.Scale, ctx.Seed+int64(kbps))
		if err := ctx.AddRig(art, fmt.Sprintf("rate%.0f", kbps), opts); err != nil {
			return nil, err
		}
	}
	return art, nil
}

// MeasureFig12cd runs the full-chasing channel across sender bandwidths:
// out-of-sync rate stays roughly flat, error jumps once reordering sets
// in.
func MeasureFig12cd(ctx MeasureCtx, art *Artifact) (Result, error) {
	res := Result{
		ID:     "fig12cd",
		Title:  "full-chasing channel: out-of-sync and error vs channel bandwidth",
		Header: []string{"bandwidth (kbps)", "packet rate (pps)", "received", "out-of-sync", "error"},
	}
	nSymbols := 200
	for _, kbps := range fig12cdRates {
		rig, ring, err := covertClone(art, fmt.Sprintf("rate%.0f", kbps), ctx)
		if err != nil {
			return Result{}, err
		}
		packetRate := kbps * 1000 / covert.Ternary.BitsPerSymbol()
		symbols := stats.NewLFSR15(uint16(3+kbps)).Symbols(nSymbols, 3)
		ch := covert.NewChasingChannel(rig.spy, rig.groups, ring)
		r := ch.Run(symbols, covert.Ternary, packetRate, sim.Derive(ctx.Seed, "reorder"))
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f", kbps), fmt.Sprintf("%.0f", packetRate),
			fmt.Sprintf("%d/%d", len(r.Received), len(r.Sent)),
			fmt.Sprint(r.OutOfSync), pct(r.ErrorRate),
		})
		key := fmt.Sprintf("rate%.0fkbps", kbps)
		res.AddMetric(key+"_out_of_sync", "events", float64(r.OutOfSync))
		res.AddMetric(key+"_error", "fraction", r.ErrorRate)
	}
	res.Notes = append(res.Notes,
		"paper shape: out-of-sync roughly flat with rate; error jumps at 640 kbps when packets begin arriving out of order",
		"each sync loss costs up to a full ring revolution of symbols, so error blows up once the rate outruns the probe loop")
	return res, nil
}
