//go:build !linux

package experiments

import (
	"os"
	"time"
)

// entryATime falls back to the modification time off Linux. loadRig's
// explicit Chtimes stamp sets both times on every hit, so LRU ordering
// is preserved; only kernel-driven atime updates are lost.
func entryATime(fi os.FileInfo) time.Time { return fi.ModTime() }
