package experiments

import (
	"strings"
	"testing"

	"repro/internal/probe"
)

// TestChaseCoarseTimerToleratesOfflineCollapse pins the experiment's
// failure semantics: a fine-timer attacker whose offline phase caves in
// under the coarse timer is an OUTCOME (accuracy 0, calibration_ok 0, a
// note naming the collapse), not an experiment error — warm and cold
// runs record identical bytes because the simulation's failures are as
// deterministic as its successes.
func TestChaseCoarseTimerToleratesOfflineCollapse(t *testing.T) {
	ctx := PrepareCtx{Scale: Demo, Seed: 42}
	art, err := PrepareChaseCoarseTimer(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Force the collapse path regardless of whether this seed's fine-timer
	// offline phase happened to limp through.
	const label = "baseline-off64"
	if _, ok := art.Rigs[label]; !ok && len(art.Failed) == 0 {
		t.Fatalf("artifact has neither rig nor failure for %s", label)
	}
	delete(art.Rigs, label)
	art.Failed[label] = "probe: no conflict groups found with 1536 pages; map more memory"

	res, err := MeasureChaseCoarseTimer(MeasureCtx{Scale: Demo, Seed: 42}, art)
	if err != nil {
		t.Fatalf("a collapsed offline phase must not fail the experiment: %v", err)
	}
	got := map[string]float64{}
	for _, m := range res.Metrics {
		got[m.Name] = m.Value
	}
	if v := got["offline64_baseline_accuracy"]; v != 0 {
		t.Errorf("collapsed attacker accuracy = %v want 0", v)
	}
	if v := got["offline64_baseline_calibration_ok"]; v != 0 {
		t.Errorf("collapsed attacker calibration_ok = %v want 0", v)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, label) && strings.Contains(n, "collapsed") {
			found = true
		}
	}
	if !found {
		t.Errorf("no note names the collapsed offline phase: %q", res.Notes)
	}
	// The amplified attacker's rows must be unaffected.
	if v := got["offline64_amplified_accuracy"]; v < 0.7 {
		t.Errorf("amplified offline-coarse accuracy %v; want healthy (>= 0.7)", v)
	}
}

// TestArtifactStoreKeysStrategiesApart asserts the warm-start store never
// hands a fine-timer-prepared machine to the amplified attacker (or vice
// versa): identical machine options under different strategies must build
// twice.
func TestArtifactStoreKeysStrategiesApart(t *testing.T) {
	store := NewArtifactStore()
	ctx := PrepareCtx{Scale: Demo, Seed: 7, Store: store}
	art := ctx.NewArtifact()
	opts := machineOptions(Demo, 7)
	if err := ctx.AddRigStrategy(art, "fine", opts, "", probe.DefaultStrategy()); err != nil {
		t.Fatal(err)
	}
	if err := ctx.AddRigStrategy(art, "amp", opts, "", probe.AmplifiedStrategy()); err != nil {
		t.Fatal(err)
	}
	if store.Builds() != 2 {
		t.Fatalf("store built %d rigs for two strategies; strategies collided", store.Builds())
	}
	// Same strategy again: must be served from the store, not rebuilt.
	if err := ctx.AddRigStrategy(art, "amp2", opts, "", probe.AmplifiedStrategy()); err != nil {
		t.Fatal(err)
	}
	if store.Builds() != 2 {
		t.Fatalf("store rebuilt an identical (options, strategy) machine: %d builds", store.Builds())
	}
	if art.Rigs["fine"].Spy.Strategy.Amplify || !art.Rigs["amp"].Spy.Strategy.Amplify {
		t.Error("rigs carry the wrong strategies")
	}
}
