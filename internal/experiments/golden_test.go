package experiments_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// -update regenerates the golden files:
//
//	go test ./internal/experiments -run TestGoldenReports -update
var update = flag.Bool("update", false, "rewrite golden report files under testdata/")

// TestGoldenReports pins the demo-scale, seed-0, single-trial JSON report
// bytes of every registry experiment. Any behavioural drift in an
// experiment, the testbed, the simulation substrate, or the report
// encoding shows up as a byte diff against testdata/<id>.golden.json —
// the regression net under this repo's refactors. Per-trial seeds depend
// only on (root seed, experiment id, trial index), so each pinned
// single-experiment document is byte-identical to the corresponding
// entry of a combined run.
func TestGoldenReports(t *testing.T) {
	all := experiments.All()
	rep, err := runner.Run(all, runner.Options{
		Scale:  experiments.Demo,
		Seed:   0,
		Trials: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed := rep.Failed(); failed > 0 {
		t.Fatalf("%d experiment(s) failed; fix them before pinning goldens", failed)
	}
	for i, e := range all {
		single := &runner.Report{
			Schema:      rep.Schema,
			Scale:       rep.Scale,
			Seed:        rep.Seed,
			Trials:      rep.Trials,
			Experiments: rep.Experiments[i : i+1],
		}
		var buf bytes.Buffer
		if err := single.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", e.ID+".golden.json")
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go test ./internal/experiments -run TestGoldenReports -update`)", e.ID, err)
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Errorf("%s: report bytes drifted from %s\n%s", e.ID, path, diffHint(want, buf.Bytes()))
		}
	}
	if *update {
		t.Log("golden files rewritten")
	}
}

// TestGoldenFilesCoverRegistry fails when an experiment is added without
// pinning (or removed without unpinning) its golden file.
func TestGoldenFilesCoverRegistry(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	want := map[string]bool{}
	for _, e := range experiments.All() {
		want[e.ID+".golden.json"] = true
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		if !want[ent.Name()] {
			t.Errorf("stale golden file %s (no such experiment)", ent.Name())
		}
		delete(want, ent.Name())
	}
	for missing := range want {
		t.Errorf("missing golden file %s", missing)
	}
}

// diffHint locates the first byte divergence to keep failure output
// readable — full documents run to hundreds of lines.
func diffHint(want, got []byte) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hiW, hiG := i+80, i+80
			if hiW > len(want) {
				hiW = len(want)
			}
			if hiG > len(got) {
				hiG = len(got)
			}
			return fmt.Sprintf("first diff at byte %d:\n golden: ...%s...\n got:    ...%s...",
				i, want[lo:hiW], got[lo:hiG])
		}
	}
	return fmt.Sprintf("lengths differ: golden %d bytes, got %d bytes", len(want), len(got))
}
