package experiments

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryArtifact(t *testing.T) {
	want := []string{
		"fig5", "fig6", "fig7", "fig8", "table1",
		"fig10", "fig11", "fig12ab", "fig12cd",
		"fig13", "fingerprint", "table2", "fig14", "fig15", "fig16",
		"matrix_defense", "chase_coarse_timer",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("position %d: %s want %s (paper order)", i, all[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) not found", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id must not resolve")
	}
}

func TestResultFormat(t *testing.T) {
	r := Result{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	out := r.Format()
	for _, want := range []string{"== x: t ==", "long-header", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

// TestQuickExperimentsRun smoke-tests the cheap experiments end to end at
// demo scale; the expensive ones are covered by cmd/experiments runs and
// the benchmark suite.
func TestQuickExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig5", "fig7", "table2"} {
		e, _ := ByID(id)
		res, err := e.Run(Demo, 3)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		if len(res.Metrics) == 0 {
			t.Errorf("%s: no metrics (the runner's aggregation and the CI smoke check key on them)", id)
		}
		names := map[string]bool{}
		for _, m := range res.Metrics {
			if m.Name != slug(m.Name) {
				t.Errorf("%s: metric name %q is not a stable snake_case identifier", id, m.Name)
			}
			if names[m.Name] {
				t.Errorf("%s: duplicate metric name %q", id, m.Name)
			}
			names[m.Name] = true
		}
	}
}

func TestScaleString(t *testing.T) {
	if Demo.String() != "demo" || Paper.String() != "paper" {
		t.Error("scale names")
	}
}

func TestMachineOptionsShapes(t *testing.T) {
	demo := machineOptions(Demo, 1)
	if demo.Cache.AlignedSetCount() != demo.NIC.RingSize {
		t.Errorf("demo must keep ring == aligned sets: %d vs %d",
			demo.NIC.RingSize, demo.Cache.AlignedSetCount())
	}
	paper := machineOptions(Paper, 1)
	if paper.Cache.SizeBytes() != 20<<20 || paper.NIC.RingSize != 256 {
		t.Error("paper scale must be the full machine")
	}
}
