package experiments

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/probe"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// This file is the phase-split experiment API. The paper's attack has an
// expensive offline phase (eviction-set construction over every
// page-aligned cache set, latency calibration) and a cheap online phase
// (priming, probing, decoding). The historical Run(seed) interface forced
// the runner to pay the offline cost for every trial of every experiment
// and for every sweep cell; the split lets it pay once:
//
//	Prepare(ctx) -> *Artifact   offline: build machines, eviction sets,
//	                            calibrations; snapshot everything
//	Measure(ctx, *Artifact)     online: clone machines from the
//	                            snapshots, measure, report
//
// An Artifact is pure data — testbed snapshots plus spy state plus
// eviction sets — so any number of trials can clone independent machines
// from it concurrently. The warm path stores artifacts in a
// content-addressed in-memory store keyed by (machine fingerprint, scale,
// offline seed); the cold path rebuilds them for every trial. Both paths
// execute identical measurement code on identically restored machines, so
// warm and cold runs produce byte-identical reports — the correctness bar
// that forces snapshotting to be honest about RNG and clock positions.

// PrepareCtx carries the inputs of an offline phase. Seed is the
// offline-relevant seed: the runner derives it so that every trial of an
// experiment (and every sweep cell sharing an offline machine shape) sees
// the same value.
type PrepareCtx struct {
	Scale Scale
	Seed  int64
	// Store, when non-nil, deduplicates offline work across trials and
	// sweep cells (the warm path). A nil store rebuilds from scratch (the
	// cold path). Results are identical either way.
	Store *ArtifactStore
}

// MeasureCtx carries the inputs of an online phase. Seed is the per-trial
// online seed; when it differs from the artifact's offline root seed the
// cloned machines' ambient random streams (timer jitter, background
// noise, driver reallocation) are re-derived from it, decorrelating
// trials the way repeated measurements on real hardware decorrelate. When
// the seeds are equal — the single-shot Run path — the streams continue
// from their exact post-offline positions, reproducing the historical
// single-seed behavior bit for bit.
type MeasureCtx struct {
	Scale Scale
	Seed  int64
	// Rigs, when non-nil, recycles cloned machines through a RigPool
	// instead of constructing one per rig per trial (see RigPool for the
	// geometry-keyed reuse contract). A nil lease builds every clone
	// fresh. Pooled and fresh clones are state-identical, so reports are
	// byte-identical either way — the same bar the warm/cold split meets.
	Rigs *RigLease
}

// PrepareFunc is an experiment's offline phase.
type PrepareFunc func(ctx PrepareCtx) (*Artifact, error)

// MeasureFunc is an experiment's online phase.
type MeasureFunc func(ctx MeasureCtx, art *Artifact) (Result, error)

// Artifact is the output of one Prepare call: every prepared machine the
// online phase will measure on, keyed by an experiment-chosen label, plus
// the offline root seed they were prepared under.
type Artifact struct {
	// Root is the offline seed the artifact was prepared with.
	Root int64
	// Rigs maps experiment-chosen labels ("rig", "blocks3", "rep1", ...)
	// to prepared machines.
	Rigs map[string]*RigArtifact
	// Failed records offline phases that collapsed, label -> reason, for
	// experiments where an attacker-side failure is itself an outcome
	// (chase_coarse_timer: the fine-timer attacker's preparation caving
	// in under a coarse timer is the measurement, not an error). The
	// simulation is deterministic, so the reasons are too — warm and cold
	// runs record identical bytes.
	Failed map[string]string
}

// RigArtifact is one prepared machine: the options to rebuild its shell,
// a snapshot of its post-offline state, the spy's calibration, and the
// discovered eviction sets. It is immutable; clones are cut from it.
type RigArtifact struct {
	Opts    testbed.Options
	Machine *testbed.Snapshot
	Spy     probe.SpyState
	Groups  []probe.EvictionSet

	// poolKey caches Opts.OfflineFingerprint() for the rig-pool lease
	// path: the fingerprint is a fmt.Sprintf over the full config and
	// computing it per trial would be the lease's only allocation. Built
	// lazily under a sync.Once because artifacts are shared across
	// concurrent trials (gob skips unexported fields, so disk round-trips
	// simply recompute it).
	poolOnce sync.Once
	poolKey  string
}

// clonePoolKey returns the artifact's rig-pool key (the machine's offline
// fingerprint), computing it once.
func (ra *RigArtifact) clonePoolKey() string {
	ra.poolOnce.Do(func() { ra.poolKey = ra.Opts.OfflineFingerprint() })
	return ra.poolKey
}

// NewArtifact starts an empty artifact rooted at the context's seed.
func (ctx PrepareCtx) NewArtifact() *Artifact {
	return &Artifact{
		Root:   ctx.Seed,
		Rigs:   make(map[string]*RigArtifact),
		Failed: make(map[string]string),
	}
}

// AddRig prepares (or fetches from the store) the machine described by
// opts and files it in the artifact under label. The store key combines
// the machine's offline fingerprint, the scale, the artifact root, and
// the machine seed, so only genuinely interchangeable machines collide.
func (ctx PrepareCtx) AddRig(a *Artifact, label string, opts testbed.Options) error {
	return ctx.AddRigTagged(a, label, opts, "")
}

// AddSpecRig prepares (or fetches) the machine a scenario spec
// describes, under the given machine seed. This is the only correct
// entry point for defended specs: the defense tag is derived from the
// spec here, so a call site cannot forget it and silently share a
// timer-coarsened machine with an undefended one (TimerNoise is
// invisible to the option fingerprint). Plain AddRig remains for
// defense-free option structs.
func (ctx PrepareCtx) AddSpecRig(a *Artifact, label string, spec scenario.Spec, seed int64) error {
	return ctx.addRig(a, label, spec.Options(seed), spec.DefenseTag(), probe.DefaultStrategy())
}

// AddSpecRigStrategy is AddSpecRig with an explicit attacker measurement
// strategy: the spy calibrates (and the eviction sets are built) under
// the given strategy, and the strategy participates in the artifact's
// content address — a machine prepared by the amplified coarse-timer
// attacker must never be interchanged with one the fine-timer attacker
// prepared, even though the machine options are identical.
func (ctx PrepareCtx) AddSpecRigStrategy(a *Artifact, label string, spec scenario.Spec, seed int64, strat probe.Strategy) error {
	return ctx.addRig(a, label, spec.Options(seed), spec.DefenseTag(), strat)
}

// AddRigTagged is AddRig with an extra content-address component. It
// exists for machine variants whose difference is invisible to
// testbed.Options.OfflineFingerprint: a timer-coarsening defense changes
// only the online-classified TimerNoise knob, yet the coarse timer is in
// force while the offline phase calibrates and builds eviction sets, so
// its prepared machines must never be shared with undefended ones. The
// caller passes the variant's canonical tag (scenario.Spec.DefenseTag,
// i.e. the defense's Fingerprint); "" degrades to plain AddRig. Prefer
// AddSpecRig, which derives the tag and cannot be miscalled.
func (ctx PrepareCtx) AddRigTagged(a *Artifact, label string, opts testbed.Options, tag string) error {
	return ctx.addRig(a, label, opts, tag, probe.DefaultStrategy())
}

// AddRigStrategy is AddRigTagged plus an attacker strategy (see
// AddSpecRigStrategy for why the strategy is part of the address).
func (ctx PrepareCtx) AddRigStrategy(a *Artifact, label string, opts testbed.Options, tag string, strat probe.Strategy) error {
	return ctx.addRig(a, label, opts, tag, strat)
}

// addRig is the shared build-or-fetch path behind every Add*Rig entry
// point.
func (ctx PrepareCtx) addRig(a *Artifact, label string, opts testbed.Options, tag string, strat probe.Strategy) error {
	build := func() (*RigArtifact, error) { return buildRigArtifact(opts, strat) }
	var ra *RigArtifact
	var err error
	if ctx.Store != nil {
		key := fmt.Sprintf("%s|scale=%s|root=%d|seed=%d",
			opts.OfflineFingerprint(), ctx.Scale, ctx.Seed, opts.Seed)
		if tag != "" {
			key += "|defense=" + tag
		}
		if sfp := strat.Fingerprint(); sfp != "" {
			key += "|attacker=" + sfp
		}
		ra, err = ctx.Store.rig(key, build)
	} else {
		ra, err = build()
	}
	if err != nil {
		return fmt.Errorf("prepare %s: %w", label, err)
	}
	if ra == nil {
		// Defensive: a (nil, nil) build result would otherwise surface as
		// a nil dereference far away in Measure.
		return fmt.Errorf("prepare %s: offline build returned no artifact", label)
	}
	a.Rigs[label] = ra
	return nil
}

// BuildError marks a deterministic offline-phase failure: the simulated
// attacker itself failed to prepare the machine (calibration collapse,
// no conflict groups, a converted panic). It exists so experiments that
// treat attacker collapse as a measured outcome (chase_coarse_timer) can
// distinguish it from infrastructure errors — artifact persistence, a
// full disk — which are environment-dependent, nondeterministic, and
// must fail the run instead of masquerading as a defense victory.
type BuildError struct{ Err error }

func (e *BuildError) Error() string { return e.Err.Error() }
func (e *BuildError) Unwrap() error { return e.Err }

// buildRigArtifact runs the offline phase for one machine: construct the
// testbed, map and calibrate the spy under the given strategy, build the
// aligned eviction sets, and snapshot the result. Panics are converted to
// errors HERE, below both the store and the direct path, for two reasons:
// a panic escaping into the store's sync.Once would poison the entry with
// (nil, nil) for every later trial, and converting at the same layer in
// both paths keeps warm and cold error bytes identical.
func buildRigArtifact(opts testbed.Options, strat probe.Strategy) (ra *RigArtifact, err error) {
	defer func() {
		if r := recover(); r != nil {
			ra, err = nil, &BuildError{Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	rig, err := newAttackRigStrategy(opts, strat)
	if err != nil {
		return nil, &BuildError{Err: err}
	}
	snap, err := rig.tb.Snapshot()
	if err != nil {
		return nil, err
	}
	return &RigArtifact{
		Opts:    opts,
		Machine: snap,
		Spy:     rig.spy.State(),
		Groups:  rig.groups,
	}, nil
}

// rig clones an independent machine from the labeled rig artifact: a
// pooled testbed adopted in place when the context carries a lease with a
// geometry match, otherwise a fresh shell restored to the snapshot; either
// way the spy is rebound and the eviction sets deep-copied. Safe to call
// concurrently for the same label. See MeasureCtx for the online-reseed
// rule; when reseeding, the snapshot's online RNG positions are skipped
// rather than replayed-then-discarded (testbed.RestoreReseeded).
func (a *Artifact) rig(label string, ctx MeasureCtx) (*attackRig, error) {
	ra, ok := a.Rigs[label]
	if !ok {
		return nil, fmt.Errorf("measure: artifact has no rig %q", label)
	}
	reseed := ctx.Seed != a.Root
	var online int64
	if reseed {
		online = sim.DeriveSeedParts(ctx.Seed, "online/", label)
	}
	if ctx.Rigs != nil {
		if r := ctx.Rigs.take(ra.clonePoolKey()); r != nil {
			r.adopt(ra, reseed, online)
			ctx.Rigs.track(r)
			return r, nil
		}
	}
	r, err := freshRig(ra, reseed, online)
	if err != nil {
		return nil, err
	}
	if ctx.Rigs != nil {
		r.poolKey = ra.clonePoolKey()
		ctx.Rigs.track(r)
	}
	return r, nil
}

// ArtifactStore is the content-addressed cache of prepared machines a
// warm runner shares across trials and sweep cells. Concurrent requests
// for the same key build once; the losers block until the build finishes.
// In-memory entries live for the store's lifetime (one runner
// invocation); a store opened with NewDiskArtifactStore additionally
// persists every entry to disk, content-addressed by the same key, so
// repeated CLI invocations and CI runs skip offline phases entirely.
type ArtifactStore struct {
	mu       sync.Mutex
	entries  map[string]*storeEntry
	builds   int
	loads    int
	evicted  int
	dir      string // "" = in-memory only
	maxBytes int64  // 0 = unbounded; > 0 caps the disk directory
	evictMu  sync.Mutex
}

type storeEntry struct {
	once sync.Once
	rig  *RigArtifact
	err  error
}

// NewArtifactStore returns an empty in-memory store.
func NewArtifactStore() *ArtifactStore {
	return &ArtifactStore{entries: make(map[string]*storeEntry)}
}

// NewDiskArtifactStore returns a store backed by dir: cache misses check
// the directory before building, and fresh builds are persisted there.
// Artifacts are keyed by the same content address as the in-memory map
// (machine fingerprint, scale, offline root seed, machine seed, defense
// tag), hashed into a filename, so a disk entry is valid for exactly the
// machines the in-memory entry would be.
func NewDiskArtifactStore(dir string) (*ArtifactStore, error) {
	return NewDiskArtifactStoreCapped(dir, 0)
}

// NewDiskArtifactStoreCapped is NewDiskArtifactStore with a size cap.
// When maxBytes > 0, every persisted build is followed by an eviction
// pass that removes least-recently-used entries (access-time order; see
// entryATime) until the directory's *.rig.gob total fits the cap — the
// bound a shared long-running store needs, since its key space (every
// machine shape x seed x defense x attacker any client ever submits)
// grows without limit. Eviction is safe by construction: a reader that
// loses the race to an evicted file takes the ordinary miss path and
// rebuilds, exactly like the corrupt-entry healing; losing an entry only
// ever costs rebuild time.
func NewDiskArtifactStoreCapped(dir string, maxBytes int64) (*ArtifactStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact dir: %w", err)
	}
	if maxBytes < 0 {
		return nil, fmt.Errorf("artifact dir: negative size cap %d", maxBytes)
	}
	s := NewArtifactStore()
	s.dir = dir
	s.maxBytes = maxBytes
	return s, nil
}

// artifactFormatVersion is baked into every disk address. Bump it
// whenever the wire format changes — a snapshotGob field added or
// removed in any component, a new RigArtifact member — because gob
// zero-fills missing fields: a stale entry from an older binary would
// otherwise *decode successfully* into subtly wrong machine state
// instead of missing the cache and rebuilding. v2: probe.SpyState gained
// the measurement strategy and its calibration quality signals.
const artifactFormatVersion = "packetchasing-artifact/v2"

// rigPath is the disk location for a key: the hex SHA-256 of the
// version-qualified content address (keys embed config dumps — too long
// and too hostile for filenames).
func (s *ArtifactStore) rigPath(key string) string {
	sum := sha256.Sum256([]byte(artifactFormatVersion + "|" + key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".rig.gob")
}

// loadRig reads a persisted artifact. Any failure — missing file, corrupt
// or truncated gob — reports (nil, false): the caller rebuilds and
// overwrites, so a damaged cache heals instead of wedging every run.
func (s *ArtifactStore) loadRig(key string) (*RigArtifact, bool) {
	path := s.rigPath(key)
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var ra RigArtifact
	if err := gob.NewDecoder(f).Decode(&ra); err != nil {
		return nil, false
	}
	// Touch the entry so LRU eviction sees the hit. Reading alone is not
	// enough — relatime/noatime mounts defer or drop atime updates — so
	// recency is stamped explicitly; failures (entry already evicted by a
	// concurrent pass) are harmless, the bytes are decoded.
	now := time.Now() //packetlint:allow disk-cache LRU recency stamp; never mixes into simulated time or report bytes
	_ = os.Chtimes(path, now, now)
	return &ra, true
}

// saveRig persists an artifact atomically (temp file + rename), so a
// crashed or concurrent run never leaves a half-written entry behind.
// Write failures surface as errors: a user who asked for persistence
// should not silently lose it.
func (s *ArtifactStore) saveRig(key string, ra *RigArtifact) error {
	f, err := os.CreateTemp(s.dir, ".rig-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := gob.NewEncoder(f).Encode(ra); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.rigPath(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// rig returns the artifact for key, building it at most once per process
// (and, with a disk directory, at most once across processes).
func (s *ArtifactStore) rig(key string, build func() (*RigArtifact, error)) (*RigArtifact, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &storeEntry{}
		s.entries[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		if s.dir != "" {
			if ra, ok := s.loadRig(key); ok {
				e.rig = ra
				s.mu.Lock()
				s.loads++
				s.mu.Unlock()
				return
			}
		}
		e.rig, e.err = build()
		if e.err == nil && s.dir != "" {
			if err := s.saveRig(key, e.rig); err != nil {
				e.rig, e.err = nil, fmt.Errorf("persist artifact: %w", err)
			} else {
				s.evict(s.rigPath(key))
			}
		}
		if e.err == nil {
			s.mu.Lock()
			s.builds++
			s.mu.Unlock()
		}
	})
	return e.rig, e.err
}

// Builds reports how many offline builds the store has performed — the
// observable half of the reuse contract (N trials, 1 build).
func (s *ArtifactStore) Builds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builds
}

// DiskLoads reports how many artifacts were served from the disk cache
// instead of being built.
func (s *ArtifactStore) DiskLoads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loads
}

// Evictions reports how many disk entries the size cap has removed.
func (s *ArtifactStore) Evictions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// evict enforces the size cap after a persisted build: while the
// directory's *.rig.gob total exceeds maxBytes, the least-recently-used
// entry goes — except keep (the entry just written, which justified the
// pass and must survive it even under a cap smaller than one artifact).
// In-flight temp files are skipped: a concurrent saveRig owns them and
// they become entries only at rename. One pass runs at a time; scan
// errors are ignored (eviction is best-effort bookkeeping, never a
// correctness dependency — see NewDiskArtifactStoreCapped).
func (s *ArtifactStore) evict(keep string) {
	if s.maxBytes <= 0 {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()

	type entry struct {
		path string
		size int64
		used time.Time
	}
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var ents []entry
	var total int64
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".rig.gob") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue // raced with another evictor; already gone
		}
		path := filepath.Join(s.dir, de.Name())
		total += fi.Size()
		if path == keep {
			continue
		}
		ents = append(ents, entry{path: path, size: fi.Size(), used: entryATime(fi)})
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(ents, func(i, j int) bool {
		if !ents[i].used.Equal(ents[j].used) {
			return ents[i].used.Before(ents[j].used)
		}
		return ents[i].path < ents[j].path // tie-break for a stable order
	})
	removed := 0
	for _, e := range ents {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			removed++
		}
	}
	if removed > 0 {
		s.mu.Lock()
		s.evicted += removed
		s.mu.Unlock()
	}
}

// phasedRun composes a Prepare/Measure pair back into the single-shot
// Run signature with one seed for both phases. Per the MeasureCtx rule
// this path never reseeds online streams, so a phase-split experiment's
// Run is byte-identical to its historical monolithic implementation —
// the property the golden files pin.
func phasedRun(p PrepareFunc, m MeasureFunc) func(Scale, int64) (Result, error) {
	return func(scale Scale, seed int64) (Result, error) {
		art, err := p(PrepareCtx{Scale: scale, Seed: seed})
		if err != nil {
			return Result{}, err
		}
		return m(MeasureCtx{Scale: scale, Seed: seed}, art)
	}
}
