package experiments

import (
	"fmt"
	"sync"

	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// This file is the phase-split experiment API. The paper's attack has an
// expensive offline phase (eviction-set construction over every
// page-aligned cache set, latency calibration) and a cheap online phase
// (priming, probing, decoding). The historical Run(seed) interface forced
// the runner to pay the offline cost for every trial of every experiment
// and for every sweep cell; the split lets it pay once:
//
//	Prepare(ctx) -> *Artifact   offline: build machines, eviction sets,
//	                            calibrations; snapshot everything
//	Measure(ctx, *Artifact)     online: clone machines from the
//	                            snapshots, measure, report
//
// An Artifact is pure data — testbed snapshots plus spy state plus
// eviction sets — so any number of trials can clone independent machines
// from it concurrently. The warm path stores artifacts in a
// content-addressed in-memory store keyed by (machine fingerprint, scale,
// offline seed); the cold path rebuilds them for every trial. Both paths
// execute identical measurement code on identically restored machines, so
// warm and cold runs produce byte-identical reports — the correctness bar
// that forces snapshotting to be honest about RNG and clock positions.

// PrepareCtx carries the inputs of an offline phase. Seed is the
// offline-relevant seed: the runner derives it so that every trial of an
// experiment (and every sweep cell sharing an offline machine shape) sees
// the same value.
type PrepareCtx struct {
	Scale Scale
	Seed  int64
	// Store, when non-nil, deduplicates offline work across trials and
	// sweep cells (the warm path). A nil store rebuilds from scratch (the
	// cold path). Results are identical either way.
	Store *ArtifactStore
}

// MeasureCtx carries the inputs of an online phase. Seed is the per-trial
// online seed; when it differs from the artifact's offline root seed the
// cloned machines' ambient random streams (timer jitter, background
// noise, driver reallocation) are re-derived from it, decorrelating
// trials the way repeated measurements on real hardware decorrelate. When
// the seeds are equal — the single-shot Run path — the streams continue
// from their exact post-offline positions, reproducing the historical
// single-seed behavior bit for bit.
type MeasureCtx struct {
	Scale Scale
	Seed  int64
}

// PrepareFunc is an experiment's offline phase.
type PrepareFunc func(ctx PrepareCtx) (*Artifact, error)

// MeasureFunc is an experiment's online phase.
type MeasureFunc func(ctx MeasureCtx, art *Artifact) (Result, error)

// Artifact is the output of one Prepare call: every prepared machine the
// online phase will measure on, keyed by an experiment-chosen label, plus
// the offline root seed they were prepared under.
type Artifact struct {
	// Root is the offline seed the artifact was prepared with.
	Root int64
	// Rigs maps experiment-chosen labels ("rig", "blocks3", "rep1", ...)
	// to prepared machines.
	Rigs map[string]*RigArtifact
}

// RigArtifact is one prepared machine: the options to rebuild its shell,
// a snapshot of its post-offline state, the spy's calibration, and the
// discovered eviction sets. It is immutable; clones are cut from it.
type RigArtifact struct {
	Opts    testbed.Options
	Machine *testbed.Snapshot
	Spy     probe.SpyState
	Groups  []probe.EvictionSet
}

// NewArtifact starts an empty artifact rooted at the context's seed.
func (ctx PrepareCtx) NewArtifact() *Artifact {
	return &Artifact{Root: ctx.Seed, Rigs: make(map[string]*RigArtifact)}
}

// AddRig prepares (or fetches from the store) the machine described by
// opts and files it in the artifact under label. The store key combines
// the machine's offline fingerprint, the scale, the artifact root, and
// the machine seed, so only genuinely interchangeable machines collide.
func (ctx PrepareCtx) AddRig(a *Artifact, label string, opts testbed.Options) error {
	build := func() (*RigArtifact, error) { return buildRigArtifact(opts) }
	var ra *RigArtifact
	var err error
	if ctx.Store != nil {
		key := fmt.Sprintf("%s|scale=%s|root=%d|seed=%d",
			opts.OfflineFingerprint(), ctx.Scale, ctx.Seed, opts.Seed)
		ra, err = ctx.Store.rig(key, build)
	} else {
		ra, err = build()
	}
	if err != nil {
		return fmt.Errorf("prepare %s: %w", label, err)
	}
	if ra == nil {
		// Defensive: a (nil, nil) build result would otherwise surface as
		// a nil dereference far away in Measure.
		return fmt.Errorf("prepare %s: offline build returned no artifact", label)
	}
	a.Rigs[label] = ra
	return nil
}

// buildRigArtifact runs the offline phase for one machine: construct the
// testbed, map and calibrate the spy, build the aligned eviction sets,
// and snapshot the result. Panics are converted to errors HERE, below
// both the store and the direct path, for two reasons: a panic escaping
// into the store's sync.Once would poison the entry with (nil, nil) for
// every later trial, and converting at the same layer in both paths
// keeps warm and cold error bytes identical.
func buildRigArtifact(opts testbed.Options) (ra *RigArtifact, err error) {
	defer func() {
		if r := recover(); r != nil {
			ra, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	rig, err := newAttackRigOpts(opts)
	if err != nil {
		return nil, err
	}
	snap, err := rig.tb.Snapshot()
	if err != nil {
		return nil, err
	}
	return &RigArtifact{
		Opts:    opts,
		Machine: snap,
		Spy:     rig.spy.State(),
		Groups:  rig.groups,
	}, nil
}

// rig clones an independent machine from the labeled rig artifact:
// a fresh testbed shell restored to the snapshot, the spy rebound, and
// the eviction sets deep-copied. Safe to call concurrently for the same
// label. See MeasureCtx for the online-reseed rule.
func (a *Artifact) rig(label string, ctx MeasureCtx) (*attackRig, error) {
	ra, ok := a.Rigs[label]
	if !ok {
		return nil, fmt.Errorf("measure: artifact has no rig %q", label)
	}
	tb, err := testbed.NewFromSnapshot(ra.Opts, ra.Machine)
	if err != nil {
		return nil, err
	}
	spy := probe.RestoreSpy(tb, ra.Spy)
	groups := make([]probe.EvictionSet, len(ra.Groups))
	for i, g := range ra.Groups {
		groups[i] = probe.EvictionSet{
			ID:      g.ID,
			Lines:   append([]uint64(nil), g.Lines...),
			Members: append([]uint64(nil), g.Members...),
		}
	}
	if ctx.Seed != a.Root {
		tb.ReseedOnline(sim.DeriveSeed(ctx.Seed, "online/"+label))
	}
	return &attackRig{tb: tb, spy: spy, groups: groups, ccfg: tb.Cache().Config()}, nil
}

// ArtifactStore is the content-addressed in-memory cache of prepared
// machines a warm runner shares across trials and sweep cells. Concurrent
// requests for the same key build once; the losers block until the build
// finishes. Entries live for the store's lifetime (one runner invocation).
type ArtifactStore struct {
	mu      sync.Mutex
	entries map[string]*storeEntry
	builds  int
}

type storeEntry struct {
	once sync.Once
	rig  *RigArtifact
	err  error
}

// NewArtifactStore returns an empty store.
func NewArtifactStore() *ArtifactStore {
	return &ArtifactStore{entries: make(map[string]*storeEntry)}
}

// rig returns the artifact for key, building it at most once.
func (s *ArtifactStore) rig(key string, build func() (*RigArtifact, error)) (*RigArtifact, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &storeEntry{}
		s.entries[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.rig, e.err = build()
		if e.err == nil {
			s.mu.Lock()
			s.builds++
			s.mu.Unlock()
		}
	})
	return e.rig, e.err
}

// Builds reports how many offline builds the store has performed — the
// observable half of the reuse contract (N trials, 1 build).
func (s *ArtifactStore) Builds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builds
}

// phasedRun composes a Prepare/Measure pair back into the single-shot
// Run signature with one seed for both phases. Per the MeasureCtx rule
// this path never reseeds online streams, so a phase-split experiment's
// Run is byte-identical to its historical monolithic implementation —
// the property the golden files pin.
func phasedRun(p PrepareFunc, m MeasureFunc) func(Scale, int64) (Result, error) {
	return func(scale Scale, seed int64) (Result, error) {
		art, err := p(PrepareCtx{Scale: scale, Seed: seed})
		if err != nil {
			return Result{}, err
		}
		return m(MeasureCtx{Scale: scale, Seed: seed}, art)
	}
}
