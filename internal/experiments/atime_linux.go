//go:build linux

package experiments

import (
	"os"
	"syscall"
	"time"
)

// entryATime returns the file's access time — the LRU ordering key for
// disk-store eviction. loadRig stamps it explicitly on every hit (mount
// options like noatime make the kernel's own updates unreliable), so on
// Linux the inode atime is authoritative; anything without one falls
// back to the modification time, which the same stamp keeps current.
func entryATime(fi os.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}
