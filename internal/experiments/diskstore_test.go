package experiments

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// measureJSON runs fig10's online phase on the artifact and serializes
// the result — the observable the disk round-trip must preserve exactly.
func measureJSON(t *testing.T, art *Artifact, seed int64) []byte {
	t.Helper()
	res, err := MeasureFig10(MeasureCtx{Scale: Demo, Seed: seed}, art)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDiskStoreRoundTrip: an artifact persisted by one store and loaded
// by a fresh store (a new process, as far as the cache is concerned)
// must skip the offline build and measure byte-identically to the
// original — the disk format must capture machine snapshots, spy state,
// and eviction sets exactly.
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()

	s1, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	art1, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 7, Store: s1})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Builds() != 1 || s1.DiskLoads() != 0 {
		t.Fatalf("first run: builds=%d loads=%d, want 1/0", s1.Builds(), s1.DiskLoads())
	}
	want := measureJSON(t, art1, 7)

	// A second store over the same directory models a fresh invocation.
	s2, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	art2, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 7, Store: s2})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Builds() != 0 || s2.DiskLoads() != 1 {
		t.Fatalf("second run: builds=%d loads=%d, want 0/1 (must load from disk)", s2.Builds(), s2.DiskLoads())
	}
	if got := measureJSON(t, art2, 7); !bytes.Equal(want, got) {
		t.Errorf("disk-loaded artifact measured differently:\n want %s\n got  %s", want, got)
	}

	// Different keys must not collide on disk: a different offline seed
	// builds fresh.
	if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 8, Store: s2}); err != nil {
		t.Fatal(err)
	}
	if s2.Builds() != 1 {
		t.Fatalf("different seed served from disk: builds=%d, want 1", s2.Builds())
	}
}

// TestDiskStoreHealsCorruptEntries: a truncated or garbage cache file
// must be rebuilt (and overwritten), not wedge every later run.
func TestDiskStoreHealsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 3, Store: s1}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("expected one cache file, got %d (%v)", len(ents), err)
	}
	path := filepath.Join(dir, ents[0].Name())
	if err := os.WriteFile(path, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	art, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 3, Store: s2})
	if err != nil {
		t.Fatalf("corrupt entry must rebuild, got %v", err)
	}
	if s2.Builds() != 1 || s2.DiskLoads() != 0 {
		t.Fatalf("corrupt entry: builds=%d loads=%d, want 1/0", s2.Builds(), s2.DiskLoads())
	}
	if art.Rigs["rig"] == nil {
		t.Fatal("rebuild produced no artifact")
	}
	// The healed entry is decodable again.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var ra RigArtifact
	if err := gob.NewDecoder(f).Decode(&ra); err != nil {
		t.Errorf("healed cache file still corrupt: %v", err)
	}
}

// rigFileSize returns the size one persisted fig10 demo rig occupies, so
// cap tests can be phrased in "N entries" instead of guessed byte counts.
func rigFileSize(t *testing.T) int64 {
	t.Helper()
	dir := t.TempDir()
	s, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 1, Store: s}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("expected one cache file, got %d (%v)", len(ents), err)
	}
	fi, err := ents[0].Info()
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// countRigFiles counts persisted entries in a store directory.
func countRigFiles(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.rig.gob"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// TestDiskStoreEvictsLRU: with a cap sized for two entries, building a
// third evicts the least-recently-used one — and "used" means used: an
// entry kept warm by loads survives over a colder, older-accessed one.
func TestDiskStoreEvictsLRU(t *testing.T) {
	one := rigFileSize(t)
	dir := t.TempDir()
	s, err := NewDiskArtifactStoreCapped(dir, 2*one+one/2)
	if err != nil {
		t.Fatal(err)
	}
	prep := func(st *ArtifactStore, seed int64) {
		t.Helper()
		if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: seed, Store: st}); err != nil {
			t.Fatal(err)
		}
	}
	prep(s, 1)
	time.Sleep(10 * time.Millisecond) // distinct timestamps for the LRU order
	prep(s, 2)
	time.Sleep(10 * time.Millisecond)

	// Touch seed 1 from a fresh store (a disk load), making seed 2 the LRU
	// entry despite being written later.
	s2, err := NewDiskArtifactStoreCapped(dir, 2*one+one/2)
	if err != nil {
		t.Fatal(err)
	}
	prep(s2, 1)
	if s2.DiskLoads() != 1 {
		t.Fatalf("touch load missed: loads=%d", s2.DiskLoads())
	}
	time.Sleep(10 * time.Millisecond)

	prep(s2, 3) // third entry: must evict exactly the LRU one (seed 2)
	if got := countRigFiles(t, dir); got != 2 {
		t.Fatalf("after eviction: %d entries on disk, want 2", got)
	}
	if s2.Evictions() != 1 {
		t.Fatalf("evictions=%d, want 1", s2.Evictions())
	}
	// Seeds 1 and 3 must still load from disk; seed 2 must rebuild.
	s3, err := NewDiskArtifactStoreCapped(dir, 2*one+one/2)
	if err != nil {
		t.Fatal(err)
	}
	prep(s3, 1)
	prep(s3, 3)
	if s3.Builds() != 0 || s3.DiskLoads() != 2 {
		t.Fatalf("survivors wrong: builds=%d loads=%d, want 0/2 (LRU entry evicted, not MRU)", s3.Builds(), s3.DiskLoads())
	}
	prep(s3, 2)
	if s3.Builds() != 1 {
		t.Fatalf("evicted entry served from disk: builds=%d, want 1", s3.Builds())
	}
}

// TestDiskStoreEvictionKeepsFreshBuild: a cap smaller than a single
// artifact must not evict the entry whose write triggered the pass — the
// build that just happened is by definition the most recently used.
func TestDiskStoreEvictionKeepsFreshBuild(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskArtifactStoreCapped(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 1, Store: s}); err != nil {
		t.Fatal(err)
	}
	if got := countRigFiles(t, dir); got != 1 {
		t.Fatalf("fresh build evicted by its own pass: %d entries, want 1", got)
	}
}

// TestDiskStoreEvictionNeverBreaksLoads: the in-flight safety property.
// Stores under a 1-byte cap evict aggressively on every build while
// concurrent single-flight loads race them across fresh store instances;
// every Prepare must still succeed with a usable artifact — an evicted
// or half-raced file degrades to a rebuild, never to an error.
func TestDiskStoreEvictionNeverBreaksLoads(t *testing.T) {
	dir := t.TempDir()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				// Each store instance models a separate client invocation
				// sharing the directory; seeds overlap so loads and evicting
				// builds hit the same entries.
				s, err := NewDiskArtifactStoreCapped(dir, 1)
				if err != nil {
					errs <- err
					return
				}
				for seed := int64(1); seed <= 2; seed++ {
					art, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: seed, Store: s})
					if err != nil {
						errs <- fmt.Errorf("seed %d: %w", seed, err)
						return
					}
					if art.Rigs["rig"] == nil {
						errs <- fmt.Errorf("seed %d: artifact missing rig", seed)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDiskStoreCapPreservesHealing: the size cap must not change the
// corrupt-entry contract — garbage entries still rebuild and heal under
// an active cap.
func TestDiskStoreCapPreservesHealing(t *testing.T) {
	one := rigFileSize(t)
	dir := t.TempDir()
	s, err := NewDiskArtifactStoreCapped(dir, 4*one)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 3, Store: s}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, func() string {
		ents, _ := os.ReadDir(dir)
		return ents[0].Name()
	}())
	if err := os.WriteFile(path, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskArtifactStoreCapped(dir, 4*one)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 3, Store: s2}); err != nil {
		t.Fatalf("corrupt entry under cap must rebuild, got %v", err)
	}
	if s2.Builds() != 1 {
		t.Fatalf("healing build count wrong: %d", s2.Builds())
	}
}

// TestDiskStoreDefenseVariantsDistinctFiles: two artifacts differing only
// in the defense tag must land in distinct disk entries.
func TestDiskStoreDefenseVariantsDistinctFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := PrepareCtx{Scale: Demo, Seed: 5, Store: s}
	opts := machineOptions(Demo, 5)
	art := ctx.NewArtifact()
	if err := ctx.AddRigTagged(art, "plain", opts, ""); err != nil {
		t.Fatal(err)
	}
	if err := ctx.AddRigTagged(art, "coarse", opts, "timer-coarse-64"); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("expected 2 distinct cache files for tagged variants, got %d", len(ents))
	}
}
