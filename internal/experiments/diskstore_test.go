package experiments

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// measureJSON runs fig10's online phase on the artifact and serializes
// the result — the observable the disk round-trip must preserve exactly.
func measureJSON(t *testing.T, art *Artifact, seed int64) []byte {
	t.Helper()
	res, err := MeasureFig10(MeasureCtx{Scale: Demo, Seed: seed}, art)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDiskStoreRoundTrip: an artifact persisted by one store and loaded
// by a fresh store (a new process, as far as the cache is concerned)
// must skip the offline build and measure byte-identically to the
// original — the disk format must capture machine snapshots, spy state,
// and eviction sets exactly.
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()

	s1, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	art1, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 7, Store: s1})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Builds() != 1 || s1.DiskLoads() != 0 {
		t.Fatalf("first run: builds=%d loads=%d, want 1/0", s1.Builds(), s1.DiskLoads())
	}
	want := measureJSON(t, art1, 7)

	// A second store over the same directory models a fresh invocation.
	s2, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	art2, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 7, Store: s2})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Builds() != 0 || s2.DiskLoads() != 1 {
		t.Fatalf("second run: builds=%d loads=%d, want 0/1 (must load from disk)", s2.Builds(), s2.DiskLoads())
	}
	if got := measureJSON(t, art2, 7); !bytes.Equal(want, got) {
		t.Errorf("disk-loaded artifact measured differently:\n want %s\n got  %s", want, got)
	}

	// Different keys must not collide on disk: a different offline seed
	// builds fresh.
	if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 8, Store: s2}); err != nil {
		t.Fatal(err)
	}
	if s2.Builds() != 1 {
		t.Fatalf("different seed served from disk: builds=%d, want 1", s2.Builds())
	}
}

// TestDiskStoreHealsCorruptEntries: a truncated or garbage cache file
// must be rebuilt (and overwritten), not wedge every later run.
func TestDiskStoreHealsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 3, Store: s1}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("expected one cache file, got %d (%v)", len(ents), err)
	}
	path := filepath.Join(dir, ents[0].Name())
	if err := os.WriteFile(path, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	art, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 3, Store: s2})
	if err != nil {
		t.Fatalf("corrupt entry must rebuild, got %v", err)
	}
	if s2.Builds() != 1 || s2.DiskLoads() != 0 {
		t.Fatalf("corrupt entry: builds=%d loads=%d, want 1/0", s2.Builds(), s2.DiskLoads())
	}
	if art.Rigs["rig"] == nil {
		t.Fatal("rebuild produced no artifact")
	}
	// The healed entry is decodable again.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var ra RigArtifact
	if err := gob.NewDecoder(f).Decode(&ra); err != nil {
		t.Errorf("healed cache file still corrupt: %v", err)
	}
}

// TestDiskStoreDefenseVariantsDistinctFiles: two artifacts differing only
// in the defense tag must land in distinct disk entries.
func TestDiskStoreDefenseVariantsDistinctFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := PrepareCtx{Scale: Demo, Seed: 5, Store: s}
	opts := machineOptions(Demo, 5)
	art := ctx.NewArtifact()
	if err := ctx.AddRigTagged(art, "plain", opts, ""); err != nil {
		t.Fatal(err)
	}
	if err := ctx.AddRigTagged(art, "coarse", opts, "timer-coarse-64"); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("expected 2 distinct cache files for tagged variants, got %d", len(ents))
	}
}
