// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a named function that runs the relevant
// attack or defense pipeline and returns formatted rows plus structured
// metric values; internal/runner fans the registry out over a worker
// pool and aggregates metrics across trials, cmd/experiments prints the
// results, and the root benchmark suite re-runs scaled versions.
//
// Two scales are supported. Demo scale (the default) shrinks the machine
// so each experiment finishes in seconds on one core while keeping every
// structural ratio of the paper machine (ring size == page-aligned set
// count, 2 buffers per page, 1 GbE wire). Paper scale uses the full
// 20 MB / 8-slice / 20-way LLC and 256-descriptor ring.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/chase"
	"repro/internal/probe"
	"repro/internal/scenario"
	"repro/internal/testbed"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Demo is a structurally faithful scaled-down machine (64 aligned
	// sets, 64-buffer ring, 8-way cache).
	Demo Scale = iota
	// Paper is the full paper machine (256 aligned sets, 256 buffers,
	// 20-way 20 MB LLC). Offline-phase experiments take minutes.
	Paper
)

func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "demo"
}

// Metric is one named numeric outcome of an experiment — the machine-
// readable counterpart of a table cell. Names are stable snake_case
// identifiers so downstream tooling (the runner's JSON document, CI
// regression checks) can key on them across runs.
type Metric struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value"`
}

// Result is one experiment's output: a title, headed rows, free-form
// notes comparing against the paper's reported numbers, and the named
// metric values behind the table for machine-readable aggregation.
type Result struct {
	ID      string
	Title   string
	Header  []string
	Rows    [][]string
	Notes   []string
	Metrics []Metric
}

// AddMetric appends a named metric value to the result. Every experiment
// must report at least one metric; trial aggregation and the CI smoke
// check both key on them.
func (r *Result) AddMetric(name, unit string, v float64) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Unit: unit, Value: v})
}

// Format renders the result as an aligned text table.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a runnable evaluation item. Run is always usable and
// executes both phases under one seed. Experiments with an expensive
// offline phase additionally expose it as a Prepare/Measure pair (see
// artifact.go); the runner exploits the split to prepare once and measure
// many times.
type Experiment struct {
	ID    string
	Short string
	Run   func(scale Scale, seed int64) (Result, error)
	// Prepare and Measure, when both non-nil, are the phase-split form of
	// Run: Run(scale, seed) is exactly Prepare followed by Measure with
	// the same seed.
	Prepare PrepareFunc
	Measure MeasureFunc
}

// Phased reports whether the experiment supports the phase-split API.
func (e Experiment) Phased() bool { return e.Prepare != nil && e.Measure != nil }

// phasedExp registers a phase-split experiment, deriving its Run form.
func phasedExp(id, short string, p PrepareFunc, m MeasureFunc) Experiment {
	return Experiment{ID: id, Short: short, Run: phasedRun(p, m), Prepare: p, Measure: m}
}

// All returns the registry of experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig5", Short: "ring buffers per page-aligned cache set (one driver instance)", Run: Fig5},
		{ID: "fig6", Short: "mapping distribution over 1000 driver instances", Run: Fig6},
		phasedExp("fig7", "page-aligned set activity: idle vs receiving", PrepareFig7, MeasureFig7),
		phasedExp("fig8", "packet-size detection matrix (blocks 0-3)", PrepareFig8, MeasureFig8),
		phasedExp("table1", "ring sequence recovery quality", PrepareTable1, MeasureTable1),
		phasedExp("fig10", "covert channel decoded symbol trace", PrepareFig10, MeasureFig10),
		phasedExp("fig11", "covert channel bandwidth/error vs probe rate", PrepareFig11, MeasureFig11),
		phasedExp("fig12ab", "multi-buffer covert channel scaling", PrepareFig12ab, MeasureFig12ab),
		phasedExp("fig12cd", "full-chasing channel: out-of-sync and error vs rate", PrepareFig12cd, MeasureFig12cd),
		phasedExp("fig13", "hotcrp login fingerprint traces", PrepareFig13, MeasureFig13),
		phasedExp("fingerprint", "closed-world website fingerprinting accuracy", PrepareFingerprint, MeasureFingerprint),
		{ID: "table2", Short: "baseline processor configuration", Run: Table2},
		{ID: "fig14", Short: "Nginx throughput: adaptive partitioning vs DDIO", Run: Fig14},
		{ID: "fig15", Short: "memory traffic and LLC miss rate by scheme", Run: Fig15},
		{ID: "fig16", Short: "HTTP tail latency by defense scheme", Run: Fig16},
		phasedExp("matrix_defense", "attack x defense matrix: leakage vs overhead", PrepareMatrixDefense, MeasureMatrixDefense),
		phasedExp("chase_coarse_timer", "chase accuracy vs timer jitter: fine-timer vs amplified attacker", PrepareChaseCoarseTimer, MeasureChaseCoarseTimer),
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// baselineSpec returns the scenario every registry experiment runs at:
// the full paper machine, or the scaled demo machine (2 slices x 2048
// sets x 8 ways = 2 MB, 64 aligned sets, ring 64).
func baselineSpec(scale Scale) scenario.Spec {
	return scenario.Baseline(scale == Paper)
}

// machineOptions returns testbed options for the scale, built from the
// baseline scenario spec.
func machineOptions(scale Scale, seed int64) testbed.Options {
	return baselineSpec(scale).Options(seed)
}

func spyPages(opts testbed.Options) int {
	return opts.Cache.AlignedSetCount() * opts.Cache.Ways * 3
}

// attackRig assembles the machine plus offline-phase outputs shared by the
// attack experiments.
type attackRig struct {
	tb     *testbed.Testbed
	spy    *probe.Spy
	groups []probe.EvictionSet
	ccfg   cache.Config
	// poolKey is the machine's OfflineFingerprint when the rig is pool-
	// managed ("" otherwise): RigPool reuses a rig only for artifacts with
	// an identical fingerprint, i.e. identical buffer geometry.
	poolKey string
}

func newAttackRig(scale Scale, seed int64) (*attackRig, error) {
	opts := machineOptions(scale, seed)
	tb, err := testbed.New(opts)
	if err != nil {
		return nil, err
	}
	spy, err := probe.NewSpy(tb, spyPages(opts))
	if err != nil {
		return nil, err
	}
	groups, err := spy.BuildAlignedEvictionSets(opts.Cache.Ways)
	if err != nil {
		return nil, err
	}
	return &attackRig{tb: tb, spy: spy, groups: groups, ccfg: tb.Cache().Config()}, nil
}

// canonical maps group ids to canonical aligned-set indices (ground-truth
// comparisons only).
func (r *attackRig) canonical() map[int]int {
	m := make(map[int]int, len(r.groups))
	for _, g := range r.groups {
		m[g.ID] = r.ccfg.AlignedIndexOf(r.ccfg.GlobalSet(g.Lines[0]))
	}
	return m
}

// groundTruthRing returns the true ring as group ids.
func (r *attackRig) groundTruthRing() []int {
	byCanon := map[int]int{}
	for _, g := range r.groups {
		byCanon[r.ccfg.AlignedIndexOf(r.ccfg.GlobalSet(g.Lines[0]))] = g.ID
	}
	truth := r.tb.NIC().RingAlignedSets(r.ccfg)
	ring := make([]int, len(truth))
	for i, s := range truth {
		ring[i] = byCanon[s]
	}
	return ring
}

// restrictTruth builds the canonical ground-truth ring restricted to the
// recovered alphabet for Table 1 evaluation.
func restrictTruth(truth []int, keep map[int]bool) []int {
	return chase.CollapseRuns(chase.FilterTruth(truth, keep))
}

// slug converts a display name ("Adaptive Partitioning", "hotcrp-login-
// success") into a stable snake_case metric-name segment.
func slug(s string) string {
	var b strings.Builder
	pending := false
	for _, c := range strings.ToLower(s) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			if pending && b.Len() > 0 {
				b.WriteByte('_')
			}
			pending = false
			b.WriteRune(c)
		default:
			pending = true
		}
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
