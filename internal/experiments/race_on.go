//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. The
// steady-state zero-allocation assertion skips under -race: the detector
// instruments allocations and would fail the test for its own bookkeeping.
const raceEnabled = true
