package experiments

import (
	"fmt"

	"repro/internal/defense"
	"repro/internal/perfsim"
	"repro/internal/probe"
	"repro/internal/scenario"
)

// matrix_defense is the headline attack × defense evaluation: every
// registered platform defense is installed on the baseline machine, every
// attack family (online chase, covert channel, website fingerprinting) is
// run against it, and the perfsim cost model prices the same defense on
// the overhead axis. The result is the leakage-vs-overhead grid behind
// the paper's §VI-§VII narrative — the one table that answers both "does
// the attack still work" and "what does the defense cost" for every
// mitigation at once.

// defenseSpec is the baseline scenario with a defense installed.
func defenseSpec(scale Scale, d defense.Defense) scenario.Spec {
	return baselineSpec(scale).WithDefense(d)
}

// coarsensTimer reports whether the defense denies the attacker a
// fine-grained timer (directly or inside a stack): the cells where the
// amplified coarse-timer attacker is the strongest known attack and must
// be the one the matrix reports.
func coarsensTimer(scale Scale, d defense.Defense) bool {
	base := baselineSpec(scale)
	opts := base.Options(0)
	d.Apply(&opts)
	return opts.TimerNoise > base.TimerNoise
}

// amplifiedLabel names a defense cell's amplified-attacker rig.
func amplifiedLabel(name string) string { return name + "+amplified" }

// pickHigher reports whether measurement (a, calA) beats (b, calB) on a
// higher-is-stronger scale (negate values for lower-is-stronger):
// calibrated measurements always beat uncalibrated ones, and raw values
// compare only between equally calibrated measurements.
func pickHigher(a float64, calA bool, b float64, calB bool) bool {
	if calA != calB {
		return calA
	}
	return a > b
}

// PrepareMatrixDefense builds one machine per registered defense — and,
// for defenses that coarsen the timer, a second machine prepared by the
// amplified attacker (probe.AmplifiedStrategy), because the matrix
// reports the strongest known attack per cell. Rigs are labeled by
// defense name and content-addressed with the defense fingerprint plus
// the attacker strategy: a timer-coarsening machine differs from the
// stock one only in a knob the option fingerprint excludes, yet its
// offline phase (calibration, eviction sets) ran under the coarse timer,
// so the artifacts must never be shared.
func PrepareMatrixDefense(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	for _, d := range defense.All() {
		spec := defenseSpec(ctx.Scale, d)
		if err := ctx.AddSpecRig(art, d.Name(), spec, ctx.Seed); err != nil {
			return nil, err
		}
		if coarsensTimer(ctx.Scale, d) {
			if err := ctx.AddSpecRigStrategy(art, amplifiedLabel(d.Name()), spec, ctx.Seed, probe.AmplifiedStrategy()); err != nil {
				return nil, err
			}
		}
	}
	return art, nil
}

// matrixPerf is one defense's cost-axis measurement.
type matrixPerf struct {
	p99        float64
	throughput float64
}

// MeasureMatrixDefense measures the grid. Each attack measures on its own
// clone of the defense's machine; the perfsim Nginx workload runs once
// per distinct cost scheme (timer coarsening shares the baseline's cost
// run — a client-side mitigation costs the server nothing).
func MeasureMatrixDefense(ctx MeasureCtx, art *Artifact) (Result, error) {
	covertSymbols, fpTrials, nginxRequests := 100, 10, 6_000
	if ctx.Scale == Paper {
		covertSymbols, fpTrials, nginxRequests = 250, 100, 30_000
	}

	nginxCfg := perfsim.DefaultNginxConfig()
	nginxCfg.Requests = nginxRequests
	nginxCfg.TargetRate = 140_000
	// The cost cache is keyed by the composed machine configuration, not
	// the legacy scheme menu: two defenses share a perf run exactly when
	// their Effects build interchangeable machines.
	perfBy := map[string]matrixPerf{}
	perfFor := func(e perfsim.Effects) (matrixPerf, error) {
		key := e.Fingerprint()
		if p, ok := perfBy[key]; ok {
			return p, nil
		}
		m, err := perfsim.RunNginxEffects(e, figLLC, ctx.Seed, nginxCfg)
		if err != nil {
			return matrixPerf{}, err
		}
		p := matrixPerf{p99: m.LatencyPercentile(99), throughput: m.Throughput()}
		perfBy[key] = p
		return p, nil
	}
	base, err := perfFor(defense.NoDefense{}.PerfEffects())
	if err != nil {
		return Result{}, err
	}

	// defenseLeakage (defense_eval.go) runs the three attack families
	// against one prepared rig, each on its own fresh clone, carrying
	// calibration-health signals so a blind attacker's numbers can never
	// read as a defense outcome (see the *_calibration_ok metrics).
	leakageOf := func(label string) (attackLeakage, error) {
		return defenseLeakage(ctx, art, label, covertSymbols, fpTrials)
	}

	res := Result{
		ID:    "matrix_defense",
		Title: "attack x defense matrix: strongest-attack leakage vs overhead for every registered defense",
		Header: []string{"defense", "attacker", "chase acc", "covert err", "fp acc",
			"p99 delta", "tput loss"},
	}
	for _, d := range defense.All() {
		name := d.Name()
		key := slug(name)

		// Leakage axis, strongest known attack per cell: the fine-timer
		// attacker everywhere, and additionally the amplified coarse-timer
		// attacker wherever the defense coarsens the timer — a defense is
		// only as strong as the best attack against it, and scoring
		// timer coarsening against an attacker whose calibration it
		// silently broke made the defense look stronger than the threat
		// model justifies.
		lk, err := leakageOf(name)
		if err != nil {
			return Result{}, err
		}
		attacker := "fine-timer"
		// The artifact is the source of truth for which cells carry an
		// amplified rig (Prepare decided via coarsensTimer); re-deriving
		// the predicate here could silently diverge from what was built.
		if _, ok := art.Rigs[amplifiedLabel(name)]; ok {
			fine := lk
			amp, err := leakageOf(amplifiedLabel(name))
			if err != nil {
				return Result{}, err
			}
			// Per family, take the stronger attack AND carry that
			// attacker's health signal. "Stronger" is gated on
			// calibration: a blind attacker's chance-level noise must
			// never outrank a calibrated attacker's true measurement
			// (under the partition+coarse stack the blind fine-timer
			// chaser scores the two-class coin-flip ~0.5 while the
			// calibrated amplified chaser truly measures ~0 — the cell
			// must report the real leakage, not the noise). Raw numbers
			// compare only between equally calibrated measurements.
			lk = strongestAttack(fine, amp)
			attacker = "strongest(fine,amplified)"
			res.AddMetric(key+"_fine_timer_chase_accuracy", "fraction", fine.chaseAcc)
			res.AddMetric(key+"_fine_timer_chase_calibration_ok", "bool", boolMetric(fine.chaseCal))
			res.AddMetric(key+"_fine_timer_covert_error", "fraction", fine.covertErr)
			res.AddMetric(key+"_fine_timer_covert_calibration_ok", "bool", boolMetric(fine.covertCal))
			res.AddMetric(key+"_fine_timer_fingerprint_accuracy", "fraction", fine.fpAcc)
			res.AddMetric(key+"_fine_timer_fingerprint_calibration_ok", "bool", boolMetric(fine.fpCal))
			res.AddMetric(key+"_amplified_chase_accuracy", "fraction", amp.chaseAcc)
			res.AddMetric(key+"_amplified_chase_calibration_ok", "bool", boolMetric(amp.chaseCal))
			res.AddMetric(key+"_amplified_covert_error", "fraction", amp.covertErr)
			res.AddMetric(key+"_amplified_covert_calibration_ok", "bool", boolMetric(amp.covertCal))
			res.AddMetric(key+"_amplified_fingerprint_accuracy", "fraction", amp.fpAcc)
			res.AddMetric(key+"_amplified_fingerprint_calibration_ok", "bool", boolMetric(amp.fpCal))
		}

		// Overhead axis: the composed machine, every mechanism installed.
		perf, err := perfFor(d.PerfEffects())
		if err != nil {
			return Result{}, err
		}
		p99Delta := (perf.p99 - base.p99) / base.p99
		tputLoss := (base.throughput - perf.throughput) / base.throughput
		// The deprecated dominant-layer pricing rides along as *_dominant_*
		// metrics for one release, so downstream consumers can diff the
		// two models while migrating.
		domPerf, err := perfFor(perfsim.EffectsForScheme(d.PerfScheme()))
		if err != nil {
			return Result{}, err
		}
		domP99Delta := (domPerf.p99 - base.p99) / base.p99
		domTputLoss := (base.throughput - domPerf.throughput) / base.throughput

		res.Rows = append(res.Rows, []string{
			name, attacker, pct(lk.chaseAcc), pct(lk.covertErr), pct(lk.fpAcc),
			fmt.Sprintf("%+.1f%%", 100*p99Delta), fmt.Sprintf("%+.1f%%", 100*tputLoss),
		})
		res.AddMetric(key+"_chase_accuracy", "fraction", lk.chaseAcc)
		res.AddMetric(key+"_chase_calibration_ok", "bool", boolMetric(lk.chaseCal))
		res.AddMetric(key+"_covert_error", "fraction", lk.covertErr)
		res.AddMetric(key+"_covert_calibration_ok", "bool", boolMetric(lk.covertCal))
		res.AddMetric(key+"_fingerprint_accuracy", "fraction", lk.fpAcc)
		res.AddMetric(key+"_fingerprint_calibration_ok", "bool", boolMetric(lk.fpCal))
		res.AddMetric(key+"_p99_delta", "fraction", p99Delta)
		res.AddMetric(key+"_throughput_loss", "fraction", tputLoss)
		res.AddMetric(key+"_dominant_p99_delta", "fraction", domP99Delta)
		res.AddMetric(key+"_dominant_throughput_loss", "fraction", domTputLoss)
	}
	res.AddMetric("defenses", "count", float64(len(defense.All())))
	res.Notes = append(res.Notes,
		"leakage: chase accuracy and fingerprint accuracy fall (and covert error rises) as a defense bites;",
		"*_calibration_ok distinguishes 'the defense erased the signal' from 'the attacker went blind': a 0 means that family's number is the output of monitors that reported themselves unable to separate timer jitter from activity;",
		"each cell reports the strongest known attack: timer-coarsening cells are re-derived with the amplified repeated-measurement attacker (probe.AmplifiedStrategy), with both attackers' raw numbers kept as *_fine_timer_* / *_amplified_* metrics; selection prefers calibrated measurements, so a blind attacker's chance-level noise never outranks a calibrated attacker's true number;",
		"overhead: perfsim Nginx p99/throughput deltas vs the vulnerable baseline, priced on the composed machine (every stack layer's mechanism installed at once); *_dominant_* metrics keep the deprecated dominant-layer pricing for one release (timer coarsening is client-side: zero server cost)",
		"paper shape: adaptive partitioning erases the channel for a few percent overhead; disabling DDIO degrades but does not stop the attack; full ring randomization pays ~40% p99; timer coarsening alone does NOT stop the amplified attacker")
	return res, nil
}
