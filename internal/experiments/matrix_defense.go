package experiments

import (
	"fmt"

	"repro/internal/covert"
	"repro/internal/defense"
	"repro/internal/fingerprint"
	"repro/internal/perfsim"
	"repro/internal/probe"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/webtrace"
)

// matrix_defense is the headline attack × defense evaluation: every
// registered platform defense is installed on the baseline machine, every
// attack family (online chase, covert channel, website fingerprinting) is
// run against it, and the perfsim cost model prices the same defense on
// the overhead axis. The result is the leakage-vs-overhead grid behind
// the paper's §VI-§VII narrative — the one table that answers both "does
// the attack still work" and "what does the defense cost" for every
// mitigation at once.

// defenseSpec is the baseline scenario with a defense installed.
func defenseSpec(scale Scale, d defense.Defense) scenario.Spec {
	return baselineSpec(scale).WithDefense(d)
}

// coarsensTimer reports whether the defense denies the attacker a
// fine-grained timer (directly or inside a stack): the cells where the
// amplified coarse-timer attacker is the strongest known attack and must
// be the one the matrix reports.
func coarsensTimer(scale Scale, d defense.Defense) bool {
	base := baselineSpec(scale)
	opts := base.Options(0)
	d.Apply(&opts)
	return opts.TimerNoise > base.TimerNoise
}

// amplifiedLabel names a defense cell's amplified-attacker rig.
func amplifiedLabel(name string) string { return name + "+amplified" }

// pickHigher reports whether measurement (a, calA) beats (b, calB) on a
// higher-is-stronger scale (negate values for lower-is-stronger):
// calibrated measurements always beat uncalibrated ones, and raw values
// compare only between equally calibrated measurements.
func pickHigher(a float64, calA bool, b float64, calB bool) bool {
	if calA != calB {
		return calA
	}
	return a > b
}

// PrepareMatrixDefense builds one machine per registered defense — and,
// for defenses that coarsen the timer, a second machine prepared by the
// amplified attacker (probe.AmplifiedStrategy), because the matrix
// reports the strongest known attack per cell. Rigs are labeled by
// defense name and content-addressed with the defense fingerprint plus
// the attacker strategy: a timer-coarsening machine differs from the
// stock one only in a knob the option fingerprint excludes, yet its
// offline phase (calibration, eviction sets) ran under the coarse timer,
// so the artifacts must never be shared.
func PrepareMatrixDefense(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	for _, d := range defense.All() {
		spec := defenseSpec(ctx.Scale, d)
		if err := ctx.AddSpecRig(art, d.Name(), spec, ctx.Seed); err != nil {
			return nil, err
		}
		if coarsensTimer(ctx.Scale, d) {
			if err := ctx.AddSpecRigStrategy(art, amplifiedLabel(d.Name()), spec, ctx.Seed, probe.AmplifiedStrategy()); err != nil {
				return nil, err
			}
		}
	}
	return art, nil
}

// matrixPerf is one defense's cost-axis measurement.
type matrixPerf struct {
	p99        float64
	throughput float64
}

// MeasureMatrixDefense measures the grid. Each attack measures on its own
// clone of the defense's machine; the perfsim Nginx workload runs once
// per distinct cost scheme (timer coarsening shares the baseline's cost
// run — a client-side mitigation costs the server nothing).
func MeasureMatrixDefense(ctx MeasureCtx, art *Artifact) (Result, error) {
	covertSymbols, fpTrials, nginxRequests := 100, 10, 6_000
	if ctx.Scale == Paper {
		covertSymbols, fpTrials, nginxRequests = 250, 100, 30_000
	}

	nginxCfg := perfsim.DefaultNginxConfig()
	nginxCfg.Requests = nginxRequests
	nginxCfg.TargetRate = 140_000
	perfBy := map[perfsim.Scheme]matrixPerf{}
	perfFor := func(s perfsim.Scheme) (matrixPerf, error) {
		if p, ok := perfBy[s]; ok {
			return p, nil
		}
		m, err := perfsim.RunNginx(s, figLLC, ctx.Seed, nginxCfg)
		if err != nil {
			return matrixPerf{}, err
		}
		p := matrixPerf{p99: m.LatencyPercentile(99), throughput: m.Throughput()}
		perfBy[s] = p
		return p, nil
	}
	base, err := perfFor(defense.NoDefense{}.PerfScheme())
	if err != nil {
		return Result{}, err
	}

	// leakageOf runs the three attack families against one prepared rig
	// (each family on its own fresh clone). Each family carries its
	// calibration-health signal so a blind attacker's numbers can never
	// read as a defense outcome (see the *_calibration_ok metrics).
	type leakage struct {
		chaseAcc  float64
		covertErr float64
		fpAcc     float64
		chaseCal  bool
		covertCal bool
		fpCal     bool
	}
	leakageOf := func(label string) (leakage, error) {
		out := leakage{covertErr: 1, covertCal: true}

		chaseRig, err := art.rig(label, ctx)
		if err != nil {
			return leakage{}, err
		}
		// Three ring revolutions, not one: ring randomization only moves a
		// buffer after its first use, so a single pass is blind to §VI-b
		// (see chaseFrames).
		chase := chaseAccuracy(chaseRig, nil, chaseFrames(chaseRig))
		out.chaseAcc, out.chaseCal = chase.acc, chase.calOK

		// A ring with no isolated buffer means the channel cannot even be
		// established — that counts as fully erased (error 1, with the
		// health signal vacuously true: no receiver was ever built). An
		// error from the channel run itself is infrastructure failure,
		// not a defense outcome, and must fail the trial rather than
		// masquerade as a perfect defense.
		covertRig, err := art.rig(label, ctx)
		if err != nil {
			return leakage{}, err
		}
		ring := covertRig.groundTruthRing()
		if gid, ok := covert.ChooseIsolatedBuffer(ring); ok {
			symbols := stats.NewLFSR15(uint16(ctx.Seed%0x7fff)|1).Symbols(covertSymbols, covert.Ternary.Base())
			r0, err := covert.RunSingleBuffer(covertRig.spy, covertRig.groups[gid],
				symbols, covert.Ternary, len(ring), 16_500)
			if err != nil {
				return leakage{}, fmt.Errorf("matrix_defense: covert channel under %s: %w", label, err)
			}
			out.covertErr = r0.ErrorRate
			if out.covertErr > 1 {
				out.covertErr = 1
			}
			out.covertCal = r0.CalibrationOK
		}

		fpRig, err := art.rig(label, ctx)
		if err != nil {
			return leakage{}, err
		}
		atk := &fingerprint.Attack{
			Spy: fpRig.spy, Groups: fpRig.groups, Ring: fpRig.groundTruthRing(), TraceLen: 100,
		}
		ev := fingerprint.EvaluateClosedWorld(atk, webtrace.ClosedWorld(), webtrace.DefaultNoise(),
			fpTrials, sim.Derive(ctx.Seed, "matrix/"+label))
		out.fpAcc, out.fpCal = ev.Accuracy(), atk.CalibrationOK()
		return out, nil
	}

	res := Result{
		ID:    "matrix_defense",
		Title: "attack x defense matrix: strongest-attack leakage vs overhead for every registered defense",
		Header: []string{"defense", "attacker", "chase acc", "covert err", "fp acc",
			"p99 delta", "tput loss"},
	}
	for _, d := range defense.All() {
		name := d.Name()
		key := slug(name)

		// Leakage axis, strongest known attack per cell: the fine-timer
		// attacker everywhere, and additionally the amplified coarse-timer
		// attacker wherever the defense coarsens the timer — a defense is
		// only as strong as the best attack against it, and scoring
		// timer coarsening against an attacker whose calibration it
		// silently broke made the defense look stronger than the threat
		// model justifies.
		lk, err := leakageOf(name)
		if err != nil {
			return Result{}, err
		}
		attacker := "fine-timer"
		// The artifact is the source of truth for which cells carry an
		// amplified rig (Prepare decided via coarsensTimer); re-deriving
		// the predicate here could silently diverge from what was built.
		if _, ok := art.Rigs[amplifiedLabel(name)]; ok {
			fine := lk
			amp, err := leakageOf(amplifiedLabel(name))
			if err != nil {
				return Result{}, err
			}
			// Per family, take the stronger attack AND carry that
			// attacker's health signal. "Stronger" is gated on
			// calibration: a blind attacker's chance-level noise must
			// never outrank a calibrated attacker's true measurement
			// (under the partition+coarse stack the blind fine-timer
			// chaser scores the two-class coin-flip ~0.5 while the
			// calibrated amplified chaser truly measures ~0 — the cell
			// must report the real leakage, not the noise). Raw numbers
			// compare only between equally calibrated measurements.
			lk = fine
			if pickHigher(amp.chaseAcc, amp.chaseCal, lk.chaseAcc, lk.chaseCal) {
				lk.chaseAcc, lk.chaseCal = amp.chaseAcc, amp.chaseCal
			}
			if pickHigher(-amp.covertErr, amp.covertCal, -lk.covertErr, lk.covertCal) {
				lk.covertErr, lk.covertCal = amp.covertErr, amp.covertCal
			}
			if pickHigher(amp.fpAcc, amp.fpCal, lk.fpAcc, lk.fpCal) {
				lk.fpAcc, lk.fpCal = amp.fpAcc, amp.fpCal
			}
			attacker = "strongest(fine,amplified)"
			res.AddMetric(key+"_fine_timer_chase_accuracy", "fraction", fine.chaseAcc)
			res.AddMetric(key+"_fine_timer_chase_calibration_ok", "bool", boolMetric(fine.chaseCal))
			res.AddMetric(key+"_fine_timer_covert_error", "fraction", fine.covertErr)
			res.AddMetric(key+"_fine_timer_covert_calibration_ok", "bool", boolMetric(fine.covertCal))
			res.AddMetric(key+"_fine_timer_fingerprint_accuracy", "fraction", fine.fpAcc)
			res.AddMetric(key+"_fine_timer_fingerprint_calibration_ok", "bool", boolMetric(fine.fpCal))
			res.AddMetric(key+"_amplified_chase_accuracy", "fraction", amp.chaseAcc)
			res.AddMetric(key+"_amplified_chase_calibration_ok", "bool", boolMetric(amp.chaseCal))
			res.AddMetric(key+"_amplified_covert_error", "fraction", amp.covertErr)
			res.AddMetric(key+"_amplified_covert_calibration_ok", "bool", boolMetric(amp.covertCal))
			res.AddMetric(key+"_amplified_fingerprint_accuracy", "fraction", amp.fpAcc)
			res.AddMetric(key+"_amplified_fingerprint_calibration_ok", "bool", boolMetric(amp.fpCal))
		}

		// Overhead axis.
		perf, err := perfFor(d.PerfScheme())
		if err != nil {
			return Result{}, err
		}
		p99Delta := (perf.p99 - base.p99) / base.p99
		tputLoss := (base.throughput - perf.throughput) / base.throughput

		res.Rows = append(res.Rows, []string{
			name, attacker, pct(lk.chaseAcc), pct(lk.covertErr), pct(lk.fpAcc),
			fmt.Sprintf("%+.1f%%", 100*p99Delta), fmt.Sprintf("%+.1f%%", 100*tputLoss),
		})
		res.AddMetric(key+"_chase_accuracy", "fraction", lk.chaseAcc)
		res.AddMetric(key+"_chase_calibration_ok", "bool", boolMetric(lk.chaseCal))
		res.AddMetric(key+"_covert_error", "fraction", lk.covertErr)
		res.AddMetric(key+"_covert_calibration_ok", "bool", boolMetric(lk.covertCal))
		res.AddMetric(key+"_fingerprint_accuracy", "fraction", lk.fpAcc)
		res.AddMetric(key+"_fingerprint_calibration_ok", "bool", boolMetric(lk.fpCal))
		res.AddMetric(key+"_p99_delta", "fraction", p99Delta)
		res.AddMetric(key+"_throughput_loss", "fraction", tputLoss)
	}
	res.AddMetric("defenses", "count", float64(len(defense.All())))
	res.Notes = append(res.Notes,
		"leakage: chase accuracy and fingerprint accuracy fall (and covert error rises) as a defense bites;",
		"*_calibration_ok distinguishes 'the defense erased the signal' from 'the attacker went blind': a 0 means that family's number is the output of monitors that reported themselves unable to separate timer jitter from activity;",
		"each cell reports the strongest known attack: timer-coarsening cells are re-derived with the amplified repeated-measurement attacker (probe.AmplifiedStrategy), with both attackers' raw numbers kept as *_fine_timer_* / *_amplified_* metrics; selection prefers calibrated measurements, so a blind attacker's chance-level noise never outranks a calibrated attacker's true number;",
		"overhead: perfsim Nginx p99/throughput deltas vs the vulnerable baseline (timer coarsening is client-side: zero server cost)",
		"paper shape: adaptive partitioning erases the channel for a few percent overhead; disabling DDIO degrades but does not stop the attack; full ring randomization pays ~40% p99; timer coarsening alone does NOT stop the amplified attacker")
	return res, nil
}
