package experiments

import (
	"fmt"

	"repro/internal/covert"
	"repro/internal/defense"
	"repro/internal/fingerprint"
	"repro/internal/perfsim"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/webtrace"
)

// matrix_defense is the headline attack × defense evaluation: every
// registered platform defense is installed on the baseline machine, every
// attack family (online chase, covert channel, website fingerprinting) is
// run against it, and the perfsim cost model prices the same defense on
// the overhead axis. The result is the leakage-vs-overhead grid behind
// the paper's §VI-§VII narrative — the one table that answers both "does
// the attack still work" and "what does the defense cost" for every
// mitigation at once.

// defenseSpec is the baseline scenario with a defense installed.
func defenseSpec(scale Scale, d defense.Defense) scenario.Spec {
	return baselineSpec(scale).WithDefense(d)
}

// PrepareMatrixDefense builds one machine per registered defense. Rigs
// are labeled by defense name and content-addressed with the defense
// fingerprint: a timer-coarsening machine differs from the stock one
// only in a knob the option fingerprint excludes, yet its offline phase
// (calibration, eviction sets) ran under the coarse timer, so the
// artifacts must never be shared.
func PrepareMatrixDefense(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	for _, d := range defense.All() {
		if err := ctx.AddSpecRig(art, d.Name(), defenseSpec(ctx.Scale, d), ctx.Seed); err != nil {
			return nil, err
		}
	}
	return art, nil
}

// matrixPerf is one defense's cost-axis measurement.
type matrixPerf struct {
	p99        float64
	throughput float64
}

// MeasureMatrixDefense measures the grid. Each attack measures on its own
// clone of the defense's machine; the perfsim Nginx workload runs once
// per distinct cost scheme (timer coarsening shares the baseline's cost
// run — a client-side mitigation costs the server nothing).
func MeasureMatrixDefense(ctx MeasureCtx, art *Artifact) (Result, error) {
	covertSymbols, fpTrials, nginxRequests := 100, 10, 6_000
	if ctx.Scale == Paper {
		covertSymbols, fpTrials, nginxRequests = 250, 100, 30_000
	}

	nginxCfg := perfsim.DefaultNginxConfig()
	nginxCfg.Requests = nginxRequests
	nginxCfg.TargetRate = 140_000
	perfBy := map[perfsim.Scheme]matrixPerf{}
	perfFor := func(s perfsim.Scheme) (matrixPerf, error) {
		if p, ok := perfBy[s]; ok {
			return p, nil
		}
		m, err := perfsim.RunNginx(s, figLLC, ctx.Seed, nginxCfg)
		if err != nil {
			return matrixPerf{}, err
		}
		p := matrixPerf{p99: m.LatencyPercentile(99), throughput: m.Throughput()}
		perfBy[s] = p
		return p, nil
	}
	base, err := perfFor(defense.NoDefense{}.PerfScheme())
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ID:    "matrix_defense",
		Title: "attack x defense matrix: leakage vs overhead for every registered defense",
		Header: []string{"defense", "chase acc", "covert err", "fp acc",
			"p99 delta", "tput loss"},
	}
	for _, d := range defense.All() {
		name := d.Name()

		// Leakage axis: each attack family on a fresh clone of the
		// defended machine.
		chaseRig, err := art.rig(name, ctx)
		if err != nil {
			return Result{}, err
		}
		// Three ring revolutions, not one: ring randomization only moves a
		// buffer after its first use, so a single pass is blind to §VI-b
		// (see chaseFrames).
		chase := chaseAccuracy(chaseRig, nil, chaseFrames(chaseRig))

		// A ring with no isolated buffer means the channel cannot even be
		// established — that counts as fully erased (error 1). An error
		// from the channel run itself is infrastructure failure, not a
		// defense outcome, and must fail the trial rather than masquerade
		// as a perfect defense.
		covertErr := 1.0
		covertRig, err := art.rig(name, ctx)
		if err != nil {
			return Result{}, err
		}
		ring := covertRig.groundTruthRing()
		if gid, ok := covert.ChooseIsolatedBuffer(ring); ok {
			symbols := stats.NewLFSR15(uint16(ctx.Seed%0x7fff)|1).Symbols(covertSymbols, covert.Ternary.Base())
			r0, err := covert.RunSingleBuffer(covertRig.spy, covertRig.groups[gid],
				symbols, covert.Ternary, len(ring), 16_500)
			if err != nil {
				return Result{}, fmt.Errorf("matrix_defense: covert channel under %s: %w", name, err)
			}
			covertErr = r0.ErrorRate
			if covertErr > 1 {
				covertErr = 1
			}
		}

		fpRig, err := art.rig(name, ctx)
		if err != nil {
			return Result{}, err
		}
		atk := &fingerprint.Attack{
			Spy: fpRig.spy, Groups: fpRig.groups, Ring: fpRig.groundTruthRing(), TraceLen: 100,
		}
		ev := fingerprint.EvaluateClosedWorld(atk, webtrace.ClosedWorld(), webtrace.DefaultNoise(),
			fpTrials, sim.Derive(ctx.Seed, "matrix/"+name))
		fpAcc := ev.Accuracy()

		// Overhead axis.
		perf, err := perfFor(d.PerfScheme())
		if err != nil {
			return Result{}, err
		}
		p99Delta := (perf.p99 - base.p99) / base.p99
		tputLoss := (base.throughput - perf.throughput) / base.throughput

		res.Rows = append(res.Rows, []string{
			name, pct(chase.acc), pct(covertErr), pct(fpAcc),
			fmt.Sprintf("%+.1f%%", 100*p99Delta), fmt.Sprintf("%+.1f%%", 100*tputLoss),
		})
		key := slug(name)
		res.AddMetric(key+"_chase_accuracy", "fraction", chase.acc)
		res.AddMetric(key+"_covert_error", "fraction", covertErr)
		res.AddMetric(key+"_fingerprint_accuracy", "fraction", fpAcc)
		res.AddMetric(key+"_p99_delta", "fraction", p99Delta)
		res.AddMetric(key+"_throughput_loss", "fraction", tputLoss)
	}
	res.AddMetric("defenses", "count", float64(len(defense.All())))
	res.Notes = append(res.Notes,
		"leakage: chase accuracy and fingerprint accuracy fall (and covert error rises) as a defense bites;",
		"overhead: perfsim Nginx p99/throughput deltas vs the vulnerable baseline (timer coarsening is client-side: zero server cost)",
		"paper shape: adaptive partitioning erases the channel for a few percent overhead; disabling DDIO degrades but does not stop the attack; full ring randomization pays ~40% p99")
	return res, nil
}
