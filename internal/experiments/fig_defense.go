package experiments

import (
	"fmt"
	"strings"

	"repro/internal/defense"
	"repro/internal/perfsim"
	"repro/internal/probe"
	"repro/internal/testbed"
)

// The perf figures (14-16) are defined over the defense registry: each
// figure names its defenses and derives the perfsim cost scheme through
// Defense.PerfScheme, so a new mitigation only needs a registry entry to
// appear on the cost axis. Display names and metric slugs still come
// from the scheme (the paper's labels), keeping the pinned report bytes
// stable.

// mustDefense resolves a registry name; the figures are defined over
// registered defenses, so a miss is a programming error.
func mustDefense(name string) defense.Defense {
	d, ok := defense.ByName(name)
	if !ok {
		panic(fmt.Sprintf("experiments: defense %q not registered", name))
	}
	return d
}

// schemesFor maps defense names to their cost-model schemes in order.
func schemesFor(names ...string) []perfsim.Scheme {
	out := make([]perfsim.Scheme, len(names))
	for i, n := range names {
		out[i] = mustDefense(n).PerfScheme()
	}
	return out
}

// newAttackRigOpts is newAttackRig with explicit options (for experiments
// that tweak the machine, e.g. disabling DDIO).
func newAttackRigOpts(opts testbed.Options) (*attackRig, error) {
	return newAttackRigStrategy(opts, probe.DefaultStrategy())
}

// newAttackRigStrategy runs the offline phase under an explicit attacker
// measurement strategy (probe.Strategy): the amplified coarse-timer
// attacker calibrates and builds its eviction sets through it, and every
// monitor the attack layers later construct inherits it via the spy.
func newAttackRigStrategy(opts testbed.Options, strat probe.Strategy) (*attackRig, error) {
	tb, err := testbed.New(opts)
	if err != nil {
		return nil, err
	}
	spy, err := probe.NewSpyStrategy(tb, spyPages(opts), strat)
	if err != nil {
		return nil, err
	}
	groups, err := spy.BuildAlignedEvictionSets(opts.Cache.Ways)
	if err != nil {
		return nil, err
	}
	return &attackRig{tb: tb, spy: spy, groups: groups, ccfg: tb.Cache().Config()}, nil
}

// Table2 prints the baseline processor configuration (the gem5 machine the
// paper's defense evaluation models; our perfsim models the same machine
// at memory-system granularity).
func Table2(Scale, int64) (Result, error) {
	res := Result{
		ID:     "table2",
		Title:  "baseline processor (paper Table II; substrate for Figs 14-16)",
		Header: []string{"parameter", "value", "modeled here"},
		Rows: [][]string{
			{"Frequency", "3.3 GHz", "yes (sim.Frequency)"},
			{"LLC", "20 MB, 8 slices x 2048 sets x 20 ways", "yes (cache.PaperConfig)"},
			{"DDIO way cap", "2", "yes"},
			{"Icache/Dcache", "32 KB, 8 way", "no (memory-system model only)"},
			{"Fetch/issue width", "4 fused / 6 unfused uops", "no (fixed per-request compute)"},
			{"ROB/IQ/LQ/SQ", "168 / 54 / 64 / 36 entries", "no"},
			{"Adaptation period p", "10k cycles; Thigh=5k, Tlow=2k; quota 1..3", "yes (cache.PartitionConfig)"},
		},
		Notes: []string{"core microarchitecture is abstracted into per-request compute cycles; Figs 14-16 depend on the memory system, which is modeled"},
	}
	modeled := 0
	for _, row := range res.Rows {
		if strings.HasPrefix(row[2], "yes") {
			modeled++
		}
	}
	res.AddMetric("modeled_parameters", "rows", float64(modeled))
	res.AddMetric("total_parameters", "rows", float64(len(res.Rows)))
	return res, nil
}

const (
	figLLC = 20 << 20
)

// Fig14 compares Nginx throughput under DDIO and adaptive partitioning at
// LLC sizes of 20, 11, and 8 MB.
func Fig14(scale Scale, seed int64) (Result, error) {
	requests := 6_000
	if scale == Paper {
		requests = 30_000
	}
	res := Result{
		ID:     "fig14",
		Title:  "Nginx throughput (kilo-requests/s): adaptive partitioning vs DDIO",
		Header: []string{"LLC", "DDIO (krps)", "adaptive (krps)", "loss"},
	}
	worst := 0.0
	for _, llc := range []int{20 << 20, 11 << 20, 8 << 20} {
		cfg := perfsim.DefaultNginxConfig()
		cfg.Requests = requests
		run := func(s perfsim.Scheme) float64 {
			m, err := perfsim.RunNginx(s, llc, seed, cfg)
			if err != nil {
				panic(err)
			}
			return m.Throughput()
		}
		d := run(mustDefense("none").PerfScheme())
		a := run(mustDefense("adaptive-partition").PerfScheme())
		loss := (d - a) / d
		if loss > worst {
			worst = loss
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d MB", llc>>20), f1(d / 1000), f1(a / 1000), pct(loss),
		})
		key := fmt.Sprintf("llc%dmb", llc>>20)
		res.AddMetric(key+"_ddio_throughput", "krps", d/1000)
		res.AddMetric(key+"_adaptive_throughput", "krps", a/1000)
		res.AddMetric(key+"_adaptive_loss", "fraction", loss)
	}
	res.AddMetric("worst_adaptive_loss", "fraction", worst)
	res.Notes = append(res.Notes,
		fmt.Sprintf("worst-case adaptive loss %s (paper: 2.7%% at 20 MB, <2%% average)", pct(worst)))
	return res, nil
}

// Fig15 measures normalized memory traffic and LLC miss rate for the three
// workloads under No-DDIO (the 1.0 baseline), DDIO, and adaptive
// partitioning.
func Fig15(scale Scale, seed int64) (Result, error) {
	copyBytes := 8 << 20
	packets, requests := 6_000, 4_000
	if scale == Paper {
		copyBytes = 100 << 20
		packets, requests = 40_000, 20_000
	}
	res := Result{
		ID:     "fig15",
		Title:  "normalized memory traffic and LLC miss rate (No DDIO = 1.0)",
		Header: []string{"workload", "scheme", "norm reads", "norm writes", "norm miss rate"},
	}
	schemes := schemesFor("no-ddio", "none", "adaptive-partition")
	workloads := []struct {
		name string
		run  func(env *perfsim.Env) perfsim.Metrics
	}{
		{"File Copy", func(env *perfsim.Env) perfsim.Metrics { return perfsim.FileCopy(env, copyBytes) }},
		{"TCP Recv", func(env *perfsim.Env) perfsim.Metrics { return perfsim.TCPRecv(env, packets) }},
		{"Nginx", func(env *perfsim.Env) perfsim.Metrics {
			cfg := perfsim.DefaultNginxConfig()
			cfg.Requests = requests
			return perfsim.Nginx(env, cfg)
		}},
	}
	for _, wl := range workloads {
		var base perfsim.Metrics
		for _, s := range schemes {
			env, err := perfsim.NewEnv(s, figLLC, seed)
			if err != nil {
				return Result{}, err
			}
			m := wl.run(env)
			if s == perfsim.SchemeNoDDIO {
				base = m
			}
			r, w, miss := m.NormalizedTraffic(base)
			res.Rows = append(res.Rows, []string{
				wl.name, s.String(), f2(r), f2(w), f2(miss),
			})
			key := slug(wl.name) + "_" + slug(s.String())
			res.AddMetric(key+"_norm_reads", "ratio", r)
			res.AddMetric(key+"_norm_writes", "ratio", w)
			res.AddMetric(key+"_norm_miss_rate", "ratio", miss)
		}
	}
	res.Notes = append(res.Notes,
		"paper shape: DDIO and adaptive partitioning both cut memory traffic and miss rate vs No-DDIO;",
		"adaptive stays within ~2% of DDIO")
	return res, nil
}

// Fig16 measures HTTP response-latency percentiles for all five schemes at
// the wrk2 target rate.
func Fig16(scale Scale, seed int64) (Result, error) {
	requests := 12_000
	if scale == Paper {
		requests = 60_000
	}
	percentiles := []float64{25, 50, 90, 99, 99.9, 99.99}
	res := Result{
		ID:    "fig16",
		Title: "HTTP request latency percentiles by defense scheme (cycles)",
		Header: []string{"scheme", "p25", "p50", "p90", "p99", "p99.9", "p99.99",
			"p99 vs baseline"},
	}
	var baseP99 float64
	for _, s := range schemesFor(
		"none", "ring-full-random", "ring-partial-1k", "ring-partial-10k",
		"adaptive-partition",
	) {
		cfg := perfsim.DefaultNginxConfig()
		cfg.Requests = requests
		cfg.TargetRate = 140_000
		m, err := perfsim.RunNginx(s, figLLC, seed, cfg)
		if err != nil {
			return Result{}, err
		}
		row := []string{s.String()}
		var p99 float64
		for _, p := range percentiles {
			v := m.LatencyPercentile(p)
			if p == 99 {
				p99 = v
			}
			row = append(row, fmt.Sprintf("%.0f", v))
		}
		res.AddMetric(slug(s.String())+"_p99_latency", "cycles", p99)
		if s == perfsim.SchemeDDIO {
			baseP99 = p99
			row = append(row, "baseline")
		} else {
			row = append(row, fmt.Sprintf("%+.1f%%", 100*(p99-baseP99)/baseP99))
			res.AddMetric(slug(s.String())+"_p99_delta", "fraction", (p99-baseP99)/baseP99)
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper shape: adaptive partitioning ~+3.1% at p99; full ring randomization ~+41.8%; partial randomization in between")
	return res, nil
}
