package experiments

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/covert"
	"repro/internal/netmodel"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Sweep is a parameter-sweep experiment: a grid of scenario axes and a
// measurement run per grid cell. Where the registry experiments reproduce
// single figures, sweeps produce the paper's §VI-style sensitivity curves
// — how attack quality degrades as the environment worsens. The runner
// fans cells out over its worker pool (runner.RunSweep) with decorrelated
// per-cell seeds and aggregates per-cell metrics across trials.
type Sweep struct {
	ID    string
	Short string
	Grid  scenario.Grid
	Run   func(scale Scale, seed int64, cell scenario.Cell) (Result, error)
}

// Sweeps returns the sensitivity-study registry.
func Sweeps() []Sweep {
	return []Sweep{
		{
			ID:    "sens_chase_noise",
			Short: "chase accuracy vs background cache noise",
			// The top value sits where classification has collapsed but the
			// two-class accuracy floor (~0.5) is not yet dominant: past
			// ~10M accesses/s the curve saturates and stops being a
			// sensitivity measurement.
			Grid: scenario.Grid{
				{Name: scenario.AxisNoiseRate, Values: []float64{20_000, 500_000, 2_000_000, 8_000_000}},
			},
			Run: SensChaseNoise,
		},
		{
			ID:    "sens_chase_traffic",
			Short: "chase accuracy vs competing background traffic",
			Grid: scenario.Grid{
				{Name: "bg_rate", Values: []float64{0, 5_000, 20_000, 50_000}},
			},
			Run: SensChaseTraffic,
		},
		{
			ID:    "sens_covert_timer",
			Short: "covert-channel symbol error vs timer granularity",
			// Beyond ~100 cycles of jitter the offline phase itself fails
			// (the conflict test can no longer see the ~160-cycle hit/miss
			// edge), so the axis stops at the largest granularity with a
			// channel left to measure.
			Grid: scenario.Grid{
				{Name: scenario.AxisTimerNoise, Values: []float64{0, 4, 16, 32, 64}},
			},
			Run: SensCovertTimer,
		},
		{
			ID:    "sens_ring_detect",
			Short: "footprint detection quality vs rx ring size",
			Grid: scenario.Grid{
				{Name: scenario.AxisRingSize, Values: []float64{16, 32, 64, 128}},
			},
			Run: SensRingDetect,
		},
	}
}

// SweepByID returns the sweep with the given id.
func SweepByID(id string) (Sweep, bool) {
	for _, s := range Sweeps() {
		if s.ID == id {
			return s, true
		}
	}
	return Sweep{}, false
}

// newSweepRig builds an attack rig for an arbitrary scenario spec (the
// sweep counterpart of newAttackRig, which runs the baseline spec).
func newSweepRig(spec scenario.Spec, seed int64) (*attackRig, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return newAttackRigOpts(spec.Options(seed))
}

// chaseAccuracy runs one chase of a known alternating-size stream against
// the ground-truth ring and scores the observed size-class sequence: the
// paper's online-phase quality measure, 1 - Levenshtein/len(sent). The
// optional background source is mixed into the victim stream.
func chaseAccuracy(rig *attackRig, bg netmodel.Source, frames int) (acc float64, outOfSync uint64) {
	ring := rig.groundTruthRing()

	wire := netmodel.NewWire(netmodel.GigabitRate)
	sizes := make([]int, frames)
	sent := make([]int, frames)
	for i := range sizes {
		if i%2 == 0 {
			sizes[i] = netmodel.SizeForBlocks(4)
		} else {
			sizes[i] = netmodel.SizeForBlocks(1)
		}
		// Expected observed class: the driver's block-1 prefetch makes
		// 1-block packets read as class 2 (Fig 8's prefetch artifact).
		sent[i] = netmodel.Frame{Size: sizes[i]}.Blocks()
		if sent[i] < 2 {
			sent[i] = 2
		}
	}
	gaps := make([]uint64, frames)
	for i := range gaps {
		gaps[i] = 400_000
	}

	cfg := chase.DefaultChaserConfig()
	cfg.SyncTimeout = 2_000_000
	chaser := chase.NewChaser(rig.spy, rig.groups, ring, cfg)

	var src netmodel.Source = netmodel.NewTraceSource(wire, sizes, gaps, rig.tb.Clock().Now()+200_000)
	if bg != nil {
		src = netmodel.NewMixSource(src, bg)
	}
	rig.tb.SetTraffic(src)

	obs := chaser.Chase(frames)
	seen := chase.SizeTrace(obs)
	err := stats.ErrorRate(sent, seen)
	if err > 1 {
		err = 1
	}
	return 1 - err, chaser.OutOfSync
}

// sensReps is the number of independent machines averaged per sweep cell.
// Sensitivity curves compare adjacent cells, so per-cell variance must sit
// well below the axis effect; averaging a few decorrelated repetitions
// keeps demo-scale curves stable without paper-scale run times.
const sensReps = 3

// SensChaseNoise measures online-chase accuracy as ambient cache noise
// rises — the curve behind the paper's claim that the chase tolerates a
// busy server. Accuracy is monotonically non-increasing in the noise rate
// at demo scale: each decade of background accesses/second converts more
// polls into false activity until classification collapses.
func SensChaseNoise(scale Scale, seed int64, cell scenario.Cell) (Result, error) {
	spec := baselineSpec(scale).WithCell(cell)
	var accs, syncs []float64
	for r := 0; r < sensReps; r++ {
		rig, err := newSweepRig(spec, sim.DeriveSeed(seed, fmt.Sprintf("rep%d", r)))
		if err != nil {
			return Result{}, err
		}
		acc, oos := chaseAccuracy(rig, nil, 64)
		accs = append(accs, acc)
		syncs = append(syncs, float64(oos))
	}
	accSum := stats.Summarize(accs)
	res := Result{
		ID:     "sens_chase_noise",
		Title:  "chase accuracy vs background cache noise",
		Header: []string{"noise (accesses/s)", "accuracy", "out-of-sync"},
	}
	noise, _ := cell.Value(scenario.AxisNoiseRate)
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("%.0f", noise), pct(accSum.Mean), f1(stats.Summarize(syncs).Mean),
	})
	res.AddMetric("chase_accuracy", "fraction", accSum.Mean)
	res.AddMetric("out_of_sync", "events", stats.Summarize(syncs).Mean)
	return res, nil
}

// SensChaseTraffic measures chase accuracy against competing background
// traffic: Poisson flows of ordinary kernel-bound packets share the rx
// ring with the victim stream, so the chaser's expected buffer fills with
// the wrong packets as the background rate grows.
func SensChaseTraffic(scale Scale, seed int64, cell scenario.Cell) (Result, error) {
	spec := baselineSpec(scale)
	rate, _ := cell.Value("bg_rate")
	if rate > 0 {
		spec.Flows = []scenario.Flow{
			{Kind: scenario.FlowPoisson, Sizes: []int{64, 128, 256}, Rate: rate, Count: -1},
		}
	}
	var accs, syncs []float64
	for r := 0; r < sensReps; r++ {
		repSeed := sim.DeriveSeed(seed, fmt.Sprintf("rep%d", r))
		rig, err := newSweepRig(spec, repSeed)
		if err != nil {
			return Result{}, err
		}
		bg := spec.BuildTraffic(repSeed, rig.tb.Clock().Now())
		acc, oos := chaseAccuracy(rig, bg, 64)
		accs = append(accs, acc)
		syncs = append(syncs, float64(oos))
	}
	res := Result{
		ID:     "sens_chase_traffic",
		Title:  "chase accuracy vs competing background traffic",
		Header: []string{"bg rate (pps)", "accuracy", "out-of-sync"},
	}
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("%.0f", rate), pct(stats.Summarize(accs).Mean), f1(stats.Summarize(syncs).Mean),
	})
	res.AddMetric("chase_accuracy", "fraction", stats.Summarize(accs).Mean)
	res.AddMetric("out_of_sync", "events", stats.Summarize(syncs).Mean)
	return res, nil
}

// SensCovertTimer measures single-buffer covert-channel symbol error as
// the spy's timer gets coarser: jitter first blurs, then swamps, the
// ~160-cycle hit/miss edge the decoder keys on.
func SensCovertTimer(scale Scale, seed int64, cell scenario.Cell) (Result, error) {
	spec := baselineSpec(scale).WithCell(cell)
	nSymbols := 120
	if scale == Paper {
		nSymbols = 300
	}
	var errs, bws []float64
	for r := 0; r < sensReps; r++ {
		rig, err := newSweepRig(spec, sim.DeriveSeed(seed, fmt.Sprintf("rep%d", r)))
		if err != nil {
			return Result{}, err
		}
		ring := rig.groundTruthRing()
		gid, ok := covert.ChooseIsolatedBuffer(ring)
		if !ok {
			return Result{}, fmt.Errorf("sens_covert_timer: no isolated buffer in ring")
		}
		symbols := stats.NewLFSR15(uint16(seed%0x7fff)|1).Symbols(nSymbols, covert.Ternary.Base())
		r0, err := covert.RunSingleBuffer(rig.spy, rig.groups[gid], symbols, covert.Ternary, len(ring), 16_500)
		if err != nil {
			return Result{}, err
		}
		errs = append(errs, r0.ErrorRate)
		bws = append(bws, r0.Bandwidth)
	}
	res := Result{
		ID:     "sens_covert_timer",
		Title:  "covert-channel symbol error vs timer jitter",
		Header: []string{"timer jitter (cycles)", "symbol error", "bandwidth (bps)"},
	}
	jitter, _ := cell.Value(scenario.AxisTimerNoise)
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("%.0f", jitter), pct(stats.Summarize(errs).Mean),
		fmt.Sprintf("%.0f", stats.Summarize(bws).Mean),
	})
	res.AddMetric("symbol_error", "fraction", stats.Summarize(errs).Mean)
	res.AddMetric("bandwidth", "bps", stats.Summarize(bws).Mean)
	return res, nil
}

// SensRingDetect measures footprint-discovery quality as the driver's
// descriptor ring grows (§VI-c floats growing the ring as a mitigation):
// precision of the flagged groups and recall of the buffer-hosting sets.
func SensRingDetect(scale Scale, seed int64, cell scenario.Cell) (Result, error) {
	spec := baselineSpec(scale).WithCell(cell)
	var precs, recalls, flagged []float64
	for r := 0; r < sensReps; r++ {
		rig, err := newSweepRig(spec, sim.DeriveSeed(seed, fmt.Sprintf("rep%d", r)))
		if err != nil {
			return Result{}, err
		}
		wire := netmodel.NewWire(netmodel.GigabitRate)
		fp := chase.RecoverFootprint(rig.spy, rig.groups, chase.DefaultFootprintParams(), func() {
			rig.tb.SetTraffic(netmodel.NewConstantSource(wire, 128, 200_000, rig.tb.Clock().Now(), -1))
		})
		truthSets := map[int]bool{}
		for _, s := range rig.tb.NIC().RingAlignedSets(rig.ccfg) {
			truthSets[s] = true
		}
		canon := rig.canonical()
		hits := 0
		found := map[int]bool{}
		for _, g := range fp.ActiveGroups {
			if truthSets[canon[g]] {
				hits++
				found[canon[g]] = true
			}
		}
		prec := 0.0
		if len(fp.ActiveGroups) > 0 {
			prec = float64(hits) / float64(len(fp.ActiveGroups))
		}
		precs = append(precs, prec)
		recalls = append(recalls, float64(len(found))/float64(len(truthSets)))
		flagged = append(flagged, float64(len(fp.ActiveGroups)))
	}
	res := Result{
		ID:     "sens_ring_detect",
		Title:  "footprint detection vs rx ring size",
		Header: []string{"ring size", "precision", "recall", "flagged groups"},
	}
	ring, _ := cell.Value(scenario.AxisRingSize)
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("%.0f", ring), pct(stats.Summarize(precs).Mean),
		pct(stats.Summarize(recalls).Mean), f1(stats.Summarize(flagged).Mean),
	})
	res.AddMetric("precision", "fraction", stats.Summarize(precs).Mean)
	res.AddMetric("recall", "fraction", stats.Summarize(recalls).Mean)
	res.AddMetric("flagged_groups", "groups", stats.Summarize(flagged).Mean)
	return res, nil
}
