package experiments

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/covert"
	"repro/internal/netmodel"
	"repro/internal/probe"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Sweep is a parameter-sweep experiment: a grid of scenario axes and a
// measurement run per grid cell. Where the registry experiments reproduce
// single figures, sweeps produce the paper's §VI-style sensitivity curves
// — how attack quality degrades as the environment worsens. The runner
// fans cells out over its worker pool (runner.RunSweep) with decorrelated
// per-cell seeds and aggregates per-cell metrics across trials.
//
// Sweeps are phase-split like experiments (see artifact.go): Prepare
// builds the cell's offline machines under the reference environment
// (scenario.Spec.Offline), Measure applies the cell's swept conditions to
// clones and measures. Because the offline phase depends only on machine
// geometry, every cell whose swept axes are online-only (noise rate,
// timer jitter, traffic) shares one prepared artifact across the whole
// grid — and across all trials — in a warm run.
type Sweep struct {
	ID    string
	Short string
	Grid  scenario.Grid
	Run   func(scale Scale, seed int64, cell scenario.Cell) (Result, error)
	// Prepare and Measure, when both non-nil, are the phase-split form:
	// Run(scale, seed, cell) is exactly Prepare followed by Measure with
	// the same seed.
	Prepare func(ctx PrepareCtx, cell scenario.Cell) (*Artifact, error)
	Measure func(ctx MeasureCtx, art *Artifact, cell scenario.Cell) (Result, error)
}

// Phased reports whether the sweep supports the phase-split API.
func (s Sweep) Phased() bool { return s.Prepare != nil && s.Measure != nil }

// phasedSweep registers a phase-split sweep, deriving its Run form.
func phasedSweep(id, short string, grid scenario.Grid,
	p func(ctx PrepareCtx, cell scenario.Cell) (*Artifact, error),
	m func(ctx MeasureCtx, art *Artifact, cell scenario.Cell) (Result, error)) Sweep {
	return Sweep{
		ID: id, Short: short, Grid: grid,
		Run: func(scale Scale, seed int64, cell scenario.Cell) (Result, error) {
			art, err := p(PrepareCtx{Scale: scale, Seed: seed}, cell)
			if err != nil {
				return Result{}, err
			}
			return m(MeasureCtx{Scale: scale, Seed: seed}, art, cell)
		},
		Prepare: p, Measure: m,
	}
}

// Sweeps returns the sensitivity-study registry.
func Sweeps() []Sweep {
	return []Sweep{
		phasedSweep(
			"sens_chase_noise",
			"chase accuracy vs background cache noise",
			// The top value sits where classification has collapsed but the
			// two-class accuracy floor (~0.5) is not yet dominant: past
			// ~10M accesses/s the curve saturates and stops being a
			// sensitivity measurement.
			scenario.Grid{
				{Name: scenario.AxisNoiseRate, Values: []float64{20_000, 500_000, 2_000_000, 8_000_000}},
			},
			prepareSweepRigs, MeasureSensChaseNoise,
		),
		phasedSweep(
			"sens_chase_traffic",
			"chase accuracy vs competing background traffic",
			scenario.Grid{
				{Name: "bg_rate", Values: []float64{0, 5_000, 20_000, 50_000}},
			},
			prepareSweepRigs, MeasureSensChaseTraffic,
		),
		phasedSweep(
			"sens_covert_timer",
			"covert-channel symbol error vs timer granularity",
			// The offline phase (eviction sets, calibration) runs under the
			// reference timer, so the axis can extend past the ~100-cycle
			// point where a coarse timer used to break eviction-set
			// construction itself: only the online decode faces the jitter.
			scenario.Grid{
				{Name: scenario.AxisTimerNoise, Values: []float64{0, 4, 16, 32, 64, 128}},
			},
			prepareSweepRigs, MeasureSensCovertTimer,
		),
		phasedSweep(
			"sens_ring_detect",
			"footprint detection quality vs rx ring size",
			scenario.Grid{
				{Name: scenario.AxisRingSize, Values: []float64{16, 32, 64, 128}},
			},
			prepareSweepRigs, MeasureSensRingDetect,
		),
		phasedSweep(
			"sens_chase_defense",
			"chase accuracy vs platform defense",
			// The defense axis is categorical: registry indices with name
			// labels, so cell keys read "defense=adaptive-partition".
			// Every cell has a distinct machine (the defense reshapes it),
			// so a warm run prepares one artifact per defense rather than
			// one for the grid — the defense tag keys them apart even for
			// timer coarsening, which is invisible to the machine
			// fingerprint.
			scenario.Grid{scenario.DefenseAxis()},
			prepareSweepRigs, MeasureSensChaseDefense,
		),
		phasedSweep(
			"sens_defense_noise",
			"chase accuracy vs defense x background noise (amplified attacker)",
			// The first multi-axis defense grid: a categorical defense
			// axis crossed with the ambient-noise axis, measured with the
			// strongest known (amplified) attacker. Noise is online-only,
			// so a warm run prepares one set of machines per defense and
			// shares them across the whole noise row.
			scenario.Grid{
				scenario.DefenseAxis("none", "no-ddio", "timer-coarse-64", "adaptive-partition"),
				{Name: scenario.AxisNoiseRate, Values: []float64{20_000, 2_000_000, 8_000_000}},
			},
			prepareAmplifiedSweepRigs, MeasureSensDefenseNoise,
		),
	}
}

// SweepByID returns the sweep with the given id.
func SweepByID(id string) (Sweep, bool) {
	for _, s := range Sweeps() {
		if s.ID == id {
			return s, true
		}
	}
	return Sweep{}, false
}

// sensReps is the number of independent machines averaged per sweep cell.
// Sensitivity curves compare adjacent cells, so per-cell variance must sit
// well below the axis effect; averaging a few decorrelated repetitions
// keeps demo-scale curves stable without paper-scale run times.
const sensReps = 3

// repLabel names the per-repetition rig inside a sweep artifact.
func repLabel(r int) string { return fmt.Sprintf("rep%d", r) }

// cellSpec is the scenario a cell measures under: the baseline with the
// cell's well-known axes applied.
func cellSpec(scale Scale, cell scenario.Cell) scenario.Spec {
	return baselineSpec(scale).WithCell(cell)
}

// prepareSweepRigs is the shared offline phase of every sensitivity
// sweep: sensReps machines of the cell's geometry, built under the
// reference environment (scenario.Spec.Offline) by the fine-timer
// attacker. Cells that differ only on online axes produce identical
// machine shapes and seeds, so a warm runner prepares the whole grid's
// machines exactly once.
func prepareSweepRigs(ctx PrepareCtx, cell scenario.Cell) (*Artifact, error) {
	return prepareSweepRigsStrategy(ctx, cell, probe.DefaultStrategy())
}

// prepareSweepRigsStrategy is the one offline-preparation recipe behind
// both attacker flavours; the strategy joins the artifact content
// address, so fine-timer and amplified machines never collide.
func prepareSweepRigsStrategy(ctx PrepareCtx, cell scenario.Cell, strat probe.Strategy) (*Artifact, error) {
	// Validate the cell's full measurement spec — environment and flows
	// included — before deriving the offline view, so a malformed cell
	// (negative noise rate, bad flow palette) fails fast here rather than
	// silently measuring under a normalized environment.
	full := cellSpec(ctx.Scale, cell)
	if err := full.Validate(); err != nil {
		return nil, err
	}
	spec := full.Offline()
	art := ctx.NewArtifact()
	for r := 0; r < sensReps; r++ {
		// AddSpecRigStrategy derives the defense tag from the spec, so
		// machines are keyed per mitigation even when the mitigation is
		// invisible to the option fingerprint (timer coarsening): clones
		// must never cross a defense boundary.
		if err := ctx.AddSpecRigStrategy(art, repLabel(r), spec, sim.DeriveSeed(ctx.Seed, repLabel(r)), strat); err != nil {
			return nil, err
		}
	}
	return art, nil
}

// prepareAmplifiedSweepRigs is prepareSweepRigs with the amplified
// coarse-timer attacker (probe.AmplifiedStrategy) running the offline
// phase.
func prepareAmplifiedSweepRigs(ctx PrepareCtx, cell scenario.Cell) (*Artifact, error) {
	return prepareSweepRigsStrategy(ctx, cell, probe.AmplifiedStrategy())
}

// sweepClone cuts one repetition's machine from the artifact and applies
// the cell's online environment (noise rate, timer jitter, with any
// defense overrides) to it.
func sweepClone(art *Artifact, r int, ctx MeasureCtx, spec scenario.Spec) (*attackRig, error) {
	rig, err := art.rig(repLabel(r), ctx)
	if err != nil {
		return nil, err
	}
	noise, timer := spec.OnlineEnv()
	rig.tb.SetNoiseRate(noise)
	rig.tb.SetTimerNoise(timer)
	return rig, nil
}

// chaseOutcome scores one chase run: accuracy, sync losses, the
// normalized edit-operation decomposition of the observed stream against
// the sent stream (per sent symbol), the per-class confusion split, and
// whether the chaser's monitors reported healthy calibration (the
// calibration_ok metric — false means the accuracy is the accuracy of
// noise, not of a working attack).
type chaseOutcome struct {
	acc           float64
	outOfSync     float64
	ins, del, sub float64
	conf          map[int]chase.ClassConfusion
	calOK         bool
}

// chaseAccuracy runs one chase of a known alternating-size stream against
// the ground-truth ring and scores the observed size-class sequence: the
// paper's online-phase quality measure, 1 - Levenshtein/len(sent). The
// optional background source is mixed into the victim stream. The edit
// decomposition attributes the error mass: insertions are background
// packets (or pollution) read as victim symbols, deletions are victim
// packets the chase missed.
func chaseAccuracy(rig *attackRig, bg netmodel.Source, frames int) chaseOutcome {
	ring := rig.groundTruthRing()

	wire := netmodel.NewWire(netmodel.GigabitRate)
	sizes := make([]int, frames)
	sent := make([]int, frames)
	for i := range sizes {
		if i%2 == 0 {
			sizes[i] = netmodel.SizeForBlocks(4)
		} else {
			sizes[i] = netmodel.SizeForBlocks(1)
		}
		// Expected observed class: the driver's block-1 prefetch makes
		// 1-block packets read as class 2 (Fig 8's prefetch artifact).
		sent[i] = netmodel.Frame{Size: sizes[i]}.Blocks()
		if sent[i] < 2 {
			sent[i] = 2
		}
	}
	gaps := make([]uint64, frames)
	for i := range gaps {
		gaps[i] = 400_000
	}

	cfg := chase.DefaultChaserConfig()
	cfg.SyncTimeout = 2_000_000
	chaser := chase.NewChaser(rig.spy, rig.groups, ring, cfg)

	var src netmodel.Source = netmodel.NewTraceSource(wire, sizes, gaps, rig.tb.Clock().Now()+200_000)
	if bg != nil {
		src = netmodel.NewMixSource(src, bg)
	}
	rig.tb.SetTraffic(src)

	obs := chaser.Chase(frames)
	seen := chase.SizeTrace(obs)
	// One alignment feeds every derived metric: the edit distance (error
	// rate), its operation decomposition, and the per-class confusion.
	steps := stats.Align(sent, seen)
	ins, del, sub := stats.OpsFromSteps(steps)
	err := float64(ins+del+sub) / float64(len(sent))
	if err > 1 {
		err = 1
	}
	n := float64(len(sent))
	return chaseOutcome{
		acc:       1 - err,
		outOfSync: float64(chaser.OutOfSync),
		ins:       float64(ins) / n,
		del:       float64(del) / n,
		sub:       float64(sub) / n,
		conf:      chase.ConfusionFromSteps(sent, seen, steps),
		calOK:     chaser.CalibrationOK(),
	}
}

// boolMetric renders a health flag as a 0/1 metric value.
func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

// chaseFrames is the victim-stream length for defense-axis chase
// measurements: three full ring revolutions. The ring-randomization
// defenses only reallocate a descriptor's buffer after it has been used,
// so a single-revolution stream (the 64-frame measurement the
// environment sweeps use) can never observe them — every packet still
// lands on its offline-learned page. Three passes let the ring churn
// under the chaser the way a long-running victim would see it.
func chaseFrames(rig *attackRig) int {
	return 3 * rig.tb.Options().NIC.RingSize
}

// chaseClasses are the size classes the alternating chase stream sends
// (the driver prefetch lifts 1-block packets to class 2; see
// chaseAccuracy), in metric order.
var chaseClasses = []int{2, 4}

// MeasureSensChaseNoise measures online-chase accuracy as ambient cache
// noise rises — the curve behind the paper's claim that the chase
// tolerates a busy server. Accuracy is monotonically non-increasing in
// the noise rate at demo scale: each decade of background
// accesses/second converts more polls into false activity until
// classification collapses.
func MeasureSensChaseNoise(ctx MeasureCtx, art *Artifact, cell scenario.Cell) (Result, error) {
	spec := cellSpec(ctx.Scale, cell)
	var accs, syncs []float64
	tp := map[int][]float64{}
	fp := map[int][]float64{}
	for r := 0; r < sensReps; r++ {
		rig, err := sweepClone(art, r, ctx, spec)
		if err != nil {
			return Result{}, err
		}
		out := chaseAccuracy(rig, nil, 64)
		accs = append(accs, out.acc)
		syncs = append(syncs, out.outOfSync)
		for _, c := range chaseClasses {
			tp[c] = append(tp[c], out.conf[c].TruePosRate())
			fp[c] = append(fp[c], out.conf[c].FalsePosRate())
		}
	}
	accSum := stats.Summarize(accs)
	header := []string{"noise (accesses/s)", "accuracy", "out-of-sync"}
	for _, c := range chaseClasses {
		header = append(header, fmt.Sprintf("c%d tp/fp", c))
	}
	res := Result{
		ID:     "sens_chase_noise",
		Title:  "chase accuracy vs background cache noise",
		Header: header,
	}
	noise, _ := cell.Value(scenario.AxisNoiseRate)
	row := []string{
		fmt.Sprintf("%.0f", noise), pct(accSum.Mean), f1(stats.Summarize(syncs).Mean),
	}
	for _, c := range chaseClasses {
		row = append(row, fmt.Sprintf("%s/%s",
			f2(stats.Summarize(tp[c]).Mean), f2(stats.Summarize(fp[c]).Mean)))
	}
	res.Rows = append(res.Rows, row)
	res.AddMetric("chase_accuracy", "fraction", accSum.Mean)
	res.AddMetric("out_of_sync", "events", stats.Summarize(syncs).Mean)
	// Per-class confusion extends the curve past the two-class accuracy
	// floor (~0.5): once classification collapses, accuracy saturates but
	// true positives keep falling and false positives keep growing with
	// insertion pressure.
	for _, c := range chaseClasses {
		res.AddMetric(fmt.Sprintf("class%d_true_pos", c), "per-sent-symbol", stats.Summarize(tp[c]).Mean)
		res.AddMetric(fmt.Sprintf("class%d_false_pos", c), "per-sent-symbol", stats.Summarize(fp[c]).Mean)
	}
	return res, nil
}

// MeasureSensChaseDefense measures online-chase accuracy under each
// platform defense — the leakage half of the paper's Table 2 / §VI-§VII
// discussion as a sweepable curve. The stock machine anchors the top;
// adaptive partitioning should push accuracy to the two-class chance
// floor (the spy no longer sees I/O evictions at all).
func MeasureSensChaseDefense(ctx MeasureCtx, art *Artifact, cell scenario.Cell) (Result, error) {
	spec := cellSpec(ctx.Scale, cell)
	var accs, syncs []float64
	for r := 0; r < sensReps; r++ {
		rig, err := sweepClone(art, r, ctx, spec)
		if err != nil {
			return Result{}, err
		}
		out := chaseAccuracy(rig, nil, chaseFrames(rig))
		accs = append(accs, out.acc)
		syncs = append(syncs, out.outOfSync)
	}
	name, _ := cell.Label(scenario.AxisDefense)
	res := Result{
		ID:     "sens_chase_defense",
		Title:  "chase accuracy vs platform defense",
		Header: []string{"defense", "accuracy", "out-of-sync"},
	}
	res.Rows = append(res.Rows, []string{
		name, pct(stats.Summarize(accs).Mean), f1(stats.Summarize(syncs).Mean),
	})
	res.AddMetric("chase_accuracy", "fraction", stats.Summarize(accs).Mean)
	res.AddMetric("out_of_sync", "events", stats.Summarize(syncs).Mean)
	return res, nil
}

// MeasureSensDefenseNoise measures online-chase accuracy over the crossed
// defense x noise grid with the amplified attacker: the defense half of
// the paper's §VI discussion evaluated in the environments a real server
// actually runs in, against the strongest known attack. The cell spec's
// OnlineEnv applies both the swept noise rate and the defense's own
// online overrides (a timer-coarsening defense keeps its coarse timer on
// the clones), and the calibration_ok metric separates "defense erased
// the signal" from "attacker went blind".
func MeasureSensDefenseNoise(ctx MeasureCtx, art *Artifact, cell scenario.Cell) (Result, error) {
	spec := cellSpec(ctx.Scale, cell)
	var accs, syncs, cals []float64
	for r := 0; r < sensReps; r++ {
		rig, err := sweepClone(art, r, ctx, spec)
		if err != nil {
			return Result{}, err
		}
		out := chaseAccuracy(rig, nil, chaseFrames(rig))
		accs = append(accs, out.acc)
		syncs = append(syncs, out.outOfSync)
		cals = append(cals, boolMetric(out.calOK))
	}
	name, _ := cell.Label(scenario.AxisDefense)
	noise, _ := cell.Value(scenario.AxisNoiseRate)
	res := Result{
		ID:     "sens_defense_noise",
		Title:  "chase accuracy vs defense x background noise (amplified attacker)",
		Header: []string{"defense", "noise (accesses/s)", "accuracy", "out-of-sync", "calibration ok"},
	}
	res.Rows = append(res.Rows, []string{
		name, fmt.Sprintf("%.0f", noise), pct(stats.Summarize(accs).Mean),
		f1(stats.Summarize(syncs).Mean), f2(stats.Summarize(cals).Mean),
	})
	res.AddMetric("chase_accuracy", "fraction", stats.Summarize(accs).Mean)
	res.AddMetric("out_of_sync", "events", stats.Summarize(syncs).Mean)
	res.AddMetric("calibration_ok", "fraction", stats.Summarize(cals).Mean)
	return res, nil
}

// MeasureSensChaseTraffic measures chase accuracy against competing
// background traffic: Poisson flows of ordinary kernel-bound packets
// share the rx ring with the victim stream, so the chaser's expected
// buffer fills with the wrong packets as the background rate grows. The
// insertion/deletion decomposition attributes the degradation: a rising
// insertion rate means background packets are being read as victim
// symbols (metric saturation), a rising deletion rate means victim
// packets are being crowded out of the monitored window.
func MeasureSensChaseTraffic(ctx MeasureCtx, art *Artifact, cell scenario.Cell) (Result, error) {
	spec := cellSpec(ctx.Scale, cell)
	rate, _ := cell.Value("bg_rate")
	if rate > 0 {
		spec.Flows = []scenario.Flow{
			{Kind: scenario.FlowPoisson, Sizes: []int{64, 128, 256}, Rate: rate, Count: -1},
		}
	}
	var accs, syncs, inss, dels, subs []float64
	for r := 0; r < sensReps; r++ {
		rig, err := sweepClone(art, r, ctx, spec)
		if err != nil {
			return Result{}, err
		}
		var bg netmodel.Source
		if rate > 0 {
			repSeed := sim.DeriveSeed(ctx.Seed, repLabel(r))
			bg = spec.BuildTraffic(repSeed, rig.tb.Clock().Now())
		}
		out := chaseAccuracy(rig, bg, 64)
		accs = append(accs, out.acc)
		syncs = append(syncs, out.outOfSync)
		inss = append(inss, out.ins)
		dels = append(dels, out.del)
		subs = append(subs, out.sub)
	}
	res := Result{
		ID:     "sens_chase_traffic",
		Title:  "chase accuracy vs competing background traffic",
		Header: []string{"bg rate (pps)", "accuracy", "out-of-sync", "ins", "del", "sub"},
	}
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("%.0f", rate), pct(stats.Summarize(accs).Mean), f1(stats.Summarize(syncs).Mean),
		f2(stats.Summarize(inss).Mean), f2(stats.Summarize(dels).Mean), f2(stats.Summarize(subs).Mean),
	})
	res.AddMetric("chase_accuracy", "fraction", stats.Summarize(accs).Mean)
	res.AddMetric("out_of_sync", "events", stats.Summarize(syncs).Mean)
	res.AddMetric("insertion_rate", "per-sent-symbol", stats.Summarize(inss).Mean)
	res.AddMetric("deletion_rate", "per-sent-symbol", stats.Summarize(dels).Mean)
	res.AddMetric("substitution_rate", "per-sent-symbol", stats.Summarize(subs).Mean)
	return res, nil
}

// MeasureSensCovertTimer measures single-buffer covert-channel symbol
// error as the spy's timer gets coarser: jitter first blurs, then swamps,
// the ~160-cycle hit/miss edge the decoder keys on. The offline phase ran
// under the reference timer, so what degrades here is purely the online
// decode — the attack's calibration is as good as it ever gets.
func MeasureSensCovertTimer(ctx MeasureCtx, art *Artifact, cell scenario.Cell) (Result, error) {
	spec := cellSpec(ctx.Scale, cell)
	nSymbols := 120
	if ctx.Scale == Paper {
		nSymbols = 300
	}
	var errs, bws []float64
	for r := 0; r < sensReps; r++ {
		rig, err := sweepClone(art, r, ctx, spec)
		if err != nil {
			return Result{}, err
		}
		ring := rig.groundTruthRing()
		gid, ok := covert.ChooseIsolatedBuffer(ring)
		if !ok {
			return Result{}, fmt.Errorf("sens_covert_timer: no isolated buffer in ring")
		}
		symbols := stats.NewLFSR15(uint16(ctx.Seed%0x7fff)|1).Symbols(nSymbols, covert.Ternary.Base())
		r0, err := covert.RunSingleBuffer(rig.spy, rig.groups[gid], symbols, covert.Ternary, len(ring), 16_500)
		if err != nil {
			return Result{}, err
		}
		errs = append(errs, r0.ErrorRate)
		bws = append(bws, r0.Bandwidth)
	}
	res := Result{
		ID:     "sens_covert_timer",
		Title:  "covert-channel symbol error vs timer jitter",
		Header: []string{"timer jitter (cycles)", "symbol error", "bandwidth (bps)"},
	}
	jitter, _ := cell.Value(scenario.AxisTimerNoise)
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("%.0f", jitter), pct(stats.Summarize(errs).Mean),
		fmt.Sprintf("%.0f", stats.Summarize(bws).Mean),
	})
	res.AddMetric("symbol_error", "fraction", stats.Summarize(errs).Mean)
	res.AddMetric("bandwidth", "bps", stats.Summarize(bws).Mean)
	return res, nil
}

// MeasureSensRingDetect measures footprint-discovery quality as the
// driver's descriptor ring grows (§VI-c floats growing the ring as a
// mitigation): precision of the flagged groups and recall of the
// buffer-hosting sets. The ring size is offline-relevant geometry, so
// each cell prepares (and a warm runner caches) its own machines.
func MeasureSensRingDetect(ctx MeasureCtx, art *Artifact, cell scenario.Cell) (Result, error) {
	spec := cellSpec(ctx.Scale, cell)
	var precs, recalls, flagged []float64
	for r := 0; r < sensReps; r++ {
		rig, err := sweepClone(art, r, ctx, spec)
		if err != nil {
			return Result{}, err
		}
		wire := netmodel.NewWire(netmodel.GigabitRate)
		fp := chase.RecoverFootprint(rig.spy, rig.groups, chase.DefaultFootprintParams(), func() {
			rig.tb.SetTraffic(netmodel.NewConstantSource(wire, 128, 200_000, rig.tb.Clock().Now(), -1))
		})
		truthSets := map[int]bool{}
		for _, s := range rig.tb.NIC().RingAlignedSets(rig.ccfg) {
			truthSets[s] = true
		}
		canon := rig.canonical()
		hits := 0
		found := map[int]bool{}
		for _, g := range fp.ActiveGroups {
			if truthSets[canon[g]] {
				hits++
				found[canon[g]] = true
			}
		}
		prec := 0.0
		if len(fp.ActiveGroups) > 0 {
			prec = float64(hits) / float64(len(fp.ActiveGroups))
		}
		precs = append(precs, prec)
		recalls = append(recalls, float64(len(found))/float64(len(truthSets)))
		flagged = append(flagged, float64(len(fp.ActiveGroups)))
	}
	res := Result{
		ID:     "sens_ring_detect",
		Title:  "footprint detection vs rx ring size",
		Header: []string{"ring size", "precision", "recall", "flagged groups"},
	}
	ring, _ := cell.Value(scenario.AxisRingSize)
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("%.0f", ring), pct(stats.Summarize(precs).Mean),
		pct(stats.Summarize(recalls).Mean), f1(stats.Summarize(flagged).Mean),
	})
	res.AddMetric("precision", "fraction", stats.Summarize(precs).Mean)
	res.AddMetric("recall", "fraction", stats.Summarize(recalls).Mean)
	res.AddMetric("flagged_groups", "groups", stats.Summarize(flagged).Mean)
	return res, nil
}
