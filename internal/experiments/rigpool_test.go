package experiments

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/defense"
	"repro/internal/probe"
	"repro/internal/scenario"
)

// driveState runs a fixed, deterministic interaction on a freshly cloned
// rig and serializes everything it touched: the restored machine state
// (clock, cache/NIC counters, calibration, eviction sets) and the observed
// behavior of a short probe-and-idle schedule, which exercises the cache
// contents, the timer RNG (Touch reads the noisy timer), the noise RNG and
// noise cursor (Idle syncs the world), and the driver. Two rigs with equal
// driveState are operationally indistinguishable — the equality the pool's
// adopt-in-place path is held to.
func driveState(r *attackRig) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "clock=%d cache=%+v nic=%+v hit=%d miss=%d cal=%v spread=%d k=%d",
		r.tb.Clock().Now(), r.tb.Cache().Stats(), r.tb.NIC().Stats(),
		r.spy.HitLatency(), r.spy.MissLatency(), r.spy.Calibrated(),
		r.spy.NoiseSpread(), r.spy.AmplificationFactor())
	for _, g := range r.groups {
		fmt.Fprintf(&sb, "|%d:%v:%v", g.ID, g.Lines, g.Members)
	}
	for gi, g := range r.groups {
		if gi == 4 {
			break
		}
		for _, a := range g.Lines {
			fmt.Fprintf(&sb, " %d", r.spy.Touch(a))
		}
		r.tb.Idle(50_000)
	}
	fmt.Fprintf(&sb, "|after clock=%d cache=%+v nic=%+v",
		r.tb.Clock().Now(), r.tb.Cache().Stats(), r.tb.NIC().Stats())
	return sb.String()
}

// poison leaves a rig the way an interrupted, partially executed Measure
// would: clock advanced, cache and NIC state churned, RNG streams moved,
// and — the part only buffer-copy bugs would miss — the eviction-set
// slices themselves scribbled over.
func poison(r *attackRig) {
	for i := 0; i < 500; i++ {
		r.spy.Touch(r.spy.PageBase(i%r.spy.Pages()) + uint64(i%64)*64)
	}
	r.tb.Idle(2_000_000)
	for gi := range r.groups {
		for li := range r.groups[gi].Lines {
			r.groups[gi].Lines[li] = 0xdeadbeef
		}
		r.groups[gi].Members = r.groups[gi].Members[:0]
	}
}

// dirtyReuseSpecs are the machine variants the reuse property is checked
// across: the undefended baseline plus one defense from each reuse-relevant
// class — timer coarsening (same geometry key as the baseline, so the pool
// WILL share rigs across the defense boundary and the snapshot must carry
// everything), adaptive partitioning and DDIO-off (different geometry keys,
// exercising multiple keys in one pool).
func dirtyReuseSpecs(scale Scale) map[string]scenario.Spec {
	base := baselineSpec(scale)
	return map[string]scenario.Spec{
		"baseline":     base,
		"timer-coarse": base.WithDefense(defense.TimerCoarsening{Jitter: 64}),
		"partition":    base.WithDefense(defense.AdaptivePartitioning{}),
		"no-ddio":      base.WithDefense(defense.DisableDDIO{}),
	}
}

// TestRigPoolDirtyReuseMatchesFresh: a pooled rig poisoned by a partial
// Measure must, on its next lease, behave identically to a fresh clone of
// the same artifact — across defenses, attacker strategies, and seeds.
// This is the pool's correctness contract: adoption overwrites every
// mutable field, so no trace of the previous trial (or its crash) leaks
// into the next one.
func TestRigPoolDirtyReuseMatchesFresh(t *testing.T) {
	strategies := map[string]probe.Strategy{
		"fine":      probe.DefaultStrategy(),
		"amplified": probe.AmplifiedStrategy(),
	}
	for specName, spec := range dirtyReuseSpecs(Demo) {
		for stratName, strat := range strategies {
			for _, seed := range []int64{3, 11} {
				name := fmt.Sprintf("%s/%s/seed%d", specName, stratName, seed)
				t.Run(name, func(t *testing.T) {
					ctx := PrepareCtx{Scale: Demo, Seed: seed}
					art := ctx.NewArtifact()
					if err := ctx.AddSpecRigStrategy(art, "rig", spec, seed, strat); err != nil {
						t.Fatal(err)
					}
					// Measure seed != root: the reseeded warm-trial path.
					m := MeasureCtx{Scale: Demo, Seed: seed + 1}
					fresh, err := art.rig("rig", m)
					if err != nil {
						t.Fatal(err)
					}
					want := driveState(fresh)

					lease := NewRigPool().Lease()
					mp := m
					mp.Rigs = lease
					victim, err := art.rig("rig", mp)
					if err != nil {
						t.Fatal(err)
					}
					poison(victim)
					lease.Release()
					reused, err := art.rig("rig", mp)
					if err != nil {
						t.Fatal(err)
					}
					if reused != victim {
						t.Fatal("pool did not hand back the poisoned rig")
					}
					if got := driveState(reused); got != want {
						t.Errorf("reused rig diverged from fresh clone:\nfresh:  %s\nreused: %s", want, got)
					}
					lease.Release()

					// The non-reseeded path (measure seed == root, the
					// single-shot Run identity) must survive reuse too.
					m0 := MeasureCtx{Scale: Demo, Seed: seed}
					f0, err := art.rig("rig", m0)
					if err != nil {
						t.Fatal(err)
					}
					want0 := driveState(f0)
					m0.Rigs = lease
					r0, err := art.rig("rig", m0)
					if err != nil {
						t.Fatal(err)
					}
					if got0 := driveState(r0); got0 != want0 {
						t.Errorf("non-reseeded reuse diverged:\nfresh:  %s\nreused: %s", want0, got0)
					}
					lease.Release()
				})
			}
		}
	}
}

// TestRigPoolCrossArtifactReuse: two artifacts with equal geometry but
// different seeds (distinct machines, same OfflineFingerprint) must share
// pooled rigs, and a rig that last served artifact A must serve artifact B
// exactly like B's own fresh clone. This is the cross-defense shell-reuse
// guarantee the fingerprint key provides.
func TestRigPoolCrossArtifactReuse(t *testing.T) {
	ctxA := PrepareCtx{Scale: Demo, Seed: 3}
	artA, err := PrepareFig10(ctxA)
	if err != nil {
		t.Fatal(err)
	}
	ctxB := PrepareCtx{Scale: Demo, Seed: 4}
	artB, err := PrepareFig10(ctxB)
	if err != nil {
		t.Fatal(err)
	}
	mB := MeasureCtx{Scale: Demo, Seed: 9}
	freshB, err := artB.rig("rig", mB)
	if err != nil {
		t.Fatal(err)
	}
	want := driveState(freshB)

	lease := NewRigPool().Lease()
	mA := MeasureCtx{Scale: Demo, Seed: 9, Rigs: lease}
	rigA, err := artA.rig("rig", mA)
	if err != nil {
		t.Fatal(err)
	}
	poison(rigA)
	lease.Release()
	mB.Rigs = lease
	reused, err := artB.rig("rig", mB)
	if err != nil {
		t.Fatal(err)
	}
	if reused != rigA {
		t.Fatal("equal-geometry artifacts must share pooled rigs")
	}
	if got := driveState(reused); got != want {
		t.Errorf("cross-artifact reuse diverged from B's fresh clone:\nfresh:  %s\nreused: %s", want, got)
	}
}

// TestRigPoolSharedConcurrentStress: one pool shared by many goroutines,
// each leasing, driving, poisoning, and releasing rigs of two geometries
// concurrently. Every drive must reproduce the single-threaded reference
// bytes, and the -race build must observe no data race — the pool is
// documented mutex-safe even though the runner shards it per worker.
func TestRigPoolSharedConcurrentStress(t *testing.T) {
	ctx := PrepareCtx{Scale: Demo, Seed: 5}
	art := ctx.NewArtifact()
	base := baselineSpec(Demo)
	if err := ctx.AddSpecRig(art, "a", base, 5); err != nil {
		t.Fatal(err)
	}
	if err := ctx.AddSpecRig(art, "b", base.WithDefense(defense.DisableDDIO{}), 5); err != nil {
		t.Fatal(err)
	}
	m := MeasureCtx{Scale: Demo, Seed: 6}
	want := map[string]string{}
	for _, label := range []string{"a", "b"} {
		r, err := art.rig(label, m)
		if err != nil {
			t.Fatal(err)
		}
		want[label] = driveState(r)
	}

	pool := NewRigPool()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lease := pool.Lease()
			mc := m
			mc.Rigs = lease
			for i := 0; i < 6; i++ {
				label := []string{"a", "b"}[(w+i)%2]
				r, err := art.rig(label, mc)
				if err != nil {
					errs <- err
					return
				}
				if got := driveState(r); got != want[label] {
					errs <- fmt.Errorf("worker %d iter %d: rig %q diverged under shared pool", w, i, label)
					return
				}
				poison(r)
				lease.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRigLeaseSteadyStateZeroAlloc pins the tentpole's headline number:
// once a worker's pool is warm, leasing a rig for a trial — take, adopt
// (restore + reseed + spy rebind + eviction-set copy), track, release —
// performs zero heap allocations. Guarded from -race builds, whose
// instrumentation allocates.
func TestRigLeaseSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	ctx := PrepareCtx{Scale: Demo, Seed: 7}
	art, err := PrepareFig10(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lease := NewRigPool().Lease()
	// Reseeded path: the steady state of every warm trial after the first.
	m := MeasureCtx{Scale: Demo, Seed: 8, Rigs: lease}
	for i := 0; i < 3; i++ { // grow every reused buffer to size
		if _, err := art.rig("rig", m); err != nil {
			t.Fatal(err)
		}
		lease.Release()
	}
	allocs := testing.AllocsPerRun(50, func() {
		r, err := art.rig("rig", m)
		if err != nil {
			t.Fatal(err)
		}
		_ = r
		lease.Release()
	})
	if allocs != 0 {
		t.Errorf("steady-state rig lease = %v allocs/trial, want 0", allocs)
	}

	// The non-reseeded lease (measure seed == root) must hold the same bar.
	m0 := MeasureCtx{Scale: Demo, Seed: 7, Rigs: lease}
	for i := 0; i < 3; i++ {
		if _, err := art.rig("rig", m0); err != nil {
			t.Fatal(err)
		}
		lease.Release()
	}
	allocs = testing.AllocsPerRun(50, func() {
		if _, err := art.rig("rig", m0); err != nil {
			t.Fatal(err)
		}
		lease.Release()
	})
	if allocs != 0 {
		t.Errorf("steady-state non-reseeded rig lease = %v allocs/trial, want 0", allocs)
	}
}

// TestRigPoolCapBounds: the per-key idle cap drops rigs instead of growing
// without bound.
func TestRigPoolCapBounds(t *testing.T) {
	pool := NewRigPool()
	for i := 0; i < maxIdlePerKey+5; i++ {
		pool.put(&attackRig{poolKey: "k"})
	}
	if n := len(pool.idle["k"]); n != maxIdlePerKey {
		t.Fatalf("idle rigs = %d, want cap %d", n, maxIdlePerKey)
	}
	// Untracked rigs (poolKey unset) are never pooled.
	pool.put(&attackRig{})
	if n := len(pool.idle[""]); n != 0 {
		t.Fatalf("rig with empty key pooled: %d", n)
	}
}
