package experiments

import "testing"

// The clone-path benchmarks measure what one warm trial pays to get a
// measurable machine out of a prepared artifact — the per-trial setup cost
// the rig pool exists to kill. Pooled vs fresh is the before/after of the
// same operation: BenchmarkRigCloneFresh builds a shell and restores into
// it (the historical per-trial path), BenchmarkRigLeasePooled adopts a
// recycled rig in place. Both run the reseeded variant, the steady state
// of every warm trial after the first.

func benchArtifact(b *testing.B) *Artifact {
	b.Helper()
	art, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return art
}

func BenchmarkRigLeasePooled(b *testing.B) {
	art := benchArtifact(b)
	lease := NewRigPool().Lease()
	m := MeasureCtx{Scale: Demo, Seed: 2, Rigs: lease}
	for i := 0; i < 3; i++ { // grow the pooled buffers to steady state
		if _, err := art.rig("rig", m); err != nil {
			b.Fatal(err)
		}
		lease.Release()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := art.rig("rig", m); err != nil {
			b.Fatal(err)
		}
		lease.Release()
	}
}

func BenchmarkRigCloneFresh(b *testing.B) {
	art := benchArtifact(b)
	m := MeasureCtx{Scale: Demo, Seed: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := art.rig("rig", m); err != nil {
			b.Fatal(err)
		}
	}
}
