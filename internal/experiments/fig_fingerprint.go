package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fingerprint"
	"repro/internal/sim"
	"repro/internal/webtrace"
)

// PrepareFig13 builds the login-fingerprint machine. Both login traces
// measure on clones of the same machine (they always ran on machines with
// identical seeds).
func PrepareFig13(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	if err := ctx.AddRig(art, "rig", machineOptions(ctx.Scale, ctx.Seed)); err != nil {
		return nil, err
	}
	return art, nil
}

// MeasureFig13 captures the hotcrp login fingerprints: the true
// packet-size classes of a successful and a failed login versus what the
// chaser recovers for the first 100 packets.
func MeasureFig13(ctx MeasureCtx, art *Artifact) (Result, error) {
	res := Result{
		ID:     "fig13",
		Title:  "hotcrp login traces: true vs recovered size classes (first 100 packets)",
		Header: []string{"trace", "classes (1..4, 4 = 4+)"},
	}
	for _, site := range []webtrace.Site{webtrace.HotCRPLoginSuccess(), webtrace.HotCRPLoginFailure()} {
		rig, ring, err := covertClone(art, "rig", ctx)
		if err != nil {
			return Result{}, err
		}
		atk := &fingerprint.Attack{Spy: rig.spy, Groups: rig.groups, Ring: ring, TraceLen: 100}
		tr := site.Generate(sim.Derive(ctx.Seed, site.Name), webtrace.DefaultNoise())
		classes, _ := atk.Observe(tr)
		truth := tr.SizeClasses(4)
		if len(truth) > 100 {
			truth = truth[:100]
		}
		res.Rows = append(res.Rows,
			[]string{site.Name + " (true)", classString(truth)},
			[]string{site.Name + " (recovered)", classString(classes)})
		res.AddMetric(slug(site.Name)+"_class_accuracy", "fraction", classAccuracy(truth, classes))
	}
	res.Notes = append(res.Notes,
		"paper shape: the successful login shows a long 4+ run (dashboard page); the failure is short and small")
	return res, nil
}

// fingerprintLabel names the per-configuration rig.
func fingerprintLabel(ddio bool) string {
	if ddio {
		return "ddio"
	}
	return "noddio"
}

// PrepareFingerprint builds the closed-world machines: one with DDIO on,
// one with it off — the offline machine shape differs, so the artifact
// store keys them separately.
func PrepareFingerprint(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	for _, ddio := range []bool{true, false} {
		opts := machineOptions(ctx.Scale, ctx.Seed)
		opts.Cache.DDIO = ddio
		if err := ctx.AddRig(art, fingerprintLabel(ddio), opts); err != nil {
			return nil, err
		}
	}
	return art, nil
}

// MeasureFingerprint runs the §V closed-world evaluation with DDIO on and
// off.
func MeasureFingerprint(ctx MeasureCtx, art *Artifact) (Result, error) {
	trials := 40
	if ctx.Scale == Paper {
		trials = 1000
	}
	res := Result{
		ID:     "fingerprint",
		Title:  fmt.Sprintf("closed-world fingerprinting accuracy (%d trials, 5 sites)", trials),
		Header: []string{"configuration", "accuracy", "paper"},
	}
	for _, ddio := range []bool{true, false} {
		rig, err := art.rig(fingerprintLabel(ddio), ctx)
		if err != nil {
			return Result{}, err
		}
		atk := &fingerprint.Attack{
			Spy: rig.spy, Groups: rig.groups, Ring: rig.groundTruthRing(), TraceLen: 100,
		}
		ev := fingerprint.EvaluateClosedWorld(atk, webtrace.ClosedWorld(), webtrace.DefaultNoise(), trials, sim.Derive(ctx.Seed, fmt.Sprint("fp", ddio)))
		name, paper := "with DDIO", "89.7%"
		if !ddio {
			name, paper = "without DDIO", "86.5%"
		}
		res.Rows = append(res.Rows, []string{name, pct(ev.Accuracy()), paper})
		res.AddMetric(slug(name)+"_accuracy", "fraction", ev.Accuracy())
	}
	res.Notes = append(res.Notes,
		"paper shape: high closed-world accuracy, slightly lower without DDIO (coarser, noisier size recovery)")
	return res, nil
}

// classAccuracy is the fraction of positions where the recovered size
// classes match the true trace, clamping 4+ to one class the way the
// figure renders it. Length mismatches count as errors against the longer
// sequence.
func classAccuracy(truth, recovered []int) float64 {
	clamp := func(c int) int {
		if c > 4 {
			return 4
		}
		return c
	}
	n := len(truth)
	if len(recovered) > n {
		n = len(recovered)
	}
	if n == 0 {
		return 0
	}
	match := 0
	for i := 0; i < len(truth) && i < len(recovered); i++ {
		if clamp(truth[i]) == clamp(recovered[i]) {
			match++
		}
	}
	return float64(match) / float64(n)
}

func classString(classes []int) string {
	var b strings.Builder
	for _, c := range classes {
		if c >= 4 {
			b.WriteByte('4')
		} else {
			fmt.Fprintf(&b, "%d", c)
		}
	}
	return b.String()
}
