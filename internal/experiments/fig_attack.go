package experiments

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Fig5 reproduces the buffer-to-set mapping of one driver instance: how
// many ring buffers land on each page-aligned cache set. The paper plots
// counts 0..5 over 256 sets; the headline features are the empty sets and
// the handful of sets hosting several buffers.
func Fig5(scale Scale, seed int64) (Result, error) {
	opts := machineOptions(scale, seed)
	tb, err := testbed.New(opts)
	if err != nil {
		return Result{}, err
	}
	ccfg := tb.Cache().Config()
	perSet := make(map[int]int)
	for _, s := range tb.NIC().RingAlignedSets(ccfg) {
		perSet[s]++
	}
	counts := stats.Histogram(func() []int {
		out := make([]int, 0, ccfg.AlignedSetCount())
		for i := 0; i < ccfg.AlignedSetCount(); i++ {
			out = append(out, perSet[i])
		}
		return out
	}())
	res := Result{
		ID:     "fig5",
		Title:  "ring buffers mapped per page-aligned cache set (one instance)",
		Header: []string{"buffers-in-set", "number-of-sets"},
	}
	maxBuf := 0
	for _, k := range sortedKeys(counts) {
		res.Rows = append(res.Rows, []string{fmt.Sprint(k), fmt.Sprint(counts[k])})
		if counts[k] > 0 && k > maxBuf {
			maxBuf = k
		}
	}
	res.AddMetric("ring_buffers", "buffers", float64(opts.NIC.RingSize))
	res.AddMetric("aligned_sets", "sets", float64(ccfg.AlignedSetCount()))
	res.AddMetric("empty_sets", "sets", float64(counts[0]))
	res.AddMetric("max_buffers_per_set", "buffers", float64(maxBuf))
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d ring buffers over %d page-aligned sets (paper: 256 over 256)",
			opts.NIC.RingSize, ccfg.AlignedSetCount()),
		"paper shape: a nonuniform spread, e.g. one set hosting 5 buffers while others host none")
	return res, nil
}

// Fig6 repeats the Fig5 measurement over many driver initializations: the
// paper reports ~35% of page-aligned sets host no buffer and >4 buffers is
// rare (5 in 1000 instances).
func Fig6(scale Scale, seed int64) (Result, error) {
	const instances = 1000
	opts := machineOptions(scale, seed)
	agg := map[int]int{}
	overFour := 0
	for inst := 0; inst < instances; inst++ {
		o := opts
		o.Seed = seed + int64(inst)*7919
		tb, err := testbed.New(o)
		if err != nil {
			return Result{}, err
		}
		ccfg := tb.Cache().Config()
		perSet := make(map[int]int)
		for _, s := range tb.NIC().RingAlignedSets(ccfg) {
			perSet[s]++
		}
		maxBuf := 0
		for i := 0; i < ccfg.AlignedSetCount(); i++ {
			agg[perSet[i]]++
			if perSet[i] > maxBuf {
				maxBuf = perSet[i]
			}
		}
		if maxBuf > 4 {
			overFour++
		}
	}
	res := Result{
		ID:     "fig6",
		Title:  fmt.Sprintf("buffers-per-set distribution over %d instances", instances),
		Header: []string{"buffers-in-set", "sets (total)", "fraction"},
	}
	total := 0
	for _, v := range agg {
		total += v
	}
	for _, k := range sortedKeys(agg) {
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(agg[k]), pct(float64(agg[k]) / float64(total)),
		})
	}
	res.AddMetric("empty_set_fraction", "fraction", float64(agg[0])/float64(total))
	res.AddMetric("instances_over_four_buffers", "instances", float64(overFour))
	res.AddMetric("instances", "instances", instances)
	res.Notes = append(res.Notes,
		fmt.Sprintf("instances with any set hosting >4 buffers: %d/%d (paper: 5/1000)", overFour, instances),
		fmt.Sprintf("empty-set fraction: %s (paper: ~35%%)", pct(float64(agg[0])/float64(total))))
	return res, nil
}

// PrepareFig7 builds the footprint-discovery machine: one baseline rig
// with its eviction sets.
func PrepareFig7(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	if err := ctx.AddRig(art, "rig", machineOptions(ctx.Scale, ctx.Seed)); err != nil {
		return nil, err
	}
	return art, nil
}

// MeasureFig7 measures page-aligned set activity with the machine idle
// versus receiving a broadcast stream — the footprint-discovery
// experiment (paper Fig 7).
func MeasureFig7(ctx MeasureCtx, art *Artifact) (Result, error) {
	rig, err := art.rig("rig", ctx)
	if err != nil {
		return Result{}, err
	}
	wire := netmodel.NewWire(netmodel.GigabitRate)
	params := chase.DefaultFootprintParams()
	fp := chase.RecoverFootprint(rig.spy, rig.groups, params, func() {
		rig.tb.SetTraffic(netmodel.NewConstantSource(wire, 128, 200_000, rig.tb.Clock().Now(), -1))
	})
	idleMean := chase.MeanRate(fp.IdleRate)
	busyMean := chase.MeanRate(fp.BusyRate)

	// Ground truth for the discovery-quality note.
	truthSets := map[int]bool{}
	for _, s := range rig.tb.NIC().RingAlignedSets(rig.ccfg) {
		truthSets[s] = true
	}
	canon := rig.canonical()
	hits := 0
	for _, g := range fp.ActiveGroups {
		if truthSets[canon[g]] {
			hits++
		}
	}
	res := Result{
		ID:     "fig7",
		Title:  "page-aligned set activity, idle vs receiving",
		Header: []string{"phase", "mean activity", "active groups"},
		Rows: [][]string{
			{"idle", pct(idleMean), "0"},
			{"receiving", pct(busyMean), fmt.Sprint(len(fp.ActiveGroups))},
		},
	}
	res.AddMetric("idle_activity", "fraction", idleMean)
	res.AddMetric("busy_activity", "fraction", busyMean)
	res.AddMetric("active_groups", "groups", float64(len(fp.ActiveGroups)))
	res.AddMetric("true_positive_groups", "groups", float64(hits))
	res.AddMetric("buffer_hosting_sets", "sets", float64(len(truthSets)))
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d/%d flagged groups host ring buffers; %d buffer-hosting sets exist",
			hits, len(fp.ActiveGroups), len(truthSets)),
		"paper shape: white columns appear on buffer sets while receiving; some sets stay dark (no buffer)")
	return res, nil
}

// PrepareFig8 builds one machine per streamed packet size (each stream
// runs on a fresh driver instance, like the paper's per-size runs).
func PrepareFig8(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	for blocks := 1; blocks <= 4; blocks++ {
		opts := machineOptions(ctx.Scale, ctx.Seed+int64(blocks))
		if err := ctx.AddRig(art, fmt.Sprintf("blocks%d", blocks), opts); err != nil {
			return nil, err
		}
	}
	return art, nil
}

// MeasureFig8 sends constant-size streams of 1..4 blocks and measures
// activity on the block-0..3 eviction sets: activity on the diagonal and
// above, plus the block-1 prefetch artifact for 1-block packets.
func MeasureFig8(ctx MeasureCtx, art *Artifact) (Result, error) {
	res := Result{
		ID:     "fig8",
		Title:  "mean activity on block-k sets vs packet size (rows: stream size)",
		Header: []string{"stream", "block0", "block1", "block2", "block3"},
	}
	for blocks := 1; blocks <= 4; blocks++ {
		rig, err := art.rig(fmt.Sprintf("blocks%d", blocks), ctx)
		if err != nil {
			return Result{}, err
		}
		wire := netmodel.NewWire(netmodel.GigabitRate)
		rig.tb.SetTraffic(netmodel.NewConstantSource(
			wire, netmodel.SizeForBlocks(blocks), 100_000, rig.tb.Clock().Now(), -1))
		sf := chase.MeasureSizeFootprint(rig.spy, rig.groups, 4, 300, 2_000)
		row := []string{fmt.Sprintf("%d-block", blocks)}
		for k := 0; k < 4; k++ {
			rate := chase.MeanRate(sf.BlockRate[k])
			row = append(row, pct(rate))
			res.AddMetric(fmt.Sprintf("stream%d_block%d_activity", blocks, k), "fraction", rate)
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper shape: activity on blocks <= stream size, none above, except 1-block streams also light block 1 (driver prefetch)")
	return res, nil
}

// table1Runs is the number of independent recovery runs Table 1 averages.
const table1Runs = 3

// PrepareTable1 builds one machine per recovery run.
func PrepareTable1(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	for run := 0; run < table1Runs; run++ {
		opts := machineOptions(ctx.Scale, ctx.Seed+int64(run)*31)
		if err := ctx.AddRig(art, fmt.Sprintf("run%d", run), opts); err != nil {
			return nil, err
		}
	}
	return art, nil
}

// MeasureTable1 runs the full ring-sequence recovery and scores it
// against the instrumented-driver ground truth, the paper's Table I.
func MeasureTable1(ctx MeasureCtx, art *Artifact) (Result, error) {
	const runs = table1Runs
	scale := ctx.Scale
	var dists, errs, longest, minutes []float64
	params := chase.DefaultSequencerParams()
	if scale == Demo {
		params.Samples = 8_000
		params.WindowSize = 32
		params.ProbeRate = 33_000
		params.ActivityCutoff = 0.2
	}
	packetRate := 200_000.0
	if scale == Demo {
		packetRate = 11_000
	}
	for run := 0; run < runs; run++ {
		rig, err := art.rig(fmt.Sprintf("run%d", run), ctx)
		if err != nil {
			return Result{}, err
		}
		wire := netmodel.NewWire(netmodel.GigabitRate)
		rig.tb.SetTraffic(netmodel.NewConstantSource(wire, 64, packetRate, rig.tb.Clock().Now(), -1))
		seq := &chase.Sequencer{Spy: rig.spy, Groups: rig.groups, Params: params}
		t0 := rig.tb.Clock().Now()
		recovered, err := seq.RecoverFull()
		if err != nil {
			return Result{}, err
		}
		elapsed := rig.tb.Clock().Now() - t0
		canon := rig.canonical()
		rec := make([]int, len(recovered))
		keep := map[int]bool{}
		for i, g := range recovered {
			rec[i] = canon[g]
		}
		for _, c := range canon {
			keep[c] = true
		}
		truth := restrictTruth(rig.tb.NIC().RingAlignedSets(rig.ccfg), keep)
		q := chase.EvaluateCyclic(rec, truth)
		dists = append(dists, float64(q.Levenshtein))
		errs = append(errs, q.ErrorRate)
		longest = append(longest, float64(q.LongestMismatch))
		minutes = append(minutes, sim.Seconds(elapsed)/60)
	}
	ci := func(xs []float64) stats.CI { return stats.EmpiricalCI(xs, 0.9) }
	d, e, l, m := ci(dists), ci(errs), ci(longest), ci(minutes)
	res := Result{
		ID:     "table1",
		Title:  fmt.Sprintf("sequence recovery over %d runs (%s scale)", runs, scale),
		Header: []string{"measure", "value", "interval", "paper"},
		Rows: [][]string{
			{"Levenshtein distance", f1(d.Mean), fmt.Sprintf("[%s, %s]", f1(d.Low), f1(d.High)), "25.2 [22, 35]"},
			{"Error rate", pct(e.Mean), fmt.Sprintf("[%s, %s]", pct(e.Low), pct(e.High)), "9.8% [8.5, 13.6]"},
			{"Longest mismatch", f1(l.Mean), fmt.Sprintf("[%s, %s]", f1(l.Low), f1(l.High)), "5.2 [3, 9]"},
			{"Recovery time (sim-min)", f1(m.Mean), fmt.Sprintf("[%s, %s]", f1(m.Low), f1(m.High)), "159 [153, 167]"},
		},
	}
	res.AddMetric("levenshtein_distance", "edits", d.Mean)
	res.AddMetric("error_rate", "fraction", e.Mean)
	res.AddMetric("longest_mismatch", "symbols", l.Mean)
	res.AddMetric("recovery_time", "sim-min", m.Mean)
	res.Notes = append(res.Notes,
		fmt.Sprintf("params: %d samples/window, %d-set windows, %.0f pkt/s, %.0f probes/s",
			params.Samples, params.WindowSize, packetRate, params.ProbeRate))
	return res, nil
}
