// External test package: these tests drive the sweeps the way production
// does — through internal/runner — which the experiments package itself
// cannot import (the runner depends on it).
package experiments_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func TestSweepRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, sw := range experiments.Sweeps() {
		if sw.ID == "" || sw.Short == "" || sw.Run == nil {
			t.Errorf("sweep %q incompletely registered", sw.ID)
		}
		if ids[sw.ID] {
			t.Errorf("duplicate sweep id %q", sw.ID)
		}
		ids[sw.ID] = true
		if err := sw.Grid.Validate(); err != nil {
			t.Errorf("sweep %q grid: %v", sw.ID, err)
		}
		got, ok := experiments.SweepByID(sw.ID)
		if !ok || got.ID != sw.ID {
			t.Errorf("SweepByID(%q) failed", sw.ID)
		}
	}
	if _, ok := experiments.SweepByID("nope"); ok {
		t.Error("unknown sweep id must not resolve")
	}
}

// TestSweepCellsProduceStableMetrics runs the first cell of every sweep
// end to end at demo scale: metrics must exist, carry stable snake_case
// names, and not duplicate.
func TestSweepCellsProduceStableMetrics(t *testing.T) {
	for _, sw := range experiments.Sweeps() {
		sw := sw
		t.Run(sw.ID, func(t *testing.T) {
			t.Parallel()
			cell := sw.Grid.Cells()[0]
			seed := runner.CellSeed(1, sw.ID, cell.Key(), 0)
			res, err := sw.Run(experiments.Demo, seed, cell)
			if err != nil {
				t.Fatalf("%s[%s]: %v", sw.ID, cell.Key(), err)
			}
			if len(res.Metrics) == 0 {
				t.Fatalf("%s: no metrics", sw.ID)
			}
			if len(res.Rows) == 0 {
				t.Errorf("%s: no table rows", sw.ID)
			}
			names := map[string]bool{}
			for _, m := range res.Metrics {
				if names[m.Name] {
					t.Errorf("%s: duplicate metric %q", sw.ID, m.Name)
				}
				names[m.Name] = true
			}
		})
	}
}

// TestNoiseSensitivityMonotone is the PR's acceptance criterion: at demo
// scale the chase-accuracy curve must be monotonically non-increasing as
// the background noise rate rises, under exactly the seeds the CLI's
// default sweep invocation (-seed 1 -trials 1) uses.
func TestNoiseSensitivityMonotone(t *testing.T) {
	sw, ok := experiments.SweepByID("sens_chase_noise")
	if !ok {
		t.Fatal("sens_chase_noise not registered")
	}
	rep, err := runner.RunSweep(sw, runner.Options{
		Scale: experiments.Demo, Seed: 1, Trials: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed := rep.Failed(); failed > 0 {
		t.Fatalf("%d cells failed", failed)
	}
	curve := rep.MetricCurve("chase_accuracy")
	if len(curve) != len(sw.Grid[0].Values) {
		t.Fatalf("curve has %d points want %d", len(curve), len(sw.Grid[0].Values))
	}
	for i, m := range curve {
		t.Logf("noise=%.0f accuracy=%.4f", sw.Grid[0].Values[i], m.Summary.Mean)
		if m.Summary.Mean <= 0 || m.Summary.Mean > 1 {
			t.Errorf("accuracy %v outside (0,1]", m.Summary.Mean)
		}
		if i > 0 && m.Summary.Mean > curve[i-1].Summary.Mean {
			t.Errorf("accuracy rose with noise: %.4f -> %.4f at %.0f accesses/s",
				curve[i-1].Summary.Mean, m.Summary.Mean, sw.Grid[0].Values[i])
		}
	}
	// The curve must also span a real effect, not a flat line: the
	// quietest cell should sit well above the noisiest.
	if head, tail := curve[0].Summary.Mean, curve[len(curve)-1].Summary.Mean; head-tail < 0.1 {
		t.Errorf("no sensitivity measured: accuracy %.4f -> %.4f", head, tail)
	}
}
