package experiments

import (
	"path/filepath"

	"repro/internal/scenario"
)

// EntryKind distinguishes the two runnable registry species.
type EntryKind string

const (
	// KindExperiment is a fixed-configuration experiment (a figure or
	// table of the paper).
	KindExperiment EntryKind = "experiment"
	// KindSweep is a parameter-grid sensitivity study.
	KindSweep EntryKind = "sweep"
)

// Entry is one runnable item of the unified registry: either an
// experiment or a sweep, described uniformly so tooling (CLI listing,
// checkpoint resume lookup, a future experiment service) can reason about
// the whole catalog through one surface instead of stitching All() and
// Sweeps() together.
type Entry struct {
	// ID is the item's unique identifier across both species.
	ID string
	// Short is the one-line human description.
	Short string
	// Kind says which of Experiment/Sweep is populated.
	Kind EntryKind
	// Phased reports whether the item supports the phase-split
	// Prepare/Measure API (and therefore warm artifact reuse).
	Phased bool
	// Grid is the sweep's parameter grid; nil for experiments.
	Grid scenario.Grid
	// Golden is the repo-relative path of the item's pinned demo-scale
	// report, empty when the item has none (sweeps are pinned by
	// acceptance checks, not goldens).
	Golden string
	// Experiment is the runnable experiment when Kind == KindExperiment.
	Experiment Experiment
	// Sweep is the runnable sweep when Kind == KindSweep.
	Sweep Sweep
}

// Registry returns every runnable item — experiments in paper order, then
// sweeps in registry order — as unified entries.
func Registry() []Entry {
	exps := All()
	sweeps := Sweeps()
	out := make([]Entry, 0, len(exps)+len(sweeps))
	for _, e := range exps {
		out = append(out, Entry{
			ID:         e.ID,
			Short:      e.Short,
			Kind:       KindExperiment,
			Phased:     e.Phased(),
			Golden:     filepath.Join("internal", "experiments", "testdata", e.ID+".golden.json"),
			Experiment: e,
		})
	}
	for _, s := range sweeps {
		out = append(out, Entry{
			ID:     s.ID,
			Short:  s.Short,
			Kind:   KindSweep,
			Phased: s.Phased(),
			Grid:   s.Grid,
			Sweep:  s,
		})
	}
	return out
}

// Lookup returns the registry entry with the given id, of either kind.
func Lookup(id string) (Entry, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}
