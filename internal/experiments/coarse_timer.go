package experiments

import (
	"errors"
	"fmt"

	"repro/internal/probe"
)

// chase_coarse_timer is the tentpole evaluation of the coarse-timer-
// resilient attacker: the fine-timer baseline and the amplified attacker
// (probe.AmplifiedStrategy — repeated-measurement calibration, adaptively
// amplified conflict tests, block-timed probes) chase the same
// alternating-size stream while the spy's timer jitter sweeps 0 -> 256
// cycles. Two preparations are measured:
//
//   - online-only coarsening: the attacker prepared under the reference
//     timer (the sweep-axis scenario — jitter appears only at measurement
//     time);
//   - offline+online coarsening: the attacker's own offline phase —
//     calibration, eviction-set construction — also ran under the coarse
//     timer, the situation a timer-coarsening *defense* (§VI-a) actually
//     imposes. A fine-timer attacker whose preparation collapses here is
//     recorded as accuracy 0 with the collapse reason, not as an error:
//     the collapse is the measurement.
//
// The per-row calibration_ok metric is the explicit health signal this PR
// adds: the fine-timer attacker at high jitter reports NOT-ok (its
// monitors know they cannot separate idle jitter from activity), while
// the amplified attacker stays ok across the whole axis — the difference
// between "the defense erased the signal" and "the attacker went blind".
var coarseTimerLevels = []uint64{0, 16, 64, 128, 256}

// coarseTimerOfflineLevels are the jitter magnitudes at which the
// offline+online scenario is prepared; 64 is the registered
// timer-coarsening defense's magnitude (defense.DefaultTimerJitter).
var coarseTimerOfflineLevels = []uint64{64}

// coarseAttackers enumerates the two attacker strategies in row order.
var coarseAttackers = []struct {
	key   string // metric-name segment
	strat func() probe.Strategy
}{
	{"baseline", probe.DefaultStrategy},
	{"amplified", probe.AmplifiedStrategy},
}

// coarseOfflineTag keys offline-coarse machines apart from reference ones:
// TimerNoise is deliberately excluded from the option fingerprint, so
// machines prepared under different offline jitter would otherwise
// collide in the warm-start store.
func coarseOfflineTag(n uint64) string { return fmt.Sprintf("offline-timer=%d", n) }

// PrepareChaseCoarseTimer builds one reference-timer machine per attacker
// (shared by every online jitter level — the jitter is an online knob)
// plus one offline-coarsened machine per (attacker, offline level).
func PrepareChaseCoarseTimer(ctx PrepareCtx) (*Artifact, error) {
	art := ctx.NewArtifact()
	opts := machineOptions(ctx.Scale, ctx.Seed)
	for _, atk := range coarseAttackers {
		if err := ctx.AddRigStrategy(art, atk.key, opts, "", atk.strat()); err != nil {
			return nil, err
		}
	}
	for _, n := range coarseTimerOfflineLevels {
		coarse := opts
		coarse.TimerNoise = n
		for _, atk := range coarseAttackers {
			label := fmt.Sprintf("%s-off%d", atk.key, n)
			if err := ctx.AddRigStrategy(art, label, coarse, coarseOfflineTag(n), atk.strat()); err != nil {
				// An offline phase collapsing under the coarse timer is an
				// outcome of this experiment: record it and measure the
				// row as a dead attack. Only deterministic simulation
				// failures qualify — infrastructure errors (artifact
				// persistence, disk) must still fail the run, or a full
				// disk would read as a defense victory.
				var be *BuildError
				if !errors.As(err, &be) {
					return nil, err
				}
				art.Failed[label] = be.Error()
			}
		}
	}
	return art, nil
}

// MeasureChaseCoarseTimer measures every (attacker, jitter) cell on a
// fresh clone and reports accuracy plus the calibration health signal.
func MeasureChaseCoarseTimer(ctx MeasureCtx, art *Artifact) (Result, error) {
	res := Result{
		ID:     "chase_coarse_timer",
		Title:  "chase accuracy vs timer jitter: fine-timer vs amplified attacker",
		Header: []string{"timer jitter", "offline", "attacker", "accuracy", "calibration"},
	}
	calLabel := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "degenerate"
	}
	measure := func(label string, online uint64) (chaseOutcome, bool, error) {
		if reason, dead := art.Failed[label]; dead {
			res.Notes = append(res.Notes,
				fmt.Sprintf("%s: offline phase collapsed under the coarse timer (%s)", label, reason))
			return chaseOutcome{}, false, nil
		}
		rig, err := art.rig(label, ctx)
		if err != nil {
			return chaseOutcome{}, false, err
		}
		rig.tb.SetTimerNoise(online)
		return chaseAccuracy(rig, nil, 64), true, nil
	}
	for _, n := range coarseTimerLevels {
		for _, atk := range coarseAttackers {
			out, alive, err := measure(atk.key, n)
			if err != nil {
				return Result{}, err
			}
			ok := alive && out.calOK
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%d", n), "reference", atk.key, pct(out.acc), calLabel(ok),
			})
			res.AddMetric(fmt.Sprintf("n%d_%s_accuracy", n, atk.key), "fraction", out.acc)
			res.AddMetric(fmt.Sprintf("n%d_%s_calibration_ok", n, atk.key), "bool", boolMetric(ok))
		}
	}
	for _, n := range coarseTimerOfflineLevels {
		for _, atk := range coarseAttackers {
			label := fmt.Sprintf("%s-off%d", atk.key, n)
			out, alive, err := measure(label, n)
			if err != nil {
				return Result{}, err
			}
			ok := alive && out.calOK
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%d", n), "coarse", atk.key, pct(out.acc), calLabel(ok),
			})
			res.AddMetric(fmt.Sprintf("offline%d_%s_accuracy", n, atk.key), "fraction", out.acc)
			res.AddMetric(fmt.Sprintf("offline%d_%s_calibration_ok", n, atk.key), "bool", boolMetric(ok))
		}
	}
	res.Notes = append(res.Notes,
		"reference rows: offline phase under the reference timer, jitter applied online only (the sweep-axis scenario);",
		"coarse rows: the attacker's own calibration and eviction-set construction also ran under the coarse timer (what the timer-coarsening defense imposes);",
		"paper §VI-a positions timer coarsening as a cheap mitigation; the amplified attacker prices it honestly: repeated-measurement calibration plus amplified probes keep the chase near its clean-timer accuracy across the axis")
	return res, nil
}
