package experiments

import (
	"sync"
	"testing"

	"repro/internal/scenario"
)

// TestArtifactStoreDedup: repeated Prepare calls against one store must
// perform the offline build exactly once per distinct machine, and hand
// every caller the same artifact.
func TestArtifactStoreDedup(t *testing.T) {
	store := NewArtifactStore()
	ctx := PrepareCtx{Scale: Demo, Seed: 5, Store: store}

	a1, err := PrepareFig10(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if store.Builds() != 1 {
		t.Fatalf("builds = %d after first prepare, want 1", store.Builds())
	}
	a2, err := PrepareFig10(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if store.Builds() != 1 {
		t.Fatalf("builds = %d after second prepare, want 1 (store must dedup)", store.Builds())
	}
	if a1.Rigs["rig"] != a2.Rigs["rig"] {
		t.Error("warm prepares must share the cached rig artifact")
	}
}

// TestArtifactStoreKeysSeparateMachines: a different offline seed, and a
// different machine shape under the same seed, must both miss the cache.
func TestArtifactStoreKeysSeparateMachines(t *testing.T) {
	store := NewArtifactStore()
	if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 5, Store: store}); err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareFig10(PrepareCtx{Scale: Demo, Seed: 6, Store: store}); err != nil {
		t.Fatal(err)
	}
	if store.Builds() != 2 {
		t.Fatalf("builds = %d across two seeds, want 2", store.Builds())
	}
	// Fingerprint prepares two machines (DDIO on/off) under one seed: the
	// shape difference must key them apart.
	art, err := PrepareFingerprint(PrepareCtx{Scale: Demo, Seed: 5, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if art.Rigs["ddio"] == art.Rigs["noddio"] {
		t.Error("DDIO-on and DDIO-off machines must be distinct artifacts")
	}
}

// TestDefenseTagKeysSeparateArtifacts: machines that differ only in a
// defense invisible to the option fingerprint (timer coarsening changes
// an online-classified knob) must still key separate store entries —
// their offline phases ran under different conditions, so sharing a
// clone across the defense boundary would be wrong.
func TestDefenseTagKeysSeparateArtifacts(t *testing.T) {
	store := NewArtifactStore()
	ctx := PrepareCtx{Scale: Demo, Seed: 5, Store: store}
	opts := machineOptions(Demo, 5)

	art := ctx.NewArtifact()
	if err := ctx.AddRigTagged(art, "plain", opts, ""); err != nil {
		t.Fatal(err)
	}
	if err := ctx.AddRigTagged(art, "coarse", opts, "timer-coarse-64"); err != nil {
		t.Fatal(err)
	}
	if store.Builds() != 2 {
		t.Fatalf("builds = %d for two defense variants of one machine shape, want 2", store.Builds())
	}
	if art.Rigs["plain"] == art.Rigs["coarse"] {
		t.Error("tagged variants must not share an artifact")
	}
	// Same tag again: cache hit.
	if err := ctx.AddRigTagged(art, "coarse2", opts, "timer-coarse-64"); err != nil {
		t.Fatal(err)
	}
	if store.Builds() != 2 {
		t.Fatalf("builds = %d after repeat tagged prepare, want 2", store.Builds())
	}
	if art.Rigs["coarse2"] != art.Rigs["coarse"] {
		t.Error("equal tags must share the cached artifact")
	}
}

// TestArtifactStoreConcurrentSingleflight: concurrent prepares of the
// same machine must block on one build rather than racing several.
func TestArtifactStoreConcurrentSingleflight(t *testing.T) {
	store := NewArtifactStore()
	var wg sync.WaitGroup
	arts := make([]*Artifact, 8)
	errs := make([]error, 8)
	for i := range arts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i], errs[i] = PrepareFig10(PrepareCtx{Scale: Demo, Seed: 9, Store: store})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("prepare %d: %v", i, err)
		}
	}
	if store.Builds() != 1 {
		t.Fatalf("builds = %d under concurrency, want 1", store.Builds())
	}
	for i := 1; i < len(arts); i++ {
		if arts[i].Rigs["rig"] != arts[0].Rigs["rig"] {
			t.Fatal("concurrent prepares must converge on one artifact")
		}
	}
}

// TestArtifactStorePanicDoesNotPoison: an offline build that panics must
// surface as an error on every warm trial — not report the panic once
// and then hand later trials a nil artifact from the poisoned cache
// entry.
func TestArtifactStorePanicDoesNotPoison(t *testing.T) {
	store := NewArtifactStore()
	// MemBytes below one page makes mem.NewAllocator panic inside the
	// offline build.
	bad := machineOptions(Demo, 1)
	bad.MemBytes = 512
	ctx := PrepareCtx{Scale: Demo, Seed: 1, Store: store}
	for trial := 0; trial < 3; trial++ {
		art := ctx.NewArtifact()
		err := ctx.AddRig(art, "rig", bad)
		if err == nil {
			t.Fatalf("trial %d: broken build must error", trial)
		}
		if len(art.Rigs) != 0 {
			t.Fatalf("trial %d: failed build filed a rig: %+v", trial, art.Rigs)
		}
	}
	if store.Builds() != 0 {
		t.Fatalf("failed builds counted as successes: %d", store.Builds())
	}
	// And cold (store-less) prepares report the same error bytes, which
	// is what keeps failing warm and cold runs byte-identical too.
	warmErr := PrepareCtx{Scale: Demo, Seed: 1, Store: store}
	coldErr := PrepareCtx{Scale: Demo, Seed: 1}
	e1 := warmErr.AddRig(warmErr.NewArtifact(), "rig", bad)
	e2 := coldErr.AddRig(coldErr.NewArtifact(), "rig", bad)
	if e1 == nil || e2 == nil || e1.Error() != e2.Error() {
		t.Fatalf("warm/cold error bytes differ: %v vs %v", e1, e2)
	}
}

// TestPrepareSweepRigsValidatesFullCellSpec: a malformed cell must fail
// fast on the cell's full measurement spec — Offline() normalization
// would otherwise silently mask a bad environment value (negative noise
// becomes the reference rate) and the cell would measure under the
// wrong conditions.
func TestPrepareSweepRigsValidatesFullCellSpec(t *testing.T) {
	cell := scenario.NewCell([]string{scenario.AxisNoiseRate}, []float64{-1})
	if _, err := prepareSweepRigs(PrepareCtx{Scale: Demo, Seed: 1}, cell); err == nil {
		t.Fatal("negative noise_rate cell must fail validation")
	}
}

// TestMeasureClonesAreIndependent: two clones cut from one artifact must
// not share mutable machine state — measuring on one must not perturb the
// other (this is what makes concurrent warm trials safe).
func TestMeasureClonesAreIndependent(t *testing.T) {
	ctx := PrepareCtx{Scale: Demo, Seed: 3}
	art, err := PrepareFig10(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m := MeasureCtx{Scale: Demo, Seed: 3}
	a, err := art.rig("rig", m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := art.rig("rig", m)
	if err != nil {
		t.Fatal(err)
	}
	if a.tb == b.tb || a.spy == b.spy {
		t.Fatal("clones share a machine")
	}
	startB := b.tb.Clock().Now()
	// Disturb clone A heavily.
	for i := 0; i < 1000; i++ {
		a.spy.Touch(a.spy.PageBase(0) + uint64(i%64)*64)
	}
	a.tb.Idle(1_000_000)
	if b.tb.Clock().Now() != startB {
		t.Error("driving one clone advanced the other's clock")
	}
	// Both clones restored from one snapshot: identical starting stats.
	if a.tb.NIC().Stats() != b.tb.NIC().Stats() {
		t.Error("clone NIC stats diverged without B being driven")
	}
}
