package experiments

import (
	"os"
	"testing"
)

// TestRegistryMergesBothSpecies: the unified registry covers exactly the
// union of All() and Sweeps(), with unique IDs and the right kind.
func TestRegistryMergesBothSpecies(t *testing.T) {
	reg := Registry()
	if want := len(All()) + len(Sweeps()); len(reg) != want {
		t.Fatalf("registry has %d entries, want %d", len(reg), want)
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Errorf("duplicate registry ID %q", e.ID)
		}
		seen[e.ID] = true
		switch e.Kind {
		case KindExperiment:
			if e.Experiment.ID != e.ID || e.Experiment.Run == nil {
				t.Errorf("%s: experiment entry not populated", e.ID)
			}
			if e.Grid != nil {
				t.Errorf("%s: experiment entry carries a grid", e.ID)
			}
			if e.Phased != e.Experiment.Phased() {
				t.Errorf("%s: Phased metadata disagrees with the experiment", e.ID)
			}
		case KindSweep:
			if e.Sweep.ID != e.ID || len(e.Grid) == 0 {
				t.Errorf("%s: sweep entry not populated", e.ID)
			}
			if e.Phased != e.Sweep.Phased() {
				t.Errorf("%s: Phased metadata disagrees with the sweep", e.ID)
			}
		default:
			t.Errorf("%s: unknown kind %q", e.ID, e.Kind)
		}
	}
	for _, e := range All() {
		if !seen[e.ID] {
			t.Errorf("experiment %s missing from registry", e.ID)
		}
	}
	for _, s := range Sweeps() {
		if !seen[s.ID] {
			t.Errorf("sweep %s missing from registry", s.ID)
		}
	}
}

// TestRegistryGoldenPathsExist: every experiment entry points at its
// committed golden file (the test runs from internal/experiments, so the
// repo-relative path is checked against the repo root).
func TestRegistryGoldenPathsExist(t *testing.T) {
	for _, e := range Registry() {
		switch e.Kind {
		case KindExperiment:
			if e.Golden == "" {
				t.Errorf("%s: experiment entry has no golden path", e.ID)
				continue
			}
			if _, err := os.Stat("../../" + e.Golden); err != nil {
				t.Errorf("%s: golden %s not found: %v", e.ID, e.Golden, err)
			}
		case KindSweep:
			if e.Golden != "" {
				t.Errorf("%s: sweep entry claims a golden file", e.ID)
			}
		}
	}
}

// TestLookupFindsBothKinds: Lookup resolves experiments and sweeps by ID
// through one call — what -resume and the CLI use.
func TestLookupFindsBothKinds(t *testing.T) {
	if e, ok := Lookup("fig10"); !ok || e.Kind != KindExperiment || !e.Phased {
		t.Errorf("Lookup(fig10) = %+v, %v; want a phased experiment", e, ok)
	}
	if e, ok := Lookup("sens_covert_timer"); !ok || e.Kind != KindSweep || len(e.Grid) == 0 {
		t.Errorf("Lookup(sens_covert_timer) = %+v, %v; want a sweep with a grid", e, ok)
	}
	if _, ok := Lookup("no_such_id"); ok {
		t.Error("Lookup(no_such_id) succeeded")
	}
}
