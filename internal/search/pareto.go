package search

import "sort"

// Point is one evaluated candidate in (leakage, overhead) space. Both
// axes minimize: leakage is the strongest calibrated attack's success
// probability, overhead is the perfsim p99 latency delta versus the
// undefended baseline.
type Point struct {
	ID       string
	Leakage  float64
	Overhead float64
}

// Dominates reports strict Pareto dominance: p is no worse on both axes
// and strictly better on at least one.
func Dominates(p, q Point) bool { return DominatesEps(p, q, 0) }

// DominatesEps is dominance with a resolution slack eps on the overhead
// axis: p ε-dominates q when p leaks no more, p's overhead is within
// eps of q's, and p is strictly better on leakage or strictly cheaper
// by more than eps. The slack exists because the overhead axis is a
// simulated measurement with finite resolution — a defense that erases
// the channel for a sub-resolution cost difference should beat a leaky
// free one, which strict dominance (eps=0) can never conclude.
func DominatesEps(p, q Point, eps float64) bool {
	return p.Leakage <= q.Leakage && p.Overhead <= q.Overhead+eps &&
		(p.Leakage < q.Leakage || p.Overhead < q.Overhead-eps)
}

// Frontier returns the points not ε-dominated by any other point,
// sorted by overhead then leakage then ID. Exact duplicates never
// dominate each other, so both survive.
func Frontier(points []Point, eps float64) []Point {
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && DominatesEps(q, p, eps) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Overhead != front[j].Overhead {
			return front[i].Overhead < front[j].Overhead
		}
		if front[i].Leakage != front[j].Leakage {
			return front[i].Leakage < front[j].Leakage
		}
		return front[i].ID < front[j].ID
	})
	return front
}

// Hypervolume returns the area of objective space dominated by the
// point set within the rectangle bounded by the reference point
// (refLeakage, refOverhead) — the standard 2-objective quality
// indicator, larger is better. Points at or beyond the reference
// contribute nothing.
func Hypervolume(points []Point, refLeakage, refOverhead float64) float64 {
	var in []Point
	for _, p := range points {
		if p.Leakage < refLeakage && p.Overhead < refOverhead {
			in = append(in, p)
		}
	}
	if len(in) == 0 {
		return 0
	}
	// Keep the non-dominated subset: sorted by leakage ascending, its
	// overheads are strictly descending, and the dominated region is a
	// staircase of disjoint strips.
	in = Frontier(in, 0)
	sort.Slice(in, func(i, j int) bool {
		if in[i].Leakage != in[j].Leakage {
			return in[i].Leakage < in[j].Leakage
		}
		return in[i].Overhead < in[j].Overhead
	})
	var hv float64
	for i, p := range in {
		right := refLeakage
		// Skip duplicates of the same leakage (equal leakage, higher
		// overhead adds no area past the first).
		if i+1 < len(in) {
			right = in[i+1].Leakage
		}
		if right > p.Leakage {
			hv += (right - p.Leakage) * (refOverhead - p.Overhead)
		}
	}
	return hv
}
