package search

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/defense"
)

// Params is one point in the typed defense design space the search
// explores: the three parameterizable mechanisms the paper's §VI-§VII
// menu samples, each with its knob exposed, composable into a stack.
// The zero value is the undefended baseline.
type Params struct {
	// PartitionWays is the adaptive partition's MaxIOWays quota
	// (MinIOWays stays 1, the other §VII parameters stay at their
	// defaults); 0 disables partitioning.
	PartitionWays int `json:"partition_ways"`
	// RandomizePeriod selects ring randomization: 0 off, -1 the full
	// per-packet variant, positive a periodic re-randomization interval
	// in packets.
	RandomizePeriod int `json:"randomize_period"`
	// TimerJitter is the timer-coarsening magnitude in cycles; 0 off.
	TimerJitter uint64 `json:"timer_jitter"`
}

// ID canonically names the candidate; it doubles as the experiment ID
// (and therefore the trial-seed derivation label and journal unit key),
// so equal params always replay from a resumed journal.
func (p Params) ID() string {
	r := "roff"
	switch {
	case p.RandomizePeriod < 0:
		r = "rfull"
	case p.RandomizePeriod > 0:
		r = fmt.Sprintf("r%d", p.RandomizePeriod)
	}
	return fmt.Sprintf("p%d-%s-t%d", p.PartitionWays, r, p.TimerJitter)
}

// Defense builds the candidate's validated defense value: layers in
// canonical partition→randomization→timer order (they commute — see
// defense.Stack), a bare defense for single mechanisms, NoDefense for
// the baseline.
func (p Params) Defense() (defense.Defense, error) {
	var layers []defense.Defense
	if p.PartitionWays > 0 {
		cfg := *cache.DefaultPartitionConfig()
		cfg.MinIOWays = 1
		cfg.MaxIOWays = p.PartitionWays
		d, err := defense.NewAdaptivePartitioning(&cfg)
		if err != nil {
			return nil, fmt.Errorf("candidate %s: %w", p.ID(), err)
		}
		layers = append(layers, d)
	} else if p.PartitionWays < 0 {
		return nil, fmt.Errorf("candidate %s: negative partition ways", p.ID())
	}
	if p.RandomizePeriod != 0 {
		interval := p.RandomizePeriod
		if interval < 0 {
			interval = 0 // the defense encodes "full" as interval 0
		}
		d, err := defense.NewRingRandomization(interval)
		if err != nil {
			return nil, fmt.Errorf("candidate %s: %w", p.ID(), err)
		}
		layers = append(layers, d)
	}
	if p.TimerJitter > 0 {
		d, err := defense.NewTimerCoarsening(p.TimerJitter)
		if err != nil {
			return nil, fmt.Errorf("candidate %s: %w", p.ID(), err)
		}
		layers = append(layers, d)
	}
	switch len(layers) {
	case 0:
		return defense.NoDefense{}, nil
	case 1:
		return layers[0], nil
	default:
		return defense.NewStack(layers...), nil
	}
}

// The coarse-phase grid axes. Way counts stay within the §VII quota
// range; periods bracket the paper's 1k/10k points plus the full
// variant; jitter stays at or below DefaultTimerJitter's magnitude
// (past ~100 cycles demo-scale offline preparation stops building — a
// grid full of unbuildable candidates measures nothing).
var (
	gridWays    = []int{0, 1, 2, 3}
	gridPeriods = []int{0, -1, 500, 1_000, 2_000, 5_000, 10_000}
	gridJitters = []uint64{0, 16, 32, 64}
)

// Anchors are the candidates every search evaluates first, whatever the
// budget: the undefended baseline, the paper's §VII partition, bare
// timer coarsening, and the partition+timer stack — the points the
// matrix experiment pins and the frontier's acceptance anchors compare.
func Anchors() []Params {
	return []Params{
		{},
		{PartitionWays: 3},
		{TimerJitter: 64},
		{PartitionWays: 3, TimerJitter: 64},
	}
}

// Grid enumerates the coarse phase in deterministic axis-major order,
// anchors first.
func Grid() []Params {
	out := Anchors()
	seen := map[string]bool{}
	for _, a := range out {
		seen[a.ID()] = true
	}
	for _, w := range gridWays {
		for _, r := range gridPeriods {
			for _, j := range gridJitters {
				p := Params{PartitionWays: w, RandomizePeriod: r, TimerJitter: j}
				if !seen[p.ID()] {
					seen[p.ID()] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// Neighbors returns the refinement moves from p in deterministic order:
// one step along each axis ladder in each direction. The hill-climb
// phase mutates frontier members with these moves, so every candidate
// the mutator can emit is valid by construction (axis ladders contain
// only validated values).
func (p Params) Neighbors() []Params {
	var out []Params
	step := func(q Params) {
		if q != p {
			out = append(out, q)
		}
	}
	if i := indexOfInt(gridWays, p.PartitionWays); i >= 0 {
		if i > 0 {
			q := p
			q.PartitionWays = gridWays[i-1]
			step(q)
		}
		if i+1 < len(gridWays) {
			q := p
			q.PartitionWays = gridWays[i+1]
			step(q)
		}
	}
	// Period moves halve/double within bounds, reaching off-grid
	// intervals the coarse phase never visits (250, 4_000, 20_000, ...).
	// Shorter periods cost more and leak less: halving from the
	// shortest interval escalates to the full variant, doubling past
	// the longest de-escalates to off.
	switch {
	case p.RandomizePeriod > 0:
		q := p
		if half := p.RandomizePeriod / 2; half >= 125 {
			q.RandomizePeriod = half
		} else {
			q.RandomizePeriod = -1
		}
		step(q)
		q = p
		if dbl := p.RandomizePeriod * 2; dbl <= 40_000 {
			q.RandomizePeriod = dbl
		} else {
			q.RandomizePeriod = 0
		}
		step(q)
	case p.RandomizePeriod < 0:
		q := p
		q.RandomizePeriod = 500
		step(q)
	default:
		q := p
		q.RandomizePeriod = 10_000
		step(q)
	}
	if i := indexOfUint64(gridJitters, p.TimerJitter); i >= 0 {
		if i > 0 {
			q := p
			q.TimerJitter = gridJitters[i-1]
			step(q)
		}
		if i+1 < len(gridJitters) {
			q := p
			q.TimerJitter = gridJitters[i+1]
			step(q)
		}
	} else {
		// Off-ladder jitter (never produced by the mutator, but Params
		// is an exported type): step back onto the ladder.
		q := p
		q.TimerJitter = gridJitters[len(gridJitters)-1]
		step(q)
	}
	return out
}

func indexOfInt(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func indexOfUint64(xs []uint64, v uint64) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
