package search

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// The search driver's acceptance benchmark pair: the same small search
// run on pooled warm rig leases (the default production path) versus
// with both reuse layers disabled (every candidate builds its machines
// from scratch). CI gates pooled-warm wall-clock at under 2× the
// cold-clone run — the bound the ≥200-candidate default budget relies
// on — and the committed BENCH_runner.json baseline tracks both.
func benchSearch(b *testing.B, cfg runner.Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(Options{
			Scale:  experiments.Demo,
			Seed:   1,
			Budget: 8,
			Runner: cfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Evaluated != 8 || rep.Failed() > 0 {
			b.Fatalf("evaluated=%d failed=%d", rep.Evaluated, rep.Failed())
		}
	}
}

func BenchmarkSearchPooledWarm(b *testing.B) {
	benchSearch(b, runner.Config{Parallel: 4, Warm: true})
}

func BenchmarkSearchColdClone(b *testing.B) {
	benchSearch(b, runner.Config{Parallel: 4, NoRigReuse: true})
}
