package search

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			ID:       fmt.Sprintf("pt%d", i),
			Leakage:  float64(rng.Intn(100)) / 100,
			Overhead: float64(rng.Intn(100)) / 100,
		}
	}
	return pts
}

// TestDominance pins the ε-dominance relation.
func TestDominance(t *testing.T) {
	a := Point{ID: "a", Leakage: 0.2, Overhead: 0.1}
	b := Point{ID: "b", Leakage: 0.5, Overhead: 0.1}
	c := Point{ID: "c", Leakage: 0.2, Overhead: 0.1}
	free := Point{ID: "free", Leakage: 0.9, Overhead: 0}
	if !Dominates(a, b) || Dominates(b, a) {
		t.Error("a must strictly dominate b (equal overhead, less leakage)")
	}
	if Dominates(a, c) || Dominates(c, a) {
		t.Error("duplicates must not dominate each other")
	}
	// Strict dominance can never conclude against a zero-overhead point;
	// ε-dominance within resolution can.
	if Dominates(a, free) {
		t.Error("a must not strictly dominate the cheaper point")
	}
	if !DominatesEps(a, free, 0.2) {
		t.Error("a must ε-dominate the leaky free point within slack")
	}
	if DominatesEps(free, a, 0.2) {
		t.Error("ε-dominance must stay antisymmetric for ε < leakage gap")
	}
	// Two points within ε on overhead and equal leakage: a tie, no
	// dominance either way.
	d := Point{ID: "d", Leakage: 0.2, Overhead: 0.102}
	if DominatesEps(a, d, 0.005) || DominatesEps(d, a, 0.005) {
		t.Error("sub-ε overhead difference with equal leakage must be a tie")
	}
}

// TestFrontierProperties: frontier ⊆ candidates, and no frontier point
// is dominated by any candidate — over many random point sets.
func TestFrontierProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		pts := randomPoints(rng, 1+rng.Intn(40))
		for _, eps := range []float64{0, 0.005, 0.1} {
			front := Frontier(pts, eps)
			if len(front) == 0 {
				t.Fatalf("trial %d eps %g: frontier empty for non-empty set", trial, eps)
			}
			byID := map[string]Point{}
			for _, p := range pts {
				byID[p.ID] = p
			}
			for _, f := range front {
				if got, ok := byID[f.ID]; !ok || got != f {
					t.Fatalf("trial %d: frontier point %+v not among candidates", trial, f)
				}
				for _, q := range pts {
					if q.ID != f.ID && DominatesEps(q, f, eps) {
						t.Fatalf("trial %d eps %g: frontier point %+v dominated by %+v", trial, eps, f, q)
					}
				}
			}
		}
	}
}

// TestHypervolumeMonotone: adding a point that dominates an existing
// one strictly increases the indicator; adding a dominated point never
// changes it.
func TestHypervolumeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		pts := randomPoints(rng, 1+rng.Intn(20))
		hv := Hypervolume(pts, 1, 1)
		if hv < 0 || hv > 1 {
			t.Fatalf("trial %d: hypervolume %g outside [0,1] for unit ref", trial, hv)
		}
		// Dominate a random frontier point: the new point then cannot be
		// dominated itself (that would transitively dominate the frontier
		// member), so the indicator must strictly grow.
		front := Frontier(pts, 0)
		target := front[rng.Intn(len(front))]
		dom := Point{ID: "dom", Leakage: target.Leakage * 0.5, Overhead: target.Overhead * 0.5}
		if dom.Leakage == target.Leakage && dom.Overhead == target.Overhead {
			continue // target was (0,0): nothing can dominate it
		}
		if got := Hypervolume(append(append([]Point{}, pts...), dom), 1, 1); got <= hv {
			t.Fatalf("trial %d: adding dominating point did not grow hypervolume (%g -> %g)", trial, hv, got)
		}
		// A point dominated by an existing one adds nothing.
		dup := Point{ID: "dup", Leakage: target.Leakage, Overhead: target.Overhead}
		if got := Hypervolume(append(append([]Point{}, pts...), dup), 1, 1); got != hv {
			t.Fatalf("trial %d: duplicate point changed hypervolume (%g -> %g)", trial, hv, got)
		}
	}
	// Known area: single point at (0.5, 0.5) under ref (1,1).
	if hv := Hypervolume([]Point{{ID: "x", Leakage: 0.5, Overhead: 0.5}}, 1, 1); hv != 0.25 {
		t.Errorf("single-point hypervolume = %g, want 0.25", hv)
	}
	// Staircase: (0.2,0.6) and (0.6,0.2): 0.4*0.4 + 0.4*0.8 = 0.48.
	stair := []Point{{ID: "a", Leakage: 0.2, Overhead: 0.6}, {ID: "b", Leakage: 0.6, Overhead: 0.2}}
	if hv := Hypervolume(stair, 1, 1); hv < 0.48-1e-12 || hv > 0.48+1e-12 {
		t.Errorf("staircase hypervolume = %g, want 0.48", hv)
	}
	if hv := Hypervolume(nil, 1, 1); hv != 0 {
		t.Errorf("empty hypervolume = %g, want 0", hv)
	}
}
