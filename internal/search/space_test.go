package search

import (
	"testing"

	"repro/internal/defense"
)

// TestGridShape: anchors lead, IDs are unique, and every grid member
// builds a valid defense.
func TestGridShape(t *testing.T) {
	grid := Grid()
	if len(grid) < 100 {
		t.Fatalf("coarse grid has %d members, expected the full axis product", len(grid))
	}
	anchors := Anchors()
	for i, a := range anchors {
		if grid[i] != a {
			t.Fatalf("grid[%d] = %+v, want anchor %+v", i, grid[i], a)
		}
	}
	seen := map[string]bool{}
	for _, p := range grid {
		id := p.ID()
		if seen[id] {
			t.Fatalf("duplicate grid candidate %s", id)
		}
		seen[id] = true
		d, err := p.Defense()
		if err != nil {
			t.Fatalf("%s: Defense() = %v", id, err)
		}
		if err := defense.Validate(d); err != nil {
			t.Fatalf("%s: built an invalid defense: %v", id, err)
		}
	}
	if d, _ := (Params{}).Defense(); d.Name() != "none" {
		t.Errorf("zero params built %q, want the undefended baseline", d.Name())
	}
	if d, _ := (Params{PartitionWays: 3}).Defense(); d.Name() != "adaptive-partition" {
		t.Errorf("partition-only params built %q", d.Name())
	}
	if d, _ := (Params{RandomizePeriod: -1}).Defense(); d.Name() != "ring-full-random" {
		t.Errorf("full-randomization params built %q", d.Name())
	}
	if d, _ := (Params{PartitionWays: 2, RandomizePeriod: 1_000, TimerJitter: 32}).Defense(); d.Name() != "adaptive-partition+ring-partial-1k+timer-coarse-32" {
		t.Errorf("stack params built %q", d.Name())
	}
}

// TestNeighborsValid: every move the mutator can make, from every grid
// point and one level deeper, builds a validated defense with a unique
// ID different from its parent — the mutator cannot emit nonsense.
func TestNeighborsValid(t *testing.T) {
	frontier := Grid()
	for depth := 0; depth < 2; depth++ {
		var next []Params
		for _, p := range frontier {
			for _, q := range p.Neighbors() {
				if q.ID() == p.ID() {
					t.Fatalf("%s: neighbor with identical ID", p.ID())
				}
				d, err := q.Defense()
				if err != nil {
					t.Fatalf("%s -> %s: %v", p.ID(), q.ID(), err)
				}
				if err := defense.Validate(d); err != nil {
					t.Fatalf("%s -> %s: invalid defense: %v", p.ID(), q.ID(), err)
				}
				next = append(next, q)
			}
		}
		frontier = next
	}
}

// TestIDStability pins the candidate naming scheme: IDs are journal
// unit keys and seed-derivation labels, so renaming them silently
// orphans every existing checkpoint.
func TestIDStability(t *testing.T) {
	cases := map[string]Params{
		"p0-roff-t0":   {},
		"p3-roff-t64":  {PartitionWays: 3, TimerJitter: 64},
		"p0-rfull-t0":  {RandomizePeriod: -1},
		"p2-r1000-t16": {PartitionWays: 2, RandomizePeriod: 1_000, TimerJitter: 16},
	}
	for want, p := range cases {
		if got := p.ID(); got != want {
			t.Errorf("%+v: ID = %q, want %q", p, got, want)
		}
	}
}
