package search

import (
	"bytes"
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func reportBytes(t *testing.T, opts Options) []byte {
	t.Helper()
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSearchDeterministicAcrossParallel: the full frontier report is
// byte-identical whatever the worker-pool width — the seeded-search
// determinism contract the checkpoint journal and CI smoke both lean
// on.
func TestSearchDeterministicAcrossParallel(t *testing.T) {
	base := Options{
		Scale:  experiments.Demo,
		Seed:   1,
		Budget: 10,
	}
	narrow, wide := base, base
	narrow.Runner = runner.Config{Parallel: 1, Warm: true}
	wide.Runner = runner.Config{Parallel: 8, Warm: true}
	a := reportBytes(t, narrow)
	b := reportBytes(t, wide)
	if !bytes.Equal(a, b) {
		t.Fatalf("report bytes differ across -parallel widths:\n--- parallel=1\n%s\n--- parallel=8\n%s", a, b)
	}
	// Cold and pooled-warm runs agree too: pooling is a wall-clock
	// optimization, never a result change.
	cold := base
	cold.Runner = runner.Config{Parallel: 4, NoRigReuse: true}
	if c := reportBytes(t, cold); !bytes.Equal(a, c) {
		t.Fatalf("report bytes differ between warm and cold runs")
	}
}

// TestSearchResume: an interrupted search (trial budget spends out
// mid-grid) resumes from its journal to the exact bytes of an
// uninterrupted run.
func TestSearchResume(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Scale:  experiments.Demo,
		Seed:   1,
		Budget: 8,
		Runner: runner.Config{Parallel: 2, Warm: true},
	}
	want := reportBytes(t, opts)

	interrupted := opts
	interrupted.Runner.CheckpointDir = dir
	interrupted.Runner.TrialBudget = 3
	if _, err := Run(interrupted); err == nil {
		t.Fatal("budgeted run should have stopped with ErrBudget")
	}
	resumed := opts
	resumed.Runner.CheckpointDir = dir
	resumed.Runner.Resume = true
	if got := reportBytes(t, resumed); !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from uninterrupted run:\n%s\n---\n%s", got, want)
	}
}

// TestSearchAnchors is the acceptance anchor at a small budget: the
// frontier carries an adaptive-partitioning candidate, and that
// candidate ε-dominates bare timer-coarse-64 (whose strongest attacker
// — the amplified coarse-timer attack — still reads the ring, at zero
// server cost but near-total leakage).
func TestSearchAnchors(t *testing.T) {
	rep, err := Run(Options{
		Scale:  experiments.Demo,
		Seed:   1,
		Budget: 8,
		Runner: runner.Config{Parallel: 4, Warm: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SchemaVersion {
		t.Fatalf("schema %q", rep.Schema)
	}
	var partition *Candidate
	for i, c := range rep.Frontier {
		if c.Params.PartitionWays > 0 {
			partition = &rep.Frontier[i]
			break
		}
	}
	if partition == nil {
		t.Fatalf("no adaptive-partitioning candidate on the frontier: %+v", rep.Frontier)
	}
	var timer64 *Candidate
	for i, c := range rep.Candidates {
		if c.ID == "p0-roff-t64" {
			timer64 = &rep.Candidates[i]
		}
	}
	if timer64 == nil || !timer64.OK {
		t.Fatalf("bare timer-coarse-64 anchor missing or failed: %+v", timer64)
	}
	if timer64.OnFrontier {
		t.Fatal("bare timer-coarse-64 must not be on the frontier")
	}
	p := Point{ID: partition.ID, Leakage: partition.Leakage, Overhead: partition.Overhead}
	q := Point{ID: timer64.ID, Leakage: timer64.Leakage, Overhead: timer64.Overhead}
	if !DominatesEps(p, q, rep.Epsilon) {
		t.Fatalf("partition candidate %+v must ε-dominate bare timer-coarse-64 %+v", p, q)
	}
	if rep.Hypervolume <= 0 {
		t.Fatalf("hypervolume %g", rep.Hypervolume)
	}
}
