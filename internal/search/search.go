// Package search is the defense design-space explorer: where the paper
// (and the matrix_defense experiment) evaluates a hand-picked menu of
// mitigations, this package asks the inverse question — which defense
// parameterizations and stacks are Pareto-optimal on leakage versus
// performance overhead. A two-phase driver (coarse grid seeding, then
// hill-climb refinement around the current frontier) scores each
// candidate with the shared matrix evaluator on warm pooled rig leases,
// and a Pareto module extracts the frontier and its hypervolume into a
// versioned report. Every candidate's outcome is a pure function of
// (params, scale, seed), independent of batch composition and worker
// count, so reports are byte-deterministic across -parallel widths and
// resumable from the runner's checkpoint journal mid-search.
package search

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
)

// SchemaVersion identifies the frontier report wire format.
const SchemaVersion = "packetchasing-frontier/v1"

// DefaultBudget is the default total candidate evaluations: the full
// coarse grid plus refinement headroom.
const DefaultBudget = 240

// DefaultEpsilon is the default ε-dominance slack on the overhead axis:
// the perfsim p99-delta resolution at demo workload sizes, so two
// overheads within half a percent read as a tie and leakage decides.
const DefaultEpsilon = 0.005

// Options configures one frontier search.
type Options struct {
	// Scale and Seed follow the runner's determinism contract: the
	// report is a pure function of (Scale, Seed, Budget, Epsilon, Eval).
	Scale experiments.Scale
	Seed  int64
	// Budget caps total candidate evaluations; <= 0 selects
	// DefaultBudget. The anchors and as much of the coarse grid as fit
	// are evaluated first; the remainder funds refinement generations.
	Budget int
	// Epsilon is the overhead-axis dominance slack; 0 selects
	// DefaultEpsilon (use a tiny negative value for strict dominance).
	Epsilon float64
	// Eval sizes each candidate's measurement; the zero value selects
	// experiments.DefaultEvalBudget(Scale).
	Eval experiments.DefenseEvalBudget
	// Runner configures execution (parallelism, warm store, rig pool,
	// checkpointing, sinks). When CheckpointDir is set, the search
	// journals under the identity (kind "search", id "frontier") and
	// every batch after the first resumes, so an interrupted search
	// replays completed candidates; Resume controls only whether the
	// first batch also loads a pre-existing journal.
	Runner runner.Config
	// MaxGenerations caps refinement rounds; <= 0 selects 8.
	MaxGenerations int
}

// Candidate is one evaluated design point.
type Candidate struct {
	ID      string `json:"id"`
	Defense string `json:"defense"`
	Params  Params `json:"params"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	// Leakage is the strongest calibrated attack's success probability;
	// Overhead is the perfsim Nginx p99 delta vs the undefended
	// baseline — the two frontier axes, both minimized.
	Leakage  float64 `json:"leakage"`
	Overhead float64 `json:"overhead"`
	// Metrics carries the full per-family measurement (chase/covert/
	// fingerprint values and calibration-health flags, throughput loss).
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	OnFrontier bool               `json:"on_frontier"`
}

// Report is the versioned search outcome.
type Report struct {
	Schema      string  `json:"schema"`
	Scale       string  `json:"scale"`
	Seed        int64   `json:"seed"`
	Budget      int     `json:"budget"`
	Epsilon     float64 `json:"epsilon"`
	Evaluated   int     `json:"evaluated"`
	Generations int     `json:"generations"`
	// Hypervolume is the strict-dominance indicator at reference point
	// (1, 1) over the successful candidates.
	Hypervolume float64 `json:"hypervolume"`
	// Frontier is the ε-non-dominated set, cheapest first. Candidates
	// lists every evaluated point sorted by ID.
	Frontier   []Candidate `json:"frontier"`
	Candidates []Candidate `json:"candidates"`
}

// Failed counts candidates whose evaluation errored.
func (r *Report) Failed() int {
	n := 0
	for _, c := range r.Candidates {
		if !c.OK {
			n++
		}
	}
	return n
}

// WriteJSON serializes the report as indented, newline-terminated JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText renders the frontier for terminals.
func (r *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "frontier search: %d candidates evaluated (%d failed), %d generations, eps=%g\n",
		r.Evaluated, r.Failed(), r.Generations, r.Epsilon)
	fmt.Fprintf(w, "hypervolume (ref 1,1): %.4f\n", r.Hypervolume)
	fmt.Fprintf(w, "%-24s %-40s %9s %9s\n", "candidate", "defense", "leakage", "p99 delta")
	for _, c := range r.Frontier {
		fmt.Fprintf(w, "%-24s %-40s %8.1f%% %+8.2f%%\n",
			c.ID, c.Defense, 100*c.Leakage, 100*c.Overhead)
	}
	return nil
}

// Run executes the search and builds the frontier report.
func Run(opts Options) (*Report, error) {
	if opts.Budget <= 0 {
		opts.Budget = DefaultBudget
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = DefaultEpsilon
	} else if opts.Epsilon < 0 {
		opts.Epsilon = 0
	}
	if opts.MaxGenerations <= 0 {
		opts.MaxGenerations = 8
	}
	if opts.Eval == (experiments.DefenseEvalBudget{}) {
		opts.Eval = experiments.DefaultEvalBudget(opts.Scale)
	}
	// One perf seed for the whole search: overhead deltas must be
	// comparable (and memoizable) across candidates, so the performance
	// stream is decorrelated from the per-candidate attack streams.
	perfSeed := sim.DeriveSeed(opts.Seed, "search/perf")

	seen := map[string]bool{}
	byID := map[string]Candidate{}
	resume := opts.Runner.Resume

	evalBatch := func(batch []Params) error {
		if len(batch) == 0 {
			return nil
		}
		exps := make([]experiments.Experiment, len(batch))
		params := make(map[string]Params, len(batch))
		for i, p := range batch {
			d, err := p.Defense()
			if err != nil {
				return err
			}
			exps[i] = experiments.DefenseCandidateExperiment(p.ID(), d, opts.Eval, perfSeed)
			params[p.ID()] = p
		}
		cfg := opts.Runner
		cfg.Resume = resume
		rep, err := runner.New(cfg).RunNamed("search", "frontier", exps,
			runner.Job{Scale: opts.Scale, Seed: opts.Seed, Trials: 1})
		if err != nil {
			return err
		}
		if cfg.CheckpointDir != "" {
			// Later batches append to the same journal; truncating it
			// would discard this batch's outcomes.
			resume = true
		}
		for _, er := range rep.Experiments {
			byID[er.ID] = candidateFrom(er, params[er.ID])
		}
		return nil
	}

	// Phase 1: coarse grid, anchors first, truncated to budget.
	grid := Grid()
	if len(grid) > opts.Budget {
		grid = grid[:opts.Budget]
	}
	for _, p := range grid {
		seen[p.ID()] = true
	}
	if err := evalBatch(grid); err != nil {
		return nil, err
	}

	// Phase 2: hill-climb refinement — mutate the current frontier's
	// members one axis step at a time until the budget is spent, the
	// neighborhood runs dry, or the generation cap trips. Candidate
	// outcomes are batch-independent, so which generation evaluates a
	// point never changes its numbers; when a generation oversubscribes
	// the remaining budget, a per-generation derived stream picks the
	// subset — decorrelated from every measurement stream and fixed by
	// (seed, generation), not by worker timing.
	generations := 0
	for gen := 1; gen <= opts.MaxGenerations; gen++ {
		remaining := opts.Budget - len(byID)
		if remaining <= 0 {
			break
		}
		front := Frontier(okPoints(byID), opts.Epsilon)
		var fresh []Params
		for _, pt := range front {
			parent, ok := paramsOf(byID, pt.ID)
			if !ok {
				continue
			}
			for _, q := range parent.Neighbors() {
				if !seen[q.ID()] {
					seen[q.ID()] = true
					fresh = append(fresh, q)
				}
			}
		}
		if len(fresh) == 0 {
			break
		}
		if len(fresh) > remaining {
			rng := sim.Derive(opts.Seed, fmt.Sprintf("search/gen%d", gen))
			rng.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
			fresh = fresh[:remaining]
		}
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].ID() < fresh[j].ID() })
		if err := evalBatch(fresh); err != nil {
			return nil, err
		}
		generations = gen
	}

	// Assemble: candidates by ID, frontier by overhead.
	rep := &Report{
		Schema:      SchemaVersion,
		Scale:       opts.Scale.String(),
		Seed:        opts.Seed,
		Budget:      opts.Budget,
		Epsilon:     opts.Epsilon,
		Evaluated:   len(byID),
		Generations: generations,
	}
	pts := okPoints(byID)
	rep.Hypervolume = Hypervolume(pts, 1, 1)
	onFront := map[string]bool{}
	for _, p := range Frontier(pts, opts.Epsilon) {
		onFront[p.ID] = true
	}
	for id, c := range byID {
		c.OnFrontier = onFront[id]
		byID[id] = c
	}
	for _, c := range byID {
		rep.Candidates = append(rep.Candidates, c)
	}
	sort.Slice(rep.Candidates, func(i, j int) bool { return rep.Candidates[i].ID < rep.Candidates[j].ID })
	for _, c := range rep.Candidates {
		if c.OnFrontier {
			rep.Frontier = append(rep.Frontier, c)
		}
	}
	sort.Slice(rep.Frontier, func(i, j int) bool {
		a, b := rep.Frontier[i], rep.Frontier[j]
		if a.Overhead != b.Overhead {
			return a.Overhead < b.Overhead
		}
		if a.Leakage != b.Leakage {
			return a.Leakage < b.Leakage
		}
		return a.ID < b.ID
	})
	return rep, nil
}

// okPoints projects the successful candidates onto the objective plane.
func okPoints(byID map[string]Candidate) []Point {
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var pts []Point
	for _, id := range ids {
		if c := byID[id]; c.OK {
			pts = append(pts, Point{ID: id, Leakage: c.Leakage, Overhead: c.Overhead})
		}
	}
	return pts
}

func paramsOf(byID map[string]Candidate, id string) (Params, bool) {
	c, ok := byID[id]
	return c.Params, ok
}

// candidateFrom extracts a candidate from its experiment report entry.
func candidateFrom(er runner.ExperimentReport, p Params) Candidate {
	c := Candidate{ID: er.ID, Params: p, OK: er.OK, Error: er.Error}
	if d, err := p.Defense(); err == nil {
		c.Defense = d.Name()
	}
	if !er.OK {
		return c
	}
	c.Metrics = make(map[string]float64, len(er.Metrics))
	for _, m := range er.Metrics {
		if len(m.Values) == 0 {
			continue
		}
		v := m.Values[0]
		c.Metrics[m.Name] = v
		switch m.Name {
		case "leakage":
			c.Leakage = v
		case "p99_delta":
			c.Overhead = v
		}
	}
	return c
}
