package covert

import (
	"fmt"
	"sort"

	"repro/internal/netmodel"
	"repro/internal/probe"
	"repro/internal/sim"
)

// MultiBufferReceiver decodes the §IV-c channel: the ring is divided into
// n sections by n monitored buffers that are ideally 256/n apart; the
// trojan sends one symbol per section (256/n packets), multiplying the
// bandwidth by n (Fig 12a).
type MultiBufferReceiver struct {
	spy *probe.Spy
	mon *probe.Monitor
	n   int
	// Window as in Receiver.
	Window int
}

// SelectSpacedBuffers picks n group ids from the recovered ring that are
// roughly ringLen/n positions apart and isolated (each set hosts exactly
// one ring buffer). It returns the chosen group ids in ring order.
func SelectSpacedBuffers(ring []int, n int) ([]int, error) {
	count := map[int]int{}
	for _, g := range ring {
		count[g]++
	}
	type cand struct{ pos, gid int }
	var isolated []cand
	for pos, g := range ring {
		if count[g] == 1 {
			isolated = append(isolated, cand{pos, g})
		}
	}
	if len(isolated) < n {
		return nil, fmt.Errorf("covert: only %d isolated buffers for %d sections", len(isolated), n)
	}
	// Greedy: for each ideal position, take the nearest unused isolated
	// buffer.
	used := make(map[int]bool)
	var out []cand
	for k := 0; k < n; k++ {
		ideal := k * len(ring) / n
		best, bestDist := -1, len(ring)
		for i, c := range isolated {
			if used[i] {
				continue
			}
			d := c.pos - ideal
			if d < 0 {
				d = -d
			}
			if wrap := len(ring) - d; wrap < d {
				d = wrap
			}
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		used[best] = true
		out = append(out, isolated[best])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	ids := make([]int, n)
	for i, c := range out {
		ids[i] = c.gid
	}
	return ids, nil
}

// NewMultiBufferReceiver monitors, for each selected group, the paper's
// three sets: the first, third, and fourth blocks of the buffer (§IV-c).
func NewMultiBufferReceiver(spy *probe.Spy, groups []probe.EvictionSet, selected []int) *MultiBufferReceiver {
	byID := map[int]probe.EvictionSet{}
	for _, g := range groups {
		byID[g.ID] = g
	}
	var sets []probe.EvictionSet
	for _, id := range selected {
		g := byID[id]
		sets = append(sets, g.Offset(1), g.Offset(2), g.Offset(3))
	}
	return &MultiBufferReceiver{
		spy:    spy,
		mon:    probe.NewMonitor(spy, sets),
		n:      len(selected),
		Window: 1,
	}
}

// Listen collects samples and decodes one symbol per monitored-buffer
// clock hit, in observation order.
func (r *MultiBufferReceiver) Listen(nSymbols int, probeInterval, sectionPeriod uint64) []int {
	needed := int(uint64(nSymbols+2*r.n)*sectionPeriod/probeInterval) + 1
	samples := r.mon.Collect(needed, probeInterval)
	return r.decode(samples, sectionPeriod)
}

func (r *MultiBufferReceiver) decode(samples []probe.Sample, sectionPeriod uint64) []int {
	if len(samples) == 0 {
		return nil
	}
	var out []int
	origin := samples[0].At
	lastSlot := make([]int, r.n)
	for i := range lastSlot {
		lastSlot[i] = -1
	}
	for i, s := range samples {
		for b := 0; b < r.n; b++ {
			clk := s.Active[3*b]
			if !clk {
				continue
			}
			slot := int((s.At - origin) / sectionPeriod)
			if slot == lastSlot[b] {
				continue // wide peak within the same section slot
			}
			lastSlot[b] = slot
			d2, d3 := false, false
			for j := i - r.Window; j <= i+r.Window; j++ {
				if j < 0 || j >= len(samples) {
					continue
				}
				d2 = d2 || samples[j].Active[3*b+1]
				d3 = d3 || samples[j].Active[3*b+2]
			}
			switch {
			case d2 && d3:
				out = append(out, 2)
			case d2:
				out = append(out, 1)
			default:
				out = append(out, 0)
			}
		}
	}
	return out
}

// RunMultiBuffer executes a complete n-buffer transmission: the trojan
// sends one symbol per ring section, the spy decodes from the n monitored
// buffers.
func RunMultiBuffer(spy *probe.Spy, groups []probe.EvictionSet, ring []int, nBuffers int, symbols []int, enc Encoding, probeRate float64) (Result, error) {
	selected, err := SelectSpacedBuffers(ring, nBuffers)
	if err != nil {
		return Result{}, err
	}
	tb := spy.Testbed()
	wire := netmodel.NewWire(netmodel.GigabitRate)
	perSym := len(ring) / nBuffers
	if perSym < 1 {
		perSym = 1
	}
	burst := BurstWireTime(perSym, netmodel.GigabitRate)
	sectionPeriod := burst + burst/2
	probeInterval := sim.CyclesPerSecond(probeRate)

	rx := NewMultiBufferReceiver(spy, groups, selected)
	start := tb.Clock().Now() + sectionPeriod
	tb.SetTraffic(NewTrojanSource(wire, symbols, enc, perSym, sectionPeriod, start))
	t0 := tb.Clock().Now()
	wireSyms := rx.Listen(len(symbols), probeInterval, sectionPeriod)
	duration := tb.Clock().Now() - t0
	received := decodeToAlphabet(enc, wireSyms)
	r := evaluate(symbols, received, enc, duration)
	r.CalibrationOK = rx.mon.CalibrationOK()
	return r, nil
}
