package covert

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/netmodel"
	"repro/internal/nic"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// covertWorld builds a small machine plus the offline-phase outputs the
// covert channel needs: the aligned groups and the ground-truth ring (in
// group ids), standing in for a completed sequence recovery.
func covertWorld(t *testing.T, seed int64, noise float64) (*probe.Spy, []probe.EvictionSet, []int) {
	t.Helper()
	opts := testbed.DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(2, 1024, 4)
	opts.NIC = nic.DefaultConfig()
	opts.NIC.RingSize = 32
	opts.NoiseRate = noise
	opts.TimerNoise = 0
	opts.MemBytes = 1 << 28
	tb, err := testbed.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	spy, err := probe.NewSpy(tb, 32*4*4)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := spy.BuildAlignedEvictionSets(opts.Cache.Ways)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := tb.Cache().Config()
	byCanon := map[int]int{}
	for _, g := range groups {
		byCanon[ccfg.AlignedIndexOf(ccfg.GlobalSet(g.Lines[0]))] = g.ID
	}
	var ring []int
	for _, s := range tb.NIC().RingAlignedSets(ccfg) {
		ring = append(ring, byCanon[s])
	}
	return spy, groups, ring
}

func TestEncodingProperties(t *testing.T) {
	if Binary.Base() != 2 || Ternary.Base() != 3 {
		t.Error("alphabet sizes wrong")
	}
	if Binary.BitsPerSymbol() != 1 {
		t.Error("binary bits/symbol")
	}
	if Ternary.BitsPerSymbol() < 1.58 || Ternary.BitsPerSymbol() > 1.59 {
		t.Error("ternary bits/symbol")
	}
	if symbolBlocks(0) != 1 || symbolBlocks(1) != 3 || symbolBlocks(2) != 4 {
		t.Error("symbol block mapping broken")
	}
	if wireSymbol(Binary, 1) != 2 || wireSymbol(Ternary, 1) != 1 {
		t.Error("wire symbol mapping broken")
	}
}

func TestChooseIsolatedBuffer(t *testing.T) {
	ring := []int{3, 5, 3, 7, 9}
	g, ok := ChooseIsolatedBuffer(ring)
	if !ok || g == 3 {
		t.Errorf("got %d ok=%v; 3 appears twice", g, ok)
	}
	if _, ok := ChooseIsolatedBuffer([]int{1, 1, 2, 2}); ok {
		t.Error("no isolated buffer exists")
	}
}

func TestSelectSpacedBuffers(t *testing.T) {
	ring := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sel, err := SelectSpacedBuffers(ring, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Fatalf("selected %d", len(sel))
	}
	if _, err := SelectSpacedBuffers([]int{1, 1}, 2); err == nil {
		t.Error("expected failure with no isolated buffers")
	}
}

func TestDecodeFrames(t *testing.T) {
	mk := func(at uint64, clk, d2, d3 bool) probe.Sample {
		return probe.Sample{At: at, Active: []bool{clk, d2, d3}}
	}
	frame := uint64(1000)
	samples := []probe.Sample{
		mk(0, false, false, false),
		mk(200, true, false, false), // frame 0: symbol 0
		mk(400, false, false, false),
		mk(1100, true, true, false), // frame 1: symbol 1
		mk(1300, true, true, false), // wide peak, same frame: ignored
		mk(2200, true, true, true),  // frame 2: symbol 2
	}
	got := DecodeFrames(samples, frame, 1)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if DecodeFrames(nil, frame, 1) != nil {
		t.Error("empty samples")
	}
}

func TestSingleBufferTernaryRoundTrip(t *testing.T) {
	spy, groups, ring := covertWorld(t, 31, 0)
	gid, ok := ChooseIsolatedBuffer(ring)
	if !ok {
		t.Skip("no isolated buffer in this seed's ring")
	}
	symbols := stats.NewLFSR15(7).Symbols(60, 3)
	res, err := RunSingleBuffer(spy, groups[gid], symbols, Ternary, len(ring), 28_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ternary: bw=%.0f bps err=%.1f%%", res.Bandwidth, 100*res.ErrorRate)
	if res.ErrorRate > 0.10 {
		t.Errorf("quiet-machine ternary error %.1f%% too high", 100*res.ErrorRate)
	}
	if res.Bandwidth < 100 {
		t.Errorf("bandwidth %.0f implausibly low", res.Bandwidth)
	}
}

func TestSingleBufferBinaryRoundTrip(t *testing.T) {
	spy, groups, ring := covertWorld(t, 32, 0)
	gid, ok := ChooseIsolatedBuffer(ring)
	if !ok {
		t.Skip("no isolated buffer in this seed's ring")
	}
	bits := stats.NewLFSR15(3).Bits(60)
	res, err := RunSingleBuffer(spy, groups[gid], bits, Binary, len(ring), 28_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("binary: bw=%.0f bps err=%.1f%%", res.Bandwidth, 100*res.ErrorRate)
	if res.ErrorRate > 0.10 {
		t.Errorf("quiet-machine binary error %.1f%% too high", 100*res.ErrorRate)
	}
}

func TestMultiBufferScalesBandwidth(t *testing.T) {
	var prev float64
	for _, n := range []int{1, 2, 4} {
		spy, groups, ring := covertWorld(t, 33, 0)
		symbols := stats.NewLFSR15(9).Symbols(48, 3)
		res, err := RunMultiBuffer(spy, groups, ring, n, symbols, Ternary, 56_000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		t.Logf("n=%d: bw=%.0f bps err=%.1f%%", n, res.Bandwidth, 100*res.ErrorRate)
		if res.ErrorRate > 0.25 {
			t.Errorf("n=%d error %.1f%% too high", n, 100*res.ErrorRate)
		}
		if prev > 0 && res.Bandwidth < prev*1.5 {
			t.Errorf("n=%d bandwidth %.0f did not scale from %.0f", n, res.Bandwidth, prev)
		}
		prev = res.Bandwidth
	}
}

func TestChasingChannelRoundTrip(t *testing.T) {
	spy, groups, ring := covertWorld(t, 34, 0)
	symbols := stats.NewLFSR15(11).Symbols(100, 3)
	ch := NewChasingChannel(spy, groups, ring)
	res := ch.Run(symbols, Ternary, 20_000, sim.NewRNG(1))
	t.Logf("chasing: bw=%.0f bps err=%.1f%% synced-err=%.1f%% oos=%d",
		res.Bandwidth, 100*res.ErrorRate, 100*res.SyncedErrorRate, res.OutOfSync)
	// The paper's Fig 12c,d regime: a few percent out-of-sync events and
	// error measured on the synchronized regions.
	if res.SyncedErrorRate > 0.15 {
		t.Errorf("chasing synced error %.1f%% too high", 100*res.SyncedErrorRate)
	}
	if OutOfSyncRate(res) > 0.10 {
		t.Errorf("out-of-sync rate %.1f%% beyond paper range", 100*OutOfSyncRate(res))
	}
	if len(res.Received) < 50 {
		t.Errorf("received only %d of 100 symbols", len(res.Received))
	}
}

func TestChasingChannelReorderingDegradesAtHighRate(t *testing.T) {
	// The Fig 12d shape: error jumps when the send rate enters the
	// reordering regime.
	spy1, groups1, ring1 := covertWorld(t, 35, 0)
	symbols := stats.NewLFSR15(13).Symbols(120, 3)
	low := NewChasingChannel(spy1, groups1, ring1).Run(symbols, Ternary, 100_000, sim.NewRNG(2))

	spy2, groups2, ring2 := covertWorld(t, 35, 0)
	high := NewChasingChannel(spy2, groups2, ring2).Run(symbols, Ternary, 450_000, sim.NewRNG(2))

	t.Logf("low rate: err=%.1f%%; high rate: err=%.1f%%",
		100*low.ErrorRate, 100*high.ErrorRate)
	// Reordering plus chase losses both degrade the raw stream fidelity.
	if high.ErrorRate <= low.ErrorRate {
		t.Errorf("high-rate error %.2f should exceed low-rate %.2f (reordering)",
			high.ErrorRate, low.ErrorRate)
	}
}

func TestReorderProbabilityModel(t *testing.T) {
	cases := []struct {
		rate float64
		zero bool
	}{
		{80_000, true}, {250_000, true}, {400_000, false}, {1_000_000, false},
	}
	for _, c := range cases {
		p := netmodel.ReorderProbabilityAt(c.rate)
		if c.zero && p != 0 {
			t.Errorf("rate %.0f: p=%v want 0", c.rate, p)
		}
		if !c.zero && p <= 0 {
			t.Errorf("rate %.0f: p=%v want >0", c.rate, p)
		}
		if p > 0.3 {
			t.Errorf("p must be capped at 0.3, got %v", p)
		}
	}
}
