// Package covert implements the paper's §IV remote covert channel: a
// trojan with network access encodes symbols into the sizes of broadcast
// frames, and a spy with no network access decodes them by watching the
// rx-ring buffers' cache sets.
//
// Three variants are implemented, matching the paper's evaluation:
//
//   - the single-buffer channel (Figs 10, 11): one isolated ring buffer is
//     monitored, one symbol per full ring revolution (256 packets);
//   - the multi-buffer channel (Fig 12a,b): n buffers spaced around the
//     recovered ring, one symbol per 256/n packets;
//   - the full-chasing channel (Fig 12c,d): the chaser follows every
//     buffer, one symbol per packet.
package covert

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Encoding selects the symbol alphabet.
type Encoding int

const (
	// Binary sends "0" as a 1-block frame and "1" as a 4-block frame;
	// the spy requires activity on both data sets to decode a "1", which
	// is why binary error is slightly below ternary (§IV-b).
	Binary Encoding = iota
	// Ternary sends "0" as 1 block, "1" as 3 blocks, "2" as 4 blocks.
	Ternary
)

// Base returns the alphabet size.
func (e Encoding) Base() int {
	if e == Binary {
		return 2
	}
	return 3
}

// BitsPerSymbol returns the information content of one symbol.
func (e Encoding) BitsPerSymbol() float64 {
	if e == Binary {
		return 1
	}
	return 1.5849625007211562 // log2(3)
}

func (e Encoding) String() string {
	if e == Binary {
		return "binary"
	}
	return "ternary"
}

// symbolBlocks maps a symbol to the frame size in cache blocks: 0 -> 1
// block (64 B), 1 -> 3 blocks (192 B), 2 -> 4 blocks (256 B). Binary uses
// {0, 2}. Two-block frames are never sent: block 1 doubles as the clock
// (written by every frame at least via the driver's prefetch), and blocks
// 2 and 3 carry the data.
func symbolBlocks(sym int) int {
	switch sym {
	case 0:
		return 1
	case 1:
		return 3
	default:
		return 4
	}
}

// wireSymbol converts an alphabet symbol to its on-the-wire form.
func wireSymbol(e Encoding, s int) int {
	if e == Binary && s == 1 {
		return 2
	}
	return s
}

// TrojanSource emits the covert frame stream: for each symbol, a burst of
// packetsPerSymbol frames of the symbol's size at line rate, one burst per
// frame period. The frames are ordinary broadcast frames (Known=false):
// they are dropped by the receiving driver and never reach a socket, which
// is what makes the channel invisible to the host's network stack.
type TrojanSource struct {
	wire    *netmodel.Wire
	symbols []int
	enc     Encoding
	perSym  int
	period  uint64
	idx     int
	inBurst int
	frameAt uint64
}

// NewTrojanSource builds the trojan's stream. framePeriod is the symbol
// slot duration in cycles; it must exceed the burst's wire time, and its
// inverse is the channel's symbol rate.
func NewTrojanSource(wire *netmodel.Wire, symbols []int, enc Encoding, packetsPerSymbol int, framePeriod, start uint64) *TrojanSource {
	return &TrojanSource{
		wire:    wire,
		symbols: symbols,
		enc:     enc,
		perSym:  packetsPerSymbol,
		period:  framePeriod,
		frameAt: start,
	}
}

// Next implements netmodel.Source.
func (t *TrojanSource) Next() (netmodel.Frame, bool) {
	if t.idx >= len(t.symbols) {
		return netmodel.Frame{}, false
	}
	sym := wireSymbol(t.enc, t.symbols[t.idx])
	size := netmodel.SizeForBlocks(symbolBlocks(sym))
	f := t.wire.Send(size, t.frameAt, false)
	t.inBurst++
	if t.inBurst >= t.perSym {
		t.inBurst = 0
		t.idx++
		t.frameAt += t.period
	}
	return f, true
}

// BurstWireTime returns the wire time of one worst-case burst, the lower
// bound on the frame period.
func BurstWireTime(packetsPerSymbol int, rateBps float64) uint64 {
	return uint64(packetsPerSymbol) * netmodel.WireTime(netmodel.SizeForBlocks(4), rateBps)
}

// Result summarizes a covert transmission.
type Result struct {
	Sent, Received []int
	// Bandwidth is the realized channel rate in bits/second of simulated
	// time.
	Bandwidth float64
	// ErrorRate is Levenshtein(sent, received)/len(sent).
	ErrorRate float64
	// SyncedErrorRate approximates the paper's "error rate calculated on
	// the synchronized regions" (§IV-c): symbols lost to out-of-sync gaps
	// show up as a pure length deficit, so the deficit is subtracted from
	// the edit distance before normalizing by the received length.
	SyncedErrorRate float64
	// Duration is the simulated transmission time in cycles.
	Duration uint64
	// OutOfSync counts chaser sync losses (full-chasing variant only).
	OutOfSync uint64
	// CalibrationOK reports whether the receiving side's monitors could
	// separate idle timer jitter from frame activity (see
	// probe.Monitor.CalibrationOK / chase.Chaser.CalibrationOK). False
	// means ErrorRate measures a blind receiver, not the channel.
	CalibrationOK bool
}

func evaluate(sent, received []int, enc Encoding, duration uint64) Result {
	r := Result{
		Sent:      sent,
		Received:  received,
		Duration:  duration,
		ErrorRate: stats.ErrorRate(sent, received),
	}
	if len(received) > 0 {
		lev := stats.Levenshtein(sent, received)
		deficit := len(sent) - len(received)
		if deficit < 0 {
			deficit = -deficit
		}
		if lev > deficit {
			r.SyncedErrorRate = float64(lev-deficit) / float64(len(received))
		}
	}
	if duration > 0 {
		r.Bandwidth = float64(len(received)) * enc.BitsPerSymbol() / sim.Seconds(duration)
	}
	return r
}

// Receiver decodes the single-buffer channel. It monitors three sets of
// one isolated ring buffer: block 1 (the clock — every frame writes or
// prefetches it) and blocks 2 and 3 (the data sets). The receiver
// inherits the spy's measurement strategy (probe.Strategy): an amplified
// spy keeps the decode usable under a coarse timer by block-timing walks
// and widening thresholds by the calibrated noise floor.
type Receiver struct {
	spy *probe.Spy
	mon *probe.Monitor
	// Window is the decode window in samples around a clock hit (paper
	// uses 3: activity may straddle two samples).
	Window int
}

// NewReceiver monitors the given aligned group (the isolated buffer's
// conflict group discovered in the offline phase).
func NewReceiver(spy *probe.Spy, group probe.EvictionSet) *Receiver {
	sets := []probe.EvictionSet{group.Offset(1), group.Offset(2), group.Offset(3)}
	return &Receiver{spy: spy, mon: probe.NewMonitor(spy, sets), Window: 1}
}

// CalibrationOK reports whether the receiver's monitor can separate idle
// timer jitter from frame activity (see probe.Monitor.CalibrationOK).
func (r *Receiver) CalibrationOK() bool { return r.mon.CalibrationOK() }

// Listen samples for the given number of symbol frames and decodes one
// symbol per frame in which the clock set fired. probeInterval is the
// cycle gap between probe passes; framePeriod must match the trojan's.
func (r *Receiver) Listen(nSymbols int, probeInterval, framePeriod uint64) []int {
	samplesNeeded := int(uint64(nSymbols+2)*framePeriod/probeInterval) + 1
	samples := r.mon.Collect(samplesNeeded, probeInterval)
	return DecodeFrames(samples, framePeriod, r.Window)
}

// DecodeFrames performs frame-slotted decoding of (clock, d2, d3) samples:
// within each frame period containing clock activity, the symbol is read
// from the data sets in a window around the clock sample.
func DecodeFrames(samples []probe.Sample, framePeriod uint64, window int) []int {
	if len(samples) == 0 {
		return nil
	}
	var out []int
	origin := samples[0].At
	frame := -1
	for i, s := range samples {
		if !s.Active[0] {
			continue // no clock activity
		}
		f := int((s.At - origin) / framePeriod)
		if f == frame {
			continue // same frame already decoded (wide peak)
		}
		frame = f
		d2, d3 := false, false
		for j := i - window; j <= i+window; j++ {
			if j < 0 || j >= len(samples) {
				continue
			}
			d2 = d2 || samples[j].Active[1]
			d3 = d3 || samples[j].Active[2]
		}
		switch {
		case d2 && d3:
			out = append(out, 2)
		case d2:
			out = append(out, 1)
		default:
			out = append(out, 0)
		}
	}
	return out
}

// decodeToAlphabet folds wire symbols back into the encoding's alphabet.
func decodeToAlphabet(enc Encoding, wire []int) []int {
	if enc == Ternary {
		return wire
	}
	out := make([]int, len(wire))
	for i, s := range wire {
		if s == 2 {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
	return out
}

// ChooseIsolatedBuffer returns a group id that appears exactly once in the
// recovered ring — a buffer whose page-aligned set hosts no other ring
// buffer, the property the single-buffer channel needs (§IV-b). ok=false
// if no such buffer exists.
func ChooseIsolatedBuffer(ring []int) (int, bool) {
	count := map[int]int{}
	for _, g := range ring {
		count[g]++
	}
	for _, g := range ring {
		if count[g] == 1 {
			return g, true
		}
	}
	return 0, false
}

// RunSingleBuffer executes a complete single-buffer transmission on the
// spy's testbed: the trojan sends the symbols, the spy decodes them.
func RunSingleBuffer(spy *probe.Spy, group probe.EvictionSet, symbols []int, enc Encoding, ringSize int, probeRate float64) (Result, error) {
	if len(symbols) == 0 {
		return Result{}, fmt.Errorf("covert: no symbols")
	}
	tb := spy.Testbed()
	wire := netmodel.NewWire(netmodel.GigabitRate)
	burst := BurstWireTime(ringSize, netmodel.GigabitRate)
	framePeriod := burst + burst/2
	probeInterval := sim.CyclesPerSecond(probeRate)
	// A frame slot must span several probes or the receiver undersamples;
	// this only binds on scaled-down rings (at the paper's 256-packet
	// bursts even a 7 kHz probe rate sees each slot twice).
	if min := 3 * probeInterval; framePeriod < min {
		framePeriod = min
	}

	rx := NewReceiver(spy, group)
	start := tb.Clock().Now() + framePeriod
	tb.SetTraffic(NewTrojanSource(wire, symbols, enc, ringSize, framePeriod, start))
	t0 := tb.Clock().Now()
	wireSyms := rx.Listen(len(symbols), probeInterval, framePeriod)
	duration := tb.Clock().Now() - t0
	received := decodeToAlphabet(enc, wireSyms)
	r := evaluate(symbols, received, enc, duration)
	r.CalibrationOK = rx.CalibrationOK()
	return r, nil
}
