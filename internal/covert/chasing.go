package covert

import (
	"repro/internal/chase"
	"repro/internal/netmodel"
	"repro/internal/probe"
	"repro/internal/sim"
)

// ChasingChannel is the §IV-c full-sequence channel (Fig 12c,d): the spy
// probes one buffer at a time, moving to the next ring buffer on each
// detected packet, so the trojan can send one symbol per packet. Its
// bandwidth is set by the trojan's packet rate; its weakness is losing
// sync when a packet is missed, after which the spy must wait for the ring
// to come back around.
type ChasingChannel struct {
	spy    *probe.Spy
	groups []probe.EvictionSet
	ring   []int
}

// NewChasingChannel builds the channel from the offline phase's outputs.
func NewChasingChannel(spy *probe.Spy, groups []probe.EvictionSet, ring []int) *ChasingChannel {
	return &ChasingChannel{spy: spy, groups: groups, ring: ring}
}

// perPacketSource sends one symbol per frame at the given packet rate,
// optionally through the reordering model that kicks in at high rates.
func perPacketSource(wire *netmodel.Wire, symbols []int, enc Encoding, packetRate float64, start uint64, rng *sim.RNG) netmodel.Source {
	sizes := make([]int, len(symbols))
	gaps := make([]uint64, len(symbols))
	period := sim.CyclesPerSecond(packetRate)
	for i, s := range symbols {
		sizes[i] = netmodel.SizeForBlocks(symbolBlocks(wireSymbol(enc, s)))
		if i > 0 {
			gaps[i] = period
		}
	}
	var src netmodel.Source = &fixedGapSource{wire: wire, sizes: sizes, period: period, nextAt: start}
	if p := netmodel.ReorderProbabilityAt(packetRate); p > 0 {
		src = netmodel.NewReorderingSource(src, p, rng)
	}
	return src
}

// fixedGapSource emits one frame per period regardless of wire occupancy
// (sizes differ, so TraceSource's arrival chaining would skew spacing).
type fixedGapSource struct {
	wire   *netmodel.Wire
	sizes  []int
	period uint64
	nextAt uint64
	idx    int
}

func (s *fixedGapSource) Next() (netmodel.Frame, bool) {
	if s.idx >= len(s.sizes) {
		return netmodel.Frame{}, false
	}
	f := s.wire.Send(s.sizes[s.idx], s.nextAt, false)
	s.nextAt += s.period
	s.idx++
	return f, true
}

// Run executes a transmission of the given symbols at packetRate frames
// per second and decodes by chasing. Decoded symbols come from the size
// class of each observed packet: 1-2 blocks -> 0, 3 -> 1, 4+ -> 2.
func (c *ChasingChannel) Run(symbols []int, enc Encoding, packetRate float64, rng *sim.RNG) Result {
	tb := c.spy.Testbed()
	cfg := chase.DefaultChaserConfig()
	cfg.MonitorSecondHalf = false // covert frames are dropped small frames
	cfg.SwitchDetect = false      // paced stream: residue would insert symbols
	period := sim.CyclesPerSecond(packetRate)
	cfg.PollInterval = period / 8
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 1
	}
	cfg.SyncTimeout = period * uint64(len(c.ring)) * 2
	// Linger long enough to absorb driver residue but never longer than a
	// fraction of the packet period, or the chase cannot keep up.
	if cfg.LingerCycles > period/3 {
		cfg.LingerCycles = period / 3
	}
	// Chaser first: its monitor calibration costs simulated time and must
	// not overlap the transmission.
	ch := chase.NewChaser(c.spy, c.groups, c.ring, cfg)
	wire := netmodel.NewWire(netmodel.GigabitRate)
	start := tb.Clock().Now() + 100_000
	tb.SetTraffic(perPacketSource(wire, symbols, enc, packetRate, start, rng))

	t0 := tb.Clock().Now()
	obs := ch.Chase(len(symbols))
	duration := tb.Clock().Now() - t0

	received := make([]int, 0, len(obs))
	for _, o := range obs {
		switch {
		case o.Blocks >= 4:
			received = append(received, 2)
		case o.Blocks == 3:
			received = append(received, 1)
		default:
			received = append(received, 0)
		}
	}
	res := evaluate(symbols, decodeToAlphabet(enc, received), enc, duration)
	res.OutOfSync = ch.OutOfSync
	res.CalibrationOK = ch.CalibrationOK()
	return res
}

// OutOfSyncRate converts a Result's sync losses into the per-packet rate
// Fig 12c reports.
func OutOfSyncRate(r Result) float64 {
	if len(r.Sent) == 0 {
		return 0
	}
	return float64(r.OutOfSync) / float64(len(r.Sent))
}
