package testbed

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/netmodel"
)

func small(t *testing.T, seed int64) *Testbed {
	t.Helper()
	opts := DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(2, 128, 4)
	opts.MemBytes = 1 << 26
	tb, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestSyncDeliversDueFrames(t *testing.T) {
	tb := small(t, 1)
	wire := netmodel.NewWire(netmodel.GigabitRate)
	tb.SetTraffic(netmodel.NewConstantSource(wire, 64, 100_000, 0, 3))
	tb.IdleTo(100_000_000)
	if got := tb.NIC().Stats().Received; got != 3 {
		t.Errorf("received %d frames want 3", got)
	}
}

func TestSyncDoesNotDeliverFutureFrames(t *testing.T) {
	tb := small(t, 2)
	wire := netmodel.NewWire(netmodel.GigabitRate)
	tb.SetTraffic(netmodel.NewConstantSource(wire, 64, 100, tb.Clock().Now()+1_000_000, 5))
	tb.Sync()
	if got := tb.NIC().Stats().Received; got != 0 {
		t.Errorf("future frames delivered early: %d", got)
	}
}

func TestDrainTraffic(t *testing.T) {
	tb := small(t, 3)
	wire := netmodel.NewWire(netmodel.GigabitRate)
	tb.SetTraffic(netmodel.NewConstantSource(wire, 128, 50_000, tb.Clock().Now(), 10))
	if n := tb.DrainTraffic(); n != 10 {
		t.Errorf("drained %d frames want 10", n)
	}
	if tb.NIC().PendingDriverWork() != 0 {
		t.Error("driver work must be flushed after drain")
	}
}

func TestNoiseProcessTouchesCache(t *testing.T) {
	opts := DefaultOptions(4)
	opts.Cache = cache.ScaledConfig(2, 128, 4)
	opts.NoiseRate = 1_000_000
	opts.MemBytes = 1 << 26
	tb, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	before := tb.Cache().Stats().CPUAccesses
	tb.Idle(10_000_000)
	if tb.Cache().Stats().CPUAccesses == before {
		t.Error("noise process produced no cache accesses")
	}
}

func TestTimerReadOneSided(t *testing.T) {
	opts := DefaultOptions(5)
	opts.Cache = cache.ScaledConfig(2, 128, 4)
	opts.TimerNoise = 8
	opts.MemBytes = 1 << 26
	tb, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if got := tb.TimerRead(100); got < 100 || got > 100+16 {
			t.Fatalf("timer read %d outside [100,116]", got)
		}
	}
	opts.TimerNoise = 0
	tb2, _ := New(opts)
	if tb2.TimerRead(100) != 100 {
		t.Error("zero noise must be exact")
	}
}

func TestReplacingTrafficDropsPending(t *testing.T) {
	tb := small(t, 6)
	wire := netmodel.NewWire(netmodel.GigabitRate)
	tb.SetTraffic(netmodel.NewConstantSource(wire, 64, 1, tb.Clock().Now()+1<<40, 5))
	tb.Sync() // peeks and holds the far-future frame
	tb.SetTraffic(netmodel.NewConstantSource(wire, 64, 100_000, tb.Clock().Now(), 2))
	tb.DrainTraffic()
	if got := tb.NIC().Stats().Received; got != 2 {
		t.Errorf("received %d want 2 (old pending frame must be dropped)", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		tb := small(t, 7)
		wire := netmodel.NewWire(netmodel.GigabitRate)
		tb.SetTraffic(netmodel.NewConstantSource(wire, 200, 150_000, tb.Clock().Now(), 50))
		tb.DrainTraffic()
		return tb.Cache().Stats().CPUAccesses + tb.Cache().Stats().IOWrites + tb.Clock().Now()
	}
	if run() != run() {
		t.Error("same seed must reproduce the same world exactly")
	}
}
