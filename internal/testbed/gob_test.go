package testbed

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/cache"
	"repro/internal/nic"
	"repro/internal/sim"
)

// gobRoundTrip encodes a snapshot and decodes it into a fresh value.
func gobRoundTrip(t *testing.T, snap *Snapshot) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out := &Snapshot{}
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

// TestSnapshotGobRoundTrip: a machine cloned from a gob-round-tripped
// snapshot must replay a deterministic workload bit-identically to a
// clone of the original snapshot — the property the disk-backed artifact
// store rests on. Covered machine variants include the partition defense
// (per-set counter state) and driver randomization (driver RNG state),
// since those exercise every optional branch of the wire format.
func TestSnapshotGobRoundTrip(t *testing.T) {
	variants := map[string]func(*Options){
		"baseline": func(*Options) {},
		"partition": func(o *Options) {
			o.Cache.Partition = cache.DefaultPartitionConfig()
		},
		"randomized-ring": func(o *Options) {
			o.NIC.Randomize = nic.RandomizeFull
		},
		"no-noise": func(o *Options) {
			o.NoiseRate = 0
			o.TimerNoise = 0
		},
	}
	for name, mutate := range variants {
		t.Run(name, func(t *testing.T) {
			opts := smallOptions(11)
			mutate(&opts)
			tb, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			// Drive the world into a non-trivial state before capturing.
			script := make([]byte, 160)
			rng := sim.NewRNG(5)
			for i := range script {
				script[i] = byte(rng.Intn(256))
			}
			worldOps(tb, script[:100])
			snap, err := tb.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			orig, err := NewFromSnapshot(opts, snap)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := NewFromSnapshot(opts, gobRoundTrip(t, snap))
			if err != nil {
				t.Fatal(err)
			}
			a := worldOps(orig, script[100:])
			b := worldOps(decoded, script[100:])
			if len(a) != len(b) {
				t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("observation %d: %d original, %d decoded", i, a[i], b[i])
				}
			}
		})
	}
}
