package testbed

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// smallOptions is a quick-to-build machine with every stateful subsystem
// live: partitioned cache off (DDIO on), noise and timer processes
// enabled, a modest driver ring.
func smallOptions(seed int64) Options {
	opts := DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(2, 64, 4)
	opts.NIC.RingSize = 16
	opts.NIC.SKBPages = 8
	opts.MemBytes = 1 << 22 // 4 MiB: 1024 pages
	opts.NoiseRate = 200_000
	opts.TimerNoise = 6
	return opts
}

// worldOps drives the machine through a deterministic mixed workload —
// frame DMA + driver processing, idle time with background noise, direct
// cache traffic, timer reads — and returns an observation trace that a
// replay must reproduce bit for bit.
func worldOps(tb *Testbed, data []byte) []uint64 {
	var obs []uint64
	for i := 0; i+2 <= len(data); i += 2 {
		kind, arg := data[i]%5, uint64(data[i+1])
		switch kind {
		case 0: // frame arrival through the NIC (known and unknown protos)
			f := netmodel.Frame{
				Size:    64 + int(arg%1400),
				Arrival: tb.Clock().Now(),
				Known:   arg%3 != 0,
			}
			tb.NIC().Receive(f)
			obs = append(obs, tb.NIC().Stats().Received)
		case 1: // idle: noise process and driver queue drain
			tb.Idle(1_000 + arg*500)
			obs = append(obs, tb.Clock().Now(), tb.Cache().Stats().CPUAccesses)
		case 2: // spy-style read with timer noise
			_, lat := tb.Cache().Read(arg * 64)
			tb.Clock().Advance(lat)
			obs = append(obs, tb.TimerRead(lat))
		case 3: // driver catch-up
			tb.NIC().ProcessDriver(tb.Clock().Now())
			obs = append(obs, uint64(tb.NIC().PendingDriverWork()))
		case 4: // cache write + occupancy oracle
			_, lat := tb.Cache().Write(arg * 64)
			tb.Clock().Advance(lat)
			obs = append(obs, lat, tb.Cache().Stats().MemWrites)
		}
	}
	return obs
}

// checkWorldReplay is the satellite acceptance property: for a random op
// prefix, Snapshot -> ops -> Restore -> ops replays byte-identically
// across cache, NIC, and testbed.
func checkWorldReplay(t *testing.T, seed int64, data []byte) {
	t.Helper()
	if len(data) < 4 {
		return
	}
	tb, err := New(smallOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	cut := (int(data[0]) % (len(data) / 2)) &^ 1
	worldOps(tb, data[1:1+cut])

	snap, err := tb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	suffix := data[1+cut:]
	first := worldOps(tb, suffix)
	tb.Restore(snap)
	second := worldOps(tb, suffix)

	if len(first) != len(second) {
		t.Fatalf("replay lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("observation %d: %d on first run, %d on replay", i, first[i], second[i])
		}
	}
	// The world cursors must coincide too, not just observations.
	a, err := tb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tb.Restore(snap)
	worldOps(tb, suffix)
	b, err := tb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if a.clock != b.clock || a.noiseNextAt != b.noiseNextAt ||
		a.noiseRNG != b.noiseRNG || a.timerRNG != b.timerRNG {
		t.Fatal("world cursors differ after replay")
	}
}

func TestWorldSnapshotReplayDeterministic(t *testing.T) {
	rng := sim.NewRNG(99)
	for trial := 0; trial < 20; trial++ {
		data := make([]byte, 64+rng.Intn(128))
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		checkWorldReplay(t, int64(trial), data)
	}
}

// TestSnapshotIntoFreshTestbed is the warm-start clone path: restore a
// snapshot into a separately constructed machine with identical options
// and check both worlds evolve identically from there.
func TestSnapshotIntoFreshTestbed(t *testing.T) {
	opts := smallOptions(7)
	a, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	script := make([]byte, 120)
	rng := sim.NewRNG(3)
	for i := range script {
		script[i] = byte(rng.Intn(256))
	}
	worldOps(a, script[:60])
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	b, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	b.Restore(snap)
	// NewFromSnapshot is the cheap clone path: shell construction plus
	// Restore. It must be indistinguishable from New + Restore.
	c, err := NewFromSnapshot(opts, snap)
	if err != nil {
		t.Fatal(err)
	}
	want := worldOps(a, script[60:])
	for name, clone := range map[string]*Testbed{"New+Restore": b, "NewFromSnapshot": c} {
		got := worldOps(clone, script[60:])
		if len(got) != len(want) {
			t.Fatalf("%s: trace lengths differ: %d vs %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: clone diverged at observation %d: %d vs %d", name, i, got[i], want[i])
			}
		}
	}
}

// TestSnapshotRefusesTraffic pins the no-traffic contract.
func TestSnapshotRefusesTraffic(t *testing.T) {
	tb, err := New(smallOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	wire := netmodel.NewWire(netmodel.GigabitRate)
	tb.SetTraffic(netmodel.NewConstantSource(wire, 64, 1000, 0, 10))
	if _, err := tb.Snapshot(); err == nil {
		t.Fatal("snapshot with traffic installed must fail")
	}
	tb.SetTraffic(nil)
	if _, err := tb.Snapshot(); err != nil {
		t.Fatalf("snapshot without traffic: %v", err)
	}
}

// TestRestoreDropsOnlineOverrides: Restore must return the machine to the
// snapshot's environment even after SetNoiseRate / SetTimerNoise /
// ReseedOnline changed it.
func TestRestoreDropsOnlineOverrides(t *testing.T) {
	tb, err := New(smallOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	tb.Idle(100_000)
	snap, err := tb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantTimer := tb.Options().TimerNoise
	before := worldOps(tb, []byte{2, 9, 2, 17, 1, 4, 2, 9})

	tb.Restore(snap)
	tb.SetNoiseRate(5_000_000)
	tb.SetTimerNoise(200)
	tb.ReseedOnline(12345)
	tb.Restore(snap)
	if tb.Options().TimerNoise != wantTimer {
		t.Fatalf("timer noise %d after restore, want %d", tb.Options().TimerNoise, wantTimer)
	}
	after := worldOps(tb, []byte{2, 9, 2, 17, 1, 4, 2, 9})
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("observation %d differs after override+restore: %d vs %d", i, before[i], after[i])
		}
	}
}

// FuzzWorldSnapshotReplay hands the op script to the fuzzer.
func FuzzWorldSnapshotReplay(f *testing.F) {
	f.Add(int64(1), []byte{8, 0, 10, 1, 3, 2, 40, 3, 0, 0, 200, 1, 1, 4, 7})
	f.Add(int64(5), []byte{20, 2, 2, 0, 255, 1, 9, 0, 64, 3, 1, 2, 2, 4, 4, 0, 0, 1, 8})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		if len(data) > 2048 {
			return
		}
		checkWorldReplay(t, seed%64, data)
	})
}
