package testbed

import (
	"testing"

	"repro/internal/netmodel"
)

// BenchmarkSyncTrafficNoise pins the event-delivery loop: frames and
// background noise interleaved in timestamp order. The loop drains all
// noise accesses due before the (stable) next frame arrival in one inner
// pass rather than re-peeking the frame source per event.
func BenchmarkSyncTrafficNoise(b *testing.B) {
	tb, err := New(DefaultOptions(7))
	if err != nil {
		b.Fatal(err)
	}
	wire := netmodel.NewWire(10e9)
	// ~1M packets/s at 3.3 GHz: one frame every ~3300 cycles, noise every
	// ~66k cycles — several events per 10k-cycle Idle step below.
	tb.SetTraffic(netmodel.NewConstantSource(wire, 256, 1e6, tb.Clock().Now(), b.N*4+16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Idle(10_000)
	}
}
