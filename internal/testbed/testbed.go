// Package testbed assembles the simulated machine the attack runs on: the
// cycle clock, physical memory, LLC, NIC+driver, a traffic source, and a
// background-noise process standing in for the other tenants of a busy
// server. The spy drives simulated time; the testbed keeps the rest of the
// world (frame deliveries, driver work, noise) caught up whenever the spy
// looks at the clock.
package testbed

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/netmodel"
	"repro/internal/nic"
	"repro/internal/sim"
)

// Options configures a testbed.
type Options struct {
	// Cache is the LLC geometry/feature config (default: the paper
	// machine with DDIO on).
	Cache cache.Config
	// NIC is the adapter/driver config (default: stock IGB).
	NIC nic.Config
	// MemBytes is the physical memory size (default 1 GiB).
	MemBytes uint64
	// Seed drives every random decision in the world.
	Seed int64
	// NoiseRate is the rate (accesses/second) of a background process
	// touching uniformly random cache lines — ambient server activity
	// that the attack's thresholds and windows must tolerate.
	NoiseRate float64
	// TimerNoise is the magnitude of one-sided jitter added to the spy's
	// latency measurements, modeling timer granularity: TimerRead adds a
	// uniform value in [0, 2*TimerNoise] cycles (mean TimerNoise), never
	// subtracting — a coarse timer can only over-report elapsed work.
	// Zero means a perfect timer.
	TimerNoise uint64
}

// DefaultOptions returns the paper machine: 20 MB DDIO LLC, stock IGB
// driver, 1 GiB memory, light background noise.
func DefaultOptions(seed int64) Options {
	return Options{
		Cache:      cache.PaperConfig(),
		NIC:        nic.DefaultConfig(),
		MemBytes:   1 << 30,
		Seed:       seed,
		NoiseRate:  50_000,
		TimerNoise: 8,
	}
}

// Testbed is the assembled machine.
type Testbed struct {
	opts  Options
	clock *sim.Clock
	cache *cache.Cache
	alloc *mem.Allocator
	nic   *nic.NIC

	traffic   netmodel.Source
	nextFrame *netmodel.Frame

	noiseRNG    *sim.RNG
	noisePeriod uint64
	noiseNextAt uint64
	noiseSpace  uint64

	timerRNG *sim.RNG
}

// New builds a testbed. The NIC's ring pages are allocated here, so two
// testbeds with the same seed have identical ring layouts.
func New(opts Options) (*Testbed, error) {
	if opts.MemBytes == 0 {
		opts.MemBytes = 1 << 30
	}
	clock := sim.NewClock()
	c := cache.New(opts.Cache, clock)
	alloc := mem.NewAllocator(opts.MemBytes, sim.Derive(opts.Seed, "page-alloc"))
	n, err := nic.New(opts.NIC, c, alloc, clock, sim.Derive(opts.Seed, "driver"))
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	tb := &Testbed{
		opts:       opts,
		clock:      clock,
		cache:      c,
		alloc:      alloc,
		nic:        n,
		noiseRNG:   sim.Derive(opts.Seed, "noise"),
		timerRNG:   sim.Derive(opts.Seed, "timer"),
		noiseSpace: opts.MemBytes,
	}
	if opts.NoiseRate > 0 {
		tb.noisePeriod = sim.CyclesPerSecond(opts.NoiseRate)
		tb.noiseNextAt = tb.noisePeriod
	}
	return tb, nil
}

// Clock returns the simulated cycle clock.
func (tb *Testbed) Clock() *sim.Clock { return tb.clock }

// Cache returns the LLC.
func (tb *Testbed) Cache() *cache.Cache { return tb.cache }

// Alloc returns the physical page allocator.
func (tb *Testbed) Alloc() *mem.Allocator { return tb.alloc }

// NIC returns the adapter/driver model.
func (tb *Testbed) NIC() *nic.NIC { return tb.nic }

// Options returns the construction options.
func (tb *Testbed) Options() Options { return tb.opts }

// SetTraffic installs the frame source whose frames are delivered as
// simulated time passes. Replacing the source drops any undelivered frame
// from the previous one.
func (tb *Testbed) SetTraffic(src netmodel.Source) {
	tb.traffic = src
	tb.nextFrame = nil
}

// Sync delivers every world event due at or before the current cycle:
// frame DMA, driver processing, and background noise. The spy calls this
// (via probe helpers) whenever it is about to measure.
func (tb *Testbed) Sync() {
	now := tb.clock.Now()
	for {
		// Interleave frames and noise in timestamp order so cache state
		// evolves in a deterministic global order. The next frame's arrival
		// is stable while noise drains, so all noise accesses due before it
		// are delivered in one inner loop instead of re-peeking the frame
		// per event; a frame wins an exact timestamp tie, as before.
		frameAt, haveFrame := tb.peekFrame()
		for tb.noisePeriod != 0 && tb.noiseNextAt <= now && (!haveFrame || tb.noiseNextAt < frameAt) {
			tb.noiseAccess()
		}
		if !haveFrame || frameAt > now {
			tb.nic.ProcessDriver(now)
			return
		}
		tb.nic.Receive(*tb.nextFrame)
		tb.nextFrame = nil
	}
}

// TimerRead returns a latency observation with timer noise applied — the
// spy's view of a measured duration.
func (tb *Testbed) TimerRead(lat uint64) uint64 {
	if tb.opts.TimerNoise == 0 {
		return lat
	}
	j := uint64(tb.timerRNG.Intn(int(2*tb.opts.TimerNoise + 1)))
	return lat + j // one-sided jitter: a timer never under-reports work
}

// Idle advances the clock by d cycles with the spy doing nothing, keeping
// the world caught up.
func (tb *Testbed) Idle(d uint64) {
	tb.clock.Advance(d)
	tb.Sync()
}

// IdleTo advances the clock to cycle t (no-op if already past).
func (tb *Testbed) IdleTo(t uint64) {
	if t > tb.clock.Now() {
		tb.clock.AdvanceTo(t)
	}
	tb.Sync()
}

// DrainTraffic delivers every remaining frame of the current source,
// advancing the clock as needed. It returns the number delivered.
func (tb *Testbed) DrainTraffic() int {
	n := 0
	for {
		at, ok := tb.peekFrame()
		if !ok {
			break
		}
		tb.IdleTo(at)
		n++
	}
	tb.nic.ProcessDriver(tb.clock.Now() + tb.opts.NIC.DriverLatency)
	return n
}

func (tb *Testbed) peekFrame() (uint64, bool) {
	if tb.nextFrame == nil && tb.traffic != nil {
		if f, ok := tb.traffic.Next(); ok {
			tb.nextFrame = &f
		}
	}
	if tb.nextFrame == nil {
		return 0, false
	}
	return tb.nextFrame.Arrival, true
}

func (tb *Testbed) noiseAccess() {
	addr := uint64(tb.noiseRNG.Int63()) % tb.noiseSpace
	tb.cache.Read(addr &^ 63)
	// Poisson-ish arrivals: exponential-ish spacing via uniform jitter.
	tb.noiseNextAt += uint64(tb.noiseRNG.Jitter(float64(tb.noisePeriod), 0.9))
}
