package testbed

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/sim"
)

// Snapshot is a deep, immutable copy of the whole machine's mutable state:
// clock cycle, cache contents, physical-memory bookkeeping, NIC/driver
// state, the noise and timer RNG stream positions, and the noise process
// cursor. One snapshot can be restored any number of times, into the
// testbed it was taken from or into a freshly constructed testbed with
// identical Options — the warm-start path clones machines that way, one
// independent clone per concurrent trial.
//
// A snapshot deliberately excludes the traffic source: Source
// implementations are arbitrary iterators with no generic state capture.
// Snapshots are therefore taken between traffic phases (the phase-split
// experiment API snapshots after the offline phase, before any online
// stream is installed) and Restore leaves the machine with no traffic.
type Snapshot struct {
	clock uint64
	cache *cache.Snapshot
	alloc *mem.AllocatorState
	nic   *nic.Snapshot

	noiseRNG sim.RNGState
	timerRNG sim.RNGState

	noiseRate   float64
	timerNoise  uint64
	noisePeriod uint64
	noiseNextAt uint64
	noiseSpace  uint64
}

// Snapshot captures the machine state. It fails when a traffic source is
// installed or a frame is already peeked from one: traffic cursors cannot
// be captured generically, so snapshotting mid-stream would silently drop
// frames on restore.
func (tb *Testbed) Snapshot() (*Snapshot, error) {
	if tb.traffic != nil || tb.nextFrame != nil {
		return nil, fmt.Errorf("testbed: cannot snapshot with a traffic source installed")
	}
	return &Snapshot{
		clock:       tb.clock.Snapshot(),
		cache:       tb.cache.Snapshot(),
		alloc:       tb.alloc.Snapshot(),
		nic:         tb.nic.Snapshot(),
		noiseRNG:    tb.noiseRNG.Snapshot(),
		timerRNG:    tb.timerRNG.Snapshot(),
		noiseRate:   tb.opts.NoiseRate,
		timerNoise:  tb.opts.TimerNoise,
		noisePeriod: tb.noisePeriod,
		noiseNextAt: tb.noiseNextAt,
		noiseSpace:  tb.noiseSpace,
	}, nil
}

// SnapshotInto captures the machine state into a caller-owned scratch
// snapshot, reusing the component snapshots' backing slices. It exists for
// paths that snapshot repeatedly (offline builds, benchmarks); a snapshot
// filed in an artifact must be a fresh Snapshot(), since artifacts rely on
// snapshot immutability. The traffic restriction matches Snapshot.
func (tb *Testbed) SnapshotInto(s *Snapshot) error {
	if tb.traffic != nil || tb.nextFrame != nil {
		return fmt.Errorf("testbed: cannot snapshot with a traffic source installed")
	}
	if s.cache == nil {
		s.cache = &cache.Snapshot{}
	}
	if s.alloc == nil {
		s.alloc = &mem.AllocatorState{}
	}
	if s.nic == nil {
		s.nic = &nic.Snapshot{}
	}
	s.clock = tb.clock.Snapshot()
	tb.cache.SnapshotInto(s.cache)
	tb.alloc.SnapshotInto(s.alloc)
	tb.nic.SnapshotInto(s.nic)
	s.noiseRNG = tb.noiseRNG.Snapshot()
	s.timerRNG = tb.timerRNG.Snapshot()
	s.noiseRate = tb.opts.NoiseRate
	s.timerNoise = tb.opts.TimerNoise
	s.noisePeriod = tb.noisePeriod
	s.noiseNextAt = tb.noiseNextAt
	s.noiseSpace = tb.noiseSpace
	return nil
}

// NewShell assembles a machine with no free-list shuffle, no ring/skb page
// allocation, and no RNG warm-up — a restore target. A shell that is never
// restored has an empty allocator and a zeroed ring and must not be used;
// every clone path pairs it with Restore (or a variant), which overwrites
// all of that wholesale.
func NewShell(opts Options) (*Testbed, error) {
	if opts.MemBytes == 0 {
		opts.MemBytes = 1 << 30
	}
	clock := sim.NewClock()
	c := cache.New(opts.Cache, clock)
	alloc := mem.NewAllocatorShell(opts.MemBytes)
	n, err := nic.NewShell(opts.NIC, c, alloc, clock, sim.NewRNG(0))
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	return &Testbed{
		opts:       opts,
		clock:      clock,
		cache:      c,
		alloc:      alloc,
		nic:        n,
		noiseRNG:   sim.NewRNG(0),
		timerRNG:   sim.NewRNG(0),
		noiseSpace: opts.MemBytes,
	}, nil
}

// NewFromSnapshot builds an independent machine directly in a snapshot's
// state — the warm-start clone path. Unlike New followed by Restore, it
// assembles component shells (no free-list shuffle, no ring/skb/spy page
// allocation, no RNG warm-up) since Restore overwrites all of that
// wholesale; the result is state-identical to restoring into a
// conventionally built testbed with the same options, just cheaper. One
// immutable snapshot may be cloned concurrently any number of times.
func NewFromSnapshot(opts Options, s *Snapshot) (*Testbed, error) {
	tb, err := NewShell(opts)
	if err != nil {
		return nil, err
	}
	tb.Restore(s)
	return tb, nil
}

// Restore overwrites the machine's mutable state from a snapshot taken on
// a machine with identical geometry (same Options except, possibly, the
// online knobs NoiseRate and TimerNoise, which the snapshot carries). Any
// installed traffic source is dropped, matching the no-traffic state the
// snapshot was taken in.
func (tb *Testbed) Restore(s *Snapshot) {
	tb.restore(s, true)
}

// RestoreReseeded is Restore followed by ReseedOnline(seed), except the
// snapshot's noise/timer/driver RNG positions — which the reseed would
// immediately discard — are never replayed. Replaying those streams is
// O(offline draw history) per restore, the dominant cost of warm-starting
// from a machine whose offline phase burned millions of noise events, so
// every warm trial that decorrelates its ambient randomness takes this
// entrance. The result is state-identical to Restore+ReseedOnline.
func (tb *Testbed) RestoreReseeded(s *Snapshot, seed int64) {
	tb.restore(s, false)
	tb.ReseedOnline(seed)
}

func (tb *Testbed) restore(s *Snapshot, withRNG bool) {
	tb.clock.Restore(s.clock)
	tb.cache.Restore(s.cache)
	tb.alloc.Restore(s.alloc)
	if withRNG {
		tb.nic.Restore(s.nic)
		tb.noiseRNG.Restore(s.noiseRNG)
		tb.timerRNG.Restore(s.timerRNG)
	} else {
		tb.nic.RestoreSkipRNG(s.nic)
	}
	tb.opts.NoiseRate = s.noiseRate
	tb.opts.TimerNoise = s.timerNoise
	tb.noisePeriod = s.noisePeriod
	tb.noiseNextAt = s.noiseNextAt
	tb.noiseSpace = s.noiseSpace
	tb.traffic = nil
	tb.nextFrame = nil
}

// AdoptSnapshot rebinds a pooled machine to a (possibly different) rig's
// options and restores it into the snapshot's state, in place. The caller
// guarantees opts shares the machine's OfflineFingerprint — same geometry,
// so every buffer is reused — while non-fingerprint options (seed, online
// knobs) may differ and are adopted wholesale. This is the rig-pool lease
// path: state-identical to NewFromSnapshot(opts, s) without constructing
// anything.
func (tb *Testbed) AdoptSnapshot(opts Options, s *Snapshot) {
	tb.adopt(opts)
	tb.restore(s, true)
}

// AdoptSnapshotReseeded is AdoptSnapshot with the RestoreReseeded entrance:
// the snapshot's online RNG positions are skipped and re-derived from seed.
func (tb *Testbed) AdoptSnapshotReseeded(opts Options, s *Snapshot, seed int64) {
	tb.adopt(opts)
	tb.restore(s, false)
	tb.ReseedOnline(seed)
}

func (tb *Testbed) adopt(opts Options) {
	if opts.MemBytes == 0 {
		opts.MemBytes = 1 << 30
	}
	tb.opts = opts
	tb.noiseSpace = opts.MemBytes
}

// snapshotGob mirrors Snapshot with exported fields for the disk-backed
// artifact store. The component snapshots carry their own gob codecs, so
// this composes the same way the in-memory snapshot does.
type snapshotGob struct {
	Clock uint64
	Cache *cache.Snapshot
	Alloc *mem.AllocatorState
	NIC   *nic.Snapshot

	NoiseRNG sim.RNGState
	TimerRNG sim.RNGState

	NoiseRate   float64
	TimerNoise  uint64
	NoisePeriod uint64
	NoiseNextAt uint64
	NoiseSpace  uint64
}

// GobEncode serializes the machine snapshot (disk-backed warm starts): a
// decoded snapshot clones machines bit-identically to the original, so
// persisted offline artifacts survive process restarts.
func (s *Snapshot) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(snapshotGob{
		Clock: s.clock, Cache: s.cache, Alloc: s.alloc, NIC: s.nic,
		NoiseRNG: s.noiseRNG, TimerRNG: s.timerRNG,
		NoiseRate: s.noiseRate, TimerNoise: s.timerNoise,
		NoisePeriod: s.noisePeriod, NoiseNextAt: s.noiseNextAt, NoiseSpace: s.noiseSpace,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode rebuilds a machine snapshot from its serialized form.
func (s *Snapshot) GobDecode(b []byte) error {
	var w snapshotGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	s.clock, s.cache, s.alloc, s.nic = w.Clock, w.Cache, w.Alloc, w.NIC
	s.noiseRNG, s.timerRNG = w.NoiseRNG, w.TimerRNG
	s.noiseRate, s.timerNoise = w.NoiseRate, w.TimerNoise
	s.noisePeriod, s.noiseNextAt, s.noiseSpace = w.NoisePeriod, w.NoiseNextAt, w.NoiseSpace
	return nil
}

// SetNoiseRate changes the background process's access rate mid-run — the
// online phase of a sweep applies its cell's noise level to a machine
// restored from a snapshot taken under the reference offline environment.
// The next noise event is rescheduled one full period out from now; rate 0
// disables the process.
func (tb *Testbed) SetNoiseRate(rate float64) {
	tb.opts.NoiseRate = rate
	if rate <= 0 {
		tb.noisePeriod = 0
		tb.noiseNextAt = 0
		return
	}
	tb.noisePeriod = sim.CyclesPerSecond(rate)
	tb.noiseNextAt = tb.clock.Now() + tb.noisePeriod
}

// SetTimerNoise changes the spy timer's jitter magnitude mid-run (see
// Options.TimerNoise for the one-sided jitter model).
func (tb *Testbed) SetTimerNoise(jitter uint64) {
	tb.opts.TimerNoise = jitter
}

// OfflineFingerprint is a canonical string over every option that shapes
// the offline phase of an attack: cache geometry and features, NIC/driver
// configuration, and physical memory size. The online-only knobs —
// NoiseRate, TimerNoise — and the seed are deliberately excluded; the
// artifact store combines this fingerprint with the offline seed, so two
// machines with equal fingerprints and seeds are interchangeable bit for
// bit.
func (o Options) OfflineFingerprint() string {
	c := o.Cache
	part := "nil"
	if c.Partition != nil {
		part = fmt.Sprintf("%+v", *c.Partition)
	}
	return fmt.Sprintf("cache{%d/%d/%d hit=%d miss=%d ddio=%v/%d part=%s}|nic%+v|mem=%d",
		c.Slices, c.SetsPerSlice, c.Ways, c.HitLatency, c.MissLatency,
		c.DDIO, c.DDIOWays, part, o.NIC, o.MemBytes)
}

// ReseedOnline re-derives the machine's online random streams — timer
// jitter, background noise, and the driver's reallocation draws — from a
// fresh seed, leaving the clock, cache, memory, and ring state untouched.
// Warm-started trials decorrelate this way: every trial measures the same
// prepared machine, but ambient randomness differs per trial exactly as it
// would across repeated measurements on real hardware.
// The streams are reseeded in place — this runs once per warm trial on the
// rig-lease path and must not allocate.
func (tb *Testbed) ReseedOnline(seed int64) {
	tb.noiseRNG.Reseed(sim.DeriveSeed(seed, "noise-online"))
	tb.timerRNG.Reseed(sim.DeriveSeed(seed, "timer-online"))
	tb.nic.ReseedRNG(seed)
}
