package probe

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/testbed"
)

// coarseOptions returns a quiet machine with the demo cache geometry
// (8 ways — the shape the monitor margin math is sized for) and the given
// timer jitter.
func coarseOptions(seed int64, timerNoise uint64) testbed.Options {
	opts := testbed.DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(2, 256, 8)
	opts.NoiseRate = 0
	opts.TimerNoise = timerNoise
	opts.MemBytes = 1 << 28
	return opts
}

// timerNoiseLevels is the property-test axis: every jitter magnitude from
// a perfect timer through far past the paper's timer-coarsening defense.
var timerNoiseLevels = []uint64{0, 4, 8, 16, 32, 64, 128, 256}

// TestCalibrationNeverSilentlyBlind is the PR's property test: for every
// timer-noise level and both strategies, calibration either yields a
// separating threshold — an idle probe reads inactive and a post-eviction
// probe reads active — or the monitor explicitly reports that it cannot
// separate (CalibrationOK false). What must never happen is the old
// failure mode: a monitor that claims health while idle jitter crosses
// its thresholds.
func TestCalibrationNeverSilentlyBlind(t *testing.T) {
	for _, strat := range []struct {
		name string
		s    Strategy
	}{
		{"fine-timer", DefaultStrategy()},
		{"amplified", AmplifiedStrategy()},
	} {
		for _, n := range timerNoiseLevels {
			n := n
			strat := strat
			t.Run(strat.name+"/noise="+itoa(n), func(t *testing.T) {
				t.Parallel()
				tb, err := testbed.New(coarseOptions(int64(31+n), n))
				if err != nil {
					t.Fatal(err)
				}
				ccfg := tb.Cache().Config()
				spy, err := NewSpyStrategy(tb, ccfg.AlignedSetCount()*ccfg.Ways*3, strat.s)
				if err != nil {
					t.Fatal(err)
				}
				groups, err := spy.BuildAlignedEvictionSets(ccfg.Ways)
				if err != nil {
					if spy.Calibrated() && strat.name == "amplified" {
						t.Fatalf("amplified offline phase collapsed at noise %d: %v", n, err)
					}
					t.Skipf("offline phase collapsed (reported): %v", err)
				}
				m := NewMonitor(spy, groups[:1])
				if !m.CalibrationOK() {
					// Explicitly degenerate: the property is satisfied by
					// the report itself. The amplified attacker must stay
					// healthy across the whole axis, though — that is the
					// resilience this PR adds.
					if strat.name == "amplified" {
						t.Fatalf("amplified monitor reports degenerate at noise %d", n)
					}
					return
				}
				// Healthy claim: verify it. Idle probes must be quiet...
				m.ProbeOnce() // re-prime after construction
				for pass := 0; pass < 8; pass++ {
					s := m.ProbeOnce()
					if s.Active[0] {
						t.Fatalf("monitor claims CalibrationOK but idle probe read active (pass %d, noise %d)", pass, n)
					}
					tb.Idle(2_000)
				}
				// ...and an eviction of one monitored line must be seen.
				victim := groups[0].Lines[0]
				set := tb.Cache().Config().GlobalSet(victim)
				for trial := 0; trial < 3; trial++ {
					evictLine(tb, ccfg, set)
					s := m.ProbeOnce()
					if !s.Active[0] {
						t.Fatalf("monitor claims CalibrationOK but missed an eviction (noise %d)", n)
					}
				}
			})
		}
	}
}

// evictLine displaces one spy line from the global set by touching
// conflicting addresses (simulator-side convenience standing in for a
// DMA write; the monitor under test cannot tell the difference).
func evictLine(tb *testbed.Testbed, ccfg cache.Config, set int) {
	for _, a := range cache.AddrsInGlobalSet(ccfg, set, 1, 1<<27>>6) {
		tb.Cache().Read(a)
	}
}

// TestAmplifiedCalibrationEstimates pins the quality signals the
// amplified calibration exposes: a separating edge near the true 160-cycle
// hit/miss difference, a noise-spread estimate tracking the configured
// jitter range, and an amplification factor that grows with the noise.
func TestAmplifiedCalibrationEstimates(t *testing.T) {
	var prevFactor int
	for _, n := range []uint64{0, 64, 256} {
		tb, err := testbed.New(coarseOptions(7, n))
		if err != nil {
			t.Fatal(err)
		}
		spy, err := NewSpyStrategy(tb, 64, AmplifiedStrategy())
		if err != nil {
			t.Fatal(err)
		}
		if !spy.Calibrated() {
			t.Fatalf("noise %d: calibration degenerate", n)
		}
		edge := spy.MissLatency() - spy.HitLatency()
		if edge < 100 || edge > 220 {
			t.Errorf("noise %d: edge estimate %d far from true 160", n, edge)
		}
		if n == 0 && spy.NoiseSpread() != 0 {
			t.Errorf("perfect timer: spread %d != 0", spy.NoiseSpread())
		}
		if n > 0 {
			if sp := spy.NoiseSpread(); sp < n || sp > 2*n+16 {
				t.Errorf("noise %d: spread estimate %d outside [N, 2N]", n, sp)
			}
		}
		if spy.AmplificationFactor() < prevFactor {
			t.Errorf("noise %d: amplification factor %d fell below %d", n, spy.AmplificationFactor(), prevFactor)
		}
		prevFactor = spy.AmplificationFactor()
	}
	if prevFactor < 2 {
		t.Errorf("factor at noise 256 is %d; amplification never engaged", prevFactor)
	}
}

// TestAmplifiedEvictionSetsUnderCoarseTimer asserts the tentpole's offline
// half: eviction-set construction — conflict testing throughout — still
// recovers every page-aligned group when the attacker's own preparation
// runs under the paper's timer-coarsening defense magnitude.
func TestAmplifiedEvictionSetsUnderCoarseTimer(t *testing.T) {
	tb, err := testbed.New(coarseOptions(11, 64))
	if err != nil {
		t.Fatal(err)
	}
	ccfg := tb.Cache().Config()
	spy, err := NewSpyStrategy(tb, ccfg.AlignedSetCount()*ccfg.Ways*3, AmplifiedStrategy())
	if err != nil {
		t.Fatal(err)
	}
	groups, err := spy.BuildAlignedEvictionSets(ccfg.Ways)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != ccfg.AlignedSetCount() {
		t.Fatalf("recovered %d groups want %d", len(groups), ccfg.AlignedSetCount())
	}
	for _, g := range groups {
		gs := ccfg.GlobalSet(g.Lines[0])
		for _, a := range g.Lines {
			if ccfg.GlobalSet(a) != gs {
				t.Fatalf("group %d lines not co-mapped under coarse timer", g.ID)
			}
		}
	}
}

// TestRestoreSpyRoundTripsStrategy asserts warm-start rebinding preserves
// the full calibration state, including the new quality signals.
func TestRestoreSpyRoundTripsStrategy(t *testing.T) {
	tb, err := testbed.New(coarseOptions(13, 64))
	if err != nil {
		t.Fatal(err)
	}
	spy, err := NewSpyStrategy(tb, 64, AmplifiedStrategy())
	if err != nil {
		t.Fatal(err)
	}
	st := spy.State()
	re := RestoreSpy(tb, st)
	if re.HitLatency() != spy.HitLatency() || re.MissLatency() != spy.MissLatency() ||
		re.Calibrated() != spy.Calibrated() || re.NoiseSpread() != spy.NoiseSpread() ||
		re.AmplificationFactor() != spy.AmplificationFactor() ||
		re.Strategy() != spy.Strategy() {
		t.Fatalf("restored spy state differs: %+v vs %+v", re.State(), st)
	}
}

// itoa avoids strconv in a hot test-name path.
func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
