package probe

import (
	"testing"

	"repro/internal/testbed"
)

// The spy's load helpers are the attack-side hot path: every prime, walk,
// and timed reload of every monitor goes through them. These benchmarks
// pin the per-access cost with the testbed's cache and clock cached in
// the Spy (no accessor round-trip per load) and the conflict test built
// on top of it.

func benchSpy(b *testing.B) *Spy {
	b.Helper()
	tb, err := testbed.New(testbed.DefaultOptions(3))
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSpy(tb, 8)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkSpyTouch(b *testing.B) {
	s := benchSpy(b)
	base := s.PageBase(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Touch(base + uint64(i%64)*64)
	}
}

// BenchmarkSpyEvicts runs the conflict test over a fixed candidate set —
// the operation eviction-set construction repeats thousands of times per
// offline phase.
func BenchmarkSpyEvicts(b *testing.B) {
	s := benchSpy(b)
	victim := s.PageBase(0)
	set := make([]uint64, 16)
	for i := range set {
		set[i] = s.PageBase(i%s.Pages()) + uint64(i)*64
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Evicts(set, victim)
	}
}
