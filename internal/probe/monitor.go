package probe

// Monitor runs PRIME+PROBE over a list of eviction sets. Each probe of a
// set walks its lines, accumulating observed latency; walking doubles as
// the prime for the next sample, exactly as in the paper's Mastik-based
// attack. A set shows "activity" when its probe latency indicates at least
// one of the spy's lines was evicted since the previous probe.
type Monitor struct {
	spy        *Spy
	sets       []EvictionSet
	thresholds []uint64
}

// Sample is one probe pass over all monitored sets.
type Sample struct {
	// At is the cycle at which the pass started.
	At uint64
	// Active[i] reports eviction activity on monitored set i.
	Active []bool
	// Latency[i] is the observed probe latency of set i.
	Latency []uint64
}

// NewMonitor builds a monitor and calibrates per-set activity thresholds:
// the idle baseline (all hits) plus half a miss edge.
func NewMonitor(spy *Spy, sets []EvictionSet) *Monitor {
	m := &Monitor{spy: spy, sets: sets, thresholds: make([]uint64, len(sets))}
	edge := (spy.MissLatency() - spy.HitLatency()) / 2
	if edge == 0 {
		edge = 1
	}
	for i := range sets {
		m.thresholds[i] = m.calibrateSet(i) + edge
	}
	return m
}

// calibrateSet measures the all-hit baseline of a set: one priming pass,
// then the minimum of several probe passes. Taking the minimum keeps a
// packet that happens to land mid-calibration from inflating the baseline
// (an inflated baseline would blind the monitor permanently).
func (m *Monitor) calibrateSet(i int) uint64 {
	m.probeSet(i)
	idle := m.probeSet(i)
	for pass := 0; pass < 2; pass++ {
		if lat := m.probeSet(i); lat < idle {
			idle = lat
		}
	}
	return idle
}

// Sets returns the monitored eviction sets.
func (m *Monitor) Sets() []EvictionSet { return m.sets }

// ReplaceSet swaps monitored set i (the GET_CLEAN_SAMPLES fallback: an
// always-active set is replaced by the same group's second-block set).
func (m *Monitor) ReplaceSet(i int, e EvictionSet) {
	m.sets[i] = e
	edge := (m.spy.MissLatency() - m.spy.HitLatency()) / 2
	if edge == 0 {
		edge = 1
	}
	m.thresholds[i] = m.calibrateSet(i) + edge
}

func (m *Monitor) probeSet(i int) uint64 {
	var lat uint64
	for _, a := range m.sets[i].Lines {
		lat += m.spy.Touch(a)
	}
	return lat
}

// ProbeOnce syncs the world and probes every monitored set once.
func (m *Monitor) ProbeOnce() Sample {
	tb := m.spy.Testbed()
	s := Sample{
		At:      tb.Clock().Now(),
		Active:  make([]bool, len(m.sets)),
		Latency: make([]uint64, len(m.sets)),
	}
	for i := range m.sets {
		tb.Sync()
		lat := m.probeSet(i)
		s.Latency[i] = lat
		s.Active[i] = lat > m.thresholds[i]
	}
	return s
}

// ProbeSingle probes only set i (used when chasing a known sequence, where
// the whole point is to probe one expected buffer at a time).
func (m *Monitor) ProbeSingle(i int) bool {
	tb := m.spy.Testbed()
	tb.Sync()
	return m.probeSet(i) > m.thresholds[i]
}

// Collect takes n samples spaced interval cycles apart (the paper's
// repeated_probe). The spacing is between sample starts; if a pass takes
// longer than the interval the next one starts immediately.
func (m *Monitor) Collect(n int, interval uint64) []Sample {
	tb := m.spy.Testbed()
	out := make([]Sample, 0, n)
	next := tb.Clock().Now()
	for len(out) < n {
		tb.IdleTo(next)
		out = append(out, m.ProbeOnce())
		next += interval
		if now := tb.Clock().Now(); next < now {
			next = now
		}
	}
	return out
}

// ActivityRate returns, per monitored set, the fraction of samples with
// activity — the paper's activity() measure used to spot always-active
// sets.
func ActivityRate(samples []Sample) []float64 {
	if len(samples) == 0 {
		return nil
	}
	n := len(samples[0].Active)
	out := make([]float64, n)
	for _, s := range samples {
		for i, a := range s.Active {
			if a {
				out[i]++
			}
		}
	}
	for i := range out {
		out[i] /= float64(len(samples))
	}
	return out
}
