package probe

import (
	"math"
	"sort"
)

// Monitor runs PRIME+PROBE over a list of eviction sets. Each probe of a
// set walks its lines, accumulating observed latency; walking doubles as
// the prime for the next sample, exactly as in the paper's Mastik-based
// attack. A set shows "activity" when its probe latency indicates at least
// one of the spy's lines was evicted since the previous probe.
//
// How a probe is timed follows the spy's Strategy. The fine-timer
// attacker times every load (historical behaviour). The amplified
// attacker times each walk as one block — two timer reads around the
// whole walk — so a walk carries a single quantization draw regardless of
// its length, and widens its activity thresholds by the calibrated noise
// spread so idle jitter cannot cross them.
type Monitor struct {
	spy        *Spy
	sets       []EvictionSet
	thresholds []uint64
	// idleMin and idleMax record each set's calibration-pass extremes —
	// the raw material CalibrationOK judges threshold health from.
	idleMin, idleMax []uint64
	// spreadEst is the amplified strategy's per-set local noise-spread
	// estimate (zero for the fine-timer strategy).
	spreadEst []uint64
}

// Sample is one probe pass over all monitored sets.
type Sample struct {
	// At is the cycle at which the pass started.
	At uint64
	// Active[i] reports eviction activity on monitored set i.
	Active []bool
	// Latency[i] is the observed probe latency of set i.
	Latency []uint64
}

// NewMonitor builds a monitor and calibrates per-set activity thresholds:
// the idle baseline (all hits) plus a margin derived from the spy's
// calibrated edge and noise floor. A spy whose calibration degenerated
// still gets a monitor (thresholds stay arithmetically sane), but the
// monitor reports it through CalibrationOK instead of probing blind in
// silence.
func NewMonitor(spy *Spy, sets []EvictionSet) *Monitor {
	m := &Monitor{
		spy:        spy,
		sets:       sets,
		thresholds: make([]uint64, len(sets)),
		idleMin:    make([]uint64, len(sets)),
		idleMax:    make([]uint64, len(sets)),
		spreadEst:  make([]uint64, len(sets)),
	}
	for i := range sets {
		m.recalibrate(i)
	}
	return m
}

// recalibrate measures set i's idle baseline and installs its activity
// threshold — the one shared path for initial calibration (NewMonitor)
// and set replacement (ReplaceSet), so the two cannot drift apart.
//
// Fine-timer threshold: idle + edge/2, the historical rule. The margin
// separates one evicted line from an all-hit walk when the timer is
// sharp; its weakness — per-access jitter accumulating across the walk —
// is what CalibrationOK makes explicit.
//
// Amplified threshold: idle + noise spread + edge/2, with the spread
// taken as the larger of the spy's calibrated estimate and a fresh local
// estimate from this calibration's own idle passes. Monitors are built at
// measurement time: an attacker whose offline phase ran under a clean
// timer would otherwise carry a stale (near-zero) spread estimate into a
// coarsened online environment and silently go blind — the exact failure
// mode this strategy exists to kill. A block-timed idle walk exceeds its
// own floor by at most one jitter draw (<= spread), so the threshold is
// uncrossable by idle noise, while an eviction adds at least one full
// LRU-cascade of misses.
func (m *Monitor) recalibrate(i int) {
	edge := m.halfEdge()
	if m.spy.strat.Amplify {
		idle, local := m.calibrateSetAmplified(i)
		spread := m.spy.NoiseSpread()
		if local > spread {
			spread = local
		}
		m.spreadEst[i] = spread
		m.thresholds[i] = idle + spread + edge
		return
	}
	m.thresholds[i] = m.calibrateSet(i) + edge
}

// halfEdge is the calibrated half hit/miss edge (minimum 1 cycle — the
// degenerate-calibration floor that keeps thresholds arithmetically sane;
// the degeneracy itself is reported, not hidden).
func (m *Monitor) halfEdge() uint64 {
	edge := (m.spy.MissLatency() - m.spy.HitLatency()) / 2
	if edge == 0 {
		edge = 1
	}
	return edge
}

// calibrateSet measures the all-hit baseline of a set: one priming pass,
// then the minimum of several probe passes. Taking the minimum keeps a
// packet that happens to land mid-calibration from inflating the baseline
// (an inflated baseline would blind the monitor permanently). The pass
// extremes are recorded for CalibrationOK's pooled jitter estimate.
func (m *Monitor) calibrateSet(i int) uint64 {
	m.probeSet(i)
	idle := m.probeSet(i)
	max := idle
	for pass := 0; pass < 2; pass++ {
		lat := m.probeSet(i)
		if lat < idle {
			idle = lat
		}
		if lat > max {
			max = lat
		}
	}
	m.idleMin[i], m.idleMax[i] = idle, max
	return idle
}

// calibrateSetAmplified is the repeated-measurement baseline: one priming
// pass, then 16 block-timed passes. The minimum is the idle floor; the
// trimmed range (second-largest minus smallest, scaled up for the
// sample-range bias) is a fresh local estimate of the timer's per-reading
// jitter spread. Trimming the single largest pass keeps one packet that
// lands mid-calibration from inflating the spread and deafening the set.
func (m *Monitor) calibrateSetAmplified(i int) (idleFloor, spreadEst uint64) {
	m.probeSet(i)
	const passes = 16
	min, max1, max2 := ^uint64(0), uint64(0), uint64(0)
	for p := 0; p < passes; p++ {
		lat := m.probeSet(i)
		if lat < min {
			min = lat
		}
		switch {
		case lat >= max1:
			max1, max2 = lat, max1
		case lat > max2:
			max2 = lat
		}
	}
	m.idleMin[i], m.idleMax[i] = min, max2
	// E[2nd-max - min] of n uniform draws is (n-2)/(n+1) of the true
	// range; 5/4 undoes the bias for n=16 with a little slack.
	return min, (max2 - min) * 5 / 4
}

// Sets returns the monitored eviction sets.
func (m *Monitor) Sets() []EvictionSet { return m.sets }

// CalibrationOK reports whether this monitor can actually separate idle
// timer jitter from an eviction: the spy's calibration found an edge, AND
// every set's threshold margin clears the jitter the spy calibrated
// offline, AND — because the online timer may be coarser than the one
// calibration saw — the jitter observable in the monitor's own idle
// calibration passes. False means samples from this monitor are noise —
// the explicit signal replacing the old silently-blind behaviour.
// Experiments surface it as the calibration_ok metric.
func (m *Monitor) CalibrationOK() bool {
	if !m.spy.Calibrated() {
		return false
	}
	edge := m.halfEdge()
	if m.spy.strat.Amplify {
		for i := range m.sets {
			// The margin must stay reachable: an eviction's LRU cascade
			// is worth ~lines*2*edge of latency, and the idle floor
			// estimate can itself sit up to ~spread above the true floor.
			// 1.5*spread keeps a worst-case-ish bound without declaring
			// healthy monitors deaf.
			n := float64(len(m.sets[i].Lines))
			if float64(m.spreadEst[i])*1.5+float64(edge) >= n*float64(2*edge) {
				return false
			}
		}
		return true
	}
	// Fine-timer: per-access timing accumulates one jitter draw per line,
	// so an idle pass's jitter sum has sd ~ spread*sqrt(lines)/sqrt(12)
	// against a margin of one half-edge that the min-of-passes baseline
	// has already partially spent. Require ~5 sd of headroom on BOTH
	// jitter estimates: the spy's offline spread, and a pooled online
	// estimate from this monitor's own idle passes (median of per-set
	// maxima minus the global minimum, per line-count — all-hit baselines
	// of equal-length sets are identical, so the pooled range is pure
	// jitter; the median keeps a packet that polluted one set's
	// calibration from faking coarseness). Below that headroom the
	// monitor WILL read idle jitter as activity — the blindness that
	// used to be silent.
	perDraw := float64(m.spy.NoiseSpread())
	maxima := map[int][]uint64{}
	minByLen := map[int]uint64{}
	for i := range m.sets {
		n := len(m.sets[i].Lines)
		maxima[n] = append(maxima[n], m.idleMax[i])
		if lo, ok := minByLen[n]; !ok || m.idleMin[i] < lo {
			minByLen[n] = m.idleMin[i]
		}
	}
	pooled := map[int]uint64{}
	for n, xs := range maxima {
		sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
		pooled[n] = xs[len(xs)/2] - minByLen[n]
	}
	for i := range m.sets {
		n := len(m.sets[i].Lines)
		if perDraw*math.Sqrt(float64(n))*1.5 > float64(edge) {
			return false
		}
		if pooled[n]*17/10 > edge {
			return false
		}
	}
	return true
}

// ReplaceSet swaps monitored set i (the GET_CLEAN_SAMPLES fallback: an
// always-active set is replaced by the same group's second-block set) and
// recalibrates its threshold through the same path NewMonitor used.
func (m *Monitor) ReplaceSet(i int, e EvictionSet) {
	m.sets[i] = e
	m.recalibrate(i)
}

// probeSet walks set i and returns the observed latency of the walk:
// per-access timer reads summed (fine-timer strategy) or one block
// reading (amplified strategy).
func (m *Monitor) probeSet(i int) uint64 {
	if m.spy.strat.Amplify {
		var elapsed uint64
		for _, a := range m.sets[i].Lines {
			elapsed += m.spy.loadRaw(a)
		}
		return m.spy.tb.TimerRead(elapsed)
	}
	var lat uint64
	for _, a := range m.sets[i].Lines {
		lat += m.spy.Touch(a)
	}
	return lat
}

// ProbeOnce syncs the world and probes every monitored set once.
func (m *Monitor) ProbeOnce() Sample {
	tb := m.spy.Testbed()
	s := Sample{
		At:      tb.Clock().Now(),
		Active:  make([]bool, len(m.sets)),
		Latency: make([]uint64, len(m.sets)),
	}
	for i := range m.sets {
		tb.Sync()
		lat := m.probeSet(i)
		s.Latency[i] = lat
		s.Active[i] = lat > m.thresholds[i]
	}
	return s
}

// ProbeSingle probes only set i (used when chasing a known sequence, where
// the whole point is to probe one expected buffer at a time).
func (m *Monitor) ProbeSingle(i int) bool {
	tb := m.spy.Testbed()
	tb.Sync()
	return m.probeSet(i) > m.thresholds[i]
}

// Collect takes n samples spaced interval cycles apart (the paper's
// repeated_probe). The spacing is between sample starts; if a pass takes
// longer than the interval the next one starts immediately.
func (m *Monitor) Collect(n int, interval uint64) []Sample {
	tb := m.spy.Testbed()
	out := make([]Sample, 0, n)
	next := tb.Clock().Now()
	for len(out) < n {
		tb.IdleTo(next)
		out = append(out, m.ProbeOnce())
		next += interval
		if now := tb.Clock().Now(); next < now {
			next = now
		}
	}
	return out
}

// ActivityRate returns, per monitored set, the fraction of samples with
// activity — the paper's activity() measure used to spot always-active
// sets.
func ActivityRate(samples []Sample) []float64 {
	if len(samples) == 0 {
		return nil
	}
	n := len(samples[0].Active)
	out := make([]float64, n)
	for _, s := range samples {
		for i, a := range s.Active {
			if a {
				out[i]++
			}
		}
	}
	for i := range out {
		out[i] /= float64(len(samples))
	}
	return out
}
