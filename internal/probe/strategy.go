package probe

import "fmt"

// Strategy selects how the spy turns raw timed loads into decisions — the
// knob that distinguishes the paper's fine-timer attacker from the
// coarse-timer-resilient variant (§VI-a names timer coarsening as a cheap
// mitigation; this is the attacker that pushes back on it).
//
// The fine-timer strategy (DefaultStrategy) times every load individually
// and calibrates from small-sample means: cheap, and exactly right when
// the timer is sharp. Under a coarse timer every reading gains one-sided
// jitter in [0, 2N] cycles, and three things break in order: the
// calibrated hit/miss midpoint drifts, the conflict test's single reload
// drowns, and — first in practice — the monitor's activity threshold
// (idle baseline + half an edge, ~80 cycles) is crossed by accumulated
// per-access jitter on idle probes, blinding the monitor with false
// activity.
//
// The amplified strategy (AmplifiedStrategy) counters each failure with a
// repeated-measurement technique the attacker can always afford:
//
//   - calibration takes many timed trials per address and estimates the
//     edge from distribution medians (one-sided jitter shifts a median by
//     its own median, so the hit/miss *difference* is jitter-free), and
//     estimates the timer's noise spread from the same samples;
//   - the conflict test walks the candidate eviction set K times per
//     decision and times the victim reload of every round: the latency
//     delta between "evicted" and "survived" grows linearly in K while the
//     averaged jitter grows only ~sqrt(K), with K chosen adaptively from
//     the calibrated noise floor;
//   - probe walks are timed as one block (two timer reads around the whole
//     walk) instead of per access, so a walk carries a single quantization
//     draw regardless of its length, and activity thresholds add the full
//     calibrated noise spread instead of assuming a sharp timer.
type Strategy struct {
	// CalTrials is the number of timed measurements per calibration point
	// (hit distribution and miss distribution). The fine-timer strategy's
	// historical value is 16; the amplified strategy takes more to make
	// the medians and the spread estimate sharp. Zero means 16.
	CalTrials int
	// Amplify enables the repeated-measurement machinery: distribution
	// calibration, adaptively amplified conflict tests, and block-timed
	// probe walks.
	Amplify bool
	// MaxFactor caps the adaptive amplification factor K of the conflict
	// test. The factor grows roughly quadratically with the timer's noise
	// spread, so the cap bounds offline-phase cost when the attacker
	// prepares under an extremely coarse timer. Zero means 32.
	MaxFactor int
}

// DefaultStrategy is the paper's fine-timer attacker: per-access timing,
// 16-trial mean calibration, no amplification. It reproduces the
// historical spy byte for byte.
func DefaultStrategy() Strategy {
	return Strategy{CalTrials: 16}
}

// AmplifiedStrategy is the coarse-timer-resilient attacker.
func AmplifiedStrategy() Strategy {
	return Strategy{CalTrials: 64, Amplify: true, MaxFactor: 32}
}

// withDefaults resolves zero fields.
func (st Strategy) withDefaults() Strategy {
	if st.CalTrials <= 0 {
		st.CalTrials = 16
	}
	if st.MaxFactor <= 0 {
		st.MaxFactor = 32
	}
	return st
}

// Fingerprint canonically identifies the strategy for content-addressed
// artifact keys: two prepared machines whose spies calibrated under
// different strategies must never be interchanged. The default strategy
// fingerprints to "" so historical keys are unchanged.
func (st Strategy) Fingerprint() string {
	st = st.withDefaults()
	if !st.Amplify && st.CalTrials == 16 {
		return ""
	}
	if !st.Amplify {
		return fmt.Sprintf("cal%d", st.CalTrials)
	}
	return fmt.Sprintf("amplified(cal=%d,max=%d)", st.CalTrials, st.MaxFactor)
}
