// Package probe is the attacker's toolkit — the reproduction's analog of
// the Mastik micro-architectural side-channel toolkit the paper uses: spy
// memory management, latency calibration, eviction-set construction by
// conflict testing, and PRIME+PROBE monitors over chosen cache sets.
//
// Everything in this package plays by the attacker's rules: it learns only
// from access latencies (with timer noise applied), never from simulator
// oracles. Physical addresses appear in the implementation because the
// spy's loads must be translated eventually, but no decision is made on
// address bits the attacker could not know (page-offset bits only).
package probe

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/testbed"
)

// Spy is the attacker process: a user-space tenant with a mapped buffer and
// a timer, and nothing else.
type Spy struct {
	tb     *testbed.Testbed
	region *mem.Region
	// OverheadPerAccess is the loop overhead in cycles charged per load
	// on top of the memory latency.
	OverheadPerAccess uint64

	hitLat, missLat uint64 // calibrated latencies (observed, incl. noise)
}

// NewSpy maps pages of spy memory and calibrates hit/miss latencies.
func NewSpy(tb *testbed.Testbed, pages int) (*Spy, error) {
	r, err := mem.NewRegion(tb.Alloc(), pages)
	if err != nil {
		return nil, fmt.Errorf("probe: spy region: %w", err)
	}
	s := &Spy{tb: tb, region: r, OverheadPerAccess: 4}
	s.calibrate()
	return s, nil
}

// SpyState is the spy's post-calibration state: its mapped pages and the
// measured latency edge. Together with a machine snapshot it lets a warm
// start rebind an identical spy to a restored machine without re-running
// region allocation or calibration (both already baked into the snapshot).
type SpyState struct {
	Pages             []mem.Addr
	OverheadPerAccess uint64
	HitLat, MissLat   uint64
}

// State captures the spy for later RestoreSpy.
func (s *Spy) State() SpyState {
	return SpyState{
		Pages:             s.region.PageAddrs(),
		OverheadPerAccess: s.OverheadPerAccess,
		HitLat:            s.hitLat,
		MissLat:           s.missLat,
	}
}

// RestoreSpy rebinds a captured spy to a testbed whose machine snapshot
// already accounts for the spy's pages (they are marked used in the
// restored allocator) and calibration side effects (clock advance, timer
// draws). No allocation or calibration happens here.
func RestoreSpy(tb *testbed.Testbed, st SpyState) *Spy {
	return &Spy{
		tb:                tb,
		region:            mem.RegionFromPages(st.Pages),
		OverheadPerAccess: st.OverheadPerAccess,
		hitLat:            st.HitLat,
		missLat:           st.MissLat,
	}
}

// Pages returns the number of pages in the spy's buffer.
func (s *Spy) Pages() int { return s.region.Pages() }

// Testbed exposes the world for higher attack layers (chase, covert).
func (s *Spy) Testbed() *testbed.Testbed { return s.tb }

// PageBase returns the spy's address for the base of its i-th page. The
// value is the translated physical address (what the LLC sees); the spy
// manipulates it only as an opaque handle.
func (s *Spy) PageBase(i int) uint64 {
	return uint64(s.region.Translate(uint64(i) * mem.PageSize))
}

// Touch loads one line, advancing simulated time by the true latency plus
// loop overhead, and returns the latency as observed through the timer.
func (s *Spy) Touch(addr uint64) uint64 {
	_, lat := s.tb.Cache().Read(addr)
	s.tb.Clock().Advance(lat + s.OverheadPerAccess)
	return s.tb.TimerRead(lat)
}

// calibrate measures the hit/miss latency edge the way attackers do: time
// a load twice (second one hits), and time first-touch loads (cold
// misses).
func (s *Spy) calibrate() {
	probeAddr := s.PageBase(0) + 512 // scratch line, offset irrelevant
	s.Touch(probeAddr)
	var hitSum uint64
	const trials = 16
	for i := 0; i < trials; i++ {
		hitSum += s.Touch(probeAddr)
	}
	var missSum uint64
	for i := 0; i < trials; i++ {
		// Distinct cold lines in the scratch page area.
		missSum += s.Touch(s.PageBase(0) + 1024 + uint64(i*64))
	}
	s.hitLat = hitSum / trials
	s.missLat = missSum / trials
	if s.missLat <= s.hitLat {
		// Degenerate calibration can only happen with absurd timer noise;
		// fall back to the edge being 1 cycle to keep thresholds sane.
		s.missLat = s.hitLat + 1
	}
}

// HitLatency returns the calibrated LLC-hit latency as the spy observes it.
func (s *Spy) HitLatency() uint64 { return s.hitLat }

// MissLatency returns the calibrated memory latency as the spy observes it.
func (s *Spy) MissLatency() uint64 { return s.missLat }

// Evicts reports whether accessing every address in set evicts victim:
// load victim, walk the set, reload victim and compare against the
// hit/miss midpoint. This is the conflict test eviction-set construction
// is built from. Positives are confirmed with a retrial because background
// noise can evict the victim by accident.
func (s *Spy) Evicts(set []uint64, victim uint64) bool {
	pos := 0
	for trial := 0; trial < 3; trial++ {
		s.tb.Sync()
		s.Touch(victim)
		for _, a := range set {
			s.Touch(a)
		}
		lat := s.Touch(victim)
		if lat > (s.hitLat+s.missLat)/2 {
			pos++
		} else {
			// A miss can be spurious (noise); a hit cannot be — the
			// victim demonstrably survived the walk.
			return false
		}
		if pos == 2 {
			return true
		}
	}
	return pos >= 2
}
