// Package probe is the attacker's toolkit — the reproduction's analog of
// the Mastik micro-architectural side-channel toolkit the paper uses: spy
// memory management, latency calibration, eviction-set construction by
// conflict testing, and PRIME+PROBE monitors over chosen cache sets.
//
// Everything in this package plays by the attacker's rules: it learns only
// from access latencies (with timer noise applied), never from simulator
// oracles. Physical addresses appear in the implementation because the
// spy's loads must be translated eventually, but no decision is made on
// address bits the attacker could not know (page-offset bits only).
//
// The spy comes in two flavours selected by a Strategy: the paper's
// fine-timer attacker, and a coarse-timer-resilient variant built on
// repeated-measurement calibration and amplified probes (see Strategy).
package probe

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Spy is the attacker process: a user-space tenant with a mapped buffer and
// a timer, and nothing else.
type Spy struct {
	tb     *testbed.Testbed
	region *mem.Region
	strat  Strategy
	// cache and clock are the testbed's, cached at construction: every load
	// the spy ever issues goes through them, and the accessor round-trip per
	// access is measurable across a paper-scale probe schedule.
	cache *cache.Cache
	clock *sim.Clock
	// OverheadPerAccess is the loop overhead in cycles charged per load
	// on top of the memory latency.
	OverheadPerAccess uint64

	hitLat, missLat uint64 // calibrated latencies (observed, incl. noise)
	// degenerate records that calibration failed to find a separating
	// hit/miss edge. It is an explicit signal — the old behaviour was to
	// silently clamp the edge to 1 cycle and let every downstream monitor
	// go blind without anyone being told.
	degenerate bool
	// spread is the calibrated estimate of the timer's jitter range (the
	// width of the observed hit-latency distribution, ~2N for one-sided
	// jitter in [0, 2N]). Zero with a perfect timer.
	spread uint64
	// factor is the amplification factor K the conflict test uses, chosen
	// adaptively from spread and the calibrated edge (1 = unamplified).
	factor int
}

// NewSpy maps pages of spy memory and calibrates hit/miss latencies with
// the fine-timer strategy (the paper's attacker).
func NewSpy(tb *testbed.Testbed, pages int) (*Spy, error) {
	return NewSpyStrategy(tb, pages, DefaultStrategy())
}

// NewSpyStrategy maps pages of spy memory and calibrates under the given
// measurement strategy. The attack layers above (chase, covert,
// fingerprint) inherit the strategy through the spy: every Monitor they
// build probes and thresholds the way the spy's strategy prescribes.
func NewSpyStrategy(tb *testbed.Testbed, pages int, strat Strategy) (*Spy, error) {
	r, err := mem.NewRegion(tb.Alloc(), pages)
	if err != nil {
		return nil, fmt.Errorf("probe: spy region: %w", err)
	}
	s := &Spy{tb: tb, region: r, strat: strat.withDefaults(), OverheadPerAccess: 4,
		cache: tb.Cache(), clock: tb.Clock()}
	s.calibrate()
	return s, nil
}

// SpyState is the spy's post-calibration state: its mapped pages, its
// measurement strategy, and the measured latency edge with its quality
// signals. Together with a machine snapshot it lets a warm start rebind an
// identical spy to a restored machine without re-running region allocation
// or calibration (both already baked into the snapshot).
type SpyState struct {
	Pages             []mem.Addr
	OverheadPerAccess uint64
	HitLat, MissLat   uint64
	Strategy          Strategy
	Degenerate        bool
	Spread            uint64
	Factor            int
}

// State captures the spy for later RestoreSpy.
func (s *Spy) State() SpyState {
	return SpyState{
		Pages:             s.region.PageAddrs(),
		OverheadPerAccess: s.OverheadPerAccess,
		HitLat:            s.hitLat,
		MissLat:           s.missLat,
		Strategy:          s.strat,
		Degenerate:        s.degenerate,
		Spread:            s.spread,
		Factor:            s.factor,
	}
}

// RestoreSpy rebinds a captured spy to a testbed whose machine snapshot
// already accounts for the spy's pages (they are marked used in the
// restored allocator) and calibration side effects (clock advance, timer
// draws). No allocation or calibration happens here.
func RestoreSpy(tb *testbed.Testbed, st SpyState) *Spy {
	factor := st.Factor
	if factor < 1 {
		factor = 1 // states captured before strategies existed
	}
	return &Spy{
		tb:                tb,
		cache:             tb.Cache(),
		clock:             tb.Clock(),
		region:            mem.RegionFromPages(st.Pages),
		strat:             st.Strategy.withDefaults(),
		OverheadPerAccess: st.OverheadPerAccess,
		hitLat:            st.HitLat,
		missLat:           st.MissLat,
		degenerate:        st.Degenerate,
		spread:            st.Spread,
		factor:            factor,
	}
}

// Rebind is RestoreSpy into an existing spy: the spy object and its region
// survive, and the captured state is copied over them (pages into the
// region's reused backing array). It serves the rig-pool lease path, where
// a pooled spy is rebound to a restored machine once per warm trial and
// must not allocate. The testbed must be the machine the accompanying
// snapshot was restored into.
func (s *Spy) Rebind(tb *testbed.Testbed, st SpyState) {
	factor := st.Factor
	if factor < 1 {
		factor = 1 // states captured before strategies existed
	}
	s.tb = tb
	s.cache = tb.Cache()
	s.clock = tb.Clock()
	s.region.SetPages(st.Pages)
	s.strat = st.Strategy.withDefaults()
	s.OverheadPerAccess = st.OverheadPerAccess
	s.hitLat = st.HitLat
	s.missLat = st.MissLat
	s.degenerate = st.Degenerate
	s.spread = st.Spread
	s.factor = factor
}

// Pages returns the number of pages in the spy's buffer.
func (s *Spy) Pages() int { return s.region.Pages() }

// Testbed exposes the world for higher attack layers (chase, covert).
func (s *Spy) Testbed() *testbed.Testbed { return s.tb }

// Strategy returns the spy's measurement strategy.
func (s *Spy) Strategy() Strategy { return s.strat }

// PageBase returns the spy's address for the base of its i-th page. The
// value is the translated physical address (what the LLC sees); the spy
// manipulates it only as an opaque handle.
func (s *Spy) PageBase(i int) uint64 {
	return uint64(s.region.Translate(uint64(i) * mem.PageSize))
}

// Touch loads one line, advancing simulated time by the true latency plus
// loop overhead, and returns the latency as observed through the timer.
func (s *Spy) Touch(addr uint64) uint64 {
	_, lat := s.cache.Read(addr)
	s.clock.Advance(lat + s.OverheadPerAccess)
	return s.tb.TimerRead(lat)
}

// load performs an untimed load: the clock advances, but no timer reading
// is taken (the attacker primes and walks without looking at the clock).
func (s *Spy) load(addr uint64) {
	_, lat := s.cache.Read(addr)
	s.clock.Advance(lat + s.OverheadPerAccess)
}

// loadRaw performs a load and returns its TRUE latency without reading the
// timer. It exists for block timing: the caller accumulates the true
// elapsed work of several loads and converts the block into one observed
// duration with a single TimerRead — two timer reads around a block of
// work carry one quantization error regardless of the block's length.
func (s *Spy) loadRaw(addr uint64) uint64 {
	_, lat := s.cache.Read(addr)
	s.clock.Advance(lat + s.OverheadPerAccess)
	return lat
}

// calibrate measures the hit/miss latency edge the way attackers do: time
// a load twice (second one hits), and time first-touch loads (cold
// misses). The amplified strategy takes more samples and estimates from
// the distributions; both paths record explicit quality signals instead of
// silently patching a degenerate edge.
func (s *Spy) calibrate() {
	if s.strat.Amplify {
		s.calibrateAmplified()
		return
	}
	probeAddr := s.PageBase(0) + 512 // scratch line, offset irrelevant
	s.Touch(probeAddr)
	const trials = 16
	hits := make([]uint64, trials)
	for i := range hits {
		hits[i] = s.Touch(probeAddr)
	}
	misses := make([]uint64, trials)
	for i := range misses {
		// Distinct cold lines in the scratch page area.
		misses[i] = s.Touch(s.PageBase(0) + 1024 + uint64(i*64))
	}
	var hitSum, missSum uint64
	for i := 0; i < trials; i++ {
		hitSum += hits[i]
		missSum += misses[i]
	}
	// Rounded means: the historical truncating division biased both levels
	// low by up to (trials-1)/trials of a cycle, skewing the hit/miss
	// midpoint under one-sided jitter.
	s.hitLat = (hitSum + trials/2) / trials
	s.missLat = (missSum + trials/2) / trials
	s.spread = spreadOf(hits)
	s.factor = 1
	if s.missLat <= s.hitLat {
		// Degenerate calibration: no separating edge. Keep a sane 1-cycle
		// threshold so downstream arithmetic stays defined, but say so —
		// NewMonitor and the experiment layer surface the signal instead
		// of probing blind.
		s.degenerate = true
		s.missLat = s.hitLat + 1
	}
}

// calibrateAmplified is the repeated-measurement calibration: CalTrials
// timed loads per point, medians for the levels (one-sided jitter shifts
// both medians equally, so their difference estimates the true edge), and
// the hit distribution's width as the timer noise-floor estimate. The
// conflict-test amplification factor K is then chosen so that K half-edges
// of signal clear the jitter of K averaged readings: the residual noise of
// a K-round average shrinks ~sqrt(K), so K grows quadratically with the
// noise floor, capped by the strategy.
func (s *Spy) calibrateAmplified() {
	trials := s.strat.CalTrials
	// Cold lines live at page offsets [1024, 2048) — 16 per page, below the
	// block offsets any monitor watches — across as many pages as needed.
	if max := s.region.Pages() * 16; trials > max {
		trials = max
	}
	if trials < 8 {
		trials = 8
	}
	probeAddr := s.PageBase(0) + 512
	s.Touch(probeAddr)
	hits := make([]uint64, trials)
	for i := range hits {
		hits[i] = s.Touch(probeAddr)
	}
	misses := make([]uint64, trials)
	for i := range misses {
		page := (i / 16) % s.region.Pages()
		misses[i] = s.Touch(s.PageBase(page) + 1024 + uint64(i%16)*64)
	}
	s.hitLat = median(hits)
	s.missLat = median(misses)
	s.spread = spreadOf(hits)
	if s.missLat <= s.hitLat {
		s.degenerate = true
		s.missLat = s.hitLat + 1
		s.factor = s.strat.MaxFactor
		return
	}
	halfEdge := (s.missLat - s.hitLat) / 2
	if halfEdge == 0 {
		halfEdge = 1
	}
	// K such that K*halfEdge > ~3.5 standard deviations of the summed
	// jitter of K readings: sd = sqrt(K) * spread/sqrt(12), so
	// K > (3.5/sqrt(12))^2 * (spread/halfEdge)^2 ~= (spread/halfEdge)^2.
	ratio := (s.spread + halfEdge - 1) / halfEdge
	k := int(ratio * ratio)
	if k < 1 {
		k = 1
	}
	if k > s.strat.MaxFactor {
		k = s.strat.MaxFactor
	}
	s.factor = k
}

// HitLatency returns the calibrated LLC-hit latency as the spy observes it.
func (s *Spy) HitLatency() uint64 { return s.hitLat }

// MissLatency returns the calibrated memory latency as the spy observes it.
func (s *Spy) MissLatency() uint64 { return s.missLat }

// Calibrated reports whether calibration found a separating hit/miss edge.
// False means the edge estimate is a placeholder and every threshold
// derived from it is untrustworthy — the explicit replacement for the old
// silent missLat = hitLat+1 fallback.
func (s *Spy) Calibrated() bool { return !s.degenerate }

// NoiseSpread returns the calibrated estimate of the timer's jitter range
// in cycles (~2N for one-sided jitter of magnitude N; 0 for a sharp
// timer). Monitors use it to set thresholds the jitter cannot cross and to
// detect when they cannot.
func (s *Spy) NoiseSpread() uint64 { return s.spread }

// AmplificationFactor returns the adaptive K the conflict test uses
// (1 = unamplified; meaningful only for the amplified strategy).
func (s *Spy) AmplificationFactor() int {
	if s.factor < 1 {
		return 1
	}
	return s.factor
}

// Evicts reports whether accessing every address in set evicts victim:
// load victim, walk the set, reload victim and compare against the
// hit/miss midpoint. This is the conflict test eviction-set construction
// is built from. Positives are confirmed with a retrial because background
// noise can evict the victim by accident.
//
// The amplified strategy repeats the (walk, reload) round K times per
// trial and averages the timed reloads: if the set evicts the victim,
// every round's reload misses, so the latency delta grows linearly in K
// while the one-sided timer jitter of the K readings averages down
// ~sqrt(K). K comes from the calibrated noise floor (AmplificationFactor).
func (s *Spy) Evicts(set []uint64, victim uint64) bool {
	pos := 0
	for trial := 0; trial < 3; trial++ {
		s.tb.Sync()
		var evicted bool
		if s.strat.Amplify {
			evicted = s.reloadRounds(set, victim)
		} else {
			s.Touch(victim)
			for _, a := range set {
				s.Touch(a)
			}
			lat := s.Touch(victim)
			evicted = lat > (s.hitLat+s.missLat)/2
		}
		if evicted {
			pos++
		} else {
			// A miss can be spurious (noise); a hit cannot be — the
			// victim demonstrably survived the walk.
			return false
		}
		if pos == 2 {
			return true
		}
	}
	return pos >= 2
}

// reloadRounds is one amplified conflict-test trial: K rounds of
// untimed-walk + timed victim reload. The decision compares the summed
// reload readings against K midpoints; the calibrated midpoint already
// carries the jitter's mean (both levels are observed medians), so the
// comparison is centered and the residual is the sqrt(K)-averaged noise.
func (s *Spy) reloadRounds(set []uint64, victim uint64) bool {
	k := s.AmplificationFactor()
	s.load(victim)
	var obs uint64
	for r := 0; r < k; r++ {
		for _, a := range set {
			s.load(a)
		}
		obs += s.Touch(victim)
	}
	return obs > uint64(k)*(s.hitLat+s.missLat)/2
}

// median returns the rounded median of the samples (not modifying them).
func median(xs []uint64) uint64 {
	sorted := append([]uint64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2] + 1) / 2
}

// spreadOf returns max-min of the samples — the observed jitter range.
func spreadOf(xs []uint64) uint64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
