package probe

import (
	"fmt"

	"repro/internal/mem"
)

// EvictionSet is a minimal set of spy addresses that maps to one cache set:
// accessing all of them replaces every line in that set. ID is an
// attacker-local label; the attacker has no way to know which physical
// (slice, set) pair a group corresponds to, and never needs to.
type EvictionSet struct {
	ID int
	// Lines are the probe addresses (one per way).
	Lines []uint64
	// Members are all spy pages discovered to be co-mapped with this set
	// (superset of Lines' pages); kept for diagnostics.
	Members []uint64
}

// CopyEvictionSetsInto deep-copies src over dst, reusing dst's backing
// slices (outer and per-set inner) wherever they are large enough. It is
// the rig-pool counterpart of the clone the warm-start path used to build
// per trial: a pooled rig's eviction sets are overwritten in place on each
// lease, allocation-free once the buffers have grown to size. The result
// aliases nothing in src.
func CopyEvictionSetsInto(dst []EvictionSet, src []EvictionSet) []EvictionSet {
	if cap(dst) < len(src) {
		dst = make([]EvictionSet, len(src))
	}
	dst = dst[:len(src)]
	for i := range src {
		dst[i].ID = src[i].ID
		dst[i].Lines = append(dst[i].Lines[:0], src[i].Lines...)
		dst[i].Members = append(dst[i].Members[:0], src[i].Members...)
	}
	return dst
}

// Offset returns the eviction set for the k-th cache block of the same
// pages: every line shifted by k*64 bytes. For page-aligned bases and
// k < 64 the shift flips only low set-index bits, which changes the slice
// hash by a constant, so co-mapped addresses stay co-mapped — this is why
// the paper can monitor "the second cache blocks in the pages" with the
// same 256-group structure (§III-B).
func (e EvictionSet) Offset(k int) EvictionSet {
	if k == 0 {
		return e
	}
	off := uint64(k * 64)
	if off >= mem.PageSize {
		panic(fmt.Sprintf("probe: block offset %d beyond page", k))
	}
	lines := make([]uint64, len(e.Lines))
	for i, a := range e.Lines {
		lines[i] = a + off
	}
	return EvictionSet{ID: e.ID, Lines: lines, Members: e.Members}
}

// BuildAlignedEvictionSets discovers the page-aligned conflict groups of
// the spy's buffer by pure conflict testing and returns one eviction set
// per group found. ways is the cache associativity (a published part
// number, known to any attacker).
//
// The algorithm is the standard group-testing construction: pick a victim
// page, check the rest of the pool can evict it, reduce the pool to a
// minimal ways-sized eviction set by group elimination, then sweep the
// pool for every other page the minimal set evicts — those form one
// conflict group. Repeat until the pool is exhausted.
func (s *Spy) BuildAlignedEvictionSets(ways int) ([]EvictionSet, error) {
	if ways <= 0 {
		return nil, fmt.Errorf("probe: ways must be positive")
	}
	pool := make([]uint64, s.region.Pages())
	for i := range pool {
		pool[i] = s.PageBase(i)
	}
	var groups []EvictionSet
	for len(pool) > ways {
		victim := pool[0]
		rest := append([]uint64(nil), pool[1:]...)
		if !s.Evicts(rest, victim) {
			// Not enough co-mapped pages remain for this victim's set;
			// set it aside and move on.
			pool = pool[1:]
			continue
		}
		minimal := s.reduce(rest, victim, ways)
		if len(minimal) != ways || !s.Evicts(minimal, victim) {
			pool = pool[1:]
			continue
		}
		group := EvictionSet{ID: len(groups), Lines: minimal}
		group.Members = append(group.Members, victim)
		inMinimal := make(map[uint64]bool, len(minimal))
		for _, a := range minimal {
			inMinimal[a] = true
		}
		next := pool[:0]
		for _, y := range pool[1:] {
			switch {
			case inMinimal[y]:
				group.Members = append(group.Members, y)
			case s.Evicts(minimal, y):
				group.Members = append(group.Members, y)
			default:
				next = append(next, y)
			}
		}
		pool = next
		groups = append(groups, group)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("probe: no conflict groups found with %d pages; map more memory", s.region.Pages())
	}
	return groups, nil
}

// reduce shrinks candidates to a minimal eviction set for victim using
// group elimination: repeatedly split into ways+1 chunks and drop any
// chunk whose removal still leaves the victim evicted.
func (s *Spy) reduce(candidates []uint64, victim uint64, ways int) []uint64 {
	work := append([]uint64(nil), candidates...)
	for len(work) > ways {
		// Split into exactly ways+1 chunks: at most ways elements are
		// needed, so by pigeonhole at least one chunk is disposable.
		removed := false
		for g := 0; g <= ways; g++ {
			lo := g * len(work) / (ways + 1)
			hi := (g + 1) * len(work) / (ways + 1)
			if lo == hi {
				continue
			}
			rest := make([]uint64, 0, len(work)-(hi-lo))
			rest = append(rest, work[:lo]...)
			rest = append(rest, work[hi:]...)
			if s.Evicts(rest, victim) {
				work = rest
				removed = true
				break
			}
		}
		if !removed {
			break
		}
	}
	return work
}
