package probe

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/netmodel"
	"repro/internal/nic"
	"repro/internal/testbed"
)

// quietOptions returns a small, noise-free machine for deterministic tests:
// 2 slices x 128 sets x 4 ways (4 page-aligned groups).
func quietOptions(seed int64) testbed.Options {
	opts := testbed.DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(2, 128, 4)
	opts.NoiseRate = 0
	opts.TimerNoise = 0
	opts.MemBytes = 1 << 28
	return opts
}

func newSpyRig(t *testing.T, opts testbed.Options, pages int) (*testbed.Testbed, *Spy) {
	t.Helper()
	tb, err := testbed.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	spy, err := NewSpy(tb, pages)
	if err != nil {
		t.Fatal(err)
	}
	return tb, spy
}

func TestSpyCalibration(t *testing.T) {
	_, spy := newSpyRig(t, quietOptions(1), 16)
	if spy.HitLatency() >= spy.MissLatency() {
		t.Fatalf("calibration: hit %d >= miss %d", spy.HitLatency(), spy.MissLatency())
	}
}

func TestEvictsConflictTest(t *testing.T) {
	tb, spy := newSpyRig(t, quietOptions(2), 64)
	ccfg := tb.Cache().Config()
	// Oracle-built ground truth: a ways-sized set co-mapped with a victim.
	victimSet := ccfg.GlobalSet(spy.PageBase(0))
	conflicting := cache.AddrsInGlobalSet(ccfg, victimSet, ccfg.Ways, 1<<24>>6)
	if !spy.Evicts(conflicting, spy.PageBase(0)) {
		t.Error("ways co-mapped lines must evict the victim")
	}
	other := cache.AddrsInGlobalSet(ccfg, (victimSet+1)%ccfg.TotalSets(), ccfg.Ways, 1<<24>>6)
	if spy.Evicts(other, spy.PageBase(0)) {
		t.Error("lines of another set must not evict the victim")
	}
	if spy.Evicts(conflicting[:ccfg.Ways-1], spy.PageBase(0)) {
		t.Error("ways-1 lines are too few to evict under LRU")
	}
}

func TestBuildAlignedEvictionSets(t *testing.T) {
	tb, spy := newSpyRig(t, quietOptions(3), 72)
	ccfg := tb.Cache().Config()
	groups, err := spy.BuildAlignedEvictionSets(ccfg.Ways)
	if err != nil {
		t.Fatal(err)
	}
	want := ccfg.AlignedSetCount()
	if len(groups) != want {
		t.Fatalf("found %d groups want %d", len(groups), want)
	}
	seenSets := map[int]bool{}
	for _, g := range groups {
		if len(g.Lines) != ccfg.Ways {
			t.Fatalf("group %d has %d lines want %d", g.ID, len(g.Lines), ccfg.Ways)
		}
		gs := ccfg.GlobalSet(g.Lines[0])
		if ccfg.AlignedIndexOf(gs) < 0 {
			t.Fatalf("group %d maps to non-aligned set %d", g.ID, gs)
		}
		for _, a := range g.Lines {
			if ccfg.GlobalSet(a) != gs {
				t.Fatalf("group %d lines not co-mapped", g.ID)
			}
		}
		for _, m := range g.Members {
			if ccfg.GlobalSet(m) != gs {
				t.Fatalf("group %d member %#x not co-mapped", g.ID, m)
			}
		}
		if seenSets[gs] {
			t.Fatalf("two groups map to global set %d", gs)
		}
		seenSets[gs] = true
	}
}

func TestEvictionSetOffsetStaysCoMapped(t *testing.T) {
	tb, spy := newSpyRig(t, quietOptions(4), 72)
	ccfg := tb.Cache().Config()
	groups, err := spy.BuildAlignedEvictionSets(ccfg.Ways)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		for _, k := range []int{1, 2, 3} {
			shifted := g.Offset(k)
			gs := ccfg.GlobalSet(shifted.Lines[0])
			for _, a := range shifted.Lines {
				if ccfg.GlobalSet(a) != gs {
					t.Fatalf("offset %d broke co-mapping of group %d", k, g.ID)
				}
			}
		}
	}
}

func TestMonitorDetectsPacketActivity(t *testing.T) {
	opts := quietOptions(5)
	tb, spy := newSpyRig(t, opts, 72)
	ccfg := tb.Cache().Config()
	groups, err := spy.BuildAlignedEvictionSets(ccfg.Ways)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(spy, groups)

	// Idle: no activity anywhere.
	idle := m.ProbeOnce()
	idle = m.ProbeOnce() // first probe re-primes after construction
	for i, a := range idle.Active {
		if a {
			t.Fatalf("idle machine shows activity on set %d", i)
		}
	}

	// One broadcast frame: the buffer's page-aligned set must light up.
	wire := netmodel.NewWire(netmodel.GigabitRate)
	tb.SetTraffic(netmodel.NewConstantSource(wire, 256, 100_000, tb.Clock().Now(), 1))
	tb.DrainTraffic()
	busy := m.ProbeOnce()
	active := 0
	for _, a := range busy.Active {
		if a {
			active++
		}
	}
	if active == 0 {
		t.Fatal("packet DMA produced no observable activity")
	}
}

func TestMonitorReplaceSet(t *testing.T) {
	tb, spy := newSpyRig(t, quietOptions(6), 72)
	ccfg := tb.Cache().Config()
	groups, err := spy.BuildAlignedEvictionSets(ccfg.Ways)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(spy, groups)
	m.ReplaceSet(0, groups[0].Offset(1))
	s := m.ProbeOnce()
	s = m.ProbeOnce()
	if s.Active[0] {
		t.Error("replaced set should be quiet when idle")
	}
}

func TestCollectSpacing(t *testing.T) {
	tb, spy := newSpyRig(t, quietOptions(7), 72)
	ccfg := tb.Cache().Config()
	groups, _ := spy.BuildAlignedEvictionSets(ccfg.Ways)
	m := NewMonitor(spy, groups[:2])
	const interval = 100_000
	samples := m.Collect(10, interval)
	if len(samples) != 10 {
		t.Fatalf("got %d samples", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		gap := samples[i].At - samples[i-1].At
		if gap < interval {
			t.Errorf("sample %d gap %d below interval", i, gap)
		}
	}
	_ = tb
}

func TestActivityRate(t *testing.T) {
	samples := []Sample{
		{Active: []bool{true, false}},
		{Active: []bool{true, false}},
		{Active: []bool{false, false}},
		{Active: []bool{true, true}},
	}
	rates := ActivityRate(samples)
	if rates[0] != 0.75 || rates[1] != 0.25 {
		t.Errorf("rates %v", rates)
	}
	if ActivityRate(nil) != nil {
		t.Error("empty samples must give nil")
	}
}

func TestMonitorWithNoiseStaysUsable(t *testing.T) {
	// With background noise on, idle activity must stay well under 50%:
	// the channel has headroom for real signals.
	opts := quietOptions(8)
	opts.NoiseRate = 100_000
	opts.TimerNoise = 8
	tb, spy := newSpyRig(t, opts, 72)
	ccfg := tb.Cache().Config()
	groups, err := spy.BuildAlignedEvictionSets(ccfg.Ways)
	if err != nil {
		t.Fatal(err)
	}
	// With a tiny 4-group cache, noise hits monitored sets often; use the
	// rate only as a sanity bound.
	m := NewMonitor(spy, groups)
	samples := m.Collect(50, 50_000)
	rates := ActivityRate(samples)
	for i, r := range rates {
		if r > 0.9 {
			t.Errorf("set %d active %.0f%% of idle samples; threshold broken", i, r*100)
		}
	}
	_ = nic.DefaultConfig() // keep import for doc symmetry
}
