package cache

import (
	"testing"

	"repro/internal/sim"
)

// opStream decodes a byte stream into cache operations — the shared
// driver of the snapshot round-trip property and fuzz tests. Each op is
// two bytes: kind and an address selector kept small so ops collide in
// sets often (collisions are where eviction state lives).
type opStream struct {
	data []byte
	pos  int
}

func (s *opStream) next() (kind byte, addr uint64, ok bool) {
	if s.pos+2 > len(s.data) {
		return 0, 0, false
	}
	kind = s.data[s.pos] % 5
	addr = uint64(s.data[s.pos+1]) * 64 // one of 256 lines, always set-colliding at demo scale
	s.pos += 2
	return kind, addr, true
}

// applyOp runs one op, returning an observation fingerprint (hit flags,
// latency) that replay must reproduce exactly.
func applyOp(c *Cache, clock *sim.Clock, kind byte, addr uint64) uint64 {
	switch kind {
	case 0:
		hit, lat := c.Read(addr)
		clock.Advance(lat)
		if hit {
			return lat | 1<<32
		}
		return lat
	case 1:
		hit, lat := c.Write(addr)
		clock.Advance(lat)
		if hit {
			return lat | 1<<32
		}
		return lat
	case 2:
		c.IOWrite(addr)
		return 0
	case 3:
		c.Flush(addr)
		return 0
	default:
		clock.Advance(100)
		if c.Contains(addr) {
			return 1
		}
		return 0
	}
}

// checkSnapshotReplay is the property: for any op prefix and suffix,
// snapshot-after-prefix, run-suffix, restore, run-suffix-again must
// observe identical results and identical final state.
func checkSnapshotReplay(t *testing.T, cfg Config, data []byte) {
	t.Helper()
	if len(data) < 4 {
		return
	}
	clock := sim.NewClock()
	c := New(cfg, clock)
	cut := int(data[0]) % (len(data) / 2)
	stream := &opStream{data: data[1:]}
	for i := 0; i < cut; i++ {
		kind, addr, ok := stream.next()
		if !ok {
			break
		}
		applyOp(c, clock, kind, addr)
	}
	snap := c.Snapshot()
	clockSnap := clock.Snapshot()
	suffixStart := stream.pos

	var first []uint64
	for {
		kind, addr, ok := stream.next()
		if !ok {
			break
		}
		first = append(first, applyOp(c, clock, kind, addr))
	}
	finalFirst := c.Snapshot()

	c.Restore(snap)
	clock.Restore(clockSnap)
	stream.pos = suffixStart
	var second []uint64
	for {
		kind, addr, ok := stream.next()
		if !ok {
			break
		}
		second = append(second, applyOp(c, clock, kind, addr))
	}
	finalSecond := c.Snapshot()

	if len(first) != len(second) {
		t.Fatalf("replay length mismatch: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("op %d observed %x on first run, %x on replay", i, first[i], second[i])
		}
	}
	if !snapshotsEqual(finalFirst, finalSecond) {
		t.Fatal("final cache state differs between run and replay")
	}
}

func snapshotsEqual(a, b *Snapshot) bool {
	if a.geometry != b.geometry || a.nextID != b.nextID || a.stats != b.stats {
		return false
	}
	if len(a.lines) != len(b.lines) || len(a.pstate) != len(b.pstate) {
		return false
	}
	for i := range a.lines {
		if a.lines[i] != b.lines[i] {
			return false
		}
	}
	for i := range a.pstate {
		if a.pstate[i] != b.pstate[i] {
			return false
		}
	}
	return true
}

// tinyConfig is a small cache where 256 lines generate heavy conflict.
func tinyConfig(partition bool) Config {
	cfg := ScaledConfig(2, 16, 4)
	if partition {
		cfg.Partition = DefaultPartitionConfig()
	}
	return cfg
}

func TestSnapshotReplayDeterministic(t *testing.T) {
	rng := sim.NewRNG(11)
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 64+rng.Intn(192))
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		checkSnapshotReplay(t, tinyConfig(trial%2 == 1), data)
	}
}

// TestSnapshotRestoreIntoFreshCache is the machine-clone path: a snapshot
// taken on one cache restored into a newly constructed one with the same
// config must behave identically to the original.
func TestSnapshotRestoreIntoFreshCache(t *testing.T) {
	clock := sim.NewClock()
	cfg := tinyConfig(true)
	orig := New(cfg, clock)
	rng := sim.NewRNG(5)
	for i := 0; i < 500; i++ {
		applyOp(orig, clock, byte(rng.Intn(5)), uint64(rng.Intn(256))*64)
	}
	snap := orig.Snapshot()

	clone := New(cfg, clock)
	clone.Restore(snap)
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(256)) * 64
		// Drive both from one clock: advance manually to keep them aligned.
		ho, _ := orig.Read(addr)
		hc, _ := clone.Read(addr)
		if ho != hc {
			t.Fatalf("op %d (@%x): original hit=%v clone hit=%v", i, addr, ho, hc)
		}
		clock.Advance(50)
	}
	if orig.Stats() != clone.Stats() {
		t.Fatalf("stats diverged:\n%+v\n%+v", orig.Stats(), clone.Stats())
	}
}

func TestSnapshotGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("restoring a mismatched snapshot must panic")
		}
	}()
	clock := sim.NewClock()
	a := New(ScaledConfig(2, 16, 4), clock)
	b := New(ScaledConfig(2, 32, 4), clock)
	b.Restore(a.Snapshot())
}

// FuzzSnapshotReplay lets the fuzzer hunt for op interleavings where
// restore-then-replay diverges (LRU stamps, partition quotas, occupancy
// integration are all in play).
func FuzzSnapshotReplay(f *testing.F) {
	f.Add([]byte{3, 0, 1, 1, 2, 2, 64, 3, 128, 4, 192, 0, 7, 2, 9})
	f.Add([]byte{10, 2, 2, 2, 3, 2, 4, 2, 5, 0, 6, 1, 7, 2, 8, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		checkSnapshotReplay(t, tinyConfig(len(data)%2 == 1), data)
	})
}
