// Package cache models the last-level cache at the center of the Packet
// Chasing attack: a sliced, set-associative, inclusive LLC with Intel-style
// complex (hashed) slice indexing, DDIO write-allocation for I/O traffic,
// and the paper's adaptive I/O partitioning defense (§VII).
//
// Every access returns its latency in cycles; the spy process accumulates
// those latencies exactly the way the real attack accumulates rdtsc deltas
// around loads. The model is deliberately single-level: the paper's
// PRIME+PROBE discriminates LLC hits from DRAM fills, and that is the only
// latency edge the attack consumes.
package cache

import "fmt"

// Source identifies who issued a cache access. The distinction drives both
// DDIO allocation (I/O writes get a capped number of ways) and the defense
// (I/O may never evict CPU lines).
type Source int

const (
	// CPU marks accesses from cores: the spy, the driver, the kernel
	// network stack, and application workloads.
	CPU Source = iota
	// IO marks DMA traffic from the NIC (and the disk model in perfsim).
	IO
)

func (s Source) String() string {
	if s == IO {
		return "IO"
	}
	return "CPU"
}

// Config describes the cache geometry and feature set.
type Config struct {
	// Slices is the number of LLC slices (one per core on the paper's
	// Xeon E5-2660: 8).
	Slices int
	// SetsPerSlice is the number of sets in each slice (2048 on the paper
	// machine: 16384 sets total, Fig 2 shows 11 set-index bits).
	SetsPerSlice int
	// Ways is the associativity (20 on the paper machine).
	Ways int
	// HitLatency and MissLatency are the cycle costs charged to an access
	// that hits in, respectively misses, the LLC. Only the difference
	// matters to the attack; defaults approximate a Xeon (~40 vs ~200).
	HitLatency, MissLatency uint64
	// DDIO enables Data Direct I/O: DMA writes allocate directly into the
	// LLC instead of going to memory. Always on by default on the paper's
	// hardware.
	DDIO bool
	// DDIOWays caps how many ways of a set DDIO may fill (2 on Intel
	// parts; the cap limits cache pollution but does NOT stop I/O
	// allocations from evicting CPU lines — that is the vulnerability).
	DDIOWays int
	// Partition, when non-nil, enables the adaptive I/O partitioning
	// defense of §VII. It implies I/O allocations are confined to a
	// per-set quota of ways and can never evict CPU lines.
	Partition *PartitionConfig
}

// PartitionConfig parameterizes the adaptive partitioning defense exactly
// as §VII describes: a per-set I/O way quota within [MinIOWays, MaxIOWays],
// re-evaluated every Period cycles against occupancy thresholds.
type PartitionConfig struct {
	// Period is the adaptation period p in cycles (paper: 10,000).
	Period uint64
	// THigh is the occupancy threshold above which the quota grows
	// (paper: 5,000 = 0.5p).
	THigh uint64
	// TLow is the occupancy threshold below which the quota shrinks
	// (paper: 2,000 = 0.2p).
	TLow uint64
	// MinIOWays and MaxIOWays bound the quota (paper: 1 and 3).
	MinIOWays, MaxIOWays int
}

// DefaultPartitionConfig returns the §VII parameters.
func DefaultPartitionConfig() *PartitionConfig {
	return &PartitionConfig{Period: 10_000, THigh: 5_000, TLow: 2_000, MinIOWays: 1, MaxIOWays: 3}
}

// PaperConfig returns the paper machine's LLC: 20 MB, 8 slices x 2048 sets
// x 20 ways x 64 B, DDIO enabled with a 2-way cap, no defense.
func PaperConfig() Config {
	return Config{
		Slices:       8,
		SetsPerSlice: 2048,
		Ways:         20,
		HitLatency:   40,
		MissLatency:  200,
		DDIO:         true,
		DDIOWays:     2,
	}
}

// ScaledConfig returns a geometrically smaller cache with the same shape,
// for fast unit tests: slices*setsPerSlice*ways*64 bytes.
func ScaledConfig(slices, setsPerSlice, ways int) Config {
	c := PaperConfig()
	c.Slices = slices
	c.SetsPerSlice = setsPerSlice
	c.Ways = ways
	return c
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.Slices <= 0 || c.Slices&(c.Slices-1) != 0 {
		return fmt.Errorf("cache: slices must be a positive power of two, got %d", c.Slices)
	}
	if c.SetsPerSlice <= 0 || c.SetsPerSlice&(c.SetsPerSlice-1) != 0 {
		return fmt.Errorf("cache: sets per slice must be a positive power of two, got %d", c.SetsPerSlice)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways must be positive, got %d", c.Ways)
	}
	if c.DDIO && (c.DDIOWays <= 0 || c.DDIOWays > c.Ways) {
		return fmt.Errorf("cache: DDIO ways %d out of range (1..%d)", c.DDIOWays, c.Ways)
	}
	if p := c.Partition; p != nil {
		if p.Period == 0 {
			return fmt.Errorf("cache: partition period must be positive")
		}
		if p.TLow > p.THigh {
			return fmt.Errorf("cache: partition TLow %d > THigh %d", p.TLow, p.THigh)
		}
		if p.MinIOWays < 1 || p.MaxIOWays >= c.Ways || p.MinIOWays > p.MaxIOWays {
			return fmt.Errorf("cache: partition way bounds [%d,%d] invalid for %d ways",
				p.MinIOWays, p.MaxIOWays, c.Ways)
		}
	}
	return nil
}

// SizeBytes returns the total cache capacity.
func (c Config) SizeBytes() int {
	return c.Slices * c.SetsPerSlice * c.Ways * 64
}

// TotalSets returns the number of sets across all slices.
func (c Config) TotalSets() int { return c.Slices * c.SetsPerSlice }
