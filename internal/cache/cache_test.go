package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTestCache(cfg Config) (*Cache, *sim.Clock) {
	clock := sim.NewClock()
	return New(cfg, clock), clock
}

func TestConfigValidate(t *testing.T) {
	good := PaperConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Slices = 3
	if bad.Validate() == nil {
		t.Error("non-power-of-two slices must fail")
	}
	bad = good
	bad.DDIOWays = 0
	if bad.Validate() == nil {
		t.Error("DDIO with 0 ways must fail")
	}
	bad = good
	bad.Partition = &PartitionConfig{Period: 0}
	if bad.Validate() == nil {
		t.Error("zero partition period must fail")
	}
	bad = good
	bad.Partition = DefaultPartitionConfig()
	bad.Partition.MaxIOWays = good.Ways
	if bad.Validate() == nil {
		t.Error("quota consuming all ways must fail")
	}
}

func TestPaperGeometry(t *testing.T) {
	cfg := PaperConfig()
	if cfg.SizeBytes() != 20*1024*1024 {
		t.Errorf("size %d want 20MB", cfg.SizeBytes())
	}
	if cfg.TotalSets() != 16384 {
		t.Errorf("sets %d want 16384", cfg.TotalSets())
	}
}

func TestReadMissThenHit(t *testing.T) {
	c, clock := newTestCache(ScaledConfig(2, 64, 4))
	addr := uint64(0x1000)
	hit, lat := c.Read(addr)
	if hit || lat != c.cfg.MissLatency {
		t.Errorf("first read: hit=%v lat=%d", hit, lat)
	}
	hit, lat = c.Read(addr)
	if !hit || lat != c.cfg.HitLatency {
		t.Errorf("second read: hit=%v lat=%d", hit, lat)
	}
	if clock.Now() != 0 {
		t.Errorf("cache must not advance the clock; clock=%d", clock.Now())
	}
	st := c.Stats()
	if st.CPUHits != 1 || st.CPUMisses != 1 || st.MemReads != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := ScaledConfig(1, 64, 4)
	c, _ := newTestCache(cfg)
	set := 7
	addrs := AddrsInGlobalSet(cfg, set, 5, 1)
	// Fill the 4 ways.
	for _, a := range addrs[:4] {
		c.Read(a)
	}
	// Touch addr 0 so addr 1 becomes LRU.
	c.Read(addrs[0])
	// Allocate a 5th line: addrs[1] must be the victim.
	c.Read(addrs[4])
	if !c.Contains(addrs[0]) || c.Contains(addrs[1]) {
		t.Error("LRU victim selection wrong")
	}
	for _, a := range addrs[2:] {
		if !c.Contains(a) {
			t.Errorf("addr %#x should be cached", a)
		}
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := ScaledConfig(1, 64, 2)
	c, _ := newTestCache(cfg)
	addrs := AddrsInGlobalSet(cfg, 3, 3, 1)
	c.Write(addrs[0]) // dirty
	c.Read(addrs[1])
	c.Read(addrs[2]) // evicts dirty addrs[0]
	st := c.Stats()
	if st.Writebacks != 1 || st.MemWrites != 1 {
		t.Errorf("writebacks=%d memwrites=%d want 1,1", st.Writebacks, st.MemWrites)
	}
}

func TestFlush(t *testing.T) {
	c, _ := newTestCache(ScaledConfig(1, 64, 2))
	c.Write(0x40)
	c.Flush(0x40)
	if c.Contains(0x40) {
		t.Error("flushed line still present")
	}
	if c.Stats().Writebacks != 1 {
		t.Error("dirty flush must write back")
	}
	c.Flush(0x9999999) // flushing an absent line is a no-op
}

func TestDDIOAllocatesInCache(t *testing.T) {
	c, _ := newTestCache(ScaledConfig(1, 64, 4))
	c.IOWrite(0x80)
	if !c.Contains(0x80) {
		t.Error("DDIO write must allocate in LLC")
	}
	if c.Stats().MemWrites != 0 {
		t.Error("DDIO write must not touch memory")
	}
	// Driver read of the packet hits.
	hit, _ := c.Read(0x80)
	if !hit {
		t.Error("driver read of DDIO line should hit")
	}
}

func TestNoDDIOWritesToMemory(t *testing.T) {
	cfg := ScaledConfig(1, 64, 4)
	cfg.DDIO = false
	c, _ := newTestCache(cfg)
	c.Read(0x80) // warm a copy
	c.IOWrite(0x80)
	if c.Contains(0x80) {
		t.Error("non-DDIO DMA must invalidate the cached copy")
	}
	st := c.Stats()
	if st.MemWrites != 1 || st.IOBypasses != 1 {
		t.Errorf("stats %+v", st)
	}
	// Subsequent driver read misses (demand fetch from DRAM).
	hit, _ := c.Read(0x80)
	if hit {
		t.Error("read after non-DDIO DMA must miss")
	}
}

func TestDDIOWayCapNeverExceeded(t *testing.T) {
	cfg := ScaledConfig(1, 64, 8)
	cfg.DDIOWays = 2
	c, _ := newTestCache(cfg)
	set := 5
	addrs := AddrsInGlobalSet(cfg, set, 10, 1)
	for _, a := range addrs {
		c.IOWrite(a)
		if n := c.IOLinesInSet(set); n > 2 {
			t.Fatalf("IO lines in set = %d exceeds DDIO cap 2", n)
		}
	}
}

func TestDDIOEvictsCPULines(t *testing.T) {
	// The vulnerability: a set full of spy lines, one DMA write, one spy
	// line gone.
	cfg := ScaledConfig(1, 64, 4)
	c, _ := newTestCache(cfg)
	set := 9
	addrs := AddrsInGlobalSet(cfg, set, 5, 1)
	spy := addrs[:4]
	for _, a := range spy {
		c.Read(a)
	}
	c.IOWrite(addrs[4])
	evicted := 0
	for _, a := range spy {
		if !c.Contains(a) {
			evicted++
		}
	}
	if evicted != 1 {
		t.Errorf("evicted %d spy lines want exactly 1", evicted)
	}
	if c.Stats().IOEvictedCPU != 1 {
		t.Errorf("IOEvictedCPU=%d want 1", c.Stats().IOEvictedCPU)
	}
}

func TestPrimeProbeDetectsPacket(t *testing.T) {
	// End-to-end property the whole attack rests on: priming a set and
	// re-probing costs Ways hits when idle; after a DMA write at least one
	// probe access misses.
	cfg := ScaledConfig(2, 128, 8)
	c, _ := newTestCache(cfg)
	set := 42
	addrs := AddrsInGlobalSet(cfg, set, cfg.Ways+1, 1)
	probeSet := addrs[:cfg.Ways]
	packet := addrs[cfg.Ways]

	prime := func() {
		for _, a := range probeSet {
			c.Read(a)
		}
	}
	probe := func() (lat uint64) {
		for _, a := range probeSet {
			_, l := c.Read(a)
			lat += l
		}
		return lat
	}
	prime()
	idleLat := probe()
	if idleLat != uint64(cfg.Ways)*cfg.HitLatency {
		t.Fatalf("idle probe latency %d want all hits %d", idleLat, uint64(cfg.Ways)*cfg.HitLatency)
	}
	c.IOWrite(packet)
	busyLat := probe()
	if busyLat <= idleLat {
		t.Errorf("probe after DMA (%d) should exceed idle probe (%d)", busyLat, idleLat)
	}
}

func TestStatsResetKeepsContents(t *testing.T) {
	c, _ := newTestCache(ScaledConfig(1, 64, 2))
	c.Read(0x40)
	c.ResetStats()
	if c.Stats().CPUAccesses != 0 {
		t.Error("stats not reset")
	}
	if !c.Contains(0x40) {
		t.Error("reset must not drop contents")
	}
}

func TestCacheInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed int64) bool {
		cfg := ScaledConfig(2, 64, 4)
		c, clock := newTestCache(cfg)
		rng := sim.NewRNG(seed)
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(1 << 20))
			switch rng.Intn(4) {
			case 0:
				c.Read(addr)
			case 1:
				c.Write(addr)
			case 2:
				c.IOWrite(addr)
			case 3:
				c.Flush(addr)
			}
			clock.Advance(uint64(rng.Intn(50)))
		}
		st := c.Stats()
		// Conservation: every CPU miss is a memory read.
		if st.MemReads != st.CPUMisses {
			return false
		}
		// DDIO cap holds everywhere.
		for s := 0; s < cfg.TotalSets(); s++ {
			if c.IOLinesInSet(s) > cfg.DDIOWays {
				return false
			}
		}
		return st.CPUHits+st.CPUMisses == st.CPUAccesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// referenceCPUAccess is the pre-fusion two-pass algorithm — separate
// lookup and lruWay scans — kept here as the specification the fused
// single-pass cpuAccess is differentially tested against.
func referenceCPUAccess(c *Cache, addr uint64, store bool) (bool, uint64) {
	set := c.globalSet(addr)
	c.maybeAdapt(set)
	tag := addr >> 6
	ways := c.setWays(set)
	c.stats.CPUAccesses++
	if w := c.lookup(ways, tag); w >= 0 {
		c.stats.CPUHits++
		ways[w].stamp = c.touch()
		if store {
			ways[w].dirty = true
		}
		return true, c.cfg.HitLatency
	}
	c.stats.CPUMisses++
	c.stats.MemReads++
	q := 0
	if c.pstate != nil {
		q = c.pstate[set].quota
	}
	w := lruWay(ways[q:]) + q
	c.evict(set, w)
	ways[w] = line{tag: tag, valid: true, dirty: store, io: false, stamp: c.touch()}
	c.refreshHasIO(set)
	return false, c.cfg.MissLatency
}

// TestCPUAccessMatchesReference drives the fused cpuAccess and the
// two-pass reference through identical mixed access streams (with and
// without the partition defense, whose quota restricts the victim range)
// and demands identical hit/miss decisions, stats, and full line state at
// every step. Victim choice — first invalid way, else lowest stamp — is
// the part a fused scan could silently get wrong.
func TestCPUAccessMatchesReference(t *testing.T) {
	for _, name := range []string{"ddio", "partition"} {
		t.Run(name, func(t *testing.T) {
			cfg := ScaledConfig(2, 64, 4)
			if name == "partition" {
				cfg.Partition = DefaultPartitionConfig()
			}
			got, gotClock := newTestCache(cfg)
			want, wantClock := newTestCache(cfg)
			rng := sim.NewRNG(41)
			for i := 0; i < 20000; i++ {
				addr := uint64(rng.Intn(1 << 18))
				store := rng.Intn(2) == 1
				if rng.Intn(8) == 0 { // interleave DMA so io lines exist
					got.IOWrite(addr)
					want.IOWrite(addr)
					continue
				}
				gh, gl := got.cpuAccess(addr, store)
				wh, wl := referenceCPUAccess(want, addr, store)
				if gh != wh || gl != wl {
					t.Fatalf("access %d addr %#x: fused (%v,%d) != reference (%v,%d)",
						i, addr, gh, gl, wh, wl)
				}
				d := uint64(rng.Intn(300))
				gotClock.Advance(d)
				wantClock.Advance(d)
			}
			if got.stats != want.stats {
				t.Fatalf("stats diverged: fused %+v, reference %+v", got.stats, want.stats)
			}
			for i := range got.lines {
				if got.lines[i] != want.lines[i] {
					t.Fatalf("line %d diverged: fused %+v, reference %+v",
						i, got.lines[i], want.lines[i])
				}
			}
		})
	}
}

func TestString(t *testing.T) {
	c, _ := newTestCache(PaperConfig())
	if s := c.String(); s == "" {
		t.Error("empty description")
	}
}
