package cache

import "fmt"

// Snapshot is a deep value copy of a cache's mutable state: line metadata,
// partition counters, the LRU stamp source, and the traffic counters. It is
// immutable once taken, so one snapshot can seed any number of restored
// caches (the warm-start path clones machines concurrently from a shared
// snapshot).
type Snapshot struct {
	geometry string // config fingerprint guarding against cross-machine restores
	lines    []line // flattened [set*ways+way]
	pstate   []setState
	nextID   uint64
	stats    Stats
}

// geometryKey identifies the cache shape a snapshot belongs to. Restoring
// into a differently shaped cache is always a programming error.
func geometryKey(cfg Config) string {
	part := "none"
	if cfg.Partition != nil {
		p := cfg.Partition
		part = fmt.Sprintf("%d-%d-%d-%d-%d", p.MinIOWays, p.MaxIOWays, p.Period, p.TLow, p.THigh)
	}
	return fmt.Sprintf("%dx%dx%d/ddio=%v/%d/part=%s",
		cfg.Slices, cfg.SetsPerSlice, cfg.Ways, cfg.DDIO, cfg.DDIOWays, part)
}

// Snapshot captures the cache's full mutable state.
func (c *Cache) Snapshot() *Snapshot {
	s := &Snapshot{
		geometry: geometryKey(c.cfg),
		lines:    make([]line, 0, len(c.sets)*c.cfg.Ways),
		nextID:   c.nextID,
		stats:    c.stats,
	}
	for _, ways := range c.sets {
		s.lines = append(s.lines, ways...)
	}
	if c.pstate != nil {
		s.pstate = append([]setState(nil), c.pstate...)
	}
	return s
}

// Restore overwrites the cache's mutable state from a snapshot taken on a
// cache with identical geometry. It panics on a geometry mismatch — that
// can only mean two different machines' state got crossed.
func (c *Cache) Restore(s *Snapshot) {
	if got := geometryKey(c.cfg); got != s.geometry {
		panic(fmt.Sprintf("cache: restoring snapshot of %q into %q", s.geometry, got))
	}
	for i, ways := range c.sets {
		copy(ways, s.lines[i*c.cfg.Ways:(i+1)*c.cfg.Ways])
	}
	if c.pstate != nil {
		copy(c.pstate, s.pstate)
	}
	c.nextID = s.nextID
	c.stats = s.stats
}
