package cache

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Snapshot is a deep value copy of a cache's mutable state: line metadata,
// partition counters, the LRU stamp source, and the traffic counters. It is
// immutable once taken, so one snapshot can seed any number of restored
// caches (the warm-start path clones machines concurrently from a shared
// snapshot).
type Snapshot struct {
	geometry string // config fingerprint guarding against cross-machine restores
	lines    []line // flattened [set*ways+way]
	pstate   []setState
	nextID   uint64
	stats    Stats
}

// geometryKey identifies the cache shape a snapshot belongs to. Restoring
// into a differently shaped cache is always a programming error.
func geometryKey(cfg Config) string {
	part := "none"
	if cfg.Partition != nil {
		p := cfg.Partition
		part = fmt.Sprintf("%d-%d-%d-%d-%d", p.MinIOWays, p.MaxIOWays, p.Period, p.TLow, p.THigh)
	}
	return fmt.Sprintf("%dx%dx%d/ddio=%v/%d/part=%s",
		cfg.Slices, cfg.SetsPerSlice, cfg.Ways, cfg.DDIO, cfg.DDIOWays, part)
}

// Snapshot captures the cache's full mutable state. The returned value is
// immutable and safe to restore into any cache of identical geometry.
func (c *Cache) Snapshot() *Snapshot {
	s := &Snapshot{}
	c.SnapshotInto(s)
	return s
}

// SnapshotInto captures the cache's state into a caller-owned scratch
// snapshot, reusing its backing slices. It exists for the offline/build
// path and benchmarks that snapshot repeatedly; a snapshot filed in an
// artifact must be a fresh Snapshot(), since artifacts rely on snapshot
// immutability.
func (c *Cache) SnapshotInto(s *Snapshot) {
	s.geometry = c.geo
	s.lines = append(s.lines[:0], c.lines...)
	s.pstate = s.pstate[:0]
	if c.pstate != nil {
		s.pstate = append(s.pstate, c.pstate...)
	}
	s.nextID = c.nextID
	s.stats = c.stats
}

// Restore overwrites the cache's mutable state from a snapshot taken on a
// cache with identical geometry. It panics on a geometry mismatch — that
// can only mean two different machines' state got crossed. Geometry never
// changes after New, so the comparison runs against the key cached at
// construction and the whole restore is copy-only: the rig-pool lease path
// runs one per warm trial and stays allocation-free.
func (c *Cache) Restore(s *Snapshot) {
	if c.geo != s.geometry {
		panic(fmt.Sprintf("cache: restoring snapshot of %q into %q", s.geometry, c.geo))
	}
	copy(c.lines, s.lines)
	if c.pstate != nil {
		copy(c.pstate, s.pstate)
	}
	c.nextID = s.nextID
	c.stats = s.stats
}

// snapshotGob mirrors Snapshot with exported fields for the disk-backed
// artifact store: per-field slices rather than the internal structs, so
// the wire format does not depend on unexported layout.
type snapshotGob struct {
	Geometry string
	// Line metadata, flattened [set*ways+way] like Snapshot.lines.
	Tags             []uint64
	Valid, Dirty, IO []bool
	Stamps           []uint64
	// Partition per-set counters (empty when the defense is off).
	Quota                  []int
	LastAdapt, OccupCycles []uint64
	LastUpd                []uint64
	HasIO                  []bool
	NextID                 uint64
	Stats                  Stats
}

// GobEncode serializes the snapshot (disk-backed warm starts). The
// snapshot's contents round-trip exactly; a decoded snapshot restores
// machines bit-identically to the original.
func (s *Snapshot) GobEncode() ([]byte, error) {
	w := snapshotGob{
		Geometry: s.geometry,
		NextID:   s.nextID,
		Stats:    s.stats,
	}
	w.Tags = make([]uint64, len(s.lines))
	w.Valid = make([]bool, len(s.lines))
	w.Dirty = make([]bool, len(s.lines))
	w.IO = make([]bool, len(s.lines))
	w.Stamps = make([]uint64, len(s.lines))
	for i, l := range s.lines {
		w.Tags[i], w.Valid[i], w.Dirty[i], w.IO[i], w.Stamps[i] = l.tag, l.valid, l.dirty, l.io, l.stamp
	}
	w.Quota = make([]int, len(s.pstate))
	w.LastAdapt = make([]uint64, len(s.pstate))
	w.OccupCycles = make([]uint64, len(s.pstate))
	w.LastUpd = make([]uint64, len(s.pstate))
	w.HasIO = make([]bool, len(s.pstate))
	for i, p := range s.pstate {
		w.Quota[i], w.LastAdapt[i], w.OccupCycles[i], w.LastUpd[i], w.HasIO[i] =
			p.quota, p.lastAdapt, p.occupCycles, p.lastUpd, p.hasIO
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode rebuilds a snapshot from its serialized form.
func (s *Snapshot) GobDecode(b []byte) error {
	var w snapshotGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	s.geometry = w.Geometry
	s.nextID = w.NextID
	s.stats = w.Stats
	s.lines = make([]line, len(w.Tags))
	for i := range s.lines {
		s.lines[i] = line{tag: w.Tags[i], valid: w.Valid[i], dirty: w.Dirty[i], io: w.IO[i], stamp: w.Stamps[i]}
	}
	s.pstate = nil
	if len(w.Quota) > 0 {
		s.pstate = make([]setState, len(w.Quota))
		for i := range s.pstate {
			s.pstate[i] = setState{
				quota: w.Quota[i], lastAdapt: w.LastAdapt[i],
				occupCycles: w.OccupCycles[i], lastUpd: w.LastUpd[i], hasIO: w.HasIO[i],
			}
		}
	}
	return nil
}
