package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// line is one cache line's metadata. Data contents are never modeled; the
// attack observes presence, not values.
type line struct {
	tag   uint64 // line address (addr >> 6)
	valid bool
	dirty bool
	io    bool   // allocated by DMA (DDIO)
	stamp uint64 // LRU timestamp (global access counter)
}

// setState carries the per-set counters of the adaptive partitioning
// defense (§VII): the current I/O way quota, and the lazily integrated
// I/O-occupancy counter.
type setState struct {
	quota       int    // IO partition size in ways; ways [0,quota) are I/O
	lastAdapt   uint64 // cycle of the last quota re-evaluation
	occupCycles uint64 // cycles with >=1 valid I/O line since lastAdapt
	lastUpd     uint64 // cycle of the last occupancy integration
	hasIO       bool   // >=1 valid I/O line present right now
}

// Stats aggregates cache and memory traffic counters. Reads and writes of
// main memory are counted in cache-line transfers.
type Stats struct {
	CPUAccesses, CPUHits, CPUMisses uint64
	IOWrites, IOHits, IOAllocs      uint64
	MemReads, MemWrites             uint64
	Writebacks                      uint64
	// IOEvictedCPU counts CPU-owned lines evicted by I/O allocations —
	// the microarchitectural event the entire attack is built on. The
	// partitioning defense drives this to zero. IOAllocsInvalid and
	// IOAllocsEvictIO classify the remaining I/O allocations (into empty
	// ways, respectively over older I/O lines).
	IOEvictedCPU    uint64
	IOAllocsInvalid uint64
	IOAllocsEvictIO uint64
	// BoundaryInvalidations counts lines invalidated by partition quota
	// changes.
	BoundaryInvalidations uint64
	// IOBypasses counts DMA writes sent straight to memory because the
	// I/O partition had no usable way (defense mode) or DDIO is off.
	IOBypasses uint64
}

// MissRate returns the CPU miss ratio.
func (s Stats) MissRate() float64 {
	if s.CPUAccesses == 0 {
		return 0
	}
	return float64(s.CPUMisses) / float64(s.CPUAccesses)
}

// Cache is the simulated last-level cache. It is single-goroutine, like the
// rest of the simulation core.
type Cache struct {
	//packetlint:transient geometry config, fixed at construction; snapshots guard it via geo
	cfg Config
	//packetlint:transient wiring to the shared clock, rebound only by New
	clock *sim.Clock
	// lines is the flat [set*ways+way] line array. The per-set slice-of-
	// slices layout this replaced cost every access an extra pointer load
	// and bounds check on the simulator's hottest path; setWays carves
	// set views out of the flat array with pure index math instead.
	lines []line
	//packetlint:transient cfg.Ways copy, derived at construction
	ways   int        // cfg.Ways, kept flat for the indexing hot path
	pstate []setState // only used when cfg.Partition != nil
	nextID uint64     // LRU stamp source
	stats  Stats
	geo    string // geometryKey(cfg), cached: Restore checks it per lease
	// Set-index math cached out of Config: Config.GlobalSet is a value
	// method, so calling it from cpuAccess copies the whole Config (and
	// re-derives the slice-hash width) on every simulated access — the
	// single hottest call site in the tree. globalSet below reads these
	// three words instead.
	//packetlint:transient derived set-index math, rebuilt by New from cfg
	setMask uint64 // SetsPerSlice - 1
	//packetlint:transient derived set-index math, rebuilt by New from cfg
	sliceBits int // log2(Slices)
	//packetlint:transient derived set-index math, rebuilt by New from cfg
	sps int // SetsPerSlice
}

// globalSet is Config.GlobalSet with the geometry constants precomputed
// and the slice-hash loop unrolled (at most 3 hash bits exist).
func (c *Cache) globalSet(addr uint64) int {
	set := int((addr >> 6) & c.setMask)
	sl := 0
	switch c.sliceBits {
	case 3:
		sl = int(bits.OnesCount64(addr&sliceMasks[2])&1) << 2
		fallthrough
	case 2:
		sl |= int(bits.OnesCount64(addr&sliceMasks[1])&1) << 1
		fallthrough
	case 1:
		sl |= int(bits.OnesCount64(addr&sliceMasks[0]) & 1)
	}
	return sl*c.sps + set
}

// setWays returns the ways of one global set as a view into the flat
// line array.
func (c *Cache) setWays(set int) []line {
	base := set * c.ways
	return c.lines[base : base+c.ways : base+c.ways]
}

// New builds a cache; it panics on an invalid config (configs are
// programmer-supplied, not user input).
func New(cfg Config, clock *sim.Clock) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	total := cfg.TotalSets()
	c := &Cache{
		cfg: cfg, clock: clock, ways: cfg.Ways, geo: geometryKey(cfg),
		setMask:   uint64(cfg.SetsPerSlice - 1),
		sliceBits: bits.TrailingZeros(uint(cfg.Slices)),
		sps:       cfg.SetsPerSlice,
	}
	c.lines = make([]line, total*cfg.Ways)
	if cfg.Partition != nil {
		c.pstate = make([]setState, total)
		for i := range c.pstate {
			c.pstate[i].quota = cfg.Partition.MinIOWays
		}
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (geometry and contents are untouched).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Read performs a CPU load of the line containing addr, returning whether
// it hit and its latency. The clock is NOT advanced: cores run in parallel,
// so the caller decides whose time the latency is charged to (the spy
// advances the clock around its probes; the driver core's accesses overlap
// with the spy and cost it nothing).
func (c *Cache) Read(addr uint64) (bool, uint64) {
	return c.cpuAccess(addr, false)
}

// Write performs a CPU store (write-allocate, write-back).
func (c *Cache) Write(addr uint64) (bool, uint64) {
	return c.cpuAccess(addr, true)
}

func (c *Cache) cpuAccess(addr uint64, store bool) (bool, uint64) {
	set := c.globalSet(addr)
	c.maybeAdapt(set)
	tag := addr >> 6
	ways := c.setWays(set)
	c.stats.CPUAccesses++
	q := 0
	if c.pstate != nil {
		// Defense: CPU lines live in ways [quota, Ways).
		q = c.pstate[set].quota
	}
	// One pass over the set: search for the tag (hit, early exit) while
	// tracking the CPU victim — first invalid way in [q:), else the LRU —
	// so a miss needs no second scan. Declaring a miss requires visiting
	// every way anyway, and misses are the common case under PRIME+PROBE.
	// Victim choice is identical to lruWay(ways[q:]) + q.
	inv, best, bestStamp := -1, q, ^uint64(0)
	for w := range ways {
		l := &ways[w]
		if l.tag == tag && l.valid {
			c.stats.CPUHits++
			l.stamp = c.touch()
			if store {
				l.dirty = true
			}
			return true, c.cfg.HitLatency
		}
		if w >= q && inv < 0 {
			if !l.valid {
				inv = w
			} else if l.stamp < bestStamp {
				best, bestStamp = w, l.stamp
			}
		}
	}
	c.stats.CPUMisses++
	c.stats.MemReads++
	w := best
	if inv >= 0 {
		w = inv
	}
	c.evict(set, w)
	ways[w] = line{tag: tag, valid: true, dirty: store, io: false, stamp: c.touch()}
	c.refreshHasIO(set)
	return false, c.cfg.MissLatency
}

// IOWrite performs a DMA write of the line containing addr. With DDIO the
// line is allocated directly into the LLC (dirty, I/O-owned); without DDIO
// it is written to memory and any cached copy is invalidated (coherence).
// DMA engines run in parallel with the cores, so the clock does not
// advance.
func (c *Cache) IOWrite(addr uint64) {
	set := c.globalSet(addr)
	c.maybeAdapt(set)
	tag := addr >> 6
	ways := c.setWays(set)
	c.stats.IOWrites++

	if !c.cfg.DDIO && c.cfg.Partition == nil {
		// Classic DMA: write to DRAM, invalidate stale cached copy.
		c.stats.MemWrites++
		c.stats.IOBypasses++
		if w := c.lookup(ways, tag); w >= 0 {
			ways[w].valid = false
			c.refreshHasIO(set)
		}
		return
	}

	if w := c.lookup(ways, tag); w >= 0 {
		// Update in place. Ownership is preserved: a DMA update of a line
		// a core already owns does not count against the DDIO way cap,
		// which limits allocations, not updates.
		c.stats.IOHits++
		ways[w].stamp = c.touch()
		ways[w].dirty = true
		c.refreshHasIO(set)
		return
	}

	w, ok := c.victimIO(set)
	if !ok {
		// Defense mode with no usable way in the I/O partition: the write
		// bypasses the cache rather than evict a CPU line.
		c.stats.MemWrites++
		c.stats.IOBypasses++
		return
	}
	switch {
	case !ways[w].valid:
		c.stats.IOAllocsInvalid++
	case ways[w].io:
		c.stats.IOAllocsEvictIO++
	default:
		c.stats.IOEvictedCPU++ // the leak: DMA displaced a CPU line
	}
	c.evict(set, w)
	ways[w] = line{tag: tag, valid: true, dirty: true, io: true, stamp: c.touch()}
	c.stats.IOAllocs++
	c.refreshHasIO(set)
}

// Flush removes the line containing addr from the cache (clflush),
// writing it back if dirty. No latency is charged; the attack in this
// reproduction never relies on flush timing.
func (c *Cache) Flush(addr uint64) {
	set := c.globalSet(addr)
	tag := addr >> 6
	ways := c.setWays(set)
	if w := c.lookup(ways, tag); w >= 0 {
		c.evict(set, w)
		ways[w].valid = false
		c.refreshHasIO(set)
	}
}

// Contains reports whether the line holding addr is cached. It is a
// simulator-side oracle used by tests and ground-truth collection, never by
// attack code.
func (c *Cache) Contains(addr uint64) bool {
	set := c.globalSet(addr)
	return c.lookup(c.setWays(set), addr>>6) >= 0
}

// IOLinesInSet counts valid I/O-owned lines in the global set (test oracle).
func (c *Cache) IOLinesInSet(set int) int {
	n := 0
	for _, l := range c.setWays(set) {
		if l.valid && l.io {
			n++
		}
	}
	return n
}

// QuotaOf returns the current I/O partition quota of a set, or the DDIO way
// cap when the defense is off.
func (c *Cache) QuotaOf(set int) int {
	if c.pstate != nil {
		return c.pstate[set].quota
	}
	return c.cfg.DDIOWays
}

func (c *Cache) touch() uint64 {
	c.nextID++
	return c.nextID
}

func (c *Cache) lookup(ways []line, tag uint64) int {
	for w := range ways {
		// Tag first: almost every way mismatches by tag, and checking the
		// uint64 before the bool keeps the common path to one comparison.
		if ways[w].tag == tag && ways[w].valid {
			return w
		}
	}
	return -1
}

// evict writes back the victim if dirty. The slot is left to be overwritten
// by the caller.
func (c *Cache) evict(set, w int) {
	l := &c.lines[set*c.ways+w]
	if l.valid && l.dirty {
		c.stats.MemWrites++
		c.stats.Writebacks++
	}
}

// victimIO picks the way an I/O allocation replaces; ok=false means the
// write must bypass the cache.
func (c *Cache) victimIO(set int) (int, bool) {
	ways := c.setWays(set)
	if c.pstate != nil {
		// Defense: I/O confined to ways [0, quota). The quota region is
		// reserved, so there is always a usable way.
		q := c.pstate[set].quota
		if q == 0 {
			return 0, false
		}
		return lruWay(ways[:q]), true
	}
	// Vulnerable DDIO: at most DDIOWays I/O lines per set; if the cap is
	// reached replace the LRU I/O line, otherwise take the global LRU
	// victim — which may well be a CPU (spy) line.
	ioCount := 0
	for _, l := range ways {
		if l.valid && l.io {
			ioCount++
		}
	}
	if ioCount >= c.cfg.DDIOWays {
		return lruIOWay(ways), true
	}
	return lruWay(ways), true
}

// lruWay returns the index of the least recently used way, preferring
// invalid ways.
func lruWay(ways []line) int {
	best, bestStamp := 0, ^uint64(0)
	for w := range ways {
		if !ways[w].valid {
			return w
		}
		if ways[w].stamp < bestStamp {
			best, bestStamp = w, ways[w].stamp
		}
	}
	return best
}

// lruIOWay returns the LRU way among valid I/O lines. The caller guarantees
// at least one exists.
func lruIOWay(ways []line) int {
	best, bestStamp := -1, ^uint64(0)
	for w := range ways {
		if ways[w].valid && ways[w].io && ways[w].stamp < bestStamp {
			best, bestStamp = w, ways[w].stamp
		}
	}
	if best < 0 {
		panic("cache: lruIOWay called with no IO lines")
	}
	return best
}

// refreshHasIO updates the occupancy flag after a content change,
// integrating elapsed occupancy first.
func (c *Cache) refreshHasIO(set int) {
	if c.pstate == nil {
		return
	}
	st := &c.pstate[set]
	c.integrateOccupancy(st)
	has := false
	for _, l := range c.setWays(set) {
		if l.valid && l.io {
			has = true
			break
		}
	}
	st.hasIO = has
}

func (c *Cache) integrateOccupancy(st *setState) {
	now := c.clock.Now()
	if st.hasIO && now > st.lastUpd {
		st.occupCycles += now - st.lastUpd
	}
	st.lastUpd = now
}

// maybeAdapt runs the §VII adaptation for the set if at least one period
// has elapsed since its last evaluation. Adaptation is evaluated lazily at
// access time (a hardware implementation walks all sets each period; lazy
// evaluation is equivalent for sets that are actually being touched and
// free for idle sets). When several periods elapsed between touches the
// thresholds scale with the elapsed time.
func (c *Cache) maybeAdapt(set int) {
	if c.pstate == nil {
		return
	}
	st := &c.pstate[set]
	p := c.cfg.Partition
	now := c.clock.Now()
	elapsed := now - st.lastAdapt
	if elapsed < p.Period {
		return
	}
	c.integrateOccupancy(st)
	periods := elapsed / p.Period
	switch {
	case st.occupCycles > p.THigh*periods && st.quota < p.MaxIOWays:
		st.quota++
		c.invalidateWay(set, st.quota-1) // way joins the I/O partition
	case st.occupCycles < p.TLow*periods && st.quota > p.MinIOWays:
		c.invalidateWay(set, st.quota-1) // way leaves the I/O partition
		st.quota--
	}
	st.occupCycles = 0
	st.lastAdapt = now
}

// invalidateWay evicts whatever occupies the way that is switching
// partitions, with writeback if dirty (§VII: "we invalidate the cache
// blocks that are affected and perform any necessary writebacks").
func (c *Cache) invalidateWay(set, w int) {
	l := &c.lines[set*c.ways+w]
	if !l.valid {
		return
	}
	c.evict(set, w)
	l.valid = false
	c.stats.BoundaryInvalidations++
	c.refreshHasIO(set)
}

// String summarizes the cache geometry.
func (c *Cache) String() string {
	mode := "no-DDIO"
	if c.cfg.Partition != nil {
		mode = "adaptive-partition"
	} else if c.cfg.DDIO {
		mode = fmt.Sprintf("DDIO(%d-way)", c.cfg.DDIOWays)
	}
	return fmt.Sprintf("LLC %d KB: %d slices x %d sets x %d ways, %s",
		c.cfg.SizeBytes()/1024, c.cfg.Slices, c.cfg.SetsPerSlice, c.cfg.Ways, mode)
}
