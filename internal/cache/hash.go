package cache

import "math/bits"

// sliceMasks are the XOR masks of the complex slice-hash. Each mask selects
// a subset of physical-address bits (of the line address, i.e. addr >> 6);
// the parity of the selected bits yields one slice-index bit. The structure
// mirrors the functions reverse-engineered for Sandy Bridge / Ivy Bridge /
// Haswell parts (Maurice et al., Inci et al.); the exact constants are not
// load-bearing, only that the hash spreads page-aligned addresses across
// slices and is initially unknown to the attacker.
var sliceMasks = [3]uint64{
	0x1B5F575440, // h0
	0x2EB5FAA880, // h1
	0x3CCCC93100, // h2
}

// SliceOf returns the slice index for a physical address under an
// nSlices-slice hash (nSlices must be a power of two, at most 8).
func SliceOf(addr uint64, nSlices int) int {
	if nSlices == 1 {
		return 0
	}
	s := 0
	n := bits.TrailingZeros(uint(nSlices))
	for b := 0; b < n; b++ {
		s |= int(bits.OnesCount64(addr&sliceMasks[b])&1) << b
	}
	return s
}

// Index returns (slice, set) for a physical address under the config's
// geometry: the set index comes from the bits just above the 6 line-offset
// bits (Fig 2), the slice from the XOR hash of the full line address.
func (c Config) Index(addr uint64) (slice, set int) {
	set = int((addr >> 6) & uint64(c.SetsPerSlice-1))
	slice = SliceOf(addr, c.Slices)
	return slice, set
}

// GlobalSet flattens (slice, set) into a single set id in
// [0, Slices*SetsPerSlice).
func (c Config) GlobalSet(addr uint64) int {
	slice, set := c.Index(addr)
	return slice*c.SetsPerSlice + set
}

// AlignedGlobalSets enumerates, in canonical order, every global set a
// page-aligned address can map to: for each slice, the set indices whose
// low 6 bits are zero. The canonical index (position in this slice) is the
// "cache block number" axis of the paper's Figs 5-7.
func (c Config) AlignedGlobalSets() []int {
	perSlice := c.SetsPerSlice / 64
	if perSlice == 0 {
		perSlice = 1
	}
	out := make([]int, 0, perSlice*c.Slices)
	for slice := 0; slice < c.Slices; slice++ {
		for k := 0; k < perSlice; k++ {
			out = append(out, slice*c.SetsPerSlice+k*64)
		}
	}
	return out
}

// AlignedIndexOf returns the canonical index of a global set among the
// page-aligned sets, or -1 if the set is not page-aligned-reachable.
func (c Config) AlignedIndexOf(globalSet int) int {
	perSlice := c.SetsPerSlice / 64
	if perSlice == 0 {
		perSlice = 1
	}
	slice := globalSet / c.SetsPerSlice
	set := globalSet % c.SetsPerSlice
	if set%64 != 0 {
		return -1
	}
	return slice*perSlice + set/64
}

// AlignedSetCount returns the number of distinct global sets that
// page-aligned addresses can map to. With a 4 KB page, the low 6 set-index
// bits of a page-aligned address are zero, leaving SetsPerSlice/64 indices
// per slice (paper §III-B: 32 per slice x 8 slices = 256).
func (c Config) AlignedSetCount() int {
	perSlice := c.SetsPerSlice / 64
	if perSlice == 0 {
		perSlice = 1
	}
	return perSlice * c.Slices
}
