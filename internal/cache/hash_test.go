package cache

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestSliceUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, 8)
	n := 80000
	for i := 0; i < n; i++ {
		addr := uint64(rng.Int63()) &^ 63
		counts[SliceOf(addr, 8)]++
	}
	want := n / 8
	for s, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("slice %d count %d far from uniform %d", s, c, want)
		}
	}
}

func TestSliceUniformityOverPages(t *testing.T) {
	// Page-aligned addresses must also spread across slices; this is what
	// gives the paper its 256 candidate sets rather than 32.
	counts := make([]int, 8)
	for pfn := uint64(0); pfn < 4096; pfn++ {
		counts[SliceOf(pfn*4096, 8)]++
	}
	for s, c := range counts {
		if c < 300 || c > 800 {
			t.Errorf("slice %d gets %d of 4096 pages; hash degenerate", s, c)
		}
	}
}

func TestSliceOfSingleSlice(t *testing.T) {
	if SliceOf(0xdeadbeef, 1) != 0 {
		t.Error("single-slice hash must return 0")
	}
}

func TestIndexBits(t *testing.T) {
	cfg := PaperConfig()
	// Set index is bits [6,17) for 2048 sets.
	addr := uint64(0x3FF) << 6 // set 0x3FF
	_, set := cfg.Index(addr)
	if set != 0x3FF {
		t.Errorf("set %#x want 0x3FF", set)
	}
	// Line-offset bits must not affect the set.
	_, set2 := cfg.Index(addr | 0x3F)
	if set2 != set {
		t.Error("offset bits changed the set index")
	}
}

func TestAlignedSetCount(t *testing.T) {
	cfg := PaperConfig()
	if got := cfg.AlignedSetCount(); got != 256 {
		t.Errorf("aligned sets %d want 256 (paper III-B)", got)
	}
	// Every page-aligned address must land in one of the aligned groups:
	// set index divisible by 64.
	for pfn := uint64(0); pfn < 2000; pfn++ {
		_, set := cfg.Index(pfn * 4096)
		if set%64 != 0 {
			t.Fatalf("page-aligned address got set %d (not 64-aligned)", set)
		}
	}
}

func TestGlobalSetRange(t *testing.T) {
	cfg := PaperConfig()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		gs := cfg.GlobalSet(uint64(rng.Int63()))
		if gs < 0 || gs >= cfg.TotalSets() {
			t.Fatalf("global set %d out of range", gs)
		}
	}
}

// The cache's cached fast-path index must agree with the public Config
// method for every geometry shape the slice hash supports.
func TestCachedGlobalSetMatchesConfig(t *testing.T) {
	for _, slices := range []int{1, 2, 4, 8} {
		cfg := ScaledConfig(slices, 256, 8)
		c := New(cfg, sim.NewClock())
		rng := rand.New(rand.NewSource(int64(slices)))
		for i := 0; i < 10000; i++ {
			addr := uint64(rng.Int63())
			if got, want := c.globalSet(addr), cfg.GlobalSet(addr); got != want {
				t.Fatalf("slices=%d addr=%#x: cached globalSet %d, Config.GlobalSet %d",
					slices, addr, got, want)
			}
		}
	}
}

func TestAddrsInGlobalSetOracle(t *testing.T) {
	cfg := PaperConfig()
	for _, gs := range []int{0, 165*64 + 3, cfg.TotalSets() - 1} {
		addrs := AddrsInGlobalSet(cfg, gs, 25, 1)
		if len(addrs) != 25 {
			t.Fatalf("wanted 25 addrs got %d", len(addrs))
		}
		seen := map[uint64]bool{}
		for _, a := range addrs {
			if cfg.GlobalSet(a) != gs {
				t.Fatalf("oracle addr %#x maps to set %d want %d", a, cfg.GlobalSet(a), gs)
			}
			if seen[a] {
				t.Fatal("duplicate oracle address")
			}
			seen[a] = true
		}
	}
}
