package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func partitionedConfig() Config {
	cfg := ScaledConfig(1, 64, 8)
	cfg.Partition = DefaultPartitionConfig()
	return cfg
}

func TestPartitionIONeverEvictsCPU(t *testing.T) {
	// The defense's core guarantee (§VII): no CPU line is ever displaced
	// by an I/O allocation, under any traffic mix.
	f := func(seed int64) bool {
		cfg := partitionedConfig()
		c, clock := newTestCache(cfg)
		rng := sim.NewRNG(seed)
		for i := 0; i < 5000; i++ {
			addr := uint64(rng.Intn(1 << 19))
			if rng.Bernoulli(0.4) {
				c.IOWrite(addr)
			} else {
				c.Read(addr)
			}
			clock.Advance(uint64(rng.Intn(100)))
		}
		return c.Stats().IOEvictedCPU == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPartitionQuotaGrowsUnderIO(t *testing.T) {
	cfg := partitionedConfig()
	c, clock := newTestCache(cfg)
	set := 3
	addrs := AddrsInGlobalSet(cfg, set, 6, 1)
	if c.QuotaOf(set) != 1 {
		t.Fatalf("initial quota %d want MinIOWays=1", c.QuotaOf(set))
	}
	// CPU lines fill the CPU partition so that quota growth has something
	// to invalidate at the boundary.
	for _, a := range AddrsInGlobalSet(cfg, set, cfg.Ways, 1<<30) {
		c.Read(a)
	}
	// Sustained I/O traffic keeps occupancy at ~100% of each period, which
	// must grow the quota toward MaxIOWays.
	for i := 0; i < 100; i++ {
		for _, a := range addrs {
			c.IOWrite(a)
		}
		clock.Advance(2000)
	}
	if q := c.QuotaOf(set); q != cfg.Partition.MaxIOWays {
		t.Errorf("quota after sustained IO = %d want %d", q, cfg.Partition.MaxIOWays)
	}
	if c.Stats().BoundaryInvalidations == 0 {
		t.Error("quota growth must invalidate boundary ways")
	}
}

func TestPartitionQuotaShrinksWhenIdle(t *testing.T) {
	cfg := partitionedConfig()
	c, clock := newTestCache(cfg)
	set := 3
	addrs := AddrsInGlobalSet(cfg, set, 6, 1)
	for i := 0; i < 100; i++ {
		for _, a := range addrs {
			c.IOWrite(a)
		}
		clock.Advance(2000)
	}
	if c.QuotaOf(set) <= 1 {
		t.Fatal("setup: quota should have grown")
	}
	// Now the set sees only CPU traffic; I/O lines age out of relevance
	// and occupancy integration stops once they are gone. Flush the I/O
	// lines to end occupancy, then let periods pass with CPU touches.
	for _, a := range addrs {
		c.Flush(a)
	}
	cpuAddrs := AddrsInGlobalSet(cfg, set, 4, 1<<30)
	for i := 0; i < 100; i++ {
		for _, a := range cpuAddrs {
			c.Read(a)
		}
		clock.Advance(20000)
	}
	if q := c.QuotaOf(set); q != cfg.Partition.MinIOWays {
		t.Errorf("quota after idle = %d want %d", q, cfg.Partition.MinIOWays)
	}
}

func TestPartitionIOConfinedToQuota(t *testing.T) {
	cfg := partitionedConfig()
	c, clock := newTestCache(cfg)
	set := 11
	addrs := AddrsInGlobalSet(cfg, set, 12, 1)
	for i := 0; i < 200; i++ {
		for _, a := range addrs {
			c.IOWrite(a)
		}
		clock.Advance(500)
		if n := c.IOLinesInSet(set); n > cfg.Partition.MaxIOWays {
			t.Fatalf("IO lines %d exceed MaxIOWays %d", n, cfg.Partition.MaxIOWays)
		}
	}
}

func TestPartitionCPUCapacityReduced(t *testing.T) {
	// CPU partition has Ways-quota ways; with quota=1 a working set of
	// Ways-1 CPU lines must fully fit and Ways lines must thrash.
	cfg := partitionedConfig()
	c, _ := newTestCache(cfg)
	set := 20
	addrs := AddrsInGlobalSet(cfg, set, cfg.Ways, 1)
	fit := addrs[:cfg.Ways-1]
	for _, a := range fit {
		c.Read(a)
	}
	for _, a := range fit {
		if hit, _ := c.Read(a); !hit {
			t.Error("working set of Ways-1 lines must fit in CPU partition")
		}
	}
}

func TestPartitionSpyCannotSeePackets(t *testing.T) {
	// End-to-end defense check mirroring TestPrimeProbeDetectsPacket: with
	// partitioning on, the spy's probe latency is identical before and
	// after DMA traffic.
	cfg := partitionedConfig()
	c, _ := newTestCache(cfg)
	set := 42
	quota := c.QuotaOf(set)
	spyLines := cfg.Ways - quota
	addrs := AddrsInGlobalSet(cfg, set, cfg.Ways+4, 1)
	probeSet := addrs[:spyLines]
	probe := func() (lat uint64) {
		for _, a := range probeSet {
			_, l := c.Read(a)
			lat += l
		}
		return lat
	}
	probe() // prime
	idle := probe()
	for _, a := range addrs[spyLines:] {
		c.IOWrite(a)
	}
	busy := probe()
	if busy != idle {
		t.Errorf("defense leak: probe latency changed %d -> %d", idle, busy)
	}
}

func TestPartitionBoundaryWritebacks(t *testing.T) {
	cfg := partitionedConfig()
	c, clock := newTestCache(cfg)
	set := 3
	addrs := AddrsInGlobalSet(cfg, set, 8, 1)
	// Dirty CPU lines fill the CPU partition, then sustained I/O grows the
	// quota; the boundary way holds a dirty CPU line which must be
	// invalidated (and written back).
	for _, a := range AddrsInGlobalSet(cfg, set, cfg.Ways, 1<<30) {
		c.Write(a)
	}
	for i := 0; i < 60; i++ {
		for _, a := range addrs[:4] {
			c.IOWrite(a)
		}
		clock.Advance(3000)
	}
	before := c.Stats().Writebacks
	// Let it shrink.
	for _, a := range addrs {
		c.Flush(a)
	}
	for i := 0; i < 60; i++ {
		c.Read(addrs[7])
		clock.Advance(20000)
	}
	_ = before // shrink may or may not hit dirty lines after flush; the
	// real assertion is that invalidations happened and nothing panicked.
	if c.Stats().BoundaryInvalidations == 0 {
		t.Error("no boundary invalidations recorded")
	}
}
