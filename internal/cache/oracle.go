package cache

// AddrsInGlobalSet enumerates n distinct line addresses that map to the
// given global set, scanning tags upward from startTag. It is a
// simulator-side oracle used by tests and by ground-truth collection; the
// attack code in internal/probe builds its eviction sets through timing
// measurements instead, as the real attack must.
func AddrsInGlobalSet(cfg Config, globalSet, n int, startTag uint64) []uint64 {
	out := make([]uint64, 0, n)
	wantSlice := globalSet / cfg.SetsPerSlice
	wantSet := globalSet % cfg.SetsPerSlice
	// The set index is addr bits [6, 6+log2(SetsPerSlice)); fix those and
	// scan the tag bits above until the slice hash cooperates.
	for tag := startTag; len(out) < n; tag++ {
		addr := tag<<(6+log2(cfg.SetsPerSlice)) | uint64(wantSet)<<6
		if SliceOf(addr, cfg.Slices) == wantSlice {
			out = append(out, addr)
		}
	}
	return out
}

func log2(v int) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
