package cache

import (
	"testing"

	"repro/internal/sim"
)

// The cache lookup is the innermost operation of the whole simulator —
// every spy load, every DMA write, every noise access lands here. These
// benchmarks pin the per-access cost of the flattened line array (one
// slice, index math per set) that replaced the [][]line set-of-slices
// layout, and the snapshot/restore cost the warm-start clone path pays
// per trial.

// benchCache is the paper LLC geometry driven by a deterministic access
// stream wide enough to miss the covered sets regularly.
func benchCache(b *testing.B) (*Cache, []uint64) {
	b.Helper()
	c := New(PaperConfig(), sim.NewClock())
	rng := sim.Derive(1, "bench-cache")
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Int63()) &^ 63 % (1 << 28)
	}
	return c, addrs
}

func BenchmarkCacheRead(b *testing.B) {
	c, addrs := benchCache(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(addrs[i%len(addrs)])
	}
}

func BenchmarkCacheIOWrite(b *testing.B) {
	c, addrs := benchCache(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.IOWrite(addrs[i%len(addrs)])
	}
}

// BenchmarkCacheSnapshotRestore measures one warm-start machine clone of
// the cache state: with the flat line array both directions are a single
// slice copy instead of a per-set walk.
func BenchmarkCacheSnapshotRestore(b *testing.B) {
	c, addrs := benchCache(b)
	for _, a := range addrs {
		c.Read(a)
	}
	s := c.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Restore(s)
		s = c.Snapshot()
	}
}
