package sim

import "container/heap"

// Event is a scheduled callback in the discrete-event queue. Events with
// equal times fire in insertion order, which keeps the simulation
// deterministic regardless of heap internals.
type Event struct {
	At   uint64 // cycle at which the event fires
	Run  func()
	seq  uint64
	heap int
}

// Scheduler is a minimal deterministic discrete-event scheduler. The main
// attack loop does not need it (the spy drives time directly), but the NIC
// interrupt path and the performance-evaluation workloads do.
type Scheduler struct {
	clock *Clock
	queue eventHeap
	next  uint64
}

// NewScheduler returns a scheduler bound to the given clock.
func NewScheduler(clock *Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// At schedules fn to run at absolute cycle t. Scheduling in the past is a
// bug; it panics.
func (s *Scheduler) At(t uint64, fn func()) {
	if t < s.clock.Now() {
		panic("sim: scheduling event in the past")
	}
	ev := &Event{At: t, Run: fn, seq: s.next}
	s.next++
	heap.Push(&s.queue, ev)
}

// After schedules fn to run d cycles from now.
func (s *Scheduler) After(d uint64, fn func()) {
	s.At(s.clock.Now()+d, fn)
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Step runs the earliest event, advancing the clock to its time. It returns
// false if the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*Event)
	s.clock.AdvanceTo(ev.At)
	ev.Run()
	return true
}

// RunUntil executes events with At <= t, then advances the clock to t.
func (s *Scheduler) RunUntil(t uint64) {
	for len(s.queue) > 0 && s.queue[0].At <= t {
		s.Step()
	}
	if t > s.clock.Now() {
		s.clock.AdvanceTo(t)
	}
}

// Drain runs events until the queue is empty or the step limit is reached;
// it returns the number of events executed. The limit guards against
// self-rescheduling loops in tests.
func (s *Scheduler) Drain(limit int) int {
	n := 0
	for n < limit && s.Step() {
		n++
	}
	return n
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap = i
	h[j].heap = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.heap = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
