package sim

import "math/rand"

// RNG wraps math/rand with a convenience constructor so that every
// experiment takes a single root seed and derives independent streams for
// its components (page allocator, noise process, traffic jitter, ...).
// Derived streams are decorrelated by splitmix-style seed scrambling.
//
// An RNG's position in its stream is observable and restorable: the
// underlying source counts its draws, so a stream state is just
// (seed, draws) and Restore replays the source to the recorded position.
// This is what makes honest machine snapshotting possible — a restored
// world continues with exactly the random decisions the original would
// have made.
type RNG struct {
	//packetlint:transient stateless view over src; Restore repositions src and Rand follows
	*rand.Rand
	src *countedSource
}

// countedSource wraps the stock math/rand source, counting state
// advances. Both Int63 and Uint64 advance the generator by exactly one
// step, so replaying N draws of either reproduces the state after any
// interleaving of N calls.
type countedSource struct {
	src   rand.Source64
	seedv int64
	draws uint64
}

func (s *countedSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countedSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countedSource) Seed(seed int64) {
	s.seedv = seed
	s.draws = 0
	s.src.Seed(seed)
}

// RNGState is a snapshot of an RNG's stream position.
type RNGState struct {
	Seed  int64
	Draws uint64
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	src := &countedSource{src: rand.NewSource(seed).(rand.Source64), seedv: seed}
	return &RNG{Rand: rand.New(src), src: src}
}

// Snapshot captures the RNG's stream position.
func (r *RNG) Snapshot() RNGState {
	return RNGState{Seed: r.src.seedv, Draws: r.src.draws}
}

// Restore rewinds (or fast-forwards) the RNG to a previously captured
// position, in place and without allocating. When the stream already sits
// on the right seed at or before the target position, only the delta is
// replayed — restoring a machine whose long offline phase burned millions
// of draws costs O(position difference), not O(total history). A seed
// mismatch, or a position past the target, falls back to reseeding and
// replaying from the start; either way the cost per replayed draw is one
// cheap generator step.
func (r *RNG) Restore(st RNGState) {
	if r.src.seedv != st.Seed || r.src.draws > st.Draws {
		r.src.Seed(st.Seed)
	}
	for r.src.draws < st.Draws {
		r.src.src.Uint64()
		r.src.draws++
	}
}

// Reseed resets the RNG, in place, to the start of the stream for seed —
// equivalent to replacing it with NewRNG(seed) but allocation-free. The
// online-phase decorrelation hooks (testbed.ReseedOnline) run once per
// warm-started trial, so this sits on the rig-lease hot path.
func (r *RNG) Reseed(seed int64) {
	r.src.Seed(seed)
}

// DeriveSeed maps a root seed plus a stream label to a new seed that is
// decorrelated from the root and from every other label. It is the seed-
// space counterpart of Derive, used where a component needs an int64 seed
// (e.g. the experiment runner deriving per-trial seeds) rather than an
// RNG.
func DeriveSeed(root int64, label string) int64 {
	return finalizeSeed(mixLabel(uint64(root), label))
}

// DeriveSeedParts is DeriveSeed(root, a+b) without materializing the
// concatenated label. Call sites that derive per-rig online seeds from a
// constant prefix plus a rig label use it to keep the warm-trial lease
// path allocation-free.
func DeriveSeedParts(root int64, a, b string) int64 {
	return finalizeSeed(mixLabel(mixLabel(uint64(root), a), b))
}

// mixLabel folds a label into the running seed hash (FNV-style).
func mixLabel(h uint64, label string) uint64 {
	for _, c := range label {
		h ^= uint64(c)
		h *= 0x100000001b3 // FNV prime
	}
	return h
}

// finalizeSeed is the splitmix64 finalizer for avalanche.
func finalizeSeed(h uint64) int64 {
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// Derive returns a new independent RNG derived from this RNG's seed space
// and the given stream label. Two streams with different labels are
// decorrelated even though they share a root seed.
func Derive(root int64, label string) *RNG {
	return NewRNG(DeriveSeed(root, label))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Jitter returns v multiplied by a uniform factor in [1-frac, 1+frac].
func (r *RNG) Jitter(v float64, frac float64) float64 {
	return v * (1 + frac*(2*r.Float64()-1))
}
