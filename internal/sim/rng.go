package sim

import "math/rand"

// RNG wraps math/rand with a convenience constructor so that every
// experiment takes a single root seed and derives independent streams for
// its components (page allocator, noise process, traffic jitter, ...).
// Derived streams are decorrelated by splitmix-style seed scrambling.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed))}
}

// DeriveSeed maps a root seed plus a stream label to a new seed that is
// decorrelated from the root and from every other label. It is the seed-
// space counterpart of Derive, used where a component needs an int64 seed
// (e.g. the experiment runner deriving per-trial seeds) rather than an
// RNG.
func DeriveSeed(root int64, label string) int64 {
	h := uint64(root)
	for _, c := range label {
		h ^= uint64(c)
		h *= 0x100000001b3 // FNV prime
	}
	// splitmix64 finalizer for avalanche.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// Derive returns a new independent RNG derived from this RNG's seed space
// and the given stream label. Two streams with different labels are
// decorrelated even though they share a root seed.
func Derive(root int64, label string) *RNG {
	return NewRNG(DeriveSeed(root, label))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Jitter returns v multiplied by a uniform factor in [1-frac, 1+frac].
func (r *RNG) Jitter(v float64, frac float64) float64 {
	return v * (1 + frac*(2*r.Float64()-1))
}
