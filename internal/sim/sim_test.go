package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("clock must start at 0")
	}
	c.Advance(100)
	c.AdvanceTo(250)
	if c.Now() != 250 {
		t.Errorf("now=%d want 250", c.Now())
	}
}

func TestClockRewindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo into the past must panic")
		}
	}()
	c := NewClock()
	c.Advance(10)
	c.AdvanceTo(5)
}

func TestRateConversions(t *testing.T) {
	// 0.2 Mpps at 3.3 GHz is 16,500 cycles per packet (paper Table I rate).
	if got := CyclesPerSecond(200_000); got != 16_500 {
		t.Errorf("0.2Mpps period = %d want 16500", got)
	}
	if got := CyclesPerSecond(8000); got != 412_500 {
		t.Errorf("8k probes/s period = %d want 412500", got)
	}
	if CyclesPerSecond(0) != 0 {
		t.Error("zero rate must give zero period")
	}
	if Seconds(Frequency) != 1.0 {
		t.Error("Frequency cycles should be 1 second")
	}
	if Cycles(0.5) != Frequency/2 {
		t.Error("0.5s should be half of Frequency")
	}
}

func TestDeriveDecorrelates(t *testing.T) {
	a := Derive(1, "alloc")
	b := Derive(1, "noise")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 10 {
		t.Errorf("streams look correlated: %d/100 collisions", same)
	}
	// Same label, same seed must reproduce.
	c := Derive(1, "alloc")
	d := Derive(1, "alloc")
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("same (seed,label) must reproduce")
		}
	}
}

// TestDeriveSeedTrialStreamsDecorrelated checks the property the
// experiment runner relies on: RNG streams seeded from per-trial labels
// of the same experiment are pairwise decorrelated.
func TestDeriveSeedTrialStreamsDecorrelated(t *testing.T) {
	const trials, draws = 8, 200
	streams := make([][]float64, trials)
	for ti := range streams {
		r := NewRNG(DeriveSeed(1, "fig5/trial"+string(rune('0'+ti))))
		xs := make([]float64, draws)
		for i := range xs {
			xs[i] = r.Float64()
		}
		streams[ti] = xs
	}
	for a := 0; a < trials; a++ {
		for b := a + 1; b < trials; b++ {
			// Pearson correlation of uniform draws; independent streams
			// stay near 0 (|r| < 0.2 is generous at n=200).
			var sa, sb, saa, sbb, sab float64
			for i := 0; i < draws; i++ {
				x, y := streams[a][i], streams[b][i]
				sa += x
				sb += y
				saa += x * x
				sbb += y * y
				sab += x * y
			}
			n := float64(draws)
			cov := sab/n - sa/n*sb/n
			va := saa/n - sa/n*sa/n
			vb := sbb/n - sb/n*sb/n
			if r := cov / math.Sqrt(va*vb); math.Abs(r) > 0.2 {
				t.Errorf("trials %d,%d correlated: r=%.3f", a, b, r)
			}
		}
	}
	// DeriveSeed must reproduce and must feed Derive.
	if DeriveSeed(1, "x") != DeriveSeed(1, "x") {
		t.Error("DeriveSeed must be deterministic")
	}
	if Derive(1, "x").Int63() != NewRNG(DeriveSeed(1, "x")).Int63() {
		t.Error("Derive must be NewRNG over DeriveSeed")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(3)
	if r.Bernoulli(0) {
		t.Error("p=0 must be false")
	}
	if !r.Bernoulli(1) {
		t.Error("p=1 must be true")
	}
}

func TestSchedulerOrdering(t *testing.T) {
	clock := NewClock()
	s := NewScheduler(clock)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	// Same-time events fire in insertion order.
	s.At(20, func() { order = append(order, 4) })
	s.Drain(100)
	want := []int{1, 2, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %d events want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v want %v", order, want)
		}
	}
	if clock.Now() != 30 {
		t.Errorf("clock=%d want 30", clock.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	clock := NewClock()
	s := NewScheduler(clock)
	ran := 0
	s.At(5, func() { ran++ })
	s.At(15, func() { ran++ })
	s.RunUntil(10)
	if ran != 1 {
		t.Errorf("ran=%d want 1", ran)
	}
	if clock.Now() != 10 {
		t.Errorf("clock=%d want 10", clock.Now())
	}
	s.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran=%d want 2", ran)
	}
}

func TestSchedulerSelfRescheduleLimit(t *testing.T) {
	clock := NewClock()
	s := NewScheduler(clock)
	var tick func()
	tick = func() { s.After(10, tick) }
	s.After(0, tick)
	n := s.Drain(50)
	if n != 50 {
		t.Errorf("drain should stop at limit, ran %d", n)
	}
}

func TestSchedulerHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		clock := NewClock()
		s := NewScheduler(clock)
		var fired []uint64
		for _, tt := range times {
			at := uint64(tt)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Drain(len(times) + 1)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
