package sim

import (
	"testing"
	"testing/quick"
)

// TestRNGSnapshotReplay: a restored RNG must reproduce the exact draw
// sequence the original produced after the snapshot point, across every
// draw kind the simulation uses (the kinds consume source steps at
// different rates, so this also guards the source-level counting).
func TestRNGSnapshotReplay(t *testing.T) {
	r := NewRNG(42)
	// Burn a mixed prefix.
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			r.Intn(1000)
		case 1:
			r.Float64()
		case 2:
			r.ExpFloat64()
		case 3:
			r.Int63()
		case 4:
			r.Bernoulli(0.3)
		}
	}
	st := r.Snapshot()
	var want []float64
	for i := 0; i < 200; i++ {
		want = append(want, r.Float64(), float64(r.Intn(1<<30)), r.ExpFloat64())
	}
	r.Restore(st)
	for i := 0; i < 200; i++ {
		got := []float64{r.Float64(), float64(r.Intn(1 << 30)), r.ExpFloat64()}
		for k, g := range got {
			if g != want[i*3+k] {
				t.Fatalf("draw %d/%d diverged after restore: %v != %v", i, k, g, want[i*3+k])
			}
		}
	}
}

// TestRNGSnapshotIntoFreshRNG: restoring into a different RNG instance
// (the machine-clone path) behaves identically to restoring in place.
func TestRNGSnapshotIntoFreshRNG(t *testing.T) {
	check := func(seed int64, burn uint16) bool {
		a := NewRNG(seed)
		for i := 0; i < int(burn); i++ {
			a.Intn(10)
		}
		st := a.Snapshot()
		b := NewRNG(0) // unrelated stream
		b.Restore(st)
		for i := 0; i < 32; i++ {
			if a.Int63() != b.Int63() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRNGSnapshotOfDerivedStream: Derive'd streams snapshot and restore
// like root streams.
func TestRNGSnapshotOfDerivedStream(t *testing.T) {
	r := Derive(7, "noise")
	r.Float64()
	r.Float64()
	st := r.Snapshot()
	want := r.Int63()
	r.Restore(st)
	if got := r.Int63(); got != want {
		t.Fatalf("derived stream diverged: %d != %d", got, want)
	}
	if st.Draws != 2 {
		t.Fatalf("draw count = %d want 2", st.Draws)
	}
}

// TestRNGDeltaRestoreMatchesScratch: the property behind the O(Δ)
// fast-forward. Restoring a stream that already sits at or before the
// target position replays only the delta; the result must be draw-for-draw
// identical to restoring the same state into a completely fresh RNG (which
// replays from the seed). Covers the delta path, the overshoot-rewind
// path (current position past the target), and the seed-mismatch path.
func TestRNGDeltaRestoreMatchesScratch(t *testing.T) {
	check := func(seed int64, burn, extra uint8) bool {
		orig := NewRNG(seed)
		for i := 0; i < int(burn); i++ {
			orig.Int63()
		}
		st := orig.Snapshot()

		// Delta path: same seed, position behind the target.
		delta := NewRNG(seed)
		for i := 0; i < int(burn)/2; i++ {
			delta.Int63()
		}
		// Overshoot path: same seed, position past the target.
		over := NewRNG(seed)
		for i := 0; i < int(burn)+int(extra)+1; i++ {
			over.Int63()
		}
		// Mismatch path: different seed entirely.
		other := NewRNG(seed + 1)
		other.Int63()

		scratch := NewRNG(0)
		for _, r := range []*RNG{delta, over, other, scratch} {
			r.Restore(st)
			if got := r.Snapshot(); got != st {
				t.Fatalf("restored position %+v want %+v", got, st)
			}
		}
		for i := 0; i < 64; i++ {
			want := scratch.Int63()
			if delta.Int63() != want || over.Int63() != want || other.Int63() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRNGReseedMatchesNew: in-place Reseed is NewRNG by another name.
func TestRNGReseedMatchesNew(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 57; i++ {
		r.Float64()
	}
	r.Reseed(99)
	fresh := NewRNG(99)
	for i := 0; i < 32; i++ {
		if r.Int63() != fresh.Int63() {
			t.Fatal("reseeded stream diverged from fresh RNG")
		}
	}
}

// TestDeriveSeedParts: the two-part derivation must be byte-equivalent to
// deriving with the concatenated label — call sites use it to avoid the
// concatenation alloc, not to change the seed space.
func TestDeriveSeedParts(t *testing.T) {
	check := func(root int64, a, b string) bool {
		return DeriveSeedParts(root, a, b) == DeriveSeed(root, a+b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestClockSnapshotRestore: Restore may rewind, unlike AdvanceTo.
func TestClockSnapshotRestore(t *testing.T) {
	c := NewClock()
	c.Advance(1000)
	st := c.Snapshot()
	c.Advance(500)
	c.Restore(st)
	if c.Now() != 1000 {
		t.Fatalf("restored clock at %d want 1000", c.Now())
	}
	// A restored clock must accept normal advancement again.
	c.AdvanceTo(1200)
	if c.Now() != 1200 {
		t.Fatalf("clock at %d want 1200", c.Now())
	}
}
