// Package sim provides the deterministic simulation substrate for the
// Packet Chasing reproduction: a global cycle clock standing in for the
// processor's time-stamp counter, seeded random-number fan-out, and a small
// discrete-event scheduler used by the NIC and performance models.
//
// The paper's attack measures everything in CPU cycles (rdtsc). Real cycle
// timing is unobtainable from Go — garbage collection and scheduler jitter
// swamp the ~100-cycle signal — so every component in this reproduction
// charges its latency to a shared simulated clock instead. The attack code
// reads the same kind of quantity it would read on hardware: elapsed cycles
// around a memory access.
package sim

import "fmt"

// Frequency is the simulated core frequency. The paper's Xeon E5-2660 and
// its gem5 baseline (Table II) both run at 3.3 GHz equivalents; we adopt
// 3.3 GHz so that cycle<->second conversions match the paper's arithmetic
// (e.g. a 0.2 Mpps packet stream is one packet per 16,500 cycles).
const Frequency = 3_300_000_000 // cycles per second

// Clock is the global simulated cycle counter. All components that consume
// time (cache accesses, DMA transfers, spy idle loops, driver processing)
// advance it explicitly. A Clock is not safe for concurrent use; the
// simulation core is single-goroutine by design to stay deterministic.
type Clock struct {
	now uint64
}

// NewClock returns a clock at cycle zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current cycle.
func (c *Clock) Now() uint64 { return c.now }

// Advance moves the clock forward by d cycles.
func (c *Clock) Advance(d uint64) { c.now += d }

// AdvanceTo moves the clock forward to cycle t. It panics if t is in the
// past: components must never rewind time, and a panic here has always
// indicated an event-ordering bug.
func (c *Clock) AdvanceTo(t uint64) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock rewind from %d to %d", c.now, t))
	}
	c.now = t
}

// Snapshot captures the current cycle for later Restore.
func (c *Clock) Snapshot() uint64 { return c.now }

// Restore sets the clock to a previously captured cycle. Unlike AdvanceTo
// it may rewind: restoring a machine snapshot legitimately moves time
// backwards, and the surrounding components are restored with it so no
// event-ordering invariant is violated.
func (c *Clock) Restore(t uint64) { c.now = t }

// CyclesPerSecond converts a per-second rate into a cycle period, rounding
// to the nearest cycle. A rate of 0 returns 0.
func CyclesPerSecond(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	return uint64(float64(Frequency)/rate + 0.5)
}

// Seconds converts a cycle count into seconds at the simulated frequency.
func Seconds(cycles uint64) float64 {
	return float64(cycles) / float64(Frequency)
}

// Cycles converts seconds into cycles at the simulated frequency.
func Cycles(seconds float64) uint64 {
	return uint64(seconds * float64(Frequency))
}
