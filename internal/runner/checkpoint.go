package runner

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

// checkpointFormatVersion identifies the journal layout. Bump it on any
// incompatible change: the version participates in the content address,
// so old-format journals are simply never found, not misread.
const checkpointFormatVersion = "packetchasing-checkpoint/v1"

// checkpointIdentity is the content address of one job's journal — the
// same identity discipline that keys the artifact store. Two invocations
// share a journal exactly when they would produce identical outcomes for
// the units they have in common.
type checkpointIdentity struct {
	Kind   string `json:"kind"` // "experiments" or "sweep"
	ID     string `json:"id"`   // sweep ID; empty for experiments (outcomes are selection-independent)
	Scale  string `json:"scale"`
	Seed   int64  `json:"seed"`
	Trials int    `json:"trials"`
}

// filename derives the journal's content-addressed file name.
func (id checkpointIdentity) filename() string {
	key := fmt.Sprintf("%s|%s|%s|%s|%d|%d",
		checkpointFormatVersion, id.Kind, id.ID, id.Scale, id.Seed, id.Trials)
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".journal"
}

// outcomeKey identifies one journal slot.
type outcomeKey struct {
	unit  string
	trial int
}

// journalHeader is the journal's first line: the identity written in the
// clear so a journal is self-describing and a tampered or misplaced file
// is detected (the filename hash alone would also catch it, but the
// header keeps the check independent of where the file sits).
type journalHeader struct {
	Format   string             `json:"format"`
	Identity checkpointIdentity `json:"identity"`
}

// journalEntry is one completed (unit, trial) outcome. Result survives a
// JSON round-trip exactly (float64 encodes shortest-round-trip), and a
// failed trial's error string reconstructs the same aggregate message —
// which is what makes a resumed report byte-identical to a clean one.
type journalEntry struct {
	Unit   string              `json:"unit"`
	Trial  int                 `json:"trial"`
	Failed bool                `json:"failed,omitempty"`
	Error  string              `json:"error,omitempty"`
	Result *experiments.Result `json:"result,omitempty"`
	WallNS int64               `json:"wall_ns"`
}

// checkpointSink journals every executed outcome as one checksummed line:
// "<sha256[:16]> <payload JSON>\n". Each line is self-validating, so a
// torn final line from a killed process — or any corrupted line — is
// skipped on load and its cell re-runs; the append that follows heals the
// journal, mirroring the artifact store's corrupt-entry handling.
type checkpointSink struct {
	f *os.File
}

// ErrJournalBusy reports that another live invocation holds the journal
// for the same job identity under the same checkpoint dir. Interleaved
// appends from two writers would corrupt each other's lines (each write
// is one line, but nothing orders them), so the second writer fails fast
// instead of silently sharing the file; re-run it after the holder exits,
// or give it its own checkpoint dir.
var ErrJournalBusy = errors.New("checkpoint journal is locked by another running invocation")

// openCheckpoint opens (or creates) the journal for ident under dir and
// takes an exclusive advisory lock on it for the sink's lifetime. When
// resume is set the existing journal is loaded and appended to; otherwise
// it is truncated — a fresh run must not inherit stale outcomes.
//
// The lock is acquired before the truncate-or-load decision: a contending
// invocation must fail fast (ErrJournalBusy) without having destroyed the
// holder's journal first. Two processes sharing a checkpoint dir — the
// experiment daemon's normal state — therefore cannot interleave appends
// into one file.
func openCheckpoint(dir string, ident checkpointIdentity, resume bool) (*checkpointSink, map[outcomeKey]TrialOutcome, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("runner: checkpoint dir: %w", err)
	}
	path := filepath.Join(dir, ident.filename())
	// O_APPEND (rather than explicit seeks) keeps every write at the tail
	// in both the fresh and the resumed case, including after Truncate.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("runner: checkpoint journal: %w", err)
	}
	if err := lockJournal(f); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("runner: checkpoint journal %s: %w", path, err)
	}
	var replay map[outcomeKey]TrialOutcome
	usable := false
	if resume {
		replay, usable = loadJournal(path, ident)
	}
	s := &checkpointSink{f: f}
	if usable {
		// A kill mid-write leaves a torn final line with no newline;
		// terminate it so appended entries do not fuse onto it (the torn
		// fragment itself fails its checksum and is skipped on load).
		if err := s.terminateTornTail(); err != nil {
			f.Close()
			return nil, nil, err
		}
	} else {
		replay = nil
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("runner: checkpoint journal: %w", err)
		}
		if err := s.writeLine(journalHeader{Format: checkpointFormatVersion, Identity: ident}); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return s, replay, nil
}

func (s *checkpointSink) Put(o TrialOutcome) error {
	if o.Resumed {
		return nil // already journaled; re-appending would only grow the file
	}
	e := journalEntry{Unit: o.Unit, Trial: o.Trial, WallNS: int64(o.Wall)}
	if o.Err != nil {
		e.Failed = true
		e.Error = o.Err.Error()
	} else {
		res := o.Result
		e.Result = &res
	}
	return s.writeLine(e)
}

// terminateTornTail appends a newline if the journal's last byte is not
// one, so a torn final line stays an isolated (checksum-failing) line
// instead of corrupting the first entry appended after it.
func (s *checkpointSink) terminateTornTail() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("runner: checkpoint journal: %w", err)
	}
	if info.Size() == 0 {
		return nil
	}
	tail := make([]byte, 1)
	if _, err := s.f.ReadAt(tail, info.Size()-1); err != nil {
		return fmt.Errorf("runner: checkpoint journal: %w", err)
	}
	if tail[0] != '\n' {
		if _, err := s.f.Write([]byte("\n")); err != nil {
			return fmt.Errorf("runner: checkpoint journal: %w", err)
		}
	}
	return nil
}

func (s *checkpointSink) writeLine(payload any) error {
	b, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("runner: checkpoint encode: %w", err)
	}
	sum := sha256.Sum256(b)
	if _, err := fmt.Fprintf(s.f, "%s %s\n", hex.EncodeToString(sum[:8]), b); err != nil {
		return fmt.Errorf("runner: checkpoint write: %w", err)
	}
	return nil
}

// Close syncs and closes the journal; closing the descriptor also
// releases its advisory lock.
func (s *checkpointSink) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// JournalName returns the content-addressed journal filename Run (kind
// "experiments", empty id) or RunSweep (kind "sweep", id = the sweep ID)
// will use for job under any checkpoint dir. Callers that multiplex many
// jobs over one checkpoint dir — the experiment service — use it to
// detect jobs that would contend for the same journal (same identity,
// e.g. two experiment selections under one (scale, seed, trials)) and
// serialize them instead of tripping ErrJournalBusy.
func JournalName(kind, id string, job Job) string {
	if job.Trials < 1 {
		job.Trials = 1 // Run/RunSweep normalize the same way
	}
	return checkpointIdentity{
		Kind:   kind,
		ID:     id,
		Scale:  job.Scale.String(),
		Seed:   job.Seed,
		Trials: job.Trials,
	}.filename()
}

// loadJournal reads a journal, returning the outcomes of every valid
// entry line (later lines win on duplicates) and whether the journal is
// usable — present with a matching header. Invalid lines are skipped, not
// fatal: the cells they would have covered simply re-run.
func loadJournal(path string, ident checkpointIdentity) (map[outcomeKey]TrialOutcome, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)

	if !sc.Scan() {
		return nil, false
	}
	payload, ok := checkLine(sc.Text())
	if !ok {
		return nil, false
	}
	var hdr journalHeader
	if json.Unmarshal(payload, &hdr) != nil ||
		hdr.Format != checkpointFormatVersion || hdr.Identity != ident {
		return nil, false
	}

	out := make(map[outcomeKey]TrialOutcome)
	for sc.Scan() {
		payload, ok := checkLine(sc.Text())
		if !ok {
			continue
		}
		var e journalEntry
		if json.Unmarshal(payload, &e) != nil || e.Unit == "" {
			continue
		}
		o := TrialOutcome{Unit: e.Unit, Trial: e.Trial, Wall: time.Duration(e.WallNS)}
		switch {
		case e.Failed:
			o.Err = errors.New(e.Error)
		case e.Result != nil:
			o.Result = *e.Result
		default:
			continue // neither a result nor a failure: malformed
		}
		out[outcomeKey{unit: e.Unit, trial: e.Trial}] = o
	}
	return out, true
}

// checkLine validates one "<checksum> <payload>" journal line and returns
// the payload.
func checkLine(line string) ([]byte, bool) {
	sumHex, payload, ok := strings.Cut(line, " ")
	if !ok || len(sumHex) != 16 {
		return nil, false
	}
	sum := sha256.Sum256([]byte(payload))
	if hex.EncodeToString(sum[:8]) != sumHex {
		return nil, false
	}
	return []byte(payload), true
}
