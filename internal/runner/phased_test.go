package runner

import (
	"bytes"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// TestWarmColdByteIdenticalExperiments is the PR's acceptance criterion
// for the experiment path: for the same (selection, scale, seed, trials),
// a warm run (shared offline artifacts) and a cold run (rebuild per
// trial) must serialize to byte-identical JSON. fig10 is offline-heavy
// and cheap online; fig5 covers the non-phased path riding along.
func TestWarmColdByteIdenticalExperiments(t *testing.T) {
	var sel []experiments.Experiment
	for _, id := range []string{"fig5", "fig10"} {
		e, ok := experiments.ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		sel = append(sel, e)
	}
	base := Options{Scale: experiments.Demo, Seed: 9, Trials: 3, Parallel: 4}
	cold := runJSON(t, sel, base)
	warm := base
	warm.Warm = true
	if got := runJSON(t, sel, warm); !bytes.Equal(cold, got) {
		t.Error("warm and cold runs serialized differently")
	}
}

// TestWarmColdByteIdenticalSweep is the sweep-path criterion, on a
// trimmed copy of the real timer sweep (two cells sharing one offline
// machine shape).
func TestWarmColdByteIdenticalSweep(t *testing.T) {
	sw, ok := experiments.SweepByID("sens_covert_timer")
	if !ok {
		t.Fatal("sens_covert_timer not registered")
	}
	sw.Grid = scenario.Grid{{Name: scenario.AxisTimerNoise, Values: []float64{0, 64}}}
	base := Options{Scale: experiments.Demo, Seed: 4, Trials: 2, Parallel: 4}
	cold := sweepJSON(t, sw, base)
	warm := base
	warm.Warm = true
	if got := sweepJSON(t, sw, warm); !bytes.Equal(cold, got) {
		t.Error("warm and cold sweep runs serialized differently")
	}
}

// TestWarmColdByteIdenticalDefenseSweep extends the sweep criterion to a
// defense axis: cells differ in the machine itself (and, for timer
// coarsening, only in a knob the machine fingerprint excludes — the
// defense tag must key the artifacts apart), yet warm and cold runs must
// still serialize identically.
func TestWarmColdByteIdenticalDefenseSweep(t *testing.T) {
	sw, ok := experiments.SweepByID("sens_chase_defense")
	if !ok {
		t.Fatal("sens_chase_defense not registered")
	}
	sw.Grid = scenario.Grid{scenario.DefenseAxis("none", "timer-coarse-64", "adaptive-partition")}
	base := Options{Scale: experiments.Demo, Seed: 4, Trials: 1, Parallel: 4}
	cold := sweepJSON(t, sw, base)
	warm := base
	warm.Warm = true
	if got := sweepJSON(t, sw, warm); !bytes.Equal(cold, got) {
		t.Error("warm and cold defense-sweep runs serialized differently")
	}
}

// TestPhasedTrialZeroMatchesMonolithicRun pins the compatibility
// contract: through the runner, trial 0 of a phase-split experiment must
// reproduce the monolithic Run(seed) result exactly (this is what keeps
// the historical golden files valid).
func TestPhasedTrialZeroMatchesMonolithicRun(t *testing.T) {
	e, ok := experiments.ByID("fig10")
	if !ok {
		t.Fatal("fig10 not registered")
	}
	if !e.Phased() {
		t.Fatal("fig10 should be phase-split")
	}
	direct, err := e.Run(experiments.Demo, TrialSeed(11, e.ID, 0))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run([]experiments.Experiment{e}, Options{
		Scale: experiments.Demo, Seed: 11, Trials: 1, Warm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	er := rep.Experiments[0]
	if !er.OK {
		t.Fatalf("trial failed: %s", er.Error)
	}
	if len(er.Metrics) != len(direct.Metrics) {
		t.Fatalf("metric count %d vs %d", len(er.Metrics), len(direct.Metrics))
	}
	for i, m := range direct.Metrics {
		if er.Metrics[i].Name != m.Name || er.Metrics[i].Values[0] != m.Value {
			t.Errorf("metric %d: runner %s=%v, direct %s=%v",
				i, er.Metrics[i].Name, er.Metrics[i].Values[0], m.Name, m.Value)
		}
	}
}

// TestWarmTrialsDecorrelate guards the online-reseed plumbing: trials of
// a phase-split experiment share one prepared machine but must not
// collapse into identical measurements — ambient randomness is re-derived
// per trial.
func TestWarmTrialsDecorrelate(t *testing.T) {
	e, ok := experiments.ByID("fig7")
	if !ok {
		t.Fatal("fig7 not registered")
	}
	rep, err := Run([]experiments.Experiment{e}, Options{
		Scale: experiments.Demo, Seed: 2, Trials: 3, Parallel: 3, Warm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	er := rep.Experiments[0]
	if !er.OK {
		t.Fatalf("trial failed: %s", er.Error)
	}
	varied := false
	for _, m := range er.Metrics {
		if m.Summary.StdDev > 0 {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("every metric identical across warm trials: online streams are not decorrelated")
	}
}

// TestOfflineSeedIsTrialZero pins the derivation rule the compatibility
// contract rests on.
func TestOfflineSeedIsTrialZero(t *testing.T) {
	if OfflineSeed(7, "fig7") != TrialSeed(7, "fig7", 0) {
		t.Error("OfflineSeed must equal trial 0's seed")
	}
	if SweepOfflineSeed(7, "s") == SweepOfflineSeed(7, "other") {
		t.Error("sweep offline seeds must differ across sweeps")
	}
	if SweepOfflineSeed(7, "s") == SweepOfflineSeed(8, "s") {
		t.Error("sweep offline seeds must differ across roots")
	}
}
