package runner

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// aggregate reduces one experiment's (or sweep cell's) trial outcomes into
// a report entry. Metric order follows the first successful trial (every
// trial runs the same code, so the set and order of metric names match);
// the values slice is ordered by trial index.
func aggregate(id, title string, trials []trialOutcome) ExperimentReport {
	er := ExperimentReport{ID: id, Title: title, OK: true}
	first := -1
	for ti, t := range trials {
		er.Wall += t.wall
		if t.err != nil {
			if er.OK {
				er.OK = false
				er.Error = fmt.Sprintf("trial %d: %v", ti, t.err)
			}
			continue
		}
		if first < 0 {
			first = ti
		}
	}
	if first < 0 {
		return er
	}
	er.Table = trials[first].result
	if title := trials[first].result.Title; title != "" {
		er.Title = title
	}
	// Metrics are matched across trials by (name, occurrence ordinal) so
	// an accidental duplicate name aggregates positionally instead of
	// collapsing every occurrence onto the first one's values.
	type key struct {
		name string
		ord  int
	}
	byKey := func(ms []experiments.Metric) map[key]float64 {
		seen := map[string]int{}
		out := make(map[key]float64, len(ms))
		for _, m := range ms {
			out[key{m.Name, seen[m.Name]}] = m.Value
			seen[m.Name]++
		}
		return out
	}
	trialValues := make([]map[key]float64, len(trials))
	for ti, t := range trials {
		if t.err == nil {
			trialValues[ti] = byKey(t.result.Metrics)
		}
	}
	ord := map[string]int{}
	for _, m := range trials[first].result.Metrics {
		k := key{m.Name, ord[m.Name]}
		ord[m.Name]++
		values := make([]float64, 0, len(trials))
		for _, tv := range trialValues {
			if tv == nil {
				continue
			}
			if v, ok := tv[k]; ok {
				values = append(values, v)
			}
		}
		er.Metrics = append(er.Metrics, MetricSummary{
			Name:    m.Name,
			Unit:    m.Unit,
			Summary: stats.Summarize(values),
			Values:  values,
		})
	}
	return er
}
