package runner

// Pool bounds concurrent trial execution across every Runner that shares
// it. A single-job invocation does not need one — Config.Parallel already
// sizes that job's workers — but a multi-client service runs many jobs at
// once, and without a shared bound N concurrent jobs would each spawn
// their own full-width pool and oversubscribe the machine N-fold. Workers
// acquire a slot around each trial (never while idle or streaming into
// sinks), so the pool caps compute without serializing replay or
// reporting; acquisition order is irrelevant to report bytes because
// outcomes land in pre-assigned slots.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting width concurrent trials; width <= 0
// means GOMAXPROCS.
func NewPool(width int) *Pool {
	if width <= 0 {
		width = defaultParallel()
	}
	return &Pool{sem: make(chan struct{}, width)}
}

// Width reports the pool's concurrency bound.
func (p *Pool) Width() int { return cap(p.sem) }

func (p *Pool) acquire() { p.sem <- struct{}{} }
func (p *Pool) release() { <-p.sem }
