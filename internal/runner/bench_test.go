package runner

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// The warm-vs-cold benchmark pairs quantify the phase-split payoff: a
// warm run prepares each distinct machine once and clones it per trial
// (and per sweep cell), a cold run rebuilds the offline phase —
// eviction-set construction, calibration — every time. CI runs these
// (BENCH_runner.json artifact) so the wall-clock trajectory of the
// runner's hot path is tracked per commit. Demo scale keeps CI fast; at
// paper scale the offline phase costs minutes per machine and the same
// ratios compound accordingly.

// benchExperiments is an offline-dominated selection: fig10's online
// phase (one 24-symbol covert decode) is milliseconds against an
// offline phase of full eviction-set discovery.
func benchExperiments(b *testing.B) []experiments.Experiment {
	b.Helper()
	e, ok := experiments.ByID("fig10")
	if !ok {
		b.Fatal("fig10 not registered")
	}
	return []experiments.Experiment{e}
}

func benchRun(b *testing.B, warm bool) {
	sel := benchExperiments(b)
	opts := Options{Scale: experiments.Demo, Seed: 17, Trials: 4, Parallel: 2, Warm: warm}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(sel, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed() > 0 {
			b.Fatalf("%d experiments failed", rep.Failed())
		}
	}
}

func BenchmarkRunnerMultiTrialCold(b *testing.B) { benchRun(b, false) }
func BenchmarkRunnerMultiTrialWarm(b *testing.B) { benchRun(b, true) }

// benchSweep is the timer sweep trimmed to three cells; its swept axis is
// online-only, so a warm run prepares the whole grid's machines once.
func benchSweep(b *testing.B, warm bool) {
	sw, ok := experiments.SweepByID("sens_covert_timer")
	if !ok {
		b.Fatal("sens_covert_timer not registered")
	}
	sw.Grid = scenario.Grid{{Name: scenario.AxisTimerNoise, Values: []float64{0, 16, 64}}}
	opts := Options{Scale: experiments.Demo, Seed: 17, Trials: 2, Parallel: 2, Warm: warm}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := RunSweep(sw, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed() > 0 {
			b.Fatalf("%d cells failed", rep.Failed())
		}
	}
}

func BenchmarkRunnerSweepCold(b *testing.B) { benchSweep(b, false) }
func BenchmarkRunnerSweepWarm(b *testing.B) { benchSweep(b, true) }
