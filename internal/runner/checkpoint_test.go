package runner

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// ckptSweep is a deterministic sweep that counts how many trials actually
// execute, so tests can assert what a resume skipped. failKey, when
// non-empty, makes that cell's trials fail — checkpointed failures must
// replay byte-identically too.
func ckptSweep(executed *atomic.Int64, failKey string) experiments.Sweep {
	return experiments.Sweep{
		ID:    "ckpt_sweep",
		Short: "checkpoint test sweep",
		Grid: scenario.Grid{
			{Name: "a", Values: []float64{1, 2, 3}},
			{Name: "b", Values: []float64{10, 20}},
		},
		Run: func(_ experiments.Scale, seed int64, cell scenario.Cell) (experiments.Result, error) {
			executed.Add(1)
			if cell.Key() == failKey {
				return experiments.Result{}, fmt.Errorf("synthetic failure at %s", cell.Key())
			}
			a, _ := cell.Value("a")
			b, _ := cell.Value("b")
			res := experiments.Result{ID: "ckpt_sweep", Title: "ckpt", Header: []string{"k"}, Rows: [][]string{{"v"}}}
			res.AddMetric("ab", "units", a*b)
			res.AddMetric("seed_mod", "", float64(seed%1000))
			return res, nil
		},
	}
}

func sweepReportJSON(t *testing.T, rep *SweepReport) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// killSink aborts the run after n outcomes — the in-process stand-in for
// kill -9 mid-sweep. Replayed outcomes do not count against the budget:
// a resumed run may stream many checkpoint hits before its first kill.
type killSink struct {
	n    int
	seen int
}

var errKilled = errors.New("killed by test sink")

func (k *killSink) Put(o TrialOutcome) error {
	if o.Resumed {
		return nil
	}
	k.seen++
	if k.seen > k.n {
		return errKilled
	}
	return nil
}

// journalPath returns the single journal file a test run created.
func journalPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one journal in %s, got %v (err %v)", dir, matches, err)
	}
	return matches[0]
}

// TestResumeByteIdentical is the tentpole property: a sweep killed after
// K of N trials and resumed produces byte-identical JSON to an
// uninterrupted run, for random K across seeds.
func TestResumeByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var cleanN atomic.Int64
			job := Job{Scale: experiments.Demo, Seed: seed, Trials: 3}
			cleanRep, err := New(Config{Parallel: 2}).RunSweep(ckptSweep(&cleanN, ""), job)
			if err != nil {
				t.Fatal(err)
			}
			want := sweepReportJSON(t, cleanRep)
			total := int(cleanN.Load())

			rng := rand.New(rand.NewSource(seed))
			k := rng.Intn(total)
			dir := t.TempDir()

			var killedN atomic.Int64
			_, err = New(Config{
				Parallel:      2,
				CheckpointDir: dir,
				Sinks:         []CellSink{&killSink{n: k}},
			}).RunSweep(ckptSweep(&killedN, ""), job)
			if !errors.Is(err, errKilled) {
				t.Fatalf("killed run: err %v, want errKilled", err)
			}

			var resumedN atomic.Int64
			rep, err := New(Config{
				Parallel:      2,
				CheckpointDir: dir,
				Resume:        true,
			}).RunSweep(ckptSweep(&resumedN, ""), job)
			if err != nil {
				t.Fatal(err)
			}
			if got := sweepReportJSON(t, rep); !bytes.Equal(want, got) {
				t.Errorf("kill after %d/%d + resume: JSON differs from uninterrupted run", k, total)
			}
			if int(killedN.Load())+int(resumedN.Load()) < total {
				t.Errorf("killed(%d) + resumed(%d) executed fewer than %d trials", killedN.Load(), resumedN.Load(), total)
			}
			if resumedN.Load() == int64(total) && k > 1 {
				t.Errorf("resume executed all %d trials — journal was ignored", total)
			}
		})
	}
}

// TestResumeSkipsCompletedTrials: resuming over a complete journal
// executes nothing and still reproduces the report exactly.
func TestResumeSkipsCompletedTrials(t *testing.T) {
	dir := t.TempDir()
	job := Job{Scale: experiments.Demo, Seed: 9, Trials: 2}
	var firstN atomic.Int64
	first, err := New(Config{Parallel: 3, CheckpointDir: dir}).RunSweep(ckptSweep(&firstN, ""), job)
	if err != nil {
		t.Fatal(err)
	}
	var secondN atomic.Int64
	second, err := New(Config{Parallel: 3, CheckpointDir: dir, Resume: true}).RunSweep(ckptSweep(&secondN, ""), job)
	if err != nil {
		t.Fatal(err)
	}
	if secondN.Load() != 0 {
		t.Errorf("full-journal resume executed %d trials, want 0", secondN.Load())
	}
	if !bytes.Equal(sweepReportJSON(t, first), sweepReportJSON(t, second)) {
		t.Error("replayed report differs from executed report")
	}
}

// TestResumeReplaysFailures: failed trials are journaled and replayed
// with identical error strings, not silently retried into success.
func TestResumeReplaysFailures(t *testing.T) {
	dir := t.TempDir()
	job := Job{Scale: experiments.Demo, Seed: 3, Trials: 2}
	var a, b atomic.Int64
	first, err := New(Config{CheckpointDir: dir}).RunSweep(ckptSweep(&a, "a=2,b=10"), job)
	if err != nil {
		t.Fatal(err)
	}
	if first.Failed() != 1 {
		t.Fatalf("want 1 failed cell, got %d", first.Failed())
	}
	second, err := New(Config{CheckpointDir: dir, Resume: true}).RunSweep(ckptSweep(&b, "a=2,b=10"), job)
	if err != nil {
		t.Fatal(err)
	}
	if b.Load() != 0 {
		t.Errorf("resume executed %d trials, want 0 (failures replay too)", b.Load())
	}
	if !bytes.Equal(sweepReportJSON(t, first), sweepReportJSON(t, second)) {
		t.Error("replayed failure report differs (error strings must round-trip)")
	}
}

// TestCorruptJournalEntriesHealed: flipping bytes in journal entries makes
// those cells re-run (and re-journal), never corrupts the report.
func TestCorruptJournalEntriesHealed(t *testing.T) {
	dir := t.TempDir()
	job := Job{Scale: experiments.Demo, Seed: 11, Trials: 2}
	var n atomic.Int64
	clean, err := New(Config{CheckpointDir: dir}).RunSweep(ckptSweep(&n, ""), job)
	if err != nil {
		t.Fatal(err)
	}
	want := sweepReportJSON(t, clean)

	path := journalPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	// Corrupt two entry lines (indexes 2 and 4; 0 is the header) and
	// truncate the final line mid-payload — the torn-write case.
	lines[2] = lines[2][:len(lines[2])-3] + "???"
	lines[4] = "garbage that is not even framed"
	last := len(lines) - 1
	lines[last] = lines[last][:len(lines[last])/2]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	var healN atomic.Int64
	rep, err := New(Config{CheckpointDir: dir, Resume: true}).RunSweep(ckptSweep(&healN, ""), job)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, sweepReportJSON(t, rep)) {
		t.Error("report after healing corrupt journal differs from clean run")
	}
	if healN.Load() != 3 {
		t.Errorf("healing run executed %d trials, want 3 (the corrupted entries)", healN.Load())
	}

	// The re-run appended fresh entries: a further resume is all-replay.
	var afterN atomic.Int64
	if _, err := New(Config{CheckpointDir: dir, Resume: true}).RunSweep(ckptSweep(&afterN, ""), job); err != nil {
		t.Fatal(err)
	}
	if afterN.Load() != 0 {
		t.Errorf("journal not healed: follow-up resume executed %d trials", afterN.Load())
	}
}

// TestJournalIdentityMismatch: a journal written for one job is invisible
// to a different job — different seeds land in different files, and a
// tampered header invalidates the journal outright.
func TestJournalIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	jobA := Job{Scale: experiments.Demo, Seed: 1, Trials: 2}
	jobB := Job{Scale: experiments.Demo, Seed: 2, Trials: 2}
	var n atomic.Int64
	if _, err := New(Config{CheckpointDir: dir}).RunSweep(ckptSweep(&n, ""), jobA); err != nil {
		t.Fatal(err)
	}
	pathA := journalPath(t, dir) // jobA's journal, captured while it is the only one

	// A different seed resolves to a different journal file: nothing to
	// replay, every trial executes.
	var bN atomic.Int64
	if _, err := New(Config{CheckpointDir: dir, Resume: true}).RunSweep(ckptSweep(&bN, ""), jobB); err != nil {
		t.Fatal(err)
	}
	if bN.Load() != n.Load() {
		t.Errorf("jobB executed %d trials, want %d (foreign journal must be invisible)", bN.Load(), n.Load())
	}

	// Tamper with jobA's header: the journal must be rejected and rebuilt.
	raw, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(raw), "\n", 2)
	lines[0] = strings.Replace(lines[0], `"seed":1`, `"seed":5`, 1)
	if err := os.WriteFile(pathA, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	var aN atomic.Int64
	if _, err := New(Config{CheckpointDir: dir, Resume: true}).RunSweep(ckptSweep(&aN, ""), jobA); err != nil {
		t.Fatal(err)
	}
	if aN.Load() != n.Load() {
		t.Errorf("tampered-header journal was still trusted (executed %d, want %d)", aN.Load(), n.Load())
	}
}

// TestJournalLockExcludesConcurrentWriters: two invocations sharing a
// checkpoint dir and a job identity — the daemon's normal state — must
// not interleave appends into one journal. The second opener fails fast
// with ErrJournalBusy, before it has truncated or written anything, so
// the holder's journal stays healable; after the holder closes, the slot
// reopens and replays cleanly.
func TestJournalLockExcludesConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	ident := checkpointIdentity{Kind: "sweep", ID: "lock_test", Scale: "demo", Seed: 1, Trials: 2}

	holder, _, err := openCheckpoint(dir, ident, false)
	if err != nil {
		t.Fatal(err)
	}
	res := experiments.Result{ID: "x", Title: "x"}
	res.AddMetric("m", "", 42)
	if err := holder.Put(TrialOutcome{Unit: "u", Trial: 0, Result: res}); err != nil {
		t.Fatal(err)
	}

	// Contender without resume: under the old code this path truncated the
	// journal before anything could object.
	if _, _, err := openCheckpoint(dir, ident, false); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("second writer: err %v, want ErrJournalBusy", err)
	}
	// Contender with resume: same fail-fast.
	if _, _, err := openCheckpoint(dir, ident, true); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("second writer (resume): err %v, want ErrJournalBusy", err)
	}

	// The failed contenders must not have damaged the holder's journal: the
	// entry written before the contention attempts is still replayable.
	if err := holder.Put(TrialOutcome{Unit: "u", Trial: 1, Result: res}); err != nil {
		t.Fatal(err)
	}
	if err := holder.Close(); err != nil {
		t.Fatal(err)
	}
	s, replay, err := openCheckpoint(dir, ident, true)
	if err != nil {
		t.Fatalf("reopen after close: %v (lock must die with the holder)", err)
	}
	defer s.Close()
	if len(replay) != 2 {
		t.Fatalf("replayed %d outcomes, want 2 — contention corrupted the journal", len(replay))
	}
	for trial := 0; trial < 2; trial++ {
		o, ok := replay[outcomeKey{unit: "u", trial: trial}]
		if !ok || len(o.Result.Metrics) != 1 || o.Result.Metrics[0].Value != 42 {
			t.Fatalf("trial %d replayed wrong: %+v", trial, o)
		}
	}
}

// TestJournalRejectsCopiedForeignJournal pins the clear-text header check
// (checkpoint.go): a journal file copied or renamed into another run's
// content-addressed slot — same format, valid checksums, wrong identity —
// must be rejected outright, not silently replayed into the wrong job.
func TestJournalRejectsCopiedForeignJournal(t *testing.T) {
	dir := t.TempDir()
	jobA := Job{Scale: experiments.Demo, Seed: 1, Trials: 2}
	jobB := Job{Scale: experiments.Demo, Seed: 2, Trials: 2}
	var n atomic.Int64
	if _, err := New(Config{CheckpointDir: dir}).RunSweep(ckptSweep(&n, ""), jobA); err != nil {
		t.Fatal(err)
	}
	pathA := journalPath(t, dir)

	// Masquerade jobA's journal as jobB's: every line is checksum-valid,
	// only the header identity disagrees with the slot.
	raw, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	identB := checkpointIdentity{Kind: "sweep", ID: "ckpt_sweep", Scale: jobB.Scale.String(), Seed: jobB.Seed, Trials: jobB.Trials}
	pathB := filepath.Join(dir, identB.filename())
	if err := os.WriteFile(pathB, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, usable := loadJournal(pathB, identB); usable {
		t.Fatal("copied foreign journal accepted by header check")
	}

	// End to end: a resumed jobB run must execute every trial (nothing
	// replayed from the foreign file) and rebuild the slot for itself.
	var bN atomic.Int64
	if _, err := New(Config{CheckpointDir: dir, Resume: true}).RunSweep(ckptSweep(&bN, ""), jobB); err != nil {
		t.Fatal(err)
	}
	if bN.Load() != n.Load() {
		t.Errorf("jobB executed %d trials, want %d — copied journal was replayed", bN.Load(), n.Load())
	}
	// The poisoned slot has been rewritten with jobB's own header.
	if replay, usable := loadJournal(pathB, identB); !usable || len(replay) != int(n.Load()) {
		t.Errorf("slot not healed for jobB: usable=%v replayed=%d", usable, len(replay))
	}
}

// TestTrialBudget: a budgeted run stops with ErrBudget after executing
// its allowance, journals that work, and repeated budgeted resumes
// complete the job with a byte-identical report.
func TestTrialBudget(t *testing.T) {
	var cleanN atomic.Int64
	job := Job{Scale: experiments.Demo, Seed: 7, Trials: 2}
	clean, err := New(Config{}).RunSweep(ckptSweep(&cleanN, ""), job)
	if err != nil {
		t.Fatal(err)
	}
	want := sweepReportJSON(t, clean)
	total := int(cleanN.Load())

	dir := t.TempDir()
	budget := 5
	var rep *SweepReport
	executedTotal := 0
	for i := 0; ; i++ {
		if i > total {
			t.Fatal("budgeted runs did not converge")
		}
		var n atomic.Int64
		r, err := New(Config{
			CheckpointDir: dir,
			Resume:        true,
			TrialBudget:   budget,
		}).RunSweep(ckptSweep(&n, ""), job)
		executedTotal += int(n.Load())
		if errors.Is(err, ErrBudget) {
			if n.Load() != int64(budget) {
				t.Fatalf("budgeted pass executed %d trials, want %d", n.Load(), budget)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		rep = r
		break
	}
	if executedTotal != total {
		t.Errorf("budgeted passes executed %d trials total, want %d (no re-execution)", executedTotal, total)
	}
	if !bytes.Equal(want, sweepReportJSON(t, rep)) {
		t.Error("budget-assembled report differs from uninterrupted run")
	}
}

// TestBudgetRequiresCheckpoint: a budget without a journal would discard
// its work; the runner refuses.
func TestBudgetRequiresCheckpoint(t *testing.T) {
	var n atomic.Int64
	if _, err := New(Config{TrialBudget: 1}).RunSweep(ckptSweep(&n, ""), Job{Scale: experiments.Demo, Trials: 1}); err == nil {
		t.Fatal("budget without checkpoint dir accepted")
	}
	if _, err := New(Config{Resume: true}).RunSweep(ckptSweep(&n, ""), Job{Scale: experiments.Demo, Trials: 1}); err == nil {
		t.Fatal("resume without checkpoint dir accepted")
	}
}

// TestRunPathCheckpointResume: the experiments (non-sweep) path
// checkpoints under the same contract, and the journal is selection-
// independent — a run over a subset resumes from a full-registry journal.
func TestRunPathCheckpointResume(t *testing.T) {
	var aCount, bCount atomic.Int64
	exps := []experiments.Experiment{
		{
			ID: "ckpt_a", Short: "a",
			Run: func(_ experiments.Scale, seed int64) (experiments.Result, error) {
				aCount.Add(1)
				res := experiments.Result{ID: "ckpt_a", Title: "a", Header: []string{"k"}, Rows: [][]string{{"v"}}}
				res.AddMetric("m", "", float64(seed%97))
				return res, nil
			},
		},
		{
			ID: "ckpt_b", Short: "b",
			Run: func(_ experiments.Scale, seed int64) (experiments.Result, error) {
				bCount.Add(1)
				res := experiments.Result{ID: "ckpt_b", Title: "b", Header: []string{"k"}, Rows: [][]string{{"v"}}}
				res.AddMetric("m", "", float64(seed%89))
				return res, nil
			},
		},
	}
	dir := t.TempDir()
	job := Job{Scale: experiments.Demo, Seed: 4, Trials: 3}
	full, err := New(Config{CheckpointDir: dir}).Run(exps, job)
	if err != nil {
		t.Fatal(err)
	}
	if aCount.Load() != 3 || bCount.Load() != 3 {
		t.Fatalf("first run executed a=%d b=%d, want 3 each", aCount.Load(), bCount.Load())
	}

	// Subset selection resumes from the full-selection journal.
	sub, err := New(Config{CheckpointDir: dir, Resume: true}).Run(exps[:1], job)
	if err != nil {
		t.Fatal(err)
	}
	if aCount.Load() != 3 {
		t.Errorf("subset resume re-executed ckpt_a (count %d)", aCount.Load())
	}
	if len(sub.Experiments) != 1 || sub.Experiments[0].ID != "ckpt_a" {
		t.Fatalf("subset report wrong: %+v", sub.Experiments)
	}
	if sub.Experiments[0].Metrics[0].Values[0] != full.Experiments[0].Metrics[0].Values[0] {
		t.Error("replayed metric differs from executed metric")
	}
}

// TestCheckpointWithoutResumeTruncates: without Resume, an existing
// journal is ignored and overwritten — a fresh run must not inherit
// stale outcomes.
func TestCheckpointWithoutResumeTruncates(t *testing.T) {
	dir := t.TempDir()
	job := Job{Scale: experiments.Demo, Seed: 2, Trials: 1}
	var a, b atomic.Int64
	if _, err := New(Config{CheckpointDir: dir}).RunSweep(ckptSweep(&a, ""), job); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CheckpointDir: dir}).RunSweep(ckptSweep(&b, ""), job); err != nil {
		t.Fatal(err)
	}
	if b.Load() != a.Load() {
		t.Errorf("non-resume rerun executed %d trials, want %d (journal must not be read)", b.Load(), a.Load())
	}
}
