//go:build !unix

package runner

import "os"

// lockJournal is a no-op where advisory file locking is unavailable: the
// journal keeps its single-process crash-safety guarantees (checksummed
// lines, torn-tail healing), but two live invocations sharing a
// checkpoint dir are not excluded from interleaving. The experiment
// service still serializes same-identity jobs in-process via
// JournalName, which does not depend on flock.
func lockJournal(*os.File) error { return nil }
