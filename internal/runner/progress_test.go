package runner

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClockPrinter rigs a throttledPrinter to a manual clock and disables
// rate limiting so every Put prints.
func fakeClockPrinter(buf *bytes.Buffer, total int) (*throttledPrinter, *time.Time) {
	clk := time.Unix(1000, 0)
	p := newThrottledPrinter(buf, total)
	p.now = func() time.Time { return clk }
	p.start = clk
	p.interval = 0
	return p, &clk
}

func lastLine(buf *bytes.Buffer) string {
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	return lines[len(lines)-1]
}

// TestETAIgnoresReplayWallTime pins the post-resume ETA fix: a slow
// journal replay (10s here) must not inflate the estimate for the
// remaining executed trials. One executed trial took 2s with one trial
// left, so the ETA is 2s — the pre-fix formula extrapolated from total
// elapsed time and said 12s.
func TestETAIgnoresReplayWallTime(t *testing.T) {
	var buf bytes.Buffer
	p, clk := fakeClockPrinter(&buf, 4)

	p.Put(TrialOutcome{Unit: "u", Trial: 0, Resumed: true})
	*clk = clk.Add(10 * time.Second) // journal replay drags on
	p.Put(TrialOutcome{Unit: "u", Trial: 1, Resumed: true})

	*clk = clk.Add(2 * time.Second) // first executed trial finishes
	p.Put(TrialOutcome{Unit: "u", Trial: 2, Wall: 2 * time.Second})

	got := lastLine(&buf)
	if !strings.Contains(got, "eta 2s") {
		t.Errorf("post-resume ETA wrong: %q, want eta 2s (replay wall time must not count)", got)
	}
	if !strings.Contains(got, "2 from checkpoint") || !strings.Contains(got, "elapsed 12s") {
		t.Errorf("progress line lost its counters: %q", got)
	}
}

// TestETAWithoutResume: the fix must not change the no-checkpoint case —
// executed trials at a steady rate extrapolate linearly.
func TestETAWithoutResume(t *testing.T) {
	var buf bytes.Buffer
	p, clk := fakeClockPrinter(&buf, 4)

	for i := 0; i < 3; i++ {
		*clk = clk.Add(3 * time.Second)
		p.Put(TrialOutcome{Unit: "u", Trial: i, Wall: 3 * time.Second})
	}
	if got := lastLine(&buf); !strings.Contains(got, "eta 3s") {
		t.Errorf("steady-rate ETA wrong: %q, want eta 3s", got)
	}
}

// TestETAOmittedWhenNothingExecuted: an all-replay resume has no basis
// for an estimate and must not print one (the pre-fix code couldn't hit
// this, but the executed==0 guard now pairs with an execStart guard).
func TestETAOmittedWhenNothingExecuted(t *testing.T) {
	var buf bytes.Buffer
	p, clk := fakeClockPrinter(&buf, 4)
	*clk = clk.Add(5 * time.Second)
	p.Put(TrialOutcome{Unit: "u", Trial: 0, Resumed: true})
	if got := lastLine(&buf); strings.Contains(got, "eta") {
		t.Errorf("ETA printed with zero executed trials: %q", got)
	}
}
