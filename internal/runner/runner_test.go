package runner

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// fakeExp returns a cheap deterministic experiment whose single metric
// is a pure function of the seed, so aggregation can be checked exactly.
func fakeExp(id string) experiments.Experiment {
	return experiments.Experiment{
		ID:    id,
		Short: "fake " + id,
		Run: func(scale experiments.Scale, seed int64) (experiments.Result, error) {
			res := experiments.Result{
				ID:     id,
				Title:  "fake " + id,
				Header: []string{"k", "v"},
				Rows:   [][]string{{"seed", fmt.Sprint(seed)}},
			}
			res.AddMetric("seed_mod", "units", float64(seed%1000))
			res.AddMetric("constant", "", 42)
			return res, nil
		},
	}
}

func runJSON(t *testing.T, sel []experiments.Experiment, opts Options) []byte {
	t.Helper()
	rep, err := Run(sel, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelWidthDeterminism is the runner's core contract: the same
// (selection, scale, seed, trials) must serialize to byte-identical JSON
// whether trials run on one worker or on eight.
func TestParallelWidthDeterminism(t *testing.T) {
	sel := []experiments.Experiment{fakeExp("a"), fakeExp("b"), fakeExp("c")}
	if real, ok := experiments.ByID("fig5"); ok {
		sel = append(sel, real) // one real experiment for integration coverage
	}
	base := Options{Scale: experiments.Demo, Seed: 7, Trials: 4, Parallel: 1}
	serial := runJSON(t, sel, base)
	for _, width := range []int{2, 8} {
		opts := base
		opts.Parallel = width
		if got := runJSON(t, sel, opts); !bytes.Equal(serial, got) {
			t.Errorf("JSON differs between -parallel 1 and -parallel %d", width)
		}
	}
}

func TestAggregationExact(t *testing.T) {
	const trials = 5
	rep, err := Run([]experiments.Experiment{fakeExp("x")}, Options{
		Scale: experiments.Demo, Seed: 3, Trials: trials, Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	er := rep.Experiments[0]
	if !er.OK || len(er.Metrics) != 2 {
		t.Fatalf("unexpected report: %+v", er)
	}
	var want []float64
	var sum float64
	for ti := 0; ti < trials; ti++ {
		v := float64(TrialSeed(3, "x", ti) % 1000)
		want = append(want, v)
		sum += v
	}
	m := er.Metrics[0]
	if m.Name != "seed_mod" {
		t.Fatalf("metric order not preserved: %q", m.Name)
	}
	if len(m.Values) != trials {
		t.Fatalf("want %d values got %d", trials, len(m.Values))
	}
	for i, v := range m.Values {
		if v != want[i] {
			t.Errorf("value[%d] = %v want %v (trial order not preserved)", i, v, want[i])
		}
	}
	if math.Abs(m.Summary.Mean-sum/trials) > 1e-12 {
		t.Errorf("mean %v want %v", m.Summary.Mean, sum/trials)
	}
	if c := er.Metrics[1]; c.Summary.StdDev != 0 || c.Summary.Mean != 42 {
		t.Errorf("constant metric should aggregate to 42 +/- 0: %+v", c.Summary)
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := experiments.Experiment{
		ID: "boom", Short: "always fails",
		Run: func(experiments.Scale, int64) (experiments.Result, error) {
			return experiments.Result{}, errors.New("kaput")
		},
	}
	rep, err := Run([]experiments.Experiment{fakeExp("ok"), boom}, Options{
		Scale: experiments.Demo, Seed: 1, Trials: 2, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 1 {
		t.Fatalf("Failed() = %d want 1", rep.Failed())
	}
	er := rep.Experiments[1]
	if er.OK || !strings.Contains(er.Error, "kaput") {
		t.Errorf("failure not recorded: %+v", er)
	}
	if rep.Experiments[0].OK != true {
		t.Error("healthy experiment must stay OK")
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FAILED") {
		t.Error("text rendering must surface the failure")
	}
}

// TestDuplicateMetricNamesAggregatePositionally: if an experiment ever
// emits two metrics with the same name, each occurrence must aggregate
// its own values rather than both collapsing onto the first.
func TestDuplicateMetricNamesAggregatePositionally(t *testing.T) {
	dup := experiments.Experiment{
		ID: "dup", Short: "duplicate metric names",
		Run: func(_ experiments.Scale, seed int64) (experiments.Result, error) {
			res := experiments.Result{ID: "dup", Title: "dup", Header: []string{"k"}, Rows: [][]string{{"v"}}}
			res.AddMetric("m", "", float64(seed%100))
			res.AddMetric("m", "", float64(seed%100)+1000)
			return res, nil
		},
	}
	rep, err := Run([]experiments.Experiment{dup}, Options{
		Scale: experiments.Demo, Seed: 5, Trials: 3, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := rep.Experiments[0].Metrics
	if len(ms) != 2 {
		t.Fatalf("want 2 metric entries, got %d", len(ms))
	}
	for ti := 0; ti < 3; ti++ {
		base := float64(TrialSeed(5, "dup", ti) % 100)
		if ms[0].Values[ti] != base {
			t.Errorf("first occurrence trial %d = %v want %v", ti, ms[0].Values[ti], base)
		}
		if ms[1].Values[ti] != base+1000 {
			t.Errorf("second occurrence trial %d = %v want %v", ti, ms[1].Values[ti], base+1000)
		}
	}
}

// TestPartialFailureKeepsSurvivingTrials: one failing trial must mark
// the experiment failed without discarding the surviving trials'
// aggregate — in the report and in the text rendering.
func TestPartialFailureKeepsSurvivingTrials(t *testing.T) {
	failSeed := TrialSeed(1, "flaky", 0)
	flaky := experiments.Experiment{
		ID: "flaky", Short: "fails trial 0",
		Run: func(_ experiments.Scale, seed int64) (experiments.Result, error) {
			if seed == failSeed {
				return experiments.Result{}, errors.New("boom0")
			}
			res := experiments.Result{
				ID: "flaky", Title: "flaky", Header: []string{"k"}, Rows: [][]string{{"v"}},
			}
			res.AddMetric("m", "", 1)
			return res, nil
		},
	}
	rep, err := Run([]experiments.Experiment{flaky}, Options{
		Scale: experiments.Demo, Seed: 1, Trials: 3, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	er := rep.Experiments[0]
	if er.OK || !strings.Contains(er.Error, "trial 0") {
		t.Fatalf("failure not attributed to trial 0: %+v", er)
	}
	if len(er.Metrics) != 1 || er.Metrics[0].Summary.N != 2 {
		t.Fatalf("surviving trials must still aggregate: %+v", er.Metrics)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "== flaky: flaky ==") {
		t.Errorf("text must show both the failure and the surviving table:\n%s", out)
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Error("empty selection must error")
	}
}

// TestTrialSeedsDistinct checks the derived seeds are pairwise distinct
// across the whole registry at a realistic trial count — a collision
// would silently correlate two trials.
func TestTrialSeedsDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, e := range experiments.All() {
		for ti := 0; ti < 16; ti++ {
			s := TrialSeed(1, e.ID, ti)
			key := fmt.Sprintf("%s/%d", e.ID, ti)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestWriteTextAggregateBlock(t *testing.T) {
	rep, err := Run([]experiments.Experiment{fakeExp("x")}, Options{
		Scale: experiments.Demo, Seed: 1, Trials: 3, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"aggregate over 3 trials", "seed_mod", "== x: fake x =="} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
