package runner

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// TestPanicRecoveredAsFailure: a panicking experiment must fail its own
// report entry (so cmd/experiments exits non-zero) without killing the
// worker pool or the surviving experiments.
func TestPanicRecoveredAsFailure(t *testing.T) {
	boom := experiments.Experiment{
		ID: "boom", Short: "panics",
		Run: func(experiments.Scale, int64) (experiments.Result, error) {
			panic("synthetic failure")
		},
	}
	rep, err := Run([]experiments.Experiment{fakeExp("ok"), boom, fakeExp("ok2")}, Options{
		Scale: experiments.Demo, Seed: 1, Trials: 2, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 1 {
		t.Fatalf("Failed() = %d want 1", rep.Failed())
	}
	er := rep.Experiments[1]
	if er.OK || !strings.Contains(er.Error, "panic: synthetic failure") {
		t.Fatalf("panic not recorded as failure: %+v", er)
	}
	for _, i := range []int{0, 2} {
		if !rep.Experiments[i].OK {
			t.Errorf("healthy experiment %s dragged down by the panic", rep.Experiments[i].ID)
		}
	}
}

func TestSweepPanicRecoveredAsFailure(t *testing.T) {
	sw := experiments.Sweep{
		ID: "panicky", Short: "panics on one cell",
		Grid: scenario.Grid{{Name: "x", Values: []float64{1, 2, 3}}},
		Run: func(_ experiments.Scale, _ int64, cell scenario.Cell) (experiments.Result, error) {
			if x, _ := cell.Value("x"); x == 2 {
				panic(fmt.Sprintf("cell %v exploded", x))
			}
			res := experiments.Result{ID: "panicky", Title: "p", Header: []string{"k"}, Rows: [][]string{{"v"}}}
			res.AddMetric("m", "", 1)
			return res, nil
		},
	}
	rep, err := RunSweep(sw, Options{Scale: experiments.Demo, Seed: 1, Trials: 2, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 1 {
		t.Fatalf("Failed() = %d want 1", rep.Failed())
	}
	if c := rep.Cells[1]; c.OK || !strings.Contains(c.Error, "panic") {
		t.Fatalf("panicking cell not isolated: %+v", c)
	}
}

// TestStressPoolDeterminismUnderFailures floods a wide pool with a mix of
// healthy, failing, and panicking experiments and checks the aggregated
// JSON stays byte-identical across pool widths — the determinism contract
// must survive worst-case completion orderings (this test is most
// valuable under -race).
func TestStressPoolDeterminismUnderFailures(t *testing.T) {
	build := func() []experiments.Experiment {
		var sel []experiments.Experiment
		for i := 0; i < 24; i++ {
			i := i
			switch i % 4 {
			case 1:
				sel = append(sel, experiments.Experiment{
					ID: fmt.Sprintf("fail%d", i), Short: "fails",
					Run: func(experiments.Scale, int64) (experiments.Result, error) {
						return experiments.Result{}, fmt.Errorf("err %d", i)
					},
				})
			case 3:
				sel = append(sel, experiments.Experiment{
					ID: fmt.Sprintf("panic%d", i), Short: "panics",
					Run: func(experiments.Scale, int64) (experiments.Result, error) {
						panic(i)
					},
				})
			default:
				sel = append(sel, fakeExp(fmt.Sprintf("ok%d", i)))
			}
		}
		return sel
	}
	var want []byte
	for _, width := range []int{1, 4, 16} {
		got := runJSON(t, build(), Options{Scale: experiments.Demo, Seed: 9, Trials: 3, Parallel: width})
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("report bytes differ at -parallel %d", width)
		}
	}
}

// TestStressPoolRunsEveryTrialExactlyOnce counts executions under a wide
// pool to catch double-dispatch or dropped jobs.
func TestStressPoolRunsEveryTrialExactlyOnce(t *testing.T) {
	var calls atomic.Int64
	counted := experiments.Experiment{
		ID: "counted", Short: "counts calls",
		Run: func(_ experiments.Scale, seed int64) (experiments.Result, error) {
			calls.Add(1)
			res := experiments.Result{ID: "counted", Title: "c", Header: []string{"k"}, Rows: [][]string{{"v"}}}
			res.AddMetric("m", "", 1)
			return res, nil
		},
	}
	const trials = 50
	rep, err := Run([]experiments.Experiment{counted}, Options{
		Scale: experiments.Demo, Seed: 2, Trials: trials, Parallel: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != trials {
		t.Errorf("ran %d trials want %d", calls.Load(), trials)
	}
	if n := rep.Experiments[0].Metrics[0].Summary.N; n != trials {
		t.Errorf("aggregated %d values want %d", n, trials)
	}
}
