//go:build unix

package runner

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockJournal takes a non-blocking exclusive flock on the journal file.
// flock locks the open file description, so it excludes concurrent
// writers both across processes and across goroutines that opened the
// file independently; it is released automatically when the descriptor
// closes (including on SIGKILL), so a crashed run never wedges its
// journal. Contention maps to ErrJournalBusy so callers can distinguish
// "someone else is writing this job" from I/O failure.
func lockJournal(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return ErrJournalBusy
	}
	return fmt.Errorf("lock: %w", err)
}
