package runner

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/experiments"
)

// Config is the execution environment a Runner applies to every job it
// runs: pool width, artifact reuse, checkpointing, and progress output.
// It deliberately excludes what is being measured — that is the Job — so
// one configured Runner can execute many jobs, and so the fields that can
// change report bytes (Job) are separated from the ones that must not
// (Config).
type Config struct {
	// Parallel is the worker-pool width; <= 0 means GOMAXPROCS.
	Parallel int
	// Warm enables offline-artifact reuse for phase-split experiments:
	// one shared content-addressed store deduplicates Prepare work across
	// trials (and, in RunSweep, across grid cells). A cold run (the zero
	// value) rebuilds every artifact per trial. Warm and cold runs of the
	// same job produce byte-identical reports; warm is purely a wall-clock
	// optimization.
	Warm bool
	// ArtifactDir, when non-empty (warm mode only), backs the artifact
	// store with a directory so repeated invocations skip offline phases
	// entirely. Never changes report bytes.
	ArtifactDir string
	// ArtifactMaxBytes, when > 0 (requires ArtifactDir), caps the disk
	// artifact store: after every persisted build, least-recently-used
	// entries are evicted until the directory fits the cap. Eviction only
	// costs rebuild time on a later miss — never changes report bytes.
	ArtifactMaxBytes int64
	// Store, when non-nil, is a caller-owned artifact store shared across
	// runners — the experiment service hands every warm job the same
	// store so concurrent jobs deduplicate offline work. Requires Warm;
	// mutually exclusive with ArtifactDir (the caller already chose the
	// store's backing when it built it).
	Store *experiments.ArtifactStore
	// Pool, when non-nil, bounds concurrent trial execution across every
	// runner sharing it (see Pool). Parallel still sizes this job's
	// worker set; the pool gates how many of those workers may compute at
	// once machine-wide.
	Pool *Pool
	// CheckpointDir, when non-empty, journals every completed (unit,
	// trial) outcome to a file under the directory, content-addressed by
	// the job identity (kind, id, scale, seed, trials — the same identity
	// discipline that keys artifacts). The journal is what Resume reads.
	CheckpointDir string
	// Resume loads the job's journal before executing and serves already-
	// completed (unit, trial) outcomes from it instead of re-running them.
	// A resumed run is byte-identical to an uninterrupted one: outcomes
	// land in the same pre-assigned slots whether executed or replayed.
	// Corrupt or torn journal lines are skipped — their cells simply
	// re-run (and re-journal), mirroring the artifact store's healing.
	// Requires CheckpointDir.
	Resume bool
	// TrialBudget, when > 0, bounds how many trials this invocation
	// executes (replayed checkpoint outcomes are free). If work remains
	// when the budget is spent, the run stops after journaling what it
	// did and returns ErrBudget — a later Resume continues from there.
	// Requires CheckpointDir: a budgeted run without a journal would
	// simply discard its work.
	TrialBudget int
	// NoRigReuse disables the per-worker rig pools that recycle cloned
	// machines across trials (see experiments.RigPool). The zero value —
	// pooling on — is correct for every workload; the flag exists for
	// debugging and for the equivalence tests that pin pooled == unpooled
	// report bytes. Never changes report bytes.
	NoRigReuse bool
	// Progress, when non-nil, receives progress output (typically
	// os.Stderr): a rate-limited done/total+ETA summary line by default,
	// or one line per completed trial when Verbose is set.
	Progress io.Writer
	// Verbose restores the historical one-line-per-trial progress output.
	Verbose bool
	// Sinks are additional observers of the outcome stream, invoked for
	// every (unit, trial) outcome — executed and replayed alike — after
	// the built-in collector and checkpoint sinks. A sink error aborts
	// the run.
	Sinks []CellSink
}

// Job names one unit of work: what scale to run at, which root seed, and
// how many trials. Everything in a Job participates in the determinism
// contract — report bytes are a pure function of (selection or sweep,
// Job) — and, together with the selection identity, it is the checkpoint
// journal's content address.
type Job struct {
	// Scale is the machine scale every trial runs at.
	Scale experiments.Scale
	// Seed is the root seed; per-trial seeds are derived from it.
	Seed int64
	// Trials is the number of trials per experiment or cell (minimum 1).
	Trials int
}

// Runner executes jobs under one Config.
type Runner struct {
	cfg Config
}

// New returns a Runner that executes jobs under cfg.
func New(cfg Config) *Runner { return &Runner{cfg: cfg} }

// ErrBudget reports that a TrialBudget run stopped with work remaining.
// The completed trials are journaled; re-running with Resume continues.
var ErrBudget = errors.New("trial budget exhausted before the job completed")

// newStore builds the artifact store the config describes: nil for cold
// runs, in-memory for plain warm runs, disk-backed when ArtifactDir is
// set.
func (c Config) newStore() (*experiments.ArtifactStore, error) {
	if c.Store != nil {
		if !c.Warm {
			return nil, fmt.Errorf("runner: shared store requires warm mode")
		}
		if c.ArtifactDir != "" {
			return nil, fmt.Errorf("runner: shared store and artifact dir are mutually exclusive")
		}
		return c.Store, nil
	}
	if !c.Warm {
		if c.ArtifactDir != "" {
			return nil, fmt.Errorf("runner: artifact dir requires warm mode")
		}
		return nil, nil
	}
	if c.ArtifactDir != "" {
		return experiments.NewDiskArtifactStoreCapped(c.ArtifactDir, c.ArtifactMaxBytes)
	}
	return experiments.NewArtifactStore(), nil
}

func (c Config) validate() error {
	if c.Resume && c.CheckpointDir == "" {
		return fmt.Errorf("runner: resume requires a checkpoint dir")
	}
	if c.TrialBudget > 0 && c.CheckpointDir == "" {
		return fmt.Errorf("runner: trial budget requires a checkpoint dir")
	}
	if c.ArtifactMaxBytes > 0 && c.ArtifactDir == "" {
		return fmt.Errorf("runner: artifact size cap requires an artifact dir")
	}
	return nil
}

// execUnit is one schedulable unit of a job: an experiment (key = its ID)
// or a sweep cell (key = the cell's canonical coordinate string). The
// label is what progress output calls it.
type execUnit struct {
	key   string
	label string
	run   func(trial int, rigs *experiments.RigLease) (experiments.Result, error)
}

// execute is the streaming executor both Run and RunSweep share. It
// replays checkpointed outcomes, fans the remaining (unit, trial) pairs
// out over the worker pool, and hands every outcome — replayed and
// executed alike — to the sink stack one at a time: the collector (which
// reassembles the deterministic result matrix), the checkpoint journal,
// any Config.Sinks, and the progress printer. Sinks never run
// concurrently; workers only compute.
func (r *Runner) execute(ident checkpointIdentity, units []execUnit, trials int) ([][]trialOutcome, error) {
	if err := r.cfg.validate(); err != nil {
		return nil, err
	}
	parallel := r.cfg.Parallel
	if parallel <= 0 {
		parallel = defaultParallel()
	}

	keys := make([]string, len(units))
	labels := make(map[string]string, len(units))
	for i, u := range units {
		keys[i] = u.key
		labels[u.key] = u.label
	}
	coll := newCollector(keys, trials)

	sinks := multiSink{coll}
	var replay map[outcomeKey]TrialOutcome
	if r.cfg.CheckpointDir != "" {
		ckpt, loaded, err := openCheckpoint(r.cfg.CheckpointDir, ident, r.cfg.Resume)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		replay = loaded
		sinks = append(sinks, ckpt)
	}
	sinks = append(sinks, r.cfg.Sinks...)
	var prog progressSink
	if r.cfg.Progress != nil {
		total := len(units) * trials
		if r.cfg.Verbose {
			prog = newVerbosePrinter(r.cfg.Progress, total, trials, labels)
		} else {
			prog = newThrottledPrinter(r.cfg.Progress, total)
		}
		sinks = append(sinks, prog)
	}

	var sinkErr error
	put := func(o TrialOutcome) {
		if sinkErr == nil {
			sinkErr = sinks.Put(o)
		}
	}

	// Serve checkpointed outcomes first and collect the remaining work in
	// unit-major order — the order a budgeted run truncates, so repeated
	// budgeted invocations sweep the grid front to back.
	type slot struct{ ui, ti int }
	var pending []slot
	for ui, u := range units {
		for ti := 0; ti < trials; ti++ {
			if o, ok := replay[outcomeKey{unit: u.key, trial: ti}]; ok {
				o.Resumed = true
				put(o)
			} else {
				pending = append(pending, slot{ui, ti})
			}
		}
	}
	if sinkErr != nil {
		return nil, sinkErr
	}

	remaining := 0
	if r.cfg.TrialBudget > 0 && len(pending) > r.cfg.TrialBudget {
		remaining = len(pending) - r.cfg.TrialBudget
		pending = pending[:r.cfg.TrialBudget]
	}

	jobs := make(chan slot)
	outcomes := make(chan TrialOutcome, parallel)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a rig pool: trials it runs back to back
			// recycle cloned machines instead of constructing them (see
			// experiments.RigPool). Per-worker pools need no cross-worker
			// coordination and keep reuse order deterministic per worker;
			// pooling never changes report bytes, so sharing wider would
			// buy nothing but contention.
			var rigs *experiments.RigLease
			if !r.cfg.NoRigReuse {
				rigs = experiments.NewRigPool().Lease()
			}
			for s := range jobs {
				u := units[s.ui]
				// A shared pool gates only the compute, not the streaming:
				// the slot is held for exactly one trial's execution.
				if r.cfg.Pool != nil {
					r.cfg.Pool.acquire()
				}
				start := time.Now()
				res, err := u.run(s.ti, rigs)
				// Rigs return to the pool whether the trial finished,
				// errored, or panicked (safeCall converted it): the next
				// adoption overwrites every mutable field, so a poisoned
				// rig heals on reuse.
				rigs.Release()
				wall := time.Since(start)
				if r.cfg.Pool != nil {
					r.cfg.Pool.release()
				}
				outcomes <- TrialOutcome{
					Unit:   u.key,
					Trial:  s.ti,
					Result: res,
					Err:    err,
					Wall:   wall,
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, s := range pending {
			select {
			case jobs <- s:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outcomes)
	}()
	stopped := false
	for o := range outcomes {
		put(o)
		if sinkErr != nil && !stopped {
			stopped = true
			close(stop)
		}
	}
	if sinkErr != nil {
		return nil, sinkErr
	}
	if prog != nil {
		prog.Finish()
	}
	if remaining > 0 {
		return nil, fmt.Errorf("runner: %w (%d trial(s) remaining; re-run with resume)", ErrBudget, remaining)
	}
	return coll.outcomes, nil
}

// Run executes every selected experiment for job.Trials trials and
// aggregates the outcome. The returned error only reports harness-level
// problems (empty selection, sink failure, spent budget); individual
// experiment failures are recorded per experiment in the Report so one
// broken artifact does not discard the rest of a run.
func (r *Runner) Run(selected []experiments.Experiment, job Job) (*Report, error) {
	return r.RunNamed("experiments", "", selected, job)
}

// RunNamed is Run under a caller-chosen journal identity: kind (and an
// optional id distinguishing runs of the same kind) name the checkpoint
// journal instead of the default "experiments" identity. Drivers that
// issue several Run calls against one logical journal — the frontier
// search submits one batch per generation — use a stable (kind, id) and
// Resume=true on every call after the first, so an interrupted run
// replays every completed unit regardless of which batch it arrived in.
// Unit outcomes must be batch-independent for this to be sound, exactly
// as experiment outcomes are selection-independent under Run.
func (r *Runner) RunNamed(kind, id string, selected []experiments.Experiment, job Job) (*Report, error) {
	if len(selected) == 0 {
		return nil, fmt.Errorf("runner: no experiments selected")
	}
	if job.Trials < 1 {
		job.Trials = 1
	}
	store, err := r.cfg.newStore()
	if err != nil {
		return nil, err
	}
	units := make([]execUnit, len(selected))
	for i, e := range selected {
		e := e
		units[i] = execUnit{
			key:   e.ID,
			label: e.ID,
			run: func(trial int, rigs *experiments.RigLease) (experiments.Result, error) {
				return runTrial(e, job.Scale, job.Seed, trial, store, rigs)
			},
		}
	}
	// Experiment outcomes are selection-independent (unit keys are
	// experiment IDs, trial seeds derive from them), so the journal
	// identity deliberately omits the selection: a full-registry journal
	// resumes a single-experiment run and vice versa.
	ident := checkpointIdentity{
		Kind:   kind,
		ID:     id,
		Scale:  job.Scale.String(),
		Seed:   job.Seed,
		Trials: job.Trials,
	}
	outcomes, err := r.execute(ident, units, job.Trials)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema: SchemaVersion,
		Scale:  job.Scale.String(),
		Seed:   job.Seed,
		Trials: job.Trials,
	}
	for i, e := range selected {
		rep.Experiments = append(rep.Experiments, aggregate(e.ID, e.Short, outcomes[i]))
	}
	return rep, nil
}

// RunSweep executes every cell of the sweep's grid for job.Trials trials.
// Cell failures (including panics) are recorded per cell so one broken
// corner of the parameter space does not discard the rest of the curve.
func (r *Runner) RunSweep(sw experiments.Sweep, job Job) (*SweepReport, error) {
	if sw.Run == nil && !sw.Phased() {
		return nil, fmt.Errorf("runner: sweep %q has no run function", sw.ID)
	}
	if err := sw.Grid.Validate(); err != nil {
		return nil, fmt.Errorf("runner: sweep %q: %w", sw.ID, err)
	}
	if job.Trials < 1 {
		job.Trials = 1
	}
	store, err := r.cfg.newStore()
	if err != nil {
		return nil, err
	}
	cells := sw.Grid.Cells()
	units := make([]execUnit, len(cells))
	for i, cell := range cells {
		cell := cell
		units[i] = execUnit{
			key:   cell.Key(),
			label: sw.ID + "[" + cell.Key() + "]",
			run: func(trial int, rigs *experiments.RigLease) (experiments.Result, error) {
				return runSweepTrial(sw, job.Scale, job.Seed, cell, trial, store, rigs)
			},
		}
	}
	ident := checkpointIdentity{
		Kind:   "sweep",
		ID:     sw.ID,
		Scale:  job.Scale.String(),
		Seed:   job.Seed,
		Trials: job.Trials,
	}
	outcomes, err := r.execute(ident, units, job.Trials)
	if err != nil {
		return nil, err
	}
	rep := &SweepReport{
		Schema: SweepSchemaVersion,
		Sweep:  sw.ID,
		Title:  sw.Short,
		Scale:  job.Scale.String(),
		Seed:   job.Seed,
		Trials: job.Trials,
		Axes:   sw.Grid,
	}
	for ci, cell := range cells {
		agg := aggregate(cell.Key(), sw.Short, outcomes[ci])
		rep.Cells = append(rep.Cells, CellReport{
			Key:     cell.Key(),
			Coords:  cell.Coords(),
			Labels:  cell.Labels(),
			OK:      agg.OK,
			Error:   agg.Error,
			Metrics: agg.Metrics,
			Wall:    agg.Wall,
		})
	}
	return rep, nil
}
