package runner

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// concurrencyProbe builds an experiment whose trials record the peak
// number of simultaneously running trials across every job sharing the
// counters.
func concurrencyProbe(id string, cur, peak *atomic.Int64) experiments.Experiment {
	return experiments.Experiment{
		ID: id, Short: id,
		Run: func(_ experiments.Scale, seed int64) (experiments.Result, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			res := experiments.Result{ID: id, Title: id, Header: []string{"k"}, Rows: [][]string{{"v"}}}
			res.AddMetric("m", "", float64(seed%101))
			return res, nil
		},
	}
}

// TestPoolBoundsConcurrentJobs: two wide jobs sharing a width-1 pool
// never execute two trials at once, and the shared pool does not change
// report bytes relative to an unshared run.
func TestPoolBoundsConcurrentJobs(t *testing.T) {
	var cur, peak atomic.Int64
	mkExps := func() []experiments.Experiment {
		return []experiments.Experiment{
			concurrencyProbe("pool_a", &cur, &peak),
			concurrencyProbe("pool_b", &cur, &peak),
		}
	}
	job := Job{Scale: experiments.Demo, Seed: 5, Trials: 4}

	solo, err := New(Config{Parallel: 4}).Run(mkExps(), job)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := solo.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	cur.Store(0)
	peak.Store(0)
	pool := NewPool(1)
	reports := make([]*Report, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := New(Config{Parallel: 4, Pool: pool}).Run(mkExps(), job)
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = rep
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 1 {
		t.Errorf("width-1 pool admitted %d concurrent trials", got)
	}
	for i, rep := range reports {
		if rep == nil {
			continue
		}
		var got bytes.Buffer
		if err := rep.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("job %d under shared pool produced different bytes", i)
		}
	}
}

// TestSharedStoreConfig: a caller-owned store is handed through as-is,
// and the misuse cases fail loudly.
func TestSharedStoreConfig(t *testing.T) {
	shared := experiments.NewArtifactStore()
	got, err := Config{Warm: true, Store: shared}.newStore()
	if err != nil || got != shared {
		t.Fatalf("shared store not passed through: %v, %v", got, err)
	}
	if _, err := (Config{Store: shared}).newStore(); err == nil {
		t.Error("shared store without warm mode accepted")
	}
	if _, err := (Config{Warm: true, Store: shared, ArtifactDir: t.TempDir()}).newStore(); err == nil {
		t.Error("shared store plus artifact dir accepted")
	}
	if err := (Config{Warm: true, ArtifactMaxBytes: 1}).validate(); err == nil {
		t.Error("artifact size cap without artifact dir accepted")
	}
}
