package runner

import (
	"time"

	"repro/internal/experiments"
)

// TrialOutcome is one completed (unit, trial) measurement as the streaming
// executor hands it to sinks. A unit is an experiment ID (Run) or a sweep
// cell key (RunSweep); the pair (Unit, Trial) is the outcome's identity
// within a job and the granule of checkpointing and resume.
type TrialOutcome struct {
	// Unit identifies the experiment or sweep cell the trial belongs to.
	Unit string
	// Trial is the trial index within the unit.
	Trial int
	// Result is the trial's measurement (zero when Err != nil).
	Result experiments.Result
	// Err is the trial's failure, nil on success. Failures are
	// deterministic (the simulation is), so sinks may persist and replay
	// them like successes.
	Err error
	// Wall is the trial's wall-clock duration. It never reaches the
	// serialized report (reports are byte-deterministic), but progress
	// reporting and journals carry it.
	Wall time.Duration
	// Resumed marks an outcome served from a checkpoint journal rather
	// than executed. Progress sinks count it differently; the checkpoint
	// sink must not re-journal it.
	Resumed bool
}

// CellSink receives each (unit, trial) outcome as it completes. The
// executor delivers outcomes one at a time (Put is never called
// concurrently), but in completion order, which depends on the worker-pool
// width — a sink must not assume grid order. A sink error aborts the run:
// the only built-in fallible sink is the checkpoint journal, and a user who
// asked for checkpointing must not silently lose it.
type CellSink interface {
	Put(TrialOutcome) error
}

// collector assembles the streamed outcomes back into the pre-assigned
// result matrix the report aggregation reads. Slot assignment — not
// completion order — is what keeps report bytes independent of the pool
// width.
type collector struct {
	index    map[string]int
	outcomes [][]trialOutcome
}

func newCollector(units []string, trials int) *collector {
	c := &collector{
		index:    make(map[string]int, len(units)),
		outcomes: make([][]trialOutcome, len(units)),
	}
	for i, u := range units {
		c.index[u] = i
		c.outcomes[i] = make([]trialOutcome, trials)
	}
	return c
}

func (c *collector) Put(o TrialOutcome) error {
	ui, ok := c.index[o.Unit]
	if !ok || o.Trial < 0 || o.Trial >= len(c.outcomes[ui]) {
		// Foreign outcomes can only come from a checkpoint journal whose
		// grid has since changed shape; they are simply not part of this
		// run.
		return nil
	}
	c.outcomes[ui][o.Trial] = trialOutcome{result: o.Result, err: o.Err, wall: o.Wall}
	return nil
}

// multiSink fans one outcome stream to several sinks.
type multiSink []CellSink

func (m multiSink) Put(o TrialOutcome) error {
	for _, s := range m {
		if s == nil {
			continue
		}
		if err := s.Put(o); err != nil {
			return err
		}
	}
	return nil
}
