package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// SchemaVersion identifies the JSON document layout so CI regression
// checks can reject documents they do not understand.
const SchemaVersion = "packetchasing-results/v1"

// Report is the aggregated outcome of one sweep. Its JSON encoding is
// the runner's machine-readable output format and deliberately excludes
// anything nondeterministic (wall-clock timings, worker-pool width):
// the same (selection, scale, seed, trials) must always serialize to the
// same bytes.
type Report struct {
	Schema      string             `json:"schema"`
	Scale       string             `json:"scale"`
	Seed        int64              `json:"seed"`
	Trials      int                `json:"trials"`
	Experiments []ExperimentReport `json:"experiments"`
}

// ExperimentReport is one experiment's aggregated entry.
type ExperimentReport struct {
	ID      string          `json:"id"`
	Title   string          `json:"title"`
	OK      bool            `json:"ok"`
	Error   string          `json:"error,omitempty"`
	Metrics []MetricSummary `json:"metrics,omitempty"`

	// Table is the first successful trial's full result (text rendering
	// only — the formatted table is not part of the JSON contract).
	Table experiments.Result `json:"-"`
	// Wall is the summed wall-clock time of this experiment's trials
	// across all workers (reported on stderr, never serialized).
	Wall time.Duration `json:"-"`
}

// MetricSummary is one metric reduced over the experiment's trials.
type MetricSummary struct {
	Name    string        `json:"name"`
	Unit    string        `json:"unit,omitempty"`
	Summary stats.Summary `json:"summary"`
	Values  []float64     `json:"values"`
}

// Failed counts experiments that had at least one failing trial.
func (r *Report) Failed() int {
	n := 0
	for _, e := range r.Experiments {
		if !e.OK {
			n++
		}
	}
	return n
}

// WriteJSON serializes the report as indented, newline-terminated JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText renders the report the way cmd/experiments traditionally
// printed it: one aligned table per experiment (the first trial's), plus
// an aggregate block when multiple trials ran.
func (r *Report) WriteText(w io.Writer) error {
	for _, e := range r.Experiments {
		if !e.OK {
			if _, err := fmt.Fprintf(w, "== %s: FAILED ==\n%s\n", e.ID, e.Error); err != nil {
				return err
			}
			// A partially failed experiment still has the surviving
			// trials' table and aggregate — show them like the JSON does.
			if e.Table.ID == "" {
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
				continue
			}
		}
		if _, err := io.WriteString(w, e.Table.Format()); err != nil {
			return err
		}
		if r.Trials > 1 {
			if _, err := fmt.Fprintf(w, "-- aggregate over %d trials: mean +/- stddev [min, max] --\n", r.Trials); err != nil {
				return err
			}
			width := 0
			for _, m := range e.Metrics {
				if len(m.Name) > width {
					width = len(m.Name)
				}
			}
			for _, m := range e.Metrics {
				unit := ""
				if m.Unit != "" {
					unit = "  (" + m.Unit + ")"
				}
				if _, err := fmt.Fprintf(w, "%-*s  %.6g +/- %.6g  [%.6g, %.6g]%s\n",
					width, m.Name, m.Summary.Mean, m.Summary.StdDev,
					m.Summary.Min, m.Summary.Max, unit); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintf(w, "(%s, %s scale, %d trial(s), %.1fs total wall)\n\n",
			e.ID, r.Scale, r.Trials, e.Wall.Seconds()); err != nil {
			return err
		}
	}
	return nil
}
