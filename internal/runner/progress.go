package runner

import (
	"fmt"
	"io"
	"time"
)

// progressSink is a CellSink that also wants to flush a final line when
// the run stops (normally or on a spent budget).
type progressSink interface {
	CellSink
	Finish()
}

// verbosePrinter emits the historical one-line-per-trial progress output.
// The executor delivers outcomes serially, so the [n/total] counters
// appear in order without a lock.
type verbosePrinter struct {
	w      io.Writer
	total  int
	trials int
	labels map[string]string
	done   int
}

func newVerbosePrinter(w io.Writer, total, trials int, labels map[string]string) *verbosePrinter {
	return &verbosePrinter{w: w, total: total, trials: trials, labels: labels}
}

func (p *verbosePrinter) Put(o TrialOutcome) error {
	p.done++
	status := "ok"
	switch {
	case o.Err != nil && o.Resumed:
		status = "FAIL (checkpointed): " + o.Err.Error()
	case o.Err != nil:
		status = "FAIL: " + o.Err.Error()
	case o.Resumed:
		status = "ok (checkpointed)"
	}
	label := p.labels[o.Unit]
	if label == "" {
		label = o.Unit
	}
	fmt.Fprintf(p.w, "[%d/%d] %s trial %d/%d: %s (%.1fs)\n",
		p.done, p.total, label, o.Trial+1, p.trials, status, o.Wall.Seconds())
	return nil
}

func (p *verbosePrinter) Finish() {}

// throttledPrinter emits a rate-limited summary line — done/total,
// checkpoint hits, failures, elapsed, ETA — instead of one line per
// trial, which is unreadable at paper-scale grids. The final state always
// prints.
type throttledPrinter struct {
	w        io.Writer
	total    int
	interval time.Duration
	now      func() time.Time // injectable clock for tests
	start    time.Time
	last     time.Time
	// execStart is when this invocation's first *executed* trial began
	// (its completion time backdated by its own wall duration); zero until
	// one completes. The ETA extrapolates from it rather than from start:
	// after a large resume, start predates the journal replay, whose wall
	// time says nothing about how fast the remaining trials will go.
	execStart time.Time

	done    int
	resumed int
	failed  int
	printed int // done count at the last emitted line
}

func newThrottledPrinter(w io.Writer, total int) *throttledPrinter {
	now := time.Now
	return &throttledPrinter{
		w:        w,
		total:    total,
		interval: time.Second,
		now:      now,
		start:    now(),
		printed:  -1,
	}
}

func (p *throttledPrinter) Put(o TrialOutcome) error {
	p.done++
	if o.Resumed {
		p.resumed++
	}
	if o.Err != nil {
		p.failed++
	}
	now := p.now()
	if !o.Resumed && p.execStart.IsZero() {
		p.execStart = now.Add(-o.Wall)
	}
	if p.done < p.total && now.Sub(p.last) < p.interval {
		return nil
	}
	p.print(now)
	return nil
}

// Finish flushes the final state if the last Put did not (a spent budget
// stops a run between throttle ticks).
func (p *throttledPrinter) Finish() {
	if p.printed != p.done {
		p.print(p.now())
	}
}

func (p *throttledPrinter) print(now time.Time) {
	p.last = now
	p.printed = p.done
	pct := 0
	if p.total > 0 {
		pct = 100 * p.done / p.total
	}
	line := fmt.Sprintf("progress: %d/%d trials (%d%%)", p.done, p.total, pct)
	if p.resumed > 0 {
		line += fmt.Sprintf(", %d from checkpoint", p.resumed)
	}
	if p.failed > 0 {
		line += fmt.Sprintf(", %d FAILED", p.failed)
	}
	line += ", elapsed " + fmtDur(now.Sub(p.start))
	// ETA extrapolates the per-trial rate from executed (not replayed)
	// trials over the time since the first executed trial began.
	// Checkpoint hits are effectively free, and total elapsed time counts
	// journal-replay wall time that says nothing about execution speed —
	// either would overshoot the first post-resume estimates.
	if executed := p.done - p.resumed; executed > 0 && p.done < p.total && !p.execStart.IsZero() {
		eta := now.Sub(p.execStart) / time.Duration(executed) * time.Duration(p.total-p.done)
		line += ", eta " + fmtDur(eta)
	}
	fmt.Fprintln(p.w, line)
}

// fmtDur renders a duration at second granularity ("1m23s"); sub-second
// runs keep one decimal so short jobs do not all read as "0s".
func fmtDur(d time.Duration) string {
	if d < time.Second {
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
	return d.Round(time.Second).String()
}
