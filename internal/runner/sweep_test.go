package runner

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// fakeSweep measures a deterministic function of (cell, seed) so the
// sweep plumbing can be checked exactly.
func fakeSweep() experiments.Sweep {
	return experiments.Sweep{
		ID:    "fake_sweep",
		Short: "fake sensitivity curve",
		Grid: scenario.Grid{
			{Name: "x", Values: []float64{1, 2}},
			{Name: "y", Values: []float64{10, 20, 30}},
		},
		Run: func(_ experiments.Scale, seed int64, cell scenario.Cell) (experiments.Result, error) {
			x, _ := cell.Value("x")
			y, _ := cell.Value("y")
			res := experiments.Result{ID: "fake_sweep", Title: "fake", Header: []string{"k"}, Rows: [][]string{{"v"}}}
			res.AddMetric("xy", "units", x*y)
			res.AddMetric("seed_mod", "", float64(seed%1000))
			return res, nil
		},
	}
}

func sweepJSON(t *testing.T, sw experiments.Sweep, opts Options) []byte {
	t.Helper()
	rep, err := RunSweep(sw, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepParallelWidthDeterminism is the sweep's core contract: byte-
// identical JSON for any worker-pool width.
func TestSweepParallelWidthDeterminism(t *testing.T) {
	base := Options{Scale: experiments.Demo, Seed: 5, Trials: 3, Parallel: 1}
	serial := sweepJSON(t, fakeSweep(), base)
	for _, width := range []int{2, 8} {
		opts := base
		opts.Parallel = width
		if got := sweepJSON(t, fakeSweep(), opts); !bytes.Equal(serial, got) {
			t.Errorf("sweep JSON differs between -parallel 1 and -parallel %d", width)
		}
	}
}

func TestSweepCellsOrderedAndKeyed(t *testing.T) {
	rep, err := RunSweep(fakeSweep(), Options{Scale: experiments.Demo, Seed: 1, Trials: 2, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SweepSchemaVersion || rep.Sweep != "fake_sweep" {
		t.Fatalf("report header wrong: %+v", rep)
	}
	wantKeys := []string{"x=1,y=10", "x=1,y=20", "x=1,y=30", "x=2,y=10", "x=2,y=20", "x=2,y=30"}
	if len(rep.Cells) != len(wantKeys) {
		t.Fatalf("got %d cells want %d", len(rep.Cells), len(wantKeys))
	}
	for i, c := range rep.Cells {
		if c.Key != wantKeys[i] {
			t.Errorf("cell %d key %q want %q (row-major grid order)", i, c.Key, wantKeys[i])
		}
		if !c.OK {
			t.Errorf("cell %s failed: %s", c.Key, c.Error)
		}
		x, y := c.Coords["x"], c.Coords["y"]
		m := c.Metrics[0]
		if m.Name != "xy" || m.Summary.Mean != x*y || m.Summary.StdDev != 0 {
			t.Errorf("cell %s metric wrong: %+v", c.Key, m)
		}
		// Per-cell seeds must be decorrelated: trials of one cell see the
		// cell's own derived seeds.
		for ti, v := range c.Metrics[1].Values {
			want := float64(CellSeed(1, "fake_sweep", c.Key, ti) % 1000)
			if v != want {
				t.Errorf("cell %s trial %d seed_mod %v want %v", c.Key, ti, v, want)
			}
		}
	}
}

// TestSweepReportCarriesLabels asserts categorical coordinates survive
// into the report: a labeled axis cell must serialize its label alongside
// the numeric coordinate, because the number alone (a registry index)
// changes meaning whenever the registry order does.
func TestSweepReportCarriesLabels(t *testing.T) {
	sw := fakeSweep()
	sw.Grid = scenario.Grid{
		{Name: "defense", Values: []float64{0, 1}, Labels: []string{"none", "no-ddio"}},
		{Name: "y", Values: []float64{10}},
	}
	rep, err := RunSweep(sw, Options{Scale: experiments.Demo, Seed: 1, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("got %d cells want 2", len(rep.Cells))
	}
	for i, want := range []string{"none", "no-ddio"} {
		c := rep.Cells[i]
		if c.Labels["defense"] != want {
			t.Errorf("cell %d labels = %v, want defense=%s", i, c.Labels, want)
		}
		if _, ok := c.Labels["y"]; ok {
			t.Errorf("numeric axis y must not be labeled: %v", c.Labels)
		}
		if c.Coords["defense"] != float64(i) {
			t.Errorf("cell %d numeric coord lost: %v", i, c.Coords)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"labels"`)) {
		t.Error("sweep JSON lacks the labels field")
	}
}

// TestCellSeedsDistinct guards the decorrelation of per-cell trial seeds
// across every registered sweep's whole grid.
func TestCellSeedsDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, sw := range experiments.Sweeps() {
		for _, cell := range sw.Grid.Cells() {
			for ti := 0; ti < 8; ti++ {
				s := CellSeed(1, sw.ID, cell.Key(), ti)
				key := fmt.Sprintf("%s/%s/%d", sw.ID, cell.Key(), ti)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

func TestSweepCellFailureIsolated(t *testing.T) {
	sw := fakeSweep()
	inner := sw.Run
	sw.Run = func(scale experiments.Scale, seed int64, cell scenario.Cell) (experiments.Result, error) {
		if x, _ := cell.Value("x"); x == 2 {
			return experiments.Result{}, errors.New("cell kaput")
		}
		return inner(scale, seed, cell)
	}
	rep, err := RunSweep(sw, Options{Scale: experiments.Demo, Seed: 1, Trials: 2, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 3 {
		t.Fatalf("Failed() = %d want 3 (the x=2 half of the grid)", rep.Failed())
	}
	for _, c := range rep.Cells {
		if x := c.Coords["x"]; x == 2 {
			if c.OK || !strings.Contains(c.Error, "cell kaput") {
				t.Errorf("cell %s should have failed: %+v", c.Key, c)
			}
		} else if !c.OK {
			t.Errorf("healthy cell %s marked failed", c.Key)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FAILED") {
		t.Error("text rendering must surface cell failures")
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	if _, err := RunSweep(experiments.Sweep{ID: "norun", Grid: scenario.Grid{{Name: "a", Values: []float64{1}}}}, Options{}); err == nil {
		t.Error("sweep without Run must error")
	}
	sw := fakeSweep()
	sw.Grid = scenario.Grid{}
	if _, err := RunSweep(sw, Options{}); err == nil {
		t.Error("empty grid must error")
	}
}

func TestSweepMetricCurve(t *testing.T) {
	rep, err := RunSweep(fakeSweep(), Options{Scale: experiments.Demo, Seed: 1, Trials: 1, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	curve := rep.MetricCurve("xy")
	if len(curve) != 6 {
		t.Fatalf("curve has %d points want 6", len(curve))
	}
	want := []float64{10, 20, 30, 20, 40, 60}
	for i, m := range curve {
		if m.Summary.Mean != want[i] {
			t.Errorf("curve[%d] = %v want %v", i, m.Summary.Mean, want[i])
		}
	}
	if pts := rep.MetricCurve("missing"); len(pts) != 0 {
		t.Errorf("unknown metric produced %d points", len(pts))
	}
}

func TestSweepTextRendering(t *testing.T) {
	rep, err := RunSweep(fakeSweep(), Options{Scale: experiments.Demo, Seed: 1, Trials: 2, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== sweep fake_sweep", "x=1,y=10", "xy", "2 trial(s), 6 cell(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
