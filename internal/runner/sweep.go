package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// SweepSchemaVersion identifies the sweep JSON document layout. v2 added
// the per-cell "labels" map: categorical coordinates (defense axes) are
// now identified by name alongside their numeric registry index, so a
// report's meaning no longer shifts when the registry order does.
const SweepSchemaVersion = "packetchasing-sweep/v2"

// SweepReport is the aggregated outcome of one grid sweep. Like Report,
// its JSON encoding excludes everything nondeterministic: for a fixed
// (sweep, scale, seed, trials) the bytes are identical regardless of the
// worker-pool width. Cells appear in the grid's row-major order and carry
// their coordinates, so downstream tooling can rebuild any slice of the
// parameter space without re-deriving the grid.
type SweepReport struct {
	Schema string          `json:"schema"`
	Sweep  string          `json:"sweep"`
	Title  string          `json:"title"`
	Scale  string          `json:"scale"`
	Seed   int64           `json:"seed"`
	Trials int             `json:"trials"`
	Axes   []scenario.Axis `json:"axes"`
	Cells  []CellReport    `json:"cells"`
}

// CellReport is one grid cell's aggregated entry.
type CellReport struct {
	// Key is the cell's canonical coordinate string
	// ("noise_rate=20000,timer_noise=4").
	Key string `json:"key"`
	// Coords is the cell's position as an axis->value map.
	Coords map[string]float64 `json:"coords"`
	// Labels names the cell's categorical coordinates (axis->label, e.g.
	// "defense" -> "adaptive-partition"); absent for purely numeric cells.
	// Coords keeps the numeric registry index for plotting, but the label
	// is the stable identity — indices change with registry order.
	Labels map[string]string `json:"labels,omitempty"`
	OK     bool              `json:"ok"`
	Error  string            `json:"error,omitempty"`
	// Metrics aggregates the cell's trials like an experiment's.
	Metrics []MetricSummary `json:"metrics,omitempty"`

	// Wall is the summed wall-clock time of the cell's trials (stderr
	// reporting only, never serialized).
	Wall time.Duration `json:"-"`
}

// Failed counts cells with at least one failing trial.
func (r *SweepReport) Failed() int {
	n := 0
	for _, c := range r.Cells {
		if !c.OK {
			n++
		}
	}
	return n
}

// MetricCurve extracts one metric's per-cell summaries in grid order — the
// sensitivity curve downstream checks (monotonicity, CI assertions) read.
func (r *SweepReport) MetricCurve(name string) []MetricSummary {
	var out []MetricSummary
	for _, c := range r.Cells {
		for _, m := range c.Metrics {
			if m.Name == name {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

// CellSeed derives the seed for one trial of one grid cell. Seeds are
// decorrelated across sweeps, cells, and trial indices: the label bakes in
// the sweep id and the cell's canonical key.
func CellSeed(root int64, sweepID, cellKey string, trial int) int64 {
	return sim.DeriveSeed(root, fmt.Sprintf("%s/%s/trial%d", sweepID, cellKey, trial))
}

// SweepOfflineSeed derives the offline-phase seed of a phase-split sweep.
// Unlike CellSeed it deliberately excludes the cell key and trial index:
// every cell and trial prepares the same machines for a given machine
// shape, which is what lets a warm run share one offline artifact across
// the entire grid when the swept axes are online-only. Cells that do
// sweep offline-relevant geometry (e.g. ring size) still get distinct
// artifacts via the store's machine fingerprint, not via the seed.
func SweepOfflineSeed(root int64, sweepID string) int64 {
	return sim.DeriveSeed(root, sweepID+"/offline")
}

// runSweepTrial executes one (cell, trial). Phase-split sweeps prepare
// their cell's machines (against the shared store when warm) and measure
// on clones; legacy sweeps run monolithically.
func runSweepTrial(sw experiments.Sweep, scale experiments.Scale, root int64, cell scenario.Cell, trial int, store *experiments.ArtifactStore, rigs *experiments.RigLease) (experiments.Result, error) {
	seed := CellSeed(root, sw.ID, cell.Key(), trial)
	if !sw.Phased() {
		return safeCall(func() (experiments.Result, error) { return sw.Run(scale, seed, cell) })
	}
	return safeCall(func() (experiments.Result, error) {
		art, err := sw.Prepare(experiments.PrepareCtx{
			Scale: scale,
			Seed:  SweepOfflineSeed(root, sw.ID),
			Store: store,
		}, cell)
		if err != nil {
			return experiments.Result{}, err
		}
		return sw.Measure(experiments.MeasureCtx{Scale: scale, Seed: seed, Rigs: rigs}, art, cell)
	})
}

// RunSweep executes every cell of the sweep's grid for opts.Trials trials
// on a pool of opts.Parallel workers. It is the compatibility wrapper
// over runner.New(cfg).RunSweep(sw, job); cell failures (including
// panics) are recorded per cell so one broken corner of the parameter
// space does not discard the rest of the curve.
func RunSweep(sw experiments.Sweep, opts Options) (*SweepReport, error) {
	return New(opts.config()).RunSweep(sw, opts.job())
}

// WriteJSON serializes the sweep report as indented, newline-terminated
// JSON.
func (r *SweepReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText renders the sweep as one aligned table: a row per (cell,
// metric) with the aggregate summary, failures called out inline.
func (r *SweepReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== sweep %s: %s ==\n", r.Sweep, r.Title); err != nil {
		return err
	}
	keyW, nameW := len("cell"), len("metric")
	for _, c := range r.Cells {
		if len(c.Key) > keyW {
			keyW = len(c.Key)
		}
		for _, m := range c.Metrics {
			if len(m.Name) > nameW {
				nameW = len(m.Name)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-*s  mean +/- stddev [min, max]\n", keyW, "cell", nameW, "metric"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if !c.OK {
			if _, err := fmt.Fprintf(w, "%-*s  FAILED: %s\n", keyW, c.Key, c.Error); err != nil {
				return err
			}
			if len(c.Metrics) == 0 {
				continue
			}
		}
		for _, m := range c.Metrics {
			unit := ""
			if m.Unit != "" {
				unit = "  (" + m.Unit + ")"
			}
			if _, err := fmt.Fprintf(w, "%-*s  %-*s  %.6g +/- %.6g  [%.6g, %.6g]%s\n",
				keyW, c.Key, nameW, m.Name, m.Summary.Mean, m.Summary.StdDev,
				m.Summary.Min, m.Summary.Max, unit); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "(%s scale, seed %d, %d trial(s), %d cell(s))\n",
		r.Scale, r.Seed, r.Trials, len(r.Cells))
	return err
}
