// Package runner executes the experiment registry as a concurrent,
// multi-trial sweep. It fans experiments out over a worker pool, runs
// each experiment as T trials with decorrelated per-trial seeds
// (sim.DeriveSeed over "expID/trialN" labels), and reduces the
// per-trial metric values into mean / stddev / min-max summaries.
// Phase-split experiments share one prepared machine across their
// trials (see runTrial); single-shot experiments rebuild per trial.
//
// The runner's determinism contract: for a fixed (selection, scale,
// seed, trials), the aggregated Report — and therefore its JSON encoding
// — is byte-identical regardless of the worker-pool width, of warm/cold
// artifact reuse, and of whether the run was checkpointed, interrupted,
// and resumed. Trials are pure functions of their derived seed, results
// land in pre-assigned slots rather than a completion-ordered list
// (streamed through the CellSink stack — see job.go), and wall-clock
// timings are kept out of the serialized document.
//
// The primary API is runner.New(Config).Run / .RunSweep with a Job spec;
// the package-level Run / RunSweep with Options are thin compatible
// wrappers over it.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// Options configures the package-level Run / RunSweep wrappers: the
// historical single-struct API, kept so existing callers and tests are
// untouched. It maps onto a Config (execution environment, with Verbose
// per-trial progress preserved) plus a Job (what to run); new code and
// anything that wants checkpointing should use runner.New directly.
type Options struct {
	// Scale is the machine scale every trial runs at.
	Scale experiments.Scale
	// Seed is the root seed; per-trial seeds are derived from it.
	Seed int64
	// Trials is the number of trials per experiment (minimum 1). Trials
	// carry decorrelated online seeds; for phase-split experiments they
	// measure the shared trial-0 machine under re-derived ambient
	// randomness (see runTrial), while single-shot experiments rebuild
	// their machine from the trial seed each time.
	Trials int
	// Parallel is the worker-pool width; <= 0 means GOMAXPROCS.
	Parallel int
	// Warm enables offline-artifact reuse for phase-split experiments;
	// see Config.Warm.
	Warm bool
	// ArtifactDir, when non-empty (warm mode only), backs the artifact
	// store with a directory; see Config.ArtifactDir.
	ArtifactDir string
	// Progress, when non-nil, receives one line per completed trial
	// (typically os.Stderr).
	Progress io.Writer
}

// config maps the legacy options onto the Runner's execution config.
// Verbose is forced on: Options.Progress always meant per-trial lines.
func (o Options) config() Config {
	return Config{
		Parallel:    o.Parallel,
		Warm:        o.Warm,
		ArtifactDir: o.ArtifactDir,
		Progress:    o.Progress,
		Verbose:     true,
	}
}

// job extracts the job spec from the legacy options.
func (o Options) job() Job {
	return Job{Scale: o.Scale, Seed: o.Seed, Trials: o.Trials}
}

// defaultParallel is the worker-pool width when none is requested.
func defaultParallel() int { return runtime.GOMAXPROCS(0) }

// TrialSeed derives the seed for one trial of one experiment. Seeds are
// decorrelated across both experiments and trial indices, so trials can
// run in any order on any worker without sharing RNG state.
func TrialSeed(root int64, expID string, trial int) int64 {
	return sim.DeriveSeed(root, fmt.Sprintf("%s/trial%d", expID, trial))
}

// OfflineSeed derives the offline-phase seed for a phase-split
// experiment. It is trial 0's seed: every trial prepares (or reuses) the
// machine trial 0 would build, which keeps a single-trial run
// byte-identical to the historical monolithic Run path — the property the
// golden files pin.
func OfflineSeed(root int64, expID string) int64 {
	return TrialSeed(root, expID, 0)
}

// trialOutcome is one (experiment, trial) slot of the result matrix.
type trialOutcome struct {
	result experiments.Result
	err    error
	wall   time.Duration
}

// safeCall executes one trial closure, converting a panic into an
// ordinary trial error so a single broken experiment cell fails its
// report entry instead of taking down the whole sweep process.
func safeCall(run func() (experiments.Result, error)) (res experiments.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return run()
}

// runTrial executes one (experiment, trial) cell. Phase-split
// experiments go through Prepare (against the shared store when warm)
// and Measure; single-shot experiments run monolithically. Trial 0 of a
// phased experiment is definitionally identical to the monolithic
// Run(TrialSeed(root, id, 0)) — OfflineSeed is trial 0's seed and Run is
// Prepare∘Measure — which is what keeps the golden files valid. Trials
// >= 1 measure trial 0's machine under re-derived ambient randomness by
// design ("prepare once, measure many"); that is a semantic choice, not
// an optimization, and holds in warm and cold mode alike — cold merely
// rebuilds the same trial-0 machine each time instead of caching it.
func runTrial(e experiments.Experiment, scale experiments.Scale, root int64, trial int, store *experiments.ArtifactStore, rigs *experiments.RigLease) (experiments.Result, error) {
	seed := TrialSeed(root, e.ID, trial)
	if !e.Phased() {
		return safeCall(func() (experiments.Result, error) { return e.Run(scale, seed) })
	}
	return safeCall(func() (experiments.Result, error) {
		art, err := e.Prepare(experiments.PrepareCtx{
			Scale: scale,
			Seed:  OfflineSeed(root, e.ID),
			Store: store,
		})
		if err != nil {
			return experiments.Result{}, err
		}
		return e.Measure(experiments.MeasureCtx{Scale: scale, Seed: seed, Rigs: rigs}, art)
	})
}

// Run executes every selected experiment for opts.Trials trials on a
// pool of opts.Parallel workers and aggregates the outcome. It is the
// compatibility wrapper over runner.New(cfg).Run(selected, job); the
// returned error only reports harness-level misuse (empty selection) —
// individual experiment failures are recorded per experiment in the
// Report so one broken artifact does not discard the rest of a sweep.
func Run(selected []experiments.Experiment, opts Options) (*Report, error) {
	return New(opts.config()).Run(selected, opts.job())
}
