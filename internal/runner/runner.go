// Package runner executes the experiment registry as a concurrent,
// multi-trial sweep. It fans experiments out over a worker pool, runs
// each experiment as T trials with decorrelated per-trial seeds
// (sim.DeriveSeed over "expID/trialN" labels), and reduces the
// per-trial metric values into mean / stddev / min-max summaries.
// Phase-split experiments share one prepared machine across their
// trials (see runTrial); single-shot experiments rebuild per trial.
//
// The runner's determinism contract: for a fixed (selection, scale,
// seed, trials), the aggregated Report — and therefore its JSON encoding
// — is byte-identical regardless of the worker-pool width. Trials are
// pure functions of their derived seed, results land in pre-assigned
// slots rather than a completion-ordered list, and wall-clock timings
// are kept out of the serialized document.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configures a sweep.
type Options struct {
	// Scale is the machine scale every trial runs at.
	Scale experiments.Scale
	// Seed is the root seed; per-trial seeds are derived from it.
	Seed int64
	// Trials is the number of trials per experiment (minimum 1). Trials
	// carry decorrelated online seeds; for phase-split experiments they
	// measure the shared trial-0 machine under re-derived ambient
	// randomness (see runTrial), while single-shot experiments rebuild
	// their machine from the trial seed each time.
	Trials int
	// Parallel is the worker-pool width; <= 0 means GOMAXPROCS.
	Parallel int
	// Warm enables offline-artifact reuse for phase-split experiments:
	// one shared content-addressed store deduplicates Prepare work across
	// trials (and, in RunSweep, across grid cells). A cold run (the zero
	// value) rebuilds every artifact per trial. Warm and cold runs of the
	// same (selection, scale, seed, trials) produce byte-identical
	// reports; warm is purely a wall-clock optimization.
	Warm bool
	// ArtifactDir, when non-empty (warm mode only), backs the artifact
	// store with a directory: offline artifacts are persisted there,
	// content-addressed by the same key as the in-memory store, so
	// repeated invocations skip offline phases entirely. Like Warm, it
	// never changes report bytes.
	ArtifactDir string
	// Progress, when non-nil, receives one line per completed trial
	// (typically os.Stderr).
	Progress io.Writer
}

// defaultParallel is the worker-pool width when none is requested.
func defaultParallel() int { return runtime.GOMAXPROCS(0) }

// TrialSeed derives the seed for one trial of one experiment. Seeds are
// decorrelated across both experiments and trial indices, so trials can
// run in any order on any worker without sharing RNG state.
func TrialSeed(root int64, expID string, trial int) int64 {
	return sim.DeriveSeed(root, fmt.Sprintf("%s/trial%d", expID, trial))
}

// OfflineSeed derives the offline-phase seed for a phase-split
// experiment. It is trial 0's seed: every trial prepares (or reuses) the
// machine trial 0 would build, which keeps a single-trial run
// byte-identical to the historical monolithic Run path — the property the
// golden files pin.
func OfflineSeed(root int64, expID string) int64 {
	return TrialSeed(root, expID, 0)
}

// newStore builds the artifact store the options describe: nil for cold
// runs, in-memory for plain warm runs, disk-backed when ArtifactDir is
// set.
func (o Options) newStore() (*experiments.ArtifactStore, error) {
	if !o.Warm {
		if o.ArtifactDir != "" {
			return nil, fmt.Errorf("runner: artifact dir requires warm mode")
		}
		return nil, nil
	}
	if o.ArtifactDir != "" {
		return experiments.NewDiskArtifactStore(o.ArtifactDir)
	}
	return experiments.NewArtifactStore(), nil
}

// trialOutcome is one (experiment, trial) slot of the result matrix.
type trialOutcome struct {
	result experiments.Result
	err    error
	wall   time.Duration
}

// safeCall executes one trial closure, converting a panic into an
// ordinary trial error so a single broken experiment cell fails its
// report entry instead of taking down the whole sweep process.
func safeCall(run func() (experiments.Result, error)) (res experiments.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return run()
}

// runTrial executes one (experiment, trial) cell. Phase-split
// experiments go through Prepare (against the shared store when warm)
// and Measure; single-shot experiments run monolithically. Trial 0 of a
// phased experiment is definitionally identical to the monolithic
// Run(TrialSeed(root, id, 0)) — OfflineSeed is trial 0's seed and Run is
// Prepare∘Measure — which is what keeps the golden files valid. Trials
// >= 1 measure trial 0's machine under re-derived ambient randomness by
// design ("prepare once, measure many"); that is a semantic choice, not
// an optimization, and holds in warm and cold mode alike — cold merely
// rebuilds the same trial-0 machine each time instead of caching it.
func runTrial(e experiments.Experiment, opts Options, trial int, store *experiments.ArtifactStore) (experiments.Result, error) {
	seed := TrialSeed(opts.Seed, e.ID, trial)
	if !e.Phased() {
		return safeCall(func() (experiments.Result, error) { return e.Run(opts.Scale, seed) })
	}
	return safeCall(func() (experiments.Result, error) {
		art, err := e.Prepare(experiments.PrepareCtx{
			Scale: opts.Scale,
			Seed:  OfflineSeed(opts.Seed, e.ID),
			Store: store,
		})
		if err != nil {
			return experiments.Result{}, err
		}
		return e.Measure(experiments.MeasureCtx{Scale: opts.Scale, Seed: seed}, art)
	})
}

// Run executes every selected experiment for opts.Trials trials on a
// pool of opts.Parallel workers and aggregates the outcome. The returned
// error only reports harness-level misuse (empty selection); individual
// experiment failures are recorded per experiment in the Report so one
// broken artifact does not discard the rest of a sweep.
func Run(selected []experiments.Experiment, opts Options) (*Report, error) {
	if len(selected) == 0 {
		return nil, fmt.Errorf("runner: no experiments selected")
	}
	if opts.Trials < 1 {
		opts.Trials = 1
	}
	if opts.Parallel <= 0 {
		opts.Parallel = defaultParallel()
	}

	type job struct{ ei, ti int }
	outcomes := make([][]trialOutcome, len(selected))
	for i := range outcomes {
		outcomes[i] = make([]trialOutcome, opts.Trials)
	}

	jobs := make(chan job)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	total := len(selected) * opts.Trials

	store, err := opts.newStore()
	if err != nil {
		return nil, err
	}

	for w := 0; w < opts.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				e := selected[j.ei]
				start := time.Now()
				res, err := runTrial(e, opts, j.ti, store)
				wall := time.Since(start)
				outcomes[j.ei][j.ti] = trialOutcome{result: res, err: err, wall: wall}
				status := "ok"
				if err != nil {
					status = "FAIL: " + err.Error()
				}
				// Increment and print under one critical section so the
				// [n/total] counters appear in order on stderr.
				progressMu.Lock()
				done++
				if opts.Progress != nil {
					fmt.Fprintf(opts.Progress, "[%d/%d] %s trial %d/%d: %s (%.1fs)\n",
						done, total, e.ID, j.ti+1, opts.Trials, status, wall.Seconds())
				}
				progressMu.Unlock()
			}
		}()
	}
	for ei := range selected {
		for ti := 0; ti < opts.Trials; ti++ {
			jobs <- job{ei, ti}
		}
	}
	close(jobs)
	wg.Wait()

	rep := &Report{
		Schema: SchemaVersion,
		Scale:  opts.Scale.String(),
		Seed:   opts.Seed,
		Trials: opts.Trials,
	}
	for ei, e := range selected {
		rep.Experiments = append(rep.Experiments, aggregate(e.ID, e.Short, outcomes[ei]))
	}
	return rep, nil
}

// aggregate reduces one experiment's (or sweep cell's) trial outcomes into
// a report entry. Metric order follows the first successful trial (every
// trial runs the same code, so the set and order of metric names match);
// the values slice is ordered by trial index.
func aggregate(id, title string, trials []trialOutcome) ExperimentReport {
	er := ExperimentReport{ID: id, Title: title, OK: true}
	first := -1
	for ti, t := range trials {
		er.Wall += t.wall
		if t.err != nil {
			if er.OK {
				er.OK = false
				er.Error = fmt.Sprintf("trial %d: %v", ti, t.err)
			}
			continue
		}
		if first < 0 {
			first = ti
		}
	}
	if first < 0 {
		return er
	}
	er.Table = trials[first].result
	if title := trials[first].result.Title; title != "" {
		er.Title = title
	}
	// Metrics are matched across trials by (name, occurrence ordinal) so
	// an accidental duplicate name aggregates positionally instead of
	// collapsing every occurrence onto the first one's values.
	type key struct {
		name string
		ord  int
	}
	byKey := func(ms []experiments.Metric) map[key]float64 {
		seen := map[string]int{}
		out := make(map[key]float64, len(ms))
		for _, m := range ms {
			out[key{m.Name, seen[m.Name]}] = m.Value
			seen[m.Name]++
		}
		return out
	}
	trialValues := make([]map[key]float64, len(trials))
	for ti, t := range trials {
		if t.err == nil {
			trialValues[ti] = byKey(t.result.Metrics)
		}
	}
	ord := map[string]int{}
	for _, m := range trials[first].result.Metrics {
		k := key{m.Name, ord[m.Name]}
		ord[m.Name]++
		values := make([]float64, 0, len(trials))
		for _, tv := range trialValues {
			if tv == nil {
				continue
			}
			if v, ok := tv[k]; ok {
				values = append(values, v)
			}
		}
		er.Metrics = append(er.Metrics, MetricSummary{
			Name:    m.Name,
			Unit:    m.Unit,
			Summary: stats.Summarize(values),
			Values:  values,
		})
	}
	return er
}
