// Package scenario turns the testbed's scattered knobs into declarative,
// nameable experiment conditions. A Spec captures everything that defines
// the world an attack runs in — cache and NIC geometry, background-noise
// level, timer granularity, and a composable traffic mix — so sensitivity
// studies sweep structured values instead of hand-editing option structs.
// Named presets model the paper's deployment situations (§VI): an idle
// server, a busy multi-tenant box, bursty interactive web traffic, and the
// paced environment a covert channel prefers.
//
// The companion Grid type (grid.go) enumerates cartesian products of
// scenario axes for the runner's sweep mode.
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/defense"
	"repro/internal/netmodel"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// FlowKind selects a traffic generator family for one flow of a mix.
type FlowKind string

const (
	// FlowConstant is fixed-size, fixed-rate traffic (the paper's
	// broadcast helper streams).
	FlowConstant FlowKind = "constant"
	// FlowPoisson is memoryless traffic with sizes drawn from a palette.
	FlowPoisson FlowKind = "poisson"
)

// Flow is one stream of a scenario's traffic mix.
type Flow struct {
	// Kind selects the generator; the zero value is FlowConstant.
	Kind FlowKind
	// Sizes is the frame-size palette in bytes. Constant flows use
	// Sizes[0]; Poisson flows draw uniformly from the whole palette.
	Sizes []int
	// Rate is the mean packet rate in frames/second.
	Rate float64
	// Count bounds the stream length; < 0 means unbounded.
	Count int
	// BurstOn and BurstOff, when BurstOff > 0, gate the flow into on/off
	// windows of the given durations in seconds of simulated time (web
	// page loads separated by think time). Window lengths are jittered.
	BurstOn, BurstOff float64
}

// Spec is a declarative experiment condition. The zero value of every
// geometry field means "the paper machine's value", so a Spec only states
// what a scenario changes.
type Spec struct {
	// Name identifies the scenario in reports and derived RNG streams.
	Name string

	// CacheSlices, CacheSetsPerSlice, CacheWays select the LLC geometry;
	// all zero selects the paper's 8x2048x20 (20 MB) LLC.
	CacheSlices, CacheSetsPerSlice, CacheWays int
	// RingSize is the NIC rx descriptor count; 0 selects the IGB default
	// (256).
	RingSize int
	// MemBytes is the physical memory size; 0 selects 1 GiB.
	MemBytes uint64

	// NoiseRate is the background process's cache-line touch rate in
	// accesses/second (ambient co-tenant activity).
	NoiseRate float64
	// TimerNoise is the magnitude of the spy timer's one-sided jitter in
	// cycles: each latency reading gains a uniform value in
	// [0, 2*TimerNoise] (mean TimerNoise; a coarse timer only ever
	// over-reports). 0 = perfect timer.
	TimerNoise uint64

	// Flows is the scenario's background traffic mix. Experiments add
	// their own attack stream on top (see BuildTraffic / MixWith).
	Flows []Flow

	// Defense is the platform mitigation the machine runs under; nil is
	// the vulnerable stock machine. The defense is applied to the built
	// Options after every other field — it reshapes the machine for the
	// offline and online phases alike (a platform defense cannot be
	// prepared around), survives Offline() normalization, and
	// participates in Fingerprint(), so warm-start clones never cross a
	// defense boundary.
	Defense defense.Defense
}

// WithDefense returns a copy of the spec running under the given
// mitigation (nil clears it).
func (s Spec) WithDefense(d defense.Defense) Spec {
	s.Defense = d
	return s
}

// DefenseTag is the content-address component the defense contributes to
// warm-start artifact keys: the defense's canonical fingerprint, or ""
// for the stock machine. It exists separately from Fingerprint because
// some defenses (timer coarsening) change only knobs that
// testbed.Options.OfflineFingerprint deliberately excludes, yet still
// shape the offline phase.
func (s Spec) DefenseTag() string {
	if s.Defense == nil {
		return ""
	}
	return s.Defense.Fingerprint()
}

// Baseline returns the machine the experiment registry has always run at:
// the paper machine when paper is true, otherwise the structurally
// faithful scaled demo machine (2 slices x 2048 sets x 8 ways, 64-buffer
// ring). No background flows — experiments install their own traffic.
func Baseline(paper bool) Spec {
	s := Spec{Name: "baseline", NoiseRate: 20_000, TimerNoise: 4}
	if !paper {
		s.Name = "baseline-demo"
		s.CacheSlices, s.CacheSetsPerSlice, s.CacheWays = 2, 2048, 8
		s.RingSize = 64
	}
	return s
}

// Preset returns a named scenario, ok=false for unknown names. The presets
// model the deployment situations the paper's sensitivity discussion
// spans. Each exists at two scales: the bare name selects the demo
// machine; the "-paper" suffix (e.g. "busy-multi-tenant-paper") selects
// the full 20 MB / 8-slice / 256-descriptor paper machine, so sweeps can
// run at paper scale without hand-built Specs.
func Preset(name string) (Spec, bool) {
	base, paper := name, false
	if n, ok := strings.CutSuffix(name, "-paper"); ok {
		base, paper = n, true
	}
	s, ok := presetDemo(base)
	if !ok {
		return Spec{}, false
	}
	s.Name = name
	if paper {
		s = s.AtPaperScale()
		s.Name = name
	}
	return s, true
}

// presetDemo builds the demo-geometry body of a preset.
func presetDemo(name string) (Spec, bool) {
	s := Baseline(false)
	s.Name = name
	switch name {
	case "idle-server":
		// A mostly quiet machine: sparse keepalive traffic, little cache
		// churn, a tight timer — the attack's best case.
		s.NoiseRate = 2_000
		s.TimerNoise = 2
		s.Flows = []Flow{
			{Kind: FlowPoisson, Sizes: []int{64, 128}, Rate: 1_000, Count: -1},
		}
	case "busy-multi-tenant":
		// Heavy co-tenant cache pressure plus three independent traffic
		// classes competing for the rx ring.
		s.NoiseRate = 400_000
		s.TimerNoise = 8
		s.Flows = []Flow{
			{Kind: FlowPoisson, Sizes: []int{64, 128, 256}, Rate: 40_000, Count: -1},
			{Kind: FlowPoisson, Sizes: []int{512, 1024, 1514}, Rate: 15_000, Count: -1},
			{Kind: FlowConstant, Sizes: []int{64}, Rate: 5_000, Count: -1},
		}
	case "bursty-web":
		// Interactive web serving: MTU-heavy bursts (page loads) separated
		// by idle think time, plus a trickle of small control packets.
		s.NoiseRate = 50_000
		s.Flows = []Flow{
			{Kind: FlowPoisson, Sizes: []int{1514, 1514, 512, 256}, Rate: 30_000,
				Count: -1, BurstOn: 0.002, BurstOff: 0.008},
			{Kind: FlowPoisson, Sizes: []int{64}, Rate: 2_000, Count: -1},
		}
	case "paced-covert":
		// The covert channel's preferred environment: no competing flows,
		// low ambient noise, a clean timer. The trojan's paced stream is
		// installed by the covert experiment itself.
		s.NoiseRate = 5_000
		s.TimerNoise = 2
	default:
		return Spec{}, false
	}
	return s, true
}

// PresetNames lists the preset names in a stable order: every demo preset
// followed by its paper-scale variant.
func PresetNames() []string {
	demo := []string{"idle-server", "busy-multi-tenant", "bursty-web", "paced-covert"}
	out := append([]string(nil), demo...)
	for _, n := range demo {
		out = append(out, n+"-paper")
	}
	return out
}

// AtPaperScale lifts a spec onto the full paper machine: the 20 MB
// 8x2048x20 LLC, the 256-descriptor IGB ring, and default memory. All
// zero-value geometry fields mean exactly that (see Spec), so lifting is
// clearing the demo overrides. Environment and traffic are preserved.
func (s Spec) AtPaperScale() Spec {
	s.CacheSlices, s.CacheSetsPerSlice, s.CacheWays = 0, 0, 0
	s.RingSize = 0
	s.MemBytes = 0
	if !strings.HasSuffix(s.Name, "-paper") {
		s.Name += "-paper"
	}
	return s
}

// Validate checks the spec is buildable.
func (s Spec) Validate() error {
	geom := []int{s.CacheSlices, s.CacheSetsPerSlice, s.CacheWays}
	zero, set := 0, 0
	for _, v := range geom {
		if v == 0 {
			zero++
		} else if v > 0 {
			set++
		} else {
			return fmt.Errorf("scenario %q: negative cache geometry", s.Name)
		}
	}
	if zero != len(geom) && set != len(geom) {
		return fmt.Errorf("scenario %q: cache geometry must be fully specified or fully defaulted", s.Name)
	}
	if s.RingSize < 0 {
		return fmt.Errorf("scenario %q: negative ring size", s.Name)
	}
	if s.NoiseRate < 0 {
		return fmt.Errorf("scenario %q: negative noise rate", s.Name)
	}
	for i, f := range s.Flows {
		switch f.Kind {
		case FlowConstant, FlowPoisson, "":
		default:
			return fmt.Errorf("scenario %q: flow %d has unknown kind %q", s.Name, i, f.Kind)
		}
		if f.Rate <= 0 {
			return fmt.Errorf("scenario %q: flow %d rate must be positive", s.Name, i)
		}
		if len(f.Sizes) == 0 {
			return fmt.Errorf("scenario %q: flow %d has no sizes", s.Name, i)
		}
		for _, sz := range f.Sizes {
			if sz < netmodel.MinFrameSize || sz > netmodel.MaxFrameSize {
				return fmt.Errorf("scenario %q: flow %d size %d outside [%d,%d]",
					s.Name, i, sz, netmodel.MinFrameSize, netmodel.MaxFrameSize)
			}
		}
		if f.BurstOff > 0 && f.BurstOn <= 0 {
			return fmt.Errorf("scenario %q: flow %d bursty with zero on-window", s.Name, i)
		}
	}
	return nil
}

// Options builds the testbed options the spec describes. This is the only
// path from a scenario to a machine: experiments that used to assemble
// testbed.Options by hand now go through a Spec.
func (s Spec) Options(seed int64) testbed.Options {
	opts := testbed.DefaultOptions(seed)
	if s.CacheSlices > 0 {
		opts.Cache = cache.ScaledConfig(s.CacheSlices, s.CacheSetsPerSlice, s.CacheWays)
	} else {
		opts.Cache = cache.PaperConfig()
	}
	opts.NIC = nic.DefaultConfig()
	if s.RingSize > 0 {
		opts.NIC.RingSize = s.RingSize
	}
	if s.MemBytes > 0 {
		opts.MemBytes = s.MemBytes
	}
	opts.NoiseRate = s.NoiseRate
	opts.TimerNoise = s.TimerNoise
	if s.Defense != nil {
		s.Defense.Apply(&opts)
	}
	return opts
}

// OnlineEnv returns the environment knobs the online (measurement) phase
// runs under: the spec's noise rate and timer jitter with the defense's
// overrides applied. Clones restored from an offline snapshot apply these
// rather than the raw spec fields, so a timer-coarsening defense is not
// silently undone by a sweep cell's reference timer value.
func (s Spec) OnlineEnv() (noiseRate float64, timerNoise uint64) {
	opts := testbed.Options{NoiseRate: s.NoiseRate, TimerNoise: s.TimerNoise}
	if s.Defense != nil {
		s.Defense.Apply(&opts)
	}
	return opts.NoiseRate, opts.TimerNoise
}

// Reference environment the offline phase of a phase-split experiment
// runs under. These match Baseline: the attacker prepares (builds eviction
// sets, calibrates) in the conditions it can arrange, and only the online
// measurement phase faces a scenario's swept noise and timer conditions.
const (
	OfflineNoiseRate  = 20_000
	OfflineTimerNoise = 4
)

// Offline returns the spec the offline phase runs at: same machine
// geometry, but the reference noise/timer environment and no background
// flows. Two scenario cells whose Offline specs have equal Fingerprints
// (and equal offline seeds) share one prepared machine.
func (s Spec) Offline() Spec {
	s.NoiseRate = OfflineNoiseRate
	s.TimerNoise = OfflineTimerNoise
	s.Flows = nil
	return s
}

// Fingerprint canonically identifies the offline-relevant machine shape
// this spec describes — geometry, driver configuration, memory size, and
// the platform defense, with defaults resolved — and deliberately ignores
// the name, the environment knobs (NoiseRate, TimerNoise), and the
// traffic mix. It is the content-address half of the offline artifact
// store's key. The defense tag rides alongside the option fingerprint
// because a defense may shape the offline phase through knobs the option
// fingerprint excludes (see DefenseTag).
func (s Spec) Fingerprint() string {
	fp := s.Options(0).OfflineFingerprint()
	if tag := s.DefenseTag(); tag != "" {
		fp += "|defense=" + tag
	}
	return fp
}

// NewTestbed validates the spec, builds its machine, and installs the
// scenario's traffic mix (when it has one) starting at cycle 0.
func (s Spec) NewTestbed(seed int64) (*testbed.Testbed, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tb, err := testbed.New(s.Options(seed))
	if err != nil {
		return nil, err
	}
	if src := s.BuildTraffic(seed, 0); src != nil {
		tb.SetTraffic(src)
	}
	return tb, nil
}

// BuildTraffic assembles the scenario's flow mix as one arrival-ordered
// Source on a shared 1 GbE wire, starting around cycle start. It returns
// nil when the scenario has no flows. Each flow draws from its own derived
// RNG stream, so adding a flow never perturbs the others.
func (s Spec) BuildTraffic(seed int64, start uint64) netmodel.Source {
	if len(s.Flows) == 0 {
		return nil
	}
	wire := netmodel.NewWire(netmodel.GigabitRate)
	sources := make([]netmodel.Source, len(s.Flows))
	for i, f := range s.Flows {
		rng := sim.Derive(seed, fmt.Sprintf("scenario/%s/flow%d", s.Name, i))
		sources[i] = f.build(wire, rng, start)
	}
	if len(sources) == 1 {
		return sources[0]
	}
	return netmodel.NewMixSource(sources...)
}

// MixWith combines an experiment's own stream with the scenario's
// background mix. With no background flows the stream passes through
// untouched.
func (s Spec) MixWith(src netmodel.Source, seed int64, start uint64) netmodel.Source {
	bg := s.BuildTraffic(seed, start)
	if bg == nil {
		return src
	}
	return netmodel.NewMixSource(src, bg)
}

// build assembles one flow on the shared wire.
func (f Flow) build(wire *netmodel.Wire, rng *sim.RNG, start uint64) netmodel.Source {
	var src netmodel.Source
	switch f.Kind {
	case FlowPoisson:
		src = netmodel.NewPoissonSource(wire, f.Sizes, f.Rate, rng, start, f.Count)
	default:
		src = netmodel.NewConstantSource(wire, f.Sizes[0], f.Rate, start, f.Count)
	}
	if f.BurstOff > 0 {
		src = netmodel.NewBurstySource(src, sim.Cycles(f.BurstOn), sim.Cycles(f.BurstOff), rng)
	}
	return src
}
