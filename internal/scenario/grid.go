package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Axis is one swept scenario parameter: a name and the values it takes.
// Well-known names (see WithCell) map directly onto Spec fields; other
// names are interpreted by the sweep experiment itself.
type Axis struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Grid is an ordered list of axes whose cartesian product defines the
// cells of a parameter sweep.
type Grid []Axis

// Validate checks the grid is enumerable.
func (g Grid) Validate() error {
	if len(g) == 0 {
		return fmt.Errorf("grid: no axes")
	}
	seen := map[string]bool{}
	for _, a := range g {
		if a.Name == "" {
			return fmt.Errorf("grid: axis with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("grid: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("grid: axis %q has no values", a.Name)
		}
	}
	return nil
}

// Size returns the number of cells in the cartesian product.
func (g Grid) Size() int {
	n := 1
	for _, a := range g {
		n *= len(a.Values)
	}
	return n
}

// Cells enumerates the cartesian product in row-major order: the last axis
// varies fastest. The order is part of the sweep report's determinism
// contract, so it must never depend on anything but the grid itself.
func (g Grid) Cells() []Cell {
	axes := make([]string, len(g))
	for i, a := range g {
		axes[i] = a.Name
	}
	cells := make([]Cell, 0, g.Size())
	idx := make([]int, len(g))
	for {
		values := make([]float64, len(g))
		for i, a := range g {
			values[i] = a.Values[idx[i]]
		}
		cells = append(cells, Cell{axes: axes, values: values})
		i := len(g) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(g[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return cells
		}
	}
}

// Cell is one point of a grid: an ordered list of (axis, value) pairs.
type Cell struct {
	axes   []string
	values []float64
}

// NewCell builds a cell directly (tests and hand-rolled sweeps).
func NewCell(axes []string, values []float64) Cell {
	return Cell{axes: axes, values: values}
}

// Key renders the cell as a stable coordinate string, e.g.
// "noise_rate=20000,timer_noise=4". Axis order follows the grid, and
// values use the shortest exact float form, so the key is deterministic
// and usable as a map key, a report key, and an RNG derivation label.
func (c Cell) Key() string {
	var b strings.Builder
	for i, a := range c.axes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(c.values[i], 'g', -1, 64))
	}
	return b.String()
}

// Value returns the cell's value on the named axis.
func (c Cell) Value(name string) (float64, bool) {
	for i, a := range c.axes {
		if a == name {
			return c.values[i], true
		}
	}
	return 0, false
}

// Coords returns the cell as an axis->value map (JSON reporting; Go
// marshals maps with sorted keys, so the encoding is deterministic).
func (c Cell) Coords() map[string]float64 {
	m := make(map[string]float64, len(c.axes))
	for i, a := range c.axes {
		m[a] = c.values[i]
	}
	return m
}

// Well-known axis names WithCell maps onto Spec fields.
const (
	AxisNoiseRate  = "noise_rate"
	AxisTimerNoise = "timer_noise"
	AxisRingSize   = "ring_size"
)

// WithCell returns a copy of the spec with the cell's well-known axes
// applied. Axes the spec does not model (e.g. a sweep-private packet-rate
// axis) are left for the sweep's own Run to read via Value.
func (s Spec) WithCell(c Cell) Spec {
	if v, ok := c.Value(AxisNoiseRate); ok {
		s.NoiseRate = v
	}
	if v, ok := c.Value(AxisTimerNoise); ok {
		s.TimerNoise = uint64(v)
	}
	if v, ok := c.Value(AxisRingSize); ok {
		s.RingSize = int(v)
	}
	return s
}
