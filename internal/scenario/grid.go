package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/defense"
)

// Axis is one swept scenario parameter: a name and the values it takes.
// Well-known names (see WithCell) map directly onto Spec fields; other
// names are interpreted by the sweep experiment itself.
type Axis struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
	// Labels, when non-empty, names each value of a categorical axis
	// (len(Labels) == len(Values)); cell keys render the label instead of
	// the number, so a defense axis reads "defense=adaptive-partition"
	// rather than "defense=6". Values remain the numeric coordinates
	// (registry indices for the defense axis) in Coords and JSON.
	Labels []string `json:"labels,omitempty"`
}

// Grid is an ordered list of axes whose cartesian product defines the
// cells of a parameter sweep.
type Grid []Axis

// Validate checks the grid is enumerable.
func (g Grid) Validate() error {
	if len(g) == 0 {
		return fmt.Errorf("grid: no axes")
	}
	seen := map[string]bool{}
	for _, a := range g {
		if a.Name == "" {
			return fmt.Errorf("grid: axis with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("grid: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("grid: axis %q has no values", a.Name)
		}
		if len(a.Labels) > 0 && len(a.Labels) != len(a.Values) {
			return fmt.Errorf("grid: axis %q has %d labels for %d values",
				a.Name, len(a.Labels), len(a.Values))
		}
	}
	return nil
}

// Size returns the number of cells in the cartesian product.
func (g Grid) Size() int {
	n := 1
	for _, a := range g {
		n *= len(a.Values)
	}
	return n
}

// Cells enumerates the cartesian product in row-major order: the last axis
// varies fastest. The order is part of the sweep report's determinism
// contract, so it must never depend on anything but the grid itself.
func (g Grid) Cells() []Cell {
	axes := make([]string, len(g))
	for i, a := range g {
		axes[i] = a.Name
	}
	labeled := false
	for _, a := range g {
		if len(a.Labels) > 0 {
			labeled = true
		}
	}
	cells := make([]Cell, 0, g.Size())
	idx := make([]int, len(g))
	for {
		values := make([]float64, len(g))
		var labels []string
		if labeled {
			labels = make([]string, len(g))
		}
		for i, a := range g {
			values[i] = a.Values[idx[i]]
			if len(a.Labels) > 0 {
				labels[i] = a.Labels[idx[i]]
			}
		}
		cells = append(cells, Cell{axes: axes, values: values, labels: labels})
		i := len(g) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(g[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return cells
		}
	}
}

// Cell is one point of a grid: an ordered list of (axis, value) pairs,
// optionally with a display label per categorical coordinate.
type Cell struct {
	axes   []string
	values []float64
	labels []string // empty, or parallel to values; "" = numeric axis
}

// NewCell builds a cell directly (tests and hand-rolled sweeps).
func NewCell(axes []string, values []float64) Cell {
	return Cell{axes: axes, values: values}
}

// NewLabeledCell builds a cell with per-coordinate labels ("" entries
// render numerically).
func NewLabeledCell(axes []string, values []float64, labels []string) Cell {
	return Cell{axes: axes, values: values, labels: labels}
}

// Key renders the cell as a stable coordinate string, e.g.
// "noise_rate=20000,timer_noise=4" or "defense=adaptive-partition". Axis
// order follows the grid; numeric values use the shortest exact float
// form and labeled coordinates use their label, so the key is
// deterministic and usable as a map key, a report key, and an RNG
// derivation label.
func (c Cell) Key() string {
	var b strings.Builder
	for i, a := range c.axes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a)
		b.WriteByte('=')
		if i < len(c.labels) && c.labels[i] != "" {
			b.WriteString(c.labels[i])
		} else {
			b.WriteString(strconv.FormatFloat(c.values[i], 'g', -1, 64))
		}
	}
	return b.String()
}

// Label returns the cell's label on the named axis ("" and false when the
// axis is absent or unlabeled).
func (c Cell) Label(name string) (string, bool) {
	for i, a := range c.axes {
		if a == name {
			if i < len(c.labels) && c.labels[i] != "" {
				return c.labels[i], true
			}
			return "", false
		}
	}
	return "", false
}

// Value returns the cell's value on the named axis.
func (c Cell) Value(name string) (float64, bool) {
	for i, a := range c.axes {
		if a == name {
			return c.values[i], true
		}
	}
	return 0, false
}

// Coords returns the cell as an axis->value map (JSON reporting; Go
// marshals maps with sorted keys, so the encoding is deterministic).
// Categorical axes appear here as their numeric coordinates (e.g. defense
// registry indices) — pair with Labels, which carries the meaning; the
// index alone silently changes whenever the registry order does.
func (c Cell) Coords() map[string]float64 {
	m := make(map[string]float64, len(c.axes))
	for i, a := range c.axes {
		m[a] = c.values[i]
	}
	return m
}

// Labels returns the cell's categorical coordinates as an axis->label map
// (nil when no axis is labeled). Sweep reports emit it alongside Coords so
// a defense cell is identified by its registry *name*, not just an index
// whose meaning shifts with registry order.
func (c Cell) Labels() map[string]string {
	var m map[string]string
	for i, a := range c.axes {
		if i < len(c.labels) && c.labels[i] != "" {
			if m == nil {
				m = make(map[string]string)
			}
			m[a] = c.labels[i]
		}
	}
	return m
}

// Well-known axis names WithCell maps onto Spec fields.
const (
	AxisNoiseRate  = "noise_rate"
	AxisTimerNoise = "timer_noise"
	AxisRingSize   = "ring_size"
	AxisDefense    = "defense"
)

// DefenseAxis builds the categorical defense axis: values are defense
// registry indices, labels are registry names. With no arguments the
// axis spans the whole registry; otherwise it spans the named defenses
// in the given order. Unknown names panic — a sweep axis is always
// assembled from literals, so a typo is a programming error.
func DefenseAxis(names ...string) Axis {
	all := defense.All()
	if len(names) == 0 {
		names = defense.Names()
	}
	ax := Axis{Name: AxisDefense}
	for _, n := range names {
		idx := -1
		for i, d := range all {
			if d.Name() == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic(fmt.Sprintf("scenario: unknown defense %q in axis", n))
		}
		ax.Values = append(ax.Values, float64(idx))
		ax.Labels = append(ax.Labels, n)
	}
	return ax
}

// ParameterizedDefenseAxis builds the categorical defense axis over
// arbitrary defense values — parameterized stacks, custom partition
// configs, off-registry interval choices — rather than registry members.
// Values are indices into defs, labels are the defenses' canonical
// names; resolve a cell back to its defense with WithCellDefenses,
// passing the same slice. Every defense must validate and names must be
// unique (labels are the cell key, the report key, and the RNG
// derivation label — a duplicate would alias two machines). The axis is
// always assembled from values the caller just constructed, so an
// invalid defense panics like DefenseAxis's unknown name does.
func ParameterizedDefenseAxis(defs ...defense.Defense) Axis {
	if len(defs) == 0 {
		panic("scenario: parameterized defense axis with no defenses")
	}
	ax := Axis{Name: AxisDefense}
	seen := map[string]bool{}
	for i, d := range defs {
		if err := defense.Validate(d); err != nil {
			panic(fmt.Sprintf("scenario: invalid defense in axis: %v", err))
		}
		n := d.Name()
		if seen[n] {
			panic(fmt.Sprintf("scenario: duplicate defense %q in parameterized axis", n))
		}
		seen[n] = true
		ax.Values = append(ax.Values, float64(i))
		ax.Labels = append(ax.Labels, n)
	}
	return ax
}

// Restrict returns a copy of the grid with the named labeled axis
// narrowed to the given labels, in the given order. This is how a sweep
// override (the CLI's -defense flag, a service job's defense field)
// subsets a registered sweep without re-registering it: cell keys, seeds,
// and numeric coordinates are exactly those the full grid would produce
// for the same cells, so a restricted run's cells are byte-identical to
// the matching slice of the full sweep. Labels must be a subset of the
// axis's own labels — an override can narrow a sweep's defense set, not
// smuggle in defenses its author never evaluated — and duplicates are
// rejected (duplicate cell keys would collide in the result matrix).
func (g Grid) Restrict(axisName string, labels []string) (Grid, error) {
	if len(labels) == 0 {
		return g, nil
	}
	ai := -1
	for i, a := range g {
		if a.Name == axisName {
			ai = i
			break
		}
	}
	if ai < 0 {
		return nil, fmt.Errorf("grid: no axis %q to restrict", axisName)
	}
	axis := g[ai]
	if len(axis.Labels) == 0 {
		return nil, fmt.Errorf("grid: axis %q is numeric, not labeled", axisName)
	}
	out := make(Grid, len(g))
	copy(out, g)
	narrowed := Axis{Name: axis.Name}
	seen := map[string]bool{}
	for _, want := range labels {
		if seen[want] {
			return nil, fmt.Errorf("grid: duplicate label %q in restriction", want)
		}
		seen[want] = true
		idx := -1
		for i, l := range axis.Labels {
			if l == want {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("grid: axis %q has no label %q (have %s)",
				axisName, want, strings.Join(axis.Labels, ", "))
		}
		narrowed.Values = append(narrowed.Values, axis.Values[idx])
		narrowed.Labels = append(narrowed.Labels, axis.Labels[idx])
	}
	out[ai] = narrowed
	return out, nil
}

// WithCell returns a copy of the spec with the cell's well-known axes
// applied. Axes the spec does not model (e.g. a sweep-private packet-rate
// axis) are left for the sweep's own Run to read via Value. A defense
// coordinate is resolved against the registry; cells built from a
// ParameterizedDefenseAxis must go through WithCellDefenses instead.
func (s Spec) WithCell(c Cell) Spec {
	return s.withCell(c, nil)
}

// WithCellDefenses is WithCell for grids carrying a
// ParameterizedDefenseAxis: the cell's defense coordinate indexes defs
// (the same slice the axis was built from) instead of the registry.
func (s Spec) WithCellDefenses(c Cell, defs []defense.Defense) Spec {
	return s.withCell(c, defs)
}

func (s Spec) withCell(c Cell, defs []defense.Defense) Spec {
	if v, ok := c.Value(AxisNoiseRate); ok {
		s.NoiseRate = v
	}
	if v, ok := c.Value(AxisTimerNoise); ok {
		s.TimerNoise = uint64(v)
	}
	if v, ok := c.Value(AxisRingSize); ok {
		s.RingSize = int(v)
	}
	if v, ok := c.Value(AxisDefense); ok {
		pool := defs
		if pool == nil {
			pool = defense.All()
		}
		i := int(v)
		if i < 0 || i >= len(pool) {
			panic(fmt.Sprintf("scenario: defense axis index %d outside its %d defenses", i, len(pool)))
		}
		s.Defense = pool[i]
	}
	return s
}
