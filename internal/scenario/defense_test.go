package scenario

import (
	"strings"
	"testing"

	"repro/internal/defense"
)

// TestDefenseInOptions: a spec's defense must reshape the built machine
// options, survive Offline() normalization (a platform defense cannot be
// prepared around), and override the environment knobs in OnlineEnv.
func TestDefenseInOptions(t *testing.T) {
	s := Baseline(false).WithDefense(defense.AdaptivePartitioning{})
	if s.Options(1).Cache.Partition == nil {
		t.Error("partition defense missing from built options")
	}
	if s.Offline().Options(1).Cache.Partition == nil {
		t.Error("Offline() dropped the defense")
	}

	tc := Baseline(false).WithDefense(defense.TimerCoarsening{Jitter: 64})
	if got := tc.Options(1).TimerNoise; got != 64 {
		t.Errorf("timer defense: built TimerNoise = %d, want 64", got)
	}
	// The online environment must carry the defense's override too — a
	// sweep cell's reference timer value must not silently undo it.
	if _, timer := tc.Offline().OnlineEnv(); timer != 64 {
		t.Errorf("OnlineEnv timer = %d under timer defense, want 64", timer)
	}
	if noise, timer := Baseline(false).OnlineEnv(); noise != 20_000 || timer != 4 {
		t.Errorf("undefended OnlineEnv = (%v, %v), want baseline (20000, 4)", noise, timer)
	}
}

// TestDefenseFingerprint: specs differing only in a defense must have
// different fingerprints — even when the defense changes nothing the
// option fingerprint covers (timer coarsening).
func TestDefenseFingerprint(t *testing.T) {
	base := Baseline(false)
	for _, d := range defense.All() {
		if _, ok := d.(defense.NoDefense); ok {
			continue
		}
		if got := base.WithDefense(d).Fingerprint(); got == base.Fingerprint() {
			t.Errorf("defense %s: fingerprint matches the undefended spec", d.Name())
		}
	}
	if base.DefenseTag() != "" {
		t.Error("undefended spec must have an empty defense tag")
	}
	if tag := base.WithDefense(defense.TimerCoarsening{Jitter: 64}).DefenseTag(); tag == "" {
		t.Error("timer defense must contribute a tag")
	}
}

// TestDefenseAxis: the categorical axis must carry registry indices with
// name labels, render labeled cell keys, and map back onto Spec.Defense
// through WithCell.
func TestDefenseAxis(t *testing.T) {
	ax := DefenseAxis()
	if len(ax.Values) != len(defense.All()) || len(ax.Labels) != len(ax.Values) {
		t.Fatalf("full defense axis malformed: %+v", ax)
	}
	g := Grid{ax}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	for i, c := range cells {
		want := AxisDefense + "=" + defense.All()[i].Name()
		if c.Key() != want {
			t.Errorf("cell %d key %q, want %q", i, c.Key(), want)
		}
		s := Baseline(false).WithCell(c)
		if s.Defense == nil || s.Defense.Name() != defense.All()[i].Name() {
			t.Errorf("cell %d: WithCell installed %v", i, s.Defense)
		}
		if lbl, ok := c.Label(AxisDefense); !ok || lbl != defense.All()[i].Name() {
			t.Errorf("cell %d: Label = %q, %v", i, lbl, ok)
		}
	}

	sub := DefenseAxis("adaptive-partition", "none")
	if len(sub.Values) != 2 || sub.Labels[0] != "adaptive-partition" || sub.Labels[1] != "none" {
		t.Errorf("subset axis malformed: %+v", sub)
	}

	defer func() {
		if recover() == nil {
			t.Error("unknown defense name must panic")
		}
	}()
	DefenseAxis("not-a-defense")
}

// TestLabeledGridValidation: labels must be all-or-nothing per axis.
func TestLabeledGridValidation(t *testing.T) {
	g := Grid{{Name: "x", Values: []float64{1, 2}, Labels: []string{"one"}}}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "labels") {
		t.Errorf("mismatched label count must fail validation, got %v", err)
	}
}

// TestMixedLabeledNumericGrid: a labeled axis crossed with a numeric one
// renders hybrid keys deterministically.
func TestMixedLabeledNumericGrid(t *testing.T) {
	g := Grid{
		DefenseAxis("none", "adaptive-partition"),
		{Name: AxisNoiseRate, Values: []float64{1000}},
	}
	cells := g.Cells()
	want := []string{
		"defense=none,noise_rate=1000",
		"defense=adaptive-partition,noise_rate=1000",
	}
	for i, c := range cells {
		if c.Key() != want[i] {
			t.Errorf("cell %d key %q, want %q", i, c.Key(), want[i])
		}
	}
	if _, ok := cells[0].Label(AxisNoiseRate); ok {
		t.Error("numeric axis must not report a label")
	}
}
