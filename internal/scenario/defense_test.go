package scenario

import (
	"strings"
	"testing"

	"repro/internal/defense"
)

// TestDefenseInOptions: a spec's defense must reshape the built machine
// options, survive Offline() normalization (a platform defense cannot be
// prepared around), and override the environment knobs in OnlineEnv.
func TestDefenseInOptions(t *testing.T) {
	s := Baseline(false).WithDefense(defense.AdaptivePartitioning{})
	if s.Options(1).Cache.Partition == nil {
		t.Error("partition defense missing from built options")
	}
	if s.Offline().Options(1).Cache.Partition == nil {
		t.Error("Offline() dropped the defense")
	}

	tc := Baseline(false).WithDefense(defense.TimerCoarsening{Jitter: 64})
	if got := tc.Options(1).TimerNoise; got != 64 {
		t.Errorf("timer defense: built TimerNoise = %d, want 64", got)
	}
	// The online environment must carry the defense's override too — a
	// sweep cell's reference timer value must not silently undo it.
	if _, timer := tc.Offline().OnlineEnv(); timer != 64 {
		t.Errorf("OnlineEnv timer = %d under timer defense, want 64", timer)
	}
	if noise, timer := Baseline(false).OnlineEnv(); noise != 20_000 || timer != 4 {
		t.Errorf("undefended OnlineEnv = (%v, %v), want baseline (20000, 4)", noise, timer)
	}
}

// TestDefenseFingerprint: specs differing only in a defense must have
// different fingerprints — even when the defense changes nothing the
// option fingerprint covers (timer coarsening).
func TestDefenseFingerprint(t *testing.T) {
	base := Baseline(false)
	for _, d := range defense.All() {
		if _, ok := d.(defense.NoDefense); ok {
			continue
		}
		if got := base.WithDefense(d).Fingerprint(); got == base.Fingerprint() {
			t.Errorf("defense %s: fingerprint matches the undefended spec", d.Name())
		}
	}
	if base.DefenseTag() != "" {
		t.Error("undefended spec must have an empty defense tag")
	}
	if tag := base.WithDefense(defense.TimerCoarsening{Jitter: 64}).DefenseTag(); tag == "" {
		t.Error("timer defense must contribute a tag")
	}
}

// TestDefenseAxis: the categorical axis must carry registry indices with
// name labels, render labeled cell keys, and map back onto Spec.Defense
// through WithCell.
// TestGridRestrict: a restriction picks exactly the requested labeled
// values, preserving their full-grid coordinates (cell keys and seeds
// must match the unrestricted sweep's cells), and rejects everything
// that could silently change a sweep's meaning: unknown labels, numeric
// axes, absent axes, duplicates.
func TestGridRestrict(t *testing.T) {
	g := Grid{
		DefenseAxis(),
		{Name: AxisNoiseRate, Values: []float64{100, 200}},
	}
	full := g.Cells()

	names := defense.Names()
	pick := []string{names[2], names[0]} // order is the caller's, not the registry's
	r, err := g.Restrict(AxisDefense, pick)
	if err != nil {
		t.Fatal(err)
	}
	cells := r.Cells()
	if len(cells) != 4 {
		t.Fatalf("restricted grid has %d cells, want 4", len(cells))
	}
	// Every restricted cell must appear verbatim (same key, hence same
	// derived seeds) in the full grid.
	fullKeys := map[string]bool{}
	for _, c := range full {
		fullKeys[c.Key()] = true
	}
	for _, c := range cells {
		if !fullKeys[c.Key()] {
			t.Errorf("restricted cell %q not a cell of the full grid", c.Key())
		}
	}
	if l, _ := cells[0].Label(AxisDefense); l != pick[0] {
		t.Errorf("restriction order not honored: first cell defense %q, want %q", l, pick[0])
	}

	if _, err := g.Restrict(AxisDefense, []string{"no-such-defense"}); err == nil {
		t.Error("unknown label accepted")
	}
	if _, err := g.Restrict(AxisNoiseRate, []string{"100"}); err == nil {
		t.Error("numeric axis restriction accepted")
	}
	if _, err := g.Restrict("absent", []string{"x"}); err == nil {
		t.Error("absent axis accepted")
	}
	if _, err := g.Restrict(AxisDefense, []string{names[0], names[0]}); err == nil {
		t.Error("duplicate labels accepted")
	}
	if same, err := g.Restrict(AxisDefense, nil); err != nil || len(same.Cells()) != len(full) {
		t.Error("empty restriction must be the identity")
	}
}

func TestDefenseAxis(t *testing.T) {
	ax := DefenseAxis()
	if len(ax.Values) != len(defense.All()) || len(ax.Labels) != len(ax.Values) {
		t.Fatalf("full defense axis malformed: %+v", ax)
	}
	g := Grid{ax}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	for i, c := range cells {
		want := AxisDefense + "=" + defense.All()[i].Name()
		if c.Key() != want {
			t.Errorf("cell %d key %q, want %q", i, c.Key(), want)
		}
		s := Baseline(false).WithCell(c)
		if s.Defense == nil || s.Defense.Name() != defense.All()[i].Name() {
			t.Errorf("cell %d: WithCell installed %v", i, s.Defense)
		}
		if lbl, ok := c.Label(AxisDefense); !ok || lbl != defense.All()[i].Name() {
			t.Errorf("cell %d: Label = %q, %v", i, lbl, ok)
		}
	}

	sub := DefenseAxis("adaptive-partition", "none")
	if len(sub.Values) != 2 || sub.Labels[0] != "adaptive-partition" || sub.Labels[1] != "none" {
		t.Errorf("subset axis malformed: %+v", sub)
	}

	defer func() {
		if recover() == nil {
			t.Error("unknown defense name must panic")
		}
	}()
	DefenseAxis("not-a-defense")
}

// TestParameterizedDefenseAxis: the axis carries arbitrary defense
// values (parameterized stacks, off-registry configs) with canonical
// name labels, and WithCellDefenses resolves a cell back onto the exact
// value the axis was built from — the path the frontier search and any
// future parameterized sweep use for defenses no registry entry names.
func TestParameterizedDefenseAxis(t *testing.T) {
	ring, err := defense.NewRingRandomization(2_000)
	if err != nil {
		t.Fatal(err)
	}
	defs := []defense.Defense{
		defense.NoDefense{},
		defense.NewStack(defense.AdaptivePartitioning{}, ring),
	}
	ax := ParameterizedDefenseAxis(defs...)
	g := Grid{ax, {Name: AxisNoiseRate, Values: []float64{1_000}}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	wantKey := "defense=adaptive-partition+ring-partial-2k,noise_rate=1000"
	if cells[1].Key() != wantKey {
		t.Errorf("stack cell key %q, want %q", cells[1].Key(), wantKey)
	}
	for i, c := range cells {
		s := Baseline(false).WithCellDefenses(c, defs)
		if s.Defense == nil || s.Defense.Name() != defs[i].Name() {
			t.Errorf("cell %d: WithCellDefenses installed %v, want %s", i, s.Defense, defs[i].Name())
		}
		if s.NoiseRate != 1_000 {
			t.Errorf("cell %d: numeric axis dropped (noise %v)", i, s.NoiseRate)
		}
	}
	// The stacked cell's spec must build and fingerprint distinctly.
	s := Baseline(false).WithCellDefenses(cells[1], defs)
	if s.Fingerprint() == Baseline(false).Fingerprint() {
		t.Error("parameterized stack did not reach the spec fingerprint")
	}

	// Invalid defenses and duplicate names are programming errors.
	for name, bad := range map[string]func(){
		"empty":     func() { ParameterizedDefenseAxis() },
		"invalid":   func() { ParameterizedDefenseAxis(defense.TimerCoarsening{}) },
		"duplicate": func() { ParameterizedDefenseAxis(defense.NoDefense{}, defense.NoDefense{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s axis must panic", name)
				}
			}()
			bad()
		}()
	}
}

// TestLabeledGridValidation: labels must be all-or-nothing per axis.
func TestLabeledGridValidation(t *testing.T) {
	g := Grid{{Name: "x", Values: []float64{1, 2}, Labels: []string{"one"}}}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "labels") {
		t.Errorf("mismatched label count must fail validation, got %v", err)
	}
}

// TestMixedLabeledNumericGrid: a labeled axis crossed with a numeric one
// renders hybrid keys deterministically.
func TestMixedLabeledNumericGrid(t *testing.T) {
	g := Grid{
		DefenseAxis("none", "adaptive-partition"),
		{Name: AxisNoiseRate, Values: []float64{1000}},
	}
	cells := g.Cells()
	want := []string{
		"defense=none,noise_rate=1000",
		"defense=adaptive-partition,noise_rate=1000",
	}
	for i, c := range cells {
		if c.Key() != want[i] {
			t.Errorf("cell %d key %q, want %q", i, c.Key(), want[i])
		}
	}
	if _, ok := cells[0].Label(AxisNoiseRate); ok {
		t.Error("numeric axis must not report a label")
	}
}
