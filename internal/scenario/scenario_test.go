package scenario

import (
	"testing"

	"repro/internal/netmodel"
)

func TestPresetsValidateAndDiffer(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range PresetNames() {
		s, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if s.Name != name {
			t.Errorf("preset %q reports name %q", name, s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if seen[name] {
			t.Errorf("duplicate preset %q", name)
		}
		seen[name] = true
	}
	if _, ok := Preset("nope"); ok {
		t.Error("unknown preset must not resolve")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"partial geometry", Spec{CacheSlices: 2}},
		{"negative ring", Spec{RingSize: -1}},
		{"negative noise", Spec{NoiseRate: -1}},
		{"flow without sizes", Spec{Flows: []Flow{{Rate: 100}}}},
		{"flow without rate", Spec{Flows: []Flow{{Sizes: []int{64}}}}},
		{"flow bad kind", Spec{Flows: []Flow{{Kind: "warp", Sizes: []int{64}, Rate: 1}}}},
		{"flow bad size", Spec{Flows: []Flow{{Sizes: []int{12}, Rate: 1}}}},
		{"bursty without on-window", Spec{Flows: []Flow{{Sizes: []int{64}, Rate: 1, BurstOff: 0.1}}}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestBaselineOptionsMatchLegacyShapes(t *testing.T) {
	demo := Baseline(false).Options(3)
	if demo.Cache.SizeBytes() != 2<<20 || demo.NIC.RingSize != 64 {
		t.Errorf("demo baseline drifted: %d bytes LLC, ring %d", demo.Cache.SizeBytes(), demo.NIC.RingSize)
	}
	if demo.NoiseRate != 20_000 || demo.TimerNoise != 4 || demo.Seed != 3 {
		t.Errorf("demo baseline environment drifted: %+v", demo)
	}
	paper := Baseline(true).Options(3)
	if paper.Cache.SizeBytes() != 20<<20 || paper.NIC.RingSize != 256 {
		t.Errorf("paper baseline drifted: %d bytes LLC, ring %d", paper.Cache.SizeBytes(), paper.NIC.RingSize)
	}
}

// TestBuildTrafficOrderedAndDeterministic: every preset's mix must emit
// frames in nondecreasing arrival order, valid frame sizes, and the exact
// same stream for the same seed.
func TestBuildTrafficOrderedAndDeterministic(t *testing.T) {
	for _, name := range PresetNames() {
		s, _ := Preset(name)
		if len(s.Flows) == 0 {
			if src := s.BuildTraffic(1, 0); src != nil {
				t.Errorf("%s: no flows but non-nil traffic", name)
			}
			continue
		}
		const n = 2000
		a := netmodel.Collect(s.BuildTraffic(1, 0), n)
		b := netmodel.Collect(s.BuildTraffic(1, 0), n)
		if len(a) == 0 {
			t.Fatalf("%s: mix emitted nothing", name)
		}
		for i, f := range a {
			if err := f.Validate(); err != nil {
				t.Fatalf("%s: frame %d: %v", name, i, err)
			}
			if i > 0 && f.Arrival < a[i-1].Arrival {
				t.Fatalf("%s: arrival order violated at %d: %d < %d", name, i, f.Arrival, a[i-1].Arrival)
			}
		}
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic frame %d: %+v vs %+v", name, i, a[i], b[i])
			}
		}
	}
}

func TestMixWithPassthrough(t *testing.T) {
	s := Baseline(false) // no flows
	wire := netmodel.NewWire(netmodel.GigabitRate)
	src := netmodel.NewConstantSource(wire, 64, 1000, 0, 5)
	if got := s.MixWith(src, 1, 0); got != netmodel.Source(src) {
		t.Error("MixWith must pass through when the scenario has no flows")
	}
	s.Flows = []Flow{{Kind: FlowPoisson, Sizes: []int{64}, Rate: 1000, Count: 5}}
	mixed := s.MixWith(netmodel.NewConstantSource(wire, 64, 1000, 0, 5), 1, 0)
	frames := netmodel.Collect(mixed, 20)
	if len(frames) != 10 {
		t.Errorf("mixed stream has %d frames want 10", len(frames))
	}
}

func TestNewTestbedInstallsMix(t *testing.T) {
	s, _ := Preset("busy-multi-tenant")
	for i := range s.Flows {
		s.Flows[i].Count = 50
	}
	tb, err := s.NewTestbed(7)
	if err != nil {
		t.Fatal(err)
	}
	if n := tb.DrainTraffic(); n != 150 {
		t.Errorf("drained %d frames want 150 (3 flows x 50)", n)
	}
	if tb.NIC().Stats().Received == 0 {
		t.Error("NIC saw no frames from the scenario mix")
	}
}

func TestGridCellsRowMajor(t *testing.T) {
	g := Grid{
		{Name: "a", Values: []float64{1, 2}},
		{Name: "b", Values: []float64{10, 20, 30}},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	if len(cells) != g.Size() || g.Size() != 6 {
		t.Fatalf("got %d cells want 6", len(cells))
	}
	wantKeys := []string{
		"a=1,b=10", "a=1,b=20", "a=1,b=30",
		"a=2,b=10", "a=2,b=20", "a=2,b=30",
	}
	for i, c := range cells {
		if c.Key() != wantKeys[i] {
			t.Errorf("cell %d key %q want %q", i, c.Key(), wantKeys[i])
		}
	}
	if v, ok := cells[4].Value("b"); !ok || v != 20 {
		t.Errorf("cell 4 b = %v, %v", v, ok)
	}
	if _, ok := cells[0].Value("c"); ok {
		t.Error("unknown axis must not resolve")
	}
	coords := cells[5].Coords()
	if coords["a"] != 2 || coords["b"] != 30 {
		t.Errorf("coords wrong: %v", coords)
	}
}

func TestGridValidate(t *testing.T) {
	for _, g := range []Grid{
		{},
		{{Name: "", Values: []float64{1}}},
		{{Name: "a", Values: nil}},
		{{Name: "a", Values: []float64{1}}, {Name: "a", Values: []float64{2}}},
	} {
		if err := g.Validate(); err == nil {
			t.Errorf("grid %+v must not validate", g)
		}
	}
}

func TestWithCell(t *testing.T) {
	s := Baseline(false)
	c := NewCell(
		[]string{AxisNoiseRate, AxisTimerNoise, AxisRingSize, "private"},
		[]float64{123456, 77, 32, 9},
	)
	got := s.WithCell(c)
	if got.NoiseRate != 123456 || got.TimerNoise != 77 || got.RingSize != 32 {
		t.Errorf("WithCell did not apply: %+v", got)
	}
	// The receiver must be untouched (value semantics).
	if s.NoiseRate != 20_000 || s.TimerNoise != 4 || s.RingSize != 64 {
		t.Errorf("WithCell mutated the base spec: %+v", s)
	}
}

// TestPaperPresets: each preset's "-paper" variant must resolve, validate,
// run on the full paper machine, and keep the demo variant's environment
// and traffic mix.
func TestPaperPresets(t *testing.T) {
	for _, base := range []string{"idle-server", "busy-multi-tenant", "bursty-web", "paced-covert"} {
		demo, ok := Preset(base)
		if !ok {
			t.Fatalf("preset %q missing", base)
		}
		paper, ok := Preset(base + "-paper")
		if !ok {
			t.Fatalf("preset %q missing", base+"-paper")
		}
		if err := paper.Validate(); err != nil {
			t.Errorf("%s-paper invalid: %v", base, err)
		}
		opts := paper.Options(1)
		if opts.Cache.SizeBytes() != 20<<20 || opts.NIC.RingSize != 256 {
			t.Errorf("%s-paper not at paper scale: %d bytes LLC, ring %d",
				base, opts.Cache.SizeBytes(), opts.NIC.RingSize)
		}
		if paper.NoiseRate != demo.NoiseRate || paper.TimerNoise != demo.TimerNoise {
			t.Errorf("%s-paper environment drifted from demo preset", base)
		}
		if len(paper.Flows) != len(demo.Flows) {
			t.Errorf("%s-paper traffic mix drifted: %d flows vs %d", base, len(paper.Flows), len(demo.Flows))
		}
	}
}

// TestAtPaperScaleIdempotent: lifting twice is lifting once, and every
// machine override — geometry, ring, memory — is cleared to the paper
// defaults.
func TestAtPaperScaleIdempotent(t *testing.T) {
	s, _ := Preset("bursty-web")
	s.MemBytes = 64 << 20
	once := s.AtPaperScale()
	twice := once.AtPaperScale()
	if once.Name != "bursty-web-paper" || twice.Name != once.Name {
		t.Errorf("names: %q then %q", once.Name, twice.Name)
	}
	if twice.CacheSlices != 0 || twice.RingSize != 0 || twice.MemBytes != 0 {
		t.Errorf("machine overrides survived lifting: %+v", twice)
	}
}

// TestOfflineSpec: the offline view keeps geometry, resets environment to
// the reference, and drops flows.
func TestOfflineSpec(t *testing.T) {
	s, _ := Preset("busy-multi-tenant")
	s.RingSize = 32
	off := s.Offline()
	if off.NoiseRate != OfflineNoiseRate || off.TimerNoise != OfflineTimerNoise {
		t.Errorf("offline environment not at reference: %+v", off)
	}
	if off.Flows != nil {
		t.Error("offline spec must drop traffic flows")
	}
	if off.RingSize != 32 || off.CacheSlices != s.CacheSlices {
		t.Error("offline spec must preserve geometry")
	}
}

// TestFingerprintContract: equal machine shapes fingerprint equally no
// matter the environment; geometry changes alter the fingerprint.
func TestFingerprintContract(t *testing.T) {
	a := Baseline(false)
	b := Baseline(false)
	b.Name = "renamed"
	b.NoiseRate = 9_999_999
	b.TimerNoise = 400
	b.Flows = []Flow{{Kind: FlowPoisson, Sizes: []int{64}, Rate: 1000, Count: -1}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("environment and naming must not affect the fingerprint")
	}
	c := Baseline(false)
	c.RingSize = 128
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("ring size is offline-relevant and must alter the fingerprint")
	}
	if Baseline(false).Fingerprint() == Baseline(true).Fingerprint() {
		t.Error("demo and paper machines must fingerprint differently")
	}
}
