// Package analyzers is a static-analysis suite that enforces the three
// unwritten contracts every headline property of this reproduction rests
// on — byte-identical reports across -parallel widths, warm==cold,
// service==solo, and interrupt/resume:
//
//   - determinism: no wall clock, global randomness, or environment reads
//     inside the simulation core (analyzer detcore);
//   - snapshot completeness: every stateful field of a snapshottable
//     component is covered by both the Snapshot and the Restore direction
//     (analyzer snapcover);
//   - RNG discipline: all randomness flows through the draw-counted
//     sim.RNG, so math/rand is importable only by internal/sim
//     (analyzer rngflow);
//   - emission order: map iteration feeding report emission is sorted
//     before the bytes leave (analyzer mapemit).
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can migrate to the upstream framework
// mechanically if that dependency ever becomes available; the build
// environment for this repo is offline, so the driver, loader, and
// analysistest harness here are self-contained over the standard library.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and -run filters. It must be
	// a valid identifier.
	Name string
	// Doc is the one-paragraph contract the pass enforces.
	Doc string
	// Run applies the pass to one package.
	Run func(*Pass) error
}

// Pass carries one analyzed package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic.
	Report func(Diagnostic)

	dirs *directiveIndex
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos unless a
// //packetlint:allow directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether a //packetlint:allow directive covers pos: one
// on the same source line, or one alone on the line directly above.
func (p *Pass) Allowed(pos token.Pos) bool {
	return p.dirs.covers(directiveAllow, p.Fset.Position(pos))
}

// Transient reports whether a //packetlint:transient directive covers
// pos (a struct field declaration): same line or the line directly above.
func (p *Pass) Transient(pos token.Pos) bool {
	return p.dirs.covers(directiveTransient, p.Fset.Position(pos))
}

// Finding is a resolved diagnostic with its analyzer and position, the
// unit the driver and tests consume.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers applies each analyzer to the package and returns the
// findings sorted by position. Directive suppression (//packetlint:allow)
// is applied inside Pass.Reportf; malformed directives (no reason) are
// reported as findings of the pseudo-analyzer "packetlint".
func RunAnalyzers(pkg *Package, as []*Analyzer) ([]Finding, error) {
	dirs, bad := indexDirectives(pkg.Fset, pkg.Syntax)
	var out []Finding
	for _, f := range bad {
		out = append(out, f)
	}
	for _, a := range as {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			dirs:      dirs,
		}
		pass.Report = func(d Diagnostic) {
			out = append(out, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Suite returns the four packetlint analyzers in their canonical order.
func Suite() []*Analyzer {
	return []*Analyzer{Detcore, Snapcover, RNGFlow, MapEmit}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
