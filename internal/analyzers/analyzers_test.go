package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

func TestDetcore(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Detcore,
		"detcore/a", "detcore/internal/runner")
}

func TestRNGFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.RNGFlow,
		"rngflow/a", "rngflow/internal/sim")
}

func TestSnapcover(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Snapcover,
		"snapcover/a", "snapcover/cachemirror")
}

func TestMapEmit(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.MapEmit,
		"mapemit/a")
}

func TestByName(t *testing.T) {
	for _, a := range analyzers.Suite() {
		if got := analyzers.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := analyzers.ByName("nope"); got != nil {
		t.Errorf("ByName(nope) = %v, want nil", got)
	}
}
