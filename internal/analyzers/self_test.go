package analyzers_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analyzers"
)

// TestSuiteCleanOnRealTree runs all four analyzers over the real module —
// not testdata — so `go test ./...` fails the moment anyone introduces a
// wall-clock read into the simulation core, drops a field from a Restore,
// imports math/rand outside internal/sim, or emits map-ordered bytes.
// This is the tier-1 guard: CI's packetlint job enforces the same
// property, but this test does it without CI, on every local test run.
//
// New legitimate exceptions take an inline //packetlint:allow or
// //packetlint:transient with a reason, or (for a genuinely wall-clock
// package) an entry in analyzers.DetcoreAllowlist — never a relaxation of
// this test.
func TestSuiteCleanOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analyzers.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the full module", len(pkgs))
	}
	total := 0
	for _, pkg := range pkgs {
		findings, err := analyzers.RunAnalyzers(pkg, analyzers.Suite())
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
			total++
		}
	}
	if total > 0 {
		t.Logf("%d determinism-contract violations; fix them or annotate with a reasoned //packetlint directive", total)
	}
}

// TestSnapcoverGuardsRealSnapshots double-checks the self-test has teeth:
// the real snapshot-owning packages must actually be seen by the loader
// (if cache/testbed/nic ever moved, the self-test would silently guard
// nothing).
func TestSnapcoverGuardsRealSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analyzers.Load(root, "./internal/cache", "./internal/testbed", "./internal/nic", "./internal/mem", "./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 5 {
		t.Fatalf("loaded %d packages, want 5", len(pkgs))
	}
	for _, pkg := range pkgs {
		findings, err := analyzers.RunAnalyzers(pkg, []*analyzers.Analyzer{analyzers.Snapcover})
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
