package analyzers

import (
	"go/ast"
	"go/types"
)

// MapEmit protects report-byte determinism from Go's randomized map
// iteration order. Ranging over a map is fine for order-insensitive work
// (building another map, counting, summing ints, max/min); it is a bug
// the moment the iteration order can reach emitted bytes. Two shapes are
// flagged:
//
//   - appending map-iteration results to a slice declared outside the
//     loop, with no sort of that slice later in the same function — the
//     canonical fix is collect → sort → emit, and the sort must happen
//     where the collection does;
//   - writing directly to an output sink (fmt.Fprint*/Print*, a
//     bytes.Buffer / strings.Builder, an io.Writer, json encoding) from
//     inside the loop body, where no post-hoc sort can help.
var MapEmit = &Analyzer{
	Name: "mapemit",
	Doc: "map iteration feeding append or emission must be sorted " +
		"before the bytes can escape",
	Run: runMapEmit,
}

func runMapEmit(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, body := funcBody(n)
			if body == nil {
				return true
			}
			checkMapRanges(pass, fn, body)
			// Keep descending: literals declare nested functions whose
			// bodies are checked in their own right when visited.
			return true
		})
	}
	return nil
}

func funcBody(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn, fn.Body
	case *ast.FuncLit:
		return fn, fn.Body
	}
	return nil, nil
}

func checkMapRanges(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Do not descend into nested function literals; they get their
		// own visit (and their appends target their own scope).
		if _, ok := n.(*ast.FuncLit); ok && n != fn {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(rng.X); t == nil || !isMap(t) {
			return true
		}
		checkOneRange(pass, fn, body, rng)
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkOneRange(pass *Pass, fn ast.Node, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if target := appendTarget(pass, call); target != nil {
			if obj := pass.TypesInfo.ObjectOf(target); obj != nil &&
				declaredOutside(obj, rng) && !sortedAfter(pass, fnBody, rng, obj) {
				pass.Reportf(rng.For,
					"map iteration appends to %q with no later sort in this function: iteration order is randomized and will reach emitted bytes (collect, sort, then emit)",
					target.Name)
			}
			return true
		}
		if sink, why := emissionSink(pass, call); sink {
			pass.Reportf(call.Pos(),
				"%s inside map iteration: iteration order is randomized and reaches the output directly (iterate sorted keys instead)", why)
		}
		return true
	})
}

// appendTarget returns the identifier an `x = append(x, ...)` /
// `x := append(x, ...)` call ultimately assigns to, if the call is a
// builtin append feeding a plain identifier.
func appendTarget(pass *Pass, call *ast.CallExpr) *ast.Ident {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	target, _ := call.Args[0].(*ast.Ident)
	return target
}

// declaredOutside reports whether obj's declaration precedes the range
// statement (i.e. the slice outlives the loop).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos()
}

// sortedAfter reports whether, after the range statement and within the
// same function body, obj is passed through a sort.* or slices.Sort*
// call — the collect-sort-emit pattern.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee := pass.TypesInfo.ObjectOf(sel.Sel)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			hit = true
		}
		return !hit
	})
	return hit
}

// emissionSink classifies calls that move bytes toward output: fmt
// printing, json encoding, and Write* methods on buffers, builders, and
// io.Writers.
func emissionSink(pass *Pass, call *ast.CallExpr) (bool, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false, ""
	}
	callee := pass.TypesInfo.ObjectOf(sel.Sel)
	if callee == nil {
		return false, ""
	}
	name := callee.Name()
	if pkg := callee.Pkg(); pkg != nil && callee.Parent() == pkg.Scope() {
		switch pkg.Path() {
		case "fmt":
			if len(name) >= 5 && (name[:5] == "Print" || name[:5] == "Fprin") {
				return true, "fmt." + name
			}
		case "encoding/json":
			if name == "Marshal" || name == "MarshalIndent" {
				return true, "json." + name
			}
		case "io":
			if name == "WriteString" {
				return true, "io.WriteString"
			}
		}
		return false, ""
	}
	// Method sinks: Encode on a json.Encoder; Write/WriteString/
	// WriteByte/WriteRune on anything (buffers, builders, writers).
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type().String()
		if name == "Encode" && recv == "*encoding/json.Encoder" {
			return true, "json.Encoder.Encode"
		}
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			if sel2 := pass.TypesInfo.Selections[sel]; sel2 != nil {
				return true, recvShort(recv) + "." + name
			}
		}
	}
	return false, ""
}

func recvShort(recv string) string {
	for i := len(recv) - 1; i >= 0; i-- {
		if recv[i] == '/' {
			return recv[i+1:]
		}
	}
	return recv
}
