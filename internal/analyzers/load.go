package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Package is one loaded, parsed, and type-checked package — the loader's
// analogue of golang.org/x/tools/go/packages.Package, self-contained over
// the standard library: dependency types come from compiler export data
// produced by `go list -export`, not from source.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matching patterns,
// resolved relative to dir. Test files are not loaded: the determinism
// contracts bind the shipped simulation, and test scaffolding is free to
// use wall clocks and ad-hoc randomness.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, so each target package
	// type-checks against the compiler's own view of its imports.
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outb, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(outb))
	var listed []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		listed = append(listed, &p)
	}
	return listed, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	var paths []string
	for _, name := range lp.GoFiles {
		path := name
		if !strings.HasPrefix(path, "/") {
			path = lp.Dir + "/" + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		GoFiles:    paths,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
