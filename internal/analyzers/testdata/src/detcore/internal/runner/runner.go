// Package runner mirrors the allowlisted internal/runner package path:
// wall-clock progress reporting is an explicit, reasoned exemption, so
// detcore reports nothing here.
package runner

import "time"

func ProgressStamp() time.Time {
	return time.Now()
}

func Wall(start time.Time) time.Duration {
	return time.Since(start)
}
