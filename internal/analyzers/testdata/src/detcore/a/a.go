// Package a seeds detcore violations: wall clock, environment reads, and
// global randomness in a package that is not on the allowlist.
package a

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now in a deterministic package`
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since in a deterministic package`
}

func env() string {
	return os.Getenv("SEED") // want `os\.Getenv in a deterministic package`
}

func globalRand() int {
	return rand.Intn(6) // want `math/rand\.Intn in a deterministic package: global math/rand source`
}

func cryptoRand(p []byte) {
	crand.Read(p) // want `crypto/rand\.Read in a deterministic package`
}

// Seeded local generators are rngflow's business, not detcore's: no
// diagnostic here.
func localRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// The escape hatch: a reasoned allow directive suppresses the finding,
// trailing or on the line above.
func allowedTrailing() time.Time {
	return time.Now() //packetlint:allow boot banner timestamp, never reaches a report
}

func allowedAbove() time.Time {
	//packetlint:allow boot banner timestamp, never reaches a report
	return time.Now()
}
