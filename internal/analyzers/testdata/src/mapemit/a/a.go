// Package a seeds mapemit violations — map iteration whose order can
// reach emitted bytes — next to the sorted patterns that must stay clean.
package a

import (
	"bytes"
	"fmt"
	"sort"
)

// Unsorted collect: the keys slice leaves this function in map order.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration appends to "keys" with no later sort`
		keys = append(keys, k)
	}
	return keys
}

// The canonical fix: collect, sort, emit.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with the slice inside a closure argument also counts.
func SortedPairs(m map[string]int) [][2]string {
	var pairs [][2]string
	for k, v := range m {
		pairs = append(pairs, [2]string{k, fmt.Sprint(v)})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	return pairs
}

// Direct emission inside the loop: no post-hoc sort can fix this.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside map iteration`
	}
}

func Render(m map[string]int) string {
	var buf bytes.Buffer
	for k := range m {
		buf.WriteString(k) // want `bytes\.Buffer\.WriteString inside map iteration`
	}
	return buf.String()
}

// Order-insensitive uses are fine: counting, max, building another map.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Slice iteration is always ordered; appends from it are fine.
func Copy(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// The escape hatch, for iteration an author can argue is safe.
func Allowed(m map[string]int) []string {
	var keys []string
	//packetlint:allow order canonicalized by the single caller
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
