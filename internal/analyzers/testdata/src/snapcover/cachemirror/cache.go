// Package cachemirror mirrors the real internal/cache.Cache snapshot
// contract, with one field reference deleted from Restore — the
// acceptance case: dropping any existing field copy from a real Restore
// must trip snapcover.
package cachemirror

import "fmt"

type line struct {
	tag   uint64
	valid bool
	stamp uint64
}

type Stats struct {
	CPUAccesses, CPUMisses uint64
}

type Cache struct {
	//packetlint:transient geometry config, fixed at construction
	cfg string
	//packetlint:transient derived index math, rebuilt by New
	setMask uint64

	lines  []line
	pstate []int
	nextID uint64
	stats  Stats // want `field Cache\.stats is not referenced in the Restore path`
	geo    string
}

type Snapshot struct {
	geometry string
	lines    []line
	pstate   []int
	nextID   uint64
	stats    Stats
}

func (c *Cache) Snapshot() *Snapshot {
	s := &Snapshot{}
	c.SnapshotInto(s)
	return s
}

func (c *Cache) SnapshotInto(s *Snapshot) {
	s.geometry = c.geo
	s.lines = append(s.lines[:0], c.lines...)
	s.pstate = append(s.pstate[:0], c.pstate...)
	s.nextID = c.nextID
	s.stats = c.stats
}

// Restore mirrors cache.Cache.Restore with the `c.stats = s.stats` line
// deleted: the drift snapcover exists to catch.
func (c *Cache) Restore(s *Snapshot) {
	if c.geo != s.geometry {
		panic(fmt.Sprintf("cachemirror: restoring snapshot of %q into %q", s.geometry, c.geo))
	}
	copy(c.lines, s.lines)
	copy(c.pstate, s.pstate)
	c.nextID = s.nextID
}
