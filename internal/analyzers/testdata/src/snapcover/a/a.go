// Package a seeds snapcover violations and the patterns that must stay
// clean: transitive helper coverage, transient annotations, and fields
// missed in one or both directions.
package a

// Machine is fully covered: save and restore both touch every
// non-transient field, with the restore direction flowing through a
// helper (Restore -> restoreCore), mirroring the real NIC.
type Machine struct {
	//packetlint:transient geometry, fixed at construction
	geom string

	state []int
	pos   int
}

type MachineState struct {
	State []int
	Pos   int
}

func (m *Machine) Snapshot() MachineState {
	return MachineState{State: append([]int(nil), m.state...), Pos: m.pos}
}

func (m *Machine) Restore(s MachineState) {
	m.restoreCore(s)
}

func (m *Machine) restoreCore(s MachineState) {
	m.state = append(m.state[:0], s.State...)
	m.pos = s.Pos
}

// Drifted has a field the save path captures but Restore forgot, and a
// field neither direction touches — the snapshot-drift bug class.
type Drifted struct {
	kept    int
	dropped int // want `field Drifted\.dropped is not referenced in the Restore path`
	ghost   int // want `field Drifted\.ghost is not referenced in either the Snapshot or the Restore path`
}

type DriftedState struct {
	Kept    int
	Dropped int
}

func (d *Drifted) SnapshotInto(s *DriftedState) {
	s.Kept = d.kept
	s.Dropped = d.dropped
}

func (d *Drifted) Restore(s *DriftedState) {
	d.kept = s.Kept
}

// SaveOnly owns a Snapshot but no Restore: not a snapcover target.
type SaveOnly struct {
	x int
}

func (s *SaveOnly) Snapshot() int { return s.x }
