// Package a seeds an rngflow violation: importing math/rand anywhere
// outside internal/sim mints randomness with no draw-counted stream
// position, which breaks snapshot/resume byte-identity.
package a

import (
	"math/rand" // want `import of math/rand outside internal/sim`
)

func Roll(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}
