// Package sim mirrors the real internal/sim: the one package allowed to
// import math/rand, because it wraps every stream in the draw-counted
// RNG whose position is snapshottable.
package sim

import "math/rand"

type RNG struct {
	*rand.Rand
}

func New(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed))}
}
