package analyzers

import (
	"strconv"
	"strings"
)

// RNGFlow confines math/rand imports to internal/sim. Every random
// decision in the simulation must flow through the draw-counted sim.RNG:
// its stream position is (seed, draws), which is what makes machine
// snapshots honest and warm-started or resumed runs byte-identical to
// cold ones. A second rand import anywhere else would mint randomness
// with no position to capture, and the first snapshot taken across it
// would silently diverge.
var RNGFlow = &Analyzer{
	Name: "rngflow",
	Doc: "math/rand may be imported only by internal/sim; all other " +
		"randomness must come from the draw-counted sim.RNG",
	Run: runRNGFlow,
}

// rngImporter is the single package allowed to import math/rand, as an
// import-path suffix relative to the module root.
const rngImporter = "internal/sim"

func runRNGFlow(pass *Pass) error {
	path := pass.Pkg.Path()
	if path == rngImporter || strings.HasSuffix(path, "/"+rngImporter) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			target, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if target == "math/rand" || target == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s outside %s: randomness must flow through the draw-counted sim.RNG so streams stay snapshot/restorable",
					target, rngImporter)
			}
		}
	}
	return nil
}
