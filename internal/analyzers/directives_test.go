package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestMalformedDirectives pins the directive grammar: unknown kinds and
// reason-less escapes are findings, not silent no-ops — an annotation
// that doesn't say why is exactly the drift the suite exists to stop.
func TestMalformedDirectives(t *testing.T) {
	src := `package p

//packetlint:allow
func a() {}

//packetlint:transient
func b() {}

//packetlint:frobnicate because reasons
func c() {}

//packetlint:allow documented reason
func d() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx, bad := indexDirectives(fset, []*ast.File{f})
	if len(bad) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(bad), bad)
	}
	wants := []string{"needs a reason", "needs a reason", "unknown packetlint directive"}
	for i, w := range wants {
		if !strings.Contains(bad[i].Message, w) {
			t.Errorf("finding %d = %q, want containing %q", i, bad[i].Message, w)
		}
	}
	// The well-formed directive on func d covers its own and the next line.
	if !idx.covers(directiveAllow, token.Position{Filename: "p.go", Line: 12}) {
		t.Error("valid allow directive not indexed on its own line")
	}
	if !idx.covers(directiveAllow, token.Position{Filename: "p.go", Line: 13}) {
		t.Error("standalone allow directive does not cover the following line")
	}
}
