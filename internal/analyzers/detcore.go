package analyzers

import (
	"go/ast"
	"sort"
	"strings"
)

// Detcore forbids ambient nondeterminism — wall clock, environment reads,
// global or crypto randomness — everywhere except an explicit, reasoned
// allowlist of wall-clock-facing packages. A single time.Now inside the
// simulation core silently breaks every byte-identity contract in the
// tree (warm==cold, service==solo, interrupt/resume), and nothing else
// would catch it until a golden file flakes.
var Detcore = &Analyzer{
	Name: "detcore",
	Doc: "forbid time.Now/time.Since, os env reads, and global/crypto " +
		"randomness outside the allowlisted wall-clock packages",
	Run: runDetcore,
}

// DetcoreAllowlist names the packages allowed to touch the wall clock and
// process environment, each with the reason the exemption exists. Paths
// are import-path suffixes relative to the module root. Everything else —
// in particular the simulation core (internal/{sim,cache,mem,nic,
// netmodel,testbed,probe,chase,covert,fingerprint,perfsim,stats,search})
// — is deny-by-default; one-off exceptions inside checked packages take
// an inline //packetlint:allow with a reason instead.
var DetcoreAllowlist = map[string]string{
	"internal/runner": "progress ETA and per-trial wall-time reporting; " +
		"simulated time never mixes into results",
	"internal/service": "job lifecycle timestamps, HTTP deadlines, and " +
		"SSE heartbeats for a long-running daemon",
	"cmd/experiments": "wall-clock 'finished in Ns' progress line on stderr",
	"cmd/experimentd": "daemon startup/shutdown logging and listener deadlines",
	"cmd/benchjson":   "benchmark tooling timestamps, outside the simulation",
	"cmd/chaser":      "interactive demo CLI, outside the simulation",
}

// detcoreBanned maps package path -> banned identifier -> explanation.
// math/rand entries cover only the global-source helpers; rand.New /
// rand.NewSource / rand.NewZipf build seeded local generators and are the
// business of the rngflow analyzer instead.
var detcoreBanned = map[string]map[string]string{
	"time": {
		"Now":   "wall clock; simulated time comes from sim.Clock",
		"Since": "wall clock; simulated durations come from sim.Clock deltas",
	},
	"os": {
		"Getenv":    "environment read; configuration must arrive through Options",
		"LookupEnv": "environment read; configuration must arrive through Options",
		"Environ":   "environment read; configuration must arrive through Options",
	},
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "",
		"Read": "", "Seed": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint": "", "UintN": "", "Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "",
		"Perm": "", "Shuffle": "", "N": "",
	},
	"crypto/rand": {
		"Read": "nondeterministic entropy; draw through the seeded sim.RNG",
		"Int":  "nondeterministic entropy; draw through the seeded sim.RNG",
		"Text": "nondeterministic entropy; draw through the seeded sim.RNG",
	},
}

func runDetcore(pass *Pass) error {
	if reason, ok := allowlisted(pass.Pkg.Path(), DetcoreAllowlist); ok {
		_ = reason // the exemption is the finding's absence; reasons are documentation
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			banned, ok := detcoreBanned[obj.Pkg().Path()]
			if !ok {
				return true
			}
			why, ok := banned[obj.Name()]
			if !ok || obj.Parent() != obj.Pkg().Scope() {
				return true
			}
			if why == "" {
				why = "global math/rand source; draw through the draw-counted sim.RNG"
			}
			pass.Reportf(id.Pos(), "%s.%s in a deterministic package: %s",
				obj.Pkg().Path(), obj.Name(), why)
			return true
		})
	}
	return nil
}

// allowlisted reports whether pkgPath ends with one of the allowlist's
// suffix paths (matching on path-segment boundaries, so e.g. the entry
// internal/runner matches repro/internal/runner but not a hypothetical
// internal/runnerx).
func allowlisted(pkgPath string, list map[string]string) (string, bool) {
	for suffix, reason := range list {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return reason, true
		}
	}
	return "", false
}

// AllowlistedPackages returns the allowlist's package suffixes in sorted
// order, for documentation emitters and tests.
func AllowlistedPackages() []string {
	out := make([]string, 0, len(DetcoreAllowlist))
	for p := range DetcoreAllowlist {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
