// Package analysistest runs an analyzer over golden packages under a
// testdata/src tree and diffs its findings against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest (which the
// offline build environment cannot vendor). A want comment names one or
// more quoted regular expressions that must each match a diagnostic
// reported on that line:
//
//	rand.Intn(6) // want `global math/rand`
//
// Every want must be matched by a finding and every finding must match a
// want; either direction of drift fails the test.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

// Run analyzes each package rooted at dir/src/<path> with a and checks
// its findings against the // want comments in the package's sources.
func Run(t *testing.T, dir string, a *analyzers.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		t.Run(a.Name+"/"+path, func(t *testing.T) {
			t.Helper()
			runOne(t, dir, a, path)
		})
	}
}

func runOne(t *testing.T, dir string, a *analyzers.Analyzer, pkgpath string) {
	t.Helper()
	pkgdir := filepath.Join(dir, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		t.Fatalf("reading %s: %v", pkgdir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(pkgdir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files under %s", pkgdir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: stdImporter(t, fset, files)}
	tpkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", pkgpath, err)
	}

	pkg := &analyzers.Package{
		ImportPath: pkgpath,
		Dir:        pkgdir,
		GoFiles:    names,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	findings, err := analyzers.RunAnalyzers(pkg, []*analyzers.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	diff(t, fset, files, findings)
}

// want is one expectation: a regexp that must match a finding on a line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text[idx+len("// want "):], -1) {
					unq, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, unq, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: unq})
				}
			}
		}
	}
	return wants
}

func diff(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analyzers.Finding) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.text)
		}
	}
}

// stdImporter builds an export-data importer for the standard-library
// packages the testdata files import, using `go list -deps -export` (all
// served from the local build cache; nothing is downloaded).
func stdImporter(t *testing.T, fset *token.FileSet, files []*ast.File) types.Importer {
	t.Helper()
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	sort.Strings(imports)
	exports := map[string]string{}
	if len(imports) > 0 {
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, imports...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("go list -export %v: %v\n%s", imports, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("decoding go list output: %v", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}
