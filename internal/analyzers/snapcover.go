package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
)

// Snapcover enforces snapshot completeness: for every struct that owns
// both a save method (Snapshot / SnapshotInto) and a restore method
// (Restore*), every field must be referenced in both directions — in the
// save path and in the restore path, where each path includes same-type
// methods called transitively (Restore → restore → restoreCore and the
// like). A field that is genuinely construction-time-immutable (geometry,
// wiring to sibling components, cached derived values) is annotated
// //packetlint:transient with a reason.
//
// This targets the snapshot-drift bug class directly: add a stateful
// field to cache.Cache and forget it in Restore, and warm-started trials
// stop being byte-identical to cold ones the first time the field's value
// matters — a divergence today's golden files only catch if the demo
// workload happens to exercise it.
var Snapcover = &Analyzer{
	Name: "snapcover",
	Doc: "every field of a Snapshot/Restore-owning struct must be " +
		"referenced by both the save and the restore path, or be " +
		"annotated //packetlint:transient",
	Run: runSnapcover,
}

// saveRoots and restore-root detection define the two directions. A
// method named "Restore" or prefixed "Restore" (RestoreSkipRNG,
// RestoreReseeded, ...) roots the restore direction.
var saveRoots = map[string]bool{"Snapshot": true, "SnapshotInto": true}

func isRestoreRoot(name string) bool {
	return name == "Restore" || (len(name) > len("Restore") && name[:len("Restore")] == "Restore")
}

func runSnapcover(pass *Pass) error {
	// Gather every method declaration grouped by receiver base type.
	methods := make(map[*types.Named]map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			named := receiverNamed(pass, fd)
			if named == nil {
				continue
			}
			m := methods[named]
			if m == nil {
				m = make(map[string]*ast.FuncDecl)
				methods[named] = m
			}
			m[fd.Name.Name] = fd
		}
	}

	for named, m := range methods {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var hasSave, hasRestore bool
		for name := range m {
			if saveRoots[name] {
				hasSave = true
			}
			if isRestoreRoot(name) {
				hasRestore = true
			}
		}
		if !hasSave || !hasRestore {
			continue
		}
		saved := fieldsReferenced(pass, named, m, func(n string) bool { return saveRoots[n] })
		restored := fieldsReferenced(pass, named, m, isRestoreRoot)
		checkCoverage(pass, named, st, saved, restored)
	}
	return nil
}

// receiverNamed resolves a method declaration's receiver base type.
func receiverNamed(pass *Pass, fd *ast.FuncDecl) *types.Named {
	names := fd.Recv.List[0].Names
	var t types.Type
	if len(names) == 1 {
		obj := pass.TypesInfo.Defs[names[0]]
		if obj == nil {
			return nil
		}
		t = obj.Type()
	} else {
		// Unnamed receiver: resolve via the receiver type expression.
		t = pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	}
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fieldsReferenced computes the set of named's direct fields referenced
// anywhere in the direction rooted at the methods selected by root,
// closed over same-type method calls.
func fieldsReferenced(pass *Pass, named *types.Named, methods map[string]*ast.FuncDecl, root func(string) bool) map[*types.Var]bool {
	// Transitive closure over same-receiver calls.
	inDir := make(map[string]bool)
	var queue []string
	for name := range methods {
		if root(name) {
			inDir[name] = true
			queue = append(queue, name)
		}
	}
	// Canonical traversal order (and mapemit-clean under self-analysis).
	sort.Strings(queue)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		fd := methods[name]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			recv := selection.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			rn, ok := recv.(*types.Named)
			if !ok || rn.Obj() != named.Obj() {
				return true
			}
			callee := sel.Sel.Name
			if _, local := methods[callee]; local && !inDir[callee] {
				inDir[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}

	refs := make(map[*types.Var]bool)
	for name := range inDir {
		fd := methods[name]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			// Only direct fields of the target struct count; promoted
			// selections through embedded fields have len(Index) > 1.
			if len(selection.Index()) != 1 {
				return true
			}
			recv := selection.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			rn, ok := recv.(*types.Named)
			if !ok || rn.Obj() != named.Obj() {
				return true
			}
			if v, ok := selection.Obj().(*types.Var); ok {
				refs[v] = true
			}
			return true
		})
	}
	return refs
}

func checkCoverage(pass *Pass, named *types.Named, st *types.Struct, saved, restored map[*types.Var]bool) {
	type miss struct {
		field *types.Var
		dirs  string
	}
	var misses []miss
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if pass.Transient(f.Pos()) {
			continue
		}
		inSave, inRestore := saved[f], restored[f]
		switch {
		case inSave && inRestore:
			continue
		case !inSave && !inRestore:
			misses = append(misses, miss{f, "either the Snapshot or the Restore path"})
		case !inSave:
			misses = append(misses, miss{f, "the Snapshot path"})
		default:
			misses = append(misses, miss{f, "the Restore path"})
		}
	}
	sort.Slice(misses, func(i, j int) bool { return misses[i].field.Pos() < misses[j].field.Pos() })
	for _, m := range misses {
		pass.Reportf(m.field.Pos(),
			"field %s.%s is not referenced in %s: snapshot drift breaks warm-start byte-identity (cover it, or mark //packetlint:transient <why> if construction-immutable)",
			named.Obj().Name(), m.field.Name(), m.dirs)
	}
}
