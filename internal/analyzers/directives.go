package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive comments are packetlint's escape hatches. Both require a
// human-readable reason so every exception is self-documenting:
//
//	//packetlint:allow <reason>      — suppress any diagnostic on this
//	                                   line (or the next, when the comment
//	                                   stands alone on its own line)
//	//packetlint:transient <reason>  — mark a struct field as outside the
//	                                   snapshot contract: rebuilt at
//	                                   construction, never mutated by the
//	                                   simulation, so snapcover must not
//	                                   demand Snapshot/Restore coverage
//
// A directive with an empty reason is itself a diagnostic: silent
// exceptions are exactly the drift these analyzers exist to stop.
const (
	directiveAllow     = "allow"
	directiveTransient = "transient"

	directivePrefix = "//packetlint:"
)

// directiveIndex maps (file, line) to the directive kinds that cover it.
type directiveIndex struct {
	// byLine keys are "file:line" for the directive's own line; a
	// directive alone on its line also covers the following line.
	byLine map[string]map[string]bool
}

func key(file string, line int) string {
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	// Lines are small; avoid strconv import churn with manual itoa.
	var digits [20]byte
	i := len(digits)
	n := line
	if n == 0 {
		i--
		digits[i] = '0'
	}
	for n > 0 {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
	}
	b.Write(digits[i:])
	return b.String()
}

// indexDirectives scans every comment in the files, returning the
// directive index plus findings for malformed directives (unknown kind or
// missing reason).
func indexDirectives(fset *token.FileSet, files []*ast.File) (*directiveIndex, []Finding) {
	idx := &directiveIndex{byLine: make(map[string]map[string]bool)}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				kind, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				if kind != directiveAllow && kind != directiveTransient {
					bad = append(bad, Finding{
						Analyzer: "packetlint",
						Pos:      pos,
						Message:  "unknown packetlint directive " + directivePrefix + kind,
					})
					continue
				}
				if strings.TrimSpace(reason) == "" {
					bad = append(bad, Finding{
						Analyzer: "packetlint",
						Pos:      pos,
						Message:  directivePrefix + kind + " needs a reason: //packetlint:" + kind + " <why>",
					})
					continue
				}
				idx.add(kind, pos.Filename, pos.Line)
				// A directive that is the only thing on its line covers
				// the next line, so annotations can sit above long
				// statements and field declarations.
				if pos.Column == 1 || onlyCommentOnLine(fset, f, c) {
					idx.add(kind, pos.Filename, pos.Line+1)
				}
			}
		}
	}
	return idx, bad
}

// onlyCommentOnLine reports whether comment c starts its source line (no
// code before it). Trailing comments share a line with code and cover only
// that line.
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	only := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !only {
			return false
		}
		if n.Pos() == token.NoPos {
			return true
		}
		p := fset.Position(n.Pos())
		if p.Line == cpos.Line && p.Column < cpos.Column {
			if _, isFile := n.(*ast.File); !isFile {
				only = false
			}
		}
		return only
	})
	return only
}

func (d *directiveIndex) add(kind, file string, line int) {
	k := key(file, line)
	m := d.byLine[k]
	if m == nil {
		m = make(map[string]bool)
		d.byLine[k] = m
	}
	m[kind] = true
}

func (d *directiveIndex) covers(kind string, pos token.Position) bool {
	if d == nil {
		return false
	}
	return d.byLine[key(pos.Filename, pos.Line)][kind]
}
