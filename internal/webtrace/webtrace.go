// Package webtrace provides the victim-side web traffic corpus for the §V
// fingerprinting attack. The paper captures Firefox page loads of five
// sites with tcpdump plus hotcrp login sessions; neither browser nor
// network is reachable from this reproduction, so the corpus is synthetic:
// each page is a sequence of HTTP response objects whose sizes and
// pacing produce the paper's characteristic on-the-wire shape — runs of
// MTU-sized frames ended by a variable-size tail frame, interleaved with
// small control packets ("the packets are usually congested on the two
// sides of the spectrum", §V).
//
// Per-trial randomness (size jitter, packet loss with retransmission,
// control-packet insertion) makes the classifier's job non-trivial, which
// is what the paper's 89.7%-not-100% accuracy reflects.
package webtrace

import (
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Object is one HTTP response object within a page load.
type Object struct {
	// Bytes is the payload size of the object.
	Bytes int
	// GapCycles is the think/RTT gap before the object's first frame.
	GapCycles uint64
}

// Site is a fingerprinting target.
type Site struct {
	Name    string
	Objects []Object
}

// Noise parameterizes per-trial trace perturbation.
type Noise struct {
	// TailJitterFrac jitters each object's size by up to this fraction
	// (dynamic HTML, cookies, timestamps).
	TailJitterFrac float64
	// LossProb duplicates a frame (TCP retransmission) with this
	// probability.
	LossProb float64
	// ControlProb inserts an extra 64-byte control frame after any frame
	// with this probability (ACKs riding the reverse path, pushes).
	ControlProb float64
}

// DefaultNoise returns perturbation levels that leave site identity
// recoverable but not trivially so.
func DefaultNoise() Noise {
	return Noise{TailJitterFrac: 0.08, LossProb: 0.02, ControlProb: 0.10}
}

// Trace is a concrete on-the-wire page load.
type Trace struct {
	// Sizes are per-frame sizes in bytes.
	Sizes []int
	// Gaps are cycles inserted before each frame.
	Gaps []uint64
}

// Generate renders the site into frames with per-trial noise.
func (s Site) Generate(rng *sim.RNG, n Noise) Trace {
	var tr Trace
	push := func(size int, gap uint64) {
		if size < netmodel.MinFrameSize {
			size = netmodel.MinFrameSize
		}
		if size > netmodel.MaxFrameSize {
			size = netmodel.MaxFrameSize
		}
		tr.Sizes = append(tr.Sizes, size)
		tr.Gaps = append(tr.Gaps, gap)
		if rng.Bernoulli(n.LossProb) { // retransmission duplicate
			tr.Sizes = append(tr.Sizes, size)
			tr.Gaps = append(tr.Gaps, 40_000)
		}
		if rng.Bernoulli(n.ControlProb) {
			tr.Sizes = append(tr.Sizes, netmodel.MinFrameSize)
			tr.Gaps = append(tr.Gaps, 5_000)
		}
	}
	const frameHdr = 54 // Ethernet(14)+IP(20)+TCP(20) headers per frame
	for _, obj := range s.Objects {
		bytes := int(rng.Jitter(float64(obj.Bytes), n.TailJitterFrac))
		gap := obj.GapCycles
		for bytes > 0 {
			chunk := netmodel.MTU - 40 // TCP MSS
			if bytes < chunk {
				chunk = bytes
			}
			push(chunk+frameHdr, gap) // full MSS frames are 1514 B on the wire
			gap = 2_000               // in-burst spacing
			bytes -= chunk
		}
	}
	return tr
}

// SizeClasses converts a trace to the attacker-visible feature: per frame,
// the cache-block size class 1..maxClass (maxClass means ">= maxClass
// blocks", the paper's "4+"). Buffers cap at 2 KB, so jumbo frames clamp.
func (t Trace) SizeClasses(maxClass int) []int {
	out := make([]int, len(t.Sizes))
	for i, s := range t.Sizes {
		blocks := (s + 63) / 64
		if blocks > maxClass {
			blocks = maxClass
		}
		out[i] = blocks
	}
	return out
}

// Source returns a netmodel source replaying the trace.
func (t Trace) Source(wire *netmodel.Wire, start uint64) netmodel.Source {
	return netmodel.NewTraceSource(wire, t.Sizes, t.Gaps, start)
}

// ClosedWorld returns the paper's five-site closed-world corpus. Object
// structures are invented but mutually distinctive in the ways real sites
// are: total bytes, object count, and the sizes of the tail frames.
func ClosedWorld() []Site {
	return []Site{
		{Name: "facebook.com", Objects: []Object{
			{Bytes: 900, GapCycles: 400_000},
			{Bytes: 52_000, GapCycles: 900_000},
			{Bytes: 130, GapCycles: 120_000},
			{Bytes: 18_500, GapCycles: 300_000},
			{Bytes: 4_200, GapCycles: 150_000},
			{Bytes: 74_000, GapCycles: 500_000},
			{Bytes: 260, GapCycles: 100_000},
		}},
		{Name: "twitter.com", Objects: []Object{
			{Bytes: 600, GapCycles: 400_000},
			{Bytes: 8_300, GapCycles: 700_000},
			{Bytes: 210, GapCycles: 90_000},
			{Bytes: 3_100, GapCycles: 200_000},
			{Bytes: 150, GapCycles: 80_000},
			{Bytes: 29_000, GapCycles: 600_000},
			{Bytes: 1_900, GapCycles: 150_000},
			{Bytes: 430, GapCycles: 100_000},
		}},
		{Name: "google.com", Objects: []Object{
			{Bytes: 250, GapCycles: 300_000},
			{Bytes: 13_000, GapCycles: 500_000},
			{Bytes: 1_100, GapCycles: 120_000},
			{Bytes: 700, GapCycles: 100_000},
		}},
		{Name: "amazon.com", Objects: []Object{
			{Bytes: 1_400, GapCycles: 400_000},
			{Bytes: 96_000, GapCycles: 800_000},
			{Bytes: 340, GapCycles: 90_000},
			{Bytes: 22_000, GapCycles: 350_000},
			{Bytes: 7_800, GapCycles: 200_000},
			{Bytes: 41_000, GapCycles: 450_000},
			{Bytes: 560, GapCycles: 110_000},
			{Bytes: 12_500, GapCycles: 280_000},
		}},
		{Name: "apple.com", Objects: []Object{
			{Bytes: 800, GapCycles: 350_000},
			{Bytes: 36_000, GapCycles: 650_000},
			{Bytes: 64_000, GapCycles: 550_000},
			{Bytes: 190, GapCycles: 90_000},
			{Bytes: 2_700, GapCycles: 160_000},
		}},
	}
}

// HotCRPLoginSuccess models the hotcrp.com response to a successful login
// (Fig 13a): a small redirect followed by the large dashboard page.
func HotCRPLoginSuccess() Site {
	return Site{Name: "hotcrp-login-success", Objects: []Object{
		{Bytes: 480, GapCycles: 400_000},    // 302 redirect
		{Bytes: 58_000, GapCycles: 700_000}, // dashboard HTML
		{Bytes: 9_400, GapCycles: 250_000},  // assets
		{Bytes: 350, GapCycles: 120_000},
	}}
}

// HotCRPLoginFailure models a failed login (Fig 13b): the login page
// re-rendered with an error banner — one medium object, no dashboard.
func HotCRPLoginFailure() Site {
	return Site{Name: "hotcrp-login-failure", Objects: []Object{
		{Bytes: 7_200, GapCycles: 400_000}, // login page + error
		{Bytes: 900, GapCycles: 200_000},   // css revalidation
		{Bytes: 120, GapCycles: 100_000},
	}}
}
