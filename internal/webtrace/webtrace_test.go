package webtrace

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func TestGenerateLegalFrames(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, site := range ClosedWorld() {
		tr := site.Generate(rng, DefaultNoise())
		if len(tr.Sizes) == 0 {
			t.Fatalf("%s: empty trace", site.Name)
		}
		if len(tr.Sizes) != len(tr.Gaps) {
			t.Fatalf("%s: sizes/gaps mismatch", site.Name)
		}
		for _, s := range tr.Sizes {
			if s < netmodel.MinFrameSize || s > netmodel.MaxFrameSize {
				t.Fatalf("%s: illegal frame size %d", site.Name, s)
			}
		}
	}
}

func TestTraceShapeMTURuns(t *testing.T) {
	// Large objects must appear as runs of MTU-sized frames with a
	// variable tail — the §V signal.
	rng := sim.NewRNG(2)
	site := Site{Name: "big", Objects: []Object{{Bytes: 30_000, GapCycles: 0}}}
	tr := site.Generate(rng, Noise{})
	full := 0
	for _, s := range tr.Sizes {
		if s == 1514 {
			full++
		}
	}
	if full < 15 {
		t.Errorf("30kB object should produce ~20 MSS frames, got %d", full)
	}
	last := tr.Sizes[len(tr.Sizes)-1]
	if last >= netmodel.MTU {
		t.Errorf("tail frame should be partial, got %d", last)
	}
}

func TestSizeClasses(t *testing.T) {
	tr := Trace{Sizes: []int{64, 128, 200, 1500}}
	classes := tr.SizeClasses(4)
	want := []int{1, 2, 4, 4}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("classes %v want %v", classes, want)
		}
	}
}

func TestNoiseChangesTraces(t *testing.T) {
	site := ClosedWorld()[0]
	a := site.Generate(sim.NewRNG(3), DefaultNoise())
	b := site.Generate(sim.NewRNG(4), DefaultNoise())
	if len(a.Sizes) == len(b.Sizes) {
		same := true
		for i := range a.Sizes {
			if a.Sizes[i] != b.Sizes[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different trial seeds must perturb the trace")
		}
	}
}

func TestZeroNoiseIsDeterministic(t *testing.T) {
	site := ClosedWorld()[1]
	a := site.Generate(sim.NewRNG(5), Noise{})
	b := site.Generate(sim.NewRNG(6), Noise{})
	if len(a.Sizes) != len(b.Sizes) {
		t.Fatal("noise-free traces must be identical")
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			t.Fatal("noise-free traces must be identical")
		}
	}
}

func TestSitesAreDistinctive(t *testing.T) {
	sites := ClosedWorld()
	lengths := map[int]string{}
	for _, s := range sites {
		tr := s.Generate(sim.NewRNG(7), Noise{})
		if prev, dup := lengths[len(tr.Sizes)]; dup {
			t.Errorf("%s and %s have identical noise-free lengths (%d); weak corpus",
				s.Name, prev, len(tr.Sizes))
		}
		lengths[len(tr.Sizes)] = s.Name
	}
}

func TestHotCRPTracesDiffer(t *testing.T) {
	ok := HotCRPLoginSuccess().Generate(sim.NewRNG(8), Noise{})
	fail := HotCRPLoginFailure().Generate(sim.NewRNG(9), Noise{})
	if len(ok.Sizes) <= 2*len(fail.Sizes) {
		t.Errorf("successful login (%d frames) should dwarf failure (%d frames)",
			len(ok.Sizes), len(fail.Sizes))
	}
}
