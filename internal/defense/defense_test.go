package defense

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/nic"
	"repro/internal/perfsim"
	"repro/internal/testbed"
)

// TestRegistryRoundTrip: every registered defense must be recoverable by
// its own name, as the same value — the property that lets reports,
// sweep-cell labels, and CLI arguments all use names as identities.
func TestRegistryRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		if seen[d.Name()] {
			t.Fatalf("duplicate registry name %q", d.Name())
		}
		seen[d.Name()] = true
		got, ok := ByName(d.Name())
		if !ok {
			t.Fatalf("ByName(%q) not found", d.Name())
		}
		if !reflect.DeepEqual(got, d) {
			t.Errorf("ByName(%q) = %#v, want %#v", d.Name(), got, d)
		}
	}
	if _, ok := ByName("definitely-not-registered"); ok {
		t.Error("ByName must reject unknown names")
	}
	if got, want := len(Names()), len(All()); got != want {
		t.Errorf("Names() has %d entries, registry %d", got, want)
	}
}

// TestStackFingerprintCanonicalized: the fingerprint of a Stack must not
// depend on layer order — random permutations of the same layers must
// produce identical fingerprints (they prepare interchangeable machines),
// while the name preserves application order.
func TestStackFingerprintCanonicalized(t *testing.T) {
	layers := []Defense{
		AdaptivePartitioning{},
		TimerCoarsening{Jitter: 64},
		RingRandomization{Interval: 1_000},
		DisableDDIO{},
	}
	want := NewStack(layers...).Fingerprint()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		perm := make([]Defense, len(layers))
		for i, j := range rng.Perm(len(layers)) {
			perm[i] = layers[j]
		}
		s := NewStack(perm...)
		if got := s.Fingerprint(); got != want {
			t.Fatalf("permutation %d: fingerprint %q != %q", trial, got, want)
		}
	}
	// Different layer sets must not collide.
	if NewStack(layers[:2]...).Fingerprint() == want {
		t.Error("subset stack collides with full stack")
	}
	// Nested stacks flatten to the same canonical fingerprint.
	nested := NewStack(NewStack(layers[0], layers[1]), NewStack(layers[2], layers[3]))
	if got := nested.Fingerprint(); got != want {
		t.Errorf("nested stack fingerprint %q != flat %q", got, want)
	}
}

// TestStackFingerprintPreservesConflictingOrder: two layers of the same
// type write the same option fields (last Apply wins), so stacks that
// differ only in their relative order prepare different machines and
// must not share a fingerprint — canonicalization is only sound across
// commuting (distinct-type) layers.
func TestStackFingerprintPreservesConflictingOrder(t *testing.T) {
	a := NewStack(TimerCoarsening{Jitter: 32}, TimerCoarsening{Jitter: 64})
	b := NewStack(TimerCoarsening{Jitter: 64}, TimerCoarsening{Jitter: 32})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("conflicting same-type layers in different orders must not share a fingerprint")
	}
	var oa, ob testbed.Options
	a.Apply(&oa)
	b.Apply(&ob)
	if oa.TimerNoise == ob.TimerNoise {
		t.Fatal("test premise broken: the two stacks should produce different machines")
	}
	// Commuting padding around the conflict must still canonicalize.
	c := NewStack(DisableDDIO{}, TimerCoarsening{Jitter: 32}, TimerCoarsening{Jitter: 64})
	d := NewStack(TimerCoarsening{Jitter: 32}, TimerCoarsening{Jitter: 64}, DisableDDIO{})
	if c.Fingerprint() != d.Fingerprint() {
		t.Error("distinct-type layers must still commute in the fingerprint")
	}

	// Hand-built literals bypass NewStack's flattening; Fingerprint must
	// flatten to leaves itself, or a nested conflicting layer would hide
	// inside an opaque "Stack" group and alias a different machine.
	e := Stack{Layers: []Defense{TimerCoarsening{Jitter: 32}, Stack{Layers: []Defense{TimerCoarsening{Jitter: 64}}}}}
	f := Stack{Layers: []Defense{Stack{Layers: []Defense{TimerCoarsening{Jitter: 64}}}, TimerCoarsening{Jitter: 32}}}
	if e.Fingerprint() == f.Fingerprint() {
		t.Error("nested conflicting layers in different orders must not share a fingerprint")
	}
	var oe, of testbed.Options
	e.Apply(&oe)
	f.Apply(&of)
	if oe.TimerNoise == of.TimerNoise {
		t.Fatal("test premise broken: nested stacks should produce different machines")
	}
}

// TestApplySemantics pins what each defense does to the machine options.
func TestApplySemantics(t *testing.T) {
	base := func() testbed.Options { return testbed.DefaultOptions(1) }

	o := base()
	NoDefense{}.Apply(&o)
	if !reflect.DeepEqual(o, base()) {
		t.Error("NoDefense must not change options")
	}

	o = base()
	DisableDDIO{}.Apply(&o)
	if o.Cache.DDIO {
		t.Error("DisableDDIO left DDIO on")
	}

	o = base()
	RingRandomization{}.Apply(&o)
	if o.NIC.Randomize != nic.RandomizeFull {
		t.Error("full randomization not installed")
	}
	o = base()
	RingRandomization{Interval: 10_000}.Apply(&o)
	if o.NIC.Randomize != nic.RandomizePeriodic || o.NIC.RandomizeInterval != 10_000 {
		t.Error("periodic randomization not installed")
	}

	o = base()
	TimerCoarsening{Jitter: 99}.Apply(&o)
	if o.TimerNoise != 99 {
		t.Error("timer coarsening not installed")
	}

	o = base()
	AdaptivePartitioning{}.Apply(&o)
	if o.Cache.Partition == nil || *o.Cache.Partition != *cache.DefaultPartitionConfig() {
		t.Error("partition defense not installed with default config")
	}
	// Apply must copy the config, never alias the default or the
	// defense's own pointer.
	shared := cache.DefaultPartitionConfig()
	d := AdaptivePartitioning{Config: shared}
	o = base()
	d.Apply(&o)
	o.Cache.Partition.Period = 1
	if shared.Period == 1 {
		t.Error("Apply aliased the caller's partition config")
	}

	o = base()
	NewStack(DisableDDIO{}, TimerCoarsening{Jitter: 31}).Apply(&o)
	if o.Cache.DDIO || o.TimerNoise != 31 {
		t.Error("stack did not apply every layer")
	}
}

// TestPerfSchemes pins the cost-axis mapping, including the stack's
// "dominant cost" rule.
func TestPerfSchemes(t *testing.T) {
	cases := []struct {
		d    Defense
		want perfsim.Scheme
	}{
		{NoDefense{}, perfsim.SchemeDDIO},
		{DisableDDIO{}, perfsim.SchemeNoDDIO},
		{RingRandomization{}, perfsim.SchemeFullRandom},
		{RingRandomization{Interval: 1_000}, perfsim.SchemePartial1k},
		{RingRandomization{Interval: 10_000}, perfsim.SchemePartial10k},
		{TimerCoarsening{Jitter: 64}, perfsim.SchemeDDIO},
		{AdaptivePartitioning{}, perfsim.SchemeAdaptive},
		{NewStack(TimerCoarsening{Jitter: 64}, AdaptivePartitioning{}), perfsim.SchemeAdaptive},
		{NewStack(AdaptivePartitioning{}, RingRandomization{}), perfsim.SchemeFullRandom},
	}
	for _, c := range cases {
		if got := c.d.PerfScheme(); got != c.want {
			t.Errorf("%s: PerfScheme = %v, want %v", c.d.Name(), got, c.want)
		}
	}
}

// TestRegistryMachinesBuild: every registered defense must produce a
// buildable demo-scale machine.
func TestRegistryMachinesBuild(t *testing.T) {
	for _, d := range All() {
		opts := testbed.DefaultOptions(1)
		opts.Cache = cache.ScaledConfig(2, 2048, 8)
		opts.NIC.RingSize = 64
		d.Apply(&opts)
		if err := opts.Cache.Validate(); err != nil {
			t.Errorf("%s: invalid cache config: %v", d.Name(), err)
		}
		if _, err := testbed.New(opts); err != nil {
			t.Errorf("%s: testbed build failed: %v", d.Name(), err)
		}
	}
}

// TestNamesAreSlugSafe: registry names feed metric-name slugs and cell
// keys; keep them lowercase with no spaces or commas.
func TestNamesAreSlugSafe(t *testing.T) {
	for _, n := range Names() {
		if n == "" || n != strings.ToLower(n) || strings.ContainsAny(n, " ,=") {
			t.Errorf("registry name %q is not slug/key safe", n)
		}
	}
}

// TestPerfEffects pins the compositional cost mapping, including the
// exact-interval fix PerfScheme's bucketing loses and the stack rule
// that every costly layer survives composition.
func TestPerfEffects(t *testing.T) {
	if e := (RingRandomization{Interval: 2_000}).PerfEffects(); e.OverheadPerPacket() != 256 {
		t.Errorf("2k interval overhead = %d, want the exact 256, not a bucket", e.OverheadPerPacket())
	}
	for _, d := range All() {
		// Registry defenses sit on menu points, where the exact model and
		// the legacy scheme must agree on cost.
		if got, want := d.PerfEffects().OverheadPerPacket(), perfsim.RandomizationOverhead(d.PerfScheme()); got != want {
			t.Errorf("%s: effects overhead %d != scheme overhead %d", d.Name(), got, want)
		}
	}
	s := NewStack(AdaptivePartitioning{}, RingRandomization{Interval: 1_000}, DisableDDIO{})
	e := s.PerfEffects()
	if e.Partition == nil || !e.DDIOOff || e.Randomize != nic.RandomizePeriodic || e.RandomizeInterval != 1_000 {
		t.Errorf("stack effects dropped a layer: %+v", e)
	}
	// PerfScheme's dominant-layer rule keeps only one of those three.
	if s.PerfScheme() != perfsim.SchemeNoDDIO {
		t.Errorf("deprecated shim changed: PerfScheme = %v", s.PerfScheme())
	}
}

// TestStackCostsComposeInPerfsim is the acceptance property: a
// partition+randomization stack, run through the performance model via
// its composed effects, costs strictly more than either layer alone.
func TestStackCostsComposeInPerfsim(t *testing.T) {
	cfg := perfsim.DefaultNginxConfig()
	cfg.Requests = 3_000
	cfg.TargetRate = 140_000
	p99 := func(d Defense) float64 {
		m, err := perfsim.RunNginxEffects(d.PerfEffects(), 20<<20, 7, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.LatencyPercentile(99)
	}
	part := p99(AdaptivePartitioning{})
	rand := p99(RingRandomization{})
	both := p99(NewStack(AdaptivePartitioning{}, RingRandomization{}))
	if !(both > part && both > rand) {
		t.Fatalf("stack p99 %.0f must exceed partition %.0f and randomization %.0f alone", both, part, rand)
	}
}

// TestValidation: the construction-time parameter checks the search
// mutator relies on — nonsense candidates must fail loudly.
func TestValidation(t *testing.T) {
	badPart := func(mut func(*cache.PartitionConfig)) *cache.PartitionConfig {
		c := *cache.DefaultPartitionConfig()
		mut(&c)
		return &c
	}
	cases := []struct {
		name string
		d    Defense
		ok   bool
	}{
		{"none", NoDefense{}, true},
		{"no-ddio", DisableDDIO{}, true},
		{"ring-full", RingRandomization{}, true},
		{"ring-1k", RingRandomization{Interval: 1_000}, true},
		{"ring-negative", RingRandomization{Interval: -5}, false},
		{"timer-64", TimerCoarsening{Jitter: 64}, true},
		{"timer-zero", TimerCoarsening{}, false},
		{"partition-default", AdaptivePartitioning{}, true},
		{"partition-zero-period", AdaptivePartitioning{Config: badPart(func(c *cache.PartitionConfig) { c.Period = 0 })}, false},
		{"partition-zero-ways", AdaptivePartitioning{Config: badPart(func(c *cache.PartitionConfig) { c.MinIOWays = 0; c.MaxIOWays = 0 })}, false},
		{"partition-inverted-ways", AdaptivePartitioning{Config: badPart(func(c *cache.PartitionConfig) { c.MinIOWays = 3; c.MaxIOWays = 1 })}, false},
		{"partition-inverted-thresholds", AdaptivePartitioning{Config: badPart(func(c *cache.PartitionConfig) { c.TLow = 9_000 })}, false},
		{"stack-valid", NewStack(AdaptivePartitioning{}, TimerCoarsening{Jitter: 64}), true},
		{"stack-bad-layer", NewStack(AdaptivePartitioning{}, RingRandomization{Interval: -1}), false},
	}
	for _, c := range cases {
		if err := Validate(c.d); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%t", c.name, err, c.ok)
		}
	}
	// Constructors surface the same checks.
	if _, err := NewRingRandomization(-1); err == nil {
		t.Error("NewRingRandomization(-1) must fail")
	}
	if _, err := NewTimerCoarsening(0); err == nil {
		t.Error("NewTimerCoarsening(0) must fail")
	}
	if _, err := NewAdaptivePartitioning(badPart(func(c *cache.PartitionConfig) { c.MinIOWays = 0 })); err == nil {
		t.Error("NewAdaptivePartitioning with zero ways must fail")
	}
	if d, err := NewRingRandomization(500); err != nil || d.Interval != 500 {
		t.Errorf("NewRingRandomization(500) = %+v, %v", d, err)
	}
}
