// Package defense is the first-class mitigation surface of the
// reproduction: every defense the paper evaluates (§VI software
// mitigations, §VII adaptive I/O cache partitioning) plus timer
// coarsening is a value implementing one small interface, discoverable
// through a registry, and composable into layered stacks.
//
// A Defense acts on both axes the paper's second half measures:
//
//   - Apply(*testbed.Options) reshapes the machine the attack runs on —
//     cache features, driver behaviour, timer granularity — so "does the
//     attack still work" is answered by running any attack experiment on
//     the defended machine;
//   - PerfScheme() names the perfsim configuration that models the same
//     mitigation, so "what does it cost" is answered by the Figs 14-16
//     performance model.
//
// Fingerprint() canonically identifies the machine change a defense
// makes. It exists because testbed.Options.OfflineFingerprint
// deliberately excludes online knobs (timer jitter) that a *platform
// defense* nonetheless imposes on the attacker's offline phase: two
// prepared machines that differ only in a timer-coarsening defense must
// never share a warm-start artifact, and the artifact-store key
// incorporates the defense fingerprint to guarantee that.
package defense

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/nic"
	"repro/internal/perfsim"
	"repro/internal/testbed"
)

// Defense is one platform mitigation. Implementations are immutable
// values: Apply copies state into the options, never the other way.
type Defense interface {
	// Name is the registry identifier ("none", "adaptive-partition", ...).
	Name() string
	// Fingerprint canonically identifies the machine change the defense
	// makes — the content-address component warm-start artifact keys use.
	// Equal fingerprints mean interchangeable prepared machines.
	Fingerprint() string
	// Apply installs the mitigation into the machine options, before the
	// testbed is built. It affects the offline and online phases alike: a
	// platform defense is not something the attacker can prepare around.
	Apply(*testbed.Options)
	// PerfScheme names the perfsim scheme modeling this defense's
	// performance cost (the Figs 14-16 axis). Defenses with no
	// server-side cost (timer coarsening) return the vulnerable baseline
	// scheme.
	//
	// Deprecated: the scheme menu cannot represent parameterized
	// defenses (arbitrary randomization periods) or stacks with more
	// than one costly layer. Use PerfEffects, which composes exactly;
	// PerfScheme remains as the nearest-menu-point approximation.
	PerfScheme() perfsim.Scheme
	// PerfEffects returns the compositional performance model of the
	// defense: the machine-configuration delta perfsim installs to
	// measure its cost. Stacks compose their layers' effects, so
	// interacting overheads are simulated together rather than reduced
	// to a dominant layer.
	PerfEffects() perfsim.Effects
}

// Validate reports whether the defense's parameters describe a machine
// the simulator can build: search mutators and API clients construct
// defenses from raw numbers, and a zero or negative period/way-count
// must fail loudly here instead of silently building a nonsense
// candidate. Parameter-free defenses are always valid.
func Validate(d Defense) error {
	if v, ok := d.(interface{ Validate() error }); ok {
		return v.Validate()
	}
	return nil
}

// NoDefense is the vulnerable stock machine: DDIO on, stock IGB driver,
// fine-grained timer.
type NoDefense struct{}

func (NoDefense) Name() string                 { return "none" }
func (NoDefense) Fingerprint() string          { return "none" }
func (NoDefense) Apply(*testbed.Options)       {}
func (NoDefense) PerfScheme() perfsim.Scheme   { return perfsim.SchemeDDIO }
func (NoDefense) PerfEffects() perfsim.Effects { return perfsim.Effects{} }

// DisableDDIO turns off Data Direct I/O: DMA writes go to memory instead
// of allocating into the LLC. The paper shows the attack survives in a
// degraded form (driver reads still leak), at a steep memory-traffic cost
// (Fig 15).
type DisableDDIO struct{}

func (DisableDDIO) Name() string                 { return "no-ddio" }
func (DisableDDIO) Fingerprint() string          { return "no-ddio" }
func (DisableDDIO) PerfScheme() perfsim.Scheme   { return perfsim.SchemeNoDDIO }
func (DisableDDIO) PerfEffects() perfsim.Effects { return perfsim.Effects{DDIOOff: true} }

func (DisableDDIO) Apply(o *testbed.Options) { o.Cache.DDIO = false }

// RingRandomization is the §VI-b software mitigation: re-allocate rx
// buffer pages so the ring's cache footprint stops being stable.
// Interval 0 is the full variant (a fresh page per packet); a positive
// interval re-allocates the whole ring every Interval packets.
type RingRandomization struct {
	// Interval is the packet count between whole-ring re-randomizations;
	// 0 selects full per-packet randomization.
	Interval int
}

// NewRingRandomization builds a validated ring-randomization defense:
// interval 0 is the full per-packet variant, positive intervals are
// periodic, negative intervals are rejected.
func NewRingRandomization(interval int) (RingRandomization, error) {
	r := RingRandomization{Interval: interval}
	return r, r.Validate()
}

// Validate rejects negative re-randomization intervals (0 means full).
func (r RingRandomization) Validate() error {
	if r.Interval < 0 {
		return fmt.Errorf("defense: ring-randomization interval %d is negative", r.Interval)
	}
	return nil
}

func (r RingRandomization) Name() string {
	if r.Interval == 0 {
		return "ring-full-random"
	}
	return "ring-partial-" + compactCount(r.Interval)
}

func (r RingRandomization) Fingerprint() string { return r.Name() }

func (r RingRandomization) Apply(o *testbed.Options) {
	if r.Interval == 0 {
		o.NIC.Randomize = nic.RandomizeFull
		o.NIC.RandomizeInterval = 0
		return
	}
	o.NIC.Randomize = nic.RandomizePeriodic
	o.NIC.RandomizeInterval = r.Interval
}

// PerfScheme maps the interval onto the three randomization points the
// performance model carries (Fig 16): full, 1k-periodic, 10k-periodic.
// Intervals in between round toward the closer modeled cost.
func (r RingRandomization) PerfScheme() perfsim.Scheme {
	switch {
	case r.Interval == 0:
		return perfsim.SchemeFullRandom
	case r.Interval <= 3_000:
		return perfsim.SchemePartial1k
	default:
		return perfsim.SchemePartial10k
	}
}

// PerfEffects models the configured interval exactly: the amortized
// per-packet cost is a function of the period, not the nearest of the
// three menu points PerfScheme rounds to.
func (r RingRandomization) PerfEffects() perfsim.Effects {
	if r.Interval == 0 {
		return perfsim.Effects{Randomize: nic.RandomizeFull}
	}
	return perfsim.Effects{Randomize: nic.RandomizePeriodic, RandomizeInterval: r.Interval}
}

// TimerCoarsening denies the attacker a fine-grained timer (§VI-a): every
// latency reading gains one-sided jitter of the given magnitude. Unlike
// the sweep axis of the same name, the coarse timer applies during the
// attacker's offline phase too — a platform defense cannot be prepared
// around — which is why the defense participates in artifact
// fingerprints despite changing no offline-fingerprinted option.
type TimerCoarsening struct {
	// Jitter is the magnitude in cycles (see testbed.Options.TimerNoise).
	Jitter uint64
}

// NewTimerCoarsening builds a validated timer-coarsening defense; a
// zero jitter is rejected (it coarsens nothing — use NoDefense).
func NewTimerCoarsening(jitter uint64) (TimerCoarsening, error) {
	t := TimerCoarsening{Jitter: jitter}
	return t, t.Validate()
}

// Validate rejects a zero coarsening granularity.
func (t TimerCoarsening) Validate() error {
	if t.Jitter == 0 {
		return fmt.Errorf("defense: timer-coarsening jitter must be positive")
	}
	return nil
}

func (t TimerCoarsening) Name() string                 { return fmt.Sprintf("timer-coarse-%d", t.Jitter) }
func (t TimerCoarsening) Fingerprint() string          { return t.Name() }
func (t TimerCoarsening) Apply(o *testbed.Options)     { o.TimerNoise = t.Jitter }
func (t TimerCoarsening) PerfScheme() perfsim.Scheme   { return perfsim.SchemeDDIO }
func (t TimerCoarsening) PerfEffects() perfsim.Effects { return perfsim.Effects{} }

// AdaptivePartitioning is the paper's §VII defense: I/O allocations are
// confined to an adaptive per-set way quota and can never evict CPU
// lines.
type AdaptivePartitioning struct {
	// Config overrides the §VII parameters; nil selects
	// cache.DefaultPartitionConfig().
	Config *cache.PartitionConfig
}

func (AdaptivePartitioning) Name() string { return "adaptive-partition" }

func (a AdaptivePartitioning) Fingerprint() string {
	return fmt.Sprintf("adaptive-partition%+v", *a.config())
}

func (a AdaptivePartitioning) config() *cache.PartitionConfig {
	if a.Config != nil {
		return a.Config
	}
	return cache.DefaultPartitionConfig()
}

func (a AdaptivePartitioning) Apply(o *testbed.Options) {
	cfg := *a.config()
	o.Cache.Partition = &cfg
}

func (AdaptivePartitioning) PerfScheme() perfsim.Scheme { return perfsim.SchemeAdaptive }

func (a AdaptivePartitioning) PerfEffects() perfsim.Effects {
	cfg := *a.config()
	return perfsim.Effects{Partition: &cfg}
}

// NewAdaptivePartitioning builds a validated partitioning defense; nil
// selects the §VII default parameters.
func NewAdaptivePartitioning(cfg *cache.PartitionConfig) (AdaptivePartitioning, error) {
	a := AdaptivePartitioning{Config: cfg}
	return a, a.Validate()
}

// Validate rejects partition parameters no machine can run: a
// non-positive adaptation period, inverted thresholds, or a way quota
// that is zero, negative, or inverted. The upper way bound against the
// concrete cache geometry is checked at build time (cache.Config
// .Validate), since the defense does not know the machine's way count.
func (a AdaptivePartitioning) Validate() error {
	cfg := a.config()
	switch {
	case cfg.Period == 0:
		return fmt.Errorf("defense: partition period must be positive")
	case cfg.TLow > cfg.THigh:
		return fmt.Errorf("defense: partition thresholds inverted (low %d > high %d)", cfg.TLow, cfg.THigh)
	case cfg.MinIOWays < 1:
		return fmt.Errorf("defense: partition min I/O ways %d must be at least 1", cfg.MinIOWays)
	case cfg.MaxIOWays < cfg.MinIOWays:
		return fmt.Errorf("defense: partition way quota inverted (min %d > max %d)", cfg.MinIOWays, cfg.MaxIOWays)
	}
	return nil
}

// Stack layers several defenses: Apply runs them in the given order.
// Order is preserved for application and naming, but canonicalized in
// Fingerprint() exactly as far as is sound: layers of *different*
// concrete types touch disjoint option fields and commute, so their
// order is sorted away and permuted stacks share warm-start artifacts;
// layers of the *same* type write the same fields (last Apply wins), so
// their relative order is semantic and survives canonicalization —
// NewStack(TimerCoarsening{32}, TimerCoarsening{64}) and its reverse
// prepare different machines and must never collide. Defense
// implementations outside this package must follow the same contract:
// distinct types touch disjoint fields.
type Stack struct {
	Layers []Defense
}

// NewStack builds a layered defense. It flattens nested stacks so
// fingerprint canonicalization sees every leaf.
func NewStack(layers ...Defense) Stack {
	var flat []Defense
	for _, d := range layers {
		if s, ok := d.(Stack); ok {
			flat = append(flat, s.Layers...)
			continue
		}
		flat = append(flat, d)
	}
	return Stack{Layers: flat}
}

func (s Stack) Name() string {
	names := make([]string, len(s.Layers))
	for i, d := range s.Layers {
		names[i] = d.Name()
	}
	return strings.Join(names, "+")
}

// flatten returns the stack's leaf layers in application order,
// expanding nested stacks. NewStack already flattens at construction,
// but Layers is exported, so a hand-built literal may still nest — and
// canonicalization must always group by *leaf* type, or a nested stack
// would be treated as one opaque commuting layer and two different
// machines could share a fingerprint.
func (s Stack) flatten() []Defense {
	out := make([]Defense, 0, len(s.Layers))
	for _, d := range s.Layers {
		if n, ok := d.(Stack); ok {
			out = append(out, n.flatten()...)
			continue
		}
		out = append(out, d)
	}
	return out
}

func (s Stack) Fingerprint() string {
	// Group leaves by concrete type, preserving application order within
	// each group (see the type comment for why), then sort the groups.
	order := []string{}
	groups := map[string][]string{}
	for _, d := range s.flatten() {
		k := fmt.Sprintf("%T", d)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], d.Fingerprint())
	}
	parts := make([]string, len(order))
	for i, k := range order {
		parts[i] = strings.Join(groups[k], ">")
	}
	sort.Strings(parts)
	return "stack[" + strings.Join(parts, ",") + "]"
}

func (s Stack) Apply(o *testbed.Options) {
	for _, d := range s.Layers {
		d.Apply(o)
	}
}

// PerfEffects composes the layers' effects in application order, so the
// cost model sees one machine with every mechanism installed — the
// partition pressure AND the randomization allocations, not whichever
// single layer ranks costlier.
func (s Stack) PerfEffects() perfsim.Effects {
	var e perfsim.Effects
	for _, d := range s.Layers {
		e = e.Compose(d.PerfEffects())
	}
	return e
}

// Validate checks every layer that carries parameters.
func (s Stack) Validate() error {
	for _, d := range s.Layers {
		if err := Validate(d); err != nil {
			return fmt.Errorf("layer %s: %w", d.Name(), err)
		}
	}
	return nil
}

// PerfScheme returns the costliest component's scheme: perfsim models one
// mitigation at a time, and a stack's dominant cost is the one worth
// reporting on the overhead axis.
//
// Deprecated: the dominant-layer rule drops interacting overheads; use
// PerfEffects, which composes every layer into one machine.
func (s Stack) PerfScheme() perfsim.Scheme {
	best := perfsim.SchemeDDIO
	for _, d := range s.Layers {
		if sc := d.PerfScheme(); costRank(sc) > costRank(best) {
			best = sc
		}
	}
	return best
}

// costRank orders schemes by their measured performance impact (Figs
// 14-16): the baseline costs nothing, periodic randomization is amortized
// noise, adaptive partitioning costs a few percent, disabling DDIO
// multiplies memory traffic, and full randomization pays an allocation
// per packet (~+41.8% p99 in the paper).
func costRank(s perfsim.Scheme) int {
	switch s {
	case perfsim.SchemePartial10k:
		return 1
	case perfsim.SchemePartial1k:
		return 2
	case perfsim.SchemeAdaptive:
		return 3
	case perfsim.SchemeNoDDIO:
		return 4
	case perfsim.SchemeFullRandom:
		return 5
	default:
		return 0
	}
}

// DefaultTimerJitter is the registry's timer-coarsening magnitude: well
// past the ~40-cycle hit/miss edge the decoder keys on, while still below
// the ~100-cycle point where demo-scale offline preparation collapses
// entirely (the attack should degrade measurably, not trivially fail to
// build).
const DefaultTimerJitter = 64

// All returns the defense registry in evaluation order: the vulnerable
// baseline first, then the §VI software mitigations, timer coarsening,
// the §VII partitioning defense, and a defense-in-depth stack. The
// matrix_defense experiment runs every attack against every entry.
func All() []Defense {
	return []Defense{
		NoDefense{},
		DisableDDIO{},
		RingRandomization{},
		RingRandomization{Interval: 1_000},
		RingRandomization{Interval: 10_000},
		TimerCoarsening{Jitter: DefaultTimerJitter},
		AdaptivePartitioning{},
		NewStack(AdaptivePartitioning{}, TimerCoarsening{Jitter: DefaultTimerJitter}),
	}
}

// ByName returns the registered defense with the given name.
func ByName(name string) (Defense, bool) {
	for _, d := range All() {
		if d.Name() == name {
			return d, true
		}
	}
	return nil, false
}

// Names lists the registry names in registry order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.Name()
	}
	return out
}

// compactCount renders a packet count the way the paper labels it: 1000
// -> "1k", 10000 -> "10k", anything not a clean multiple stays decimal.
func compactCount(n int) string {
	if n%1_000 == 0 {
		return fmt.Sprintf("%dk", n/1_000)
	}
	return fmt.Sprint(n)
}
