package stats

import "testing"

func TestLFSR15Period(t *testing.T) {
	l := NewLFSR15(1)
	seen := make(map[uint16]bool)
	start := l.state
	count := 0
	for {
		l.NextBit()
		count++
		if l.state == start {
			break
		}
		if seen[l.state] {
			t.Fatalf("state repeated before returning to start after %d steps", count)
		}
		seen[l.state] = true
		if count > 1<<16 {
			t.Fatal("no cycle found")
		}
	}
	if count != (1<<15)-1 {
		t.Errorf("period %d want %d (maximal length)", count, (1<<15)-1)
	}
}

func TestLFSR15NeverZero(t *testing.T) {
	l := NewLFSR15(12345)
	for i := 0; i < 40000; i++ {
		l.NextBit()
		if l.state == 0 {
			t.Fatal("LFSR reached all-zero state")
		}
	}
}

func TestLFSR15ZeroSeed(t *testing.T) {
	l := NewLFSR15(0)
	if l.state == 0 {
		t.Fatal("zero seed must be replaced")
	}
}

func TestLFSR15Balance(t *testing.T) {
	// A maximal-length sequence has 2^14 ones and 2^14-1 zeros per period.
	l := NewLFSR15(99)
	ones := 0
	n := (1 << 15) - 1
	for i := 0; i < n; i++ {
		ones += l.NextBit()
	}
	if ones != 1<<14 {
		t.Errorf("ones per period = %d want %d", ones, 1<<14)
	}
}

func TestLFSRSymbolsRange(t *testing.T) {
	l := NewLFSR15(5)
	for _, base := range []int{2, 3, 4} {
		for _, s := range l.Symbols(1000, base) {
			if s < 0 || s >= base {
				t.Fatalf("symbol %d out of range for base %d", s, base)
			}
		}
	}
}

func TestLFSRDeterminism(t *testing.T) {
	a := NewLFSR15(42).Bits(100)
	b := NewLFSR15(42).Bits(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same stream")
		}
	}
}
