package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pts(vals ...float64) [][]float64 {
	out := make([][]float64, len(vals))
	for i, v := range vals {
		out[i] = []float64{v}
	}
	return out
}

var w1 = []float64{1}

func TestAlignDistanceIdentity(t *testing.T) {
	a := pts(1, 2, 3, 4, 5)
	if d := AlignDistance(a, a, w1, 1, 4); d != 0 {
		t.Errorf("self distance %v want 0", d)
	}
}

func TestAlignDistanceEmpty(t *testing.T) {
	if d := AlignDistance(nil, nil, w1, 1, 4); d != 0 {
		t.Errorf("both empty: %v", d)
	}
	if d := AlignDistance(pts(1, 2), nil, w1, 1, 4); d <= 0 || math.IsInf(d, 1) {
		t.Errorf("one empty must cost skips: %v", d)
	}
}

func TestAlignDistanceInsertionCheaperThanMismatch(t *testing.T) {
	// An inserted outlier point should cost ~one skip penalty, not the
	// full mismatch cost — the property the fingerprint classifier needs
	// for retransmitted/control frames.
	base := pts(4, 4, 4, 4, 4, 4)
	inserted := pts(4, 4, 4, 99, 4, 4, 4) // one extra wild point
	d := AlignDistance(inserted, base, w1, 1.0, 4)
	maxExpected := 1.0 / float64(len(base)+len(inserted)) * 1.5
	if d > maxExpected {
		t.Errorf("insertion cost %v should be about one skip (%v)", d, maxExpected)
	}
}

func TestAlignDistanceStructuralDifferenceCosts(t *testing.T) {
	a := pts(4, 4, 4, 1, 4, 4)
	b := pts(4, 4, 4, 4, 4, 4)
	same := AlignDistance(b, b, w1, 1, 4)
	diff := AlignDistance(a, b, w1, 1, 4)
	if diff <= same {
		t.Errorf("structural difference must cost: %v <= %v", diff, same)
	}
}

func TestAlignDistanceSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(20), 1+rng.Intn(20)
		a := make([][]float64, n)
		b := make([][]float64, m)
		for i := range a {
			a[i] = []float64{float64(rng.Intn(5))}
		}
		for i := range b {
			b[i] = []float64{float64(rng.Intn(5))}
		}
		d1 := AlignDistance(a, b, w1, 1, 6)
		d2 := AlignDistance(b, a, w1, 1, 6)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAlignDistanceNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([][]float64, 1+rng.Intn(15))
		b := make([][]float64, 1+rng.Intn(15))
		for i := range a {
			a[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		for i := range b {
			b[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		d := AlignDistance(a, b, []float64{1, 0.5}, 2, 5)
		return d >= 0 && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAlignDistanceBandWidensForLengthGap(t *testing.T) {
	// Sequences whose length difference exceeds the band must still align
	// (the band auto-widens) rather than return infinity.
	a := pts(1, 1, 1, 1, 1, 1, 1, 1, 1, 1)
	b := pts(1, 1)
	if d := AlignDistance(a, b, w1, 1, 1); math.IsInf(d, 1) {
		t.Error("length gap beyond band must not be infinite")
	}
}

func TestAlignDistanceShortWeightVector(t *testing.T) {
	// Points shorter than the weight vector are zero-padded: matching
	// {1} against {1,5} costs |1-1|+|0-5| = 5, so the aligner prefers two
	// skips (2x2=4) and the normalized distance is 4/(n+m) = 2.
	a := [][]float64{{1}}
	b := [][]float64{{1, 5}}
	d := AlignDistance(a, b, []float64{1, 1}, 2, 2)
	if math.Abs(d-2.0) > 1e-9 {
		t.Errorf("want min(match=5, skips=4)/2 = 2, got %v", d)
	}
	// With a cheap second component the match wins: cost 0.5 < skips 4.
	d2 := AlignDistance(a, b, []float64{1, 0.1}, 2, 2)
	if math.Abs(d2-0.25) > 1e-9 {
		t.Errorf("want match cost 0.5/2 = 0.25, got %v", d2)
	}
}
