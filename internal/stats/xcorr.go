package stats

import "math"

// CrossCorrelation returns the raw sliding cross-correlation of x and y at
// every lag in [-(len(y)-1), len(x)-1]. Index i of the result corresponds to
// lag i-(len(y)-1).
//
// The fingerprint classifier (Section V) correlates a captured packet-size
// vector against the representative vector of each candidate website and
// picks the site with the highest peak correlation.
func CrossCorrelation(x, y []float64) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	out := make([]float64, len(x)+len(y)-1)
	for lag := -(len(y) - 1); lag < len(x); lag++ {
		var s float64
		for j := 0; j < len(y); j++ {
			i := lag + j
			if i < 0 || i >= len(x) {
				continue
			}
			s += x[i] * y[j]
		}
		out[lag+len(y)-1] = s
	}
	return out
}

// MaxNormalizedCorrelation returns the maximum of the normalized (zero-mean,
// unit-energy) cross-correlation over all lags, a value in [-1, 1]. It is
// robust to amplitude scaling and small shifts, which is what the paper's
// classifier needs: recovered size traces are slightly shifted and
// compressed versions of the true traces.
func MaxNormalizedCorrelation(x, y []float64) float64 {
	xs := zeroMean(x)
	ys := zeroMean(y)
	ex := energy(xs)
	ey := energy(ys)
	if ex == 0 || ey == 0 {
		return 0
	}
	cc := CrossCorrelation(xs, ys)
	best := math.Inf(-1)
	for _, v := range cc {
		if v > best {
			best = v
		}
	}
	return best / math.Sqrt(ex*ey)
}

// BoundedLagCorrelation returns the maximum normalized correlation over
// lags in [-maxLag, maxLag]. At each lag the overlapping windows are
// zero-meaned and scaled independently (a windowed Pearson coefficient).
// Use this when the two signals share a known origin and only small
// misalignments (insertions, drift) are expected: an unbounded lag search
// happily aligns any spike with any spike, destroying selectivity.
func BoundedLagCorrelation(x, y []float64, maxLag int) float64 {
	best := math.Inf(-1)
	for lag := -maxLag; lag <= maxLag; lag++ {
		// Overlap of x[i] with y[i-lag].
		xs, ys := x, y
		if lag > 0 {
			if lag >= len(xs) {
				continue
			}
			xs = xs[lag:]
		} else if lag < 0 {
			if -lag >= len(ys) {
				continue
			}
			ys = ys[-lag:]
		}
		if v := PearsonCorrelation(xs, ys); v > best {
			best = v
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// PearsonCorrelation returns the zero-lag Pearson correlation coefficient of
// two equal-length vectors. Shorter vectors are compared up to the common
// length.
func PearsonCorrelation(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n == 0 {
		return 0
	}
	xs := zeroMean(x[:n])
	ys := zeroMean(y[:n])
	var num float64
	for i := 0; i < n; i++ {
		num += xs[i] * ys[i]
	}
	den := math.Sqrt(energy(xs) * energy(ys))
	if den == 0 {
		return 0
	}
	return num / den
}

func zeroMean(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	var m float64
	for _, v := range x {
		m += v
	}
	m /= float64(len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - m
	}
	return out
}

func energy(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}
