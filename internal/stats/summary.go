package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Summary reduces a metric's observations across independent trials into
// the aggregate the experiment runner reports: mean, sample standard
// deviation, and the observed range.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize computes the Summary of xs. An empty slice yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), Min: xs[0], Max: xs[0]}
	for _, v := range xs[1:] {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	return s
}

// CI holds an empirical interval around a mean, in the style of the paper's
// Table I which reports a value with a [low, high] interval.
type CI struct {
	Mean, Low, High float64
}

// EmpiricalCI returns the mean together with the empirical p-quantile
// interval of the observations (e.g. p=0.95 gives the [2.5%, 97.5%]
// interval). With fewer than 2 observations the interval collapses to the
// mean.
func EmpiricalCI(xs []float64, p float64) CI {
	m := Mean(xs)
	if len(xs) < 2 {
		return CI{Mean: m, Low: m, High: m}
	}
	lo := Percentile(xs, (1-p)/2*100)
	hi := Percentile(xs, (1+p)/2*100)
	return CI{Mean: m, Low: lo, High: hi}
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram counts occurrences of each value in xs, returning a map from
// value to count. Used for the Fig 5/Fig 6 buffer-to-set mapping plots.
func Histogram(xs []int) map[int]int {
	h := make(map[int]int)
	for _, v := range xs {
		h[v]++
	}
	return h
}

// HistogramSeries converts a histogram into a dense series from 0 to max
// observed key, suitable for printing figure rows.
func HistogramSeries(h map[int]int) []int {
	maxKey := 0
	for k := range h {
		if k > maxKey {
			maxKey = k
		}
	}
	out := make([]int, maxKey+1)
	for k, v := range h {
		if k >= 0 {
			out[k] = v
		}
	}
	return out
}
