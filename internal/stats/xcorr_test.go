package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCrossCorrelationImpulse(t *testing.T) {
	x := []float64{0, 0, 1, 0, 0}
	y := []float64{1}
	cc := CrossCorrelation(x, y)
	if len(cc) != 5 {
		t.Fatalf("length %d want 5", len(cc))
	}
	for i, v := range cc {
		want := 0.0
		if i == 2 {
			want = 1
		}
		if v != want {
			t.Errorf("cc[%d]=%v want %v", i, v, want)
		}
	}
}

func TestMaxNormalizedCorrelationSelf(t *testing.T) {
	x := []float64{1, 4, 2, 8, 5, 7, 1, 0, 3}
	if got := MaxNormalizedCorrelation(x, x); math.Abs(got-1) > 1e-9 {
		t.Errorf("self-correlation %v want 1", got)
	}
}

func TestMaxNormalizedCorrelationShiftInvariance(t *testing.T) {
	x := []float64{0, 0, 1, 3, 1, 0, 2, 5, 2, 0, 0, 0}
	shifted := append([]float64{0, 0, 0}, x...)
	got := MaxNormalizedCorrelation(shifted, x)
	// Padding changes the mean and energy slightly, so the peak is close
	// to but below 1.
	if got < 0.9 {
		t.Errorf("shifted copy should correlate near 1, got %v", got)
	}
}

func TestMaxNormalizedCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		m := 5 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		v := MaxNormalizedCorrelation(x, y)
		return v <= 1.0000001 && v >= -1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := PearsonCorrelation(x, y); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect linear: got %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := PearsonCorrelation(x, neg); math.Abs(got+1) > 1e-9 {
		t.Errorf("perfect negative: got %v", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := PearsonCorrelation(x, flat); got != 0 {
		t.Errorf("flat vector: got %v want 0", got)
	}
}

func TestCrossCorrelationEmpty(t *testing.T) {
	if cc := CrossCorrelation(nil, []float64{1}); cc != nil {
		t.Errorf("empty x: got %v", cc)
	}
	if cc := CrossCorrelation([]float64{1}, nil); cc != nil {
		t.Errorf("empty y: got %v", cc)
	}
}
