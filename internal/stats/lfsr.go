package stats

// LFSR15 is the 15-bit maximal-length linear feedback shift register the
// paper uses (following Liu et al.) to generate the pseudo-random bit
// sequence for channel-capacity measurements. The sequence has period
// 2^15-1 and covers every 15-bit state except all-zeros, which lets the
// receiver detect bit loss, insertion, and swaps.
type LFSR15 struct {
	state uint16
}

// NewLFSR15 returns an LFSR seeded with the given nonzero state. A zero
// seed is replaced with 1 (the all-zero state is a fixed point and never
// occurs in the maximal-length sequence).
func NewLFSR15(seed uint16) *LFSR15 {
	seed &= 0x7FFF
	if seed == 0 {
		seed = 1
	}
	return &LFSR15{state: seed}
}

// NextBit advances the register one step and returns the output bit.
// Taps are at positions 15 and 14 (x^15 + x^14 + 1), a maximal-length
// polynomial for 15 bits.
func (l *LFSR15) NextBit() int {
	bit := ((l.state >> 14) ^ (l.state >> 13)) & 1
	l.state = ((l.state << 1) | bit) & 0x7FFF
	return int(bit)
}

// Bits returns the next n output bits.
func (l *LFSR15) Bits(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = l.NextBit()
	}
	return out
}

// Symbols returns the next n symbols in the given base (2 for binary
// encoding, 3 for ternary). Symbols are formed by accumulating bits, so the
// stream remains pseudo-random and full-period properties still allow error
// detection.
func (l *LFSR15) Symbols(n, base int) []int {
	out := make([]int, n)
	for i := range out {
		switch base {
		case 2:
			out[i] = l.NextBit()
		case 3:
			// Two bits give values 0..3; fold 3 back to map uniformly
			// enough for channel testing purposes.
			v := l.NextBit()<<1 | l.NextBit()
			if v == 3 {
				v = l.NextBit()
			}
			out[i] = v
		default:
			v := 0
			for b := 1; b < base; b <<= 1 {
				v = v<<1 | l.NextBit()
			}
			out[i] = v % base
		}
	}
	return out
}

// Period returns the LFSR period, 2^15 - 1.
func (l *LFSR15) Period() int { return (1 << 15) - 1 }
