package stats

import "math"

// AlignDistance computes a banded global-alignment (Needleman-Wunsch style)
// distance between two sequences of feature points: matching points costs
// their weighted L1 difference, and skipping a point in either sequence
// costs skipPenalty. The band limits alignment skew.
//
// This is the trace matcher behind the fingerprint classifier. Compared to
// plain correlation it is robust to exactly the perturbations packet traces
// suffer: inserted elements (retransmissions, stray control frames) are
// skipped for a small constant cost instead of being force-matched, while
// genuinely different structure still pays — the paper's suggestion of a
// classifier "tolerant of noise as well as slight compression or
// decompression of the vectors" (§V).
//
// Points shorter than the weight vector are treated as zero-padded. The
// distance is normalized by the combined length.
func AlignDistance(a, b [][]float64, weights []float64, skipPenalty float64, band int) float64 {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return 0
	}
	if n == 0 || m == 0 {
		return skipPenalty * float64(n+m) / float64(n+m+1)
	}
	if band < 1 {
		band = 1
	}
	if d := n - m; d > band || -d > band {
		if d < 0 {
			d = -d
		}
		band = d + 1
	}
	const inf = math.MaxFloat64 / 4
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := 0; j <= m; j++ {
		if j <= band {
			prev[j] = skipPenalty * float64(j)
		} else {
			prev[j] = inf
		}
	}
	at := func(p []float64, k int) float64 {
		if k < len(p) {
			return p[k]
		}
		return 0
	}
	cost := func(i, j int) float64 {
		var c float64
		for k, w := range weights {
			c += w * math.Abs(at(a[i], k)-at(b[j], k))
		}
		return c
	}
	for i := 1; i <= n; i++ {
		lo := i - band
		if lo < 0 {
			lo = 0
		}
		hi := i + band
		if hi > m {
			hi = m
		}
		for j := range curr {
			curr[j] = inf
		}
		if lo == 0 {
			curr[0] = skipPenalty * float64(i)
			lo = 1
		}
		for j := lo; j <= hi; j++ {
			best := prev[j-1] + cost(i-1, j-1) // match
			if v := prev[j] + skipPenalty; v < best {
				best = v // skip a[i-1]
			}
			if v := curr[j-1] + skipPenalty; v < best {
				best = v // skip b[j-1]
			}
			curr[j] = best
		}
		prev, curr = curr, prev
	}
	d := prev[m]
	if d >= inf {
		return math.Inf(1)
	}
	return d / float64(n+m)
}
