package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1, 2, 3}, []int{1, 2, 3}, 0},
		{[]int{1, 2, 3}, nil, 3},
		{nil, []int{1, 2, 3}, 3},
		{[]int{1, 2, 3}, []int{1, 3}, 1},          // deletion
		{[]int{1, 3}, []int{1, 2, 3}, 1},          // insertion
		{[]int{1, 2, 3}, []int{1, 9, 3}, 1},       // substitution
		{[]int{1, 2, 3, 4}, []int{4, 3, 2, 1}, 4}, // reversal: 4 subs... actually 4? see below
		{[]int{5}, []int{6}, 1},
	}
	for _, c := range cases {
		got := Levenshtein(c.a, c.b)
		if c.a == nil && c.b == nil && got != 0 {
			t.Errorf("empty: got %d", got)
		}
		// reversal of 1234 -> 4321 needs 4 edits? Actually 1234->4321:
		// distance is 4 via substitutions, but 3 via del+ins? Check only
		// known-simple cases strictly.
		if len(c.a) <= 3 || len(c.b) <= 3 {
			if got != c.want {
				t.Errorf("Levenshtein(%v,%v)=%d want %d", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestLevenshteinSymmetryAndBounds(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d1 := LevenshteinBytes(a, b)
		d2 := LevenshteinBytes(b, a)
		if d1 != d2 {
			return false
		}
		// Lower bound: length difference. Upper bound: max length.
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return d1 >= diff && d1 <= maxLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func(n int) []int {
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(4)
		}
		return s
	}
	for trial := 0; trial < 100; trial++ {
		a, b, c := gen(rng.Intn(20)), gen(rng.Intn(20)), gen(rng.Intn(20))
		dab := Levenshtein(a, b)
		dbc := Levenshtein(b, c)
		dac := Levenshtein(a, c)
		if dac > dab+dbc {
			t.Fatalf("triangle violated: d(a,c)=%d > d(a,b)+d(b,c)=%d", dac, dab+dbc)
		}
	}
}

func TestErrorRate(t *testing.T) {
	if got := ErrorRate([]int{1, 1, 1, 1}, []int{1, 1, 1, 1}); got != 0 {
		t.Errorf("identical streams: error %v", got)
	}
	if got := ErrorRate([]int{0, 1, 0, 1}, []int{0, 1, 1, 1}); got != 0.25 {
		t.Errorf("one substitution in 4: got %v want 0.25", got)
	}
	if got := ErrorRate(nil, []int{1}); got != 0 {
		t.Errorf("empty sent: got %v", got)
	}
}

func TestLongestMismatch(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{1, 2, 3, 4}, []int{1, 2, 3, 4}, 0},
		{[]int{1, 2, 3, 4}, []int{1, 9, 3, 4}, 1},
		{[]int{1, 2, 3, 4, 5}, []int{1, 9, 9, 4, 5}, 2},
		{[]int{1, 2, 3}, []int{4, 5, 6}, 3},
	}
	for _, c := range cases {
		if got := LongestMismatch(c.a, c.b); got != c.want {
			t.Errorf("LongestMismatch(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLongestMismatchNeverExceedsLevenshteinAlignment(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 25 {
			a = a[:25]
		}
		if len(b) > 25 {
			b = b[:25]
		}
		ai := make([]int, len(a))
		bi := make([]int, len(b))
		for i, v := range a {
			ai[i] = int(v % 3)
		}
		for i, v := range b {
			bi[i] = int(v % 3)
		}
		lm := LongestMismatch(ai, bi)
		// A run of mismatches cannot be longer than the total number of
		// edit operations.
		return lm <= Levenshtein(ai, bi)+1 && lm >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAlignMatchesLevenshteinOps: the alignment's implied operation
// counts must equal LevenshteinOps' decomposition for random sequences
// (same DP, same tie-break rule), and consume both sequences exactly.
func TestAlignMatchesLevenshteinOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		a := make([]int, rng.Intn(20))
		b := make([]int, rng.Intn(20))
		for i := range a {
			a[i] = rng.Intn(4)
		}
		for i := range b {
			b[i] = rng.Intn(4)
		}
		steps := Align(a, b)
		var ins, del, sub int
		ai, bj := 0, 0
		for _, s := range steps {
			switch s.Op {
			case OpMatch, OpSubstitute:
				if s.I != ai || s.J != bj {
					t.Fatalf("trial %d: step %+v out of order (want i=%d j=%d)", trial, s, ai, bj)
				}
				if s.Op == OpMatch && a[s.I] != b[s.J] {
					t.Fatalf("trial %d: match over unequal elements", trial)
				}
				if s.Op == OpSubstitute {
					if a[s.I] == b[s.J] {
						t.Fatalf("trial %d: substitution over equal elements", trial)
					}
					sub++
				}
				ai++
				bj++
			case OpDelete:
				if s.I != ai || s.J != -1 {
					t.Fatalf("trial %d: bad delete step %+v", trial, s)
				}
				ai++
				del++
			case OpInsert:
				if s.J != bj || s.I != -1 {
					t.Fatalf("trial %d: bad insert step %+v", trial, s)
				}
				bj++
				ins++
			}
		}
		if ai != len(a) || bj != len(b) {
			t.Fatalf("trial %d: alignment consumed %d/%d and %d/%d", trial, ai, len(a), bj, len(b))
		}
		wi, wd, ws := LevenshteinOps(a, b)
		if ins != wi || del != wd || sub != ws {
			t.Fatalf("trial %d: align ops (%d,%d,%d) != LevenshteinOps (%d,%d,%d)",
				trial, ins, del, sub, wi, wd, ws)
		}
		// The independent check: LevenshteinOps is implemented over Align,
		// so comparing the two alone would be tautological. Levenshtein()
		// is a separate two-row DP — the alignment's total op count must
		// equal the independently computed distance (i.e. be minimal).
		if want := Levenshtein(a, b); ins+del+sub != want {
			t.Fatalf("trial %d: alignment cost %d != independent Levenshtein %d",
				trial, ins+del+sub, want)
		}
	}
}
