// Package stats provides the statistical primitives used throughout the
// Packet Chasing reproduction: edit distance for sequence-recovery and
// covert-channel error measurement, cross-correlation for the fingerprint
// classifier, pseudo-random bit sequences for channel-capacity tests, and
// summary statistics (means, confidence intervals, percentiles).
package stats

// Levenshtein returns the minimum number of single-element insertions,
// deletions, or substitutions required to transform a into b.
//
// The paper uses Levenshtein distance twice: to quantify the distance
// between the recovered ring-buffer sequence and the ground-truth sequence
// (Table I), and to measure covert-channel transmission error (Section IV).
func Levenshtein(a, b []int) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

// LevenshteinBytes is Levenshtein on byte slices; used for symbol streams
// that are naturally represented as bytes (covert-channel symbols).
func LevenshteinBytes(a, b []byte) int {
	ai := make([]int, len(a))
	bi := make([]int, len(b))
	for i, v := range a {
		ai[i] = int(v)
	}
	for i, v := range b {
		bi[i] = int(v)
	}
	return Levenshtein(ai, bi)
}

// ErrorRate returns the Levenshtein distance between sent and received
// normalized by the sent length, as a fraction in [0,1] (it may exceed 1
// when the received stream contains many spurious insertions).
func ErrorRate(sent, received []int) float64 {
	if len(sent) == 0 {
		return 0
	}
	return float64(Levenshtein(sent, received)) / float64(len(sent))
}

// LevenshteinOps decomposes the Levenshtein distance from a to b into its
// operation counts: deletions remove elements of a, insertions add
// elements of b, substitutions replace one with the other. The total
// ins+del+sub equals Levenshtein(a, b). The counts are read off the
// canonical Align backtrace, so they are deterministic and consistent
// with every other alignment-derived metric.
func LevenshteinOps(a, b []int) (ins, del, sub int) {
	return OpsFromSteps(Align(a, b))
}

// OpsFromSteps counts an alignment's operations, for callers that derive
// several metrics from one Align pass.
func OpsFromSteps(steps []AlignStep) (ins, del, sub int) {
	for _, s := range steps {
		switch s.Op {
		case OpInsert:
			ins++
		case OpDelete:
			del++
		case OpSubstitute:
			sub++
		}
	}
	return ins, del, sub
}

// AlignOp is one step of a minimal edit alignment from a to b.
type AlignOp int

const (
	// OpMatch consumes equal elements from both sequences.
	OpMatch AlignOp = iota
	// OpSubstitute consumes one element from each, unequal.
	OpSubstitute
	// OpDelete consumes an element of a with no counterpart in b.
	OpDelete
	// OpInsert consumes an element of b with no counterpart in a.
	OpInsert
)

// AlignStep pairs an operation with the indices it consumed: I into a, J
// into b, -1 for the side an insertion/deletion does not touch.
type AlignStep struct {
	Op   AlignOp
	I, J int
}

// Align returns a minimal edit alignment from a to b in forward order —
// the single authoritative backtrace behind LevenshteinOps,
// LongestMismatch, and the chaser's per-class confusion metrics. When
// several minimal alignments exist the backtrace prefers matches, then
// substitutions, then deletions — a fixed rule, so every derived metric
// is deterministic and mutually consistent.
func Align(a, b []int) []AlignStep {
	n, m := len(a), len(b)
	d := make([][]int, n+1)
	for i := range d {
		d[i] = make([]int, m+1)
		d[i][0] = i
	}
	for j := 0; j <= m; j++ {
		d[0][j] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
		}
	}
	var rev []AlignStep
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && a[i-1] == b[j-1] && d[i][j] == d[i-1][j-1]:
			rev = append(rev, AlignStep{Op: OpMatch, I: i - 1, J: j - 1})
			i, j = i-1, j-1
		case i > 0 && j > 0 && d[i][j] == d[i-1][j-1]+1:
			rev = append(rev, AlignStep{Op: OpSubstitute, I: i - 1, J: j - 1})
			i, j = i-1, j-1
		case i > 0 && d[i][j] == d[i-1][j]+1:
			rev = append(rev, AlignStep{Op: OpDelete, I: i - 1, J: -1})
			i--
		default:
			rev = append(rev, AlignStep{Op: OpInsert, I: -1, J: j - 1})
			j--
		}
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// LongestMismatch returns the length of the longest run of consecutive
// positions at which the aligned sequences disagree. Alignment is the
// canonical Align backtrace; mismatched, inserted, and deleted elements
// all count as disagreement. Table I reports this as "Longest Mismatch".
func LongestMismatch(a, b []int) int {
	longest, run := 0, 0
	for _, s := range Align(a, b) {
		if s.Op == OpMatch {
			run = 0
			continue
		}
		run++
		if run > longest {
			longest = run
		}
	}
	return longest
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
