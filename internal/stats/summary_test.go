package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean %v want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("stddev %v want ~2.138", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 2, 9, 2})
	if s.N != 4 || s.Mean != 4.25 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary wrong: %+v", s)
	}
	if math.Abs(s.StdDev-StdDev([]float64{4, 2, 9, 2})) > 1e-12 {
		t.Errorf("stddev mismatch: %v", s.StdDev)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Errorf("empty input must give zero Summary: %+v", z)
	}
	one := Summarize([]float64{3})
	if one.N != 1 || one.Mean != 3 || one.StdDev != 0 || one.Min != 3 || one.Max != 3 {
		t.Errorf("single-element summary wrong: %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v=%v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalCI(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	ci := EmpiricalCI(xs, 0.90)
	if ci.Mean != 50 {
		t.Errorf("mean %v", ci.Mean)
	}
	if ci.Low >= ci.Mean || ci.High <= ci.Mean {
		t.Errorf("interval [%v,%v] should straddle mean", ci.Low, ci.High)
	}
	single := EmpiricalCI([]float64{3}, 0.95)
	if single.Low != 3 || single.High != 3 {
		t.Errorf("single-element CI should collapse: %+v", single)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 1, 1, 2, 2, 2})
	if h[0] != 1 || h[1] != 2 || h[2] != 3 {
		t.Errorf("histogram wrong: %v", h)
	}
	series := HistogramSeries(h)
	if len(series) != 3 || series[2] != 3 {
		t.Errorf("series wrong: %v", series)
	}
}
