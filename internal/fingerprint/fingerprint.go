// Package fingerprint implements the §V website fingerprinting attack: the
// spy chases packets through the recovered ring, records each packet's
// size class, and matches the resulting vector against representative
// traces with a cross-correlation classifier.
//
// The attack inherits the spy's measurement strategy (probe.Strategy)
// through the chasers it builds: constructed over an amplified spy, the
// capture phase survives a timer-coarsening defense the fine-timer
// attacker does not.
package fingerprint

import (
	"math"

	"repro/internal/chase"
	"repro/internal/netmodel"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/webtrace"
)

// BoundaryGap is the inter-packet gap, in cycles, above which two packets
// are considered to belong to different bursts (HTTP objects). In-burst
// spacing at 1 GbE is ~40k cycles per MTU frame; object boundaries in page
// loads are RTT-scale pauses well above 100k cycles.
const BoundaryGap = 100_000

// Features turns the spy's per-packet observations into the classifier's
// feature sequence: one point per burst, carrying the burst's length in
// packets, its final packet's size class, and the log of the boundary gap
// that ended it. Size classes alone are mostly runs of "4+" at MTU and
// carry little signal; the burst structure is the combination of "packet
// sizes with the temporal information that Packet Chasing obtains" that
// the paper says distinguishes webpages (§V).
func Features(classes []int, gaps []uint64) [][]float64 {
	var out [][]float64
	runLen := 0
	tail := 0.0
	flush := func(gap uint64) {
		if runLen == 0 {
			return
		}
		g := 0.0
		if gap > 0 {
			g = math.Log10(float64(gap))
		}
		out = append(out, []float64{float64(runLen), tail, g})
		runLen = 0
	}
	for i, c := range classes {
		if i > 0 && i < len(gaps) && gaps[i] > BoundaryGap {
			flush(gaps[i])
		}
		runLen++
		tail = float64(c)
	}
	flush(0)
	return out
}

// Representative is a site's reference feature sequence (§V builds a
// representative trace per site; we use the medoid of offline trials).
type Representative struct {
	Name   string
	Vector [][]float64
}

// Classifier tuning shared by representative building and classification:
// burst length differences are cheap per frame, tail classes moderate,
// boundary-gap magnitudes matter, and dropping a whole burst is expensive.
var featureWeights = []float64{0.3, 0.5, 1.0}

const (
	skipPenalty = 2.0
	alignBand   = 6
)

// trimPackets truncates a burst-feature sequence to at most n packets of
// coverage (the attack only captures the first n packets of a page).
func trimPackets(feat [][]float64, n int) [][]float64 {
	covered := 0
	for i, p := range feat {
		covered += int(p[0])
		if covered >= n {
			return feat[:i+1]
		}
	}
	return feat
}

// BuildRepresentative picks the medoid of trials offline renderings of the
// site — the trial whose DTW distance to the other trials is smallest —
// truncated to n packets. A medoid keeps the object-boundary structure
// sharp where a point-wise average would smear it across the positions
// noise shifts it to; it plays the same role as the paper's representative
// trace.
func BuildRepresentative(site webtrace.Site, noise webtrace.Noise, trials, n int, rng *sim.RNG) Representative {
	if trials < 1 {
		trials = 1
	}
	feats := make([][][]float64, trials)
	for t := 0; t < trials; t++ {
		tr := site.Generate(rng, noise)
		f := trimPackets(Features(tr.SizeClasses(4), tr.Gaps), n)
		feats[t] = f
	}
	best, bestSum := 0, math.Inf(1)
	for i := range feats {
		var sum float64
		for j := range feats {
			if i == j {
				continue
			}
			sum += stats.AlignDistance(feats[i], feats[j], featureWeights, skipPenalty, alignBand)
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return Representative{Name: site.Name, Vector: feats[best]}
}

// Classifier matches observed feature vectors against representatives by
// peak normalized cross-correlation (§V). Page loads share a known origin
// (the capture starts with the page), so the lag search is bounded: the
// tolerance absorbs retransmitted/inserted packets without letting every
// object boundary align with every other.
type Classifier struct {
	Reps []Representative
	// MaxLag bounds the correlation lag search, in feature elements
	// (2 per packet). Zero means a strict zero-lag comparison.
	MaxLag int
}

// Classify returns the best-matching representative's name and its score
// (negated distance; higher is better). Matching is a banded alignment of
// burst features: correlation alone cannot absorb the cumulative position
// drift that lost and inserted packets cause, which is exactly the
// improvement the paper suggests ("a classifier that is tolerant of noise
// as well as slight compression or decompression of the vectors would be
// likely to improve these results", §V).
func (c *Classifier) Classify(features [][]float64) (string, float64) {
	band := c.MaxLag
	if band <= 0 {
		band = alignBand
	}
	bestName := ""
	bestScore := math.Inf(-1)
	for _, r := range c.Reps {
		d := stats.AlignDistance(features, r.Vector, featureWeights, skipPenalty, band)
		if score := -d; score > bestScore {
			bestName, bestScore = r.Name, score
		}
	}
	return bestName, bestScore
}

// Attack bundles the online side: a chaser over the recovered ring.
type Attack struct {
	Spy    *probe.Spy
	Groups []probe.EvictionSet
	Ring   []int
	// TraceLen is how many packets to capture per page load (paper's
	// figures use the first 100).
	TraceLen int

	// degraded latches when any chaser this attack built reported
	// unhealthy calibration (see CalibrationOK).
	degraded bool
}

// CalibrationOK reports whether every chaser built by Observe so far had
// monitors able to separate idle timer jitter from packet activity (see
// chase.Chaser.CalibrationOK). False means the captured traces — and any
// accuracy computed from them — are the output of a blind capture phase.
func (a *Attack) CalibrationOK() bool { return !a.degraded }

// Observe replays one page load on the victim's connection and captures
// the spy's view of it: per-packet size classes and inter-detection gaps.
func (a *Attack) Observe(tr webtrace.Trace) (classes []int, gaps []uint64) {
	tb := a.Spy.Testbed()
	// Build (and calibrate) the chaser before the page load starts:
	// monitor construction costs simulated time, and a page that starts
	// during it would stream past unobserved.
	cfg := chase.DefaultChaserConfig()
	cfg.SyncTimeout = 8_000_000
	ch := chase.NewChaser(a.Spy, a.Groups, a.Ring, cfg)
	if !ch.CalibrationOK() {
		a.degraded = true
	}
	wire := netmodel.NewWire(netmodel.GigabitRate)
	tb.SetTraffic(tr.Source(wire, tb.Clock().Now()+50_000))
	want := a.TraceLen
	if len(tr.Sizes) < want {
		want = len(tr.Sizes)
	}
	obs := ch.Chase(want)
	// Let the remainder of the page drain so the next trial starts clean
	// and the chaser's ring position stays aligned.
	tb.DrainTraffic()
	a.Ring = rotateRing(a.Ring, ch.Position())

	gaps = make([]uint64, len(obs))
	for i := range obs {
		if i > 0 {
			gaps[i] = obs[i].At - obs[i-1].At
		}
	}
	return chase.SizeTrace(obs), gaps
}

// rotateRing re-anchors the ring at the chaser's final position so a fresh
// chaser starts where the last one stopped... except packets that drained
// after the capture also advanced the hardware ring; the next Observe
// resynchronizes via its timeout path. Rotation just shortens that search.
func rotateRing(ring []int, pos int) []int {
	if len(ring) == 0 {
		return ring
	}
	pos %= len(ring)
	out := make([]int, 0, len(ring))
	out = append(out, ring[pos:]...)
	out = append(out, ring[:pos]...)
	return out
}

// EvalResult is a closed-world evaluation outcome.
type EvalResult struct {
	Trials, Correct int
	// PerSite maps site name to correct/total.
	PerSite map[string][2]int
}

// Accuracy returns the fraction of correctly classified trials.
func (e EvalResult) Accuracy() float64 {
	if e.Trials == 0 {
		return 0
	}
	return float64(e.Correct) / float64(e.Trials)
}

// EvaluateClosedWorld runs the full §V experiment: representatives are
// built offline from ideal traces, then each trial replays a random site
// and the attack classifies the chased observation.
func EvaluateClosedWorld(a *Attack, sites []webtrace.Site, noise webtrace.Noise, trials int, rng *sim.RNG) EvalResult {
	reps := make([]Representative, len(sites))
	for i, s := range sites {
		reps[i] = BuildRepresentative(s, noise, 20, a.TraceLen, sim.Derive(rng.Int63(), "rep-"+s.Name))
	}
	cls := &Classifier{Reps: reps}
	res := EvalResult{PerSite: map[string][2]int{}}
	for t := 0; t < trials; t++ {
		site := sites[rng.Intn(len(sites))]
		tr := site.Generate(rng, noise)
		classes, gaps := a.Observe(tr)
		got, _ := cls.Classify(Features(classes, gaps))
		res.Trials++
		ps := res.PerSite[site.Name]
		ps[1]++
		if got == site.Name {
			res.Correct++
			ps[0]++
		}
		res.PerSite[site.Name] = ps
	}
	return res
}
