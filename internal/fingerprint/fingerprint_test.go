package fingerprint

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/nic"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/webtrace"
)

func fpWorld(t *testing.T, seed int64, ddio bool) *Attack {
	t.Helper()
	opts := testbed.DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(2, 1024, 4)
	opts.Cache.DDIO = ddio
	opts.NIC = nic.DefaultConfig()
	opts.NIC.RingSize = 32
	opts.NoiseRate = 0
	opts.TimerNoise = 0
	opts.MemBytes = 1 << 28
	tb, err := testbed.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	spy, err := probe.NewSpy(tb, 32*4*4)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := spy.BuildAlignedEvictionSets(opts.Cache.Ways)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := tb.Cache().Config()
	byCanon := map[int]int{}
	for _, g := range groups {
		byCanon[ccfg.AlignedIndexOf(ccfg.GlobalSet(g.Lines[0]))] = g.ID
	}
	var ring []int
	for _, s := range tb.NIC().RingAlignedSets(ccfg) {
		ring = append(ring, byCanon[s])
	}
	return &Attack{Spy: spy, Groups: groups, Ring: ring, TraceLen: 60}
}

func TestClassifierSeparatesIdealTraces(t *testing.T) {
	// Sanity: with no chasing involved, representatives classify their
	// own noisy renderings correctly almost always.
	sites := webtrace.ClosedWorld()
	noise := webtrace.DefaultNoise()
	reps := make([]Representative, len(sites))
	for i, s := range sites {
		reps[i] = BuildRepresentative(s, noise, 20, 80, sim.Derive(100, "rep-"+s.Name))
	}
	cls := &Classifier{Reps: reps}
	rng := sim.NewRNG(101)
	correct, trials := 0, 60
	for k := 0; k < trials; k++ {
		site := sites[k%len(sites)]
		tr := site.Generate(rng, noise)
		feat := trimPackets(Features(tr.SizeClasses(4), tr.Gaps), 80)
		if got, _ := cls.Classify(feat); got == site.Name {
			correct++
		}
	}
	acc := float64(correct) / float64(trials)
	if acc < 0.9 {
		t.Errorf("ideal-trace classification accuracy %.0f%% too low", 100*acc)
	}
}

func TestObserveCapturesSizeClasses(t *testing.T) {
	a := fpWorld(t, 41, true)
	tr := webtrace.HotCRPLoginSuccess().Generate(sim.NewRNG(1), webtrace.Noise{})
	classes, gaps := a.Observe(tr)
	if len(classes) < a.TraceLen/2 {
		t.Fatalf("observed only %d of %d packets", len(classes), a.TraceLen)
	}
	// A successful login is dominated by MTU frames: most observations
	// must be the 4+ class.
	big := 0
	for _, c := range classes {
		if c >= 4 {
			big++
		}
	}
	if big < len(classes)/2 {
		t.Errorf("only %d/%d observations are 4+; size recovery broken", big, len(classes))
	}
	if len(gaps) != len(classes) {
		t.Error("gaps and classes must align")
	}
}

func TestClosedWorldAccuracyDDIO(t *testing.T) {
	a := fpWorld(t, 42, true)
	res := EvaluateClosedWorld(a, webtrace.ClosedWorld(), webtrace.DefaultNoise(), 15, sim.NewRNG(7))
	t.Logf("DDIO accuracy: %.0f%% (%d/%d)", 100*res.Accuracy(), res.Correct, res.Trials)
	if res.Accuracy() < 0.6 {
		t.Errorf("closed-world accuracy %.0f%% too low", 100*res.Accuracy())
	}
}

func TestClosedWorldAccuracyNoDDIO(t *testing.T) {
	a := fpWorld(t, 43, false)
	res := EvaluateClosedWorld(a, webtrace.ClosedWorld(), webtrace.DefaultNoise(), 15, sim.NewRNG(8))
	t.Logf("no-DDIO accuracy: %.0f%% (%d/%d)", 100*res.Accuracy(), res.Correct, res.Trials)
	// The attack still works without DDIO (§IV-d), at reduced fidelity.
	if res.Accuracy() < 0.4 {
		t.Errorf("no-DDIO accuracy %.0f%% too low; attack should survive", 100*res.Accuracy())
	}
}

func TestRotateRing(t *testing.T) {
	r := rotateRing([]int{0, 1, 2, 3}, 2)
	want := []int{2, 3, 0, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("got %v", r)
		}
	}
	if len(rotateRing(nil, 3)) != 0 {
		t.Error("empty ring")
	}
}

func TestEvalResultAccuracy(t *testing.T) {
	e := EvalResult{Trials: 10, Correct: 9}
	if e.Accuracy() != 0.9 {
		t.Error("accuracy math")
	}
	if (EvalResult{}).Accuracy() != 0 {
		t.Error("empty accuracy")
	}
}
