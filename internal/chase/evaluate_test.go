package chase

import "testing"

func TestDecomposeOrientation(t *testing.T) {
	cases := []struct {
		name            string
		truth, observed []int
		ins, del, sub   int
	}{
		{"identical", []int{1, 2, 3}, []int{1, 2, 3}, 0, 0, 0},
		{"spurious observation", []int{1, 2, 3}, []int{1, 9, 2, 3}, 1, 0, 0},
		{"missed symbol", []int{1, 2, 3}, []int{1, 3}, 0, 1, 0},
		{"misclassified", []int{1, 2, 3}, []int{1, 7, 3}, 0, 0, 1},
		{"all spurious", nil, []int{4, 4}, 2, 0, 0},
		{"all missed", []int{4, 4}, nil, 0, 2, 0},
		// Several minimal alignments exist here; the deterministic
		// backtrace prefers substitutions (1->9, 2->1, 3 match, 4->5).
		{"mixed", []int{1, 2, 3, 4}, []int{9, 1, 3, 5}, 0, 0, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ins, del, sub := Decompose(c.truth, c.observed)
			if ins != c.ins || del != c.del || sub != c.sub {
				t.Errorf("Decompose(%v, %v) = (%d,%d,%d) want (%d,%d,%d)",
					c.truth, c.observed, ins, del, sub, c.ins, c.del, c.sub)
			}
		})
	}
}

// TestDecomposeSumsToLevenshtein: the operation counts must decompose the
// distance exactly, for arbitrary pairs.
func TestDecomposeSumsToLevenshtein(t *testing.T) {
	pairs := [][2][]int{
		{{1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}},
		{{2, 2, 2}, {2, 3, 2, 3}},
		{{7}, {1, 2, 3, 4, 5, 6}},
		{{1, 2, 1, 2, 1, 2}, {2, 1, 2, 1, 2, 1}},
	}
	for _, p := range pairs {
		q := EvaluateCyclic(p[1], p[0])
		if got := q.Insertions + q.Deletions + q.Substitutions; got != q.Levenshtein {
			t.Errorf("ops %d+%d+%d = %d != Levenshtein %d for %v vs %v",
				q.Insertions, q.Deletions, q.Substitutions, got, q.Levenshtein, p[1], p[0])
		}
	}
}

// TestEvaluateCyclicDecomposition: the quality block carries the
// decomposition of the best-rotation alignment.
func TestEvaluateCyclicDecomposition(t *testing.T) {
	truth := []int{1, 2, 3, 4, 5}
	// Rotated truth with one extra element: distance 1, pure insertion.
	recovered := []int{3, 4, 9, 5, 1, 2}
	q := EvaluateCyclic(recovered, truth)
	if q.Levenshtein != 1 || q.Insertions != 1 || q.Deletions != 0 || q.Substitutions != 0 {
		t.Errorf("want 1 insertion, got %+v", q)
	}
	// Rotated truth missing one element: distance 1, pure deletion.
	q = EvaluateCyclic([]int{4, 5, 1, 2}, truth)
	if q.Levenshtein != 1 || q.Deletions != 1 || q.Insertions != 0 {
		t.Errorf("want 1 deletion, got %+v", q)
	}
}
