package chase

import "testing"

func testChaser(cfg ChaserConfig) *Chaser {
	return &Chaser{cfg: cfg}
}

func TestClassify(t *testing.T) {
	cfg := DefaultChaserConfig() // MaxBlocks 4, second half monitored
	c := testChaser(cfg)
	cases := []struct {
		active []bool
		want   int
	}{
		// First half only.
		{[]bool{true, false, false, false, false, false, false, false}, 1},
		{[]bool{true, true, false, false, false, false, false, false}, 2},
		{[]bool{true, true, true, false, false, false, false, false}, 3},
		{[]bool{true, true, true, true, false, false, false, false}, 4},
		// Second half wins when larger (driver flipped the page offset).
		{[]bool{true, false, false, false, true, true, true, false}, 3},
		// Nothing active defaults to the smallest class.
		{make([]bool, 8), 1},
	}
	for _, tc := range cases {
		if got := c.classify(tc.active); got != tc.want {
			t.Errorf("classify(%v)=%d want %d", tc.active, got, tc.want)
		}
	}
}

func TestClassifyFirstHalfOnly(t *testing.T) {
	cfg := DefaultChaserConfig()
	cfg.MonitorSecondHalf = false
	c := testChaser(cfg)
	if got := c.classify([]bool{true, true, true, false}); got != 3 {
		t.Errorf("got %d want 3", got)
	}
}

func TestPacketDetectedRule(t *testing.T) {
	cfg := DefaultChaserConfig()
	c := testChaser(cfg)
	// Blocks 0 and 1 together mean a packet (§V detection rule).
	if !c.packetDetected([]bool{true, true, false, false, false, false, false, false}) {
		t.Error("blocks 0+1 must detect")
	}
	// A single noisy set must not.
	if c.packetDetected([]bool{true, false, false, false, false, false, false, false}) {
		t.Error("block 0 alone must not detect")
	}
	if c.packetDetected([]bool{false, true, false, true, false, false, false, false}) {
		t.Error("blocks 1+3 without 0 must not detect")
	}
	// Second half-page detection (after the driver's offset flip).
	if !c.packetDetected([]bool{false, false, false, false, true, true, false, false}) {
		t.Error("second-half blocks 0+1 must detect")
	}
}

func TestPacketDetectedSingleBlockConfig(t *testing.T) {
	cfg := DefaultChaserConfig()
	cfg.MaxBlocks = 1
	c := testChaser(cfg)
	if !c.packetDetected([]bool{true}) {
		t.Error("with 1 monitored block any activity detects")
	}
	if c.packetDetected([]bool{false}) {
		t.Error("no activity, no detection")
	}
}

func TestSizeTrace(t *testing.T) {
	obs := []PacketObservation{{Blocks: 1}, {Blocks: 4}, {Blocks: 2}}
	got := SizeTrace(obs)
	want := []int{1, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if len(SizeTrace(nil)) != 0 {
		t.Error("empty observations")
	}
}

func TestDefaultChaserConfigSane(t *testing.T) {
	cfg := DefaultChaserConfig()
	if cfg.MaxBlocks != 4 {
		t.Error("paper distinguishes classes 1..4+")
	}
	if !cfg.MonitorSecondHalf {
		t.Error("both half-pages must be monitored by default (offset flip)")
	}
	if cfg.PollInterval == 0 || cfg.SyncTimeout == 0 {
		t.Error("timing parameters must be positive")
	}
}
