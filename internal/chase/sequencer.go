// Package chase implements the paper's primary contribution: recovering the
// NIC ring buffers' cache footprint and fill order from PRIME+PROBE
// observations, then chasing packets buffer-to-buffer to read out per-packet
// size and timing.
//
// The offline phase (§III) has two steps: discover the page-aligned cache
// sets the ring buffers live in (footprint.go), and recover the cyclic
// order in which those sets fire (this file — Algorithm 1). The online
// phase (chaser.go) walks the recovered ring one buffer at a time.
package chase

import (
	"fmt"

	"repro/internal/probe"
	"repro/internal/sim"
)

// SequencerParams mirrors the parameter block of the paper's Table I.
type SequencerParams struct {
	// Samples is Nsamples, the probe passes collected per sequencer run
	// (paper: 100,000).
	Samples int
	// WindowSize is the number of sets monitored per run (paper: 32 —
	// monitoring more slows probing too much to resolve packet order).
	WindowSize int
	// ProbeRate is the sampling rate in probes/second (paper: 8,000).
	ProbeRate float64
	// ActivityCutoff is the activity fraction above which a monitored set
	// is deemed "always missing" and replaced by the second block of the
	// same pages (GET_CLEAN_SAMPLES step 10).
	ActivityCutoff float64
	// WeightCutoff is the minimum edge weight for MAKE_SEQUENCE to keep
	// walking (weight_cutoff in Algorithm 1).
	WeightCutoff int
}

// DefaultSequencerParams returns the paper's Table I parameters with a
// sample count scaled for simulation (the shape of the result is set by
// ring revolutions observed, which remains in the thousands).
func DefaultSequencerParams() SequencerParams {
	return SequencerParams{
		Samples:        100_000,
		WindowSize:     32,
		ProbeRate:      8_000,
		ActivityCutoff: 0.45,
		WeightCutoff:   3,
	}
}

// Sequencer recovers ring-buffer order. It owns a spy and the aligned
// eviction-set groups discovered in the footprint phase.
type Sequencer struct {
	Spy    *probe.Spy
	Groups []probe.EvictionSet
	Params SequencerParams
}

// edgeGraph is Algorithm 1's history-augmented transition graph:
// graph[prev][curr][cand] counts observations of activity on cand
// immediately after the transition prev->curr. The single node of history
// is what lets the walk distinguish two ring buffers that share a cache
// set (Fig 9).
type edgeGraph struct {
	n int
	w []int
}

func newEdgeGraph(n int) *edgeGraph { return &edgeGraph{n: n, w: make([]int, n*n*n)} }

func (g *edgeGraph) at(prev, curr, cand int) int { return g.w[(prev*g.n+curr)*g.n+cand] }
func (g *edgeGraph) inc(prev, curr, cand int)    { g.w[(prev*g.n+curr)*g.n+cand]++ }
func (g *edgeGraph) clear(prev, curr, cand int)  { g.w[(prev*g.n+curr)*g.n+cand] = 0 }

// clearPair zeroes every successor of a (prev, curr) transition.
func (g *edgeGraph) clearPair(prev, curr int) {
	base := (prev*g.n + curr) * g.n
	for c := 0; c < g.n; c++ {
		g.w[base+c] = 0
	}
}

// pairWeight sums edge weights into (curr -> cand) over all histories.
func (g *edgeGraph) pairWeight(curr, cand int) int {
	var sum int
	for p := 0; p < g.n; p++ {
		sum += g.at(p, curr, cand)
	}
	return sum
}

// argmax returns the heaviest successor of the (prev, curr) transition.
// Successors equal to curr are excluded: a curr->curr step can never be
// followed (self-transitions carry no history by construction), and such
// edges arise from kernel pages — like the descriptor ring — that fire on
// several consecutive packets.
func (g *edgeGraph) argmax(prev, curr int) (int, int) {
	base := (prev*g.n + curr) * g.n
	best, bestW := -1, 0
	for c := 0; c < g.n; c++ {
		if c == curr {
			continue
		}
		if w := g.w[base+c]; w > bestW {
			best, bestW = c, w
		}
	}
	return best, bestW
}

// RecoverWindow runs Algorithm 1 over the groups selected by ids (indices
// into s.Groups) and returns the recovered cyclic sequence as group
// indices. The caller arranges for packet traffic to be flowing.
func (s *Sequencer) RecoverWindow(ids []int) ([]int, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("chase: empty window")
	}
	samples, mon := s.getCleanSamples(ids)
	graph := buildGraph(samples, len(ids))
	local := makeSequence(graph, s.Params.WeightCutoff)
	if len(local) == 0 {
		return nil, fmt.Errorf("chase: no sequence found (window of %d sets, %d samples)", len(ids), len(samples))
	}
	_ = mon
	out := make([]int, len(local))
	for i, l := range local {
		out[i] = ids[l]
	}
	return out, nil
}

// getCleanSamples is Algorithm 1's GET_CLEAN_SAMPLES: collect samples, and
// replace any set that is active in nearly every sample (conflicting
// kernel data, e.g. the descriptor ring or skb pool pages) with the second
// block of the same pages, then re-collect. A set that stays hot even
// after replacement carries no sequencing signal — kernel data shares both
// of its blocks — so its activations are masked out; the buffers it hosts
// surface as sequence errors, which Table I's error rate accounts for.
func (s *Sequencer) getCleanSamples(ids []int) ([]probe.Sample, *probe.Monitor) {
	sets := make([]probe.EvictionSet, len(ids))
	for i, id := range ids {
		sets[i] = s.Groups[id]
	}
	interval := sim.CyclesPerSecond(s.Params.ProbeRate)
	mon := probe.NewMonitor(s.Spy, sets)
	var samples []probe.Sample
	for attempt := 0; ; attempt++ {
		samples = mon.Collect(s.Params.Samples, interval)
		if attempt >= 2 {
			break
		}
		rates := probe.ActivityRate(samples)
		replaced := false
		for i, r := range rates {
			if r > s.Params.ActivityCutoff {
				mon.ReplaceSet(i, s.Groups[ids[i]].Offset(1))
				replaced = true
			}
		}
		if !replaced {
			return samples, mon
		}
	}
	for i, r := range probe.ActivityRate(samples) {
		if r > s.Params.ActivityCutoff {
			for j := range samples {
				samples[j].Active[i] = false
			}
		}
	}
	return samples, mon
}

// buildGraph is Algorithm 1's BUILD_GRAPH.
func buildGraph(samples []probe.Sample, n int) *edgeGraph {
	g := newEdgeGraph(n)
	prev, curr := 0, 0
	for _, s := range samples {
		for cand, active := range s.Active {
			if !active {
				continue
			}
			if curr != prev { // no self-loop history
				g.inc(prev, curr, cand)
			}
			prev, curr = curr, cand
		}
	}
	return g
}

// makeSequence is Algorithm 1's MAKE_SEQUENCE: start from the heaviest
// edge and greedily follow the strongest successor, consuming edges, until
// returning to the root or running out of weight.
//
// One extension over the paper's pseudocode: when kernel pages that alias
// a buffer set (descriptor ring, skb pool) break the chain mid-ring, the
// greedy walk dead-ends early. In that case the residual graph still holds
// the rest of the ring, so we keep extracting segments and stitch them
// back together using the pre-walk edge weights.
func makeSequence(g *edgeGraph, weightCutoff int) []int {
	pristine := append([]int(nil), g.w...)
	var segments [][]int
	var avgWeights []float64
	for {
		seg, avg := walkSegment(g, weightCutoff)
		if len(seg) < 2 {
			break
		}
		segments = append(segments, seg)
		avgWeights = append(avgWeights, avg)
		if len(segments) > g.n {
			break
		}
	}
	if len(segments) == 0 {
		return nil
	}
	// Residual walks over noise edges produce weak segments; real ring
	// segments carry edge weights comparable to the strongest one (each
	// ring position is observed once per revolution). Keep only segments
	// within 4x of the best average weight.
	bestAvg := avgWeights[0]
	for _, a := range avgWeights {
		if a > bestAvg {
			bestAvg = a
		}
	}
	kept := segments[:0]
	for i, s := range segments {
		if avgWeights[i]*4 >= bestAvg {
			kept = append(kept, s)
		}
	}
	return stitch(kept, &edgeGraph{n: g.n, w: pristine})
}

// walkSegment performs one greedy walk over the residual graph, returning
// the segment and the average weight of the edges it consumed.
func walkSegment(g *edgeGraph, weightCutoff int) ([]int, float64) {
	rootPrev, rootCurr := getRoot(g)
	if rootPrev < 0 {
		return nil, 0
	}
	// A root with no affordable successor would yield a singleton segment
	// forever; check up front.
	if _, w := g.argmax(rootPrev, rootCurr); w < weightCutoff {
		g.clearPair(rootPrev, rootCurr)
		return nil, 0
	}
	var seq []int
	var consumed, steps float64
	prev, curr := rootPrev, rootCurr
	for {
		seq = append(seq, curr)
		next, w := g.argmax(prev, curr)
		if next < 0 || w < weightCutoff {
			break
		}
		g.clear(prev, curr, next) // mark visited
		consumed += float64(w)
		steps++
		prev, curr = curr, next
		if prev == rootPrev && curr == rootCurr {
			break
		}
		if len(seq) > g.n*g.n {
			break // degenerate graph; bail rather than loop forever
		}
	}
	if steps == 0 {
		return seq, 0
	}
	return seq, consumed / steps
}

// stitch greedily concatenates segments by the strongest tail-to-head
// support in the pristine graph. The first (longest) segment anchors the
// ring.
func stitch(segments [][]int, g0 *edgeGraph) []int {
	longest := 0
	for i, s := range segments {
		if len(s) > len(segments[longest]) {
			longest = i
		}
	}
	out := segments[longest]
	remaining := make([][]int, 0, len(segments)-1)
	for i, s := range segments {
		if i != longest {
			remaining = append(remaining, s)
		}
	}
	// A window over n sets sees each set a small bounded number of times
	// per revolution; anything beyond 2n recovered entries is duplicated
	// or spurious territory.
	maxLen := 2 * g0.n
	for len(remaining) > 0 && len(out) < maxLen {
		tail := out[len(out)-1]
		tailPrev := -1
		if len(out) > 1 {
			tailPrev = out[len(out)-2]
		}
		best, bestW := -1, 0
		for i, s := range remaining {
			w := g0.pairWeight(tail, s[0])
			if tailPrev >= 0 {
				w += g0.at(tailPrev, tail, s[0]) * 2
			}
			if w > bestW {
				best, bestW = i, w
			}
		}
		if best < 0 {
			break // no segment has any support at this tail
		}
		out = append(out, remaining[best]...)
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return out
}

// getRoot picks the walk's origin. The recovered sequence is a ring, so
// the starting point is arbitrary (§III-C) — but the walk terminates on
// returning to the root *pair*, so the root must be a pair that occurs
// once per ring revolution. Pairs occurring at several ring positions have
// several strong successors (that is what the history disambiguates);
// getRoot therefore prefers the heaviest pair with a single dominant
// successor, falling back to the heaviest pair overall.
func getRoot(g *edgeGraph) (int, int) {
	bestPrev, bestCurr, bestW := -1, -1, 0
	uniqPrev, uniqCurr, uniqW := -1, -1, 0
	for p := 0; p < g.n; p++ {
		for c := 0; c < g.n; c++ {
			if p == c {
				continue
			}
			sum, max, second := 0, 0, 0
			for x := 0; x < g.n; x++ {
				if x == c {
					continue // unusable self-successor edges (see argmax)
				}
				w := g.at(p, c, x)
				sum += w
				switch {
				case w > max:
					second, max = max, w
				case w > second:
					second = w
				}
			}
			if sum > bestW {
				bestPrev, bestCurr, bestW = p, c, sum
			}
			// "Single dominant successor": the runner-up is noise-level.
			if max > uniqW && second*4 <= max {
				uniqPrev, uniqCurr, uniqW = p, c, max
			}
		}
	}
	if uniqPrev >= 0 {
		return uniqPrev, uniqCurr
	}
	return bestPrev, bestCurr
}
