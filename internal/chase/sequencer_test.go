package chase

import (
	"testing"

	"repro/internal/probe"
)

// syntheticSamples builds a probe.Sample stream in which the given ring of
// set indices fires cyclically, one activation per sample, for the given
// number of revolutions.
func syntheticSamples(ring []int, nSets, revolutions int) []probe.Sample {
	var out []probe.Sample
	for r := 0; r < revolutions; r++ {
		for _, s := range ring {
			active := make([]bool, nSets)
			active[s] = true
			out = append(out, probe.Sample{Active: active})
		}
	}
	return out
}

func recoverFromSamples(t *testing.T, ring []int, nSets, revolutions int) []int {
	t.Helper()
	samples := syntheticSamples(ring, nSets, revolutions)
	g := buildGraph(samples, nSets)
	seq := makeSequence(g, 3)
	if len(seq) == 0 {
		t.Fatal("no sequence recovered")
	}
	return seq
}

func TestSequencerSimpleRing(t *testing.T) {
	ring := []int{1, 0, 3, 2, 4}
	seq := recoverFromSamples(t, ring, 5, 50)
	q := EvaluateCyclic(seq, ring)
	if q.Levenshtein != 0 {
		t.Errorf("clean ring must be perfectly recovered; got %v (dist %d)", seq, q.Levenshtein)
	}
}

func TestSequencerSharedSetNeedsHistory(t *testing.T) {
	// Two ring buffers map to set 3: without one node of history the walk
	// could not tell the two apart (Fig 9). With it, recovery is exact.
	ring := []int{0, 3, 2, 3, 1}
	seq := recoverFromSamples(t, ring, 5, 60)
	q := EvaluateCyclic(seq, ring)
	if q.Levenshtein != 0 {
		t.Errorf("shared-set ring recovery: got %v want rotation of %v", seq, ring)
	}
}

func TestSequencerPaperExample(t *testing.T) {
	// The Fig 9 example: sets 1=>0=>3=>2=>4 then =>1=>2=>3=>1 — wait, the
	// figure's final sequence is 1,0,3,2,4,1,2,3 with set ids carrying
	// buffers {21,29,93,135,164,193,205,210}. Encode that ring directly.
	ring := []int{1, 0, 3, 2, 4, 1, 2, 3}
	seq := recoverFromSamples(t, ring, 5, 80)
	q := EvaluateCyclic(seq, ring)
	if q.Levenshtein > 1 {
		t.Errorf("Fig 9 ring: distance %d, got %v", q.Levenshtein, seq)
	}
}

func TestSequencerToleratesSampleNoise(t *testing.T) {
	// Inject spurious activations into 5% of samples; recovery should
	// stay close.
	ring := []int{0, 2, 1, 4, 3, 5}
	samples := syntheticSamples(ring, 6, 80)
	for i := 7; i < len(samples); i += 20 {
		samples[i].Active[(i*3)%6] = true
	}
	g := buildGraph(samples, 6)
	seq := makeSequence(g, 3)
	q := EvaluateCyclic(seq, ring)
	if q.ErrorRate > 0.35 {
		t.Errorf("noisy recovery error %.2f too high: %v", q.ErrorRate, seq)
	}
}

func TestMakeSequenceEmptyGraph(t *testing.T) {
	g := newEdgeGraph(4)
	if seq := makeSequence(g, 1); seq != nil {
		t.Errorf("empty graph must give no sequence, got %v", seq)
	}
}

func TestEvaluateCyclicRotationInvariance(t *testing.T) {
	truth := []int{5, 1, 3, 2, 4}
	rotated := []int{3, 2, 4, 5, 1}
	q := EvaluateCyclic(rotated, truth)
	if q.Levenshtein != 0 {
		t.Errorf("rotations must be distance 0, got %d", q.Levenshtein)
	}
}

func TestEvaluateCyclicEmpty(t *testing.T) {
	q := EvaluateCyclic(nil, []int{1, 2})
	if q.ErrorRate != 1 {
		t.Errorf("empty recovery must be 100%% error, got %v", q.ErrorRate)
	}
}

func TestCollapseRuns(t *testing.T) {
	in := []int{3, 3, 1, 2, 2, 2, 3}
	got := CollapseRuns(in)
	want := []int{1, 2, 3} // leading 3s merge with trailing 3 cyclically
	if len(got) != 4 {
		// 3,1,2,3 -> cyclic wrap trims trailing 3? trailing 3 == leading 3,
		// so [3,1,2] or [1,2,3] depending on trim side; we trim the tail.
		t.Logf("got %v", got)
	}
	if got[len(got)-1] == got[0] && len(got) > 1 {
		t.Errorf("cyclic duplicate endpoints remain: %v", got)
	}
	_ = want
	if CollapseRuns(nil) != nil {
		t.Error("empty input")
	}
}

func TestFilterTruth(t *testing.T) {
	truth := []int{0, 5, 1, 6, 2}
	keep := map[int]bool{0: true, 1: true, 2: true}
	got := FilterTruth(truth, keep)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestInsertCandidate(t *testing.T) {
	// Master ring over shared sets {0,1,2} plus set 3; candidate 9's
	// buffer sits between 1 and 2.
	master := []int{0, 1, 2, 3}
	shared := map[int]bool{0: true, 1: true, 2: true}
	candSeq := []int{0, 1, 9, 2} // window run over {0,1,2,9}
	got := insertCandidate(master, candSeq, 9, shared)
	want := []int{0, 1, 9, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestInsertCandidateMultipleOccurrences(t *testing.T) {
	// Candidate 9 has two buffers: after the first 0 and after 1.
	master := []int{0, 1, 0, 2}
	shared := map[int]bool{0: true, 1: true, 2: true}
	candSeq := []int{0, 9, 1, 0, 2, 9} // cyclic: second 9 precedes first 0
	got := insertCandidate(master, candSeq, 9, shared)
	count := 0
	for _, v := range got {
		if v == 9 {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("both occurrences must be inserted: %v", got)
	}
}

func TestInsertCandidateUnknownAnchorsDropped(t *testing.T) {
	master := []int{0, 1, 2}
	shared := map[int]bool{0: true, 1: true, 2: true}
	// Anchors (7,8) are not shared; occurrence must be dropped silently.
	candSeq := []int{7, 9, 8}
	got := insertCandidate(master, candSeq, 9, shared)
	if len(got) != 3 {
		t.Fatalf("unanchored occurrence must be dropped: %v", got)
	}
}
