package chase

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/netmodel"
	"repro/internal/nic"
	"repro/internal/probe"
	"repro/internal/testbed"
)

// fuzzWorld builds the smallest machine that still has a multi-buffer
// ring to chase: 8 aligned sets, 8 ring buffers. Kept tiny because the
// fuzzer builds one per input.
func fuzzWorld(t *testing.T, seed int64) (*testbed.Testbed, *probe.Spy, []probe.EvictionSet) {
	t.Helper()
	opts := testbed.DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(1, 512, 4)
	opts.NIC = nic.DefaultConfig()
	opts.NIC.RingSize = 8
	opts.NoiseRate = 0
	opts.TimerNoise = 0
	opts.MemBytes = 1 << 26
	tb, err := testbed.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	spy, err := probe.NewSpy(tb, opts.Cache.AlignedSetCount()*opts.Cache.Ways*3)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := spy.BuildAlignedEvictionSets(opts.Cache.Ways)
	if err != nil {
		t.Fatal(err)
	}
	return tb, spy, groups
}

// FuzzChaserResync drives the online chaser with adversarial frame
// streams — byte pairs decode to (size, inter-frame gap), so the fuzzer
// explores back-to-back bursts, sub-timeout stalls, and gaps long enough
// to force out-of-sync recovery — and checks the chaser's structural
// invariants: it terminates, reports well-formed size classes, never
// moves simulated time backwards, and counts exactly the observations it
// returns.
func FuzzChaserResync(f *testing.F) {
	// Seed corpus: paced stream, line-rate burst, resync-forcing stalls,
	// alternating sizes, and a stall-heavy mix.
	f.Add([]byte{4, 50, 4, 50, 4, 50, 4, 50})
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0, 255, 0})
	f.Add([]byte{1, 200, 1, 200, 1, 200})
	f.Add([]byte{0, 10, 255, 10, 0, 10, 255, 10, 0, 10, 255, 10})
	f.Add([]byte{64, 255, 64, 0, 64, 255, 64, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 64 {
			return // at least one frame; bound sim time per input
		}
		tb, spy, groups := fuzzWorld(t, 11)
		ccfg := tb.Cache().Config()
		byCanon := map[int]int{}
		for _, g := range groups {
			byCanon[ccfg.AlignedIndexOf(ccfg.GlobalSet(g.Lines[0]))] = g.ID
		}
		var ring []int
		for _, s := range tb.NIC().RingAlignedSets(ccfg) {
			ring = append(ring, byCanon[s])
		}

		var sizes []int
		var gaps []uint64
		for i := 0; i+1 < len(data); i += 2 {
			size := netmodel.MinFrameSize + int(data[i])*6
			if size > netmodel.MaxFrameSize {
				size = netmodel.MaxFrameSize
			}
			sizes = append(sizes, size)
			// Gaps up to ~2M cycles: beyond the shortened SyncTimeout, so
			// high bytes force the resync path.
			gaps = append(gaps, uint64(data[i+1])*8192)
		}

		cfg := DefaultChaserConfig()
		cfg.SyncTimeout = 1_000_000
		ch := NewChaser(spy, groups, ring, cfg)
		wire := netmodel.NewWire(netmodel.GigabitRate)
		tb.SetTraffic(netmodel.NewTraceSource(wire, sizes, gaps, tb.Clock().Now()+50_000))

		obs := ch.Chase(len(sizes))
		if ch.Observed != uint64(len(obs)) {
			t.Fatalf("Observed %d != returned %d", ch.Observed, len(obs))
		}
		if p := ch.Position(); p < 0 || p >= len(ring) {
			t.Fatalf("ring position %d out of range [0,%d)", p, len(ring))
		}
		var lastAt uint64
		for i, o := range obs {
			if o.Blocks < 1 || o.Blocks > cfg.MaxBlocks {
				t.Fatalf("obs %d: size class %d outside [1,%d]", i, o.Blocks, cfg.MaxBlocks)
			}
			if o.At < lastAt {
				t.Fatalf("obs %d: time went backwards (%d after %d)", i, o.At, lastAt)
			}
			lastAt = o.At
		}
	})
}
