package chase

import (
	"math/rand"
	"testing"
)

func TestConfusionBasics(t *testing.T) {
	// sent 2 4 2 4, observed 2 2 2: one match per class boundary case.
	sent := []int{2, 4, 2, 4}
	obs := []int{2, 2, 2}
	conf := Confusion(sent, obs)
	c2, c4 := conf[2], conf[4]
	if c2.Sent != 2 || c4.Sent != 2 {
		t.Fatalf("sent counts wrong: %+v %+v", c2, c4)
	}
	// Total true positives equal the alignment's matches; every sent
	// symbol is either a TP or FN of its class.
	if c2.TruePos+c2.FalseNeg != c2.Sent || c4.TruePos+c4.FalseNeg != c4.Sent {
		t.Errorf("TP+FN must cover sent per class: %+v %+v", c2, c4)
	}
	// A class never observed has no false positives.
	if c4.FalsePos != 0 {
		t.Errorf("class 4 was never observed, FalsePos = %d", c4.FalsePos)
	}
	// 4s misread as 2s surface as class-2 false positives.
	if c2.FalsePos == 0 {
		t.Error("misread 4s must count as class-2 false positives")
	}
}

func TestConfusionPerfectAndEmpty(t *testing.T) {
	sent := []int{2, 4, 2}
	conf := Confusion(sent, sent)
	for cls, c := range conf {
		if c.TruePos != c.Sent || c.FalsePos != 0 || c.FalseNeg != 0 {
			t.Errorf("perfect observation: class %d = %+v", cls, c)
		}
		if c.TruePosRate() != 1 || c.FalsePosRate() != 0 {
			t.Errorf("perfect rates: class %d = %v/%v", cls, c.TruePosRate(), c.FalsePosRate())
		}
	}
	conf = Confusion(sent, nil)
	for cls, c := range conf {
		if c.TruePos != 0 || c.FalseNeg != c.Sent {
			t.Errorf("empty observation: class %d = %+v", cls, c)
		}
	}
	// Pure insertions: everything observed is a false positive; rates are
	// zero-guarded for never-sent classes.
	conf = Confusion(nil, []int{3, 3})
	if c := conf[3]; c.FalsePos != 2 || c.Sent != 0 || c.FalsePosRate() != 0 {
		t.Errorf("pure insertion: %+v rate %v", c, c.FalsePosRate())
	}
}

// TestConfusionConservation: over random streams, per-class counts must
// tie out against the alignment totals — every sent symbol is TP or FN,
// and every observed symbol is TP or FP.
func TestConfusionConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		sent := make([]int, rng.Intn(30))
		obs := make([]int, rng.Intn(30))
		for i := range sent {
			sent[i] = 2 + 2*rng.Intn(2)
		}
		for i := range obs {
			obs[i] = 2 + 2*rng.Intn(2)
		}
		conf := Confusion(sent, obs)
		var tp, fp, fn, sentN int
		for _, c := range conf {
			tp += c.TruePos
			fp += c.FalsePos
			fn += c.FalseNeg
			sentN += c.Sent
		}
		if sentN != len(sent) {
			t.Fatalf("trial %d: sent coverage %d != %d", trial, sentN, len(sent))
		}
		if tp+fn != len(sent) {
			t.Fatalf("trial %d: TP+FN = %d, want %d", trial, tp+fn, len(sent))
		}
		if tp+fp != len(obs) {
			t.Fatalf("trial %d: TP+FP = %d, want %d", trial, tp+fp, len(obs))
		}
		// Consistency with the scalar decomposition: FN = deletions +
		// substitutions, FP = insertions + substitutions.
		ins, del, sub := Decompose(sent, obs)
		if fn != del+sub || fp != ins+sub {
			t.Fatalf("trial %d: confusion (fp=%d fn=%d) inconsistent with ops (i=%d d=%d s=%d)",
				trial, fp, fn, ins, del, sub)
		}
	}
}
