package chase

import "fmt"

// RecoverFull recovers the complete ring sequence: one base window of
// WindowSize sets, then — exactly as §III-C describes — repeated sequencer
// runs over the first WindowSize-1 sets plus one candidate, locating each
// candidate's buffers within the growing master sequence.
func (s *Sequencer) RecoverFull() ([]int, error) {
	n := len(s.Groups)
	w := s.Params.WindowSize
	if w > n {
		w = n
	}
	baseIDs := make([]int, w)
	for i := range baseIDs {
		baseIDs[i] = i
	}
	master, err := s.RecoverWindow(baseIDs)
	if err != nil {
		return nil, fmt.Errorf("chase: base window: %w", err)
	}
	shared := make(map[int]bool, w-1)
	window := make([]int, w)
	copy(window, baseIDs[:w-1])
	for _, id := range baseIDs[:w-1] {
		shared[id] = true
	}
	for cand := w; cand < n; cand++ {
		window[w-1] = cand
		seq, err := s.RecoverWindow(window)
		if err != nil {
			continue // candidate hosts no buffers or was drowned in noise
		}
		master = insertCandidate(master, seq, cand, shared)
	}
	return master, nil
}

// insertCandidate splices every occurrence of cand from the window
// sequence seq into master. An occurrence is located by its nearest shared
// neighbors (a, b): the buffer sits between the k-th (a followed-by b)
// pair, where k counts pair occurrences cyclically. Occurrences whose
// anchors cannot be found in master are dropped — they surface as sequence
// errors, the same tolerance the paper accepts.
func insertCandidate(master, seq []int, cand int, shared map[int]bool) []int {
	type anchor struct {
		a, b, k int
	}
	var anchors []anchor
	pairCount := map[[2]int]int{}
	m := len(seq)
	for i, v := range seq {
		if v != cand {
			continue
		}
		a, b := -1, -1
		for d := 1; d < m; d++ {
			if u := seq[((i-d)%m+m)%m]; a < 0 && shared[u] {
				a = u
			}
			if u := seq[(i+d)%m]; b < 0 && shared[u] {
				b = u
			}
			if a >= 0 && b >= 0 {
				break
			}
		}
		if a < 0 {
			continue
		}
		key := [2]int{a, b}
		anchors = append(anchors, anchor{a: a, b: b, k: pairCount[key]})
		pairCount[key]++
	}

	out := master
	for _, an := range anchors {
		positions := matchPositions(out, an.a, an.b, shared)
		if len(positions) == 0 {
			// Fall back to anchoring on the predecessor alone.
			positions = occurrencePositions(out, an.a)
			if len(positions) == 0 {
				continue
			}
		}
		pos := positions[an.k%len(positions)]
		out = append(out[:pos+1], append([]int{cand}, out[pos+1:]...)...)
	}
	return out
}

// matchPositions returns master indices i such that master[i] == a and the
// next shared element (cyclically, skipping inserted non-shared ids) is b.
// b < 0 matches anything.
func matchPositions(master []int, a, b int, shared map[int]bool) []int {
	n := len(master)
	var out []int
	for i, v := range master {
		if v != a {
			continue
		}
		if b < 0 {
			out = append(out, i)
			continue
		}
		for d := 1; d < n; d++ {
			u := master[(i+d)%n]
			if shared[u] {
				if u == b {
					out = append(out, i)
				}
				break
			}
		}
	}
	return out
}

func occurrencePositions(master []int, a int) []int {
	var out []int
	for i, v := range master {
		if v == a {
			out = append(out, i)
		}
	}
	return out
}
