package chase

import "repro/internal/stats"

// ClassConfusion is one probe class's confusion-matrix row against the
// alignment of an observed stream to the sent stream. TruePos counts
// aligned positions where the class was sent and observed; FalsePos
// counts observations of the class that were not sent there (a
// substitution's wrong side, or a pure insertion — background packets
// read as victim symbols); FalseNeg counts sent symbols of the class the
// chase missed or misread.
type ClassConfusion struct {
	TruePos, FalsePos, FalseNeg int
	// Sent is how many symbols of the class the sender emitted — the
	// normalizer for per-class rates.
	Sent int
}

// TruePosRate is TruePos normalized by the class's sent count (0 when
// the class was never sent).
func (c ClassConfusion) TruePosRate() float64 {
	if c.Sent == 0 {
		return 0
	}
	return float64(c.TruePos) / float64(c.Sent)
}

// FalsePosRate is FalsePos normalized by the class's sent count. It may
// exceed 1 under heavy insertion (more spurious observations of the
// class than real ones) — exactly the regime where plain accuracy has
// saturated at its floor, which is what makes the confusion split a
// longer-range measurement than the accuracy curve.
func (c ClassConfusion) FalsePosRate() float64 {
	if c.Sent == 0 {
		return 0
	}
	return float64(c.FalsePos) / float64(c.Sent)
}

// Confusion aligns an observed symbol stream against the sent one
// (minimal edit alignment, deterministic tie-breaks) and splits the
// outcome per class. Where the scalar accuracy 1 - Levenshtein/len
// floors at chance once classification collapses, the per-class
// true-positive and false-positive counts keep moving: true positives
// keep falling toward zero and false positives keep growing with
// insertion pressure, so sensitivity curves stay informative past the
// accuracy floor.
func Confusion(sent, observed []int) map[int]ClassConfusion {
	return ConfusionFromSteps(sent, observed, stats.Align(sent, observed))
}

// ConfusionFromSteps is Confusion over an already-computed alignment of
// observed against sent, for callers that derive several metrics from
// one stats.Align pass.
func ConfusionFromSteps(sent, observed []int, steps []stats.AlignStep) map[int]ClassConfusion {
	out := map[int]ClassConfusion{}
	for _, c := range sent {
		e := out[c]
		e.Sent++
		out[c] = e
	}
	for _, step := range steps {
		switch step.Op {
		case stats.OpMatch:
			e := out[sent[step.I]]
			e.TruePos++
			out[sent[step.I]] = e
		case stats.OpSubstitute:
			e := out[sent[step.I]]
			e.FalseNeg++
			out[sent[step.I]] = e
			o := out[observed[step.J]]
			o.FalsePos++
			out[observed[step.J]] = o
		case stats.OpDelete:
			e := out[sent[step.I]]
			e.FalseNeg++
			out[sent[step.I]] = e
		case stats.OpInsert:
			o := out[observed[step.J]]
			o.FalsePos++
			out[observed[step.J]] = o
		}
	}
	return out
}
