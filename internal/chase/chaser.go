package chase

import (
	"repro/internal/probe"
)

// PacketObservation is one packet as seen by the online chaser.
type PacketObservation struct {
	// At is the cycle at which activity was detected.
	At uint64
	// Blocks is the detected size class in cache blocks: 1..MaxBlocks,
	// where MaxBlocks means "MaxBlocks or larger" (the paper's "4+").
	// Note the driver's block-1 prefetch makes 1-block packets light up
	// block 1 as well (Fig 8), so classes 1 and 2 can only be separated
	// by the temporal gap between DMA and driver prefetch; Blocks
	// reports the raw class.
	Blocks int
	// Resynced marks observations made right after an out-of-sync
	// recovery, whose position in the stream is approximate.
	Resynced bool
}

// ChaserConfig tunes the online phase.
type ChaserConfig struct {
	// MaxBlocks is the largest distinguished size class (paper: 4, i.e.
	// "1", "2", "3", "4+").
	MaxBlocks int
	// PollInterval is the cycle gap between polls of the expected buffer.
	PollInterval uint64
	// SyncTimeout is how long to wait on one buffer before declaring the
	// chase out of sync (a missed packet); the chaser then holds position
	// until the ring comes back around (§IV-c).
	SyncTimeout uint64
	// MonitorSecondHalf also probes the second half-page of each buffer,
	// needed because the driver flips halves after large packets (§V).
	MonitorSecondHalf bool
	// SwitchDetect counts a packet pattern seen by the buffer-switch probe
	// as a detection instead of discarding it as a priming pass. Enable
	// for bursty traffic (web pages), where back-to-back packets would
	// otherwise be erased and the chase stalls; disable for paced covert
	// streams, where driver-read residue would insert phantom symbols.
	SwitchDetect bool
	// LingerCycles is how long the chaser keeps watching a buffer after
	// detecting its packet, to absorb the driver's processing of that
	// same packet (DMA-to-driver-read latency). Without it the driver's
	// reads re-fire the buffer's sets a revolution later and masquerade
	// as a fresh packet. The extra blocks observed while lingering also
	// sharpen the size classification.
	LingerCycles uint64
}

// DefaultChaserConfig returns the §V configuration: four blocks on both
// half-pages.
func DefaultChaserConfig() ChaserConfig {
	return ChaserConfig{
		MaxBlocks:         4,
		PollInterval:      2_000,
		SyncTimeout:       30_000_000,
		MonitorSecondHalf: true,
		SwitchDetect:      true,
		LingerCycles:      8_000,
	}
}

// Chaser follows packets around the recovered ring, probing only the sets
// of the buffer expected to fill next — the resolution multiplier that
// distinguishes Packet Chasing from blanket PRIME+PROBE.
//
// The chaser inherits the spy's measurement strategy (probe.Strategy):
// built on an amplified spy, every per-buffer monitor block-times its
// walks and widens its thresholds by the calibrated noise floor, which is
// what keeps the chase alive under a timer-coarsening defense. Use
// CalibrationOK to tell a healthy chase from one whose monitors have
// explicitly declared themselves unable to separate signal from jitter.
type Chaser struct {
	spy    *probe.Spy
	groups []probe.EvictionSet
	ring   []int // group ids in recovered ring order
	cfg    ChaserConfig

	pos        int
	lastPrimed int
	monitors   map[int]*probe.Monitor // group id -> 2*MaxBlocks-set monitor

	// OutOfSync counts sync losses; Observed counts packets seen.
	OutOfSync, Observed uint64
}

// NewChaser builds the online chaser from the offline phase's outputs.
// Monitors for every distinct ring buffer are built (and calibrated) up
// front: building one lazily mid-chase costs thousands of cycles during
// which a back-to-back packet would slip past unobserved.
func NewChaser(spy *probe.Spy, groups []probe.EvictionSet, ring []int, cfg ChaserConfig) *Chaser {
	c := &Chaser{
		spy:        spy,
		groups:     groups,
		ring:       ring,
		cfg:        cfg,
		lastPrimed: -1,
		monitors:   make(map[int]*probe.Monitor),
	}
	for _, gid := range ring {
		c.monitorFor(gid)
	}
	return c
}

// monitorFor lazily builds the per-buffer monitor: block sets 0..MaxBlocks-1
// of the first half-page, plus the same blocks of the second half-page
// (offset 32 blocks = 2048 bytes) when configured.
func (c *Chaser) monitorFor(groupID int) *probe.Monitor {
	if m, ok := c.monitors[groupID]; ok {
		return m
	}
	g := c.groups[groupID]
	var sets []probe.EvictionSet
	for k := 0; k < c.cfg.MaxBlocks; k++ {
		sets = append(sets, g.Offset(k))
	}
	if c.cfg.MonitorSecondHalf {
		for k := 0; k < c.cfg.MaxBlocks; k++ {
			sets = append(sets, g.Offset(32+k))
		}
	}
	m := probe.NewMonitor(c.spy, sets)
	c.monitors[groupID] = m
	return m
}

// Position returns the current index into the recovered ring.
func (c *Chaser) Position() int { return c.pos }

// CalibrationOK reports whether every per-buffer monitor's calibration
// can actually separate idle timer jitter from packet activity (see
// probe.Monitor.CalibrationOK). False means the observation stream is
// noise — experiments surface it as the calibration_ok metric instead of
// letting a blind chase masquerade as a defense victory.
func (c *Chaser) CalibrationOK() bool {
	for _, m := range c.monitors {
		if !m.CalibrationOK() {
			return false
		}
	}
	return true
}

// WaitForActivity blocks (in simulated time) until the current buffer
// shows activity or the timeout elapses, returning the observed activity
// vector and whether anything was seen.
func (c *Chaser) waitForActivity(m *probe.Monitor, timeout uint64) ([]bool, bool) {
	tb := c.spy.Testbed()
	deadline := tb.Clock().Now() + timeout
	// No re-priming on switch: the detection probe that observed this
	// buffer's previous packet (one ring revolution ago) already re-primed
	// its sets, and a discarded priming pass would swallow a packet that
	// lands between the switch and the first counted poll.
	// Activity accumulates over a short window of polls: probing consumes
	// evictions, so the DMA write and the driver's prefetch of block 1 can
	// surface in different polls and must be OR-ed before applying the
	// detection rule. The window is bounded so ambient noise collected
	// over a long idle wait cannot fake a packet.
	const windowPolls = 16
	var sticky []bool
	polls := 0
	for tb.Clock().Now() < deadline {
		s := m.ProbeOnce()
		if sticky == nil || polls >= windowPolls {
			sticky = make([]bool, len(s.Active))
			polls = 0
		}
		for i, a := range s.Active {
			sticky[i] = sticky[i] || a
		}
		polls++
		if c.packetDetected(sticky) {
			return sticky, true
		}
		tb.Idle(c.cfg.PollInterval)
	}
	return nil, false
}

// packetDetected applies the paper's detection rule: a packet is filling
// the buffer only when blocks 0 AND 1 both show activity (§V: "she finds a
// window in which there are activities on both block 0 and block 1") —
// every frame DMAs block 0 and at least prefetches block 1, while ambient
// noise rarely strikes two specific sets within one poll.
func (c *Chaser) packetDetected(active []bool) bool {
	if c.cfg.MaxBlocks < 2 {
		for _, a := range active {
			if a {
				return true
			}
		}
		return false
	}
	if active[0] && active[1] {
		return true
	}
	if c.cfg.MonitorSecondHalf && len(active) >= c.cfg.MaxBlocks+2 {
		return active[c.cfg.MaxBlocks] && active[c.cfg.MaxBlocks+1]
	}
	return false
}

// Next chases one packet: it waits for the expected buffer to fill,
// classifies the packet size, and advances along the ring. When the wait
// times out, the chaser counts an out-of-sync event and keeps waiting on
// the same buffer for the ring to come back around — the recovery
// behaviour whose cost Fig 12c quantifies.
func (c *Chaser) Next() (PacketObservation, bool) {
	resynced := false
	for {
		m := c.monitorFor(c.ring[c.pos])
		// One probe at buffer-switch time. If it already shows the packet
		// pattern, count it immediately: a back-to-back packet may have
		// landed during the previous buffer's detection probe, and
		// discarding this pass (as a pure priming pass would) can lose the
		// chase permanently. The cost is that driver-read residue from
		// this buffer's previous packet occasionally double-counts as a
		// packet — an insertion error rather than a stall.
		var active []bool
		detected := false
		if c.lastPrimed != c.pos {
			c.lastPrimed = c.pos
			s := m.ProbeOnce()
			if c.cfg.SwitchDetect && c.packetDetected(s.Active) {
				active, detected = s.Active, true
			}
		}
		if !detected {
			var ok bool
			active, ok = c.waitForActivity(m, c.cfg.SyncTimeout)
			if !ok {
				c.OutOfSync++
				if resynced {
					// Two consecutive timeouts: traffic has stopped.
					return PacketObservation{}, false
				}
				resynced = true
				continue
			}
		}
		// Linger to absorb (and fold in) the driver's processing of this
		// packet; see ChaserConfig.LingerCycles.
		if c.cfg.LingerCycles > 0 {
			c.spy.Testbed().Idle(c.cfg.LingerCycles)
			s := m.ProbeOnce()
			for i := range active {
				active[i] = active[i] || s.Active[i]
			}
		}
		obs := PacketObservation{
			At:       c.spy.Testbed().Clock().Now(),
			Blocks:   c.classify(active),
			Resynced: resynced,
		}
		c.Observed++
		c.pos = (c.pos + 1) % len(c.ring)
		return obs, true
	}
}

// Chase collects up to n packet observations.
func (c *Chaser) Chase(n int) []PacketObservation {
	out := make([]PacketObservation, 0, n)
	for len(out) < n {
		obs, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, obs)
	}
	return out
}

// classify turns the activity vector (blocks 0..MaxBlocks-1 of each
// monitored half-page) into a size class: the highest active block index
// across the active half, plus one.
func (c *Chaser) classify(active []bool) int {
	classOf := func(half []bool) int {
		cls := 0
		for k, a := range half {
			if a {
				cls = k + 1
			}
		}
		return cls
	}
	cls := classOf(active[:c.cfg.MaxBlocks])
	if c.cfg.MonitorSecondHalf && len(active) >= 2*c.cfg.MaxBlocks {
		if alt := classOf(active[c.cfg.MaxBlocks : 2*c.cfg.MaxBlocks]); alt > cls {
			cls = alt
		}
	}
	if cls == 0 {
		cls = 1
	}
	return cls
}

// SizeTrace extracts the size-class vector from observations — the input
// to the fingerprint classifier.
func SizeTrace(obs []PacketObservation) []int {
	out := make([]int, len(obs))
	for i, o := range obs {
		out[i] = o.Blocks
	}
	return out
}
