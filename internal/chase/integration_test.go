package chase

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/netmodel"
	"repro/internal/nic"
	"repro/internal/probe"
	"repro/internal/testbed"
)

// smallWorld builds a scaled machine with 32 page-aligned groups and a
// 64-buffer ring over 32 sets (ratio 1, like the paper's 256-over-256): big
// enough to exercise shared-set history and kernel-page pollution, small
// enough for fast tests.
func smallWorld(t *testing.T, seed int64) (*testbed.Testbed, *probe.Spy, []probe.EvictionSet) {
	t.Helper()
	opts := testbed.DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(2, 1024, 4)
	opts.NIC = nic.DefaultConfig()
	opts.NIC.RingSize = 32
	opts.NoiseRate = 0
	opts.TimerNoise = 0
	opts.MemBytes = 1 << 28
	tb, err := testbed.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	spy, err := probe.NewSpy(tb, 32*4*4)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := spy.BuildAlignedEvictionSets(opts.Cache.Ways)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != opts.Cache.AlignedSetCount() {
		t.Fatalf("found %d groups want %d", len(groups), opts.Cache.AlignedSetCount())
	}
	return tb, spy, groups
}

// canonicalOf maps attacker-local group ids to the canonical aligned-set
// index so recovered sequences can be compared with driver ground truth.
func canonicalOf(ccfg cache.Config, groups []probe.EvictionSet) map[int]int {
	m := make(map[int]int, len(groups))
	for _, g := range groups {
		m[g.ID] = ccfg.AlignedIndexOf(ccfg.GlobalSet(g.Lines[0]))
	}
	return m
}

func TestFootprintDiscovery(t *testing.T) {
	tb, spy, groups := smallWorld(t, 21)
	wire := netmodel.NewWire(netmodel.GigabitRate)
	res := RecoverFootprint(spy, groups, DefaultFootprintParams(), func() {
		tb.SetTraffic(netmodel.NewConstantSource(wire, 128, 100_000, tb.Clock().Now(), -1))
	})
	if len(res.ActiveGroups) == 0 {
		t.Fatal("no active groups found while receiving")
	}
	// Ground truth: which canonical sets actually host ring buffers.
	truthSets := map[int]bool{}
	for _, s := range tb.NIC().RingAlignedSets(tb.Cache().Config()) {
		truthSets[s] = true
	}
	// Kernel pages involved in packet processing (the descriptor ring)
	// legitimately light up too.
	ccfg := tb.Cache().Config()
	descSet := ccfg.AlignedIndexOf(ccfg.GlobalSet(uint64(tb.NIC().DescRingPage())))
	canon := canonicalOf(ccfg, groups)
	for _, gid := range res.ActiveGroups {
		if !truthSets[canon[gid]] && canon[gid] != descSet {
			t.Errorf("group %d (canonical %d) flagged active but hosts no buffer", gid, canon[gid])
		}
	}
	// All buffer-hosting sets must be discovered (16 buffers across 8
	// sets: every set is expected to host at least one).
	found := map[int]bool{}
	for _, gid := range res.ActiveGroups {
		found[canon[gid]] = true
	}
	for s := range truthSets {
		if !found[s] {
			t.Errorf("buffer-hosting set %d not discovered", s)
		}
	}
}

func TestSequenceRecoveryEndToEnd(t *testing.T) {
	tb, spy, groups := smallWorld(t, 22)
	ccfg := tb.Cache().Config()

	wire := netmodel.NewWire(netmodel.GigabitRate)
	// One packet per ~300k cycles (11 kpps), probes every 100k cycles:
	// about one activation per three samples, and the interval comfortably
	// exceeds the DMA-to-driver-read latency so each packet touches only
	// one sample — the tuning regime §III-C describes.
	tb.SetTraffic(netmodel.NewConstantSource(wire, 64, 11_000, tb.Clock().Now(), -1))

	seq := &Sequencer{
		Spy:    spy,
		Groups: groups,
		Params: SequencerParams{
			Samples:        8000,
			WindowSize:     len(groups),
			ProbeRate:      33_000,
			ActivityCutoff: 0.2,
			WeightCutoff:   3,
		},
	}
	ids := make([]int, len(groups))
	for i := range ids {
		ids[i] = i
	}
	recovered, err := seq.RecoverWindow(ids)
	if err != nil {
		t.Fatal(err)
	}
	canon := canonicalOf(ccfg, groups)
	rec := make([]int, len(recovered))
	for i, gid := range recovered {
		rec[i] = canon[gid]
	}
	truth := CollapseRuns(tb.NIC().RingAlignedSets(ccfg))
	q := EvaluateCyclic(rec, truth)
	t.Logf("recovered len=%d truth len=%d dist=%d err=%.1f%%",
		len(rec), len(truth), q.Levenshtein, 100*q.ErrorRate)
	if q.ErrorRate > 0.25 {
		t.Errorf("sequence recovery error %.1f%% too high (dist %d, rec %v, truth %v)",
			100*q.ErrorRate, q.Levenshtein, rec, truth)
	}
}

func TestChaserFollowsSizes(t *testing.T) {
	tb, spy, groups := smallWorld(t, 23)
	ccfg := tb.Cache().Config()

	// Ground-truth ring (canonical sets -> group ids) isolates the chaser
	// from sequencer quality.
	byCanon := map[int]int{}
	for _, g := range groups {
		byCanon[ccfg.AlignedIndexOf(ccfg.GlobalSet(g.Lines[0]))] = g.ID
	}
	var ring []int
	for _, s := range tb.NIC().RingAlignedSets(ccfg) {
		ring = append(ring, byCanon[s])
	}

	// Alternating 4-block and 1-block packets, slow enough to chase.
	wire := netmodel.NewWire(netmodel.GigabitRate)
	sizes := make([]int, 64)
	for i := range sizes {
		if i%2 == 0 {
			sizes[i] = 256 // 4 blocks
		} else {
			sizes[i] = 64 // 1 block
		}
	}
	gaps := make([]uint64, len(sizes))
	for i := range gaps {
		gaps[i] = 400_000
	}
	tb.SetTraffic(netmodel.NewTraceSource(wire, sizes, gaps, tb.Clock().Now()+200_000))

	cfg := DefaultChaserConfig()
	cfg.SyncTimeout = 2_000_000
	ch := NewChaser(spy, groups, ring, cfg)
	obs := ch.Chase(40)
	if len(obs) < 30 {
		t.Fatalf("chased only %d packets", len(obs))
	}
	big, small := 0, 0
	for i, o := range obs {
		if o.Resynced {
			continue
		}
		if o.Blocks >= 4 {
			big++
		} else if o.Blocks <= 2 {
			small++
		}
		_ = i
	}
	if big == 0 || small == 0 {
		t.Fatalf("size classes not distinguished: big=%d small=%d", big, small)
	}
	// Alternating stream: roughly half each among classified packets.
	total := big + small
	if big < total/4 || small < total/4 {
		t.Errorf("alternation lost: big=%d small=%d", big, small)
	}
	if ch.OutOfSync > uint64(len(obs)/2) {
		t.Errorf("out-of-sync rate too high: %d/%d", ch.OutOfSync, len(obs))
	}
}

func TestRecoverFullInsertsCandidates(t *testing.T) {
	tb, spy, groups := smallWorld(t, 24)
	ccfg := tb.Cache().Config()
	wire := netmodel.NewWire(netmodel.GigabitRate)
	tb.SetTraffic(netmodel.NewConstantSource(wire, 64, 11_000, tb.Clock().Now(), -1))

	seq := &Sequencer{
		Spy:    spy,
		Groups: groups,
		Params: SequencerParams{
			Samples:        6000,
			WindowSize:     16, // force candidate insertion for the rest
			ProbeRate:      33_000,
			ActivityCutoff: 0.2,
			WeightCutoff:   3,
		},
	}
	recovered, err := seq.RecoverFull()
	if err != nil {
		t.Fatal(err)
	}
	canon := canonicalOf(ccfg, groups)
	rec := make([]int, len(recovered))
	for i, gid := range recovered {
		rec[i] = canon[gid]
	}
	truth := CollapseRuns(tb.NIC().RingAlignedSets(ccfg))
	q := EvaluateCyclic(rec, truth)
	t.Logf("full recovery: len=%d truth=%d dist=%d err=%.1f%%",
		len(rec), len(truth), q.Levenshtein, 100*q.ErrorRate)
	// Candidate insertion is noisier than single-window recovery, and at
	// this scale each window holds only ~16 ring entries while descriptor
	// pollution is 8x the paper's, so the error floor is well above the
	// paper's 9.8%. The paper-scale run (cmd/experiments -exp table1)
	// lands near the paper's figure; here we assert the procedure stays
	// broadly correct.
	if q.ErrorRate > 0.6 {
		t.Errorf("full recovery error %.1f%% too high", 100*q.ErrorRate)
	}
}
