package chase

import "repro/internal/stats"

// SequenceQuality is the Table I measurement block: the edit distance
// between the recovered ring sequence and the driver's ground truth, the
// normalized error rate, the longest run of consecutive mismatches, and
// the decomposition of the distance into operation classes. Insertions
// are spurious recovered symbols (pollution read as signal), Deletions
// are truth symbols the recovery missed, Substitutions are
// misclassifications; the three sum to Levenshtein. The split is what
// distinguishes "the metric saturated because everything extra leaked in"
// (insertion-dominated) from "the attack stopped seeing the victim"
// (deletion-dominated) on sensitivity curves.
type SequenceQuality struct {
	Levenshtein     int
	ErrorRate       float64
	LongestMismatch int
	Insertions      int
	Deletions       int
	Substitutions   int
	RecoveredLen    int
	TruthLen        int
}

// Decompose aligns an observed sequence against the true one and splits
// the edit distance into insertions (spurious observed symbols),
// deletions (missed true symbols), and substitutions (misclassified
// symbols). Orientation is truth -> observed, so "insertion" always means
// "the attacker saw something that was not sent".
func Decompose(truth, observed []int) (ins, del, sub int) {
	return stats.LevenshteinOps(truth, observed)
}

// EvaluateCyclic compares a recovered sequence against the ground-truth
// ring. Both are cyclic and the recovery's starting point is arbitrary, so
// the distance is minimized over all rotations of the recovered sequence.
func EvaluateCyclic(recovered, truth []int) SequenceQuality {
	if len(recovered) == 0 || len(truth) == 0 {
		ins, del, _ := Decompose(truth, recovered)
		return SequenceQuality{
			Levenshtein:  maxInt(len(recovered), len(truth)),
			ErrorRate:    1,
			Insertions:   ins,
			Deletions:    del,
			RecoveredLen: len(recovered),
			TruthLen:     len(truth),
		}
	}
	best := -1
	bestRot := 0
	for r := 0; r < len(recovered); r++ {
		d := stats.Levenshtein(rotate(recovered, r), truth)
		if best < 0 || d < best {
			best, bestRot = d, r
		}
	}
	rotated := rotate(recovered, bestRot)
	ins, del, sub := Decompose(truth, rotated)
	return SequenceQuality{
		Levenshtein:     best,
		ErrorRate:       float64(best) / float64(len(truth)),
		LongestMismatch: stats.LongestMismatch(rotated, truth),
		Insertions:      ins,
		Deletions:       del,
		Substitutions:   sub,
		RecoveredLen:    len(recovered),
		TruthLen:        len(truth),
	}
}

// FilterTruth restricts a ground-truth ring sequence to the elements
// present in keep (for window-level evaluation, where only a subset of
// sets was monitored).
func FilterTruth(truth []int, keep map[int]bool) []int {
	var out []int
	for _, v := range truth {
		if keep[v] {
			out = append(out, v)
		}
	}
	return out
}

// CollapseRuns merges consecutive duplicates cyclically. Two consecutive
// ring buffers mapping to the same set are indistinguishable to the
// attacker (§III-C: "the buffers are essentially merged"), so ground truth
// must be collapsed the same way before comparison.
func CollapseRuns(seq []int) []int {
	if len(seq) == 0 {
		return nil
	}
	var out []int
	for i, v := range seq {
		if i == 0 || v != seq[i-1] {
			out = append(out, v)
		}
	}
	// Cyclic wrap: last equals first.
	for len(out) > 1 && out[len(out)-1] == out[0] {
		out = out[:len(out)-1]
	}
	return out
}

func rotate(s []int, r int) []int {
	out := make([]int, len(s))
	copy(out, s[r:])
	copy(out[len(s)-r:], s[:r])
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
