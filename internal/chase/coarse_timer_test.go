package chase

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/netmodel"
	"repro/internal/nic"
	"repro/internal/probe"
	"repro/internal/testbed"
)

// coarseWorld is smallWorld with the paper's timer-coarsening defense
// magnitude in force for offline and online phases alike, and the spy
// built under the given measurement strategy.
func coarseWorld(t *testing.T, seed int64, strat probe.Strategy) (*testbed.Testbed, *probe.Spy, []probe.EvictionSet) {
	t.Helper()
	opts := testbed.DefaultOptions(seed)
	opts.Cache = cache.ScaledConfig(2, 1024, 4)
	opts.NIC = nic.DefaultConfig()
	opts.NIC.RingSize = 32
	opts.NoiseRate = 0
	opts.TimerNoise = 64
	opts.MemBytes = 1 << 28
	tb, err := testbed.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	spy, err := probe.NewSpyStrategy(tb, 32*4*4, strat)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := spy.BuildAlignedEvictionSets(opts.Cache.Ways)
	if err != nil {
		t.Fatal(err)
	}
	return tb, spy, groups
}

// TestChaserAmplifiedUnderCoarseTimer is the attack-layer half of the
// tentpole: with a 64-cycle coarse timer in force during the attacker's
// own offline phase AND the chase, the amplified attacker still follows
// the alternating-size stream, while its monitors report healthy
// calibration. The fine-timer attacker's monitors must report UNhealthy
// under the same timer — the explicit signal this PR adds — so the
// defense matrix can distinguish "defense works" from "attacker blind".
func TestChaserAmplifiedUnderCoarseTimer(t *testing.T) {
	tb, spy, groups := coarseWorld(t, 25, probe.AmplifiedStrategy())
	ccfg := tb.Cache().Config()
	if len(groups) != ccfg.AlignedSetCount() {
		t.Fatalf("amplified offline found %d groups want %d", len(groups), ccfg.AlignedSetCount())
	}

	byCanon := map[int]int{}
	for _, g := range groups {
		byCanon[ccfg.AlignedIndexOf(ccfg.GlobalSet(g.Lines[0]))] = g.ID
	}
	var ring []int
	for _, s := range tb.NIC().RingAlignedSets(ccfg) {
		ring = append(ring, byCanon[s])
	}

	wire := netmodel.NewWire(netmodel.GigabitRate)
	sizes := make([]int, 64)
	for i := range sizes {
		if i%2 == 0 {
			sizes[i] = 256 // 4 blocks
		} else {
			sizes[i] = 64 // 1 block
		}
	}
	gaps := make([]uint64, len(sizes))
	for i := range gaps {
		gaps[i] = 400_000
	}
	tb.SetTraffic(netmodel.NewTraceSource(wire, sizes, gaps, tb.Clock().Now()+200_000))

	cfg := DefaultChaserConfig()
	cfg.SyncTimeout = 2_000_000
	ch := NewChaser(spy, groups, ring, cfg)
	if !ch.CalibrationOK() {
		t.Fatal("amplified chaser reports degenerate calibration under coarse timer")
	}
	obs := ch.Chase(40)
	if len(obs) < 30 {
		t.Fatalf("chased only %d packets under coarse timer", len(obs))
	}
	big, small := 0, 0
	for _, o := range obs {
		if o.Resynced {
			continue
		}
		if o.Blocks >= 4 {
			big++
		} else if o.Blocks <= 2 {
			small++
		}
	}
	if big == 0 || small == 0 {
		t.Fatalf("size classes not distinguished under coarse timer: big=%d small=%d", big, small)
	}
	total := big + small
	if big < total/4 || small < total/4 {
		t.Errorf("alternation lost under coarse timer: big=%d small=%d", big, small)
	}
}

// TestChaserFineTimerReportsBlindUnderCoarseTimer pins the other half:
// the fine-timer attacker built under the same coarse timer must not
// claim healthy calibration (whatever groups its degraded offline phase
// managed to produce).
func TestChaserFineTimerReportsBlindUnderCoarseTimer(t *testing.T) {
	tb, spy, groups := coarseWorld(t, 26, probe.DefaultStrategy())
	_ = tb
	mon := probe.NewMonitor(spy, groups[:1])
	if mon.CalibrationOK() {
		t.Fatal("fine-timer monitor claims healthy calibration under a 64-cycle coarse timer")
	}
}
