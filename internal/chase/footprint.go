package chase

import (
	"repro/internal/probe"
	"repro/internal/sim"
)

// FootprintResult captures the §III-B discovery experiments: per page-
// aligned group, the activity rates of an idle machine versus a machine
// receiving packets (Fig 7), measured over the same monitored groups.
type FootprintResult struct {
	// Groups are the discovered page-aligned conflict groups.
	Groups []probe.EvictionSet
	// IdleRate[i] and BusyRate[i] are per-group activity fractions.
	IdleRate, BusyRate []float64
	// ActiveGroups lists groups whose busy-rate exceeds their idle-rate
	// by margin — the candidate ring-buffer locations.
	ActiveGroups []int
}

// FootprintParams configures footprint discovery.
type FootprintParams struct {
	// Samples per phase (idle and busy).
	Samples int
	// ProbeRate in probes/second over the whole group list. Probing all
	// 256 groups is slow (~12M cycles on the paper machine) which is
	// exactly why the attack then narrows its monitor list.
	ProbeRate float64
	// Margin is the busy-minus-idle activity fraction required to flag a
	// group as hosting ring buffers.
	Margin float64
}

// DefaultFootprintParams returns sensible discovery parameters.
func DefaultFootprintParams() FootprintParams {
	return FootprintParams{Samples: 400, ProbeRate: 2_000, Margin: 0.05}
}

// RecoverFootprint measures idle activity, then busy activity (the caller
// must install packet traffic on the testbed between the two phases via
// the busy callback), and flags the groups that light up.
//
// Typical use:
//
//	res := chase.RecoverFootprint(spy, groups, params, func() {
//	    tb.SetTraffic(broadcastSource)
//	})
func RecoverFootprint(spy *probe.Spy, groups []probe.EvictionSet, p FootprintParams, startTraffic func()) FootprintResult {
	mon := probe.NewMonitor(spy, groups)
	interval := sim.CyclesPerSecond(p.ProbeRate)
	idle := mon.Collect(p.Samples, interval)
	startTraffic()
	busy := mon.Collect(p.Samples, interval)
	res := FootprintResult{
		Groups:   groups,
		IdleRate: probe.ActivityRate(idle),
		BusyRate: probe.ActivityRate(busy),
	}
	for i := range groups {
		if res.BusyRate[i]-res.IdleRate[i] > p.Margin {
			res.ActiveGroups = append(res.ActiveGroups, i)
		}
	}
	return res
}

// SizeFootprint is the Fig 8 experiment for one packet-size stream: the
// per-block activity rates over the monitored groups' block-k eviction
// sets.
type SizeFootprint struct {
	// BlockRate[k][g] is the activity rate of group g's block-k set.
	BlockRate [][]float64
}

// MeasureSizeFootprint monitors blocks 0..maxBlock-1 of the given groups
// while traffic flows and returns per-block aggregate activity. The
// diagonal structure of Fig 8 — block k lights up iff the stream's packets
// have more than k blocks, except the block-1 prefetch artifact — falls
// out of the driver model.
func MeasureSizeFootprint(spy *probe.Spy, groups []probe.EvictionSet, maxBlock, samples int, probeRate float64) SizeFootprint {
	res := SizeFootprint{BlockRate: make([][]float64, maxBlock)}
	interval := sim.CyclesPerSecond(probeRate)
	for k := 0; k < maxBlock; k++ {
		sets := make([]probe.EvictionSet, len(groups))
		for i, g := range groups {
			sets[i] = g.Offset(k)
		}
		mon := probe.NewMonitor(spy, sets)
		samples := mon.Collect(samples, interval)
		res.BlockRate[k] = probe.ActivityRate(samples)
	}
	return res
}

// MeanRate averages a rate vector (figure summarization helper).
func MeanRate(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	var s float64
	for _, r := range rates {
		s += r
	}
	return s / float64(len(rates))
}
