// Package nic models the receive path the Packet Chasing attack spies on:
// an Intel I350-class adapter with its rx descriptor ring, DMA engine
// (through the cache model's DDIO path), and the Linux IGB driver's buffer
// management, faithfully reproducing the behaviours §III-A deconstructs:
//
//   - 256 descriptors by default, each owning a 2 KB buffer; two buffers
//     are packed per 4 KB page and buffers start page-/half-page-aligned;
//   - buffers are recycled, so ring order is stable for the driver's
//     lifetime — the property that makes sequence recovery worthwhile;
//   - small packets (<= 256 B) are copied into an skb and the buffer is
//     reused as-is; large packets attach the page as a fragment and the
//     driver flips the page offset to the other half-page;
//   - the driver always touches the header block and prefetches the second
//     block, which is why 1-block packets still light up block 1 (Fig 8).
//
// The package also hosts the §VI software mitigations: full and periodic
// ring randomization.
package nic

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// RandomizeMode selects the §VI-b software mitigation.
type RandomizeMode int

const (
	// RandomizeNone is the vulnerable stock driver.
	RandomizeNone RandomizeMode = iota
	// RandomizeFull allocates a fresh buffer page for every received
	// packet ("Fully Randomized Ring Buffer" in Fig 16).
	RandomizeFull
	// RandomizePeriodic re-allocates every buffer after each
	// RandomizeInterval received packets ("Partial Randomization").
	RandomizePeriodic
)

func (m RandomizeMode) String() string {
	switch m {
	case RandomizeFull:
		return "full-randomization"
	case RandomizePeriodic:
		return "periodic-randomization"
	default:
		return "none"
	}
}

// Config describes the adapter + driver pair.
type Config struct {
	// RingSize is the number of rx descriptors (IGB default 256; the I350
	// supports up to 4096 — §VI-c suggests growing it as a mitigation).
	RingSize int
	// BufferSize is the per-frame buffer (IGB: 2048 bytes, half a page).
	BufferSize int
	// RxHdrLen is the copy threshold: packets up to this size are copied
	// into the skb and the buffer reused as-is (IGB_RX_HDR_LEN = 256).
	RxHdrLen int
	// PrefetchSecondBlock models the driver optimization that touches the
	// second cache block regardless of packet size (§III-B).
	PrefetchSecondBlock bool
	// DriverLatency is the delay in cycles between the NIC's DMA write
	// and the driver's processing of the packet (interrupt + softirq).
	// §IV-d cites <20k cycles for ~100% of packets.
	DriverLatency uint64
	// SKBPages is the size of the modeled socket-buffer pool.
	SKBPages int
	// Randomize selects a §VI mitigation.
	Randomize RandomizeMode
	// RandomizeInterval is the packet count between periodic
	// re-randomizations (Fig 16 uses 1k and 10k).
	RandomizeInterval int
	// ReallocProb is the probability that a buffer cannot be reused
	// (remote NUMA page / page still referenced, the "unlikely" branches
	// of igb_can_reuse_rx_page). 0 keeps the ring order perfectly stable.
	ReallocProb float64
}

// DefaultConfig returns the stock IGB driver configuration from the paper.
func DefaultConfig() Config {
	return Config{
		RingSize:            256,
		BufferSize:          2048,
		RxHdrLen:            256,
		PrefetchSecondBlock: true,
		DriverLatency:       5_000,
		// skbs come from the slab allocator, which cycles through a broad
		// arena of pages rather than a handful of fixed buffers; a small
		// pool would concentrate skb-write pollution on a few cache sets.
		SKBPages: 512,
	}
}

// Stats counts driver-level events.
type Stats struct {
	Received, Dropped   uint64
	Copied, Fragged     uint64
	Reused, Reallocated uint64
	Randomizations      uint64
	PageFlips           uint64
}

// descriptor is one rx ring entry: a buffer at page+offset.
type descriptor struct {
	page   mem.Addr
	offset uint32 // 0 or BufferSize (half-page flip)
}

// pending is a DMA-completed frame awaiting driver processing.
type pending struct {
	frame   netmodel.Frame
	descIdx int
	buf     mem.Addr
	dueAt   uint64
}

// NIC is the adapter + driver model.
type NIC struct {
	//packetlint:transient ring/buffer geometry, fixed at construction and guarded by restoreCore's shape check
	cfg Config
	//packetlint:transient wiring to the shared cache, rebound only by New/NewShell
	cache *cache.Cache
	//packetlint:transient wiring to the shared allocator, rebound only by New/NewShell
	alloc *mem.Allocator
	//packetlint:transient wiring to the shared clock, rebound only by New/NewShell
	clock  *sim.Clock
	rng    *sim.RNG
	ring   []descriptor
	head   int
	queue  []pending
	skb    []mem.Addr
	skbIdx int
	// descRing models the coherent-memory descriptor ring the driver
	// reads for each packet.
	descRing mem.Addr
	stats    Stats
	sincePct int
}

// New initializes the driver: it allocates one buffer page per descriptor
// (the once-per-lifetime allocation §III-A describes), an skb pool, and a
// page for the coherent descriptor ring.
func New(cfg Config, c *cache.Cache, alloc *mem.Allocator, clock *sim.Clock, rng *sim.RNG) (*NIC, error) {
	if cfg.RingSize <= 0 || cfg.BufferSize <= 0 || cfg.BufferSize > mem.PageSize {
		return nil, fmt.Errorf("nic: invalid ring/buffer geometry %d/%d", cfg.RingSize, cfg.BufferSize)
	}
	if cfg.SKBPages <= 0 {
		cfg.SKBPages = 1
	}
	n := &NIC{cfg: cfg, cache: c, alloc: alloc, clock: clock, rng: rng}
	pages, err := alloc.AllocPages(cfg.RingSize)
	if err != nil {
		return nil, fmt.Errorf("nic: ring allocation: %w", err)
	}
	n.ring = make([]descriptor, cfg.RingSize)
	for i, p := range pages {
		n.ring[i] = descriptor{page: p}
	}
	if n.skb, err = alloc.AllocPages(cfg.SKBPages); err != nil {
		return nil, fmt.Errorf("nic: skb pool: %w", err)
	}
	if n.descRing, err = alloc.AllocPage(); err != nil {
		return nil, fmt.Errorf("nic: descriptor ring: %w", err)
	}
	return n, nil
}

// Config returns the driver configuration.
func (n *NIC) Config() Config { return n.cfg }

// Stats returns a snapshot of driver counters.
func (n *NIC) Stats() Stats { return n.stats }

// Receive performs the DMA for a frame: the NIC writes the frame's blocks
// into the next ring buffer (through DDIO when enabled) and queues driver
// processing. Call in arrival order; the caller is responsible for having
// advanced the clock to at least f.Arrival.
func (n *NIC) Receive(f netmodel.Frame) {
	d := &n.ring[n.head]
	buf := d.page + mem.Addr(d.offset)
	blocks := f.Blocks()
	if max := n.cfg.BufferSize / 64; blocks > max {
		blocks = max
	}
	for b := 0; b < blocks; b++ {
		n.cache.IOWrite(uint64(buf) + uint64(b*64))
	}
	n.queue = append(n.queue, pending{frame: f, descIdx: n.head, buf: buf, dueAt: f.Arrival + n.cfg.DriverLatency})
	// Conditional wrap instead of modulo: the integer divide was
	// measurable on the per-packet path, and head advances by exactly one.
	if n.head++; n.head == n.cfg.RingSize {
		n.head = 0
	}
	n.stats.Received++
}

// ProcessDriver runs driver processing for every queued packet due at or
// before cycle t. The driver core's cache accesses do not advance the
// simulated clock (it runs in parallel with the spy's core).
func (n *NIC) ProcessDriver(t uint64) {
	i := 0
	for ; i < len(n.queue) && n.queue[i].dueAt <= t; i++ {
		n.process(n.queue[i])
	}
	n.queue = n.queue[i:]
}

// PendingDriverWork reports queued-but-unprocessed packets.
func (n *NIC) PendingDriverWork() int { return len(n.queue) }

// process is the igb_clean_rx_irq equivalent for one packet.
func (n *NIC) process(p pending) {
	// Read the rx descriptor from the coherent ring (16 bytes/desc).
	n.cache.Read(uint64(n.descRing) + uint64(p.descIdx*16))
	// Driver always reads the header block...
	n.cache.Read(uint64(p.buf))
	// ...and prefetches the second block regardless of size (Fig 8's
	// artifact: 1-block packets light up block 1 too).
	if n.cfg.PrefetchSecondBlock {
		n.cache.Read(uint64(p.buf) + 64)
	}

	if !p.frame.Known {
		// No protocol handler: frame dropped in the driver; buffer reused.
		n.stats.Dropped++
		n.stats.Reused++
		n.finishPacket(p.descIdx)
		return
	}

	blocks := p.frame.Blocks()
	if max := n.cfg.BufferSize / 64; blocks > max {
		blocks = max
	}
	if p.frame.Size <= n.cfg.RxHdrLen {
		// igb_add_rx_frag small path: memcpy into the skb, reuse buffer.
		for b := 0; b < blocks; b++ {
			n.cache.Read(uint64(p.buf) + uint64(b*64))
			n.cache.Write(uint64(n.nextSKB()) + uint64(b*64))
		}
		n.stats.Copied++
		if n.rng != nil && n.rng.Bernoulli(n.cfg.ReallocProb) {
			n.reallocDescriptor(p.descIdx)
		} else {
			n.stats.Reused++
		}
		n.finishPacket(p.descIdx)
		return
	}

	// Large path: attach the page as an skb fragment (pointer write), the
	// stack touches the payload shortly after (§IV-d), and
	// igb_can_reuse_rx_page flips the half-page offset.
	n.cache.Write(uint64(n.nextSKB()))
	for b := 0; b < blocks; b++ {
		n.cache.Read(uint64(p.buf) + uint64(b*64))
	}
	n.stats.Fragged++
	if n.rng != nil && n.rng.Bernoulli(n.cfg.ReallocProb) {
		n.reallocDescriptor(p.descIdx)
	} else {
		n.ring[p.descIdx].offset ^= uint32(n.cfg.BufferSize)
		n.stats.PageFlips++
		n.stats.Reused++
	}
	n.finishPacket(p.descIdx)
}

// finishPacket applies the §VI randomization defenses after a packet has
// been handled.
func (n *NIC) finishPacket(descIdx int) {
	switch n.cfg.Randomize {
	case RandomizeFull:
		n.reallocDescriptor(descIdx)
		n.stats.Randomizations++
	case RandomizePeriodic:
		n.sincePct++
		if n.sincePct >= n.cfg.RandomizeInterval {
			n.sincePct = 0
			n.RandomizeRing()
		}
	}
}

// reallocDescriptor gives a descriptor a fresh physical page at a random
// location (see mem.AllocPageRandom for why placement must be random).
func (n *NIC) reallocDescriptor(i int) {
	old := n.ring[i].page
	fresh, err := n.alloc.AllocPageRandom(n.rng)
	if err != nil {
		// Allocator exhausted: keep the old page (kernel would retry).
		n.stats.Reused++
		return
	}
	n.alloc.FreePage(old)
	n.ring[i] = descriptor{page: fresh}
	n.stats.Reallocated++
}

// RandomizeRing re-allocates every buffer, destroying both the cache
// footprint and the sequence the attacker learned (§VI-b).
func (n *NIC) RandomizeRing() {
	for i := range n.ring {
		n.reallocDescriptor(i)
	}
	n.stats.Randomizations++
}

func (n *NIC) nextSKB() mem.Addr {
	a := n.skb[n.skbIdx]
	if n.skbIdx++; n.skbIdx == len(n.skb) {
		n.skbIdx = 0
	}
	return a
}

// --- Ground-truth oracles (instrumented-driver equivalents) ---
//
// The paper validates the attack by instrumenting the driver to print the
// physical addresses of the ring buffers. These accessors are that
// instrumentation; attack code never calls them.

// BufferPage returns the physical page of descriptor i.
func (n *NIC) BufferPage(i int) mem.Addr { return n.ring[i].page }

// RingAlignedSets returns, per ring position, the canonical page-aligned
// set index (0..255) of that buffer's page — the ground truth for Figs 5-6
// and the Table I sequence.
func (n *NIC) RingAlignedSets(cfg cache.Config) []int {
	out := make([]int, len(n.ring))
	for i, d := range n.ring {
		out[i] = cfg.AlignedIndexOf(cfg.GlobalSet(uint64(d.page)))
	}
	return out
}

// NextDescriptor returns the ring index the next packet will fill.
func (n *NIC) NextDescriptor() int { return n.head }

// DescRingPage returns the page holding the coherent rx descriptor ring.
// Driver reads of descriptors make this page's sets light up alongside the
// buffers — a pollution source the sequencer has to live with.
func (n *NIC) DescRingPage() mem.Addr { return n.descRing }

// SKBPages returns the socket-buffer pool pages (copy-path destinations).
func (n *NIC) SKBPages() []mem.Addr { return append([]mem.Addr(nil), n.skb...) }
