package nic

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// BenchmarkNICReceiveProcess pins the per-packet cost of the rx path: DMA
// descriptor write + header DMA, then driver processing with its ring and
// skb index advances (conditional wrap, no integer divide per packet).
func BenchmarkNICReceiveProcess(b *testing.B) {
	clock := sim.NewClock()
	c := cache.New(cache.PaperConfig(), clock)
	al := mem.NewAllocator(1<<30, sim.Derive(1, "bench-nic-alloc"))
	n, err := New(DefaultConfig(), c, al, clock, sim.Derive(1, "bench-nic"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t uint64
	for i := 0; i < b.N; i++ {
		t += 3300
		n.Receive(netmodel.Frame{Seq: uint64(i), Size: 256, Arrival: t, Known: true})
		n.ProcessDriver(t + 30_000)
	}
}
